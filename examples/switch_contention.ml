(* The banyan switch model: self-routing and internal blocking.

   Run with:  dune exec examples/switch_contention.exe *)

module Switch = Cni_atm.Switch
module Rng = Cni_engine.Rng

let () =
  let sw = Switch.create ~ports:32 in
  Printf.printf "32-port banyan (omega) switch: %d stages of 2x2 elements.\n\n"
    (Switch.stages sw);
  let r = Switch.route sw ~src:5 ~dst:19 in
  Printf.printf "route 5 -> 19 passes wires: %s\n"
    (String.concat " -> " (Array.to_list (Array.map string_of_int r)));
  Printf.printf "routes (5->19) and (1->18) conflict: %b\n"
    (Switch.conflict sw (5, 19) (1, 18));
  Printf.printf "routes (5->19) and (0->3)  conflict: %b\n\n"
    (Switch.conflict sw (5, 19) (0, 3));
  (* how often does a random permutation block internally? This is why the
     fabric model charges output-port contention: banyan networks are not
     non-blocking. *)
  let rng = Rng.create ~seed:42 in
  let trials = 200 in
  let total = ref 0 in
  for _ = 1 to trials do
    let perm = Array.init 32 (fun i -> i) in
    Rng.shuffle rng perm;
    total := !total + Switch.conflicts_in_permutation sw perm
  done;
  Printf.printf "random full permutations: %.1f conflicting pairs on average (of %d pairs)\n"
    (float_of_int !total /. float_of_int trials)
    (32 * 31 / 2);
  print_endline "identity permutation conflicts: 0 (straight-through routes are disjoint)";
  assert (Switch.conflicts_in_permutation sw (Array.init 32 (fun i -> i)) = 0)
