(* PATHFINDER in isolation: pattern programming, DAG prefix sharing, and
   fragment handling over real AAL5 cell streams.

   Run with:  dune exec examples/classifier_demo.exe *)

module Pattern = Cni_pathfinder.Pattern
module Classifier = Cni_pathfinder.Classifier
module Dispatcher = Cni_pathfinder.Dispatcher
module Cell = Cni_atm.Cell
module Aal5 = Cni_atm.Aal5
module Wire = Cni_nic.Wire

let () =
  print_endline "PATHFINDER demo: classification DAG + fragmented packets.\n";

  (* 1. prefix sharing: patterns for 8 channels share the magic-match edge *)
  let cls : string Classifier.t = Classifier.create () in
  for chan = 0 to 7 do
    ignore (Classifier.add cls (Wire.pattern_channel ~channel:chan) (Printf.sprintf "app-%d" chan))
  done;
  Printf.printf "installed %d channel patterns -> %d DAG edges (naive tries would use %d)\n"
    (Classifier.patterns cls) (Classifier.edges cls) (8 * 2);

  (* 2. classify some headers *)
  let header ~channel ~kind =
    Wire.encode
      { Wire.kind; cacheable = false; has_data = false; src = 9; channel; obj = 0; aux = 0 }
  in
  List.iter
    (fun chan ->
      match Classifier.classify cls (header ~channel:chan ~kind:1) with
      | Some app -> Printf.printf "  header for channel %d -> %s\n" chan app
      | None -> Printf.printf "  header for channel %d -> unmatched\n" chan)
    [ 0; 5; 42 ];

  (* 3. fragmentation: a 2 KB frame spans 44 ATM cells; only the first one
     carries the header, the dispatcher remembers the binding per VC *)
  print_newline ();
  let payload = Bytes.make 2048 '\000' in
  Bytes.blit (header ~channel:5 ~kind:1) 0 payload 0 Wire.header_bytes;
  let cells = Aal5.segment ~vpi:0 ~vci:77 payload in
  Printf.printf "a 2 KB frame becomes %d cells (%d wire bytes, %.1f%% framing overhead)\n"
    (List.length cells)
    (List.length cells * Cell.total_bytes)
    (100.
    *. float_of_int ((List.length cells * Cell.total_bytes) - 2048)
    /. float_of_int (2048));
  let disp = Dispatcher.create cls in
  let classified = List.map (Dispatcher.on_cell disp) cells in
  let all_to_app5 = List.for_all (fun c -> c = Some "app-5") classified in
  Printf.printf "all %d cells routed to app-5: %b (continuation cells used the VC binding)\n"
    (List.length classified) all_to_app5;
  let s = Dispatcher.stats disp in
  Printf.printf "dispatcher: %d first cell(s), %d continuation cell(s)\n"
    s.Dispatcher.first_cells s.Dispatcher.continuation_cells;

  (* 4. reassembly recovers the exact frame *)
  let r = Aal5.Reassembler.create () in
  let recovered = List.filter_map (Aal5.Reassembler.push r) cells in
  (match recovered with
  | [ frame ] -> Printf.printf "reassembly: recovered %d bytes, equal=%b\n" (Bytes.length frame)
                   (Bytes.equal frame payload)
  | _ -> print_endline "reassembly failed");

  (* 5. finer patterns: route one protocol kind of one channel elsewhere *)
  print_newline ();
  let h = Classifier.add cls (Wire.pattern_channel_kind ~channel:5 ~kind:9) "app-5-urgent" in
  (match Classifier.classify cls (header ~channel:5 ~kind:9) with
  | Some app -> Printf.printf "channel-5 kind-9 now routes to %s" app
  | None -> print_string "unexpectedly unmatched");
  Classifier.remove cls h;
  (match Classifier.classify cls (header ~channel:5 ~kind:9) with
  | Some app -> Printf.printf "; after removal -> %s\n" app
  | None -> print_endline "; after removal -> unmatched")
