(* Application Interrupt Handlers: installing a custom protocol on the
   network adaptor board (paper section 2.3).

   A global-sum service lives on node 0's board: every node fires `add`
   messages at it; the handler accumulates into board memory and answers a
   final `read` request — the host CPU of node 0 is never involved. The same
   protocol with host-resident handlers (no AIH) shows what the board
   offloads, both in time and in host CPU stolen from the computation.

   Run with:  dune exec examples/custom_protocol.exe *)

module Time = Cni_engine.Time
module Engine = Cni_engine.Engine
module Nic = Cni_nic.Nic
module Wire = Cni_nic.Wire
module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node

type msg = Add of int | Read | Value of int

let channel = 5
let kind_add = 1
let kind_read = 2
let kind_value = 3

let header ~src ~kind ~value =
  Wire.encode
    { Wire.kind; cacheable = false; has_data = false; src; channel; obj = value; aux = 0 }

let contributions = 32

let run ~aih =
  let nodes = 4 in
  let kind = `Cni { Nic.default_cni_options with Nic.aih } in
  let cluster : msg Cluster.t = Cluster.create ~nic_kind:kind ~nodes () in
  (* protocol state in board memory on node 0 *)
  let board_sum = ref 0 in
  let final = ref 0 in
  let wake = ref (fun () -> ()) in
  let server = Node.nic (Cluster.node cluster 0) in
  (* one pattern + handler per protocol action, as the paper prescribes *)
  ignore
    (Nic.install_handler server
       ~pattern:(Wire.pattern_channel_kind ~channel ~kind:kind_add)
       ~code_bytes:256
       (fun ctx pkt ->
         ctx.Nic.charge 40;
         match pkt.Cni_atm.Fabric.payload with Add v -> board_sum := !board_sum + v | _ -> ()));
  ignore
    (Nic.install_handler server
       ~pattern:(Wire.pattern_channel_kind ~channel ~kind:kind_read)
       ~code_bytes:256
       (fun ctx pkt ->
         ctx.Nic.charge 30;
         ctx.Nic.reply ~dst:pkt.Cni_atm.Fabric.src
           ~header:(header ~src:0 ~kind:kind_value ~value:!board_sum)
           ~body_bytes:8 ~data:Nic.No_data ~payload:(Value !board_sum)));
  ignore
    (Nic.install_handler
       (Node.nic (Cluster.node cluster 1))
       ~pattern:(Wire.pattern_channel_kind ~channel ~kind:kind_value)
       ~code_bytes:128
       (fun ctx pkt ->
         ctx.Nic.charge 10;
         (match pkt.Cni_atm.Fabric.payload with Value v -> final := v | _ -> ());
         !wake ()));
  Cluster.run_app cluster (fun node ->
      let me = Node.id node in
      if me > 0 then begin
        for i = 1 to contributions do
          Nic.send (Node.nic node) ~dst:0
            ~header:(header ~src:me ~kind:kind_add ~value:i)
            ~body_bytes:8 ~data:Nic.No_data ~payload:(Add i);
          Node.work node 5_000
        done;
        if me = 1 then begin
          (* let the adds drain, then ask the board for the total *)
          Node.work node 3_000_000;
          Node.flush_pending node;
          Nic.send (Node.nic node) ~dst:0
            ~header:(header ~src:me ~kind:kind_read ~value:0)
            ~body_bytes:8 ~data:Nic.No_data ~payload:Read;
          Node.blocking node (fun () ->
              Engine.suspend (fun resume -> wake := fun () -> resume ()))
        end
      end
      else
        (* node 0's host computes throughout; with AIH the board absorbs the
           protocol, without it every message steals host cycles *)
        Node.work node 4_000_000);
  let r0 = Node.report (Cluster.node cluster 0) in
  (Cluster.elapsed cluster, !final, r0.Node.synch_overhead)

let () =
  print_endline "Custom protocol on the board: a global-sum service (3 senders x 32 adds).\n";
  let expected = 3 * (contributions * (contributions + 1) / 2) in
  List.iter
    (fun (name, aih) ->
      let elapsed, value, stolen = run ~aih in
      Printf.printf "%-28s elapsed=%-12s sum=%d (expected %d)\n" name
        (Format.asprintf "%a" Time.pp elapsed)
        value expected;
      Printf.printf "%-28s host CPU stolen on node 0: %s\n\n" ""
        (Format.asprintf "%a" Time.pp stolen))
    [ ("AIH (protocol on board)", true); ("host handlers (no AIH)", false) ];
  print_endline "With the AIH installed, node 0's host loses no time to the service; without";
  print_endline "it, every add interrupts the computing host."
