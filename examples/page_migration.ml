(* Distributed shared memory over the CNI: a lock-protected accumulator page
   migrating around a 4-node cluster, showing the LRC protocol machinery
   (twins, write notices, page migration) and the Message Cache's transmit
   and receive caching at work.

   Run with:  dune exec examples/page_migration.exe *)

module Time = Cni_engine.Time
module Nic = Cni_nic.Nic
module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node
module Space = Cni_dsm.Space
module Lrc = Cni_dsm.Lrc
module Shmem = Cni_dsm.Shmem

let rounds = 8

let run ~kind =
  let nodes = 4 in
  let cluster = Cluster.create ~nic_kind:kind ~nodes () in
  let space = Space.create ~nprocs:nodes ~page_bytes:(Cluster.params cluster).page_bytes in
  let lrcs = Lrc.install cluster space () in
  (* one page worth of shared accumulators *)
  let acc = Shmem.Farray.create space ~len:256 in
  Cluster.run_app cluster (fun node ->
      let me = Node.id node in
      let lrc = lrcs.(me) in
      if me = 0 then Shmem.Farray.init_local lrc acc ~lo:0 ~len:256 (fun _ -> 0.0);
      Lrc.barrier lrc ~id:0;
      for round = 1 to rounds do
        (* whoever holds the lock rewrites the whole page: the page (and the
           lock) migrate from releaser to acquirer, round-robin *)
        Lrc.acquire lrc ~lock:1;
        Shmem.Farray.read_range lrc acc ~lo:0 ~len:256;
        Shmem.Farray.write_range lrc acc ~lo:0 ~len:256;
        for i = 0 to 255 do
          Shmem.Farray.set acc i (Shmem.Farray.get acc i +. float_of_int (me + round))
        done;
        Node.work node 20_000;
        Lrc.release lrc ~lock:1;
        Node.work node 50_000
      done;
      Lrc.barrier lrc ~id:0);
  (cluster, lrcs, Shmem.Farray.get acc 0)

let () =
  Printf.printf "Page migration demo: %d rounds of lock-protected page updates on 4 nodes.\n\n"
    rounds;
  List.iter
    (fun (name, kind) ->
      let cluster, lrcs, v = run ~kind in
      let st = Array.map Lrc.stats lrcs in
      let sum f = Array.fold_left (fun a s -> a + f s) 0 st in
      Printf.printf "%-10s elapsed=%-12s final=%g\n" name
        (Format.asprintf "%a" Time.pp (Cluster.elapsed cluster))
        v;
      Printf.printf "           page fetches=%d  diff fetches=%d  twins=%d  remote acquires=%d\n"
        (sum (fun s -> s.Lrc.page_fetches))
        (sum (fun s -> s.Lrc.diff_fetches))
        (sum (fun s -> s.Lrc.twins))
        (sum (fun s -> s.Lrc.remote_acquires));
      Printf.printf "           network cache hit ratio=%.1f%%\n\n"
        (Cluster.network_cache_hit_ratio cluster))
    [ ("CNI", `Cni Nic.default_cni_options); ("standard", `Standard) ];
  print_endline "The fully rewritten page travels whole (migratory transfer); on the CNI the";
  print_endline "serving board finds it in the Message Cache — receive caching bound it when";
  print_endline "the page arrived, and snooped write-backs kept it consistent."
