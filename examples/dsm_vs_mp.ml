(* Both programming paradigms on one problem: the same Jacobi relaxation
   written against the DSM (shared arrays + barriers) and as explicit
   message passing (halo exchange), on the same simulated hardware.

   The paper's third design goal is to support both models efficiently; this
   example shows they land within a small factor of each other on a CNI
   cluster, with message passing ahead (it moves exactly the boundary rows,
   while the DSM pays for generality with faults, twins and write notices).

   Run with:  dune exec examples/dsm_vs_mp.exe *)

module Time = Cni_engine.Time
module Nic = Cni_nic.Nic
module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node
module Space = Cni_dsm.Space
module Lrc = Cni_dsm.Lrc
module Jacobi = Cni_apps.Jacobi
module Partition = Cni_apps.Partition
module Mp = Cni_mp.Mp

let n = 256
let iterations = 12
let cycles_per_point = 12

(* ------------------------------------------------------------------ *)
(* DSM version: the library application                                *)
(* ------------------------------------------------------------------ *)

let run_dsm ~kind ~procs =
  let cluster = Cluster.create ~nic_kind:kind ~nodes:procs () in
  let space = Space.create ~nprocs:procs ~page_bytes:(Cluster.params cluster).page_bytes in
  let lrcs = Lrc.install cluster space () in
  let r = Jacobi.run cluster lrcs { Jacobi.default_config with Jacobi.n; iterations } in
  (Cluster.elapsed cluster, r.Jacobi.checksum)

(* ------------------------------------------------------------------ *)
(* Message-passing version: explicit halo exchange                     *)
(* ------------------------------------------------------------------ *)

let initial i j =
  if i = 0 || j = 0 || i = n - 1 || j = n - 1 then
    1.0 +. (float_of_int ((i * 31) + (j * 17) mod 97) /. 97.0)
  else 0.0

let run_mp ~kind ~procs =
  let cluster : float array Mp.envelope Cluster.t =
    Cluster.create ~nic_kind:kind ~nodes:procs ()
  in
  let eps = Mp.install cluster in
  let checksum = ref 0.0 in
  let row_bytes = n * 8 in
  Cluster.run_app cluster (fun node ->
      let ep = eps.(Node.id node) in
      let me = Mp.rank ep in
      let lo, hi = Partition.range ~items:n ~procs ~me in
      let rows = hi - lo in
      (* local strip with two halo rows *)
      let cur = Array.make_matrix (rows + 2) n 0.0 in
      let nxt = Array.make_matrix (rows + 2) n 0.0 in
      for r = 0 to rows + 1 do
        let gi = lo + r - 1 in
        if gi >= 0 && gi < n then
          for j = 0 to n - 1 do
            cur.(r).(j) <- initial gi j;
            nxt.(r).(j) <- initial gi j
          done
      done;
      let cur = ref cur and nxt = ref nxt in
      for _iter = 1 to iterations do
        let c = !cur and x = !nxt in
        (* halo exchange: boundary rows to the neighbours *)
        if me > 0 then Mp.send ep ~dst:(me - 1) ~tag:1 ~bytes:row_bytes (Array.copy c.(1));
        if me < procs - 1 then
          Mp.send ep ~dst:(me + 1) ~tag:2 ~bytes:row_bytes (Array.copy c.(rows));
        if me < procs - 1 then begin
          let e = Mp.recv ep ~src:(me + 1) ~tag:1 () in
          Array.blit e.Mp.value 0 c.(rows + 1) 0 n
        end;
        if me > 0 then begin
          let e = Mp.recv ep ~src:(me - 1) ~tag:2 () in
          Array.blit e.Mp.value 0 c.(0) 0 n
        end;
        (* relax the interior of the strip *)
        for r = 1 to rows do
          let gi = lo + r - 1 in
          if gi >= 1 && gi <= n - 2 then begin
            for j = 1 to n - 2 do
              x.(r).(j) <- 0.25 *. (c.(r - 1).(j) +. c.(r + 1).(j) +. c.(r).(j - 1) +. c.(r).(j + 1))
            done;
            Node.work node ((n - 2) * cycles_per_point)
          end;
          (* fixed global boundary rows/columns *)
          if gi = 0 || gi = n - 1 then Array.blit c.(r) 0 x.(r) 0 n
          else begin
            x.(r).(0) <- c.(r).(0);
            x.(r).(n - 1) <- c.(r).(n - 1)
          end
        done;
        let t = !cur in
        cur := !nxt;
        nxt := t;
        Mp.barrier ep
      done;
      (* validation: global checksum at rank 0 *)
      let local = ref 0.0 in
      let c = !cur in
      for r = 1 to rows do
        for j = 0 to n - 1 do
          local := !local +. c.(r).(j)
        done
      done;
      (* the endpoint carries row arrays; wrap the scalar for the reduction *)
      let total =
        Mp.reduce ep ~root:0 ~op:(fun a b -> [| a.(0) +. b.(0) |]) [| !local |]
      in
      if me = 0 then checksum := total.(0));
  (Cluster.elapsed cluster, !checksum)

let () =
  let procs = 8 in
  Printf.printf "Jacobi %dx%d, %d iterations, %d nodes — both paradigms:\n\n" n n iterations procs;
  Printf.printf "%-10s %-20s %-14s %-14s\n" "interface" "paradigm" "elapsed" "checksum";
  List.iter
    (fun (name, kind) ->
      let td, cd = run_dsm ~kind ~procs in
      let tm, cm = run_mp ~kind ~procs in
      Printf.printf "%-10s %-20s %-14s %-14.3f\n" name "shared memory (LRC)"
        (Format.asprintf "%a" Time.pp td)
        cd;
      Printf.printf "%-10s %-20s %-14s %-14.3f\n" name "message passing"
        (Format.asprintf "%a" Time.pp tm)
        cm)
    [ ("CNI", `Cni Nic.default_cni_options); ("standard", `Standard) ];
  print_newline ();
  print_endline "Identical checksums: the two programs compute the same answer. The DSM";
  print_endline "version pays for its generality in faults and write notices; the explicit";
  print_endline "version sends exactly two boundary rows per node per iteration."
