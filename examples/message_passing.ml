(* The second programming paradigm: explicit message passing over the same
   interface. A ring pipeline and the collectives, timed on both boards.

   Run with:  dune exec examples/message_passing.exe *)

module Time = Cni_engine.Time
module Nic = Cni_nic.Nic
module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node
module Mp = Cni_mp.Mp

let nodes = 8

let run ~kind =
  let cluster : float Mp.envelope Cluster.t = Cluster.create ~nic_kind:kind ~nodes () in
  let eps = Mp.install cluster in
  let pi_estimate = ref 0.0 in
  Cluster.run_app cluster (fun node ->
      let ep = eps.(Node.id node) in
      let me = Mp.rank ep in
      (* 1. a token circles the ring twice, gathering contributions *)
      let next = (me + 1) mod nodes and prev = (me + nodes - 1) mod nodes in
      if me = 0 then begin
        Mp.send ep ~dst:next ~tag:1 1.0;
        for _ = 1 to 2 do
          let t = Mp.recv ep ~src:prev ~tag:1 () in
          if t.Mp.value < float_of_int nodes then Mp.send ep ~dst:next ~tag:1 t.Mp.value
        done
      end
      else
        for _ = 1 to 2 do
          let t = Mp.recv ep ~src:prev ~tag:1 () in
          Mp.send ep ~dst:next ~tag:1 (t.Mp.value +. 0.5)
        done;
      Mp.barrier ep;
      (* 2. each rank integrates a strip of 4/(1+x^2); allreduce sums them *)
      let steps = 10_000 in
      let h = 1.0 /. float_of_int steps in
      let local = ref 0.0 in
      let i = ref me in
      while !i < steps do
        let x = (float_of_int !i +. 0.5) *. h in
        local := !local +. (4.0 /. (1.0 +. (x *. x)));
        i := !i + nodes
      done;
      Node.work node (steps / nodes * 20);
      let total = Mp.allreduce ep ~op:( +. ) (!local *. h) in
      if me = 0 then pi_estimate := total);
  (Cluster.elapsed cluster, !pi_estimate)

let () =
  Printf.printf "Message passing on %d nodes: ring pipeline + pi by allreduce.\n\n" nodes;
  List.iter
    (fun (name, kind) ->
      let elapsed, pi = run ~kind in
      Printf.printf "%-10s elapsed=%-12s pi=%.6f\n" name
        (Format.asprintf "%a" Time.pp elapsed)
        pi)
    [ ("CNI", `Cni Nic.default_cni_options); ("standard", `Standard) ];
  print_newline ();
  print_endline "Small control messages dominate here: the CNI saves the kernel path on every";
  print_endline "send and the interrupt on every receive that finds its host already polling."
