(* Quickstart: build a two-node cluster, open an application device channel
   by installing a PATHFINDER pattern, and measure message latency on the
   CNI and on the standard interface.

   Run with:  dune exec examples/quickstart.exe *)

module Time = Cni_engine.Time
module Engine = Cni_engine.Engine
module Nic = Cni_nic.Nic
module Wire = Cni_nic.Wire
module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node

(* Our tiny application protocol: one channel, messages carry the send
   timestamp so the receiver can compute the one-way latency. *)
let channel = 3
let buffer = 1 lsl 20 (* host virtual address of the send buffer *)

let measure ~kind ~bytes =
  let cluster : Time.t Cluster.t = Cluster.create ~nic_kind:kind ~nodes:2 () in
  let eng = Cluster.engine cluster in
  let latencies = ref [] in
  let wake = ref (fun () -> ()) in
  (* the receiving node programs the classifier: packets matching the
     channel pattern activate this handler (on the NIC processor when the
     interface is a CNI, behind an interrupt on the standard board) *)
  ignore
    (Nic.install_handler
       (Node.nic (Cluster.node cluster 1))
       ~pattern:(Wire.pattern_channel ~channel) ~code_bytes:128
       (fun ctx pkt ->
         ctx.Nic.deliver_page ~vaddr:buffer ~bytes ~cacheable:false;
         latencies := Time.(Engine.now eng - pkt.Cni_atm.Fabric.payload) :: !latencies;
         !wake ()));
  Cluster.run_app cluster (fun node ->
      if Node.id node = 0 then
        (* send the same buffer three times; the first DMA warms the CNI's
           Message Cache, later sends are served from the board *)
        for _ = 1 to 3 do
          let header =
            Wire.encode
              {
                Wire.kind = 1;
                cacheable = true;
                has_data = true;
                src = 0;
                channel;
                obj = 0;
                aux = 0;
              }
          in
          Nic.send (Node.nic node) ~dst:1 ~header ~body_bytes:0
            ~data:(Nic.Page { vaddr = buffer; bytes; cacheable = true })
            ~payload:(Engine.now eng);
          Node.blocking node (fun () ->
              Engine.suspend (fun resume -> wake := fun () -> resume ()))
        done);
  List.rev !latencies

let () =
  let bytes = 2048 in
  print_endline "CNI quickstart: one-way latency of a 2 KB buffer, sent three times.";
  print_endline "(first CNI send misses the Message Cache and DMAs; the rest hit)\n";
  let show name kind =
    let l = measure ~kind ~bytes in
    Printf.printf "%-10s" name;
    List.iteri (fun i t -> Printf.printf "  send%d = %s" (i + 1) (Format.asprintf "%a" Time.pp t)) l;
    print_newline ()
  in
  show "CNI" (`Cni Nic.default_cni_options);
  show "standard" `Standard;
  print_newline ();
  print_endline "The CNI's later sends elide the host-memory DMA (transmit caching) and";
  print_endline "its ADC path avoids the kernel; the standard interface pays both each time."
