(* Application-to-application throughput over an Application Device Channel:
   a sender streams buffers to a receiver; both interfaces are measured at
   several message sizes. Re-sent buffers hit the CNI's Message Cache, so
   the CNI curve approaches the wire rate while the standard interface is
   held back by its per-message kernel, interrupt and DMA costs.

   Run with:  dune exec examples/throughput.exe *)

module Time = Cni_engine.Time
module Nic = Cni_nic.Nic
module Adc = Cni_nic.Adc
module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node

let channel = 9
let messages = 64

let run ~kind ~bytes =
  let cluster : int Cluster.t = Cluster.create ~nic_kind:kind ~nodes:2 () in
  let finish = ref Time.zero in
  let rx = Adc.open_channel (Node.nic (Cluster.node cluster 1)) ~channel () in
  Cluster.run_app cluster (fun node ->
      match Node.id node with
      | 0 ->
          let tx = Adc.open_channel (Node.nic node) ~channel () in
          for i = 1 to messages do
            (* the application streams out of a small pool of buffers, the
               realistic pattern that gives the Message Cache its hits *)
            let vaddr = (1 lsl 20) + (i mod 4 * bytes) in
            Adc.send tx ~dst:1 ~data:(Nic.Page { vaddr; bytes; cacheable = true }) i
          done
      | _ ->
          for _ = 1 to messages do
            ignore (Node.blocking node (fun () -> Adc.recv rx))
          done;
          finish := Cni_engine.Engine.now (Cluster.engine cluster));
  let secs = Time.to_s_float !finish in
  float_of_int (messages * bytes) /. secs /. 1e6

let () =
  print_endline "ADC streaming throughput, 64 messages from a 4-buffer pool.\n";
  Printf.printf "%10s  %14s  %14s\n" "bytes" "CNI (MB/s)" "standard (MB/s)";
  List.iter
    (fun bytes ->
      let c = run ~kind:(`Cni Nic.default_cni_options) ~bytes in
      let s = run ~kind:`Standard ~bytes in
      Printf.printf "%10d  %14.1f  %14.1f\n" bytes c s)
    [ 512; 1024; 2048; 4096; 8192 ];
  print_newline ();
  print_endline "(622 Mb/s STS-12 gives ~70 MB/s of payload after 53/48 cell framing)"
