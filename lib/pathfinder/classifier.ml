(* The classification DAG, compiled to an indexed dispatch structure.

   Every branch out of a node compares one header field (offset/len/mask)
   against a value. Branches are grouped by their field *spec* — the
   (offset, len, mask) triple — and within a spec the children are indexed
   by expected value in a hashtable. Classifying at a node therefore costs
   one header read + one hash probe per distinct spec, independent of how
   many sibling patterns hang off the node; with the common "many channels
   on one field" layout that is O(pattern depth) instead of O(patterns).

   Removal is eager: the accept entry is deleted from its leaf node when the
   handle is removed, so the DAG holds live accepts only — no tombstone
   table to consult on the classification hot path and nothing that grows
   without bound under install/uninstall churn. Interior structure shared
   with live patterns is retained (as the hardware did). *)

(* where/how a branch reads the header; branches with equal specs share one
   value index *)
type spec = { s_offset : int; s_len : int; s_mask : int }

let spec_of (f : Pattern.field) =
  { s_offset = f.Pattern.offset; s_len = f.Pattern.len; s_mask = f.Pattern.mask }

type 'a node = {
  mutable branches : (Pattern.field * 'a node) list;
      (* insertion order; kept for [edges] and structural inspection *)
  index : (spec, (int, 'a node) Hashtbl.t) Hashtbl.t;  (* spec -> value -> child *)
  mutable accepts : (int * int * 'a) list;
      (* (priority, handle, action), sorted by priority; live entries only *)
}

type handle = int

(* one live pattern: the leaf node holding its accept entry, plus enough to
   re-run the reference linear matcher *)
type 'a entry = {
  e_node : 'a node;
  e_pattern : Pattern.t;
  e_priority : int;
  e_action : 'a;
}

type 'a t = {
  root : 'a node;
  mutable next_priority : int;
  mutable next_handle : int;
  entries : (int, 'a entry) Hashtbl.t;  (* live handles *)
  mutable s_classifications : int;
  mutable s_matches : int;
  mutable s_probes : int;
}

type stats = { classifications : int; matches : int; probes : int }

let new_node () = { branches = []; index = Hashtbl.create 4; accepts = [] }

let create () =
  {
    root = new_node ();
    next_priority = 0;
    next_handle = 0;
    entries = Hashtbl.create 16;
    s_classifications = 0;
    s_matches = 0;
    s_probes = 0;
  }

let add t pattern action =
  let priority = t.next_priority in
  t.next_priority <- priority + 1;
  let handle = t.next_handle in
  t.next_handle <- handle + 1;
  let rec insert node = function
    | [] ->
        node.accepts <-
          List.merge
            (fun (p1, _, _) (p2, _, _) -> compare p1 p2)
            node.accepts
            [ (priority, handle, action) ];
        node
    | f :: rest ->
        let spec = spec_of f in
        let values =
          match Hashtbl.find_opt node.index spec with
          | Some v -> v
          | None ->
              let v = Hashtbl.create 4 in
              Hashtbl.replace node.index spec v;
              v
        in
        let child =
          match Hashtbl.find_opt values f.Pattern.value with
          | Some c -> c
          | None ->
              let c = new_node () in
              Hashtbl.replace values f.Pattern.value c;
              node.branches <- node.branches @ [ (f, c) ];
              c
        in
        insert child rest
  in
  let leaf = insert t.root pattern in
  Hashtbl.replace t.entries handle
    { e_node = leaf; e_pattern = pattern; e_priority = priority; e_action = action };
  handle

(* Eager sweep: drop the accept entry from its leaf so classification never
   sees a dead pattern. Idempotent — a second removal finds no entry. *)
let remove t h =
  match Hashtbl.find_opt t.entries h with
  | None -> ()
  | Some e ->
      Hashtbl.remove t.entries h;
      e.e_node.accepts <- List.filter (fun (_, h', _) -> h' <> h) e.e_node.accepts

(* Walk the DAG collecting the best (lowest priority number) accept. Every
   accept stored is live, so no per-entry liveness check is needed. *)
let classify t header =
  t.s_classifications <- t.s_classifications + 1;
  let best = ref None in
  let consider (prio, _h, action) =
    match !best with
    | Some (p, _) when p <= prio -> ()
    | _ -> best := Some (prio, action)
  in
  let rec walk node =
    List.iter consider node.accepts;
    Hashtbl.iter
      (fun spec values ->
        t.s_probes <- t.s_probes + 1;
        match
          Pattern.read_masked header ~offset:spec.s_offset ~len:spec.s_len ~mask:spec.s_mask
        with
        | Some v -> (
            match Hashtbl.find_opt values v with Some child -> walk child | None -> ())
        | None -> ())
      node.index
  in
  walk t.root;
  match !best with
  | Some (_, action) ->
      t.s_matches <- t.s_matches + 1;
      Some action
  | None -> None

(* Reference semantics: scan every live pattern with the naive matcher and
   keep the lowest-priority match. Deliberately O(patterns); kept for
   property tests and the classification microbenchmark. Does not touch the
   stats counters. *)
let classify_linear t header =
  let best = ref None in
  Hashtbl.iter
    (fun _h e ->
      match !best with
      | Some (p, _) when p <= e.e_priority -> ()
      | _ -> if Pattern.matches e.e_pattern header then best := Some (e.e_priority, e.e_action))
    t.entries;
  Option.map snd !best

let patterns t = Hashtbl.length t.entries

let edges t =
  let rec count node =
    List.fold_left (fun acc (_, child) -> acc + 1 + count child) 0 node.branches
  in
  count t.root

let accept_entries t =
  let rec count node =
    List.fold_left (fun acc (_, child) -> acc + count child) (List.length node.accepts)
      node.branches
  in
  count t.root

let stats t =
  { classifications = t.s_classifications; matches = t.s_matches; probes = t.s_probes }
