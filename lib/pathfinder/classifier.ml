type 'a node = {
  mutable branches : (Pattern.field * 'a node) list;  (* in insertion order *)
  mutable accepts : (int * int * 'a) list;  (* (priority, handle_id, action), sorted *)
}

type handle = int

type 'a t = {
  root : 'a node;
  mutable next_priority : int;
  mutable next_handle : int;
  mutable live : int;
  removed : (int, unit) Hashtbl.t;
  mutable s_classifications : int;
  mutable s_matches : int;
}

type stats = { classifications : int; matches : int }

let new_node () = { branches = []; accepts = [] }

let create () =
  {
    root = new_node ();
    next_priority = 0;
    next_handle = 0;
    live = 0;
    removed = Hashtbl.create 16;
    s_classifications = 0;
    s_matches = 0;
  }

let add t pattern action =
  let priority = t.next_priority in
  t.next_priority <- priority + 1;
  let handle = t.next_handle in
  t.next_handle <- handle + 1;
  let rec insert node = function
    | [] ->
        node.accepts <-
          List.merge
            (fun (p1, _, _) (p2, _, _) -> compare p1 p2)
            node.accepts
            [ (priority, handle, action) ]
    | f :: rest -> (
        match List.find_opt (fun (f', _) -> Pattern.equal_field f f') node.branches with
        | Some (_, child) -> insert child rest
        | None ->
            let child = new_node () in
            node.branches <- node.branches @ [ (f, child) ];
            insert child rest)
  in
  insert t.root pattern;
  t.live <- t.live + 1;
  handle

let remove t h =
  if not (Hashtbl.mem t.removed h) then begin
    Hashtbl.replace t.removed h ();
    t.live <- t.live - 1
  end

(* Walk the DAG collecting the best (lowest priority number) live accept. *)
let classify t header =
  t.s_classifications <- t.s_classifications + 1;
  let best = ref None in
  let consider (prio, h, action) =
    if not (Hashtbl.mem t.removed h) then
      match !best with
      | Some (p, _) when p <= prio -> ()
      | _ -> best := Some (prio, action)
  in
  let rec walk node =
    List.iter consider node.accepts;
    List.iter
      (fun (f, child) ->
        match Pattern.read_field header f with
        | Some v when v = f.Pattern.value -> walk child
        | Some _ | None -> ())
      node.branches
  in
  walk t.root;
  match !best with
  | Some (_, action) ->
      t.s_matches <- t.s_matches + 1;
      Some action
  | None -> None

let patterns t = t.live

let edges t =
  let rec count node =
    List.fold_left (fun acc (_, child) -> acc + 1 + count child) 0 node.branches
  in
  count t.root

let stats t = { classifications = t.s_classifications; matches = t.s_matches }
