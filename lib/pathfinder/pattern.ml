type field = { offset : int; len : int; mask : int; value : int }
type t = field list

let all_ones len = if len >= 8 then -1 else (1 lsl (len * 8)) - 1

let field ~offset ~len ?mask value =
  if len < 1 || len > 8 then invalid_arg "Pattern.field: len must be within 1..8";
  if offset < 0 then invalid_arg "Pattern.field: negative offset";
  let mask = match mask with Some m -> m | None -> all_ones len in
  { offset; len; mask; value = value land mask }

let read_masked header ~offset ~len ~mask =
  if offset < 0 || len < 1 || offset + len > Bytes.length header then None
  else begin
    let v = ref 0 in
    for i = 0 to len - 1 do
      v := (!v lsl 8) lor Char.code (Bytes.get header (offset + i))
    done;
    Some (!v land mask)
  end

let read_field header f =
  read_masked header ~offset:f.offset ~len:f.len ~mask:f.mask

let matches_field header f =
  match read_field header f with Some v -> v = f.value | None -> false

let matches t header = List.for_all (matches_field header) t

let equal_field a b =
  a.offset = b.offset && a.len = b.len && a.mask = b.mask && a.value = b.value

let pp_field fmt f =
  Format.fprintf fmt "[%d:%d & 0x%x = 0x%x]" f.offset f.len f.mask f.value

let pp fmt t =
  Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " ") pp_field fmt t
