(** Fragment-aware cell dispatcher.

    Only the first cell of an AAL5 frame carries the packet header that the
    classification DAG can inspect; PATHFINDER's fragmentation support
    remembers the classification of the first fragment and applies it to the
    rest of the frame (keyed here by VCI, since AAL5 cells of one frame on a
    virtual circuit arrive in order and are not interleaved with other frames
    on the same VC). *)

type 'a t

(** [create cls] wraps a classifier with per-VC fragment state. *)
val create : 'a Classifier.t -> 'a t

(** The classifier this dispatcher consults for first cells. *)
val classifier : 'a t -> 'a Classifier.t

(** [on_cell t cell] is the action for this cell: first cells are classified
    through the DAG (establishing a binding for the VC); continuation cells
    reuse the binding; the binding is dropped when the last cell passes. An
    unmatched first cell yields [None] and poisons the rest of its frame
    (all its cells yield [None]). *)
val on_cell : 'a t -> Cni_atm.Cell.t -> 'a option

(** Active (mid-frame) VC bindings. *)
val active_bindings : 'a t -> int

type stats = { first_cells : int; continuation_cells : int; unmatched_frames : int }

val stats : 'a t -> stats
