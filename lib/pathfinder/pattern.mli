(** PATHFINDER patterns.

    A pattern is an ordered list of {e cells} (the PATHFINDER paper's term;
    here called fields to avoid clashing with ATM cells): each field compares
    [len] bytes at [offset] in the packet header, under a mask, against a
    value. A packet matches the pattern when every field matches. Patterns
    with common prefixes share structure in the classifier DAG. *)

type field = {
  offset : int;  (** byte offset into the header *)
  len : int;  (** 1..8 bytes, read big-endian *)
  mask : int;  (** applied to the read value *)
  value : int;  (** expected masked value *)
}

type t = field list

(** [field ~offset ~len ?mask value] builds one comparison; [mask] defaults
    to all-ones over [len] bytes.
    @raise Invalid_argument if [len] is not within 1..8 or [offset] < 0. *)
val field : offset:int -> len:int -> ?mask:int -> int -> field

(** [matches t header] — reference (linear) matcher, used for testing the
    DAG classifier against. Fields whose range extends past the header fail
    to match. *)
val matches : t -> Bytes.t -> bool

(** [read_field header f] is [Some masked_value] or [None] if out of range. *)
val read_field : Bytes.t -> field -> int option

(** [read_masked header ~offset ~len ~mask] reads [len] bytes big-endian at
    [offset] and applies [mask], without needing a {!field} record. This is
    the primitive the indexed classifier uses to probe one field {e spec}
    shared by many sibling branches. [None] if the range falls outside the
    header. *)
val read_masked : Bytes.t -> offset:int -> len:int -> mask:int -> int option

(** Structural equality of two fields (offset, length, mask and expected
    value all equal). Branch sharing in the classifier DAG is defined in
    terms of this relation. *)
val equal_field : field -> field -> bool

(** Prints one field as [[offset:len & mask = value]]. *)
val pp_field : Format.formatter -> field -> unit

(** Prints a pattern as its space-separated fields. *)
val pp : Format.formatter -> t -> unit
