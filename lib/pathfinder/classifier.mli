(** The PATHFINDER classification DAG.

    Patterns are inserted with a priority equal to their insertion order
    (earlier = higher); common field prefixes share DAG nodes, which is what
    made the hardware implementation fast and is preserved here so the
    structure (node count vs. pattern count) can be observed. Classification
    walks the DAG with backtracking, returning the highest-priority matching
    pattern's action. *)

type 'a t

type handle

val create : unit -> 'a t

(** [add t pattern action] inserts; patterns may overlap. An empty pattern
    matches every packet. *)
val add : 'a t -> Pattern.t -> 'a -> handle

(** [remove t h] deactivates the pattern; structure shared with live
    patterns is retained. Removing twice is a no-op. *)
val remove : 'a t -> handle -> unit

(** [classify t header] is the action of the highest-priority live matching
    pattern, if any. *)
val classify : 'a t -> Bytes.t -> 'a option

(** Number of live patterns. *)
val patterns : 'a t -> int

(** Number of DAG edges (a measure of prefix sharing: inserting k patterns
    with a common prefix of length p creates the prefix edges only once). *)
val edges : 'a t -> int

type stats = { classifications : int; matches : int }

val stats : 'a t -> stats
