(** The PATHFINDER classification DAG, compiled to indexed dispatch.

    Patterns are inserted with a priority equal to their insertion order
    (earlier = higher); common field prefixes share DAG nodes, which is what
    made the hardware implementation fast and is preserved here so the
    structure (node count vs. pattern count) can be observed.

    Out-edges of a node are grouped by field {e spec} — the (offset, len,
    mask) triple — and within a spec indexed by expected value in a
    hashtable, so classifying at a node costs one header read and one hash
    probe per distinct spec rather than one comparison per sibling pattern.
    With the common layout where many patterns differ only in one field's
    value (e.g. one pattern per channel), classification is O(pattern depth)
    instead of O(patterns). Patterns whose fields read different parts of the
    header simply occupy different specs and are each probed once — the
    wildcard/fallback case degrades gracefully to one probe per distinct
    spec, never to one per pattern. *)

type 'a t

(** Identifies one inserted pattern for {!remove}. *)
type handle

(** [create ()] is an empty classifier. *)
val create : unit -> 'a t

(** [add t pattern action] inserts; patterns may overlap. An empty pattern
    matches every packet. Priority is insertion order: of several matching
    patterns, {!classify} returns the one added first. *)
val add : 'a t -> Pattern.t -> 'a -> handle

(** [remove t h] removes the pattern and eagerly sweeps its accept entry
    from the DAG, so repeated install/uninstall churn does not accumulate
    dead state ({!accept_entries} always equals {!patterns}). Interior
    structure shared with live patterns is retained. Removing twice is a
    no-op. *)
val remove : 'a t -> handle -> unit

(** [classify t header] is the action of the highest-priority live matching
    pattern, if any. *)
val classify : 'a t -> Bytes.t -> 'a option

(** [classify_linear t header] — reference semantics: a priority-ordered
    linear scan of every live pattern using {!Pattern.matches}. Always
    agrees with {!classify}; deliberately O(patterns), kept as the oracle
    for property tests and as the baseline for the classification
    microbenchmark. Does not update {!stats}. *)
val classify_linear : 'a t -> Bytes.t -> 'a option

(** Number of live patterns. *)
val patterns : 'a t -> int

(** Number of DAG edges (a measure of prefix sharing: inserting k patterns
    with a common prefix of length p creates the prefix edges only once). *)
val edges : 'a t -> int

(** Number of accept entries stored in the DAG. Equals {!patterns} — the
    invariant that removal sweeps dead accepts instead of tombstoning them;
    exposed so tests can assert it. *)
val accept_entries : 'a t -> int

type stats = {
  classifications : int;  (** total {!classify} calls *)
  matches : int;  (** classifications that returned an action *)
  probes : int;
      (** field reads performed across all classifications; [probes /
          classifications] is the observable O(pattern depth) cost of the
          indexed walk *)
}

(** Lifetime counters for this classifier. *)
val stats : 'a t -> stats
