module Cell = Cni_atm.Cell

type 'a binding = Matched of 'a | Poisoned

type 'a t = {
  cls : 'a Classifier.t;
  bindings : (int, 'a binding) Hashtbl.t;  (* vci -> in-progress frame binding *)
  mutable s_first : int;
  mutable s_cont : int;
  mutable s_unmatched : int;
}

type stats = { first_cells : int; continuation_cells : int; unmatched_frames : int }

let create cls = { cls; bindings = Hashtbl.create 64; s_first = 0; s_cont = 0; s_unmatched = 0 }
let classifier t = t.cls

let on_cell t (cell : Cell.t) =
  let vci = cell.header.vci in
  let finish binding =
    if cell.header.last then Hashtbl.remove t.bindings vci;
    match binding with Matched a -> Some a | Poisoned -> None
  in
  match Hashtbl.find_opt t.bindings vci with
  | Some binding ->
      t.s_cont <- t.s_cont + 1;
      finish binding
  | None -> (
      t.s_first <- t.s_first + 1;
      match Classifier.classify t.cls cell.payload with
      | Some action ->
          if not cell.header.last then Hashtbl.replace t.bindings vci (Matched action);
          Some action
      | None ->
          t.s_unmatched <- t.s_unmatched + 1;
          if not cell.header.last then Hashtbl.replace t.bindings vci Poisoned;
          None)

let active_bindings t = Hashtbl.length t.bindings

let stats t =
  { first_cells = t.s_first; continuation_cells = t.s_cont; unmatched_frames = t.s_unmatched }
