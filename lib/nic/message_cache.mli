(** The Message Cache (paper section 2.2).

    A set of page-sized cached buffers in the adaptor's memory, each bound to
    a host virtual-memory page through the buffer map. A buffer stays
    consistent with host memory because the snoopy interface observes every
    write that crosses the memory bus (CPU write-backs and flushes, and DMA
    writes) and — in the paper's design — updates the buffer in place
    (write-update). The [`Invalidate] mode is our ablation: snooped writes
    drop the binding instead.

    Replacement is the paper's "approximate LRU", implemented as a clock
    (second-chance) algorithm over the buffer slots. *)

type mode = Update | Invalidate

type t

(** When [registry] is given, statistics are registered as
    [node<N>/message-cache/<metric>] counters; otherwise standalone. *)
val create :
  ?registry:Cni_engine.Stats.Registry.t ->
  ?node:int ->
  page_bytes:int ->
  capacity_bytes:int ->
  mode:mode ->
  unit ->
  t

val capacity_pages : t -> int
val mode : t -> mode

(** [lookup t ~vpage] — transmit-path probe: returns whether a valid buffer
    is bound to the page, counts a hit or a miss, and refreshes the clock
    reference bit on a hit. *)
val lookup : t -> vpage:int -> bool

(** [contains t ~vpage] — probe without statistics or reference-bit side
    effects. *)
val contains : t -> vpage:int -> bool

(** [bind t ~vpage] creates (or refreshes) a binding, evicting the clock
    victim if the buffer pool is full. Used by transmit caching after a
    miss-DMA of a cacheable buffer and by receive caching for migratory
    pages. *)
val bind : t -> vpage:int -> unit

(** [snoop t ~addr ~bytes] — the snoopy interface: a range of host memory was
    written over the bus. In [Update] mode a covered binding absorbs the
    write (stays valid); in [Invalidate] mode it is dropped. *)
val snoop : t -> addr:int -> bytes:int -> unit

(** Drop a binding if present (e.g. the host reuses the page for something
    else). *)
val unbind : t -> vpage:int -> unit

type stats = {
  hits : int;
  misses : int;
  binds : int;
  evictions : int;
  snoop_updates : int;
  snoop_invalidates : int;
}

val stats : t -> stats
val reset_stats : t -> unit

(** Transmit hit ratio in percent (the paper's "network cache hit ratio");
    0. when there were no lookups — an idle node must not inflate aggregate
    ratios. *)
val hit_ratio : t -> float

(** [None] when there were no lookups; use this to exclude idle nodes from
    averages. *)
val hit_ratio_opt : t -> float option
