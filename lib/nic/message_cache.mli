(** The Message Cache (paper section 2.2).

    A set of page-sized cached buffers in the adaptor's memory, each bound to
    a host virtual-memory page through the buffer map. A buffer stays
    consistent with host memory because the snoopy interface observes every
    write that crosses the memory bus (CPU write-backs and flushes, and DMA
    writes) and — in the paper's design — updates the buffer in place
    (write-update). The [`Invalidate] mode is our ablation: snooped writes
    drop the binding instead.

    Replacement is the paper's "approximate LRU", implemented as a clock
    (second-chance) algorithm over the buffer slots. *)

type mode = Update | Invalidate

type t

(** When [registry] is given, statistics are registered as
    [node<N>/message-cache/<metric>] counters; otherwise standalone.

    [phys_to_vpage] is the snooper's RTLB (reverse TLB): it maps the
    {e physical} address of a bus write to the {e virtual} page number the
    buffer map is keyed by. The default is the identity mapping
    (physical address / page size), which is only correct while host buffers
    are identity-mapped — the configuration every current client uses. A
    system with real virtual memory must supply the translation, or snooped
    writes would update/invalidate the wrong binding. *)
val create :
  ?registry:Cni_engine.Stats.Registry.t ->
  ?node:int ->
  ?phys_to_vpage:(int -> int) ->
  page_bytes:int ->
  capacity_bytes:int ->
  mode:mode ->
  unit ->
  t

val capacity_pages : t -> int
val mode : t -> mode

(** [lookup t ~vpage] — transmit-path probe: returns whether a valid buffer
    is bound to the page, counts a hit or a miss, and refreshes the clock
    reference bit on a hit. *)
val lookup : t -> vpage:int -> bool

(** [contains t ~vpage] — probe without statistics or reference-bit side
    effects. *)
val contains : t -> vpage:int -> bool

(** [bind t ~vpage] creates (or refreshes) a binding, evicting the clock
    victim if the buffer pool is full. Used by transmit caching after a
    miss-DMA of a cacheable buffer and by receive caching for migratory
    pages. *)
val bind : t -> vpage:int -> unit

(** [snoop t ~addr ~bytes] — the snoopy interface: a range of host memory was
    written over the bus. [addr] is a {e physical} address; each covered page
    is translated through [phys_to_vpage] before the buffer map is consulted.
    In [Update] mode a covered binding absorbs the write (stays valid); in
    [Invalidate] mode it is dropped. *)
val snoop : t -> addr:int -> bytes:int -> unit

(** Drop a binding if present (e.g. the host reuses the page for something
    else). *)
val unbind : t -> vpage:int -> unit

type stats = {
  hits : int;
  misses : int;
  binds : int;
  evictions : int;
  snoop_updates : int;
  snoop_invalidates : int;
}

(** The pages currently bound, as recorded in the slot array (sorted). The
    buffer map must always agree with this; tests rely on the invariant. *)
val bound_pages : t -> int list

val stats : t -> stats
val reset_stats : t -> unit

(** Transmit hit ratio in percent (the paper's "network cache hit ratio");
    0. when there were no lookups — an idle node must not inflate aggregate
    ratios. *)
val hit_ratio : t -> float

(** [None] when there were no lookups; use this to exclude idle nodes from
    averages. *)
val hit_ratio_opt : t -> float option
