(** Application Device Channel descriptor rings.

    Each open connection gets a triplet of transmit / receive / free queues in
    the adaptor's dual-ported memory, shared between application and board
    (section 2.1). Manipulation is lock-free in the real design, relying only
    on the atomicity of loads and stores; here a bounded single-producer /
    single-consumer queue with blocking variants for fibers models the same
    behaviour (a full transmit ring stalls the producer exactly as the real
    board would). *)

type 'a t

(** When [registry] is given, the ring's counters are registered as
    [node<N>/<subsystem>/{pushes,pops,full_stalls,empty_stalls}]
    ([subsystem] defaults to ["ring"]); otherwise they are standalone. *)
val create :
  ?registry:Cni_engine.Stats.Registry.t ->
  ?node:int ->
  ?subsystem:string ->
  slots:int ->
  unit ->
  'a t
val slots : 'a t -> int
val length : 'a t -> int
val is_full : 'a t -> bool
val is_empty : 'a t -> bool

(** Non-blocking; [false] when full. *)
val try_push : 'a t -> 'a -> bool

(** Non-blocking; [None] when empty. *)
val try_pop : 'a t -> 'a option

(** Blocking variants (fiber context). *)
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a

type stats = { pushes : int; pops : int; full_stalls : int; empty_stalls : int }

val stats : 'a t -> stats
