module Sync = Cni_engine.Sync

type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  space : Sync.Semaphore.t;
  items : Sync.Semaphore.t;
  mutable s_pushes : int;
  mutable s_pops : int;
  mutable s_full_stalls : int;
  mutable s_empty_stalls : int;
}

type stats = { pushes : int; pops : int; full_stalls : int; empty_stalls : int }

let create ~slots =
  if slots < 1 then invalid_arg "Ring.create: need at least one slot";
  {
    capacity = slots;
    q = Queue.create ();
    space = Sync.Semaphore.create slots;
    items = Sync.Semaphore.create 0;
    s_pushes = 0;
    s_pops = 0;
    s_full_stalls = 0;
    s_empty_stalls = 0;
  }

let slots t = t.capacity
let length t = Queue.length t.q
let is_full t = Queue.length t.q >= t.capacity
let is_empty t = Queue.is_empty t.q

let try_push t v =
  if Sync.Semaphore.try_acquire t.space then begin
    Queue.add v t.q;
    t.s_pushes <- t.s_pushes + 1;
    Sync.Semaphore.release t.items;
    true
  end
  else false

let try_pop t =
  if Sync.Semaphore.try_acquire t.items then begin
    let v = Queue.take t.q in
    t.s_pops <- t.s_pops + 1;
    Sync.Semaphore.release t.space;
    Some v
  end
  else None

let push t v =
  if Sync.Semaphore.available t.space = 0 then t.s_full_stalls <- t.s_full_stalls + 1;
  Sync.Semaphore.acquire t.space;
  Queue.add v t.q;
  t.s_pushes <- t.s_pushes + 1;
  Sync.Semaphore.release t.items

let pop t =
  if Sync.Semaphore.available t.items = 0 then t.s_empty_stalls <- t.s_empty_stalls + 1;
  Sync.Semaphore.acquire t.items;
  let v = Queue.take t.q in
  t.s_pops <- t.s_pops + 1;
  Sync.Semaphore.release t.space;
  v

let stats t =
  {
    pushes = t.s_pushes;
    pops = t.s_pops;
    full_stalls = t.s_full_stalls;
    empty_stalls = t.s_empty_stalls;
  }
