module Sync = Cni_engine.Sync
module Stats = Cni_engine.Stats

type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  space : Sync.Semaphore.t;
  items : Sync.Semaphore.t;
  s_pushes : Stats.Counter.t;
  s_pops : Stats.Counter.t;
  s_full_stalls : Stats.Counter.t;
  s_empty_stalls : Stats.Counter.t;
}

type stats = { pushes : int; pops : int; full_stalls : int; empty_stalls : int }

let create ?registry ?node ?(subsystem = "ring") ~slots () =
  if slots < 1 then invalid_arg "Ring.create: need at least one slot";
  let counter name =
    match registry with
    | Some reg -> Stats.Registry.counter reg ?node ~subsystem name
    | None -> Stats.Counter.create name
  in
  {
    capacity = slots;
    q = Queue.create ();
    space = Sync.Semaphore.create slots;
    items = Sync.Semaphore.create 0;
    s_pushes = counter "pushes";
    s_pops = counter "pops";
    s_full_stalls = counter "full_stalls";
    s_empty_stalls = counter "empty_stalls";
  }

let slots t = t.capacity
let length t = Queue.length t.q
let is_full t = Queue.length t.q >= t.capacity
let is_empty t = Queue.is_empty t.q

let try_push t v =
  if Sync.Semaphore.try_acquire t.space then begin
    Queue.add v t.q;
    Stats.Counter.incr t.s_pushes;
    Sync.Semaphore.release t.items;
    true
  end
  else false

let try_pop t =
  if Sync.Semaphore.try_acquire t.items then begin
    let v = Queue.take t.q in
    Stats.Counter.incr t.s_pops;
    Sync.Semaphore.release t.space;
    Some v
  end
  else None

let push t v =
  if Sync.Semaphore.available t.space = 0 then Stats.Counter.incr t.s_full_stalls;
  Sync.Semaphore.acquire t.space;
  Queue.add v t.q;
  Stats.Counter.incr t.s_pushes;
  Sync.Semaphore.release t.items

let pop t =
  if Sync.Semaphore.available t.items = 0 then Stats.Counter.incr t.s_empty_stalls;
  Sync.Semaphore.acquire t.items;
  let v = Queue.take t.q in
  Stats.Counter.incr t.s_pops;
  Sync.Semaphore.release t.space;
  v

let stats t =
  {
    pushes = Stats.Counter.value t.s_pushes;
    pops = Stats.Counter.value t.s_pops;
    full_stalls = Stats.Counter.value t.s_full_stalls;
    empty_stalls = Stats.Counter.value t.s_empty_stalls;
  }
