(** Application Device Channels as a user-level messaging API
    (paper section 2.1).

    Opening a channel allocates a receive ring in the board's dual-ported
    memory (the transmit and free queues of the paper's triplet are folded
    into the send path and the ring's slot bound respectively) and programs
    the PATHFINDER to steer matching packets into it. The application then
    sends and receives without any kernel involvement; protection was checked
    once, at channel-open time.

    Receive-side flow control is the free queue's: the ring has a fixed
    number of slots, and an arriving packet that finds the ring full stalls
    the board's handler until the application has consumed a slot. *)

type 'a t

(** [open_channel nic ~channel ()] — allocates the ring (default 32 slots,
    consuming board memory like any AIH installation) and installs the
    classifier pattern for [channel]. Incoming bulk data is DMAed to the
    channel's posted receive buffer: [buffer_base] when given, otherwise a
    channel-indexed page in a dedicated region — two channels never share a
    delivery page.
    @raise Failure if the board cannot hold the ring. *)
val open_channel :
  'a Nic.t -> channel:int -> ?slots:int -> ?buffer_base:int -> unit -> 'a t

(** Host virtual address incoming bulk data for this channel is DMAed to. *)
val buffer_base : 'a t -> int

(** Tear down: removes the pattern; later arrivals for the channel fall to
    the NIC's default handler. *)
val close : 'a t -> unit

(** [send t ~dst ?data payload] transmits on this channel (host-side cost
    charged in the calling fiber, as {!Nic.send}). [data] attaches a bulk
    buffer. *)
val send : 'a t -> dst:int -> ?data:Nic.data -> 'a -> unit

(** Blocking receive (fiber context). The caller is the polling host: use
    {!Cni_cluster.Node.blocking} around it for time accounting. *)
val recv : 'a t -> 'a Cni_atm.Fabric.packet

val try_recv : 'a t -> 'a Cni_atm.Fabric.packet option

(** Packets queued and not yet consumed. *)
val backlog : 'a t -> int

val channel_id : 'a t -> int
