module Engine = Cni_engine.Engine
module Sync = Cni_engine.Sync
module Time = Cni_engine.Time
module Stats = Cni_engine.Stats
module Trace = Cni_engine.Trace
module Params = Cni_machine.Params
module Bus = Cni_machine.Bus
module Fabric = Cni_atm.Fabric
module Classifier = Cni_pathfinder.Classifier
module Pattern = Cni_pathfinder.Pattern

type data = No_data | Page of { vaddr : int; bytes : int; cacheable : bool }

type host = {
  host_waiting : unit -> bool;
  steal : Time.t -> unit;
  invalidate_range : addr:int -> bytes:int -> unit;
  overhead : Time.t -> unit;
}

type 'a ctx = {
  ctx_node : int;
  charge : int -> unit;
  reply : dst:int -> header:Bytes.t -> body_bytes:int -> data:data -> payload:'a -> unit;
  deliver_page : vaddr:int -> bytes:int -> cacheable:bool -> unit;
}

(* Parameters of the adaptive receive engine: an EWMA over packet
   interarrival gaps picks one of three wakeup modes, with hysteresis so a
   single outlier gap does not flap the mode. *)
type rx_adaptive = {
  ra_alpha : float;
  ra_poll_gap : Time.t;
  ra_interrupt_gap : Time.t;
  ra_hysteresis : float;
}

let default_rx_adaptive =
  { ra_alpha = 0.25;
    ra_poll_gap = Time.us 20;
    ra_interrupt_gap = Time.us 160;
    ra_hysteresis = 2.0 }

type rx_policy = Rx_interrupt | Rx_poll | Rx_hybrid | Rx_adaptive of rx_adaptive

type rx_mode = [ `Interrupt | `Hybrid | `Poll ]

type cni_options = {
  mc_bytes : int;
  mc_mode : Message_cache.mode;
  aih : bool;
  rx_policy : rx_policy;
  rx_batch : int;
  rx_poll_period : Time.t;
  mc_phys_to_vpage : (int -> int) option;
}

let default_cni_options =
  { mc_bytes = Params.default.Params.message_cache_bytes;
    mc_mode = Message_cache.Update;
    aih = true;
    rx_policy = Rx_hybrid;
    rx_batch = 1;
    rx_poll_period = Time.us 5;
    mc_phys_to_vpage = None }

let check_cni_options o =
  if o.rx_batch < 1 then invalid_arg "Nic: rx_batch must be >= 1";
  if o.rx_poll_period <= Time.zero then invalid_arg "Nic: rx_poll_period must be positive";
  match o.rx_policy with
  | Rx_adaptive a ->
      if not (a.ra_alpha > 0. && a.ra_alpha <= 1.) then
        invalid_arg "Nic: ra_alpha must be within (0, 1]";
      if a.ra_hysteresis < 1. then invalid_arg "Nic: ra_hysteresis must be >= 1";
      if a.ra_poll_gap >= a.ra_interrupt_gap then
        invalid_arg "Nic: ra_poll_gap must be below ra_interrupt_gap"
  | Rx_interrupt | Rx_poll | Rx_hybrid -> ()

type osiris_options = {
  software_classify_nic_cycles : int;
      (* per-packet software demultiplexing on the board processor; the
         paper's ATOMIC experience: expensive, and worse under i-cache
         pressure from resident handlers *)
}

let default_osiris_options = { software_classify_nic_cycles = 120 }

type kind = Cni of cni_options | Osiris of osiris_options | Standard

type 'a handler_fn = 'a ctx -> 'a Fabric.packet -> unit

(* One unacknowledged sequenced transmission, kept until its ack arrives or
   the retry budget runs out. *)
type 'a tx_entry = {
  e_dst : int;
  e_channel : int;
  e_seq : int;  (* bare sequence number; stable across crash re-stamping *)
  mutable e_aux : int;  (* (epoch, seq) as stamped on the wire; the pending key *)
  mutable e_header : Bytes.t;
  e_body_bytes : int;
  e_data : data;
  e_payload : 'a;
  mutable e_tries : int;  (* transmissions so far *)
  mutable e_rto : Time.t;  (* next retransmission timeout *)
  mutable e_acked : bool;
}

type 'a rel = {
  r_cfg : Reliable.config;
  r_next_seq : (int, int ref) Hashtbl.t;  (* per-destination allocator *)
  r_pending : (int * int, 'a tx_entry) Hashtbl.t;  (* (dst, aux) *)
  mutable r_parked : 'a tx_entry list;
      (* un-acked entries surviving a board crash in the host-resident
         descriptor rings, newest first; re-stamped and re-sent at restart *)
  r_windows : (int, Reliable.Window.t) Hashtbl.t;  (* per-source dedup *)
  r_peer_epoch : (int, int) Hashtbl.t;  (* newest epoch seen per source *)
  r_retransmits : Stats.Counter.t;
  r_acks_tx : Stats.Counter.t;
  r_acks_rx : Stats.Counter.t;
  r_rx_duplicates : Stats.Counter.t;
  r_rto_capped : Stats.Counter.t;  (* arm events clamped at max_rto *)
}

(* One replayable handler installation: a scrubbed board rebuilds its
   classifier and code segments from this log at restart (re-verifying
   firmware programs through the static verifier). *)
type install_entry = {
  mutable ie_handle : Classifier.handle;
  mutable ie_live : bool;  (* cleared by uninstall *)
  ie_replay : unit -> Classifier.handle option;  (* None: re-verification rejected *)
}

type 'a t = {
  eng : Engine.t;
  bus : Bus.t;
  fabric : 'a Fabric.t;
  p : Params.t;
  node : int;
  kind : kind;
  mc : Message_cache.t option;
  host : host;
  registry : Stats.Registry.t option;
  rel : 'a rel option;
  nic_proc : Sync.Semaphore.t;  (* the 33 MHz processor is a shared resource *)
  tx_ring : unit Ring.t;  (* transmit descriptors are processed in order; a
                             single-slot descriptor ring whose full_stalls
                             counter exposes transmit-queue contention *)
  host_proc : Sync.Semaphore.t;  (* interrupt-level protocol work on the host
                                    serialises as well *)
  classifier : ('a handler_fn * int) Classifier.t;
  handler_sizes : (Classifier.handle, int) Hashtbl.t;
  mutable default_handler : 'a handler_fn;
  mutable s_handler_code_bytes : int;
  (* crash/restart state *)
  mutable alive : bool;
  mutable epoch : int;  (* restart epoch stamped into sequenced aux fields *)
  mutable scrubbed : bool;  (* board memory wiped; restart must replay installs *)
  mutable install_log : install_entry list;  (* newest first *)
  mutable restarted_at : Time.t option;  (* pending recovery-latency measurement *)
  mutable recovery_latencies : Time.t list;  (* newest first *)
  (* receive engine state (CNI, host delivery path) *)
  rx_policy : rx_policy;
  rx_batch : int;
  rx_poll_period : Time.t;
  rx_queue : ('a handler_fn * 'a Fabric.packet) Queue.t;
  mutable rx_wakeup_armed : bool;
  mutable rx_last_arrival : Time.t option;
  mutable rx_gap_ewma : float option;  (* mean interarrival gap, ps *)
  mutable rx_mode_cur : rx_mode;  (* adaptive policy's current mode *)
  (* error-path counters, registered on first increment so clean runs leave
     the metrics snapshot untouched *)
  lazy_counters : (string, Stats.Counter.t) Hashtbl.t;
  s_unmatched : Stats.Counter.t;
  s_tx_packets : Stats.Counter.t;
  s_tx_data_packets : Stats.Counter.t;
  s_tx_dma_bytes : Stats.Counter.t;
  s_rx_packets : Stats.Counter.t;
  s_rx_dma_bytes : Stats.Counter.t;
  s_interrupts : Stats.Counter.t;
  s_polls : Stats.Counter.t;
  s_wasted_polls : Stats.Counter.t;
  s_rx_coalesced : Stats.Counter.t;
  s_rx_mode_switches : Stats.Counter.t;
  s_mode_interrupt : Stats.Counter.t;
  s_mode_hybrid : Stats.Counter.t;
  s_mode_poll : Stats.Counter.t;
}

type stats = {
  tx_packets : int;
  tx_data_packets : int;
  tx_dma_bytes : int;
  rx_packets : int;
  rx_dma_bytes : int;
  interrupts : int;
  polls : int;
  wasted_polls : int;
  coalesced : int;
  mode_switches : int;
  mode_interrupt : int;
  mode_hybrid : int;
  mode_poll : int;
  unmatched : int;
}

type rel_stats = {
  retransmits : int;
  acks_tx : int;
  acks_rx : int;
  rx_duplicates : int;
  tx_unacked : int;
  rto_capped : int;
}

let node t = t.node
let params t = t.p
let is_cni t = match t.kind with Cni _ -> true | Osiris _ | Standard -> false
let aih_enabled t = match t.kind with Cni { aih; _ } -> aih | Osiris _ | Standard -> false
let message_cache t = t.mc

let network_cache_hit_ratio t =
  match t.mc with Some mc -> Message_cache.hit_ratio mc | None -> 0.

(* [None] for boards without a Message Cache or with no lookups yet; lets
   aggregations skip idle nodes. *)
let network_cache_hit_ratio_opt t =
  match t.mc with Some mc -> Message_cache.hit_ratio_opt mc | None -> None

let registry t = t.registry
let reliability t = Option.map (fun r -> r.r_cfg) t.rel

let vpage_of t vaddr = vaddr / t.p.Params.page_bytes

let lcounter t name =
  match Hashtbl.find_opt t.lazy_counters name with
  | Some c -> c
  | None ->
      let c =
        match t.registry with
        | Some reg -> Stats.Registry.counter reg ~node:t.node ~subsystem:"nic" name
        | None -> Stats.Counter.create name
      in
      Hashtbl.replace t.lazy_counters name c;
      c

let lvalue t name =
  match Hashtbl.find_opt t.lazy_counters name with
  | Some c -> Stats.Counter.value c
  | None -> 0

let rx_undecodable t = lvalue t "rx_undecodable"
let rx_crc_errors t = lvalue t "rx_crc_errors"

let rel_stats t =
  Option.map
    (fun r ->
      {
        retransmits = Stats.Counter.value r.r_retransmits;
        acks_tx = Stats.Counter.value r.r_acks_tx;
        acks_rx = Stats.Counter.value r.r_acks_rx;
        rx_duplicates = Stats.Counter.value r.r_rx_duplicates;
        tx_unacked = Hashtbl.length r.r_pending;
        rto_capped = Stats.Counter.value r.r_rto_capped;
      })
    t.rel

(* frames sequenced but not yet acknowledged; 0 with reliability off —
   lets a sender serialise on delivery without an application-level ack *)
let rel_pending_count t = match t.rel with Some r -> Hashtbl.length r.r_pending | None -> 0

(* Occupy the board's processor for a bounded burst of work. Concurrent
   transmissions, receptions and handler activations on one board serialise
   here; a handler that blocks (e.g. a server-side fault) releases the
   processor between bursts, so reply processing can still run. *)
let nic_busy t d =
  if d > Time.zero then begin
    Sync.Semaphore.acquire t.nic_proc;
    Engine.delay d;
    Sync.Semaphore.release t.nic_proc
  end

(* Same for interrupt-level work on the host CPU: two packets arriving at a
   standard board do not get their kernel service in parallel. Held only per
   bounded burst, so a protocol handler that blocks lets later interrupts
   through (nested service, as a real kernel would). *)
let host_busy t d =
  if d > Time.zero then begin
    Sync.Semaphore.acquire t.host_proc;
    Engine.delay d;
    Sync.Semaphore.release t.host_proc
  end

(* Kernel work performed on the host without an application fiber to bill:
   occupy the interrupt level, report it as service and steal the CPU from a
   computing application (mirrors run_on_host's accounting). *)
let host_kernel_burst t d =
  host_busy t d;
  t.host.overhead d;
  if not (t.host.host_waiting ()) then t.host.steal d

(* ------------------------------------------------------------------ *)
(* Transmit                                                           *)
(* ------------------------------------------------------------------ *)

(* NIC-side half of a transmission; runs in its own fiber. The board picks
   the descriptor off the transmit queue, resolves the data buffer (Message
   Cache on CNI), segments the frame and hands the cells to the wire. *)
let nic_transmit t ~dst ~header ~body_bytes ~data ~payload =
  let p = t.p in
  if not t.alive then begin
    (* a descriptor reaching a dead board is lost with it (a sequenced
       original stays pending and retransmits after the restart) *)
    Stats.Counter.incr (lcounter t "crash_tx_drops")
  end
  else begin
  (* the board works its transmit queue one descriptor at a time: a pipelined
     resend of a buffer must observe the Message Cache binding its
     predecessor created *)
  Ring.push t.tx_ring ();
  if Trace.enabled_cat Trace.Nic then
    Trace.span_begin ~t_ps:(Time.to_ps (Engine.now t.eng)) ~node:t.node Trace.Nic
      ~label:"tx" ~payload:dst;
  nic_busy t (Params.nic_cycles p p.Params.handler_dispatch_nic_cycles);
  (match data with
  | No_data -> ()
  | Page { vaddr; bytes; cacheable } -> (
      Stats.Counter.incr t.s_tx_data_packets;
      match t.kind with
      | Cni _ -> (
          match t.mc with
          | Some mc when Message_cache.lookup mc ~vpage:(vpage_of t vaddr) ->
              (* transmit caching hit: the board already holds a consistent
                 copy; no host-memory DMA *)
              ()
          | Some mc ->
              Bus.dma t.bus ~dir:Bus.Dma_from_memory ~addr:vaddr ~bytes;
              Stats.Counter.add t.s_tx_dma_bytes bytes;
              if cacheable then Message_cache.bind mc ~vpage:(vpage_of t vaddr)
          | None ->
              Bus.dma t.bus ~dir:Bus.Dma_from_memory ~addr:vaddr ~bytes;
              Stats.Counter.add t.s_tx_dma_bytes bytes)
      | Osiris _ | Standard ->
          Bus.dma t.bus ~dir:Bus.Dma_from_memory ~addr:vaddr ~bytes;
          Stats.Counter.add t.s_tx_dma_bytes bytes));
  (* bulk data rides in the same frame: it must be counted in the wire size
     (cells, serialisation) exactly like inline body bytes *)
  let data_bytes = match data with No_data -> 0 | Page { bytes; _ } -> bytes in
  let pkt =
    { Fabric.src = t.node; dst; vci = t.node; header; body_bytes = body_bytes + data_bytes;
      payload; crc_ok = true }
  in
  let cells = Fabric.packet_cells p pkt in
  nic_busy t (Params.nic_cycles p (cells * p.Params.sar_cell_nic_cycles));
  Stats.Counter.incr t.s_tx_packets;
  if Trace.enabled_cat Trace.Nic then
    Trace.span_end ~t_ps:(Time.to_ps (Engine.now t.eng)) ~node:t.node Trace.Nic
      ~label:"tx" ~payload:dst;
  ignore (Ring.pop t.tx_ring : unit);
  Fabric.send t.fabric pkt
  end

(* Arm (or re-arm) the retransmission timer for one unacked entry. On the
   CNI/OSIRIS boards the timer and the resend run in board firmware; the
   standard interface keeps them in the kernel, so every firing costs the
   host an interrupt plus the kernel send path. Exhausting the budget kills
   the run with a structured error in place of a silent hang. *)
let rec arm_retransmit t r (e : 'a tx_entry) =
  Engine.after t.eng e.e_rto (fun () ->
      if not e.e_acked then
        if e.e_tries >= r.r_cfg.Reliable.max_tries then begin
          Hashtbl.remove r.r_pending (e.e_dst, e.e_aux);
          let f =
            { Reliable.node = t.node; dst = e.e_dst; channel = e.e_channel;
              seq = e.e_seq; tries = e.e_tries }
          in
          (* a crashed destination is a diagnosis, not a timeout: the sender
             learns its peer is dead rather than merely unreachable *)
          let exn =
            if Fabric.node_down t.fabric ~node:e.e_dst then Reliable.Peer_dead f
            else Reliable.Delivery_failed f
          in
          Engine.spawn t.eng ~name:"nic-delivery-failed" (fun () -> raise exn)
        end
        else begin
          e.e_tries <- e.e_tries + 1;
          let next_rto = Time.(e.e_rto * r.r_cfg.Reliable.backoff) in
          if next_rto > r.r_cfg.Reliable.max_rto then begin
            Stats.Counter.incr r.r_rto_capped;
            e.e_rto <- r.r_cfg.Reliable.max_rto
          end
          else e.e_rto <- next_rto;
          Stats.Counter.incr r.r_retransmits;
          if Trace.enabled_cat Trace.Nic then
            Trace.emit ~t_ps:(Time.to_ps (Engine.now t.eng)) ~node:t.node Trace.Nic
              ~label:"retransmit" ~payload:e.e_seq;
          Engine.spawn t.eng ~name:"nic-retransmit" (fun () ->
              (match t.kind with
              | Cni _ | Osiris _ -> ()
              | Standard ->
                  Stats.Counter.incr t.s_interrupts;
                  host_kernel_burst t
                    Time.(t.p.Params.interrupt_latency
                          + Params.cpu_cycles t.p t.p.Params.kernel_send_cycles));
              nic_transmit t ~dst:e.e_dst ~header:e.e_header ~body_bytes:e.e_body_bytes
                ~data:e.e_data ~payload:e.e_payload);
          arm_retransmit t r e
        end)

(* Queue a frame for transmission. With reliability enabled, every Wire
   frame is stamped with a per-destination sequence number and tracked until
   acknowledged; non-Wire frames (none in the current protocols) pass
   through unsequenced. *)
let submit t ~dst ~header ~body_bytes ~data ~payload =
  if not t.alive then
    (* a descriptor posted into a dead board's ADC window vanishes with the
       board — in particular no sequence number is allocated, so nothing can
       later retransmit under a stale epoch (the host freeze makes this path
       all but unreachable anyway) *)
    Stats.Counter.incr (lcounter t "crash_tx_drops")
  else
  let plain () =
    Engine.spawn t.eng ~name:"nic-tx" (fun () ->
        nic_transmit t ~dst ~header ~body_bytes ~data ~payload)
  in
  match t.rel with
  | None -> plain ()
  | Some r -> (
      match Wire.decode_opt header with
      | None -> plain ()
      | Some h ->
          let next =
            match Hashtbl.find_opt r.r_next_seq dst with
            | Some c -> c
            | None ->
                let c = ref 0 in
                Hashtbl.replace r.r_next_seq dst c;
                c
          in
          incr next;
          let seq = !next in
          let aux = Reliable.aux_of ~epoch:t.epoch ~seq in
          let header = Wire.with_aux header aux in
          let e =
            { e_dst = dst; e_channel = h.Wire.channel; e_seq = seq; e_aux = aux;
              e_header = header; e_body_bytes = body_bytes; e_data = data;
              e_payload = payload; e_tries = 1; e_rto = r.r_cfg.Reliable.timeout;
              e_acked = false }
          in
          Hashtbl.replace r.r_pending (dst, aux) e;
          arm_retransmit t r e;
          Engine.spawn t.eng ~name:"nic-tx" (fun () ->
              nic_transmit t ~dst ~header ~body_bytes ~data ~payload))

(* Host-side entry: charge the host path cost, then hand off to the board. *)
let send t ~dst ~header ~body_bytes ~data ~payload =
  let p = t.p in
  let host_cycles =
    match t.kind with
    | Cni _ | Osiris _ -> p.Params.adc_enqueue_cycles (* user-level send path *)
    | Standard -> p.Params.kernel_send_cycles
  in
  let cost = Params.cpu_cycles p host_cycles in
  t.host.overhead cost;
  Engine.delay cost;
  submit t ~dst ~header ~body_bytes ~data ~payload

(* ------------------------------------------------------------------ *)
(* Receive                                                            *)
(* ------------------------------------------------------------------ *)

let make_ctx t ~on_charge ~reply_host_cycles =
  let ctx =
    {
      ctx_node = t.node;
      charge = on_charge;
      reply =
        (fun ~dst ~header ~body_bytes ~data ~payload ->
          (* replies issued from protocol context: under AIH the board is
             driven directly (no host cost); a host-resident handler pays its
             kernel or ADC send path, charged through [on_charge] *)
          if reply_host_cycles > 0 then on_charge reply_host_cycles;
          submit t ~dst ~header ~body_bytes ~data ~payload);
      deliver_page =
        (fun ~vaddr ~bytes ~cacheable ->
          if cacheable then
            Option.iter (fun mc -> Message_cache.bind mc ~vpage:(vpage_of t vaddr)) t.mc;
          Bus.dma t.bus ~dir:Bus.Dma_to_memory ~addr:vaddr ~bytes;
          Stats.Counter.add t.s_rx_dma_bytes bytes;
          t.host.invalidate_range ~addr:vaddr ~bytes)
    }
  in
  ctx

(* Run a protocol handler on the host CPU, charging its time as host
   overhead and stealing the CPU from a computing application. *)
let run_on_host t ~base ~reply_host_cycles handler pkt =
  let p = t.p in
  let spent = ref base in
  let ctx =
    make_ctx t ~reply_host_cycles
      ~on_charge:(fun n ->
        let d = Params.cpu_cycles p n in
        spent := Time.( + ) !spent d;
        host_busy t d)
  in
  handler ctx pkt;
  t.host.overhead !spent;
  if not (t.host.host_waiting ()) then t.host.steal !spent

(* Host-initiated protocol action without an incoming packet: the local
   arrival of a NIC-resident collective, for instance, is the host posting a
   descriptor that the board's handler then processes. Under AIH the board
   picks the descriptor up asynchronously (dispatch + [ctx.charge] at NIC
   cycles) and the host only pays its enqueue cost; on every other interface
   the protocol step runs synchronously on the host CPU in the calling fiber
   — no interrupt is taken (the host initiated the action), but the work is
   still serialised with interrupt-level service and reported as overhead. *)
let local_dispatch t f =
  let p = t.p in
  let enqueue_cycles =
    match t.kind with
    | Cni _ | Osiris _ -> p.Params.adc_enqueue_cycles
    | Standard -> p.Params.kernel_send_cycles
  in
  let cost = Params.cpu_cycles p enqueue_cycles in
  t.host.overhead cost;
  Engine.delay cost;
  if aih_enabled t then
    Engine.spawn t.eng ~name:"nic-local-dispatch" (fun () ->
        nic_busy t (Params.nic_cycles p p.Params.handler_dispatch_nic_cycles);
        let ctx =
          make_ctx t ~reply_host_cycles:0
            ~on_charge:(fun n -> nic_busy t (Params.nic_cycles p n))
        in
        f ctx)
  else begin
    let spent = ref Time.zero in
    let ctx =
      make_ctx t ~reply_host_cycles:enqueue_cycles
        ~on_charge:(fun n ->
          let d = Params.cpu_cycles p n in
          spent := Time.( + ) !spent d;
          host_busy t d)
    in
    f ctx;
    t.host.overhead !spent
  end

(* The classification-stage cost of looking at one frame and discarding it
   (a duplicate the window caught): hardware lookup on the CNI, software
   demux on OSIRIS, a full interrupt + kernel demux on the standard board. *)
let discard_cost t =
  let p = t.p in
  match t.kind with
  | Cni _ ->
      Engine.delay (Time.ns p.Params.pathfinder_cell_ns);
      nic_busy t (Params.nic_cycles p p.Params.handler_dispatch_nic_cycles)
  | Osiris { software_classify_nic_cycles } ->
      nic_busy t (Params.nic_cycles p software_classify_nic_cycles)
  | Standard ->
      Stats.Counter.incr t.s_interrupts;
      host_kernel_burst t
        Time.(p.Params.interrupt_latency + Params.cpu_cycles p p.Params.kernel_recv_cycles)

(* Acknowledge a sequenced frame. The CNI/OSIRIS boards generate the ack in
   firmware (its transmit cost is the usual board dispatch + SAR inside
   nic_transmit); the standard interface builds it in the kernel. *)
let send_ack t r ~dst ~seq =
  Stats.Counter.incr r.r_acks_tx;
  let header =
    Wire.encode
      { Wire.kind = Reliable.ack_kind; cacheable = false; has_data = false;
        src = t.node; channel = Reliable.ack_channel; obj = seq; aux = 0 }
  in
  Engine.spawn t.eng ~name:"nic-ack" (fun () ->
      (match t.kind with
      | Cni _ | Osiris _ -> ()
      | Standard ->
          host_kernel_burst t (Params.cpu_cycles t.p t.p.Params.kernel_send_cycles));
      (* acks carry no payload and are intercepted before classification at
         the far end, so the placeholder is never read (cf. Mp's barrier
         placeholder) *)
      nic_transmit t ~dst ~header ~body_bytes:0 ~data:No_data ~payload:(Obj.magic 0))

(* An ack arrived: settle the matching pending entry. *)
let handle_ack t (h : Wire.t) (pkt : 'a Fabric.packet) =
  match t.rel with
  | None -> () (* reliability off: stray ack, drop silently *)
  | Some r -> (
      Stats.Counter.incr r.r_acks_rx;
      (match Hashtbl.find_opt r.r_pending (pkt.Fabric.src, h.Wire.obj) with
      | Some e ->
          e.e_acked <- true;
          Hashtbl.remove r.r_pending (pkt.Fabric.src, h.Wire.obj)
      | None -> () (* ack for an already-settled (re)transmission *));
      discard_cost t)

(* Duplicate suppression + acknowledgment for one decoded frame; [true] when
   the frame is fresh and must be dispatched. Unsequenced frames (aux = 0:
   traffic from a peer without reliability, or control frames) pass through
   untouched. *)
let rel_admit t (h : Wire.t) (pkt : 'a Fabric.packet) =
  match t.rel with
  | None -> true
  | Some r ->
      if h.Wire.aux = 0 then true
      else begin
        let epoch, seq = Reliable.split_aux h.Wire.aux in
        let known = Option.value (Hashtbl.find_opt r.r_peer_epoch pkt.Fabric.src) ~default:0 in
        if epoch < known then begin
          (* a retransmission queued before the source's board crashed:
             dropping it (unacked) keeps the pre-crash sequence space from
             bleeding into the new epoch's window *)
          Stats.Counter.incr (lcounter t "rx_stale_epoch");
          if Trace.enabled_cat Trace.Nic then
            Trace.emit ~t_ps:(Time.to_ps (Engine.now t.eng)) ~node:t.node Trace.Nic
              ~label:"rx-stale-epoch" ~payload:h.Wire.aux;
          discard_cost t;
          false
        end
        else begin
        (* the source restarted: adopt its new epoch. The duplicate window
           is deliberately NOT reset — the sender's sequence allocator is
           host-resident and survives its board crash, so the window stays
           valid, and it is what suppresses the post-restart re-send of a
           frame whose pre-crash transmission already landed *)
        if epoch > known then Hashtbl.replace r.r_peer_epoch pkt.Fabric.src epoch;
        let w =
          match Hashtbl.find_opt r.r_windows pkt.Fabric.src with
          | Some w -> w
          | None ->
              let w = Reliable.Window.create () in
              Hashtbl.replace r.r_windows pkt.Fabric.src w;
              w
        in
        let fresh = Reliable.Window.observe w seq = `Fresh in
        (* ack duplicates too: the retransmission usually means our previous
           ack was lost *)
        send_ack t r ~dst:pkt.Fabric.src ~seq:h.Wire.aux;
        if not fresh then begin
          Stats.Counter.incr r.r_rx_duplicates;
          if Trace.enabled_cat Trace.Nic then
            Trace.emit ~t_ps:(Time.to_ps (Engine.now t.eng)) ~node:t.node Trace.Nic
              ~label:"rx-duplicate" ~payload:h.Wire.aux;
          discard_cost t
        end;
        fresh
        end
      end

(* ------------------------------------------------------------------ *)
(* Receive wakeup policy                                              *)
(* ------------------------------------------------------------------ *)

(* The mode a host wakeup will use right now. Fixed policies are their own
   mode; the adaptive policy follows its estimator. *)
let effective_mode t : rx_mode =
  match t.rx_policy with
  | Rx_interrupt -> `Interrupt
  | Rx_poll -> `Poll
  | Rx_hybrid -> `Hybrid
  | Rx_adaptive _ -> t.rx_mode_cur

(* Per-arrival bookkeeping, run before the wakeup is charged so it observes
   the mode that was in force during the gap being closed:

   - while the board was in poll mode, the host checked the receive ring
     every [rx_poll_period] and found nothing; those empty checks are the
     cost polling pays for its low latency, counted and charged here in one
     batch (the simulator has no reason to schedule each empty check as its
     own event);
   - the adaptive estimator folds the new gap into its EWMA and moves
     between modes with hysteresis: leaving a mode needs the estimate to
     cross the threshold by [ra_hysteresis], so one outlier gap does not
     flap the mode. *)
let note_rx_arrival t =
  let p = t.p in
  let now = Engine.now t.eng in
  let gap_ps =
    match t.rx_last_arrival with
    | Some last -> Some (Time.to_ps now - Time.to_ps last)
    | None -> None
  in
  t.rx_last_arrival <- Some now;
  (match (gap_ps, effective_mode t) with
  | Some gap, `Poll when gap > 0 ->
      let period = max 1 (Time.to_ps t.rx_poll_period) in
      let wasted = max 0 ((gap / period) - 1) in
      if wasted > 0 then begin
        Stats.Counter.add t.s_wasted_polls wasted;
        let d = Params.cpu_cycles p (wasted * p.Params.poll_check_cycles) in
        t.host.overhead d;
        if not (t.host.host_waiting ()) then t.host.steal d
      end
  | _ -> ());
  match t.rx_policy with
  | Rx_interrupt | Rx_poll | Rx_hybrid -> ()
  | Rx_adaptive cfg -> (
      match gap_ps with
      | None -> ()
      | Some gap ->
          let g = float_of_int gap in
          let e =
            match t.rx_gap_ewma with
            | None -> g
            | Some e -> (cfg.ra_alpha *. g) +. ((1. -. cfg.ra_alpha) *. e)
          in
          t.rx_gap_ewma <- Some e;
          let pg = float_of_int (Time.to_ps cfg.ra_poll_gap) in
          let ig = float_of_int (Time.to_ps cfg.ra_interrupt_gap) in
          let h = cfg.ra_hysteresis in
          let next : rx_mode =
            match t.rx_mode_cur with
            | `Poll ->
                if e > pg *. h then if e >= ig then `Interrupt else `Hybrid else `Poll
            | `Interrupt ->
                if e < ig /. h then if e <= pg then `Poll else `Hybrid else `Interrupt
            | `Hybrid -> if e <= pg then `Poll else if e >= ig then `Interrupt else `Hybrid
          in
          if next <> t.rx_mode_cur then begin
            t.rx_mode_cur <- next;
            Stats.Counter.incr t.s_rx_mode_switches;
            if Trace.enabled_cat Trace.Nic then
              Trace.emit ~t_ps:(Time.to_ps now) ~node:t.node Trace.Nic ~label:"rx-mode"
                ~payload:(match next with `Interrupt -> 0 | `Hybrid -> 1 | `Poll -> 2)
          end)

(* Charge one host wakeup in the given mode. Interrupt: the full interrupt
   latency, stolen from a computing application. Poll: the host's next ring
   check picks the frame up for a few cycles (stolen too when the host was
   computing — unlike the hybrid, a fixed polling host checks the ring even
   while it has useful work). Hybrid (the paper's section 2.1 policy): poll
   when the host is already waiting on the network, interrupt otherwise. *)
let charge_wakeup t (mode : rx_mode) =
  let p = t.p in
  (match mode with
  | `Interrupt -> Stats.Counter.incr t.s_mode_interrupt
  | `Hybrid -> Stats.Counter.incr t.s_mode_hybrid
  | `Poll -> Stats.Counter.incr t.s_mode_poll);
  let interrupt () =
    Stats.Counter.incr t.s_interrupts;
    host_busy t p.Params.interrupt_latency;
    if not (t.host.host_waiting ()) then t.host.steal p.Params.interrupt_latency
  in
  let poll () =
    Stats.Counter.incr t.s_polls;
    let d = Params.cpu_cycles p p.Params.poll_check_cycles in
    Engine.delay d;
    if not (t.host.host_waiting ()) then begin
      t.host.overhead d;
      t.host.steal d
    end
  in
  match mode with
  | `Interrupt -> interrupt ()
  | `Poll -> poll ()
  | `Hybrid -> if t.host.host_waiting () then poll () else interrupt ()

(* ADC delivery of one classified frame to host code. With [rx_batch = 1]
   each frame pays its own wakeup (the seed behaviour). With coalescing,
   frames are queued on the board and a single wakeup fiber drains up to
   [rx_batch] of them: frames arriving while the wakeup cost is still being
   charged (e.g. during the 40 us interrupt latency) ride along for free.
   Each drained frame runs its handler in its own fiber, matching the
   fabric's per-packet delivery fibers, so a handler that blocks (a DSM
   server fault) cannot stall the rest of the batch. *)
let rec rx_drain t =
  charge_wakeup t (effective_mode t);
  let n = ref 0 in
  while !n < t.rx_batch && not (Queue.is_empty t.rx_queue) do
    let handler, pkt = Queue.pop t.rx_queue in
    if !n > 0 then Stats.Counter.incr t.s_rx_coalesced;
    incr n;
    Engine.spawn t.eng ~name:"nic-rx-deliver" (fun () ->
        run_on_host t ~base:Time.zero ~reply_host_cycles:t.p.Params.adc_enqueue_cycles
          handler pkt)
  done;
  if Queue.is_empty t.rx_queue then t.rx_wakeup_armed <- false else rx_drain t

let deliver_host t handler pkt =
  note_rx_arrival t;
  if t.rx_batch <= 1 then begin
    charge_wakeup t (effective_mode t);
    run_on_host t ~base:Time.zero ~reply_host_cycles:t.p.Params.adc_enqueue_cycles
      handler pkt
  end
  else begin
    Queue.push (handler, pkt) t.rx_queue;
    if not t.rx_wakeup_armed then begin
      t.rx_wakeup_armed <- true;
      Engine.spawn t.eng ~name:"nic-rx-wakeup" (fun () -> rx_drain t)
    end
  end

let receive t (pkt : 'a Fabric.packet) =
  let p = t.p in
  if not t.alive then
    (* the fabric drops frames for down nodes itself; this guards deliveries
       already in flight inside a fabric fiber when the crash landed *)
    Stats.Counter.incr (lcounter t "crash_rx_drops")
  else begin
  (match t.restarted_at with
  | Some r ->
      (* first frame the restarted board sees: the peer-visible recovery
         latency of this crash/restart cycle *)
      t.recovery_latencies <- Time.(Engine.now t.eng - r) :: t.recovery_latencies;
      t.restarted_at <- None
  | None -> ());
  Stats.Counter.incr t.s_rx_packets;
  if Trace.enabled_cat Trace.Nic then
    Trace.emit ~t_ps:(Time.to_ps (Engine.now t.eng)) ~node:t.node Trace.Nic
      ~label:"rx" ~payload:pkt.Fabric.src;
  let cells = Fabric.packet_cells p pkt in
  (* SAR: reassembly work per cell on the NIC processor *)
  nic_busy t (Params.nic_cycles p (cells * p.Params.sar_cell_nic_cycles));
  if not pkt.Fabric.crc_ok then begin
    (* the AAL5 CRC computed during reassembly does not match the trailer:
       the board discards the frame (a sequenced original will be
       retransmitted by its sender's timer) *)
    Stats.Counter.incr (lcounter t "rx_crc_errors");
    if Trace.enabled_cat Trace.Nic then
      Trace.emit ~t_ps:(Time.to_ps (Engine.now t.eng)) ~node:t.node Trace.Nic
        ~label:"rx-crc-drop" ~payload:pkt.Fabric.src
  end
  else
    match Wire.decode_opt pkt.Fabric.header with
    | None ->
        (* not a frame any pattern could classify: count and drop instead of
           tearing down the receive fiber *)
        Stats.Counter.incr (lcounter t "rx_undecodable");
        if Trace.enabled_cat Trace.Nic then
          Trace.emit ~t_ps:(Time.to_ps (Engine.now t.eng)) ~node:t.node Trace.Nic
            ~label:"rx-undecodable" ~payload:pkt.Fabric.src
    | Some h when h.Wire.kind = Reliable.ack_kind && h.Wire.channel = Reliable.ack_channel ->
        handle_ack t h pkt
    | Some h when not (rel_admit t h pkt) -> ()
    | Some _ -> (
        let lookup_handler () =
          match Classifier.classify t.classifier pkt.Fabric.header with
          | Some (f, _code) -> f
          | None ->
              Stats.Counter.incr t.s_unmatched;
              t.default_handler
        in
        match t.kind with
        | Cni { aih; _ } ->
            (* PATHFINDER classifies the first cell in dedicated hardware;
               continuation cells follow the remembered VC binding (their cost
               is folded into the SAR term). *)
            Engine.delay (Time.ns p.Params.pathfinder_cell_ns);
            let handler = lookup_handler () in
            if aih then begin
              (* control transfers straight into the Application Interrupt
                 Handler on the NIC processor; the host is not involved *)
              nic_busy t (Params.nic_cycles p p.Params.handler_dispatch_nic_cycles);
              let ctx =
                make_ctx t ~reply_host_cycles:0
                  ~on_charge:(fun n -> nic_busy t (Params.nic_cycles p n))
              in
              handler ctx pkt
            end
            else
              (* ADC delivery to host code: the wakeup policy (interrupt,
                 poll, hybrid or adaptive) decides how the host learns of the
                 frame *)
              deliver_host t handler pkt
        | Osiris { software_classify_nic_cycles } ->
            (* the base board: ADC queues exist, but demultiplexing is software
               on the board processor and the host is interrupted for every
               packet (section 2.1's two differences from the CNI) *)
            nic_busy t (Params.nic_cycles p software_classify_nic_cycles);
            let handler = lookup_handler () in
            Stats.Counter.incr t.s_interrupts;
            host_busy t p.Params.interrupt_latency;
            if not (t.host.host_waiting ()) then t.host.steal p.Params.interrupt_latency;
            run_on_host t ~base:p.Params.interrupt_latency
              ~reply_host_cycles:p.Params.adc_enqueue_cycles handler pkt
        | Standard ->
            (* the standard board interrupts the host for every packet; the
               kernel demultiplexes in software and runs the handler on the
               host CPU *)
            Stats.Counter.incr t.s_interrupts;
            let handler = lookup_handler () in
            let kernel = Params.cpu_cycles p p.Params.kernel_recv_cycles in
            host_busy t Time.(p.Params.interrupt_latency + kernel);
            run_on_host t
              ~base:Time.(p.Params.interrupt_latency + kernel)
              ~reply_host_cycles:p.Params.kernel_send_cycles handler pkt)
  end

let create ?registry ?reliability ~kind eng bus fabric ~node ~host =
  let p = Bus.params bus in
  (match kind with Cni o -> check_cni_options o | Osiris _ | Standard -> ());
  let mc =
    match kind with
    | Cni { mc_bytes; mc_mode; mc_phys_to_vpage; _ } when mc_bytes > 0 ->
        Some
          (Message_cache.create ?registry ~node ?phys_to_vpage:mc_phys_to_vpage
             ~page_bytes:p.Params.page_bytes ~capacity_bytes:mc_bytes ~mode:mc_mode ())
    | Cni _ | Osiris _ | Standard -> None
  in
  let counter name =
    match registry with
    | Some reg -> Stats.Registry.counter reg ~node ~subsystem:"nic" name
    | None -> Stats.Counter.create name
  in
  let rel =
    Option.map
      (fun cfg ->
        Reliable.check_config cfg;
        {
          r_cfg = cfg;
          r_next_seq = Hashtbl.create 8;
          r_pending = Hashtbl.create 32;
          r_parked = [];
          r_windows = Hashtbl.create 8;
          r_peer_epoch = Hashtbl.create 8;
          r_retransmits = counter "retransmits";
          r_acks_tx = counter "acks_tx";
          r_acks_rx = counter "acks_rx";
          r_rx_duplicates = counter "rx_duplicates";
          r_rto_capped = counter "rto_capped";
        })
      reliability
  in
  let t =
    {
      eng;
      bus;
      fabric;
      p;
      node;
      kind;
      mc;
      host;
      registry;
      rel;
      nic_proc = Sync.Semaphore.create 1;
      tx_ring = Ring.create ?registry ~node ~slots:1 ();
      host_proc = Sync.Semaphore.create 1;
      classifier = Classifier.create ();
      handler_sizes = Hashtbl.create 16;
      default_handler = (fun _ _ -> ());
      s_handler_code_bytes = 0;
      alive = true;
      epoch = 0;
      scrubbed = false;
      install_log = [];
      restarted_at = None;
      recovery_latencies = [];
      rx_policy =
        (match kind with
        | Cni { rx_policy; _ } -> rx_policy
        | Osiris _ | Standard -> Rx_interrupt);
      rx_batch = (match kind with Cni { rx_batch; _ } -> rx_batch | Osiris _ | Standard -> 1);
      rx_poll_period =
        (match kind with
        | Cni { rx_poll_period; _ } -> rx_poll_period
        | Osiris _ | Standard -> Time.us 5);
      rx_queue = Queue.create ();
      rx_wakeup_armed = false;
      rx_last_arrival = None;
      rx_gap_ewma = None;
      (* the adaptive policy starts conservatively: interrupts until traffic
         proves hot *)
      rx_mode_cur = `Interrupt;
      lazy_counters = Hashtbl.create 8;
      s_unmatched = counter "unmatched";
      s_tx_packets = counter "tx_packets";
      s_tx_data_packets = counter "tx_data_packets";
      s_tx_dma_bytes = counter "tx_dma_bytes";
      s_rx_packets = counter "rx_packets";
      s_rx_dma_bytes = counter "rx_dma_bytes";
      s_interrupts = counter "interrupts";
      s_polls = counter "polls";
      s_wasted_polls = counter "wasted_polls";
      s_rx_coalesced = counter "rx_coalesced";
      s_rx_mode_switches = counter "rx_mode_switches";
      s_mode_interrupt = counter "rx_mode_interrupt_pkts";
      s_mode_hybrid = counter "rx_mode_hybrid_pkts";
      s_mode_poll = counter "rx_mode_poll_pkts";
    }
  in
  (* the snoopy interface: every bus write visits the buffer map *)
  Option.iter
    (fun mc ->
      Bus.register_snooper bus (fun ~dir ~addr ~bytes ->
          match dir with
          | Bus.Cpu_writeback | Bus.Dma_to_memory -> Message_cache.snoop mc ~addr ~bytes
          | Bus.Dma_from_memory -> ()))
    mc;
  Fabric.set_receiver fabric ~node (fun pkt -> receive t pkt);
  t

let create_cni ?registry ?reliability eng bus fabric ~node ~host
    ?(options = default_cni_options) () =
  create ?registry ?reliability ~kind:(Cni options) eng bus fabric ~node ~host

let create_standard ?registry ?reliability eng bus fabric ~node ~host () =
  create ?registry ?reliability ~kind:Standard eng bus fabric ~node ~host

let create_osiris ?registry ?reliability eng bus fabric ~node ~host
    ?(options = default_osiris_options) () =
  create ?registry ?reliability ~kind:(Osiris options) eng bus fabric ~node ~host

(* The memory-check + classifier half of an installation, shared by the
   public entry point and the restart replay (which must not re-log). *)
let install_raw t ~pattern ~code_bytes f =
  if code_bytes <= 0 then invalid_arg "Nic.install_handler: code_bytes must be positive";
  let mc_bytes =
    match t.kind with Cni { mc_bytes; _ } -> mc_bytes | Osiris _ | Standard -> 0
  in
  let free = t.p.Params.nic_memory_bytes - mc_bytes - t.s_handler_code_bytes in
  if code_bytes > free then
    failwith
      (Printf.sprintf "Nic.install_handler: %d bytes of object code exceed free board memory (%d)"
         code_bytes free);
  t.s_handler_code_bytes <- t.s_handler_code_bytes + code_bytes;
  let h = Classifier.add t.classifier pattern (f, code_bytes) in
  Hashtbl.replace t.handler_sizes h code_bytes;
  h

let install_handler t ~pattern ?(code_bytes = 512) f =
  let h = install_raw t ~pattern ~code_bytes f in
  let entry =
    { ie_handle = h; ie_live = true;
      ie_replay = (fun () -> Some (install_raw t ~pattern ~code_bytes f)) }
  in
  t.install_log <- entry :: t.install_log;
  h

(* removing a handler frees its board segment for later installations *)
let uninstall_handler t h =
  (match Hashtbl.find_opt t.handler_sizes h with
  | Some bytes ->
      Hashtbl.remove t.handler_sizes h;
      t.s_handler_code_bytes <- t.s_handler_code_bytes - bytes
  | None -> ());
  List.iter (fun e -> if e.ie_live && e.ie_handle = h then e.ie_live <- false) t.install_log;
  Classifier.remove t.classifier h
let set_default_handler t f = t.default_handler <- f
let handler_code_bytes t = t.s_handler_code_bytes

(* ------------------------------------------------------------------ *)
(* Crash / restart                                                     *)
(* ------------------------------------------------------------------ *)

let alive t = t.alive
let epoch t = t.epoch
let recovery_latencies t = List.rev t.recovery_latencies

let crash t ~scrub =
  if t.alive then begin
    t.alive <- false;
    Stats.Counter.incr (lcounter t "crashes");
    if Trace.enabled_cat Trace.Nic then
      Trace.emit ~t_ps:(Time.to_ps (Engine.now t.eng)) ~node:t.node Trace.Nic
        ~label:(if scrub then "crash-scrub" else "crash") ~payload:t.epoch;
    (* the board's retransmission timers die with it, but the descriptors
       themselves live in the host-resident ADC rings: park every un-acked
       entry (marking it acked kills its armed timer) for the restart to
       re-stamp and re-send. The per-source duplicate windows, peer epochs
       and sequence allocators are host-resident too and survive — they are
       what keeps delivery exactly-once across the restart. *)
    Option.iter
      (fun r ->
        Hashtbl.iter
          (fun _ e ->
            e.e_acked <- true;
            r.r_parked <- e :: r.r_parked)
          r.r_pending;
        Hashtbl.reset r.r_pending)
      t.rel;
    (* classified-but-undelivered frames queued on the board are lost *)
    Queue.clear t.rx_queue;
    t.rx_wakeup_armed <- false;
    t.restarted_at <- None;
    if scrub then begin
      t.scrubbed <- true;
      Hashtbl.iter (fun h _ -> Classifier.remove t.classifier h) t.handler_sizes;
      Hashtbl.reset t.handler_sizes;
      t.s_handler_code_bytes <- 0;
      Option.iter
        (fun mc ->
          List.iter (fun vpage -> Message_cache.unbind mc ~vpage) (Message_cache.bound_pages mc))
        t.mc
    end
  end

let restart t =
  if not t.alive then begin
    t.alive <- true;
    (* the epoch saturates rather than wraps: a board that crashed 127 times
       keeps epoch 127, trading stale-frame rejection for monotonicity *)
    t.epoch <- min (t.epoch + 1) Reliable.max_epoch;
    Stats.Counter.incr (lcounter t "restarts");
    if Trace.enabled_cat Trace.Nic then
      Trace.emit ~t_ps:(Time.to_ps (Engine.now t.eng)) ~node:t.node Trace.Nic
        ~label:"restart" ~payload:t.epoch;
    (* End-to-end recovery of in-flight sends: every entry parked at the
       crash is re-stamped under the new epoch — with its ORIGINAL bare
       sequence number, since the allocator is host-resident and never
       reset — and re-sent. A pre-crash transmission of the same frame that
       did land is suppressed by the receiver's surviving duplicate window;
       one still in flight under the old epoch is rejected as stale. Either
       way the frame is delivered exactly once. *)
    Option.iter
      (fun r ->
        let parked = r.r_parked in
        r.r_parked <- [];
        List.iter
          (fun e ->
            let aux = Reliable.aux_of ~epoch:t.epoch ~seq:e.e_seq in
            e.e_aux <- aux;
            e.e_header <- Wire.with_aux e.e_header aux;
            e.e_acked <- false;
            e.e_tries <- 1;
            e.e_rto <- r.r_cfg.Reliable.timeout;
            Hashtbl.replace r.r_pending (e.e_dst, aux) e;
            arm_retransmit t r e;
            Engine.spawn t.eng ~name:"nic-tx" (fun () ->
                nic_transmit t ~dst:e.e_dst ~header:e.e_header
                  ~body_bytes:e.e_body_bytes ~data:e.e_data ~payload:e.e_payload))
          (List.rev parked))
      t.rel;
    t.restarted_at <- Some (Engine.now t.eng);
    if t.scrubbed then begin
      t.scrubbed <- false;
      (* replay the surviving installations in their original order; each
         verified program goes back through the static verifier first *)
      List.iter
        (fun e ->
          if e.ie_live then
            match e.ie_replay () with
            | Some h -> e.ie_handle <- h
            | None -> e.ie_live <- false)
        (List.rev t.install_log)
    end
  end

(* ------------------------------------------------------------------ *)
(* Verified AIH firmware installation                                  *)
(* ------------------------------------------------------------------ *)

type 'a verified_handler = {
  vh_handle : Classifier.handle;
  vh_cert : Cni_aih.Aih_verify.cert;
  vh_budget : int;
  vh_activate : ?view:int array -> 'a ctx -> int array -> unit;
}

(* The canonical first-cell view a Header handler sees: the decoded Wire
   header words plus the frame's body size. *)
let header_view_words = 6

let install_handler_verified ?max_wcet ?link_bps t ~pattern ~program ~entry ~on_send ~on_wake =
  (* line-rate admission: the budget one streaming activation gets before
     the next cell arrives, at the configured (or overridden) link rate *)
  let cell_budget = Params.line_rate_budget ?link_bps t.p in
  match Cni_aih.Aih_verify.verify ?max_wcet ~cell_budget program with
  | Error rjs ->
      Stats.Counter.incr (lcounter t "aih_verify_rejects");
      Error rjs
  | Ok cert ->
      (* the handler's persistent board segment: one allocation at install,
         shared by every activation, like the closure handlers' mutable
         state records. A scrub wipes it; the restart replay allocates a
         fresh zeroed segment. *)
      let mem = ref (Array.make program.Cni_aih.Aih_ir.seg_words 0) in
      let activate ?view ctx inputs =
        let services =
          {
            Cni_aih.Aih_exec.sv_send =
              (fun ~dst ~kind ~obj ~value -> on_send ctx ~dst ~kind ~obj ~value);
            sv_wake = on_wake;
            sv_charge = ctx.charge;
          }
        in
        ignore (Cni_aih.Aih_exec.run program ?view ~mem:!mem ~inputs services)
      in
      let fn ctx pkt =
        match program.Cni_aih.Aih_ir.hkind with
        | Cni_aih.Aih_ir.Episode -> activate ctx (entry pkt)
        | Cni_aih.Aih_ir.Header _ ->
            (* one activation per packet, with the first cell latched *)
            let view =
              match Wire.decode_opt pkt.Fabric.header with
              | Some h ->
                  [|
                    h.Wire.kind; h.Wire.src; h.Wire.channel; h.Wire.obj; h.Wire.aux;
                    pkt.Fabric.body_bytes;
                  |]
              | None -> [||] (* unreachable: undecodable frames never classify *)
            in
            activate ~view ctx (entry pkt)
        | Cni_aih.Aih_ir.Payload { chunk_words; max_chunks } ->
            (* one activation per payload chunk as reassembly streams it in;
               each activation's cycles hit the board through [ctx.charge],
               so a long frame charges per cell, not per packet *)
            let chunk_bytes = 8 * chunk_words in
            let body = max 0 pkt.Fabric.body_bytes in
            let nchunks = min max_chunks (max 1 ((body + chunk_bytes - 1) / chunk_bytes)) in
            let base = entry pkt in
            let view = Array.make chunk_words 0 in
            for i = 0 to nchunks - 1 do
              let valid = max 1 (min chunk_words ((body - (i * chunk_bytes) + 7) / 8)) in
              let inputs =
                if Array.length base >= 2 then Array.copy base
                else Array.append base (Array.make (2 - Array.length base) 0)
              in
              inputs.(0) <- i;
              inputs.(1) <- valid;
              activate ~view ctx inputs
            done
      in
      let code_bytes = cert.Cni_aih.Aih_verify.code_bytes in
      let h = install_raw t ~pattern ~code_bytes fn in
      let entry_log =
        { ie_handle = h; ie_live = true;
          ie_replay =
            (fun () ->
              (* firmware goes back through the verifier before the scrubbed
                 board will run it again *)
              match Cni_aih.Aih_verify.verify ?max_wcet ~cell_budget program with
              | Error _ ->
                  Stats.Counter.incr (lcounter t "restart_reverify_rejects");
                  None
              | Ok cert' ->
                  Stats.Counter.incr (lcounter t "restart_reverified");
                  mem := Array.make program.Cni_aih.Aih_ir.seg_words 0;
                  Some (install_raw t ~pattern ~code_bytes:cert'.Cni_aih.Aih_verify.code_bytes fn)) }
      in
      t.install_log <- entry_log :: t.install_log;
      Ok { vh_handle = h; vh_cert = cert; vh_budget = cell_budget; vh_activate = activate }

let aih_verify_rejects t = lvalue t "aih_verify_rejects"

let stats t =
  {
    tx_packets = Stats.Counter.value t.s_tx_packets;
    tx_data_packets = Stats.Counter.value t.s_tx_data_packets;
    tx_dma_bytes = Stats.Counter.value t.s_tx_dma_bytes;
    rx_packets = Stats.Counter.value t.s_rx_packets;
    rx_dma_bytes = Stats.Counter.value t.s_rx_dma_bytes;
    interrupts = Stats.Counter.value t.s_interrupts;
    polls = Stats.Counter.value t.s_polls;
    wasted_polls = Stats.Counter.value t.s_wasted_polls;
    coalesced = Stats.Counter.value t.s_rx_coalesced;
    mode_switches = Stats.Counter.value t.s_rx_mode_switches;
    mode_interrupt = Stats.Counter.value t.s_mode_interrupt;
    mode_hybrid = Stats.Counter.value t.s_mode_hybrid;
    mode_poll = Stats.Counter.value t.s_mode_poll;
    unmatched = Stats.Counter.value t.s_unmatched;
  }

(* the wakeup mode a frame arriving now would be delivered with *)
let rx_mode t : rx_mode =
  match t.kind with Cni _ -> effective_mode t | Osiris _ | Standard -> `Interrupt
