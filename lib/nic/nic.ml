module Engine = Cni_engine.Engine
module Sync = Cni_engine.Sync
module Time = Cni_engine.Time
module Stats = Cni_engine.Stats
module Trace = Cni_engine.Trace
module Params = Cni_machine.Params
module Bus = Cni_machine.Bus
module Fabric = Cni_atm.Fabric
module Classifier = Cni_pathfinder.Classifier
module Pattern = Cni_pathfinder.Pattern

type data = No_data | Page of { vaddr : int; bytes : int; cacheable : bool }

type host = {
  host_waiting : unit -> bool;
  steal : Time.t -> unit;
  invalidate_range : addr:int -> bytes:int -> unit;
  overhead : Time.t -> unit;
}

type 'a ctx = {
  ctx_node : int;
  charge : int -> unit;
  reply : dst:int -> header:Bytes.t -> body_bytes:int -> data:data -> payload:'a -> unit;
  deliver_page : vaddr:int -> bytes:int -> cacheable:bool -> unit;
}

type cni_options = {
  mc_bytes : int;
  mc_mode : Message_cache.mode;
  aih : bool;
  hybrid_receive : bool;
}

let default_cni_options =
  { mc_bytes = Params.default.Params.message_cache_bytes;
    mc_mode = Message_cache.Update;
    aih = true;
    hybrid_receive = true }

type osiris_options = {
  software_classify_nic_cycles : int;
      (* per-packet software demultiplexing on the board processor; the
         paper's ATOMIC experience: expensive, and worse under i-cache
         pressure from resident handlers *)
}

let default_osiris_options = { software_classify_nic_cycles = 120 }

type kind = Cni of cni_options | Osiris of osiris_options | Standard

type 'a handler_fn = 'a ctx -> 'a Fabric.packet -> unit

type 'a t = {
  eng : Engine.t;
  bus : Bus.t;
  fabric : 'a Fabric.t;
  p : Params.t;
  node : int;
  kind : kind;
  mc : Message_cache.t option;
  host : host;
  registry : Stats.Registry.t option;
  nic_proc : Sync.Semaphore.t;  (* the 33 MHz processor is a shared resource *)
  tx_ring : unit Ring.t;  (* transmit descriptors are processed in order; a
                             single-slot descriptor ring whose full_stalls
                             counter exposes transmit-queue contention *)
  host_proc : Sync.Semaphore.t;  (* interrupt-level protocol work on the host
                                    serialises as well *)
  classifier : ('a handler_fn * int) Classifier.t;
  handler_sizes : (Classifier.handle, int) Hashtbl.t;
  mutable default_handler : 'a handler_fn;
  mutable s_handler_code_bytes : int;
  s_unmatched : Stats.Counter.t;
  s_tx_packets : Stats.Counter.t;
  s_tx_data_packets : Stats.Counter.t;
  s_tx_dma_bytes : Stats.Counter.t;
  s_rx_packets : Stats.Counter.t;
  s_rx_dma_bytes : Stats.Counter.t;
  s_interrupts : Stats.Counter.t;
  s_polls : Stats.Counter.t;
}

type stats = {
  tx_packets : int;
  tx_data_packets : int;
  tx_dma_bytes : int;
  rx_packets : int;
  rx_dma_bytes : int;
  interrupts : int;
  polls : int;
  unmatched : int;
}

let node t = t.node
let is_cni t = match t.kind with Cni _ -> true | Osiris _ | Standard -> false
let aih_enabled t = match t.kind with Cni { aih; _ } -> aih | Osiris _ | Standard -> false
let message_cache t = t.mc

let network_cache_hit_ratio t =
  match t.mc with Some mc -> Message_cache.hit_ratio mc | None -> 0.

(* [None] for boards without a Message Cache or with no lookups yet; lets
   aggregations skip idle nodes. *)
let network_cache_hit_ratio_opt t =
  match t.mc with Some mc -> Message_cache.hit_ratio_opt mc | None -> None

let registry t = t.registry

let vpage_of t vaddr = vaddr / t.p.Params.page_bytes

(* Occupy the board's processor for a bounded burst of work. Concurrent
   transmissions, receptions and handler activations on one board serialise
   here; a handler that blocks (e.g. a server-side fault) releases the
   processor between bursts, so reply processing can still run. *)
let nic_busy t d =
  if d > Time.zero then begin
    Sync.Semaphore.acquire t.nic_proc;
    Engine.delay d;
    Sync.Semaphore.release t.nic_proc
  end

(* Same for interrupt-level work on the host CPU: two packets arriving at a
   standard board do not get their kernel service in parallel. Held only per
   bounded burst, so a protocol handler that blocks lets later interrupts
   through (nested service, as a real kernel would). *)
let host_busy t d =
  if d > Time.zero then begin
    Sync.Semaphore.acquire t.host_proc;
    Engine.delay d;
    Sync.Semaphore.release t.host_proc
  end

(* ------------------------------------------------------------------ *)
(* Transmit                                                           *)
(* ------------------------------------------------------------------ *)

(* NIC-side half of a transmission; runs in its own fiber. The board picks
   the descriptor off the transmit queue, resolves the data buffer (Message
   Cache on CNI), segments the frame and hands the cells to the wire. *)
let nic_transmit t ~dst ~header ~body_bytes ~data ~payload =
  let p = t.p in
  (* the board works its transmit queue one descriptor at a time: a pipelined
     resend of a buffer must observe the Message Cache binding its
     predecessor created *)
  Ring.push t.tx_ring ();
  if Trace.enabled_cat Trace.Nic then
    Trace.span_begin ~t_ps:(Time.to_ps (Engine.now t.eng)) ~node:t.node Trace.Nic
      ~label:"tx" ~payload:dst;
  nic_busy t (Params.nic_cycles p p.Params.handler_dispatch_nic_cycles);
  (match data with
  | No_data -> ()
  | Page { vaddr; bytes; cacheable } -> (
      Stats.Counter.incr t.s_tx_data_packets;
      match t.kind with
      | Cni _ -> (
          match t.mc with
          | Some mc when Message_cache.lookup mc ~vpage:(vpage_of t vaddr) ->
              (* transmit caching hit: the board already holds a consistent
                 copy; no host-memory DMA *)
              ()
          | Some mc ->
              Bus.dma t.bus ~dir:Bus.Dma_from_memory ~addr:vaddr ~bytes;
              Stats.Counter.add t.s_tx_dma_bytes bytes;
              if cacheable then Message_cache.bind mc ~vpage:(vpage_of t vaddr)
          | None ->
              Bus.dma t.bus ~dir:Bus.Dma_from_memory ~addr:vaddr ~bytes;
              Stats.Counter.add t.s_tx_dma_bytes bytes)
      | Osiris _ | Standard ->
          Bus.dma t.bus ~dir:Bus.Dma_from_memory ~addr:vaddr ~bytes;
          Stats.Counter.add t.s_tx_dma_bytes bytes));
  (* bulk data rides in the same frame: it must be counted in the wire size
     (cells, serialisation) exactly like inline body bytes *)
  let data_bytes = match data with No_data -> 0 | Page { bytes; _ } -> bytes in
  let pkt =
    { Fabric.src = t.node; dst; vci = t.node; header; body_bytes = body_bytes + data_bytes; payload }
  in
  let cells = Fabric.packet_cells p pkt in
  nic_busy t (Params.nic_cycles p (cells * p.Params.sar_cell_nic_cycles));
  Stats.Counter.incr t.s_tx_packets;
  if Trace.enabled_cat Trace.Nic then
    Trace.span_end ~t_ps:(Time.to_ps (Engine.now t.eng)) ~node:t.node Trace.Nic
      ~label:"tx" ~payload:dst;
  ignore (Ring.pop t.tx_ring : unit);
  Fabric.send t.fabric pkt

(* Host-side entry: charge the host path cost, then hand off to the board. *)
let send t ~dst ~header ~body_bytes ~data ~payload =
  let p = t.p in
  let host_cycles =
    match t.kind with
    | Cni _ | Osiris _ -> p.Params.adc_enqueue_cycles (* user-level send path *)
    | Standard -> p.Params.kernel_send_cycles
  in
  let cost = Params.cpu_cycles p host_cycles in
  t.host.overhead cost;
  Engine.delay cost;
  Engine.spawn t.eng ~name:"nic-tx" (fun () ->
      nic_transmit t ~dst ~header ~body_bytes ~data ~payload)

(* ------------------------------------------------------------------ *)
(* Receive                                                            *)
(* ------------------------------------------------------------------ *)

let make_ctx t ~on_charge ~reply_host_cycles =
  let ctx =
    {
      ctx_node = t.node;
      charge = on_charge;
      reply =
        (fun ~dst ~header ~body_bytes ~data ~payload ->
          (* replies issued from protocol context: under AIH the board is
             driven directly (no host cost); a host-resident handler pays its
             kernel or ADC send path, charged through [on_charge] *)
          if reply_host_cycles > 0 then on_charge reply_host_cycles;
          Engine.spawn t.eng ~name:"nic-reply" (fun () ->
              nic_transmit t ~dst ~header ~body_bytes ~data ~payload));
      deliver_page =
        (fun ~vaddr ~bytes ~cacheable ->
          if cacheable then
            Option.iter (fun mc -> Message_cache.bind mc ~vpage:(vpage_of t vaddr)) t.mc;
          Bus.dma t.bus ~dir:Bus.Dma_to_memory ~addr:vaddr ~bytes;
          Stats.Counter.add t.s_rx_dma_bytes bytes;
          t.host.invalidate_range ~addr:vaddr ~bytes);
    }
  in
  ctx

(* Run a protocol handler on the host CPU, charging its time as host
   overhead and stealing the CPU from a computing application. *)
let run_on_host t ~base ~reply_host_cycles handler pkt =
  let p = t.p in
  let spent = ref base in
  let ctx =
    make_ctx t ~reply_host_cycles
      ~on_charge:(fun n ->
        let d = Params.cpu_cycles p n in
        spent := Time.( + ) !spent d;
        host_busy t d)
  in
  handler ctx pkt;
  t.host.overhead !spent;
  if not (t.host.host_waiting ()) then t.host.steal !spent

let receive t (pkt : 'a Fabric.packet) =
  let p = t.p in
  Stats.Counter.incr t.s_rx_packets;
  if Trace.enabled_cat Trace.Nic then
    Trace.emit ~t_ps:(Time.to_ps (Engine.now t.eng)) ~node:t.node Trace.Nic
      ~label:"rx" ~payload:pkt.Fabric.src;
  let cells = Fabric.packet_cells p pkt in
  (* SAR: reassembly work per cell on the NIC processor *)
  nic_busy t (Params.nic_cycles p (cells * p.Params.sar_cell_nic_cycles));
  let lookup_handler () =
    match Classifier.classify t.classifier pkt.Fabric.header with
    | Some (f, _code) -> f
    | None ->
        Stats.Counter.incr t.s_unmatched;
        t.default_handler
  in
  match t.kind with
  | Cni { aih; hybrid_receive; _ } ->
      (* PATHFINDER classifies the first cell in dedicated hardware;
         continuation cells follow the remembered VC binding (their cost is
         folded into the SAR term). *)
      Engine.delay (Time.ns p.Params.pathfinder_cell_ns);
      let handler = lookup_handler () in
      if aih then begin
        (* control transfers straight into the Application Interrupt
           Handler on the NIC processor; the host is not involved *)
        nic_busy t (Params.nic_cycles p p.Params.handler_dispatch_nic_cycles);
        let ctx =
          make_ctx t ~reply_host_cycles:0
            ~on_charge:(fun n -> nic_busy t (Params.nic_cycles p n))
        in
        handler ctx pkt
      end
      else begin
        (* ADC delivery to host code: polling when the host is already
           waiting on the network, an interrupt otherwise (the hybrid of
           section 2.1) *)
        if hybrid_receive && t.host.host_waiting () then begin
          Stats.Counter.incr t.s_polls;
          Engine.delay (Params.cpu_cycles p p.Params.poll_check_cycles)
        end
        else begin
          Stats.Counter.incr t.s_interrupts;
          host_busy t p.Params.interrupt_latency;
          if not (t.host.host_waiting ()) then t.host.steal p.Params.interrupt_latency
        end;
        run_on_host t ~base:Time.zero ~reply_host_cycles:p.Params.adc_enqueue_cycles handler pkt
      end
  | Osiris { software_classify_nic_cycles } ->
      (* the base board: ADC queues exist, but demultiplexing is software on
         the board processor and the host is interrupted for every packet
         (section 2.1's two differences from the CNI) *)
      nic_busy t (Params.nic_cycles p software_classify_nic_cycles);
      let handler = lookup_handler () in
      Stats.Counter.incr t.s_interrupts;
      host_busy t p.Params.interrupt_latency;
      if not (t.host.host_waiting ()) then t.host.steal p.Params.interrupt_latency;
      run_on_host t ~base:p.Params.interrupt_latency
        ~reply_host_cycles:p.Params.adc_enqueue_cycles handler pkt
  | Standard ->
      (* the standard board interrupts the host for every packet; the kernel
         demultiplexes in software and runs the handler on the host CPU *)
      Stats.Counter.incr t.s_interrupts;
      let handler = lookup_handler () in
      let kernel = Params.cpu_cycles p p.Params.kernel_recv_cycles in
      host_busy t Time.(p.Params.interrupt_latency + kernel);
      run_on_host t
        ~base:Time.(p.Params.interrupt_latency + kernel)
        ~reply_host_cycles:p.Params.kernel_send_cycles handler pkt

let create ?registry ~kind eng bus fabric ~node ~host =
  let p = Bus.params bus in
  let mc =
    match kind with
    | Cni { mc_bytes; mc_mode; _ } when mc_bytes > 0 ->
        Some
          (Message_cache.create ?registry ~node ~page_bytes:p.Params.page_bytes
             ~capacity_bytes:mc_bytes ~mode:mc_mode ())
    | Cni _ | Osiris _ | Standard -> None
  in
  let counter name =
    match registry with
    | Some reg -> Stats.Registry.counter reg ~node ~subsystem:"nic" name
    | None -> Stats.Counter.create name
  in
  let t =
    {
      eng;
      bus;
      fabric;
      p;
      node;
      kind;
      mc;
      host;
      registry;
      nic_proc = Sync.Semaphore.create 1;
      tx_ring = Ring.create ?registry ~node ~slots:1 ();
      host_proc = Sync.Semaphore.create 1;
      classifier = Classifier.create ();
      handler_sizes = Hashtbl.create 16;
      default_handler = (fun _ _ -> ());
      s_handler_code_bytes = 0;
      s_unmatched = counter "unmatched";
      s_tx_packets = counter "tx_packets";
      s_tx_data_packets = counter "tx_data_packets";
      s_tx_dma_bytes = counter "tx_dma_bytes";
      s_rx_packets = counter "rx_packets";
      s_rx_dma_bytes = counter "rx_dma_bytes";
      s_interrupts = counter "interrupts";
      s_polls = counter "polls";
    }
  in
  (* the snoopy interface: every bus write visits the buffer map *)
  Option.iter
    (fun mc ->
      Bus.register_snooper bus (fun ~dir ~addr ~bytes ->
          match dir with
          | Bus.Cpu_writeback | Bus.Dma_to_memory -> Message_cache.snoop mc ~addr ~bytes
          | Bus.Dma_from_memory -> ()))
    mc;
  Fabric.set_receiver fabric ~node (fun pkt -> receive t pkt);
  t

let create_cni ?registry eng bus fabric ~node ~host ?(options = default_cni_options) () =
  create ?registry ~kind:(Cni options) eng bus fabric ~node ~host

let create_standard ?registry eng bus fabric ~node ~host () =
  create ?registry ~kind:Standard eng bus fabric ~node ~host

let create_osiris ?registry eng bus fabric ~node ~host ?(options = default_osiris_options) () =
  create ?registry ~kind:(Osiris options) eng bus fabric ~node ~host

let install_handler t ~pattern ?(code_bytes = 512) f =
  let mc_bytes =
    match t.kind with Cni { mc_bytes; _ } -> mc_bytes | Osiris _ | Standard -> 0
  in
  let free = t.p.Params.nic_memory_bytes - mc_bytes - t.s_handler_code_bytes in
  if code_bytes > free then
    failwith
      (Printf.sprintf "Nic.install_handler: %d bytes of object code exceed free board memory (%d)"
         code_bytes free);
  t.s_handler_code_bytes <- t.s_handler_code_bytes + code_bytes;
  let h = Classifier.add t.classifier pattern (f, code_bytes) in
  Hashtbl.replace t.handler_sizes h code_bytes;
  h

(* removing a handler frees its board segment for later installations *)
let uninstall_handler t h =
  (match Hashtbl.find_opt t.handler_sizes h with
  | Some bytes ->
      Hashtbl.remove t.handler_sizes h;
      t.s_handler_code_bytes <- t.s_handler_code_bytes - bytes
  | None -> ());
  Classifier.remove t.classifier h
let set_default_handler t f = t.default_handler <- f
let handler_code_bytes t = t.s_handler_code_bytes

let stats t =
  {
    tx_packets = Stats.Counter.value t.s_tx_packets;
    tx_data_packets = Stats.Counter.value t.s_tx_data_packets;
    tx_dma_bytes = Stats.Counter.value t.s_tx_dma_bytes;
    rx_packets = Stats.Counter.value t.s_rx_packets;
    rx_dma_bytes = Stats.Counter.value t.s_rx_dma_bytes;
    interrupts = Stats.Counter.value t.s_interrupts;
    polls = Stats.Counter.value t.s_polls;
    unmatched = Stats.Counter.value t.s_unmatched;
  }
