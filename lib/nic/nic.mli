(** Network interface models.

    Three interfaces share one API:

    - {b CNI} (the paper's design): Application Device Channels (no kernel on
      the send/receive path), the PATHFINDER classifier feeding Application
      Interrupt Handlers that run protocol code on the 33 MHz NIC processor,
      a Message Cache that elides host-memory DMA on transmit hits and binds
      migratory pages on receive, and a polling/interrupt hybrid towards the
      host.
    - {b Standard} (the paper's baseline): kernel-mediated sends and
      receives, an interrupt per incoming packet, a DMA across the memory bus
      for every data transfer, protocol processing on the host CPU (stealing
      host time when the application is computing).
    - {b OSIRIS} (the base board CNI extends): user-level ADC sends, but
      software demultiplexing and interrupt-only receives, no Message Cache,
      no AIH — the intermediate design point.

    Time accounting: host-side costs are charged with [Engine.delay] in the
    calling fiber and reported through [host.overhead]; NIC-side costs are
    charged inside internal fibers at the NIC clock; bus transfers go through
    the shared {!Cni_machine.Bus} (whose snooper feeds the Message Cache). *)

(** Bulk data attached to a message. [vaddr] is the host virtual address of
    the source (transmit) or destination (deliver) buffer; [cacheable] is the
    header bit that asks the Message Cache to retain a binding. *)
type data = No_data | Page of { vaddr : int; bytes : int; cacheable : bool }

(** Callbacks into the owning node. *)
type host = {
  host_waiting : unit -> bool;
      (** is the host application blocked on the network (polling)? *)
  steal : Cni_engine.Time.t -> unit;
      (** preempt the host CPU for this long (protocol service while the
          application computes) *)
  invalidate_range : addr:int -> bytes:int -> unit;
      (** drop host cache lines overwritten by an incoming DMA *)
  overhead : Cni_engine.Time.t -> unit;
      (** account host-side protocol overhead *)
}

(** Context handed to the protocol handler for an incoming packet. *)
type 'a ctx = {
  ctx_node : int;
  charge : int -> unit;
      (** run [n] protocol instructions (NIC clock under AIH, host clock on
          the standard path) *)
  reply : dst:int -> header:Bytes.t -> body_bytes:int -> data:data -> payload:'a -> unit;
      (** send a message from protocol context (no host send cost under AIH) *)
  deliver_page : vaddr:int -> bytes:int -> cacheable:bool -> unit;
      (** DMA incoming bulk data into host memory at [vaddr]; performs
          receive caching when [cacheable] *)
}

type 'a t

type cni_options = {
  mc_bytes : int;  (** Message Cache capacity; 0 disables it *)
  mc_mode : Message_cache.mode;
  aih : bool;  (** run protocol handlers on the NIC; [false] = host handlers
                   behind the polling/interrupt hybrid (ablation) *)
  hybrid_receive : bool;  (** [false] = interrupt-only receive (ablation) *)
  mc_phys_to_vpage : (int -> int) option;
      (** the snooper's RTLB: translate a physical bus address to the virtual
          page bound in the Message Cache's buffer map. [None] = identity
          mapping (phys addr / page size), which is correct only while host
          buffers are identity-mapped — see {!Message_cache.create} *)
}

val default_cni_options : cni_options

type osiris_options = {
  software_classify_nic_cycles : int;
      (** per-packet software demultiplexing cost on the board processor *)
}

val default_osiris_options : osiris_options

(** All constructors take an optional metrics [registry]; when given, the
    interface registers its counters as [node<N>/nic/<metric>], its transmit
    descriptor queue as [node<N>/ring/<metric>], and the Message Cache (CNI)
    as [node<N>/message-cache/<metric>].

    [reliability] enables end-to-end reliable delivery (see {!Reliable}):
    every Wire frame sent through this interface is sequenced, acknowledged
    by the receiving interface, retransmitted on timeout with exponential
    backoff and deduplicated on receive. On the CNI and OSIRIS boards this
    runs in board firmware; on the standard interface every ack,
    retransmission and duplicate costs the host an interrupt + kernel path.
    With [reliability] absent the interface behaves exactly as before —
    the zero-loss fast path carries no cost. *)

val create_cni :
  ?registry:Cni_engine.Stats.Registry.t ->
  ?reliability:Reliable.config ->
  Cni_engine.Engine.t ->
  Cni_machine.Bus.t ->
  'a Cni_atm.Fabric.t ->
  node:int ->
  host:host ->
  ?options:cni_options ->
  unit ->
  'a t

val create_standard :
  ?registry:Cni_engine.Stats.Registry.t ->
  ?reliability:Reliable.config ->
  Cni_engine.Engine.t ->
  Cni_machine.Bus.t ->
  'a Cni_atm.Fabric.t ->
  node:int ->
  host:host ->
  unit ->
  'a t

(** The OSIRIS base board the CNI extends (section 2.1): Application Device
    Channels at user level, but software demultiplexing on the board and an
    interrupt per packet towards the host; no Message Cache, no AIH. *)
val create_osiris :
  ?registry:Cni_engine.Stats.Registry.t ->
  ?reliability:Reliable.config ->
  Cni_engine.Engine.t ->
  Cni_machine.Bus.t ->
  'a Cni_atm.Fabric.t ->
  node:int ->
  host:host ->
  ?options:osiris_options ->
  unit ->
  'a t

val node : 'a t -> int

(** The machine parameter set the interface was built with (board clock,
    page size, path costs). *)
val params : 'a t -> Cni_machine.Params.t

val is_cni : 'a t -> bool

(** [true] when protocol handlers execute on the NIC processor (CNI with
    AIH); [false] for the standard interface and the host-handler ablation. *)
val aih_enabled : 'a t -> bool

(** [install_handler t ~pattern ~code_bytes f] — the paper's AIH
    installation: the connection-opening application supplies a PATHFINDER
    pattern and the location/size of relocatable protocol object code; the
    board swaps the code into a free segment of its memory and programs the
    classifier to activate it on a match (section 2.3). Incoming packets are
    classified against the real {!Cni_pathfinder.Classifier} DAG. On the
    standard interface the same registration is kept, but the "handler" runs
    on the host CPU behind an interrupt, after the kernel's software demux.

    @raise Failure if the board's free memory cannot hold [code_bytes]
    (handlers are whole-segment resident; there is no paging on the board). *)
val install_handler :
  'a t ->
  pattern:Cni_pathfinder.Pattern.t ->
  ?code_bytes:int ->
  ('a ctx -> 'a Cni_atm.Fabric.packet -> unit) ->
  Cni_pathfinder.Classifier.handle

val uninstall_handler : 'a t -> Cni_pathfinder.Classifier.handle -> unit

(** Fallback for packets no pattern matches (default: count and drop). *)
val set_default_handler : 'a t -> ('a ctx -> 'a Cni_atm.Fabric.packet -> unit) -> unit

(** Bytes of board memory currently holding AIH object code. *)
val handler_code_bytes : 'a t -> int

(** [send t ~dst ~header ~body_bytes ~data ~payload] transmits from the host
    application / protocol client. Must run in a fiber; charges the host-side
    send cost there, then completes asynchronously through the NIC. For
    [Page] data the caller must already have flushed the host cache range
    (the DSM layer flushes at release points; see Cache.flush_range). *)
val send :
  'a t -> dst:int -> header:Bytes.t -> body_bytes:int -> data:data -> payload:'a -> unit

(** [local_dispatch t f] runs a protocol step that the {e host} initiates —
    e.g. the local-arrival step of a NIC-resident collective — in the
    interface's protocol context. The calling fiber pays the descriptor-post
    cost (ADC enqueue on CNI/OSIRIS, kernel entry on the standard board).
    Under AIH the step itself then executes asynchronously on the NIC
    processor ([ctx.charge] at NIC cycles, [ctx.reply] free of host cost);
    on every other interface it executes synchronously on the host CPU in
    the calling fiber, charged as protocol overhead. No interrupt is taken
    either way: the host initiated the action. Must run in a fiber. *)
val local_dispatch : 'a t -> ('a ctx -> unit) -> unit

(** The Message Cache, when configured (CNI with [mc_bytes > 0]). *)
val message_cache : 'a t -> Message_cache.t option

(** The paper's "network cache hit ratio" (percent; 0 with no traffic);
    meaningful for CNI only. *)
val network_cache_hit_ratio : 'a t -> float

(** [None] when there is no Message Cache or it saw no lookups; use to
    exclude idle nodes from cluster-wide averages. *)
val network_cache_hit_ratio_opt : 'a t -> float option

(** The metrics registry handed to the constructor, if any. *)
val registry : 'a t -> Cni_engine.Stats.Registry.t option

(** The reliability configuration in force, if any. *)
val reliability : 'a t -> Reliable.config option

type stats = {
  tx_packets : int;
  tx_data_packets : int;
  tx_dma_bytes : int;
  rx_packets : int;
  rx_dma_bytes : int;
  interrupts : int;
  polls : int;
  unmatched : int;
}

val stats : 'a t -> stats

type rel_stats = {
  retransmits : int;  (** timer-driven re-sends of unacked frames *)
  acks_tx : int;  (** acknowledgments generated (one per sequenced frame seen) *)
  acks_rx : int;  (** acknowledgments received *)
  rx_duplicates : int;  (** sequenced frames suppressed by the receive window *)
  tx_unacked : int;  (** frames still awaiting an ack (0 after a clean run) *)
}

(** [None] when the interface was built without [reliability]. *)
val rel_stats : 'a t -> rel_stats option

(** Frames dropped on receive because the header failed {!Wire.decode_opt}
    (counted as [node<N>/nic/rx_undecodable] when a registry is attached). *)
val rx_undecodable : 'a t -> int

(** Frames dropped on receive because reassembly flagged an AAL5 CRC
    mismatch (fault-injected corruption); [node<N>/nic/rx_crc_errors]. *)
val rx_crc_errors : 'a t -> int
