(** Network interface models.

    Three interfaces share one API:

    - {b CNI} (the paper's design): Application Device Channels (no kernel on
      the send/receive path), the PATHFINDER classifier feeding Application
      Interrupt Handlers that run protocol code on the 33 MHz NIC processor,
      a Message Cache that elides host-memory DMA on transmit hits and binds
      migratory pages on receive, and a polling/interrupt hybrid towards the
      host.
    - {b Standard} (the paper's baseline): kernel-mediated sends and
      receives, an interrupt per incoming packet, a DMA across the memory bus
      for every data transfer, protocol processing on the host CPU (stealing
      host time when the application is computing).
    - {b OSIRIS} (the base board CNI extends): user-level ADC sends, but
      software demultiplexing and interrupt-only receives, no Message Cache,
      no AIH — the intermediate design point.

    Time accounting: host-side costs are charged with [Engine.delay] in the
    calling fiber and reported through [host.overhead]; NIC-side costs are
    charged inside internal fibers at the NIC clock; bus transfers go through
    the shared {!Cni_machine.Bus} (whose snooper feeds the Message Cache). *)

(** Bulk data attached to a message. [vaddr] is the host virtual address of
    the source (transmit) or destination (deliver) buffer; [cacheable] is the
    header bit that asks the Message Cache to retain a binding. *)
type data = No_data | Page of { vaddr : int; bytes : int; cacheable : bool }

(** Callbacks into the owning node. *)
type host = {
  host_waiting : unit -> bool;
      (** is the host application blocked on the network (polling)? *)
  steal : Cni_engine.Time.t -> unit;
      (** preempt the host CPU for this long (protocol service while the
          application computes) *)
  invalidate_range : addr:int -> bytes:int -> unit;
      (** drop host cache lines overwritten by an incoming DMA *)
  overhead : Cni_engine.Time.t -> unit;
      (** account host-side protocol overhead *)
}

(** Context handed to the protocol handler for an incoming packet. *)
type 'a ctx = {
  ctx_node : int;
  charge : int -> unit;
      (** run [n] protocol instructions (NIC clock under AIH, host clock on
          the standard path) *)
  reply : dst:int -> header:Bytes.t -> body_bytes:int -> data:data -> payload:'a -> unit;
      (** send a message from protocol context (no host send cost under AIH) *)
  deliver_page : vaddr:int -> bytes:int -> cacheable:bool -> unit;
      (** DMA incoming bulk data into host memory at [vaddr]; performs
          receive caching when [cacheable] *)
}

type 'a t

(** Tuning of the adaptive receive policy. The board tracks the mean packet
    interarrival gap with an exponentially weighted moving average and picks
    the wakeup mode from it: poll below [ra_poll_gap], interrupt above
    [ra_interrupt_gap], the paper's hybrid in between. *)
type rx_adaptive = {
  ra_alpha : float;
      (** EWMA weight of the newest gap, within (0, 1]; larger = faster
          reaction, smaller = smoother estimate *)
  ra_poll_gap : Cni_engine.Time.t;
      (** mean gap at or below which the board selects poll mode (traffic is
          hot; empty checks are rare) *)
  ra_interrupt_gap : Cni_engine.Time.t;
      (** mean gap at or above which the board selects interrupt mode (the
          link is idle; polling would be all waste) *)
  ra_hysteresis : float;
      (** >= 1. Leaving a mode requires the estimate to cross its threshold
          by this factor (e.g. 2.0: poll mode is left only once the mean gap
          exceeds [2 * ra_poll_gap]), so one outlier gap cannot flap the
          mode *)
}

(** [alpha = 0.25], poll below a 20 us mean gap, interrupt above 160 us,
    hysteresis 2.0. *)
val default_rx_adaptive : rx_adaptive

(** How the host learns of an incoming frame on the CNI's ADC delivery path
    (host-resident handlers, i.e. [aih = false]; under AIH the host is not
    woken at all and the policy is moot).

    - [Rx_interrupt]: an interrupt per wakeup, whatever the host is doing —
      the standard board's behaviour, kept as an ablation.
    - [Rx_poll]: the host checks the receive ring every [rx_poll_period];
      cheap per check, but checks that find nothing ({e wasted polls}) burn
      host cycles whenever traffic is slower than the period.
    - [Rx_hybrid]: the paper's section 2.1 policy — poll when the host is
      already waiting on the network, interrupt when it is computing.
    - [Rx_adaptive]: pick interrupt / hybrid / poll from the measured
      arrival rate (see {!rx_adaptive}), approximating interrupt-cost
      flatness under load without paying for polling when idle. *)
type rx_policy = Rx_interrupt | Rx_poll | Rx_hybrid | Rx_adaptive of rx_adaptive

(** The wakeup mode in force at one instant ({!rx_mode} reports it). *)
type rx_mode = [ `Interrupt | `Hybrid | `Poll ]

type cni_options = {
  mc_bytes : int;  (** Message Cache capacity; 0 disables it *)
  mc_mode : Message_cache.mode;
  aih : bool;  (** run protocol handlers on the NIC; [false] = host handlers
                   woken per {!rx_policy} (ablation) *)
  rx_policy : rx_policy;
      (** receive wakeup policy for host-resident handlers; default
          [Rx_hybrid] (the paper's design) *)
  rx_batch : int;
      (** receive coalescing: one host wakeup drains up to this many queued
          frames (frames arriving while the wakeup cost is still being
          charged ride along). 1 (default) = one wakeup per frame *)
  rx_poll_period : Cni_engine.Time.t;
      (** how often a polling host checks the receive ring; sets the
          wasted-poll cost of [Rx_poll] (and of the adaptive policy's poll
          mode) when traffic is slower than the period. Default 5 us *)
  mc_phys_to_vpage : (int -> int) option;
      (** the snooper's RTLB: translate a physical bus address to the virtual
          page bound in the Message Cache's buffer map. [None] = identity
          mapping (phys addr / page size), which is correct only while host
          buffers are identity-mapped — see {!Message_cache.create} *)
}

(** AIH on, full-size Message Cache in update mode, [Rx_hybrid] with no
    coalescing — the paper's CNI. *)
val default_cni_options : cni_options

type osiris_options = {
  software_classify_nic_cycles : int;
      (** per-packet software demultiplexing cost on the board processor *)
}

val default_osiris_options : osiris_options

(** All constructors take an optional metrics [registry]; when given, the
    interface registers its counters as [node<N>/nic/<metric>], its transmit
    descriptor queue as [node<N>/ring/<metric>], and the Message Cache (CNI)
    as [node<N>/message-cache/<metric>].

    [reliability] enables end-to-end reliable delivery (see {!Reliable}):
    every Wire frame sent through this interface is sequenced, acknowledged
    by the receiving interface, retransmitted on timeout with exponential
    backoff and deduplicated on receive. On the CNI and OSIRIS boards this
    runs in board firmware; on the standard interface every ack,
    retransmission and duplicate costs the host an interrupt + kernel path.
    With [reliability] absent the interface behaves exactly as before —
    the zero-loss fast path carries no cost. *)

val create_cni :
  ?registry:Cni_engine.Stats.Registry.t ->
  ?reliability:Reliable.config ->
  Cni_engine.Engine.t ->
  Cni_machine.Bus.t ->
  'a Cni_atm.Fabric.t ->
  node:int ->
  host:host ->
  ?options:cni_options ->
  unit ->
  'a t

val create_standard :
  ?registry:Cni_engine.Stats.Registry.t ->
  ?reliability:Reliable.config ->
  Cni_engine.Engine.t ->
  Cni_machine.Bus.t ->
  'a Cni_atm.Fabric.t ->
  node:int ->
  host:host ->
  unit ->
  'a t

(** The OSIRIS base board the CNI extends (section 2.1): Application Device
    Channels at user level, but software demultiplexing on the board and an
    interrupt per packet towards the host; no Message Cache, no AIH. *)
val create_osiris :
  ?registry:Cni_engine.Stats.Registry.t ->
  ?reliability:Reliable.config ->
  Cni_engine.Engine.t ->
  Cni_machine.Bus.t ->
  'a Cni_atm.Fabric.t ->
  node:int ->
  host:host ->
  ?options:osiris_options ->
  unit ->
  'a t

val node : 'a t -> int

(** The machine parameter set the interface was built with (board clock,
    page size, path costs). *)
val params : 'a t -> Cni_machine.Params.t

val is_cni : 'a t -> bool

(** [true] when protocol handlers execute on the NIC processor (CNI with
    AIH); [false] for the standard interface and the host-handler ablation. *)
val aih_enabled : 'a t -> bool

(** [install_handler t ~pattern ~code_bytes f] — the paper's AIH
    installation: the connection-opening application supplies a PATHFINDER
    pattern and the location/size of relocatable protocol object code; the
    board swaps the code into a free segment of its memory and programs the
    classifier to activate it on a match (section 2.3). Incoming packets are
    classified against the real {!Cni_pathfinder.Classifier} DAG. On the
    standard interface the same registration is kept, but the "handler" runs
    on the host CPU behind an interrupt, after the kernel's software demux.

    @raise Failure if the board's free memory cannot hold [code_bytes]
    (handlers are whole-segment resident; there is no paging on the board).
    @raise Invalid_argument if [code_bytes] is zero or negative — a handler
    with no object code cannot occupy a board segment. *)
val install_handler :
  'a t ->
  pattern:Cni_pathfinder.Pattern.t ->
  ?code_bytes:int ->
  ('a ctx -> 'a Cni_atm.Fabric.packet -> unit) ->
  Cni_pathfinder.Classifier.handle

(** Deprogram the classifier pattern and free the handler's board memory
    segment for later installations. Uninstalling twice is a no-op. *)
val uninstall_handler : 'a t -> Cni_pathfinder.Classifier.handle -> unit

(** Fallback for packets no pattern matches (default: count and drop). *)
val set_default_handler : 'a t -> ('a ctx -> 'a Cni_atm.Fabric.packet -> unit) -> unit

(** Bytes of board memory currently holding AIH object code. *)
val handler_code_bytes : 'a t -> int

(** A handler admitted through the static verifier: the classifier handle
    (for {!uninstall_handler}), the admission certificate, the per-cell
    cycle budget it was admitted against, and the activation entry point
    the host side of a protocol may drive through {!local_dispatch}
    ([vh_activate ctx inputs] runs the firmware with registers
    [0..inputs-1] preloaded; [?view] supplies the [Ldv] window for
    streaming programs). *)
type 'a verified_handler = {
  vh_handle : Cni_pathfinder.Classifier.handle;
  vh_cert : Cni_aih.Aih_verify.cert;
  vh_budget : int;
  vh_activate : ?view:int array -> 'a ctx -> int array -> unit;
}

(** Words in the canonical first-cell view a [Header]-kind handler is
    activated with: [kind; src; channel; obj; aux; body_bytes]. *)
val header_view_words : int

(** [install_handler_verified t ~pattern ~program ~entry ~on_send ~on_wake]
    is the paper's full AIH admission path: the board accepts only
    {e pointer-safe, relocatable object code}, established here by
    {!Cni_aih.Aih_verify.verify} before anything touches the classifier. On
    [Ok] the program's encoded image plus its declared board segment —
    [cert.code_bytes], not a caller-supplied guess — is debited from board
    memory and every activation interprets the firmware under
    {!Cni_aih.Aih_exec.run}, charging the cycles it actually executes;
    [entry] extracts the firmware's input registers from a matched packet,
    and [on_send]/[on_wake] give the [send]/[host_wakeup] instructions their
    wire and host meanings. On [Error] nothing is installed, the rejection
    is counted (see {!aih_verify_rejects}), and the structured diagnostics
    are returned (every independent violation, not just the first).

    Streaming programs are additionally held to line-rate admission: the
    per-activation WCET must fit [Params.line_rate_budget] at the board's
    link rate ([?link_bps] overrides it, e.g. to admit a heavy handler on a
    slower downlink), or the install fails with [Line_rate_exceeded].
    Dispatch then activates a [Header] program once per matched packet with
    the first-cell view, and a [Payload] program once per chunk of the
    reassembled body — each activation charging the cycles it executes, so
    cost scales per cell.

    @raise Failure if the program verifies but the board's free memory
    cannot hold its certified [code_bytes]. *)
val install_handler_verified :
  ?max_wcet:int ->
  ?link_bps:int ->
  'a t ->
  pattern:Cni_pathfinder.Pattern.t ->
  program:Cni_aih.Aih_ir.program ->
  entry:('a Cni_atm.Fabric.packet -> int array) ->
  on_send:('a ctx -> dst:int -> kind:int -> obj:int -> value:int -> unit) ->
  on_wake:(seq:int -> value:int -> unit) ->
  ('a verified_handler, Cni_aih.Aih_verify.reject list) result

(** Firmware programs this board has refused to install. *)
val aih_verify_rejects : 'a t -> int

(** [send t ~dst ~header ~body_bytes ~data ~payload] transmits from the host
    application / protocol client. Must run in a fiber; charges the host-side
    send cost there, then completes asynchronously through the NIC. For
    [Page] data the caller must already have flushed the host cache range
    (the DSM layer flushes at release points; see Cache.flush_range). *)
val send :
  'a t -> dst:int -> header:Bytes.t -> body_bytes:int -> data:data -> payload:'a -> unit

(** [local_dispatch t f] runs a protocol step that the {e host} initiates —
    e.g. the local-arrival step of a NIC-resident collective — in the
    interface's protocol context. The calling fiber pays the descriptor-post
    cost (ADC enqueue on CNI/OSIRIS, kernel entry on the standard board).
    Under AIH the step itself then executes asynchronously on the NIC
    processor ([ctx.charge] at NIC cycles, [ctx.reply] free of host cost);
    on every other interface it executes synchronously on the host CPU in
    the calling fiber, charged as protocol overhead. No interrupt is taken
    either way: the host initiated the action. Must run in a fiber. *)
val local_dispatch : 'a t -> ('a ctx -> unit) -> unit

(** The Message Cache, when configured (CNI with [mc_bytes > 0]). *)
val message_cache : 'a t -> Message_cache.t option

(** The paper's "network cache hit ratio" (percent; 0 with no traffic);
    meaningful for CNI only. *)
val network_cache_hit_ratio : 'a t -> float

(** [None] when there is no Message Cache or it saw no lookups; use to
    exclude idle nodes from cluster-wide averages. *)
val network_cache_hit_ratio_opt : 'a t -> float option

(** The metrics registry handed to the constructor, if any. *)
val registry : 'a t -> Cni_engine.Stats.Registry.t option

(** The reliability configuration in force, if any. *)
val reliability : 'a t -> Reliable.config option

type stats = {
  tx_packets : int;  (** frames handed to the wire *)
  tx_data_packets : int;  (** of which carried bulk [Page] data *)
  tx_dma_bytes : int;  (** host-memory DMA on transmit (Message Cache misses) *)
  rx_packets : int;  (** frames reassembled off the wire *)
  rx_dma_bytes : int;  (** bulk data DMAed into host memory on receive *)
  interrupts : int;  (** host interrupts taken for receive wakeups *)
  polls : int;  (** receive wakeups delivered to a polling host check *)
  wasted_polls : int;
      (** ring checks that found nothing, while in poll mode; the cost
          polling pays when traffic is slower than [rx_poll_period] *)
  coalesced : int;
      (** frames delivered by a wakeup they did not pay for ([rx_batch] >
          1): total frames minus wakeups on the batched path *)
  mode_switches : int;  (** adaptive policy mode transitions *)
  mode_interrupt : int;  (** wakeups charged while in interrupt mode *)
  mode_hybrid : int;  (** wakeups charged while in hybrid mode *)
  mode_poll : int;  (** wakeups charged while in poll mode *)
  unmatched : int;  (** frames no classifier pattern matched *)
}

(** Lifetime traffic/wakeup counters for this interface. *)
val stats : 'a t -> stats

(** The receive wakeup mode a frame arriving now would be delivered with:
    the adaptive policy's current mode on a CNI board, the fixed policy's
    mode otherwise ([`Interrupt] for OSIRIS/standard). *)
val rx_mode : 'a t -> rx_mode

type rel_stats = {
  retransmits : int;  (** timer-driven re-sends of unacked frames *)
  acks_tx : int;  (** acknowledgments generated (one per sequenced frame seen) *)
  acks_rx : int;  (** acknowledgments received *)
  rx_duplicates : int;  (** sequenced frames suppressed by the receive window *)
  tx_unacked : int;  (** frames still awaiting an ack (0 after a clean run) *)
  rto_capped : int;  (** retransmission arms clamped at [config.max_rto] *)
}

(** [None] when the interface was built without [reliability]. *)
val rel_stats : 'a t -> rel_stats option

(** Sequenced frames not yet acknowledged (0 with reliability off). A
    sender can poll this to serialise on delivery without inventing an
    application-level ack. *)
val rel_pending_count : 'a t -> int

(** Frames dropped on receive because the header failed {!Wire.decode_opt}
    (counted as [node<N>/nic/rx_undecodable] when a registry is attached). *)
val rx_undecodable : 'a t -> int

(** Frames dropped on receive because reassembly flagged an AAL5 CRC
    mismatch (fault-injected corruption); [node<N>/nic/rx_crc_errors]. *)
val rx_crc_errors : 'a t -> int

(** {2 Crash / restart}

    A board can {!crash} — its timers and queued deliveries die; frames to
    or from it are dropped (counted as [crash_tx_drops]/[crash_rx_drops]) —
    and later {!restart} under a new delivery {e epoch}. Because the ADC
    descriptor rings are host-resident, un-acked transmit descriptors
    survive the crash: they are parked, and {!restart} re-stamps each one
    under the new epoch with its original bare sequence number, re-arms its
    retransmit timer and re-sends it, so nothing entrusted to reliable
    delivery is lost across a crash. Sequenced frames carry [(epoch, seq)]
    in the Wire aux field (see {!Reliable.aux_of}); receivers reject frames
    from an older epoch of a source than the newest seen, which kills the
    stale pre-crash transmissions of those same payloads. The per-source
    duplicate windows, peer epochs and sequence allocators are likewise
    host-resident and survive — a pre-crash delivery of seq [s] suppresses
    the post-restart re-send of seq [s], keeping delivery exactly-once
    across a restart.

    A crash with [scrub = true] additionally wipes board memory: installed
    handlers (and their firmware segments) and the Message Cache's bindings.
    The restart then replays every surviving installation in its original
    order, re-verifying firmware programs through
    {!Cni_aih.Aih_verify.verify} (counted as [restart_reverified] /
    [restart_reverify_rejects]). Classifier handles and [vh_activate]
    closures obtained {e before} a scrubbed crash refer to the wiped
    segments and must not be reused. *)

(** [false] between a {!crash} and the matching {!restart}. *)
val alive : 'a t -> bool

(** The board's restart epoch (0 at creation; saturates at
    {!Reliable.max_epoch}). *)
val epoch : 'a t -> int

(** Crash the board; no-op if already dead. [Cluster] pairs this with
    marking the node down on the fabric. *)
val crash : 'a t -> scrub:bool -> unit

(** Restart a crashed board; no-op if alive. Advances the epoch, re-stamps
    and re-sends the parked un-acked transmit descriptors under it, and
    replays the install log if the crash scrubbed board memory. *)
val restart : 'a t -> unit

(** Per-restart recovery latencies, oldest first: the time from each
    {!restart} to the first frame the revived board received. A restart
    that never saw traffic again contributes nothing. *)
val recovery_latencies : 'a t -> Cni_engine.Time.t list
