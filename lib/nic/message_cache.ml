type mode = Update | Invalidate

type slot = { mutable vpage : int (* -1 = free *); mutable referenced : bool }

type t = {
  page_bytes : int;
  capacity : int;
  cache_mode : mode;
  slots : slot array;
  map : (int, int) Hashtbl.t; (* vpage -> slot index: the buffer map *)
  mutable hand : int; (* clock hand *)
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_binds : int;
  mutable s_evictions : int;
  mutable s_snoop_updates : int;
  mutable s_snoop_invalidates : int;
}

type stats = {
  hits : int;
  misses : int;
  binds : int;
  evictions : int;
  snoop_updates : int;
  snoop_invalidates : int;
}

let create ~page_bytes ~capacity_bytes ~mode =
  let capacity = max 1 (capacity_bytes / page_bytes) in
  {
    page_bytes;
    capacity;
    cache_mode = mode;
    slots = Array.init capacity (fun _ -> { vpage = -1; referenced = false });
    map = Hashtbl.create (capacity * 2);
    hand = 0;
    s_hits = 0;
    s_misses = 0;
    s_binds = 0;
    s_evictions = 0;
    s_snoop_updates = 0;
    s_snoop_invalidates = 0;
  }

let capacity_pages t = t.capacity
let mode t = t.cache_mode
let contains t ~vpage = Hashtbl.mem t.map vpage

let lookup t ~vpage =
  match Hashtbl.find_opt t.map vpage with
  | Some i ->
      t.slots.(i).referenced <- true;
      t.s_hits <- t.s_hits + 1;
      true
  | None ->
      t.s_misses <- t.s_misses + 1;
      false

let drop_slot t i =
  let s = t.slots.(i) in
  if s.vpage >= 0 then begin
    Hashtbl.remove t.map s.vpage;
    s.vpage <- -1;
    s.referenced <- false
  end

(* Clock (second chance): advance the hand past referenced slots, clearing
   their bits, and claim the first unreferenced one. *)
let claim_slot t =
  let rec go guard =
    let s = t.slots.(t.hand) in
    let i = t.hand in
    t.hand <- (t.hand + 1) mod t.capacity;
    if s.vpage = -1 then i
    else if s.referenced && guard > 0 then begin
      s.referenced <- false;
      go (guard - 1)
    end
    else begin
      t.s_evictions <- t.s_evictions + 1;
      drop_slot t i;
      i
    end
  in
  go (2 * t.capacity)

let bind t ~vpage =
  match Hashtbl.find_opt t.map vpage with
  | Some i -> t.slots.(i).referenced <- true
  | None ->
      let i = claim_slot t in
      t.slots.(i).vpage <- vpage;
      t.slots.(i).referenced <- true;
      Hashtbl.replace t.map vpage i;
      t.s_binds <- t.s_binds + 1

let unbind t ~vpage =
  match Hashtbl.find_opt t.map vpage with Some i -> drop_slot t i | None -> ()

let snoop t ~addr ~bytes =
  if bytes > 0 then begin
    let first = addr / t.page_bytes and last = (addr + bytes - 1) / t.page_bytes in
    for vpage = first to last do
      match Hashtbl.find_opt t.map vpage with
      | Some i -> (
          match t.cache_mode with
          | Update ->
              (* write-update: the buffer absorbs the data and stays bound *)
              t.slots.(i).referenced <- true;
              t.s_snoop_updates <- t.s_snoop_updates + 1
          | Invalidate ->
              drop_slot t i;
              t.s_snoop_invalidates <- t.s_snoop_invalidates + 1)
      | None -> ()
    done
  end

let stats t =
  {
    hits = t.s_hits;
    misses = t.s_misses;
    binds = t.s_binds;
    evictions = t.s_evictions;
    snoop_updates = t.s_snoop_updates;
    snoop_invalidates = t.s_snoop_invalidates;
  }

let reset_stats t =
  t.s_hits <- 0;
  t.s_misses <- 0;
  t.s_binds <- 0;
  t.s_evictions <- 0;
  t.s_snoop_updates <- 0;
  t.s_snoop_invalidates <- 0

let hit_ratio t =
  let total = t.s_hits + t.s_misses in
  if total = 0 then 100. else 100. *. float_of_int t.s_hits /. float_of_int total
