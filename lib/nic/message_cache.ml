module Stats = Cni_engine.Stats

type mode = Update | Invalidate

type slot = { mutable vpage : int (* -1 = free *); mutable referenced : bool }

type t = {
  page_bytes : int;
  capacity : int;
  cache_mode : mode;
  phys_to_vpage : int -> int;  (* the snooper's RTLB (reverse TLB) *)
  slots : slot array;
  map : (int, int) Hashtbl.t; (* vpage -> slot index: the buffer map *)
  mutable hand : int; (* clock hand *)
  s_hits : Stats.Counter.t;
  s_misses : Stats.Counter.t;
  s_binds : Stats.Counter.t;
  s_evictions : Stats.Counter.t;
  s_snoop_updates : Stats.Counter.t;
  s_snoop_invalidates : Stats.Counter.t;
}

type stats = {
  hits : int;
  misses : int;
  binds : int;
  evictions : int;
  snoop_updates : int;
  snoop_invalidates : int;
}

let subsystem = "message-cache"

let create ?registry ?node ?phys_to_vpage ~page_bytes ~capacity_bytes ~mode () =
  let capacity = max 1 (capacity_bytes / page_bytes) in
  let counter name =
    match registry with
    | Some reg -> Stats.Registry.counter reg ?node ~subsystem name
    | None -> Stats.Counter.create name
  in
  {
    page_bytes;
    capacity;
    cache_mode = mode;
    phys_to_vpage =
      (match phys_to_vpage with
      | Some f -> f
      | None -> fun addr -> addr / page_bytes);
    slots = Array.init capacity (fun _ -> { vpage = -1; referenced = false });
    map = Hashtbl.create (capacity * 2);
    hand = 0;
    s_hits = counter "hits";
    s_misses = counter "misses";
    s_binds = counter "binds";
    s_evictions = counter "evictions";
    s_snoop_updates = counter "snoop_updates";
    s_snoop_invalidates = counter "snoop_invalidates";
  }

let capacity_pages t = t.capacity
let mode t = t.cache_mode
let contains t ~vpage = Hashtbl.mem t.map vpage

let lookup t ~vpage =
  match Hashtbl.find_opt t.map vpage with
  | Some i ->
      t.slots.(i).referenced <- true;
      Stats.Counter.incr t.s_hits;
      true
  | None ->
      Stats.Counter.incr t.s_misses;
      false

let drop_slot t i =
  let s = t.slots.(i) in
  if s.vpage >= 0 then begin
    Hashtbl.remove t.map s.vpage;
    s.vpage <- -1;
    s.referenced <- false
  end

(* Clock (second chance): advance the hand past referenced slots, clearing
   their bits, and claim the first unreferenced one. *)
let claim_slot t =
  let rec go guard =
    let s = t.slots.(t.hand) in
    let i = t.hand in
    t.hand <- (t.hand + 1) mod t.capacity;
    if s.vpage = -1 then i
    else if s.referenced && guard > 0 then begin
      s.referenced <- false;
      go (guard - 1)
    end
    else begin
      Stats.Counter.incr t.s_evictions;
      drop_slot t i;
      i
    end
  in
  go (2 * t.capacity)

let bind t ~vpage =
  match Hashtbl.find_opt t.map vpage with
  | Some i -> t.slots.(i).referenced <- true
  | None ->
      let i = claim_slot t in
      t.slots.(i).vpage <- vpage;
      t.slots.(i).referenced <- true;
      Hashtbl.replace t.map vpage i;
      Stats.Counter.incr t.s_binds

let unbind t ~vpage =
  match Hashtbl.find_opt t.map vpage with Some i -> drop_slot t i | None -> ()

let snoop t ~addr ~bytes =
  if bytes > 0 then begin
    let first = addr / t.page_bytes and last = (addr + bytes - 1) / t.page_bytes in
    for ppage = first to last do
      (* each covered physical page goes through the RTLB before the buffer
         map is consulted: the map is keyed by virtual page *)
      let vpage = t.phys_to_vpage (ppage * t.page_bytes) in
      match Hashtbl.find_opt t.map vpage with
      | Some i -> (
          match t.cache_mode with
          | Update ->
              (* write-update: the buffer absorbs the data and stays bound *)
              t.slots.(i).referenced <- true;
              Stats.Counter.incr t.s_snoop_updates
          | Invalidate ->
              drop_slot t i;
              Stats.Counter.incr t.s_snoop_invalidates)
      | None -> ()
    done
  end

(* The bound pages as the slot array sees them (not the buffer map): lets
   tests check that map and slots never disagree. *)
let bound_pages t =
  Array.to_list t.slots
  |> List.filter_map (fun s -> if s.vpage >= 0 then Some s.vpage else None)
  |> List.sort compare

let stats t =
  {
    hits = Stats.Counter.value t.s_hits;
    misses = Stats.Counter.value t.s_misses;
    binds = Stats.Counter.value t.s_binds;
    evictions = Stats.Counter.value t.s_evictions;
    snoop_updates = Stats.Counter.value t.s_snoop_updates;
    snoop_invalidates = Stats.Counter.value t.s_snoop_invalidates;
  }

let reset_stats t =
  Stats.Counter.reset t.s_hits;
  Stats.Counter.reset t.s_misses;
  Stats.Counter.reset t.s_binds;
  Stats.Counter.reset t.s_evictions;
  Stats.Counter.reset t.s_snoop_updates;
  Stats.Counter.reset t.s_snoop_invalidates

let hit_ratio_opt t =
  let hits = Stats.Counter.value t.s_hits and misses = Stats.Counter.value t.s_misses in
  let total = hits + misses in
  if total = 0 then None else Some (100. *. float_of_int hits /. float_of_int total)

(* A cache with no traffic reports 0, not 100: an idle node must not inflate
   aggregate hit ratios (callers that want to skip idle nodes use
   [hit_ratio_opt]). *)
let hit_ratio t = Option.value (hit_ratio_opt t) ~default:0.
