(** Wire header for messages on the cluster.

    This is the classifiable prefix that travels in the first ATM cell of
    every frame; PATHFINDER patterns are written against these fixed offsets.
    16 bytes:

    {v
    0-1   magic    0xC1A0
    2     kind     protocol-defined discriminator
    3     flags    bit 0: buffer is cacheable (Message Cache candidate)
                   bit 1: frame carries bulk data
    4-5   src      source node id
    6-7   channel  application device channel / AIH selector
    8-11  object   page / lock / barrier id (protocol-defined)
    12-15 aux      sequence number or protocol extra
    v} *)

val magic : int
val header_bytes : int

type t = {
  kind : int;
  cacheable : bool;
  has_data : bool;
  src : int;
  channel : int;
  obj : int;
  aux : int;
}

val encode : t -> Bytes.t

(** @raise Invalid_argument on short buffers or bad magic. *)
val decode : Bytes.t -> t

(** [None] on a short buffer or bad magic — the total form used on receive
    paths, where an undecodable frame must be dropped and counted rather
    than raise. *)
val decode_opt : Bytes.t -> t option

(** [with_aux b aux] is a copy of the encoded header [b] with the aux field
    (bytes 12-15) overwritten — how the reliability layer stamps a sequence
    number onto an already-built header without disturbing the offsets
    PATHFINDER patterns match (0-7). *)
val with_aux : Bytes.t -> int -> Bytes.t

(** {2 PATHFINDER pattern builders} *)

(** Matches any frame with our magic. *)
val pattern_any : Cni_pathfinder.Pattern.t

(** Matches frames for one channel. *)
val pattern_channel : channel:int -> Cni_pathfinder.Pattern.t

(** Matches frames for one channel with one kind — e.g. binding a specific
    protocol action to an Application Interrupt Handler. *)
val pattern_channel_kind : channel:int -> kind:int -> Cni_pathfinder.Pattern.t
