(* Reliable delivery compiled onto the board: the PR-2 closure protocol
   (per-destination sequencing, per-frame acks, a duplicate window whose
   floor advances over contiguously seen numbers, timer-driven retransmit)
   re-expressed as generated streaming AIH firmware, the way
   {!Collectives_ir} compiles the tree collectives.

   Two programs per endpoint:

   - [rx_program] is a {!Aih_ir.Header} handler on the data channel. Its
     board segment holds one [floor; bitmap] window slot per peer; a fresh
     data frame sets its bit, slides the floor over the contiguous prefix
     (a bounded [Loop], limit {!window}), acks the sender from protocol
     context and wakes the host to deliver. Duplicates are re-acked (the
     previous ack may have died on the fabric) and counted; frames more
     than {!window} beyond the floor are dropped unacked and survive as a
     later retransmission. Ack frames arriving back at a sender take an
     early branch that just wakes the host.

   - [tx_program] is an [Episode] stamp handler the host drives through
     {!Nic.local_dispatch}: it allocates the next per-destination sequence
     number from its segment, wakes the host (which registers the pending
     frame and arms the retransmit timer {e before} the frame is on the
     wire) and then sends the data frame.

   The host side owns what the paper keeps off the board: payload bytes
   (stashed per-activation and handed to [deliver]), the retransmit timers
   (engine-driven, {!Reliable.config} backoff/cap semantics identical to
   the closure layer) and the completion ivars senders block on. Counters
   land in the registry under subsystem "reliable-ir" with the same names
   as {!Nic.rel_stats} so the two implementations diff directly. *)

module Engine = Cni_engine.Engine
module Time = Cni_engine.Time
module Stats = Cni_engine.Stats
module Sync = Cni_engine.Sync
module Fabric = Cni_atm.Fabric
module Ir = Cni_aih.Aih_ir

let default_channel = 9
let k_data = 1
let k_ack = 2

(* receive window: frames this far beyond the floor are tracked in the
   bitmap word; anything further is dropped unacked. Small enough that the
   rx program's floor-advance loop fits the line-rate budget. *)
let window = 8

(* host-wakeup event codes, packed as [(ev lsl 16) lor peer] in the wake
   sequence field with the sequence number as the value *)
let ev_deliver = 1
let ev_ack = 2
let ev_dup = 3
let ev_stamp = 4

(* ------------------------------------------------------------------ *)
(* Generated firmware                                                  *)
(* ------------------------------------------------------------------ *)

(* Header-kind receive handler. Segment layout: slot [2*src] = floor,
   [2*src + 1] = bitmap of seen-but-not-contiguous frames (bit [d-1] set
   when [floor + d] has been seen, d in 1 .. window). *)
let rx_program ~size =
  let a = Ir.Asm.create () in
  let open Ir.Asm in
  let l_ack = fresh a and l_dup = fresh a and l_tail = fresh a in
  let l_adv = fresh a and l_head = fresh a and l_out = fresh a in
  const a 0 0;
  ldv a 1 ~base:0 0 (* kind *);
  ldv a 2 ~base:0 1 (* src *);
  ldv a 3 ~base:0 3 (* obj = sequence number *);
  (* untrusted header fields: prove the peer index before it touches the
     segment (the verifier refines r2 through these branches) *)
  bri a Lt 2 0 l_out;
  bri a Ge 2 size l_out;
  bri a Eq 1 k_ack l_ack;
  bri a Ne 1 k_data l_out;
  (* window slot for this peer *)
  bini a Mul 4 2 2;
  load a 5 ~base:4 0 (* floor *);
  load a 6 ~base:4 1 (* bitmap *);
  bin a Sub 7 3 5 (* d = seq - floor *);
  bri a Le 7 0 l_dup;
  bri a Gt 7 window l_out (* beyond the window: drop unacked *);
  bini a Sub 8 7 1 (* bit index, proven in 0 .. window-1 *);
  bin a Shr 9 6 8;
  bini a And 9 9 1;
  bri a Eq 9 1 l_dup;
  (* fresh: record it, slide the floor over the contiguous prefix *)
  const a 10 1;
  bin a Shl 10 10 8;
  bin a Or 6 6 10;
  const a 11 0;
  place a l_head;
  loop a ~counter:11 ~limit:window ~exit:l_adv;
  bini a And 12 6 1;
  bri a Eq 12 0 l_adv;
  bini a Shr 6 6 1;
  bini a Add 5 5 1;
  jmp a l_head;
  place a l_adv;
  store a 5 ~base:4 0;
  store a 6 ~base:4 1;
  const a 13 ev_deliver;
  jmp a l_tail;
  place a l_dup;
  const a 13 ev_dup;
  place a l_tail;
  (* always ack — the duplicate means our previous ack was lost *)
  const a 14 k_ack;
  send a ~dst:2 ~kind:14 ~obj:3 ~value:3;
  bini a Shl 15 13 16;
  bin a Or 15 15 2;
  wake a ~seq:15 ~value:3;
  halt a;
  place a l_ack;
  const a 13 ev_ack;
  bini a Shl 15 13 16;
  bin a Or 15 15 2;
  wake a ~seq:15 ~value:3;
  halt a;
  place a l_out;
  halt a;
  assemble
    ~hkind:(Ir.Header { view_words = Nic.header_view_words })
    a ~name:"reliable-rx" ~seg_words:(2 * size) ~inputs:0

(* Episode-kind transmit stamp: r0 = destination (host-supplied through
   local_dispatch, still proven in range before indexing the segment).
   Wake first — the host must have the pending entry registered and the
   timer armed before the frame can race it to the fabric. *)
let tx_program ~size =
  let a = Ir.Asm.create () in
  let open Ir.Asm in
  let l_out = fresh a in
  bri a Lt 0 0 l_out;
  bri a Ge 0 size l_out;
  load a 1 ~base:0 0;
  bini a Add 1 1 1;
  store a 1 ~base:0 0;
  const a 2 ev_stamp;
  bini a Shl 2 2 16;
  bin a Or 2 2 0;
  wake a ~seq:2 ~value:1;
  const a 3 k_data;
  send a ~dst:0 ~kind:3 ~obj:1 ~value:1;
  place a l_out;
  halt a;
  assemble a ~name:"reliable-tx-stamp" ~seg_words:size ~inputs:1

(* ------------------------------------------------------------------ *)
(* Host endpoint                                                       *)
(* ------------------------------------------------------------------ *)

type 'a staged = {
  g_dst : int;
  g_body_bytes : int;
  g_payload : 'a;
  g_done : unit Sync.Ivar.t;
}

type 'a pending = {
  p_dst : int;
  p_seq : int;
  p_header : Bytes.t;
  p_body_bytes : int;
  p_payload : 'a;
  p_done : unit Sync.Ivar.t;
  mutable p_tries : int;
  mutable p_rto : Time.t;
}

type 'a t = {
  nic : 'a Nic.t;
  eng : Engine.t;
  rank : int;
  size : int;
  channel : int;
  cfg : Reliable.config;
  deliver : src:int -> seq:int -> body_bytes:int -> payload:'a -> unit;
  rx_vh : 'a Nic.verified_handler;
  tx_vh : 'a Nic.verified_handler;
  staged : 'a staged Queue.t;
  pending : (int * int, 'a pending) Hashtbl.t;  (** keyed [(dst, seq)] *)
  mutable cur_pkt : (int * 'a) option;
      (** body_bytes/payload of the frame the rx firmware is streaming *)
  s_retransmits : Stats.Counter.t;
  s_acks_tx : Stats.Counter.t;
  s_acks_rx : Stats.Counter.t;
  s_rx_duplicates : Stats.Counter.t;
}

type stats = { retransmits : int; acks_tx : int; acks_rx : int; rx_duplicates : int }

let stats t =
  {
    retransmits = Stats.Counter.value t.s_retransmits;
    acks_tx = Stats.Counter.value t.s_acks_tx;
    acks_rx = Stats.Counter.value t.s_acks_rx;
    rx_duplicates = Stats.Counter.value t.s_rx_duplicates;
  }

let pending_count t = Hashtbl.length t.pending

let header t ~kind ~obj =
  Wire.encode
    {
      Wire.kind;
      cacheable = false;
      has_data = false;
      src = t.rank;
      channel = t.channel;
      obj;
      aux = 0;
    }

(* Retransmit timer, same shape as the closure layer's [arm_retransmit]:
   doubling RTO under the cap, a structured failure when the budget runs
   out. The resend goes back through {!Nic.send} from a fresh fiber — the
   stamp already happened, so the frame reuses its sequence number. *)
let rec arm t p =
  Engine.after t.eng p.p_rto (fun () ->
      if Hashtbl.mem t.pending (p.p_dst, p.p_seq) && Nic.alive t.nic then
        if p.p_tries >= t.cfg.Reliable.max_tries then begin
          Hashtbl.remove t.pending (p.p_dst, p.p_seq);
          let f =
            { Reliable.node = t.rank; dst = p.p_dst; channel = t.channel;
              seq = p.p_seq; tries = p.p_tries }
          in
          Engine.spawn t.eng ~name:"relir-delivery-failed" (fun () ->
              raise (Reliable.Delivery_failed f))
        end
        else begin
          p.p_tries <- p.p_tries + 1;
          let next_rto = Time.(p.p_rto * t.cfg.Reliable.backoff) in
          p.p_rto <- Time.min next_rto t.cfg.Reliable.max_rto;
          Stats.Counter.incr t.s_retransmits;
          Engine.spawn t.eng ~name:"relir-retx" (fun () ->
              Nic.send t.nic ~dst:p.p_dst ~header:p.p_header
                ~body_bytes:p.p_body_bytes ~data:Nic.No_data ~payload:p.p_payload);
          arm t p
        end)

let on_send t ctx ~dst ~kind ~obj ~value:_ =
  if kind = k_ack then begin
    Stats.Counter.incr t.s_acks_tx;
    ctx.Nic.reply ~dst ~header:(header t ~kind:k_ack ~obj) ~body_bytes:0
      ~data:Nic.No_data ~payload:(Obj.magic 0)
  end
  else
    (* data frame: the stamp wake just registered the pending entry *)
    match Hashtbl.find_opt t.pending (dst, obj) with
    | Some p ->
        ctx.Nic.reply ~dst ~header:p.p_header ~body_bytes:p.p_body_bytes
          ~data:Nic.No_data ~payload:p.p_payload
    | None -> ()

let on_wake t ~seq ~value =
  let ev = seq lsr 16 and peer = seq land 0xFFFF in
  if ev = ev_deliver then (
    match t.cur_pkt with
    | Some (body_bytes, payload) ->
        t.deliver ~src:peer ~seq:value ~body_bytes ~payload
    | None -> ())
  else if ev = ev_ack then begin
    Stats.Counter.incr t.s_acks_rx;
    match Hashtbl.find_opt t.pending (peer, value) with
    | Some p ->
        Hashtbl.remove t.pending (peer, value);
        Sync.Ivar.fill p.p_done ()
    | None -> () (* ack of an already-acked frame: a duplicate beat it *)
  end
  else if ev = ev_dup then Stats.Counter.incr t.s_rx_duplicates
  else if ev = ev_stamp then begin
    let g = Queue.pop t.staged in
    let p =
      {
        p_dst = peer;
        p_seq = value;
        p_header = header t ~kind:k_data ~obj:value;
        p_body_bytes = g.g_body_bytes;
        p_payload = g.g_payload;
        p_done = g.g_done;
        p_tries = 1;
        p_rto = t.cfg.Reliable.timeout;
      }
    in
    Hashtbl.replace t.pending (peer, value) p;
    arm t p
  end

let counter nic name =
  match Nic.registry nic with
  | Some reg ->
      Stats.Registry.counter reg ~node:(Nic.node nic) ~subsystem:"reliable-ir" name
  | None -> Stats.Counter.create name

let install ?(channel = default_channel) ?(config = Reliable.default) ~engine ~size
    ~deliver nic =
  Reliable.check_config config;
  let rank = Nic.node nic in
  if size < 1 then invalid_arg "Reliable_ir.install: need at least one node";
  if size > 0xFFFF then invalid_arg "Reliable_ir.install: peer index rides in 16 bits";
  let rec t =
    lazy
      {
        nic;
        eng = engine;
        rank;
        size;
        channel;
        cfg = config;
        deliver;
        rx_vh = install_rx ();
        tx_vh = install_tx ();
        staged = Queue.create ();
        pending = Hashtbl.create 16;
        cur_pkt = None;
        s_retransmits = counter nic "retransmits";
        s_acks_tx = counter nic "acks_tx";
        s_acks_rx = counter nic "acks_rx";
        s_rx_duplicates = counter nic "rx_duplicates";
      }
  and install_rx () =
    match
      Nic.install_handler_verified nic
        ~pattern:(Wire.pattern_channel ~channel)
        ~program:(rx_program ~size)
        ~entry:(fun pkt ->
          (Lazy.force t).cur_pkt <-
            Some (pkt.Fabric.body_bytes, pkt.Fabric.payload);
          [||])
        ~on_send:(fun ctx ~dst ~kind ~obj ~value ->
          on_send (Lazy.force t) ctx ~dst ~kind ~obj ~value)
        ~on_wake:(fun ~seq ~value -> on_wake (Lazy.force t) ~seq ~value)
    with
    | Ok vh -> vh
    | Error rjs ->
        failwith
          (Printf.sprintf "Reliable_ir.install: rx firmware rejected: %s"
             (Cni_aih.Aih_verify.explain_all rjs))
  and install_tx () =
    (* the stamp program is driven only through local_dispatch; its pattern
       sits on channel+1, which never appears on the wire *)
    match
      Nic.install_handler_verified nic
        ~pattern:(Wire.pattern_channel ~channel:(channel + 1))
        ~program:(tx_program ~size)
        ~entry:(fun _ -> [| 0 |])
        ~on_send:(fun ctx ~dst ~kind ~obj ~value ->
          on_send (Lazy.force t) ctx ~dst ~kind ~obj ~value)
        ~on_wake:(fun ~seq ~value -> on_wake (Lazy.force t) ~seq ~value)
    with
    | Ok vh -> vh
    | Error rjs ->
        failwith
          (Printf.sprintf "Reliable_ir.install: tx firmware rejected: %s"
             (Cni_aih.Aih_verify.explain_all rjs))
  in
  Lazy.force t

let send t ~dst ~body_bytes ~payload =
  if dst < 0 || dst >= t.size then invalid_arg "Reliable_ir.send: bad destination";
  if dst = t.rank then invalid_arg "Reliable_ir.send: no self-delivery";
  let g_done = Sync.Ivar.create () in
  Queue.push { g_dst = dst; g_body_bytes = body_bytes; g_payload = payload; g_done }
    t.staged;
  Nic.local_dispatch t.nic (fun ctx -> t.tx_vh.Nic.vh_activate ctx [| dst |]);
  g_done

let rx_cert t = t.rx_vh.Nic.vh_cert
let tx_cert t = t.tx_vh.Nic.vh_cert
