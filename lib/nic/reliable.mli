(** Reliable-delivery support for the network interfaces.

    The protocol is NIC-level stop-and-wait-with-window: every outgoing
    Wire frame is stamped with a per-destination sequence number (in the
    header's aux field, which no PATHFINDER pattern inspects), the receiving
    interface acknowledges each sequenced frame on arrival and suppresses
    duplicates, and the sender retransmits on an engine timer with
    exponential backoff until acked or the retry budget is exhausted — at
    which point {!Delivery_failed} surfaces through the owning fiber instead
    of the application hanging on a lost reply.

    On the CNI and OSIRIS boards the timers, acks and duplicate filtering
    run in board firmware (NIC-processor cost model); on the standard
    interface they live in the kernel, so every retransmission, duplicate
    and ack additionally costs the host an interrupt and a kernel path.

    This module holds the pure state machines and constants; {!Nic} drives
    them against the cost model. *)

type config = {
  timeout : Cni_engine.Time.t;  (** initial retransmission timeout *)
  backoff : int;  (** timeout multiplier applied on every retry *)
  max_tries : int;  (** total transmissions before giving up *)
  max_rto : Cni_engine.Time.t;
      (** retransmission-timeout ceiling: backoff stops doubling here, so
          late retries against a slow peer cannot overshoot the whole run *)
}

(** 1 ms initial timeout (well above fabric round-trip plus host queueing
    under bursty traffic, so zero-loss runs rarely retransmit spuriously),
    doubling, 12 transmissions, RTO capped at 100 ms — the budget covers
    transient link-down windows of a second or more. *)
val default : config

(** @raise Invalid_argument on a non-positive timeout, backoff < 1,
    max_tries < 1 or max_rto < timeout. *)
val check_config : config -> unit

(** Wire [kind] / [channel] of acknowledgment frames ([obj] = acked seq).
    Intercepted by the receive path before classification. *)
val ack_kind : int

val ack_channel : int

type failure = { node : int; dst : int; channel : int; seq : int; tries : int }

exception Delivery_failed of failure

(** Raised instead of {!Delivery_failed} when the retry budget runs out
    against a destination the fabric knows to be crashed: the sender learns
    its peer is dead rather than merely unreachable. A printer is
    registered. *)
exception Peer_dead of failure

val failure_message : failure -> string
val peer_dead_message : failure -> string

(** {2 Delivery epochs}

    The Wire aux field of a sequenced frame carries
    [(epoch lsl 24) lor seq]: the low 24 bits are the per-destination
    sequence number (starting at 1, so aux is never 0 — 0 marks
    unsequenced traffic), bits 24–30 are the sender board's restart epoch.
    A receiver drops frames from an older epoch of a source than the newest
    it has seen, so retransmissions queued before a crash cannot corrupt
    the post-restart sequence space. Epoch 0 encodes to the bare sequence
    number, bit-identical to the pre-epoch wire format. *)

(** Epochs saturate here (127) rather than wrap, keeping the wire int32
    positive. *)
val max_epoch : int

(** @raise Invalid_argument if [epoch] is outside [0, max_epoch] or [seq]
    outside [1, 2^24 - 1]. *)
val aux_of : epoch:int -> seq:int -> int

(** [split_aux aux] is [(epoch, seq)]. *)
val split_aux : int -> int * int

(** Per-source receive window: duplicate suppression with a floor that
    advances over contiguously seen sequence numbers (senders allocate
    1, 2, 3, ... per destination). *)
module Window : sig
  type t

  val create : unit -> t

  (** Highest sequence number below which everything has been seen. *)
  val floor : t -> int

  val observe : t -> int -> [ `Fresh | `Duplicate ]
end
