(** Reliable-delivery support for the network interfaces.

    The protocol is NIC-level stop-and-wait-with-window: every outgoing
    Wire frame is stamped with a per-destination sequence number (in the
    header's aux field, which no PATHFINDER pattern inspects), the receiving
    interface acknowledges each sequenced frame on arrival and suppresses
    duplicates, and the sender retransmits on an engine timer with
    exponential backoff until acked or the retry budget is exhausted — at
    which point {!Delivery_failed} surfaces through the owning fiber instead
    of the application hanging on a lost reply.

    On the CNI and OSIRIS boards the timers, acks and duplicate filtering
    run in board firmware (NIC-processor cost model); on the standard
    interface they live in the kernel, so every retransmission, duplicate
    and ack additionally costs the host an interrupt and a kernel path.

    This module holds the pure state machines and constants; {!Nic} drives
    them against the cost model. *)

type config = {
  timeout : Cni_engine.Time.t;  (** initial retransmission timeout *)
  backoff : int;  (** timeout multiplier applied on every retry *)
  max_tries : int;  (** total transmissions before giving up *)
}

(** 1 ms initial timeout (well above fabric round-trip plus host queueing
    under bursty traffic, so zero-loss runs rarely retransmit spuriously),
    doubling, 12 transmissions — the budget covers transient link-down
    windows of a second or more. *)
val default : config

(** @raise Invalid_argument on a non-positive timeout, backoff < 1 or
    max_tries < 1. *)
val check_config : config -> unit

(** Wire [kind] / [channel] of acknowledgment frames ([obj] = acked seq).
    Intercepted by the receive path before classification. *)
val ack_kind : int

val ack_channel : int

type failure = { node : int; dst : int; channel : int; seq : int; tries : int }

exception Delivery_failed of failure

val failure_message : failure -> string

(** Per-source receive window: duplicate suppression with a floor that
    advances over contiguously seen sequence numbers (senders allocate
    1, 2, 3, ... per destination). *)
module Window : sig
  type t

  val create : unit -> t

  (** Highest sequence number below which everything has been seen. *)
  val floor : t -> int

  val observe : t -> int -> [ `Fresh | `Duplicate ]
end
