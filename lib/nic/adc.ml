module Fabric = Cni_atm.Fabric
module Params = Cni_machine.Params

type 'a t = {
  nic : 'a Nic.t;
  channel : int;
  ring : 'a Fabric.packet Ring.t;
  handle : Cni_pathfinder.Classifier.handle;
  buffer_base : int;
}

(* Posted receive buffers live in a dedicated host region, one page per
   channel: distinct channels must never deliver into the same page (they
   would clobber each other's data and confuse the snooper). *)
let posted_buffer_region = 1 lsl 22

let default_buffer_base nic ~channel =
  posted_buffer_region + (channel * (Nic.params nic).Params.page_bytes)

let open_channel nic ~channel ?(slots = 32) ?buffer_base () =
  let buffer_base =
    match buffer_base with Some b -> b | None -> default_buffer_base nic ~channel
  in
  let ring =
    Ring.create ?registry:(Nic.registry nic) ~node:(Nic.node nic)
      ~subsystem:(Printf.sprintf "adc-ch%d/ring" channel)
      ~slots ()
  in
  (* the ring lives in board memory: account it like handler state; a slot
     holds a descriptor, not the data (64 bytes is generous) *)
  let handle =
    Nic.install_handler nic
      ~pattern:(Wire.pattern_channel ~channel)
      ~code_bytes:(slots * 64)
      (fun ctx pkt ->
        (* deliver bulk data into this channel's posted host buffer, then
           enqueue the descriptor; a full ring exerts back-pressure on the
           board *)
        let hdr = Wire.decode pkt.Fabric.header in
        if hdr.Wire.has_data then
          ctx.Nic.deliver_page ~vaddr:buffer_base ~bytes:pkt.Fabric.body_bytes
            ~cacheable:hdr.Wire.cacheable;
        ctx.Nic.charge 10;
        Ring.push ring pkt)
  in
  { nic; channel; ring; handle; buffer_base }

let close t = Nic.uninstall_handler t.nic t.handle

let send t ~dst ?(data = Nic.No_data) payload =
  let has_data, cacheable, data_bytes =
    match data with
    | Nic.No_data -> (false, false, 0)
    | Nic.Page { bytes; cacheable; _ } -> (true, cacheable, bytes)
  in
  assert ((not has_data) || data_bytes > 0);
  let header =
    Wire.encode
      {
        Wire.kind = 0;
        cacheable;
        has_data;
        src = Nic.node t.nic;
        channel = t.channel;
        obj = 0;
        aux = 0;
      }
  in
  (* exactly-once wire accounting: bulk data rides as [data], and the
     transmit path folds its size into the frame's cell count. The inline
     body must therefore stay empty — passing [data_bytes] as [body_bytes]
     too would serialise the payload twice *)
  Nic.send t.nic ~dst ~header ~body_bytes:0 ~data ~payload

let recv t = Ring.pop t.ring
let try_recv t = Ring.try_pop t.ring
let backlog t = Ring.length t.ring
let channel_id t = t.channel
let buffer_base t = t.buffer_base
