module Fabric = Cni_atm.Fabric

type 'a t = {
  nic : 'a Nic.t;
  channel : int;
  ring : 'a Fabric.packet Ring.t;
  handle : Cni_pathfinder.Classifier.handle;
}

let open_channel nic ~channel ?(slots = 32) () =
  let ring =
    Ring.create ?registry:(Nic.registry nic) ~node:(Nic.node nic)
      ~subsystem:(Printf.sprintf "adc-ch%d/ring" channel)
      ~slots ()
  in
  (* the ring lives in board memory: account it like handler state; a slot
     holds a descriptor, not the data (64 bytes is generous) *)
  let handle =
    Nic.install_handler nic
      ~pattern:(Wire.pattern_channel ~channel)
      ~code_bytes:(slots * 64)
      (fun ctx pkt ->
        (* deliver bulk data into the posted host buffer, then enqueue the
           descriptor; a full ring exerts back-pressure on the board *)
        let hdr = Wire.decode pkt.Fabric.header in
        if hdr.Wire.has_data then
          ctx.Nic.deliver_page ~vaddr:(1 lsl 22) ~bytes:pkt.Fabric.body_bytes
            ~cacheable:hdr.Wire.cacheable;
        ctx.Nic.charge 10;
        Ring.push ring pkt)
  in
  { nic; channel; ring; handle }

let close t = Nic.uninstall_handler t.nic t.handle

let send t ~dst ?(data = Nic.No_data) payload =
  let has_data, cacheable, body_bytes =
    match data with
    | Nic.No_data -> (false, false, 0)
    | Nic.Page { bytes; cacheable; _ } -> (true, cacheable, bytes)
  in
  let header =
    Wire.encode
      {
        Wire.kind = 0;
        cacheable;
        has_data;
        src = Nic.node t.nic;
        channel = t.channel;
        obj = 0;
        aux = 0;
      }
  in
  (* bulk data travels as NIC data (so body_bytes would double-count it) *)
  ignore body_bytes;
  Nic.send t.nic ~dst ~header ~body_bytes:0 ~data ~payload

let recv t = Ring.pop t.ring
let try_recv t = Ring.try_pop t.ring
let backlog t = Ring.length t.ring
let channel_id t = t.channel
