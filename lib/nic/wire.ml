module Pattern = Cni_pathfinder.Pattern

let magic = 0xC1A0
let header_bytes = 16

type t = {
  kind : int;
  cacheable : bool;
  has_data : bool;
  src : int;
  channel : int;
  obj : int;
  aux : int;
}

let encode t =
  let b = Bytes.create header_bytes in
  Bytes.set_uint16_be b 0 magic;
  Bytes.set_uint8 b 2 t.kind;
  let flags = (if t.cacheable then 1 else 0) lor if t.has_data then 2 else 0 in
  Bytes.set_uint8 b 3 flags;
  Bytes.set_uint16_be b 4 t.src;
  Bytes.set_uint16_be b 6 t.channel;
  Bytes.set_int32_be b 8 (Int32.of_int t.obj);
  Bytes.set_int32_be b 12 (Int32.of_int t.aux);
  b

let decode b =
  if Bytes.length b < header_bytes then invalid_arg "Wire.decode: short header";
  if Bytes.get_uint16_be b 0 <> magic then invalid_arg "Wire.decode: bad magic";
  let flags = Bytes.get_uint8 b 3 in
  {
    kind = Bytes.get_uint8 b 2;
    cacheable = flags land 1 <> 0;
    has_data = flags land 2 <> 0;
    src = Bytes.get_uint16_be b 4;
    channel = Bytes.get_uint16_be b 6;
    obj = Int32.to_int (Bytes.get_int32_be b 8);
    aux = Int32.to_int (Bytes.get_int32_be b 12);
  }

let decode_opt b =
  if Bytes.length b < header_bytes then None
  else if Bytes.get_uint16_be b 0 <> magic then None
  else Some (decode b)

let with_aux b aux =
  let c = Bytes.copy b in
  Bytes.set_int32_be c 12 (Int32.of_int aux);
  c

let pattern_any = [ Pattern.field ~offset:0 ~len:2 magic ]

let pattern_channel ~channel =
  [ Pattern.field ~offset:0 ~len:2 magic; Pattern.field ~offset:6 ~len:2 channel ]

let pattern_channel_kind ~channel ~kind =
  [
    Pattern.field ~offset:0 ~len:2 magic;
    Pattern.field ~offset:6 ~len:2 channel;
    Pattern.field ~offset:2 ~len:1 kind;
  ]
