(** Reliable delivery as generated streaming AIH firmware.

    The NIC-level protocol {!Reliable} specifies — per-destination
    sequence numbers, per-frame acknowledgments, duplicate suppression
    behind an advancing floor, timer-driven retransmission with
    exponential backoff — compiled into two verified firmware programs
    per endpoint instead of interpreted by board closures:

    - a {!Cni_aih.Aih_ir.Header}-kind receive handler holding one
      [floor; bitmap] window slot per peer in its board segment, which
      acks, deduplicates and wakes the host to deliver, all from
      protocol context and all within the line-rate admission budget;
    - an [Episode]-kind transmit stamp the host drives through
      {!Nic.local_dispatch}, which allocates the next sequence number
      on the board and emits the data frame.

    Both go through {!Nic.install_handler_verified}, so the protocol
    itself is subject to pointer-safety, WCET and line-rate admission —
    the paper's "verify whole protocols onto the NIC". Host-side state
    is limited to payload staging, retransmit timers
    ({!Reliable.config} semantics, {!Reliable.Delivery_failed} on an
    exhausted budget) and completion ivars.

    Intended for clusters created with [~reliability_off:true]: the
    firmware endpoints replace the closure layer rather than stack on
    top of it. The receive window tracks at most {!window} frames
    beyond the floor (the closure layer's table is unbounded); frames
    further out are dropped unacked and recovered by retransmission. *)

(** Wire channel of data/ack frames (default 9); the transmit stamp
    program occupies [channel + 1] in the classifier but never appears
    on the wire. *)
val default_channel : int

val k_data : int
val k_ack : int

(** Receive-window width in frames beyond the floor. *)
val window : int

(** The generated receive handler for an [size]-node cluster:
    [Header { view_words = Nic.header_view_words }], segment
    [2 * size] words. Exposed for the corpus, benchmarks and tests. *)
val rx_program : size:int -> Cni_aih.Aih_ir.program

(** The generated transmit stamp: [Episode], segment [size] words,
    one input register (the destination). *)
val tx_program : size:int -> Cni_aih.Aih_ir.program

type 'a t

(** [install ~engine ~size ~deliver nic] verifies and installs both
    programs on [nic] (rank is the NIC's node id) and returns the
    endpoint. [deliver] is called once per fresh data frame, in arrival
    order, from the receive dispatch. Counters register under
    subsystem "reliable-ir" with the {!Nic.rel_stats} names.

    @raise Failure when the generated firmware is rejected by the
    verifier — a shipped-firmware bug, not a caller error.
    @raise Invalid_argument on a bad [size] or [config]. *)
val install :
  ?channel:int ->
  ?config:Reliable.config ->
  engine:Cni_engine.Engine.t ->
  size:int ->
  deliver:(src:int -> seq:int -> body_bytes:int -> payload:'a -> unit) ->
  'a Nic.t ->
  'a t

(** [send t ~dst ~body_bytes ~payload] stages the frame, drives the
    stamp firmware and returns the ivar filled when the ack comes back.
    Must run in a fiber. Retransmission is automatic;
    {!Reliable.Delivery_failed} surfaces through an engine fiber when
    the retry budget is exhausted. *)
val send :
  'a t -> dst:int -> body_bytes:int -> payload:'a -> unit Cni_engine.Sync.Ivar.t

(** Frames sent but not yet acknowledged. *)
val pending_count : 'a t -> int

type stats = { retransmits : int; acks_tx : int; acks_rx : int; rx_duplicates : int }

val stats : 'a t -> stats

(** Admission certificates of the installed programs (the rx one is the
    interesting one: it carries a non-zero per-byte bound). *)
val rx_cert : 'a t -> Cni_aih.Aih_verify.cert

val tx_cert : 'a t -> Cni_aih.Aih_verify.cert
