module Time = Cni_engine.Time

type config = { timeout : Time.t; backoff : int; max_tries : int }

(* The 1 ms base timeout sits well above the fabric round-trip (a few us) plus
   the host-side queueing seen under bursty 8-processor traffic, so spurious
   retransmissions are rare at zero loss; backoff doubles it on each retry. *)
let default = { timeout = Time.us 1000; backoff = 2; max_tries = 12 }

let check_config c =
  if c.timeout <= Time.zero then invalid_arg "Reliable: timeout must be positive";
  if c.backoff < 1 then invalid_arg "Reliable: backoff must be >= 1";
  if c.max_tries < 1 then invalid_arg "Reliable: max_tries must be >= 1"

(* Ack frames are ordinary Wire headers on a channel/kind no protocol uses;
   they are intercepted by the receiving interface before classification and
   never reach a handler. [obj] carries the acknowledged sequence number. *)
let ack_kind = 0xFE
let ack_channel = 0xFFFF

type failure = { node : int; dst : int; channel : int; seq : int; tries : int }

exception Delivery_failed of failure

let failure_message f =
  Printf.sprintf
    "Delivery_failed: node %d -> %d, channel %d, seq %d undelivered after %d transmissions"
    f.node f.dst f.channel f.seq f.tries

let () =
  Printexc.register_printer (function
    | Delivery_failed f -> Some (failure_message f)
    | _ -> None)

module Window = struct
  type t = { mutable floor : int; above : (int, unit) Hashtbl.t }

  let create () = { floor = 0; above = Hashtbl.create 8 }
  let floor t = t.floor

  let observe t seq =
    if seq <= t.floor || Hashtbl.mem t.above seq then `Duplicate
    else begin
      Hashtbl.replace t.above seq ();
      (* advance the floor over any now-contiguous prefix so the out-of-order
         set stays bounded by the sender's in-flight window *)
      while Hashtbl.mem t.above (t.floor + 1) do
        Hashtbl.remove t.above (t.floor + 1);
        t.floor <- t.floor + 1
      done;
      `Fresh
    end
end
