module Time = Cni_engine.Time

type config = { timeout : Time.t; backoff : int; max_tries : int; max_rto : Time.t }

(* The 1 ms base timeout sits well above the fabric round-trip (a few us) plus
   the host-side queueing seen under bursty 8-processor traffic, so spurious
   retransmissions are rare at zero loss; backoff doubles it on each retry up
   to the 100 ms cap (reached only after ~7 consecutive losses of one frame,
   so the cap never fires in the deterministic ablation sweeps). *)
let default = { timeout = Time.us 1000; backoff = 2; max_tries = 12; max_rto = Time.ms 100 }

let check_config c =
  if c.timeout <= Time.zero then invalid_arg "Reliable: timeout must be positive";
  if c.backoff < 1 then invalid_arg "Reliable: backoff must be >= 1";
  if c.max_tries < 1 then invalid_arg "Reliable: max_tries must be >= 1";
  if c.max_rto < c.timeout then invalid_arg "Reliable: max_rto must be >= timeout"

(* Ack frames are ordinary Wire headers on a channel/kind no protocol uses;
   they are intercepted by the receiving interface before classification and
   never reach a handler. [obj] carries the acknowledged sequence number. *)
let ack_kind = 0xFE
let ack_channel = 0xFFFF

type failure = { node : int; dst : int; channel : int; seq : int; tries : int }

exception Delivery_failed of failure
exception Peer_dead of failure

let failure_message f =
  Printf.sprintf
    "Delivery_failed: node %d -> %d, channel %d, seq %d undelivered after %d transmissions"
    f.node f.dst f.channel f.seq f.tries

let peer_dead_message f =
  Printf.sprintf
    "Peer_dead: node %d -> %d, channel %d, seq %d — destination crashed; gave up after %d transmissions"
    f.node f.dst f.channel f.seq f.tries

let () =
  Printexc.register_printer (function
    | Delivery_failed f -> Some (failure_message f)
    | Peer_dead f -> Some (peer_dead_message f)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Delivery epochs                                                     *)
(* ------------------------------------------------------------------ *)

(* The Wire aux field carries (epoch << 24) | seq. Sequence numbers start at
   1, so aux is never 0 (0 marks unsequenced traffic); epochs occupy bits
   24-30 and saturate at 127 so the int32 on the wire stays positive. Epoch
   0 leaves aux equal to the bare sequence number — bit-identical to the
   pre-epoch encoding. *)
let epoch_shift = 24
let seq_mask = (1 lsl epoch_shift) - 1
let max_epoch = 127

let aux_of ~epoch ~seq =
  if epoch < 0 || epoch > max_epoch then invalid_arg "Reliable.aux_of: epoch out of range";
  if seq < 1 || seq > seq_mask then invalid_arg "Reliable.aux_of: seq out of range";
  (epoch lsl epoch_shift) lor seq

let split_aux aux = (aux lsr epoch_shift, aux land seq_mask)

module Window = struct
  type t = { mutable floor : int; above : (int, unit) Hashtbl.t }

  let create () = { floor = 0; above = Hashtbl.create 8 }
  let floor t = t.floor

  let observe t seq =
    if seq <= t.floor || Hashtbl.mem t.above seq then `Duplicate
    else begin
      Hashtbl.replace t.above seq ();
      (* advance the floor over any now-contiguous prefix so the out-of-order
         set stays bounded by the sender's in-flight window *)
      while Hashtbl.mem t.above (t.floor + 1) do
        Hashtbl.remove t.above (t.floor + 1);
        t.floor <- t.floor + 1
      done;
      `Fresh
    end
end
