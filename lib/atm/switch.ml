type t = { ports : int; stages : int }

let is_power_of_two n = n >= 2 && n land (n - 1) = 0

let create ~ports =
  if not (is_power_of_two ports) then invalid_arg "Switch.create: ports must be a power of two >= 2";
  let rec log2 n = if n = 1 then 0 else 1 + log2 (n / 2) in
  { ports; stages = log2 ports }

let ports t = t.ports
let stages t = t.stages

let route t ~src ~dst =
  if src < 0 || src >= t.ports then invalid_arg "Switch.route: src out of range";
  if dst < 0 || dst >= t.ports then invalid_arg "Switch.route: dst out of range";
  let k = t.stages in
  let mask = t.ports - 1 in
  let w = ref src in
  Array.init k (fun s ->
      (* perfect shuffle then exchange on destination bit (k-1-s) *)
      let shuffled = ((!w lsl 1) lor (!w lsr (k - 1))) land mask in
      let bit = (dst lsr (k - 1 - s)) land 1 in
      w := shuffled land lnot 1 lor bit;
      !w)

let conflict t (s1, d1) (s2, d2) =
  let r1 = route t ~src:s1 ~dst:d1 and r2 = route t ~src:s2 ~dst:d2 in
  let n = Array.length r1 in
  let rec go i = if i >= n then false else if r1.(i) = r2.(i) then true else go (i + 1) in
  go 0

let conflicts_in_permutation t perm =
  let n = Array.length perm in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if conflict t (i, perm.(i)) (j, perm.(j)) then incr count
    done
  done;
  !count
