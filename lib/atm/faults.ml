module Time = Cni_engine.Time
module Rng = Cni_engine.Rng

type window = { w_node : int; w_from : Time.t; w_upto : Time.t }

type config = {
  seed : int;
  cell_loss : float;
  cell_corrupt : float;
  frame_drop : float;
  link_down : window list;
}

let none = { seed = 42; cell_loss = 0.; cell_corrupt = 0.; frame_drop = 0.; link_down = [] }

let is_none c =
  c.cell_loss = 0. && c.cell_corrupt = 0. && c.frame_drop = 0. && c.link_down = []

let with_loss ?(seed = 42) p = { none with seed; cell_loss = p }

type t = { cfg : config; rng : Rng.t }

let check_prob name p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Faults.create: %s must be in [0,1]" name)

let create cfg =
  check_prob "cell_loss" cfg.cell_loss;
  check_prob "cell_corrupt" cfg.cell_corrupt;
  check_prob "frame_drop" cfg.frame_drop;
  List.iter
    (fun w ->
      if w.w_node < 0 then invalid_arg "Faults.create: window node must be >= 0";
      if w.w_upto <= w.w_from then invalid_arg "Faults.create: empty link-down window")
    cfg.link_down;
  { cfg; rng = Rng.create ~seed:cfg.seed }

let config t = t.cfg

type verdict = Pass | Corrupt of int | Lose_cells of int | Drop

(* Count the cells an independent per-cell event hits. Disabled classes
   consume no draws; the same config replays the same stream. *)
let hit_cells t p ~cells =
  if p <= 0. then 0
  else begin
    let n = ref 0 in
    for _ = 1 to cells do
      if Rng.float t.rng < p then incr n
    done;
    !n
  end

let judge t ~cells =
  if t.cfg.frame_drop > 0. && Rng.float t.rng < t.cfg.frame_drop then Drop
  else
    match hit_cells t t.cfg.cell_loss ~cells with
    | n when n > 0 -> Lose_cells n
    | _ -> (
        match hit_cells t t.cfg.cell_corrupt ~cells with
        | n when n > 0 -> Corrupt n
        | _ -> Pass)

let link_down t ~node ~now =
  List.exists (fun w -> w.w_node = node && now >= w.w_from && now < w.w_upto) t.cfg.link_down
