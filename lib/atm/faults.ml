module Time = Cni_engine.Time
module Rng = Cni_engine.Rng

type window = { w_node : int; w_from : Time.t; w_upto : Time.t }

type node_fault = Crash of { scrub : bool } | Restart

type event = { e_at : Time.t; e_node : int; e_fault : node_fault }

type config = {
  seed : int;
  cell_loss : float;
  cell_corrupt : float;
  frame_drop : float;
  link_down : window list;
  schedule : event list;
}

let none =
  { seed = 42; cell_loss = 0.; cell_corrupt = 0.; frame_drop = 0.; link_down = [];
    schedule = [] }

let is_none c =
  c.cell_loss = 0. && c.cell_corrupt = 0. && c.frame_drop = 0. && c.link_down = []
  && c.schedule = []

let with_loss ?(seed = 42) p = { none with seed; cell_loss = p }

(* Normalization of link-down windows: per node, sort by start and merge
   overlapping or adjacent windows into one. Counters and down-time
   accounting over the normalized list cannot double-count an instant that
   two declared windows both cover. *)
let normalize_windows windows =
  let by_node = Hashtbl.create 8 in
  List.iter
    (fun w ->
      let l = Option.value (Hashtbl.find_opt by_node w.w_node) ~default:[] in
      Hashtbl.replace by_node w.w_node (w :: l))
    windows;
  let nodes = Hashtbl.fold (fun n _ acc -> n :: acc) by_node [] in
  List.concat_map
    (fun node ->
      let ws =
        List.sort
          (fun a b -> compare (a.w_from, a.w_upto) (b.w_from, b.w_upto))
          (Hashtbl.find by_node node)
      in
      let rec merge = function
        | a :: b :: rest when b.w_from <= a.w_upto ->
            merge ({ a with w_upto = Time.max a.w_upto b.w_upto } :: rest)
        | a :: rest -> a :: merge rest
        | [] -> []
      in
      merge ws)
    (List.sort compare nodes)

type t = { cfg : config; windows : window list; rng : Rng.t }

let check_prob name p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Faults.create: %s must be in [0,1]" name)

let check_window w =
  if w.w_node < 0 then invalid_arg "Faults.create: window node must be >= 0";
  if w.w_from > w.w_upto then invalid_arg "Faults.create: reversed link-down window (start > stop)";
  if w.w_upto = w.w_from then invalid_arg "Faults.create: empty link-down window"

let create cfg =
  check_prob "cell_loss" cfg.cell_loss;
  check_prob "cell_corrupt" cfg.cell_corrupt;
  check_prob "frame_drop" cfg.frame_drop;
  List.iter check_window cfg.link_down;
  { cfg; windows = normalize_windows cfg.link_down; rng = Rng.create ~seed:cfg.seed }

let config t = t.cfg

type verdict = Pass | Corrupt of int | Lose_cells of int | Drop

(* Count the cells an independent per-cell event hits. Disabled classes
   consume no draws; the same config replays the same stream. *)
let hit_cells t p ~cells =
  if p <= 0. then 0
  else begin
    let n = ref 0 in
    for _ = 1 to cells do
      if Rng.float t.rng < p then incr n
    done;
    !n
  end

let judge t ~cells =
  if t.cfg.frame_drop > 0. && Rng.float t.rng < t.cfg.frame_drop then Drop
  else
    match hit_cells t t.cfg.cell_loss ~cells with
    | n when n > 0 -> Lose_cells n
    | _ -> (
        match hit_cells t t.cfg.cell_corrupt ~cells with
        | n when n > 0 -> Corrupt n
        | _ -> Pass)

let link_down t ~node ~now =
  List.exists (fun w -> w.w_node = node && now >= w.w_from && now < w.w_upto) t.windows

(* ------------------------------------------------------------------ *)
(* Node-fault schedule                                                 *)
(* ------------------------------------------------------------------ *)

(* Declared order breaks time ties, so a stable sort keeps "crash then
   restart at the same instant" an error the validator can report instead
   of a silent reordering. *)
let sorted_schedule cfg =
  List.stable_sort (fun a b -> compare a.e_at b.e_at) cfg.schedule

let validate ~nodes cfg =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let prob name p = if not (p >= 0. && p <= 1.) then err "%s %g outside [0,1]" name p in
  prob "loss" cfg.cell_loss;
  prob "corrupt" cfg.cell_corrupt;
  prob "drop" cfg.frame_drop;
  List.iter
    (fun w ->
      if w.w_node < 0 || w.w_node >= nodes then
        err "link-down window names node %d (cluster has %d)" w.w_node nodes;
      if w.w_from > w.w_upto then
        err "link-down window for node %d is reversed (start > stop)" w.w_node
      else if w.w_from = w.w_upto then
        err "link-down window for node %d is empty" w.w_node)
    cfg.link_down;
  (* replay the schedule chronologically, tracking each node's liveness *)
  let crashed = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if e.e_node < 0 || e.e_node >= nodes then
        err "schedule event at %.0f us names node %d (cluster has %d)"
          (Time.to_us_float e.e_at) e.e_node nodes
      else
        match e.e_fault with
        | Crash _ ->
            if Hashtbl.mem crashed e.e_node then
              err "node %d crashes at %.0f us while already crashed"
                e.e_node (Time.to_us_float e.e_at)
            else Hashtbl.replace crashed e.e_node e.e_at
        | Restart -> (
            match Hashtbl.find_opt crashed e.e_node with
            | None ->
                err "node %d restarts at %.0f us without a prior crash"
                  e.e_node (Time.to_us_float e.e_at)
            | Some at when at = e.e_at ->
                err "node %d restarts at %.0f us, the same instant it crashes"
                  e.e_node (Time.to_us_float e.e_at)
            | Some _ -> Hashtbl.remove crashed e.e_node))
    (sorted_schedule cfg);
  match List.rev !errors with [] -> Ok () | es -> Error es

(* ------------------------------------------------------------------ *)
(* Text format                                                         *)
(* ------------------------------------------------------------------ *)

(* One directive per line; '#' starts a comment; times are integer
   microseconds of engine time:

     seed 7
     loss 1e-4
     corrupt 0
     drop 0
     down NODE FROM_US UPTO_US
     crash NODE AT_US [scrub]
     restart NODE AT_US *)

let config_of_string text =
  let lineno = ref 0 in
  let strip line = match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let fields line =
    String.split_on_char ' ' (String.trim (strip line))
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  in
  let fail fmt = Printf.ksprintf (fun s -> Error (Printf.sprintf "line %d: %s" !lineno s)) fmt in
  let int_of s = match int_of_string_opt s with
    | Some n -> Ok n
    | None -> fail "expected an integer, got %S" s
  in
  let float_of s = match float_of_string_opt s with
    | Some f -> Ok f
    | None -> fail "expected a number, got %S" s
  in
  let ( let* ) = Result.bind in
  let rec go cfg = function
    | [] -> Ok { cfg with link_down = List.rev cfg.link_down; schedule = List.rev cfg.schedule }
    | line :: rest -> (
        incr lineno;
        match fields line with
        | [] -> go cfg rest
        | [ "seed"; s ] ->
            let* seed = int_of s in
            go { cfg with seed } rest
        | [ "loss"; p ] ->
            let* cell_loss = float_of p in
            go { cfg with cell_loss } rest
        | [ "corrupt"; p ] ->
            let* cell_corrupt = float_of p in
            go { cfg with cell_corrupt } rest
        | [ "drop"; p ] ->
            let* frame_drop = float_of p in
            go { cfg with frame_drop } rest
        | [ "down"; n; a; b ] ->
            let* node = int_of n in
            let* from_us = int_of a in
            let* upto_us = int_of b in
            let w = { w_node = node; w_from = Time.us from_us; w_upto = Time.us upto_us } in
            go { cfg with link_down = w :: cfg.link_down } rest
        | "crash" :: n :: at :: tail when tail = [] || tail = [ "scrub" ] ->
            let* node = int_of n in
            let* at_us = int_of at in
            let e =
              { e_node = node; e_at = Time.us at_us; e_fault = Crash { scrub = tail <> [] } }
            in
            go { cfg with schedule = e :: cfg.schedule } rest
        | [ "restart"; n; at ] ->
            let* node = int_of n in
            let* at_us = int_of at in
            let e = { e_node = node; e_at = Time.us at_us; e_fault = Restart } in
            go { cfg with schedule = e :: cfg.schedule } rest
        | word :: _ ->
            fail
              "unknown directive %S (expected seed, loss, corrupt, drop, down, crash, restart)"
              word)
  in
  go none (String.split_on_char '\n' text)

let config_to_string cfg =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  if cfg.seed <> none.seed then line "seed %d" cfg.seed;
  if cfg.cell_loss <> 0. then line "loss %g" cfg.cell_loss;
  if cfg.cell_corrupt <> 0. then line "corrupt %g" cfg.cell_corrupt;
  if cfg.frame_drop <> 0. then line "drop %g" cfg.frame_drop;
  List.iter
    (fun w ->
      line "down %d %.0f %.0f" w.w_node (Time.to_us_float w.w_from) (Time.to_us_float w.w_upto))
    cfg.link_down;
  List.iter
    (fun e ->
      match e.e_fault with
      | Crash { scrub } ->
          line "crash %d %.0f%s" e.e_node (Time.to_us_float e.e_at)
            (if scrub then " scrub" else "")
      | Restart -> line "restart %d %.0f" e.e_node (Time.to_us_float e.e_at))
    cfg.schedule;
  Buffer.contents b
