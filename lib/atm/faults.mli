(** Deterministic fault injection for the interconnect.

    The model is attached to the {!Fabric} and consulted once per frame at
    injection time (so the random stream depends only on the order of
    [Fabric.send] calls, which the engine makes deterministic). Four fault
    classes, all seeded from one explicit {!Cni_engine.Rng} stream:

    - per-cell loss: each of the frame's cells is lost independently with
      probability [cell_loss]; a frame missing any cell cannot pass AAL5
      reassembly and is dropped at the destination;
    - per-cell corruption: payload bytes flipped in flight with probability
      [cell_corrupt] per cell — the frame arrives but its AAL5 CRC check
      fails (the packet is delivered with [crc_ok = false]);
    - whole-frame drop with probability [frame_drop] (e.g. a switch buffer
      overflow taking out every cell of one packet);
    - timed link-down windows: while [now] is inside a window, every frame
      entering or leaving [w_node]'s link is discarded.

    Counting and tracing of fault events is done by the fabric, which knows
    node ids and owns the metrics registry. *)

type window = {
  w_node : int;  (** node whose link is severed *)
  w_from : Cni_engine.Time.t;  (** window start (inclusive) *)
  w_upto : Cni_engine.Time.t;  (** window end (exclusive) *)
}

type config = {
  seed : int;
  cell_loss : float;  (** per-cell loss probability, in [0,1] *)
  cell_corrupt : float;  (** per-cell corruption probability, in [0,1] *)
  frame_drop : float;  (** whole-frame drop probability, in [0,1] *)
  link_down : window list;
}

(** All probabilities zero, no windows; [seed = 42]. *)
val none : config

val is_none : config -> bool

(** [with_loss ?seed p] is {!none} with [cell_loss = p]. *)
val with_loss : ?seed:int -> float -> config

type t

(** @raise Invalid_argument on a probability outside [0,1] or an empty-or-
    negative window. *)
val create : config -> t

val config : t -> config

type verdict =
  | Pass  (** deliver intact *)
  | Corrupt of int  (** deliver with a failing CRC; [n] cells corrupted *)
  | Lose_cells of int  (** [n] cells lost in flight; the frame is dropped *)
  | Drop  (** the whole frame vanishes *)

(** [judge t ~cells] draws the fate of one [cells]-cell frame. *)
val judge : t -> cells:int -> verdict

(** Is [node]'s link inside a down window at time [now]? *)
val link_down : t -> node:int -> now:Cni_engine.Time.t -> bool
