(** Deterministic fault injection for the interconnect and the nodes.

    The frame-level model is attached to the {!Fabric} and consulted once per
    frame at injection time (so the random stream depends only on the order of
    [Fabric.send] calls, which the engine makes deterministic). Four fault
    classes, all seeded from one explicit {!Cni_engine.Rng} stream:

    - per-cell loss: each of the frame's cells is lost independently with
      probability [cell_loss]; a frame missing any cell cannot pass AAL5
      reassembly and is dropped at the destination;
    - per-cell corruption: payload bytes flipped in flight with probability
      [cell_corrupt] per cell — the frame arrives but its AAL5 CRC check
      fails (the packet is delivered with [crc_ok = false]);
    - whole-frame drop with probability [frame_drop] (e.g. a switch buffer
      overflow taking out every cell of one packet);
    - timed link-down windows: while [now] is inside a window, every frame
      entering or leaving [w_node]'s link is discarded.

    On top of the frame-level model sits a declarative {e node-fault
    schedule}: timed crash / restart / board-scrub events per node, driven
    off engine time by [Cluster]. The schedule is data only — this module
    parses, validates and orders it; the crash semantics (frozen fibers,
    scrubbed boards, delivery epochs) live in [Nic]/[Node]/[Cluster].

    Counting and tracing of fault events is done by the fabric, which knows
    node ids and owns the metrics registry. *)

type window = {
  w_node : int;  (** node whose link is severed *)
  w_from : Cni_engine.Time.t;  (** window start (inclusive) *)
  w_upto : Cni_engine.Time.t;  (** window end (exclusive) *)
}

(** A node-level fault. [Crash { scrub = true }] additionally wipes the CNI
    board (handlers, message cache, firmware) so the restart must re-install
    and re-verify everything; [scrub = false] models a reset that preserves
    board memory. *)
type node_fault = Crash of { scrub : bool } | Restart

type event = {
  e_at : Cni_engine.Time.t;  (** engine time at which the fault fires *)
  e_node : int;
  e_fault : node_fault;
}

type config = {
  seed : int;
  cell_loss : float;  (** per-cell loss probability, in [0,1] *)
  cell_corrupt : float;  (** per-cell corruption probability, in [0,1] *)
  frame_drop : float;  (** whole-frame drop probability, in [0,1] *)
  link_down : window list;
  schedule : event list;  (** node crash/restart events, any order *)
}

(** All probabilities zero, no windows, empty schedule; [seed = 42]. *)
val none : config

val is_none : config -> bool

(** [with_loss ?seed p] is {!none} with [cell_loss = p]. *)
val with_loss : ?seed:int -> float -> config

(** Sort windows per node and merge overlapping or adjacent ones, so an
    instant covered by two declared windows appears in exactly one merged
    window. {!create} applies this to the list {!link_down} consults;
    exposed for the doctor's down-time accounting and for tests. *)
val normalize_windows : window list -> window list

(** The schedule in chronological order (stable: declaration order breaks
    ties). *)
val sorted_schedule : config -> event list

(** [validate ~nodes cfg] checks the whole config against a cluster of
    [nodes] nodes: probabilities in range, windows well-formed and in node
    range, and the schedule consistent (no crash of an already-crashed node,
    every restart strictly after a prior crash of the same node). Returns
    all problems found, not just the first. *)
val validate : nodes:int -> config -> (unit, string list) result

(** Parse the small text fault-schedule format. One directive per line,
    ['#'] starts a comment, times are integer microseconds of engine time:
    {v
    seed 7
    loss 1e-4
    corrupt 0
    drop 0
    down NODE FROM_US UPTO_US
    crash NODE AT_US [scrub]
    restart NODE AT_US
    v}
    The error carries the offending line number. *)
val config_of_string : string -> (config, string) result

(** Render a config back into the text format (omitting defaults); a
    round-trip through {!config_of_string} yields an equal config for
    microsecond-aligned times. *)
val config_to_string : config -> string

type t

(** @raise Invalid_argument on a probability outside [0,1], a reversed
    window ([start > stop]) or an empty one. The stored window list is
    normalized with {!normalize_windows}. *)
val create : config -> t

val config : t -> config

type verdict =
  | Pass  (** deliver intact *)
  | Corrupt of int  (** deliver with a failing CRC; [n] cells corrupted *)
  | Lose_cells of int  (** [n] cells lost in flight; the frame is dropped *)
  | Drop  (** the whole frame vanishes *)

(** [judge t ~cells] draws the fate of one [cells]-cell frame. *)
val judge : t -> cells:int -> verdict

(** Is [node]'s link inside a down window at time [now]? Consults the
    normalized window list. *)
val link_down : t -> node:int -> now:Cni_engine.Time.t -> bool
