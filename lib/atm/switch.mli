(** Banyan (omega) switch routing model.

    A [ports]-port omega network has log2(ports) stages of 2x2 switching
    elements with a perfect-shuffle interconnection, and is self-routing: at
    stage [s] an element routes by destination-address bit [k-1-s]. The model
    exposes the route taken by a (src, dst) pair and internal-conflict
    detection between two routes; the paper's 500 ns "switch latency" is the
    end-to-end traversal time of this structure, which {!Fabric} charges. *)

type t

(** @raise Invalid_argument unless [ports] is a power of two >= 2. *)
val create : ports:int -> t

val ports : t -> int
val stages : t -> int

(** [route t ~src ~dst] is the wire label occupied after each stage
    (length [stages t]).
    @raise Invalid_argument if [src] or [dst] is out of range. *)
val route : t -> src:int -> dst:int -> int array

(** [conflict t (s1, d1) (s2, d2)] is [true] when the two routes contend for
    the same output wire of some internal element (the classic banyan
    blocking condition). Distinct destinations can still conflict. *)
val conflict : t -> int * int -> int * int -> bool

(** Fraction of conflicting pairs over all src-permutation pairs for a given
    random permutation — used by tests and the switch example to exhibit
    banyan blocking. *)
val conflicts_in_permutation : t -> int array -> int
