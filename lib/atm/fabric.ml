module Params = Cni_machine.Params

module Engine = Cni_engine.Engine
module Time = Cni_engine.Time
module Sync = Cni_engine.Sync
module Stats = Cni_engine.Stats
module Trace = Cni_engine.Trace

type 'a packet = {
  src : int;
  dst : int;
  vci : int;
  header : Bytes.t;
  body_bytes : int;
  payload : 'a;
  crc_ok : bool;
}

type stats = {
  packets : int;
  cells : int;
  wire_bytes : int;
  dropped : int;
  offered_packets : int;
  offered_cells : int;
  offered_wire_bytes : int;
  delivered_packets : int;
  delivered_cells : int;
  delivered_wire_bytes : int;
  hop_waits : int;
  banyan_conflicts : int;
}

type 'a t = {
  eng : Engine.t;
  p : Params.t;
  n : int;
  topo : Topology.t;
  (* one banyan model per switch (pow2-rounded internals), with mutable
     occupancy state the timing walk updates synchronously: *)
  models : Switch.t array;
  out_free : Time.t array array;  (* per switch, per output port *)
  wire_free : Time.t array array;  (* per switch, [stage * ports + wire] *)
  single : bool;  (* one switch: take the literal seed timing path *)
  egress : Sync.Semaphore.t array;
  mutable ingress_free : Time.t array;
  receivers : ('a packet -> unit) array;
  registry : Stats.Registry.t option;
  mutable faults : Faults.t option;
  (* crashed nodes: frames to or from a down node are discarded, counted
     apart from the link-layer fault classes *)
  down : bool array;
  (* registered on first increment, so a fault-free run leaves the metrics
     snapshot exactly as it was before fault injection existed *)
  counters : (string, Stats.Counter.t) Hashtbl.t;
  mutable s_packets : int;
  mutable s_cells : int;
  mutable s_wire_bytes : int;
  mutable s_dropped : int;
  mutable s_offered_packets : int;
  mutable s_offered_cells : int;
  mutable s_offered_wire_bytes : int;
  mutable s_delivered_packets : int;
  mutable s_delivered_cells : int;
  mutable s_delivered_wire_bytes : int;
  mutable s_hop_waits : int;
  mutable s_banyan_conflicts : int;
}

let frame_bytes pkt = Bytes.length pkt.header + pkt.body_bytes

let packet_cells p pkt = Params.cells_for p ~bytes:(frame_bytes pkt + 8)

(* The one wire-size formula: frame + AAL5 trailer, charged as full
   fixed-size cells — a sub-cell frame still burns a whole 53-byte cell.
   The Table 5 unrestricted variant has elastic cells, so it charges the
   unpadded frame plus one header per (single) cell. *)
let frame_wire_bytes p ~bytes =
  let total = bytes + 8 in
  let cells = Params.cells_for p ~bytes:total in
  if Params.unrestricted_cells p then total + (cells * p.Params.cell_header_bytes)
  else cells * (p.Params.cell_payload_bytes + p.Params.cell_header_bytes)

let wire_bytes p pkt = frame_wire_bytes p ~bytes:(frame_bytes pkt)

let serialize_time p ~wire = Params.wire_time p ~bytes:wire

let min_latency p ~bytes =
  let wire = frame_wire_bytes p ~bytes in
  Time.(serialize_time p ~wire + p.Params.switch_latency + (p.Params.link_latency * 2))

let counter t ~node name =
  let key = Printf.sprintf "%d/%s" node name in
  match Hashtbl.find_opt t.counters key with
  | Some c -> c
  | None ->
      let c =
        match t.registry with
        | Some reg -> Stats.Registry.counter reg ~node ~subsystem:"fabric" name
        | None -> Stats.Counter.create name
      in
      Hashtbl.replace t.counters key c;
      c

let counter_value t ~node name =
  match Hashtbl.find_opt t.counters (Printf.sprintf "%d/%s" node name) with
  | Some c -> Stats.Counter.value c
  | None -> 0

let emit t ~node ~label ~payload =
  if Trace.enabled_cat Trace.Atm then
    Trace.emit ~t_ps:(Time.to_ps (Engine.now t.eng)) ~node Trace.Atm ~label ~payload

let drop_undeliverable t pkt =
  t.s_dropped <- t.s_dropped + 1;
  Stats.Counter.incr (counter t ~node:pkt.dst "undeliverable");
  if Trace.enabled_cat Trace.Atm then
    Trace.emit
      ~t_ps:(Time.to_ps (Engine.now t.eng))
      ~node:pkt.dst Trace.Atm
      ~label:(Printf.sprintf "undeliverable src=%d dst=%d vci=%d" pkt.src pkt.dst pkt.vci)
      ~payload:pkt.src

let create ?registry ?faults ?(topology = Topology.Single) eng p ~nodes =
  if nodes < 1 then invalid_arg "Fabric.create: need at least one node";
  let topo = Topology.of_kind topology ~nodes in
  let switches = Topology.switch_count topo in
  let models = Array.init switches (Topology.switch_model topo) in
  let t =
    {
      eng;
      p;
      n = nodes;
      topo;
      models;
      out_free =
        Array.init switches (fun i -> Array.make (Topology.switch_ports topo i) Time.zero);
      wire_free =
        Array.init switches (fun i ->
            let m = models.(i) in
            Array.make (Switch.stages m * Switch.ports m) Time.zero);
      single = switches = 1;
      egress = Array.init nodes (fun _ -> Sync.Semaphore.create 1);
      ingress_free = Array.make nodes Time.zero;
      receivers = Array.make nodes (fun _ -> ());
      registry;
      faults = Option.map Faults.create faults;
      down = Array.make nodes false;
      counters = Hashtbl.create 16;
      s_packets = 0;
      s_cells = 0;
      s_wire_bytes = 0;
      s_dropped = 0;
      s_offered_packets = 0;
      s_offered_cells = 0;
      s_offered_wire_bytes = 0;
      s_delivered_packets = 0;
      s_delivered_cells = 0;
      s_delivered_wire_bytes = 0;
      s_hop_waits = 0;
      s_banyan_conflicts = 0;
    }
  in
  for i = 0 to nodes - 1 do
    t.receivers.(i) <- (fun pkt -> drop_undeliverable t pkt)
  done;
  t

let nodes t = t.n
let params t = t.p
let topology t = t.topo
let set_receiver t ~node f = t.receivers.(node) <- f
let set_faults t cfg = t.faults <- (if Faults.is_none cfg then None else Some (Faults.create cfg))
let faults t = Option.map Faults.config t.faults
let undeliverable t ~node = counter_value t ~node "undeliverable"

let set_node_down t ~node down =
  if node < 0 || node >= t.n then invalid_arg "Fabric.set_node_down: node out of range";
  t.down.(node) <- down

let node_down t ~node =
  if node < 0 || node >= t.n then invalid_arg "Fabric.node_down: node out of range";
  t.down.(node)

let crash_drops t ~node = counter_value t ~node "crash_drops"

let fault_drops t ~node =
  counter_value t ~node "fault_frame_drops"
  + counter_value t ~node "fault_frames_lost"
  + counter_value t ~node "link_down_drops"

let path_latency t ~src ~dst ~bytes =
  let wire = frame_wire_bytes t.p ~bytes in
  let h = Topology.hops t.topo ~src ~dst in
  Time.(
    serialize_time t.p ~wire
    + (t.p.Params.switch_latency * h)
    + (t.p.Params.link_latency * (h + 1)))

(* Seed single-switch path: the frame crosses the central banyan while it
   serialises, so its internal wires are held from switch entry
   ([eta - ser]) until the last bit is through ([eta]). Overlap with a
   previous occupant is the classic banyan blocking condition; it is
   counted here, not charged — the paper's 500 ns switch latency is an
   end-to-end figure that already prices in average blocking. *)
let count_single_conflicts t ~eta ~ser pkt =
  let m = t.models.(0) in
  let ports = Switch.ports m in
  let wires = Switch.route m ~src:pkt.src ~dst:pkt.dst in
  let wf = t.wire_free.(0) in
  let enter = Time.(eta - ser) in
  let last_stage = Array.length wires - 1 in
  let conflicted = ref false in
  Array.iteri
    (fun stage w ->
      let idx = (stage * ports) + w in
      (* the final stage's wire is the output port itself: contention there
         is ingress-port queueing, which the seed model already charges —
         only earlier stages are internal banyan blocking *)
      if stage < last_stage && wf.(idx) > enter then conflicted := true;
      wf.(idx) <- eta)
    wires;
  if !conflicted then t.s_banyan_conflicts <- t.s_banyan_conflicts + 1

(* Multi-switch path: walk the route hop by hop with cut-through at every
   switch. [last] tracks when the frame's last bit leaves the previous
   point; at each hop the last bit could leave the output port at
   [last + link + switch] were the switch idle, i.e. re-serialisation could
   start [ser] earlier than that. Output-port occupancy and internal banyan
   wire conflicts both push the start later (backpressure), and the delay
   compounds into every later hop. Returns the last-bit arrival time at the
   destination NIC. *)
let traverse t ~now ~ser pkt =
  let hops = Topology.route t.topo ~src:pkt.src ~dst:pkt.dst in
  let last = ref now in
  Array.iter
    (fun { Topology.h_switch; h_in; h_out } ->
      let arrive = Time.(!last + t.p.Params.link_latency + t.p.Params.switch_latency) in
      let earliest = Time.(arrive - ser) in
      let m = t.models.(h_switch) in
      let ports = Switch.ports m in
      let wires = Switch.route m ~src:h_in ~dst:h_out in
      let wf = t.wire_free.(h_switch) in
      let last_stage = Array.length wires - 1 in
      (* split the gates: the final stage's wire is the output port itself,
         so wires before it measure internal banyan blocking while the port
         (+ its wire) measures output contention *)
      let internal_gate = ref Time.zero in
      let wire_gate = ref Time.zero in
      Array.iteri
        (fun stage w ->
          let idx = (stage * ports) + w in
          if wf.(idx) > !wire_gate then wire_gate := wf.(idx);
          if stage < last_stage && wf.(idx) > !internal_gate then
            internal_gate := wf.(idx))
        wires;
      let out_gate = t.out_free.(h_switch).(h_out) in
      let start = Time.max earliest (Time.max out_gate !wire_gate) in
      if start > earliest then begin
        t.s_hop_waits <- t.s_hop_waits + 1;
        emit t ~node:pkt.src
          ~label:(Printf.sprintf "hop-wait sw=%d out=%d" h_switch h_out)
          ~payload:(Time.to_ps Time.(start - earliest))
      end;
      if !internal_gate > earliest then
        t.s_banyan_conflicts <- t.s_banyan_conflicts + 1;
      let finish = Time.(start + ser) in
      t.out_free.(h_switch).(h_out) <- finish;
      Array.iteri (fun stage w -> wf.((stage * ports) + w) <- finish) wires;
      last := finish)
    hops;
  Time.(!last + t.p.Params.link_latency)

let send t pkt =
  if pkt.src < 0 || pkt.src >= t.n then invalid_arg "Fabric.send: src out of range";
  if pkt.dst < 0 || pkt.dst >= t.n then invalid_arg "Fabric.send: dst out of range";
  if pkt.src = pkt.dst then invalid_arg "Fabric.send: src = dst";
  let cells = packet_cells t.p pkt in
  let wire = wire_bytes t.p pkt in
  emit t ~node:pkt.src ~label:"send" ~payload:pkt.dst;
  t.s_offered_packets <- t.s_offered_packets + 1;
  t.s_offered_cells <- t.s_offered_cells + cells;
  t.s_offered_wire_bytes <- t.s_offered_wire_bytes + wire;
  (* the frame's fate is drawn synchronously at injection time: the random
     stream then depends only on the (deterministic) order of send calls,
     never on fiber interleaving *)
  let verdict =
    match t.faults with None -> Faults.Pass | Some f -> Faults.judge f ~cells
  in
  let src_down =
    match t.faults with
    | Some f -> Faults.link_down f ~node:pkt.src ~now:(Engine.now t.eng)
    | None -> false
  in
  if t.down.(pkt.src) then begin
    (* a crashed node's pending DMA never makes it onto the wire *)
    Stats.Counter.incr (counter t ~node:pkt.src "crash_drops");
    emit t ~node:pkt.src ~label:"crash-drop" ~payload:pkt.dst
  end
  else if src_down then begin
    Stats.Counter.incr (counter t ~node:pkt.src "link_down_drops");
    emit t ~node:pkt.src ~label:"link-down-drop" ~payload:pkt.dst
  end
  else begin
    (* past the source-side drop gates: these bytes do go onto the wire *)
    t.s_packets <- t.s_packets + 1;
    t.s_cells <- t.s_cells + cells;
    t.s_wire_bytes <- t.s_wire_bytes + wire;
    let ser = serialize_time t.p ~wire in
    Engine.spawn t.eng ~name:"fabric-send" (fun () ->
        Sync.Semaphore.acquire t.egress.(pkt.src);
        Engine.delay ser;
        Sync.Semaphore.release t.egress.(pkt.src);
        (* last bit has left the source; it reaches the destination after
           the switch(es) and links. Cut-through reception: the ingress
           port was receiving while we were serialising, unless it was
           busy. *)
        let now = Engine.now t.eng in
        let eta =
          if t.single then begin
            let eta =
              Time.(now + t.p.Params.switch_latency + (t.p.Params.link_latency * 2))
            in
            count_single_conflicts t ~eta ~ser pkt;
            eta
          end
          else traverse t ~now ~ser pkt
        in
        let dst_down =
          match t.faults with
          | Some f -> Faults.link_down f ~node:pkt.dst ~now:eta
          | None -> false
        in
        if t.down.(pkt.dst) then begin
          (* checked when the last bit arrives: a node that crashed while
             the frame was in flight loses it at its dead ingress port *)
          Stats.Counter.incr (counter t ~node:pkt.dst "crash_drops");
          emit t ~node:pkt.dst ~label:"crash-drop" ~payload:pkt.src
        end
        else if dst_down then begin
          Stats.Counter.incr (counter t ~node:pkt.dst "link_down_drops");
          emit t ~node:pkt.dst ~label:"link-down-drop" ~payload:pkt.src
        end
        else
          match verdict with
          | Faults.Drop ->
              Stats.Counter.incr (counter t ~node:pkt.src "fault_frame_drops");
              emit t ~node:pkt.src ~label:"fault-drop" ~payload:pkt.dst
          | Faults.Lose_cells n ->
              (* an incomplete frame never completes AAL5 reassembly at the
                 receiver; it dies without occupying the ingress port *)
              Stats.Counter.add (counter t ~node:pkt.src "fault_cells_lost") n;
              Stats.Counter.incr (counter t ~node:pkt.src "fault_frames_lost");
              emit t ~node:pkt.src ~label:"fault-cell-loss" ~payload:n
          | (Faults.Pass | Faults.Corrupt _) as v ->
              let pkt =
                match v with
                | Faults.Corrupt n ->
                    Stats.Counter.add (counter t ~node:pkt.src "fault_cells_corrupted") n;
                    Stats.Counter.incr (counter t ~node:pkt.src "fault_frames_corrupted");
                    emit t ~node:pkt.src ~label:"fault-corrupt" ~payload:n;
                    { pkt with crc_ok = false }
                | _ -> pkt
              in
              let start_recv = Time.max Time.(eta - ser) t.ingress_free.(pkt.dst) in
              let finish = Time.(start_recv + ser) in
              t.ingress_free.(pkt.dst) <- finish;
              Engine.delay Time.(finish - now);
              (* re-check liveness at delivery time: when the ingress port
                 was busy, [finish > eta] and the node may have crashed (or
                 its link gone down) while the frame queued — it must not
                 be delivered then *)
              let dst_down_late =
                match t.faults with
                | Some f -> Faults.link_down f ~node:pkt.dst ~now:finish
                | None -> false
              in
              if t.down.(pkt.dst) then begin
                Stats.Counter.incr (counter t ~node:pkt.dst "crash_drops");
                emit t ~node:pkt.dst ~label:"crash-drop" ~payload:pkt.src
              end
              else if dst_down_late then begin
                Stats.Counter.incr (counter t ~node:pkt.dst "link_down_drops");
                emit t ~node:pkt.dst ~label:"link-down-drop" ~payload:pkt.src
              end
              else begin
                t.s_delivered_packets <- t.s_delivered_packets + 1;
                t.s_delivered_cells <- t.s_delivered_cells + cells;
                t.s_delivered_wire_bytes <- t.s_delivered_wire_bytes + wire;
                t.receivers.(pkt.dst) pkt
              end)
  end

let stats t =
  {
    packets = t.s_packets;
    cells = t.s_cells;
    wire_bytes = t.s_wire_bytes;
    dropped = t.s_dropped;
    offered_packets = t.s_offered_packets;
    offered_cells = t.s_offered_cells;
    offered_wire_bytes = t.s_offered_wire_bytes;
    delivered_packets = t.s_delivered_packets;
    delivered_cells = t.s_delivered_cells;
    delivered_wire_bytes = t.s_delivered_wire_bytes;
    hop_waits = t.s_hop_waits;
    banyan_conflicts = t.s_banyan_conflicts;
  }
