module Params = Cni_machine.Params

module Engine = Cni_engine.Engine
module Time = Cni_engine.Time
module Sync = Cni_engine.Sync

type 'a packet = {
  src : int;
  dst : int;
  vci : int;
  header : Bytes.t;
  body_bytes : int;
  payload : 'a;
}

type stats = { packets : int; cells : int; wire_bytes : int; dropped : int }

type 'a t = {
  eng : Engine.t;
  p : Params.t;
  n : int;
  egress : Sync.Semaphore.t array;
  mutable ingress_free : Time.t array;
  receivers : ('a packet -> unit) array;
  mutable s_packets : int;
  mutable s_cells : int;
  mutable s_wire_bytes : int;
  mutable s_dropped : int;
}

let frame_bytes pkt = Bytes.length pkt.header + pkt.body_bytes

let packet_cells p pkt = Params.cells_for p ~bytes:(frame_bytes pkt + 8)

let wire_bytes p pkt =
  let total = frame_bytes pkt in
  let cells = Params.cells_for p ~bytes:(total + 8) in
  if cells = 1 then total + 8 + p.Params.cell_header_bytes
  else cells * (p.Params.cell_payload_bytes + p.Params.cell_header_bytes)

let serialize_time p ~wire = Params.wire_time p ~bytes:wire

let min_latency p ~bytes =
  let cells = Params.cells_for p ~bytes:(bytes + 8) in
  let wire =
    if cells = 1 then bytes + 8 + p.Params.cell_header_bytes
    else cells * (p.Params.cell_payload_bytes + p.Params.cell_header_bytes)
  in
  Time.(serialize_time p ~wire + p.Params.switch_latency + (p.Params.link_latency * 2))

let create eng p ~nodes =
  if nodes < 1 then invalid_arg "Fabric.create: need at least one node";
  let t =
    {
      eng;
      p;
      n = nodes;
      egress = Array.init nodes (fun _ -> Sync.Semaphore.create 1);
      ingress_free = Array.make nodes Time.zero;
      receivers = Array.make nodes (fun _ -> ());
      s_packets = 0;
      s_cells = 0;
      s_wire_bytes = 0;
      s_dropped = 0;
    }
  in
  for i = 0 to nodes - 1 do
    t.receivers.(i) <- (fun _ -> t.s_dropped <- t.s_dropped + 1)
  done;
  t

let nodes t = t.n
let params t = t.p
let set_receiver t ~node f = t.receivers.(node) <- f

let send t pkt =
  if pkt.src < 0 || pkt.src >= t.n then invalid_arg "Fabric.send: src out of range";
  if pkt.dst < 0 || pkt.dst >= t.n then invalid_arg "Fabric.send: dst out of range";
  if pkt.src = pkt.dst then invalid_arg "Fabric.send: src = dst";
  let cells = packet_cells t.p pkt in
  let wire = wire_bytes t.p pkt in
  (if Cni_engine.Trace.enabled_cat Cni_engine.Trace.Atm then
     let t_ps = Time.to_ps (Engine.now t.eng) in
     Cni_engine.Trace.emit ~t_ps ~node:pkt.src Cni_engine.Trace.Atm ~label:"send"
       ~payload:pkt.dst);
  t.s_packets <- t.s_packets + 1;
  t.s_cells <- t.s_cells + cells;
  t.s_wire_bytes <- t.s_wire_bytes + wire;
  let ser = serialize_time t.p ~wire in
  Engine.spawn t.eng ~name:"fabric-send" (fun () ->
      Sync.Semaphore.acquire t.egress.(pkt.src);
      Engine.delay ser;
      Sync.Semaphore.release t.egress.(pkt.src);
      (* last bit has left the source; it reaches the destination after the
         switch and two links. Cut-through reception: the ingress port was
         receiving while we were serialising, unless it was busy. *)
      let now = Engine.now t.eng in
      let eta = Time.(now + t.p.Params.switch_latency + (t.p.Params.link_latency * 2)) in
      let start_recv = Time.max Time.(eta - ser) t.ingress_free.(pkt.dst) in
      let finish = Time.(start_recv + ser) in
      t.ingress_free.(pkt.dst) <- finish;
      Engine.delay Time.(finish - now);
      t.receivers.(pkt.dst) pkt)

let stats t =
  { packets = t.s_packets; cells = t.s_cells; wire_bytes = t.s_wire_bytes; dropped = t.s_dropped }
