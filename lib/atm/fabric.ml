module Params = Cni_machine.Params

module Engine = Cni_engine.Engine
module Time = Cni_engine.Time
module Sync = Cni_engine.Sync
module Stats = Cni_engine.Stats
module Trace = Cni_engine.Trace

type 'a packet = {
  src : int;
  dst : int;
  vci : int;
  header : Bytes.t;
  body_bytes : int;
  payload : 'a;
  crc_ok : bool;
}

type stats = { packets : int; cells : int; wire_bytes : int; dropped : int }

type 'a t = {
  eng : Engine.t;
  p : Params.t;
  n : int;
  egress : Sync.Semaphore.t array;
  mutable ingress_free : Time.t array;
  receivers : ('a packet -> unit) array;
  registry : Stats.Registry.t option;
  mutable faults : Faults.t option;
  (* crashed nodes: frames to or from a down node are discarded, counted
     apart from the link-layer fault classes *)
  down : bool array;
  (* registered on first increment, so a fault-free run leaves the metrics
     snapshot exactly as it was before fault injection existed *)
  counters : (string, Stats.Counter.t) Hashtbl.t;
  mutable s_packets : int;
  mutable s_cells : int;
  mutable s_wire_bytes : int;
  mutable s_dropped : int;
}

let frame_bytes pkt = Bytes.length pkt.header + pkt.body_bytes

let packet_cells p pkt = Params.cells_for p ~bytes:(frame_bytes pkt + 8)

let wire_bytes p pkt =
  let total = frame_bytes pkt in
  let cells = Params.cells_for p ~bytes:(total + 8) in
  if cells = 1 then total + 8 + p.Params.cell_header_bytes
  else cells * (p.Params.cell_payload_bytes + p.Params.cell_header_bytes)

let serialize_time p ~wire = Params.wire_time p ~bytes:wire

let min_latency p ~bytes =
  let cells = Params.cells_for p ~bytes:(bytes + 8) in
  let wire =
    if cells = 1 then bytes + 8 + p.Params.cell_header_bytes
    else cells * (p.Params.cell_payload_bytes + p.Params.cell_header_bytes)
  in
  Time.(serialize_time p ~wire + p.Params.switch_latency + (p.Params.link_latency * 2))

let counter t ~node name =
  let key = Printf.sprintf "%d/%s" node name in
  match Hashtbl.find_opt t.counters key with
  | Some c -> c
  | None ->
      let c =
        match t.registry with
        | Some reg -> Stats.Registry.counter reg ~node ~subsystem:"fabric" name
        | None -> Stats.Counter.create name
      in
      Hashtbl.replace t.counters key c;
      c

let counter_value t ~node name =
  match Hashtbl.find_opt t.counters (Printf.sprintf "%d/%s" node name) with
  | Some c -> Stats.Counter.value c
  | None -> 0

let emit t ~node ~label ~payload =
  if Trace.enabled_cat Trace.Atm then
    Trace.emit ~t_ps:(Time.to_ps (Engine.now t.eng)) ~node Trace.Atm ~label ~payload

let drop_undeliverable t pkt =
  t.s_dropped <- t.s_dropped + 1;
  Stats.Counter.incr (counter t ~node:pkt.dst "undeliverable");
  if Trace.enabled_cat Trace.Atm then
    Trace.emit
      ~t_ps:(Time.to_ps (Engine.now t.eng))
      ~node:pkt.dst Trace.Atm
      ~label:(Printf.sprintf "undeliverable src=%d dst=%d vci=%d" pkt.src pkt.dst pkt.vci)
      ~payload:pkt.src

let create ?registry ?faults eng p ~nodes =
  if nodes < 1 then invalid_arg "Fabric.create: need at least one node";
  let t =
    {
      eng;
      p;
      n = nodes;
      egress = Array.init nodes (fun _ -> Sync.Semaphore.create 1);
      ingress_free = Array.make nodes Time.zero;
      receivers = Array.make nodes (fun _ -> ());
      registry;
      faults = Option.map Faults.create faults;
      down = Array.make nodes false;
      counters = Hashtbl.create 16;
      s_packets = 0;
      s_cells = 0;
      s_wire_bytes = 0;
      s_dropped = 0;
    }
  in
  for i = 0 to nodes - 1 do
    t.receivers.(i) <- (fun pkt -> drop_undeliverable t pkt)
  done;
  t

let nodes t = t.n
let params t = t.p
let set_receiver t ~node f = t.receivers.(node) <- f
let set_faults t cfg = t.faults <- (if Faults.is_none cfg then None else Some (Faults.create cfg))
let faults t = Option.map Faults.config t.faults
let undeliverable t ~node = counter_value t ~node "undeliverable"

let set_node_down t ~node down =
  if node < 0 || node >= t.n then invalid_arg "Fabric.set_node_down: node out of range";
  t.down.(node) <- down

let node_down t ~node =
  if node < 0 || node >= t.n then invalid_arg "Fabric.node_down: node out of range";
  t.down.(node)

let crash_drops t ~node = counter_value t ~node "crash_drops"

let fault_drops t ~node =
  counter_value t ~node "fault_frame_drops"
  + counter_value t ~node "fault_frames_lost"
  + counter_value t ~node "link_down_drops"

let send t pkt =
  if pkt.src < 0 || pkt.src >= t.n then invalid_arg "Fabric.send: src out of range";
  if pkt.dst < 0 || pkt.dst >= t.n then invalid_arg "Fabric.send: dst out of range";
  if pkt.src = pkt.dst then invalid_arg "Fabric.send: src = dst";
  let cells = packet_cells t.p pkt in
  let wire = wire_bytes t.p pkt in
  emit t ~node:pkt.src ~label:"send" ~payload:pkt.dst;
  t.s_packets <- t.s_packets + 1;
  t.s_cells <- t.s_cells + cells;
  t.s_wire_bytes <- t.s_wire_bytes + wire;
  (* the frame's fate is drawn synchronously at injection time: the random
     stream then depends only on the (deterministic) order of send calls,
     never on fiber interleaving *)
  let verdict =
    match t.faults with None -> Faults.Pass | Some f -> Faults.judge f ~cells
  in
  let src_down =
    match t.faults with
    | Some f -> Faults.link_down f ~node:pkt.src ~now:(Engine.now t.eng)
    | None -> false
  in
  if t.down.(pkt.src) then begin
    (* a crashed node's pending DMA never makes it onto the wire *)
    Stats.Counter.incr (counter t ~node:pkt.src "crash_drops");
    emit t ~node:pkt.src ~label:"crash-drop" ~payload:pkt.dst
  end
  else if src_down then begin
    Stats.Counter.incr (counter t ~node:pkt.src "link_down_drops");
    emit t ~node:pkt.src ~label:"link-down-drop" ~payload:pkt.dst
  end
  else
    let ser = serialize_time t.p ~wire in
    Engine.spawn t.eng ~name:"fabric-send" (fun () ->
        Sync.Semaphore.acquire t.egress.(pkt.src);
        Engine.delay ser;
        Sync.Semaphore.release t.egress.(pkt.src);
        (* last bit has left the source; it reaches the destination after the
           switch and two links. Cut-through reception: the ingress port was
           receiving while we were serialising, unless it was busy. *)
        let now = Engine.now t.eng in
        let eta = Time.(now + t.p.Params.switch_latency + (t.p.Params.link_latency * 2)) in
        let dst_down =
          match t.faults with
          | Some f -> Faults.link_down f ~node:pkt.dst ~now:eta
          | None -> false
        in
        if t.down.(pkt.dst) then begin
          (* checked when the last bit arrives: a node that crashed while
             the frame was in flight loses it at its dead ingress port *)
          Stats.Counter.incr (counter t ~node:pkt.dst "crash_drops");
          emit t ~node:pkt.dst ~label:"crash-drop" ~payload:pkt.src
        end
        else if dst_down then begin
          Stats.Counter.incr (counter t ~node:pkt.dst "link_down_drops");
          emit t ~node:pkt.dst ~label:"link-down-drop" ~payload:pkt.src
        end
        else
          match verdict with
          | Faults.Drop ->
              Stats.Counter.incr (counter t ~node:pkt.src "fault_frame_drops");
              emit t ~node:pkt.src ~label:"fault-drop" ~payload:pkt.dst
          | Faults.Lose_cells n ->
              (* an incomplete frame never completes AAL5 reassembly at the
                 receiver; it dies without occupying the ingress port *)
              Stats.Counter.add (counter t ~node:pkt.src "fault_cells_lost") n;
              Stats.Counter.incr (counter t ~node:pkt.src "fault_frames_lost");
              emit t ~node:pkt.src ~label:"fault-cell-loss" ~payload:n
          | (Faults.Pass | Faults.Corrupt _) as v ->
              let pkt =
                match v with
                | Faults.Corrupt n ->
                    Stats.Counter.add (counter t ~node:pkt.src "fault_cells_corrupted") n;
                    Stats.Counter.incr (counter t ~node:pkt.src "fault_frames_corrupted");
                    emit t ~node:pkt.src ~label:"fault-corrupt" ~payload:n;
                    { pkt with crc_ok = false }
                | _ -> pkt
              in
              let start_recv = Time.max Time.(eta - ser) t.ingress_free.(pkt.dst) in
              let finish = Time.(start_recv + ser) in
              t.ingress_free.(pkt.dst) <- finish;
              Engine.delay Time.(finish - now);
              t.receivers.(pkt.dst) pkt)

let stats t =
  { packets = t.s_packets; cells = t.s_cells; wire_bytes = t.s_wire_bytes; dropped = t.s_dropped }
