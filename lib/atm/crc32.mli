(** CRC-32 (IEEE 802.3 polynomial), used by the AAL5 trailer. *)

val digest : Bytes.t -> pos:int -> len:int -> int32

(** [update crc b ~pos ~len] continues a running CRC (start from
    [init]). *)
val init : int32

val update : int32 -> Bytes.t -> pos:int -> len:int -> int32
val finish : int32 -> int32
