type header = { vpi : int; vci : int; last : bool; clp : bool }
type t = { header : header; payload : Bytes.t }

let header_bytes = 5
let payload_bytes = 48
let total_bytes = header_bytes + payload_bytes

let make ~vpi ~vci ~last ?(clp = false) payload =
  if Bytes.length payload <> payload_bytes then
    invalid_arg "Cell.make: payload must be exactly 48 bytes";
  if vpi < 0 || vpi > 0xff then invalid_arg "Cell.make: vpi out of range";
  if vci < 0 || vci > 0xffff then invalid_arg "Cell.make: vci out of range";
  { header = { vpi; vci; last; clp }; payload }

(* Header layout (UNI, simplified): GFC/VPI byte, VPI/VCI nibbles packed as
   vpi:8, vci:16, then PTI(3)/CLP(1) in byte 3's low nibble, HEC placeholder. *)
let encode t =
  let b = Bytes.create total_bytes in
  let h = t.header in
  Bytes.set_uint8 b 0 h.vpi;
  Bytes.set_uint16_be b 1 h.vci;
  let pti = if h.last then 1 else 0 in
  Bytes.set_uint8 b 3 ((pti lsl 1) lor if h.clp then 1 else 0);
  Bytes.set_uint8 b 4 0 (* HEC placeholder *);
  Bytes.blit t.payload 0 b header_bytes payload_bytes;
  b

let decode b =
  if Bytes.length b <> total_bytes then invalid_arg "Cell.decode: need 53 bytes";
  let vpi = Bytes.get_uint8 b 0 in
  let vci = Bytes.get_uint16_be b 1 in
  let flags = Bytes.get_uint8 b 3 in
  let last = flags land 2 <> 0 in
  let clp = flags land 1 <> 0 in
  let payload = Bytes.sub b header_bytes payload_bytes in
  { header = { vpi; vci; last; clp }; payload }
