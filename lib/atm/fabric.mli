(** The cluster interconnect: [nodes] hosts attached to one banyan ATM
    switch.

    A packet carries real header bytes (the part PATHFINDER classifies, i.e.
    the contents of the first cell) plus an accounted body size and an
    arbitrary simulated payload. Timing per packet:

    - the source's egress link is held for the wire serialisation time of all
      its cells (53 bytes each, or unpadded for the Table 5 unrestricted-cell
      variant);
    - the switch adds its traversal latency, each link its propagation delay;
    - the destination's ingress port receives cut-through: reception overlaps
      serialisation unless the port is busy with another packet, in which
      case the packet queues (in arrival order).

    Per-cell processing cost on the NIC processors (SAR) is charged by the
    NIC models, not here. *)

type 'a packet = {
  src : int;
  dst : int;
  vci : int;
  header : Bytes.t;  (** classifiable prefix; travels in the first cell(s) *)
  body_bytes : int;  (** additional payload bytes, accounted but not materialised *)
  payload : 'a;  (** simulated content delivered to the receiver *)
}

type 'a t

val create : Cni_engine.Engine.t -> Cni_machine.Params.t -> nodes:int -> 'a t
val nodes : 'a t -> int
val params : 'a t -> Cni_machine.Params.t

(** Replace the delivery callback for a node (default: drop + count). The
    callback runs inside a fabric fiber; it may block. *)
val set_receiver : 'a t -> node:int -> ('a packet -> unit) -> unit

(** Inject a packet; may be called from any event context.
    @raise Invalid_argument on out-of-range src/dst or src = dst. *)
val send : 'a t -> 'a packet -> unit

(** Total frame size (header + body) in bytes. *)
val frame_bytes : 'a packet -> int

(** Number of ATM cells the packet occupies (AAL5 trailer included). *)
val packet_cells : Cni_machine.Params.t -> 'a packet -> int

(** Bytes on the wire including per-cell headers and padding. *)
val wire_bytes : Cni_machine.Params.t -> 'a packet -> int

(** Uncontended last-bit network delay for a frame of [bytes]:
    serialisation + switch latency + two link propagations. *)
val min_latency : Cni_machine.Params.t -> bytes:int -> Cni_engine.Time.t

type stats = { packets : int; cells : int; wire_bytes : int; dropped : int }

val stats : 'a t -> stats
