(** The cluster interconnect: [nodes] hosts attached to a graph of banyan
    ATM switches described by a {!Topology}.

    A packet carries real header bytes (the part PATHFINDER classifies, i.e.
    the contents of the first cell) plus an accounted body size and an
    arbitrary simulated payload. Timing per packet:

    - the source's egress link is held for the wire serialisation time of all
      its cells (53 bytes each, or unpadded for the Table 5 unrestricted-cell
      variant);
    - on the seed single-switch topology, the switch adds its traversal
      latency and each link its propagation delay — the exact seed timing
      path, bit-identical to before topologies existed. Internal banyan
      conflicts on the central switch are {e counted} (the route of every
      frame is pushed through {!Switch.route} and overlapping wire
      occupancies recorded) but {e not charged}: the paper's 500 ns switch
      latency is an end-to-end figure that already includes average
      blocking;
    - on multi-switch topologies (fat-tree, 3D torus) the frame is walked
      hop by hop with cut-through at every switch: each hop re-serialises
      on its output port, and both output-port contention and internal
      banyan wire conflicts push the frame's departure later (counted in
      [hop_waits] / [banyan_conflicts] and charged in the timing);
    - the destination's ingress port receives cut-through: reception overlaps
      the last serialisation unless the port is busy with another packet, in
      which case the packet queues (in arrival order).

    Per-cell processing cost on the NIC processors (SAR) is charged by the
    NIC models, not here.

    An optional {!Faults} model makes the fabric lossy: frames can be
    dropped whole, lose cells, arrive with [crc_ok = false] (a corrupted
    cell fails the AAL5 CRC at reassembly), or die while a link is inside a
    down window. Destination liveness is checked both when the last bit
    reaches the node and again at delivery time, so a node that crashes
    while the frame queues on its busy ingress port still loses it. Every
    fault event is counted (registry subsystem [fabric], lazily registered)
    and traced on the [atm] category. *)

type 'a packet = {
  src : int;
  dst : int;
  vci : int;
  header : Bytes.t;  (** classifiable prefix; travels in the first cell(s) *)
  body_bytes : int;  (** additional payload bytes, accounted but not materialised *)
  payload : 'a;  (** simulated content delivered to the receiver *)
  crc_ok : bool;  (** [false] when in-flight corruption will fail the AAL5
                      CRC check at the receiver; senders set [true] *)
}

type 'a t

(** [create ?topology eng p ~nodes] builds the interconnect. The default
    topology is {!Topology.Single} — the seed model.
    @raise Invalid_argument when the topology rejects the node count (see
    {!Topology.validate}) or [nodes < 1]. *)
val create :
  ?registry:Cni_engine.Stats.Registry.t ->
  ?faults:Faults.config ->
  ?topology:Topology.kind ->
  Cni_engine.Engine.t ->
  Cni_machine.Params.t ->
  nodes:int ->
  'a t

val nodes : 'a t -> int
val params : 'a t -> Cni_machine.Params.t

(** The topology the fabric was built over. *)
val topology : 'a t -> Topology.t

(** Replace the delivery callback for a node (default: drop + count). The
    callback runs inside a fabric fiber; it may block. *)
val set_receiver : 'a t -> node:int -> ('a packet -> unit) -> unit

(** Attach (or replace) the fault model; {!Faults.is_none} configs detach it. *)
val set_faults : 'a t -> Faults.config -> unit

(** The active fault configuration, if any. *)
val faults : 'a t -> Faults.config option

(** Inject a packet; may be called from any event context.
    @raise Invalid_argument on out-of-range src/dst or src = dst. *)
val send : 'a t -> 'a packet -> unit

(** Total frame size (header + body) in bytes. *)
val frame_bytes : 'a packet -> int

(** Number of ATM cells the packet occupies (AAL5 trailer included). *)
val packet_cells : Cni_machine.Params.t -> 'a packet -> int

(** Bytes on the wire for a [bytes]-sized frame (AAL5 trailer and per-cell
    headers included): full fixed-size cells, so a sub-cell frame still
    charges a whole 53-byte cell — except under the Table 5 unrestricted
    variant, where a frame travels unpadded in one elastic cell. The one
    formula behind {!wire_bytes} and {!min_latency}. *)
val frame_wire_bytes : Cni_machine.Params.t -> bytes:int -> int

(** Bytes on the wire including per-cell headers and padding. *)
val wire_bytes : Cni_machine.Params.t -> 'a packet -> int

(** Uncontended last-bit network delay for a frame of [bytes] across the
    seed single switch: serialisation + switch latency + two link
    propagations. *)
val min_latency : Cni_machine.Params.t -> bytes:int -> Cni_engine.Time.t

(** Uncontended last-bit network delay for a frame of [bytes] from [src] to
    [dst] on this fabric's topology: serialisation + (switch latency per
    hop) + (link propagation per link, one more than hops). Equals
    {!min_latency} on the single switch.
    @raise Invalid_argument on out-of-range or equal endpoints. *)
val path_latency :
  'a t -> src:int -> dst:int -> bytes:int -> Cni_engine.Time.t

(** Load accounting, split by where frames die.

    [offered_*] count every {!send} call; [packets]/[cells]/[wire_bytes]
    count what actually made it onto the wire (excluding frames a crashed or
    link-down {e source} never transmitted, but including frames lost
    mid-flight); [delivered_*] count what reached the destination node.
    In a fault-free run all three agree. [dropped] counts undeliverable
    frames (no receiver installed), as before. *)
type stats = {
  packets : int;  (** frames that got onto the wire *)
  cells : int;
  wire_bytes : int;
  dropped : int;  (** delivered with no receiver installed *)
  offered_packets : int;  (** every [send] call *)
  offered_cells : int;
  offered_wire_bytes : int;
  delivered_packets : int;  (** frames handed to the destination node *)
  delivered_cells : int;
  delivered_wire_bytes : int;
  hop_waits : int;
      (** hops (multi-switch only) where contention delayed the frame *)
  banyan_conflicts : int;
      (** internal banyan wire overlaps; counted on every topology, charged
          only on multi-switch ones *)
}

val stats : 'a t -> stats

(** Packets addressed to [node] that arrived with no receiver installed
    (also counted per node as [node<N>/fabric/undeliverable] and traced with
    src/dst/vci). *)
val undeliverable : 'a t -> node:int -> int

(** Frames sourced at [node] that injected faults destroyed (whole-frame
    drops + frames losing cells + link-down discards on either end). Crash
    discards are counted separately — see {!crash_drops}. *)
val fault_drops : 'a t -> node:int -> int

(** {2 Node liveness}

    A down node loses every frame it would send (at injection time) or
    receive (checked when the last bit arrives at its ingress port {e and}
    again at delivery time, closing the window where a node crashing while
    the frame queued on its busy ingress port would still have received
    it). Set by [Cluster] when a node crashes or restarts. The fault
    verdict is still drawn for frames sourced at a down node, so the fault
    RNG stream is unchanged by crashes. *)

(** @raise Invalid_argument on an out-of-range node. *)
val set_node_down : 'a t -> node:int -> bool -> unit

(** @raise Invalid_argument on an out-of-range node. *)
val node_down : 'a t -> node:int -> bool

(** Frames counted at [node] that died because a crashed node was at either
    end ([node<N>/fabric/crash_drops]); not part of {!fault_drops}. *)
val crash_drops : 'a t -> node:int -> int
