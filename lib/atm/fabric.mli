(** The cluster interconnect: [nodes] hosts attached to one banyan ATM
    switch.

    A packet carries real header bytes (the part PATHFINDER classifies, i.e.
    the contents of the first cell) plus an accounted body size and an
    arbitrary simulated payload. Timing per packet:

    - the source's egress link is held for the wire serialisation time of all
      its cells (53 bytes each, or unpadded for the Table 5 unrestricted-cell
      variant);
    - the switch adds its traversal latency, each link its propagation delay;
    - the destination's ingress port receives cut-through: reception overlaps
      serialisation unless the port is busy with another packet, in which
      case the packet queues (in arrival order).

    Per-cell processing cost on the NIC processors (SAR) is charged by the
    NIC models, not here.

    An optional {!Faults} model makes the fabric lossy: frames can be
    dropped whole, lose cells, arrive with [crc_ok = false] (a corrupted
    cell fails the AAL5 CRC at reassembly), or die while a link is inside a
    down window. Every fault event is counted (registry subsystem [fabric],
    lazily registered) and traced on the [atm] category. *)

type 'a packet = {
  src : int;
  dst : int;
  vci : int;
  header : Bytes.t;  (** classifiable prefix; travels in the first cell(s) *)
  body_bytes : int;  (** additional payload bytes, accounted but not materialised *)
  payload : 'a;  (** simulated content delivered to the receiver *)
  crc_ok : bool;  (** [false] when in-flight corruption will fail the AAL5
                      CRC check at the receiver; senders set [true] *)
}

type 'a t

val create :
  ?registry:Cni_engine.Stats.Registry.t ->
  ?faults:Faults.config ->
  Cni_engine.Engine.t ->
  Cni_machine.Params.t ->
  nodes:int ->
  'a t

val nodes : 'a t -> int
val params : 'a t -> Cni_machine.Params.t

(** Replace the delivery callback for a node (default: drop + count). The
    callback runs inside a fabric fiber; it may block. *)
val set_receiver : 'a t -> node:int -> ('a packet -> unit) -> unit

(** Attach (or replace) the fault model; {!Faults.is_none} configs detach it. *)
val set_faults : 'a t -> Faults.config -> unit

(** The active fault configuration, if any. *)
val faults : 'a t -> Faults.config option

(** Inject a packet; may be called from any event context.
    @raise Invalid_argument on out-of-range src/dst or src = dst. *)
val send : 'a t -> 'a packet -> unit

(** Total frame size (header + body) in bytes. *)
val frame_bytes : 'a packet -> int

(** Number of ATM cells the packet occupies (AAL5 trailer included). *)
val packet_cells : Cni_machine.Params.t -> 'a packet -> int

(** Bytes on the wire including per-cell headers and padding. *)
val wire_bytes : Cni_machine.Params.t -> 'a packet -> int

(** Uncontended last-bit network delay for a frame of [bytes]:
    serialisation + switch latency + two link propagations. *)
val min_latency : Cni_machine.Params.t -> bytes:int -> Cni_engine.Time.t

type stats = { packets : int; cells : int; wire_bytes : int; dropped : int }

val stats : 'a t -> stats

(** Packets addressed to [node] that arrived with no receiver installed
    (also counted per node as [node<N>/fabric/undeliverable] and traced with
    src/dst/vci). *)
val undeliverable : 'a t -> node:int -> int

(** Frames sourced at [node] that injected faults destroyed (whole-frame
    drops + frames losing cells + link-down discards on either end). Crash
    discards are counted separately — see {!crash_drops}. *)
val fault_drops : 'a t -> node:int -> int

(** {2 Node liveness}

    A down node loses every frame it would send (at injection time) or
    receive (when the last bit arrives at its dead ingress port). Set by
    [Cluster] when a node crashes or restarts. The fault verdict is still
    drawn for frames sourced at a down node, so the fault RNG stream is
    unchanged by crashes. *)

(** @raise Invalid_argument on an out-of-range node. *)
val set_node_down : 'a t -> node:int -> bool -> unit

(** @raise Invalid_argument on an out-of-range node. *)
val node_down : 'a t -> node:int -> bool

(** Frames counted at [node] that died because a crashed node was at either
    end ([node<N>/fabric/crash_drops]); not part of {!fault_drops}. *)
val crash_drops : 'a t -> node:int -> int
