(** ATM cell representation and wire format.

    A standard ATM cell is 53 bytes: a 5-byte header (VPI/VCI, payload type,
    CLP; we omit HEC computation and store a placeholder byte) and a 48-byte
    payload. The payload-type "last cell" bit is used by AAL5 to delimit
    frames, exactly the property PATHFINDER relies on to recognise the final
    fragment of a packet. *)

type header = {
  vpi : int;  (** 8 bits used *)
  vci : int;  (** 16 bits *)
  last : bool;  (** AAL5 end-of-frame (PTI bit 0) *)
  clp : bool;  (** cell loss priority *)
}

type t = { header : header; payload : Bytes.t (** exactly [payload_bytes] long *) }

val header_bytes : int (** 5 *)

val payload_bytes : int (** 48 *)

val total_bytes : int (** 53 *)

val make : vpi:int -> vci:int -> last:bool -> ?clp:bool -> Bytes.t -> t
(** @raise Invalid_argument if the payload is not exactly 48 bytes or a header
    field is out of range. *)

(** 53-byte wire encoding. *)
val encode : t -> Bytes.t

(** @raise Invalid_argument on a buffer that is not 53 bytes. *)
val decode : Bytes.t -> t
