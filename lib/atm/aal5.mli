(** AAL5-style segmentation and reassembly.

    A frame is padded so that payload + 8-byte trailer fills a whole number
    of 48-byte cells; the trailer carries the original length and a CRC-32
    over payload+padding. The final cell is marked with the "last" PTI bit.
    This is the fragmentation/reassembly overhead the paper blames for the
    residual communication cost (section 3.4 / Table 5). *)

exception Reassembly_error of string

(** Why a completed frame was rejected. *)
type error =
  | Truncated  (** frame shorter than the 8-byte trailer *)
  | Bad_length  (** trailer length field negative or beyond the frame *)
  | Crc_mismatch  (** CRC-32 over payload+padding does not match *)

val error_message : error -> string

(** [segment ~vpi ~vci frame] splits a frame into cells (at least one). *)
val segment : vpi:int -> vci:int -> Bytes.t -> Cell.t list

(** Incremental reassembler for one virtual circuit. *)
module Reassembler : sig
  type t

  val create : unit -> t

  (** [push_result t cell] adds a cell. [Ok None] mid-frame; [Ok (Some
      frame)] when the cell completes a frame whose CRC and length check
      out; [Error e] when the completed frame is bad — the frame is
      discarded, the error counted, and the reassembler stays usable for
      the circuit's next frame. Never raises. *)
  val push_result : t -> Cell.t -> (Bytes.t option, error) result

  (** [push t cell] is {!push_result} for callers that treat a bad frame as
      fatal.
      @raise Reassembly_error on a bad CRC or inconsistent length. *)
  val push : t -> Cell.t -> Bytes.t option

  (** Cells buffered for the in-progress frame. *)
  val pending_cells : t -> int

  (** Frames successfully reassembled. *)
  val frames : t -> int

  (** Frames discarded (truncated, bad length or CRC mismatch). *)
  val errors : t -> int
end

(** Per-VC demultiplexing: routes each cell to its circuit's reassembler
    (created on first sight), so interleaved frames from different VCs
    reassemble independently, with per-VC frame/error counters. *)
module Demux : sig
  type t

  val create : unit -> t

  (** [push_result t cell] returns [Ok (Some (vci, frame))] when [cell]
      completes a good frame on its circuit, [Error (vci, e)] when it
      completes a bad one. Never raises. *)
  val push_result : t -> Cell.t -> ((int * Bytes.t) option, int * error) result

  val frames : t -> vci:int -> int
  val errors : t -> vci:int -> int
  val pending_cells : t -> vci:int -> int
end

(** [cell_count bytes] is the number of cells a [bytes]-long frame needs
    (payload + 8-byte trailer, 48-byte cells). *)
val cell_count : int -> int
