(** AAL5-style segmentation and reassembly.

    A frame is padded so that payload + 8-byte trailer fills a whole number
    of 48-byte cells; the trailer carries the original length and a CRC-32
    over payload+padding. The final cell is marked with the "last" PTI bit.
    This is the fragmentation/reassembly overhead the paper blames for the
    residual communication cost (section 3.4 / Table 5). *)

exception Reassembly_error of string

(** [segment ~vpi ~vci frame] splits a frame into cells (at least one). *)
val segment : vpi:int -> vci:int -> Bytes.t -> Cell.t list

(** Incremental reassembler for one virtual circuit. *)
module Reassembler : sig
  type t

  val create : unit -> t

  (** [push t cell] adds a cell; returns [Some frame] when the cell completes
      a frame (CRC and length verified).
      @raise Reassembly_error on a bad CRC or inconsistent length. *)
  val push : t -> Cell.t -> Bytes.t option

  (** Cells buffered for the in-progress frame. *)
  val pending_cells : t -> int
end

(** [cell_count bytes] is the number of cells a [bytes]-long frame needs
    (payload + 8-byte trailer, 48-byte cells). *)
val cell_count : int -> int
