type kind =
  | Single
  | Fat_tree of { leaf_radix : int }
  | Torus of { dims : (int * int * int) option }

type hop = { h_switch : int; h_in : int; h_out : int }

(* The concrete shape, with defaults resolved. All routing below is pure
   arithmetic on this record; nothing here is mutable. *)
type shape =
  | S_single
  | S_fat_tree of { d : int (* hosts per leaf = spines *); leaves : int }
  | S_torus of { dx : int; dy : int; dz : int }

type t = {
  kind : kind;
  shape : shape;
  nodes : int;
  switch_ports : int array;
  models : Switch.t array;  (* banyan internals, pow2-rounded, per switch *)
  link_count : int;
  max_hops : int;
}

let kind t = t.kind
let nodes t = t.nodes
let switch_count t = Array.length t.switch_ports

let switch_ports t i =
  if i < 0 || i >= Array.length t.switch_ports then
    invalid_arg "Topology.switch_ports: switch out of range";
  t.switch_ports.(i)

let switch_model t i =
  if i < 0 || i >= Array.length t.models then
    invalid_arg "Topology.switch_model: switch out of range";
  t.models.(i)

let link_count t = t.link_count
let max_hops t = t.max_hops

let pow2_ceil n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 2

let models_of ports = Array.map (fun p -> Switch.create ~ports:(pow2_ceil p)) ports

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let auto_dims n =
  (* minimal largest dimension over all ordered factorizations a <= b <= c *)
  let best = ref (1, 1, n) in
  let score (a, b, c) = Stdlib.max a (Stdlib.max b c) in
  let a = ref 1 in
  while !a * !a * !a <= n do
    if n mod !a = 0 then begin
      let m = n / !a in
      let b = ref !a in
      while !b * !b <= m do
        if m mod !b = 0 then begin
          let cand = (!a, !b, m / !b) in
          if score cand < score !best then best := cand
        end;
        incr b
      done
    end;
    incr a
  done;
  !best

let validate kind ~nodes =
  if nodes < 1 then Error "need at least one node"
  else
    match kind with
    | Single -> Ok ()
    | Fat_tree { leaf_radix } ->
        if leaf_radix < 2 then Error "fat-tree leaf radix must be >= 2"
        else if leaf_radix mod 2 <> 0 then
          Error
            (Printf.sprintf "fat-tree leaf radix must be even (got %d): half down, half up"
               leaf_radix)
        else Ok ()
    | Torus { dims = None } -> Ok ()
    | Torus { dims = Some (dx, dy, dz) } ->
        if dx < 1 || dy < 1 || dz < 1 then Error "torus dimensions must be >= 1"
        else if dx * dy * dz <> nodes then
          Error
            (Printf.sprintf "torus %dx%dx%d holds %d nodes, cluster has %d" dx dy dz
               (dx * dy * dz) nodes)
        else Ok ()

let checked kind ~nodes =
  match validate kind ~nodes with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Topology: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

let single ~nodes =
  checked Single ~nodes;
  {
    kind = Single;
    shape = S_single;
    nodes;
    switch_ports = [| nodes |];
    models = models_of [| nodes |];
    link_count = nodes;
    max_hops = 1;
  }

let fat_tree ?(leaf_radix = 16) ~nodes () =
  checked (Fat_tree { leaf_radix }) ~nodes;
  let d = leaf_radix / 2 in
  let leaves = (nodes + d - 1) / d in
  if leaves = 1 then
    (* degenerate: everything fits under one leaf; no spine level *)
    {
      kind = Fat_tree { leaf_radix };
      shape = S_fat_tree { d; leaves };
      nodes;
      switch_ports = [| nodes |];
      models = models_of [| nodes |];
      link_count = nodes;
      max_hops = 1;
    }
  else begin
    let spines = d in
    (* leaves 0..leaves-1 (d host ports + d up ports), then spines (one
       port per leaf) *)
    let ports =
      Array.init (leaves + spines) (fun i -> if i < leaves then d + spines else leaves)
    in
    {
      kind = Fat_tree { leaf_radix };
      shape = S_fat_tree { d; leaves };
      nodes;
      switch_ports = ports;
      models = models_of ports;
      link_count = nodes + (leaves * spines);
      max_hops = 3;
    }
  end

let torus ?dims ~nodes () =
  let dims = match dims with Some d -> d | None -> auto_dims nodes in
  checked (Torus { dims = Some dims }) ~nodes;
  let dx, dy, dz = dims in
  let ports = Array.make nodes 7 in
  (* each router owns its positive-direction link in every ring of size
     >= 2 (a ring of size 1 has no link in that dimension) *)
  let ring_links s = if s >= 2 then nodes else 0 in
  {
    kind = Torus { dims = Some dims };
    shape = S_torus { dx; dy; dz };
    nodes;
    switch_ports = ports;
    models = models_of ports;
    link_count = nodes + ring_links dx + ring_links dy + ring_links dz;
    max_hops = 1 + (dx / 2) + (dy / 2) + (dz / 2);
  }

let of_kind kind ~nodes =
  match kind with
  | Single -> single ~nodes
  | Fat_tree { leaf_radix } -> fat_tree ~leaf_radix ~nodes ()
  | Torus { dims } -> torus ?dims ~nodes ()

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)
(* ------------------------------------------------------------------ *)

(* torus port numbering: 0 = host, then (+,-) per dimension *)
let port_plus dim = 1 + (2 * dim)
let port_minus dim = 2 + (2 * dim)

let route t ~src ~dst =
  if src < 0 || src >= t.nodes then invalid_arg "Topology.route: src out of range";
  if dst < 0 || dst >= t.nodes then invalid_arg "Topology.route: dst out of range";
  if src = dst then invalid_arg "Topology.route: src = dst";
  match t.shape with
  | S_single -> [| { h_switch = 0; h_in = src; h_out = dst } |]
  | S_fat_tree { d; leaves } ->
      let sl = src / d and dl = dst / d in
      if sl = dl then [| { h_switch = sl; h_in = src mod d; h_out = dst mod d } |]
      else
        let s = dst mod d in
        [|
          { h_switch = sl; h_in = src mod d; h_out = d + s };
          { h_switch = leaves + s; h_in = sl; h_out = dl };
          { h_switch = dl; h_in = d + s; h_out = dst mod d };
        |]
  | S_torus { dx; dy; dz } ->
      let sizes = [| dx; dy; dz |] in
      let strides = [| 1; dx; dx * dy |] in
      let coord i dim = i / strides.(dim) mod sizes.(dim) in
      let acc = ref [] in
      let cur = ref src and in_port = ref 0 in
      for dim = 0 to 2 do
        let s = sizes.(dim) in
        if s > 1 then begin
          let c = coord !cur dim and e = coord dst dim in
          let fwd = (e - c + s) mod s in
          if fwd <> 0 then begin
            (* shorter way around the ring; ties take the plus direction *)
            let plus = fwd <= s - fwd in
            let steps = if plus then fwd else s - fwd in
            for _ = 1 to steps do
              let c = coord !cur dim in
              let c' = if plus then (c + 1) mod s else (c + s - 1) mod s in
              acc :=
                {
                  h_switch = !cur;
                  h_in = !in_port;
                  h_out = (if plus then port_plus dim else port_minus dim);
                }
                :: !acc;
              cur := !cur + ((c' - c) * strides.(dim));
              in_port := (if plus then port_minus dim else port_plus dim)
            done
          end
        end
      done;
      acc := { h_switch = dst; h_in = !in_port; h_out = 0 } :: !acc;
      Array.of_list (List.rev !acc)

let hops t ~src ~dst = Array.length (route t ~src ~dst)

(* ------------------------------------------------------------------ *)
(* Names                                                               *)
(* ------------------------------------------------------------------ *)

let kind_to_string = function
  | Single -> "single"
  | Fat_tree { leaf_radix } -> Printf.sprintf "fat-tree:%d" leaf_radix
  | Torus { dims = None } -> "torus"
  | Torus { dims = Some (x, y, z) } -> Printf.sprintf "torus:%dx%dx%d" x y z

let kind_of_string s =
  let fail () =
    Error
      (Printf.sprintf
         "unknown topology %S (expected single, fat-tree, fat-tree:RADIX, torus or \
          torus:XxYxZ)"
         s)
  in
  let int_of s = int_of_string_opt (String.trim s) in
  match String.lowercase_ascii (String.trim s) with
  | "single" -> Ok Single
  | "fat-tree" | "fattree" -> Ok (Fat_tree { leaf_radix = 16 })
  | "torus" -> Ok (Torus { dims = None })
  | s -> (
      match String.index_opt s ':' with
      | None -> fail ()
      | Some i -> (
          let head = String.sub s 0 i and arg = String.sub s (i + 1) (String.length s - i - 1) in
          match head with
          | "fat-tree" | "fattree" -> (
              match int_of arg with
              | Some r -> Ok (Fat_tree { leaf_radix = r })
              | None -> fail ())
          | "torus" -> (
              match String.split_on_char 'x' arg with
              | [ a; b; c ] -> (
                  match (int_of a, int_of b, int_of c) with
                  | Some x, Some y, Some z -> Ok (Torus { dims = Some (x, y, z) })
                  | _ -> fail ())
              | _ -> fail ())
          | _ -> fail ()))

let describe t =
  match t.shape with
  | S_single -> Printf.sprintf "single %d-port switch, %d nodes" t.switch_ports.(0) t.nodes
  | S_fat_tree { d; leaves } ->
      if leaves = 1 then
        Printf.sprintf "fat-tree (degenerate: one %d-port leaf), %d nodes" t.switch_ports.(0)
          t.nodes
      else
        Printf.sprintf "fat-tree: %d leaves (%d hosts + %d spines each), %d nodes, %d links"
          leaves d d t.nodes t.link_count
  | S_torus { dx; dy; dz } ->
      Printf.sprintf "3d-torus %dx%dx%d, %d routers, %d links, dimension-order routing" dx dy
        dz t.nodes t.link_count
