(** Multi-switch fabric topologies: the interconnect as a graph of switches
    and links.

    The paper's fabric is one central banyan switch; that caps the cluster
    at the switch's port count. This module describes scale-out shapes —
    while staying pure structure: builders, per-switch port maps and
    deterministic routes. The {!Fabric} owns all timing state (output-port
    and internal-wire occupancy per switch) and charges contention along
    the routes computed here.

    Three shapes:

    - {b Single}: one central switch, every node on its own port — the
      seed model, kept bit-identical by the fabric's timing path.
    - {b Fat-tree}: a two-level folded Clos. Leaves expose half their
      radix to hosts and half to spines; every spine connects to every
      leaf. Up-down routing, with the spine picked by destination
      ([dst mod spines]) so a flow's path is deterministic and the load
      of distinct destinations spreads across spines.
    - {b 3D torus}: one router per node (APEnet+-style direct network),
      ±1 links in each dimension with wraparound, deterministic
      dimension-order (x, then y, then z) routing taking the shorter way
      around each ring (ties go to the positive direction).

    Every route is a sequence of {!hop}s — (switch, in-port, out-port)
    triples — with an implied link before each hop and one after the last
    (the destination's host link). A route with [k] hops therefore crosses
    [k] switches and [k + 1] links. *)

type kind =
  | Single
  | Fat_tree of { leaf_radix : int }
      (** [leaf_radix] ports per leaf: half down to hosts, half up to
          spines. Must be even and >= 2. *)
  | Torus of { dims : (int * int * int) option }
      (** [None] picks the most cubic factorization of the node count. *)

(** One switch traversal: enter [h_switch] on port [h_in], leave on
    [h_out]. *)
type hop = { h_switch : int; h_in : int; h_out : int }

type t

(** [of_kind kind ~nodes] builds the topology, resolving defaults (auto
    torus dimensions).
    @raise Invalid_argument when {!validate} rejects the combination. *)
val of_kind : kind -> nodes:int -> t

val single : nodes:int -> t

(** Default [leaf_radix] is 16 (8 hosts + 8 spines per leaf). *)
val fat_tree : ?leaf_radix:int -> nodes:int -> unit -> t

(** Default [dims] is {!auto_dims}[ nodes]. *)
val torus : ?dims:int * int * int -> nodes:int -> unit -> t

val kind : t -> kind
val nodes : t -> int
val switch_count : t -> int

(** Ports actually wired on switch [i] (hosts + inter-switch links).
    @raise Invalid_argument on an out-of-range switch. *)
val switch_ports : t -> int -> int

(** The banyan model of switch [i]'s internals, sized to the next power of
    two above {!switch_ports} — {!Switch.route} through it gives the
    internal wires a traversal occupies, which the fabric uses for
    internal-conflict accounting and (on multi-switch shapes) charging. *)
val switch_model : t -> int -> Switch.t

(** Host links plus inter-switch links (a torus router's positive-direction
    link in each dimension is counted once). *)
val link_count : t -> int

(** @raise Invalid_argument on out-of-range or equal endpoints. *)
val route : t -> src:int -> dst:int -> hop array

(** [Array.length (route t ~src ~dst)] without building the array twice at
    call sites that only need the count. *)
val hops : t -> src:int -> dst:int -> int

(** Switch hops on the longest route (the topology diameter). *)
val max_hops : t -> int

(** The most cubic [a <= b <= c] factorization of [n] (minimal largest
    dimension); [64] gives [(4, 4, 4)]. *)
val auto_dims : int -> int * int * int

(** [validate kind ~nodes] explains, rather than raises, why a combination
    is unusable: non-positive node count, odd or too-small fat-tree radix,
    torus dimensions that do not multiply out to the node count. *)
val validate : kind -> nodes:int -> (unit, string) result

(** Accepts [single], [fat-tree], [fat-tree:RADIX], [torus] and
    [torus:XxYxZ]. *)
val kind_of_string : string -> (kind, string) result

val kind_to_string : kind -> string

(** One human line, e.g. ["3d-torus 4x4x4, 64 switches, 160 links"]. *)
val describe : t -> string
