exception Reassembly_error of string

let trailer_bytes = 8

let cell_count len =
  let total = len + trailer_bytes in
  max 1 ((total + Cell.payload_bytes - 1) / Cell.payload_bytes)

let segment ~vpi ~vci frame =
  let len = Bytes.length frame in
  let ncells = cell_count len in
  let padded = Bytes.make (ncells * Cell.payload_bytes) '\000' in
  Bytes.blit frame 0 padded 0 len;
  (* trailer: [len:4][crc:4] over payload+padding *)
  let trailer_pos = Bytes.length padded - trailer_bytes in
  Bytes.set_int32_be padded trailer_pos (Int32.of_int len);
  let crc = Crc32.digest padded ~pos:0 ~len:(trailer_pos + 4) in
  Bytes.set_int32_be padded (trailer_pos + 4) crc;
  List.init ncells (fun i ->
      let payload = Bytes.sub padded (i * Cell.payload_bytes) Cell.payload_bytes in
      Cell.make ~vpi ~vci ~last:(i = ncells - 1) payload)

module Reassembler = struct
  type t = { mutable cells : Bytes.t list (* reversed *); mutable count : int }

  let create () = { cells = []; count = 0 }
  let pending_cells t = t.count

  let push t (cell : Cell.t) =
    t.cells <- cell.payload :: t.cells;
    t.count <- t.count + 1;
    if not cell.header.last then None
    else begin
      let padded = Bytes.concat Bytes.empty (List.rev t.cells) in
      t.cells <- [];
      t.count <- 0;
      let total = Bytes.length padded in
      if total < trailer_bytes then raise (Reassembly_error "frame shorter than trailer");
      let trailer_pos = total - trailer_bytes in
      let len = Int32.to_int (Bytes.get_int32_be padded trailer_pos) in
      if len < 0 || len > trailer_pos then raise (Reassembly_error "bad length field");
      let crc_stored = Bytes.get_int32_be padded (trailer_pos + 4) in
      let crc = Crc32.digest padded ~pos:0 ~len:(trailer_pos + 4) in
      if crc <> crc_stored then raise (Reassembly_error "CRC mismatch");
      Some (Bytes.sub padded 0 len)
    end
end
