exception Reassembly_error of string

type error = Truncated | Bad_length | Crc_mismatch

let error_message = function
  | Truncated -> "frame shorter than trailer"
  | Bad_length -> "bad length field"
  | Crc_mismatch -> "CRC mismatch"

let trailer_bytes = 8

let cell_count len =
  let total = len + trailer_bytes in
  max 1 ((total + Cell.payload_bytes - 1) / Cell.payload_bytes)

let segment ~vpi ~vci frame =
  let len = Bytes.length frame in
  let ncells = cell_count len in
  let padded = Bytes.make (ncells * Cell.payload_bytes) '\000' in
  Bytes.blit frame 0 padded 0 len;
  (* trailer: [len:4][crc:4] over payload+padding *)
  let trailer_pos = Bytes.length padded - trailer_bytes in
  Bytes.set_int32_be padded trailer_pos (Int32.of_int len);
  let crc = Crc32.digest padded ~pos:0 ~len:(trailer_pos + 4) in
  Bytes.set_int32_be padded (trailer_pos + 4) crc;
  List.init ncells (fun i ->
      let payload = Bytes.sub padded (i * Cell.payload_bytes) Cell.payload_bytes in
      Cell.make ~vpi ~vci ~last:(i = ncells - 1) payload)

module Reassembler = struct
  type t = {
    mutable cells : Bytes.t list (* reversed *);
    mutable count : int;
    mutable s_frames : int;
    mutable s_errors : int;
  }

  let create () = { cells = []; count = 0; s_frames = 0; s_errors = 0 }
  let pending_cells t = t.count
  let frames t = t.s_frames
  let errors t = t.s_errors

  let check_frame padded =
    let total = Bytes.length padded in
    if total < trailer_bytes then Error Truncated
    else begin
      let trailer_pos = total - trailer_bytes in
      let len = Int32.to_int (Bytes.get_int32_be padded trailer_pos) in
      if len < 0 || len > trailer_pos then Error Bad_length
      else begin
        let crc_stored = Bytes.get_int32_be padded (trailer_pos + 4) in
        let crc = Crc32.digest padded ~pos:0 ~len:(trailer_pos + 4) in
        if crc <> crc_stored then Error Crc_mismatch else Ok (Bytes.sub padded 0 len)
      end
    end

  let push_result t (cell : Cell.t) =
    t.cells <- cell.payload :: t.cells;
    t.count <- t.count + 1;
    if not cell.header.last then Ok None
    else begin
      let padded = Bytes.concat Bytes.empty (List.rev t.cells) in
      (* the buffered cells are consumed either way: a bad frame is discarded
         whole, the circuit stays usable for the next frame *)
      t.cells <- [];
      t.count <- 0;
      match check_frame padded with
      | Ok frame ->
          t.s_frames <- t.s_frames + 1;
          Ok (Some frame)
      | Error e ->
          t.s_errors <- t.s_errors + 1;
          Error e
    end

  let push t cell =
    match push_result t cell with
    | Ok frame -> frame
    | Error e -> raise (Reassembly_error (error_message e))
end

module Demux = struct
  type t = { vcs : (int, Reassembler.t) Hashtbl.t }

  let create () = { vcs = Hashtbl.create 8 }

  let vc t vci =
    match Hashtbl.find_opt t.vcs vci with
    | Some r -> r
    | None ->
        let r = Reassembler.create () in
        Hashtbl.replace t.vcs vci r;
        r

  let push_result t (cell : Cell.t) =
    let vci = cell.header.vci in
    match Reassembler.push_result (vc t vci) cell with
    | Ok None -> Ok None
    | Ok (Some frame) -> Ok (Some (vci, frame))
    | Error e -> Error (vci, e)

  let frames t ~vci = Reassembler.frames (vc t vci)
  let errors t ~vci = Reassembler.errors (vc t vci)
  let pending_cells t ~vci = Reassembler.pending_cells (vc t vci)
end
