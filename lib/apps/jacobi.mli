(** Jacobi iterative relaxation (section 3.1): the paper's coarse-grained
    benchmark.

    An n x n grid is strip-partitioned by rows; each point is recomputed from
    its four neighbours. There are two synchronisation points per iteration
    (after computing into the new plane, and after the planes are swapped),
    so the only steady-state communication is the boundary rows invalidated
    at each barrier — which is why the Message Cache's hit ratio is very high
    for this application. *)

type config = {
  n : int;  (** matrix dimension (128 / 256 / 512 / 1024 in the paper) *)
  iterations : int;
  cycles_per_point : int;  (** CPU cost of one 4-point stencil update *)
  warmup_iterations : int;
      (** statistics (network cache hit ratio) reset after this many
          iterations so a short run reports the steady-state ratio the
          paper's long runs measure; timing is unaffected *)
}

val default_config : config

type result = {
  checksum : float;  (** sum of the final plane (validation) *)
  iterations_done : int;
}

(** [run cluster lrcs config] executes the application on every node of the
    cluster (must be called before any other [run_app] on this cluster).
    [watchdog] is forwarded to [Cluster.run_app] (fault-injection runs bound
    their simulated time so a stranded protocol fails instead of spinning). *)
val run :
  ?watchdog:Cni_engine.Time.t ->
  Cni_dsm.Protocol.msg Cni_cluster.Cluster.t ->
  Cni_dsm.Lrc.t array ->
  config ->
  result
