(** Sparse symmetric positive-definite matrices and symbolic Cholesky
    factorization — the substrate for the paper's Cholesky benchmark.

    The paper uses Harwell-Boeing structural-stiffness matrices (bcsstk14,
    n=1806; bcsstk15, n=3948). Those files are not available offline, so
    {!stiffness_like} generates deterministic matrices with the same shape
    class: a d-dof finite-element mesh on a g x g grid, giving the banded,
    blocky lower-triangular pattern (and therefore the supernode structure
    and page-migration behaviour) that drives the experiment. See DESIGN.md
    section 5. *)

(** Compressed sparse column, lower triangle including the diagonal. Row
    indices within a column are strictly increasing; the diagonal entry is
    first. *)
type t = {
  n : int;
  colptr : int array;  (** length n+1 *)
  rowidx : int array;
  values : float array;
}

val nnz : t -> int

(** @raise Invalid_argument if the structure is malformed (bad colptr,
    unsorted or out-of-range rows, missing diagonal). *)
val validate : t -> unit

(** [stiffness_like ~n ~dofs ~seed] builds an SPD matrix of order exactly
    [n]: mesh nodes with [dofs] unknowns each on a square grid, coupled to
    their 8 grid neighbours, diagonally dominant values. *)
val stiffness_like : n:int -> dofs:int -> seed:int -> t

(** Elimination tree of the Cholesky factor ([-1] = root). *)
val etree : t -> int array

(** Symbolic factorization: the pattern of L (values zeroed), including
    fill-in. *)
val symbolic : t -> t

(** Fundamental supernodes of L: [starts] is the first column of each
    supernode, ascending, always beginning with 0; a supernode is a maximal
    run of consecutive columns with identical below-diagonal pattern (up to
    shift) and parent links. *)
val supernodes : t -> int array

(** Dense lower-triangular copy (tests only; quadratic memory). *)
val to_dense : t -> float array array

(** Dense symmetric matrix A = L_pattern with mirrored values (tests). *)
val to_dense_symmetric : t -> float array array

(** {2 Orderings}

    Fill-in depends on the elimination order; these are the standard tools a
    sparse Cholesky system ships with. *)

(** Half bandwidth: max over entries of [i - j]. *)
val bandwidth : t -> int

(** [permute t ~perm] applies the symmetric permutation [perm] ([perm.(new_i)
    = old_i]) to rows and columns, returning a valid lower-triangular CSC.
    @raise Invalid_argument if [perm] is not a permutation of [0..n-1]. *)
val permute : t -> perm:int array -> t

(** Reverse Cuthill-McKee ordering: a bandwidth-reducing permutation computed
    by breadth-first search from a pseudo-peripheral vertex, neighbours taken
    in increasing-degree order, then reversed. Returns [perm] with
    [perm.(new_i) = old_i]. *)
val rcm : t -> int array
