module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node
module Lrc = Cni_dsm.Lrc
module Shmem = Cni_dsm.Shmem

type config = {
  molecules : int;
  steps : int;
  cycles_per_pair : int;
  cycles_per_update : int;
  doubles_per_molecule : int;
}

let default_config =
  {
    molecules = 64;
    steps = 2;
    cycles_per_pair = 30_000;
    cycles_per_update = 4_000;
    doubles_per_molecule = 56;
  }

type result = { checksum : float; steps_done : int }

(* lock id space: molecule locks start here *)
let molecule_lock m = 100 + m

(* record layout: [0..2] position, [3..5] velocity, [6..8] force, the rest
   is the owner's predictor-corrector state *)
let pos_off = 0

and vel_off = 3

and force_off = 6

(* deterministic initial positions on a jittered cubic lattice *)
let initial_pos n m axis =
  let side = int_of_float (ceil (float_of_int n ** (1. /. 3.))) in
  let c =
    match axis with
    | 0 -> m mod side
    | 1 -> m / side mod side
    | _ -> m / (side * side)
  in
  (float_of_int c *. 2.5) +. (0.3 *. sin (float_of_int ((m * 37) + (axis * 11))))

(* a short-range pair force: smooth, deterministic, cheap to evaluate *)
let pair_force dx dy dz =
  let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. 0.01 in
  let inv = 1.0 /. r2 in
  let mag = (inv *. inv) -. (0.001 *. inv) in
  (mag *. dx, mag *. dy, mag *. dz)

let run cluster lrcs config =
  let { molecules = n; steps; cycles_per_pair; cycles_per_update; doubles_per_molecule = w } =
    config
  in
  if w < 9 then invalid_arg "Water.run: doubles_per_molecule must be >= 9";
  let procs = Cluster.size cluster in
  let space = Lrc.space lrcs.(0) in
  (* one wide record per molecule: this is what pages, migrates and falsely
     shares (several molecules per 2 KB page) *)
  let state = Shmem.Farray.create space ~len:(n * w) in
  let base m = m * w in
  let checksum = ref 0.0 in
  Cluster.run_app cluster (fun node ->
      let me = Node.id node in
      let lrc = lrcs.(me) in
      let lo, hi = Partition.range ~items:n ~procs ~me in
      Shmem.Farray.init_local lrc state ~lo:(base lo) ~len:((hi - lo) * w) (fun k ->
          let m = k / w and off = k mod w in
          if off < 3 then initial_pos n m off else 0.0);
      (* private accumulation buffer (the paper's deferred updates) *)
      let local = Array.make (3 * n) 0.0 in
      Lrc.barrier lrc ~id:0;
      for _step = 1 to steps do
        (* phase 1: pairwise forces; everyone reads every molecule record *)
        Array.fill local 0 (3 * n) 0.0;
        Shmem.Farray.read_range lrc state ~lo:0 ~len:(n * w);
        let px m c = Shmem.Farray.get state (base m + pos_off + c) in
        for i = lo to hi - 1 do
          for j = i + 1 to n - 1 do
            let dx = px i 0 -. px j 0
            and dy = px i 1 -. px j 1
            and dz = px i 2 -. px j 2 in
            let fx, fy, fz = pair_force dx dy dz in
            local.(3 * i) <- local.(3 * i) +. fx;
            local.((3 * i) + 1) <- local.((3 * i) + 1) +. fy;
            local.((3 * i) + 2) <- local.((3 * i) + 2) +. fz;
            local.(3 * j) <- local.(3 * j) -. fx;
            local.((3 * j) + 1) <- local.((3 * j) + 1) -. fy;
            local.((3 * j) + 2) <- local.((3 * j) + 2) -. fz
          done;
          Node.work node ((n - i - 1) * cycles_per_pair)
        done;
        (* phase 2: apply the deferred updates under per-molecule locks *)
        for m = 0 to n - 1 do
          if local.(3 * m) <> 0.0 || local.((3 * m) + 1) <> 0.0 || local.((3 * m) + 2) <> 0.0
          then begin
            Lrc.acquire lrc ~lock:(molecule_lock m);
            Shmem.Farray.read_range lrc state ~lo:(base m + force_off) ~len:3;
            Shmem.Farray.write_range lrc state ~lo:(base m + force_off) ~len:3;
            for c = 0 to 2 do
              let k = base m + force_off + c in
              Shmem.Farray.set state k (Shmem.Farray.get state k +. local.((3 * m) + c))
            done;
            Node.work node cycles_per_update;
            Lrc.release lrc ~lock:(molecule_lock m)
          end
        done;
        Lrc.barrier lrc ~id:0;
        (* phase 3: owners integrate their molecules (the whole record is
           rewritten: positions, velocities and the predictor state) *)
        Shmem.Farray.read_range lrc state ~lo:(base lo) ~len:((hi - lo) * w);
        Shmem.Farray.write_range lrc state ~lo:(base lo) ~len:((hi - lo) * w);
        for m = lo to hi - 1 do
          let dt = 0.001 in
          for c = 0 to 2 do
            let p = base m + pos_off + c
            and v = base m + vel_off + c
            and f = base m + force_off + c in
            Shmem.Farray.set state v (Shmem.Farray.get state v +. (dt *. Shmem.Farray.get state f));
            Shmem.Farray.set state p (Shmem.Farray.get state p +. (dt *. Shmem.Farray.get state v));
            Shmem.Farray.set state f 0.0
          done;
          (* refresh the predictor-corrector scratch *)
          for off = 9 to w - 1 do
            let k = (base m) + off in
            Shmem.Farray.set state k (Shmem.Farray.get state (base m + (off mod 3)) *. 0.5)
          done
        done;
        Node.work node ((hi - lo) * cycles_per_update);
        Lrc.barrier lrc ~id:1
      done;
      if me = 0 then begin
        let s = ref 0.0 in
        for m = 0 to n - 1 do
          for c = 0 to 2 do
            s := !s +. Shmem.Farray.get state (base m + pos_off + c)
          done
        done;
        checksum := !s
      end);
  { checksum = !checksum; steps_done = steps }
