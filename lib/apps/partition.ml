let range ~items ~procs ~me =
  let base = items / procs and extra = items mod procs in
  let lo = (me * base) + min me extra in
  let hi = lo + base + if me < extra then 1 else 0 in
  (lo, hi)

let count ~items ~procs ~me =
  let lo, hi = range ~items ~procs ~me in
  hi - lo
