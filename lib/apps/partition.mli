(** Block partitioning helpers shared by the applications. *)

(** [range ~items ~procs ~me] is the [(lo, hi_exclusive)] block of [me]
    (0-based); blocks differ in size by at most one item. *)
val range : items:int -> procs:int -> me:int -> int * int

(** Number of items of [me]'s block. *)
val count : items:int -> procs:int -> me:int -> int
