(** Open-loop key-value serving over {!Cni_mp.Mp}: N client nodes fire
    get/put RPCs at M server nodes on a schedule fixed before the run
    starts, and every response latency lands in a log-bucketed histogram.

    This is the workload the closed-loop SPLASH kernels cannot express:
    clients do {e not} wait for a response before issuing the next request,
    so when a server (or the fabric under it) falls behind, requests queue
    and the latency tail stretches instead of the offered load politely
    backing off. Each request is timestamped with its {e scheduled}
    generation time — not the moment the client fiber got around to
    sending it — so client-side stalls are charged to the requests they
    delay and the reported tail is free of coordinated omission
    (DESIGN.md §3c).

    Node layout: servers are cluster nodes [0 .. servers-1], clients are
    [servers .. servers+clients-1]. Requests are routed by key
    ([key mod servers]); every random draw comes from seeded
    {!Cni_engine.Rng} streams, so a run is a pure function of its
    configuration. *)

(** HDR-style log-bucketed latency histogram over non-negative integer
    samples (the serving workload feeds it nanoseconds).

    Values below 32 get exact unit-width buckets; above that each
    power-of-two octave is split into 32 sub-buckets, so any recorded
    quantile is within a factor of [1 + 1/32] (~3.1%) of the true sample —
    constant relative error at any magnitude, constant memory, O(1)
    observe. *)
module Hist : sig
  type t

  (** A fresh, empty histogram. *)
  val create : unit -> t

  (** [observe t v] records one sample. Negative samples are clamped to 0.
      O(1), no allocation. *)
  val observe : t -> int -> unit

  (** Number of samples recorded. *)
  val count : t -> int

  (** Exact smallest recorded sample (0 when empty). *)
  val min_value : t -> int

  (** Exact largest recorded sample (0 when empty). *)
  val max_value : t -> int

  (** Exact arithmetic mean of the samples (0 when empty). *)
  val mean : t -> float

  (** [quantile t q] with [0 <= q <= 1]: an upper bound on the sample at
      rank [ceil (q * count)], tight to the bucket width (so within ~3.1%
      relative error) and never above {!max_value}. [quantile t 1.0] is the
      exact maximum. 0 when empty. *)
  val quantile : t -> float -> int

  (** Non-empty buckets in increasing order as [(lo, hi, count)]: [count]
      samples fell in the inclusive value range [lo..hi]. *)
  val buckets : t -> (int * int * int) list

  (** The worst-case relative error of {!quantile} below rank 1.0:
      [1/32]. *)
  val max_relative_error : float
end

(** Workload shape. All counts are per the whole run; [arrival] is
    evaluated once per client with the client's index (0-based) and must
    return a fresh inter-arrival-gap generator — the scenario layer wires
    {!Cni_experiments.Arrival} in here, keeping this library free of a
    dependency on the experiments layer. *)
type config = {
  clients : int;  (** client nodes (>= 1) *)
  servers : int;  (** server nodes (>= 1) *)
  requests_per_client : int;  (** open-loop requests each client issues (>= 1) *)
  arrival : int -> unit -> Cni_engine.Time.t;
      (** [arrival client] returns this client's gap generator; successive
          calls to the generator give successive inter-arrival gaps *)
  value_bytes : int;
      (** payload carried by a put request and a get response (>= 1);
          1024+ rides the NIC's bulk/DMA path *)
  put_pct : int;  (** percentage of requests that are puts, 0..100 *)
  seed : int;  (** seeds the per-client key/op draw streams *)
  service_cycles : int;
      (** host cycles a server spends computing each response (>= 0) *)
}

(** [validate c] explains every out-of-range field rather than raising; the
    scenario validator aggregates these. *)
val validate : config -> (unit, string list) Stdlib.result

(** Everything a serving run reports. Latency figures are microseconds of
    simulated time, measured from scheduled generation to response receipt;
    counter fields are summed over all nodes, mirroring
    {!Cni_experiments.Runner.result}. *)
type result = {
  requests : int;  (** requests issued ([clients * requests_per_client]) *)
  responses : int;  (** responses received (equal to [requests] on a drained run) *)
  gets : int;  (** get responses received *)
  puts : int;  (** put responses received *)
  elapsed_us : float;  (** simulated wall-clock of the whole run *)
  throughput_rps : float;  (** responses per simulated second *)
  mean_us : float;  (** mean response latency *)
  p50_us : float;  (** median response latency *)
  p99_us : float;  (** 99th-percentile response latency *)
  p999_us : float;  (** 99.9th-percentile response latency *)
  max_us : float;  (** exact worst response latency *)
  retransmits : int;  (** NIC-level re-sends (0 with reliability off) *)
  fault_drops : int;  (** frames destroyed by the fault model *)
  hop_waits : int;  (** multi-switch hops where contention delayed a frame *)
  host_interrupts : int;  (** host interrupts taken *)
  polls : int;  (** receive wakeups taken by a host poll *)
  wasted_polls : int;  (** empty ring checks while in poll mode *)
  hist : Hist.t;  (** the full latency distribution, nanosecond samples *)
}

(** [run ~nic_kind c] builds a [clients + servers]-node cluster, installs
    {!Cni_mp.Mp} endpoints, drives the open-loop workload to completion and
    collects the latency distribution plus fabric/NIC counters. Optional
    arguments are passed straight to {!Cni_cluster.Cluster.create}; note a
    faulty fabric enables NIC-level reliable delivery by default, which
    this workload's blocking receives rely on. [watchdog] (default 2
    simulated seconds) bounds the run; a hung run raises
    {!Cni_engine.Engine.Quiescence_timeout}.

    Deterministic: two runs with equal arguments produce identical results.
    @raise Invalid_argument when {!validate} rejects [c]. *)
val run :
  ?params:Cni_machine.Params.t ->
  ?faults:Cni_atm.Faults.config ->
  ?reliability:Cni_nic.Reliable.config ->
  ?topology:Cni_atm.Topology.kind ->
  ?watchdog:Cni_engine.Time.t ->
  nic_kind:Cni_cluster.Cluster.nic_kind ->
  config ->
  result
