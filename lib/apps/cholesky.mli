(** Parallel sparse Cholesky factorization (SPLASH): the paper's fine-grained
    benchmark.

    Right-looking supernodal factorization over distributed shared memory:
    processors draw ready supernodes from a shared {e bag of tasks}; a drawn
    supernode is factorized (cdiv) and its updates are applied to each later
    supernode it touches under that supernode's {e column lock}; a target
    whose last expected update has arrived is pushed into the bag. Factor
    pages migrate from releaser to acquirer, which is why receive caching
    helps this application the most, and one page holds many columns, so
    there is heavy concurrent write sharing (section 3.1). *)

type config = {
  matrix : Sparse.t;  (** lower-triangular SPD input *)
  cycles_per_flop : int;
  poll_backoff_cycles : int;  (** idle-worker poll spacing *)
}

val default_config : Sparse.t -> config

(** The paper's input matrices, substituted per DESIGN.md section 5. *)
val bcsstk14_like : unit -> Sparse.t

val bcsstk15_like : unit -> Sparse.t

type result = {
  checksum : float;  (** sum of |L| entries *)
  supernodes : int;
  fill_nnz : int;
  flops : int;
  values : float array;  (** the factored L values, for validation *)
}

val run : Cni_dsm.Protocol.msg Cni_cluster.Cluster.t -> Cni_dsm.Lrc.t array -> config -> result

(** Sequential reference factorization of the same structure (tests &
    speedup baselines that avoid simulating): returns the L values array. *)
val reference_factor : Sparse.t -> float array
