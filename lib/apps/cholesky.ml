module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node
module Lrc = Cni_dsm.Lrc
module Shmem = Cni_dsm.Shmem

type config = { matrix : Sparse.t; cycles_per_flop : int; poll_backoff_cycles : int }

let default_config matrix = { matrix; cycles_per_flop = 150; poll_backoff_cycles = 2000 }

(* The paper's Harwell-Boeing inputs, substituted by deterministic
   stiffness-style generators with matched order (DESIGN.md section 5). *)
let bcsstk14_like () = Sparse.stiffness_like ~n:1806 ~dofs:3 ~seed:14
let bcsstk15_like () = Sparse.stiffness_like ~n:3948 ~dofs:3 ~seed:15

type result = {
  checksum : float;
  supernodes : int;
  fill_nnz : int;
  flops : int;
  values : float array;  (* the factored L values (validation) *)
}

(* lock id space *)
let bag_lock = 1
let snode_lock s = 1000 + s

(* ------------------------------------------------------------------ *)
(* Static structure (computed identically on every node, read-only)    *)
(* ------------------------------------------------------------------ *)

type plan = {
  l : Sparse.t;  (* pattern of L, values zeroed *)
  starts : int array;  (* supernode starts, plus a sentinel n at the end *)
  nsuper : int;
  snode_of : int array;  (* column -> supernode *)
  targets : int array array;  (* supernode -> later supernodes it updates *)
  nmod0 : int array;  (* supernode -> number of contributing supernodes *)
}

let build_plan a =
  let l = Sparse.symbolic a in
  let starts0 = Sparse.supernodes l in
  let nsuper = Array.length starts0 in
  let starts = Array.append starts0 [| l.Sparse.n |] in
  let snode_of = Array.make l.Sparse.n 0 in
  for s = 0 to nsuper - 1 do
    for j = starts.(s) to starts.(s + 1) - 1 do
      snode_of.(j) <- s
    done
  done;
  let targets = Array.make nsuper [||] in
  let nmod0 = Array.make nsuper 0 in
  let seen = Array.make nsuper (-1) in
  for s = 0 to nsuper - 1 do
    let acc = ref [] in
    for j = starts.(s) to starts.(s + 1) - 1 do
      for p = l.Sparse.colptr.(j) to l.Sparse.colptr.(j + 1) - 1 do
        let i = l.Sparse.rowidx.(p) in
        if i >= starts.(s + 1) then begin
          let st = snode_of.(i) in
          if seen.(st) <> s then begin
            seen.(st) <- s;
            acc := st :: !acc
          end
        end
      done
    done;
    let arr = Array.of_list !acc in
    Array.sort compare arr;
    targets.(s) <- arr;
    Array.iter (fun st -> nmod0.(st) <- nmod0.(st) + 1) arr
  done;
  { l; starts; nsuper; snode_of; targets; nmod0 }

(* position of row [i] in column [j] of L, or -1 *)
let find_pos l j i =
  let lo = ref l.Sparse.colptr.(j) and hi = ref (l.Sparse.colptr.(j + 1) - 1) in
  let res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let r = l.Sparse.rowidx.(mid) in
    if r = i then begin
      res := mid;
      lo := !hi + 1
    end
    else if r < i then lo := mid + 1
    else hi := mid - 1
  done;
  !res

(* ------------------------------------------------------------------ *)
(* Numeric kernels over a value accessor                               *)
(* ------------------------------------------------------------------ *)

(* [get]/[set] index into the values of L. [map] is a row -> position scatter
   for the single column named by [cur] (-1 = none); there is exactly one
   scattered column at a time, so a stale entry can never be read. Returns
   flops. *)
let cmod_column l ~get ~set ~map ~cur ~j ~k =
  (* update column k with column j (j < k, k in Struct(j)) *)
  let pkj = find_pos l j k in
  if pkj < 0 then 0
  else begin
    if !cur <> k then begin
      for q = l.Sparse.colptr.(k) to l.Sparse.colptr.(k + 1) - 1 do
        map.(l.Sparse.rowidx.(q)) <- q
      done;
      cur := k
    end;
    let fkj = get pkj in
    let stop = l.Sparse.colptr.(j + 1) - 1 in
    for p = pkj to stop do
      let i = l.Sparse.rowidx.(p) in
      let q = map.(i) in
      set q (get q -. (get p *. fkj))
    done;
    2 * (stop - pkj + 1)
  end

let cdiv_supernode plan ~get ~set ~map ~cur ~s =
  let l = plan.l in
  let flops = ref 0 in
  for j = plan.starts.(s) to plan.starts.(s + 1) - 1 do
    (* internal left-looking updates from the supernode's earlier columns *)
    for jj = plan.starts.(s) to j - 1 do
      flops := !flops + cmod_column l ~get ~set ~map ~cur ~j:jj ~k:j
    done;
    let pj = l.Sparse.colptr.(j) in
    let d = sqrt (get pj) in
    set pj d;
    for p = pj + 1 to l.Sparse.colptr.(j + 1) - 1 do
      set p (get p /. d)
    done;
    flops := !flops + (2 * (l.Sparse.colptr.(j + 1) - pj))
  done;
  !flops

let cmod_supernode plan ~get ~set ~map ~cur ~s ~st =
  let l = plan.l in
  let flops = ref 0 in
  for k = plan.starts.(st) to plan.starts.(st + 1) - 1 do
    for j = plan.starts.(s) to plan.starts.(s + 1) - 1 do
      flops := !flops + cmod_column l ~get ~set ~map ~cur ~j ~k
    done
  done;
  !flops

(* ------------------------------------------------------------------ *)
(* Sequential reference                                                *)
(* ------------------------------------------------------------------ *)

let reference_factor a =
  let plan = build_plan a in
  let l = plan.l in
  let values = Array.make (Sparse.nnz l) 0.0 in
  (* scatter A into the L pattern *)
  for j = 0 to a.Sparse.n - 1 do
    for p = a.Sparse.colptr.(j) to a.Sparse.colptr.(j + 1) - 1 do
      let q = find_pos l j a.Sparse.rowidx.(p) in
      values.(q) <- a.Sparse.values.(p)
    done
  done;
  let get p = values.(p) and set p v = values.(p) <- v in
  let map = Array.make l.Sparse.n 0 and cur = ref (-1) in
  for s = 0 to plan.nsuper - 1 do
    ignore (cdiv_supernode plan ~get ~set ~map ~cur ~s);
    Array.iter
      (fun st -> ignore (cmod_supernode plan ~get ~set ~map ~cur ~s ~st))
      plan.targets.(s)
  done;
  values

(* ------------------------------------------------------------------ *)
(* Parallel run                                                        *)
(* ------------------------------------------------------------------ *)

(* shared bag layout in an Iarray: [0] head, [1] tail, [2] ndone, tasks
   from slot 3 *)
let bag_head = 0

and bag_tail = 1

and bag_ndone = 2

and bag_slots = 3

let run cluster lrcs config =
  let a = config.matrix in
  let procs = Cluster.size cluster in
  let space = Lrc.space lrcs.(0) in
  let plan = build_plan a in
  let l = plan.l in
  let n = l.Sparse.n in
  let lnnz = Sparse.nnz l in
  let values = Shmem.Farray.create space ~len:lnnz in
  let nmod = Shmem.Iarray.create space ~len:plan.nsuper in
  let bag = Shmem.Iarray.create space ~len:(bag_slots + plan.nsuper) in
  let flops_per_proc = Array.make procs 0 in
  let checksum = ref 0.0 in
  (* every supernode must be factorized exactly once *)
  let processed = Array.make plan.nsuper 0 in
  Cluster.run_app cluster (fun node ->
      let me = Node.id node in
      let lrc = lrcs.(me) in
      (* first-touch distribution: supernode s initialised by proc s mod P *)
      for s = 0 to plan.nsuper - 1 do
        if s mod procs = me then begin
          let vlo = l.Sparse.colptr.(plan.starts.(s)) in
          let vhi = l.Sparse.colptr.(plan.starts.(s + 1)) in
          Shmem.Farray.init_local lrc values ~lo:vlo ~len:(vhi - vlo) (fun _ -> 0.0);
          for j = plan.starts.(s) to plan.starts.(s + 1) - 1 do
            for p = a.Sparse.colptr.(j) to a.Sparse.colptr.(j + 1) - 1 do
              let q = find_pos l j a.Sparse.rowidx.(p) in
              Shmem.Farray.set values q a.Sparse.values.(p)
            done
          done;
          Shmem.Iarray.init_local lrc nmod ~lo:s ~len:1 (fun s -> plan.nmod0.(s))
        end
      done;
      if me = 0 then begin
        (* seed the bag with the leaves *)
        Shmem.Iarray.init_local lrc bag ~lo:0 ~len:(bag_slots + plan.nsuper) (fun _ -> 0);
        let tail = ref 0 in
        for s = 0 to plan.nsuper - 1 do
          if plan.nmod0.(s) = 0 then begin
            Shmem.Iarray.set bag (bag_slots + !tail) s;
            incr tail
          end
        done;
        Shmem.Iarray.set bag bag_tail !tail
      end;
      Lrc.barrier lrc ~id:0;
      let map = Array.make n 0 and cur = ref (-1) in
      let get p = Shmem.Farray.get values p and set p v = Shmem.Farray.set values p v in
      let my_flops = ref 0 in
      (* value range of a supernode (contiguous in CSC order) *)
      let range s =
        let vlo = l.Sparse.colptr.(plan.starts.(s)) in
        (vlo, l.Sparse.colptr.(plan.starts.(s + 1)) - vlo)
      in
      let pop () =
        Lrc.acquire lrc ~lock:bag_lock;
        Shmem.Iarray.read_range lrc bag ~lo:0 ~len:bag_slots;
        let head = Shmem.Iarray.get bag bag_head and tail = Shmem.Iarray.get bag bag_tail in
        let task =
          if head < tail then begin
            Shmem.Iarray.read_range lrc bag ~lo:(bag_slots + head) ~len:1;
            let s = Shmem.Iarray.get bag (bag_slots + head) in
            Shmem.Iarray.write_range lrc bag ~lo:bag_head ~len:1;
            Shmem.Iarray.set bag bag_head (head + 1);
            Some s
          end
          else None
        in
        let done_count = Shmem.Iarray.get bag bag_ndone in
        Node.work node 50;
        Lrc.release lrc ~lock:bag_lock;
        (task, done_count)
      in
      let push s =
        Lrc.acquire lrc ~lock:bag_lock;
        Shmem.Iarray.read_range lrc bag ~lo:bag_tail ~len:1;
        let tail = Shmem.Iarray.get bag bag_tail in
        Shmem.Iarray.write_range lrc bag ~lo:(bag_slots + tail) ~len:1;
        Shmem.Iarray.set bag (bag_slots + tail) s;
        Shmem.Iarray.write_range lrc bag ~lo:bag_tail ~len:1;
        Shmem.Iarray.set bag bag_tail (tail + 1);
        Node.work node 50;
        Lrc.release lrc ~lock:bag_lock
      in
      let mark_done () =
        Lrc.acquire lrc ~lock:bag_lock;
        Shmem.Iarray.read_range lrc bag ~lo:bag_ndone ~len:1;
        Shmem.Iarray.write_range lrc bag ~lo:bag_ndone ~len:1;
        Shmem.Iarray.set bag bag_ndone (Shmem.Iarray.get bag bag_ndone + 1);
        Node.work node 30;
        Lrc.release lrc ~lock:bag_lock
      in
      let process s =
        processed.(s) <- processed.(s) + 1;
        if processed.(s) > 1 then
          failwith (Printf.sprintf "Cholesky: supernode %d processed %d times" s processed.(s));
        (* the supernode has received every external update: factorize it *)
        Lrc.acquire lrc ~lock:(snode_lock s);
        let vlo, vlen = range s in
        Shmem.Farray.read_range lrc values ~lo:vlo ~len:vlen;
        Shmem.Farray.write_range lrc values ~lo:vlo ~len:vlen;
        let f = cdiv_supernode plan ~get ~set ~map ~cur ~s in
        Node.work node (f * config.cycles_per_flop);
        my_flops := !my_flops + f;
        Lrc.release lrc ~lock:(snode_lock s);
        (* propagate to the later supernodes this one touches *)
        Array.iter
          (fun st ->
            Lrc.acquire lrc ~lock:(snode_lock st);
            let tlo, tlen = range st in
            Shmem.Farray.read_range lrc values ~lo:vlo ~len:vlen;
            Shmem.Farray.read_range lrc values ~lo:tlo ~len:tlen;
            Shmem.Farray.write_range lrc values ~lo:tlo ~len:tlen;
            let f = cmod_supernode plan ~get ~set ~map ~cur ~s ~st in
            Node.work node (f * config.cycles_per_flop);
            my_flops := !my_flops + f;
            Shmem.Iarray.read_range lrc nmod ~lo:st ~len:1;
            Shmem.Iarray.write_range lrc nmod ~lo:st ~len:1;
            let remaining = Shmem.Iarray.get nmod st - 1 in
            Shmem.Iarray.set nmod st remaining;
            if remaining = 0 then push st;
            Lrc.release lrc ~lock:(snode_lock st))
          plan.targets.(s);
        mark_done ()
      in
      let backoff = ref config.poll_backoff_cycles in
      let finished = ref false in
      while not !finished do
        match pop () with
        | Some s, _ ->
            backoff := config.poll_backoff_cycles;
            process s
        | None, done_count ->
            if done_count >= plan.nsuper then finished := true
            else begin
              Node.work node !backoff;
              backoff := min (!backoff * 2) (config.poll_backoff_cycles * 16)
            end
      done;
      Lrc.barrier lrc ~id:1;
      flops_per_proc.(me) <- !my_flops;
      if me = 0 then begin
        let s = ref 0.0 in
        for p = 0 to lnnz - 1 do
          s := !s +. abs_float (Shmem.Farray.get values p)
        done;
        checksum := !s
      end);
  {
    checksum = !checksum;
    supernodes = plan.nsuper;
    fill_nnz = lnnz;
    flops = Array.fold_left ( + ) 0 flops_per_proc;
    values = Array.init lnnz (fun p -> Shmem.Farray.get values p);
  }
