module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node
module Lrc = Cni_dsm.Lrc
module Shmem = Cni_dsm.Shmem

type config = { n : int; iterations : int; cycles_per_point : int; warmup_iterations : int }

let default_config = { n = 128; iterations = 8; cycles_per_point = 12; warmup_iterations = 2 }

type result = { checksum : float; iterations_done : int }

(* Deterministic interior initial value. *)
let initial n i j =
  if i = 0 || j = 0 || i = n - 1 || j = n - 1 then
    (* fixed boundary *)
    1.0 +. (float_of_int ((i * 31) + (j * 17) mod 97) /. 97.0)
  else 0.0

let run ?watchdog cluster lrcs config =
  let { n; iterations; cycles_per_point; warmup_iterations } = config in
  let procs = Cluster.size cluster in
  let space = Lrc.space lrcs.(0) in
  let a = Shmem.Farray.create space ~len:(n * n) in
  let b = Shmem.Farray.create space ~len:(n * n) in
  let checksum = ref 0.0 in
  Cluster.run_app ?watchdog cluster (fun node ->
      let me = Node.id node in
      let lrc = lrcs.(me) in
      let lo, hi = Partition.range ~items:n ~procs ~me in
      let rows = hi - lo in
      (* first-touch initialisation of both planes on the owner strip *)
      Shmem.Farray.init_local lrc a ~lo:(lo * n) ~len:(rows * n) (fun k ->
          initial n (k / n) (k mod n));
      Shmem.Farray.init_local lrc b ~lo:(lo * n) ~len:(rows * n) (fun k ->
          initial n (k / n) (k mod n));
      Lrc.barrier lrc ~id:0;
      let cur = ref a and nxt = ref b in
      for iter = 1 to iterations do
        (* a long production run amortises its cold Message Cache misses;
           report the steady-state hit ratio by resetting the counters after
           the warm-up iterations (time accounting is untouched) *)
        if iter = warmup_iterations + 1 && me = 0 then
          Array.iter
            (fun nd ->
              Option.iter Cni_nic.Message_cache.reset_stats
                (Cni_nic.Nic.message_cache (Node.nic nd)))
            (Cluster.nodes cluster);
        let src = !cur and dst = !nxt in
        (* declare the strip we read (own rows plus the two boundary rows of
           the neighbours) and the strip we write *)
        let rlo = max 0 (lo - 1) and rhi = min n (hi + 1) in
        Shmem.Farray.read_range lrc src ~lo:(rlo * n) ~len:((rhi - rlo) * n);
        let wlo = max 1 lo and whi = min (n - 1) hi in
        if whi > wlo then begin
          Shmem.Farray.write_range lrc dst ~lo:(wlo * n) ~len:((whi - wlo) * n);
          for i = wlo to whi - 1 do
            let base = i * n in
            for j = 1 to n - 2 do
              let v =
                0.25
                *. (Shmem.Farray.get src (base - n + j)
                   +. Shmem.Farray.get src (base + n + j)
                   +. Shmem.Farray.get src (base + j - 1)
                   +. Shmem.Farray.get src (base + j + 1))
              in
              Shmem.Farray.set dst (base + j) v
            done;
            Node.work node ((n - 2) * cycles_per_point)
          done
        end;
        (* synchronisation point 1: the new plane is complete *)
        Lrc.barrier lrc ~id:0;
        (* plane swap; synchronisation point 2 *)
        let tmp = !cur in
        cur := !nxt;
        nxt := tmp;
        Lrc.barrier lrc ~id:1
      done;
      (* checksum of the final plane, each node over its strip, combined by
         node 0 through shared memory would add traffic; validation uses the
         authoritative data directly on node 0 *)
      if me = 0 then begin
        let final = if iterations mod 2 = 0 then a else b in
        let s = ref 0.0 in
        for k = 0 to (n * n) - 1 do
          s := !s +. Shmem.Farray.get final k
        done;
        checksum := !s
      end)
  |> ignore;
  { checksum = !checksum; iterations_done = iterations }
