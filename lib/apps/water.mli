(** Water (SPLASH): the paper's medium-grained benchmark.

    N molecules; every step computes intra- and inter-molecular forces
    (O(N^2/2) pairwise interactions, each proc owning a block of molecules),
    then updates the molecular parameters. As in the paper (following Cox et
    al.), updates are postponed to the end of the iteration: each processor
    accumulates its pairwise contributions privately and then adds them to
    the shared force array under one lock per molecule; barriers separate the
    phases. Positions are read by everyone and rewritten by their owners each
    step, so the network cache hit ratio is sensitive to the number of
    processors (the sharing pattern is much richer than Jacobi's). *)

type config = {
  molecules : int;  (** 64 / 216 / 343 in the paper *)
  steps : int;  (** 2 in the paper *)
  cycles_per_pair : int;  (** CPU cost of one pairwise interaction *)
  cycles_per_update : int;  (** CPU cost of integrating one molecule *)
  doubles_per_molecule : int;
      (** width of a molecule record. SPLASH Water keeps predictor-corrector
          state per atom (tens of doubles per molecule); the record width
          drives page traffic and the false sharing of figure 9. Must be at
          least 9 (position, velocity, force). *)
}

val default_config : config

type result = { checksum : float (* sum of final positions *); steps_done : int }

val run : Cni_dsm.Protocol.msg Cni_cluster.Cluster.t -> Cni_dsm.Lrc.t array -> config -> result
