(* Open-loop key-value serving. Servers occupy node ids [0..servers-1] so a
   key routes with one mod; each client node runs two fibers — a sender
   pacing requests at precomputed arrival times and the main fiber draining
   responses — which is what makes the loop open: the recv side falling
   behind never slows the send side down. *)

module Time = Cni_engine.Time
module Rng = Cni_engine.Rng
module Engine = Cni_engine.Engine
module Fabric = Cni_atm.Fabric
module Nic = Cni_nic.Nic
module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node
module Mp = Cni_mp.Mp

module Hist = struct
  (* sub_bits = 5: 32 sub-buckets per power-of-two octave. Values < 32 are
     their own bucket (exact); above that, bucket [b*32 + s] (b >= 1)
     covers [(32+s) << (b-1) .. (32+s+1) << (b-1) - 1], width 1/32 of the
     value — constant relative error. 62-bit values top out at index
     58*32 + 31, so 1920 buckets cover every OCaml int. *)
  let sub = 32
  let max_relative_error = 1. /. float_of_int sub
  let nbuckets = 1920

  type t = {
    counts : int array;
    mutable count : int;
    mutable sum : int;
    mutable min_v : int;
    mutable max_v : int;
  }

  let create () =
    { counts = Array.make nbuckets 0; count = 0; sum = 0; min_v = max_int; max_v = 0 }

  let msb v =
    let k = ref 0 in
    let x = ref v in
    while !x > 1 do
      incr k;
      x := !x lsr 1
    done;
    !k

  let index v = if v < sub then v else let k = msb v in ((k - 4) * sub) + (v lsr (k - 5)) - sub

  let bucket_bounds idx =
    if idx < sub then (idx, idx)
    else
      let b = idx / sub and s = idx mod sub in
      let shift = b - 1 in
      let lo = (sub + s) lsl shift in
      (lo, lo + (1 lsl shift) - 1)

  let observe t v =
    let v = if v < 0 then 0 else v in
    t.counts.(index v) <- t.counts.(index v) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum + v;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v

  let count t = t.count
  let min_value t = if t.count = 0 then 0 else t.min_v
  let max_value t = t.max_v
  let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count

  let quantile t q =
    if t.count = 0 then 0
    else begin
      let rank =
        let r = int_of_float (Float.ceil (q *. float_of_int t.count)) in
        Stdlib.min t.count (Stdlib.max 1 r)
      in
      let idx = ref 0 and cum = ref 0 in
      while !cum < rank do
        cum := !cum + t.counts.(!idx);
        incr idx
      done;
      let _, hi = bucket_bounds (!idx - 1) in
      Stdlib.min hi t.max_v
    end

  let buckets t =
    let acc = ref [] in
    for idx = nbuckets - 1 downto 0 do
      if t.counts.(idx) > 0 then
        let lo, hi = bucket_bounds idx in
        acc := (lo, hi, t.counts.(idx)) :: !acc
    done;
    !acc
end

type config = {
  clients : int;
  servers : int;
  requests_per_client : int;
  arrival : int -> unit -> Time.t;
  value_bytes : int;
  put_pct : int;
  seed : int;
  service_cycles : int;
}

type result = {
  requests : int;
  responses : int;
  gets : int;
  puts : int;
  elapsed_us : float;
  throughput_rps : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  max_us : float;
  retransmits : int;
  fault_drops : int;
  hop_waits : int;
  host_interrupts : int;
  polls : int;
  wasted_polls : int;
  hist : Hist.t;
}

let validate c =
  let errs = ref [] in
  let bad fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  if c.clients < 1 then bad "clients must be >= 1 (got %d)" c.clients;
  if c.servers < 1 then bad "servers must be >= 1 (got %d)" c.servers;
  if c.requests_per_client < 1 then
    bad "requests-per-client must be >= 1 (got %d)" c.requests_per_client;
  if c.value_bytes < 1 then bad "value-bytes must be >= 1 (got %d)" c.value_bytes;
  if c.put_pct < 0 || c.put_pct > 100 then
    bad "put-pct must be within 0..100 (got %d)" c.put_pct;
  if c.service_cycles < 0 then bad "service-cycles must be >= 0 (got %d)" c.service_cycles;
  if !errs = [] then Ok () else Error (List.rev !errs)

type op = Get | Put

type msg =
  | Request of { op : op; key : int; gen_ps : int }
  | Response of { op : op; gen_ps : int }
  | Stop

let req_tag = 1
let resp_tag = 2

(* A get request / put response carries only a key header on the wire; the
   value payload rides the other direction. *)
let header_bytes = 32

let run ?params ?faults ?reliability ?topology ?(watchdog = Time.s 2) ~nic_kind c =
  (match validate c with
  | Ok () -> ()
  | Error errs -> invalid_arg ("Kv_serve.run: " ^ String.concat "; " errs));
  let nodes = c.clients + c.servers in
  let cluster = Cluster.create ?params ?faults ?reliability ?topology ~nic_kind ~nodes () in
  let eps : msg Mp.t array = Mp.install cluster in
  let keyspace = 64 * c.servers in
  let hist = Hist.create () in
  let responses = ref 0 and gets = ref 0 and puts = ref 0 in
  Cluster.run_app ~watchdog cluster (fun node ->
      let id = Node.id node in
      let ep = eps.(id) in
      let eng = Node.engine node in
      if id < c.servers then begin
        (* server: serve until every client said Stop *)
        let stopped = ref 0 in
        while !stopped < c.clients do
          let e = Mp.recv ep ~tag:req_tag () in
          match e.Mp.value with
          | Request { op; key = _; gen_ps } ->
              Node.work node c.service_cycles;
              let bytes = match op with Get -> c.value_bytes | Put -> header_bytes in
              Mp.send ep ~dst:e.Mp.src ~tag:resp_tag ~bytes (Response { op; gen_ps })
          | Stop -> incr stopped
          | Response _ -> ()
        done
      end
      else begin
        let client = id - c.servers in
        let gap = c.arrival client in
        let rng = Rng.create ~seed:(c.seed + (7919 * (client + 1))) in
        (* sender fiber: requests leave at their scheduled arrival times
           regardless of how far behind the responses are (open loop). The
           stamp is the scheduled time, so any client-side sending stall is
           charged to the requests it delays. *)
        Engine.spawn eng ~name:(Printf.sprintf "kv-client-%d-tx" client) (fun () ->
            let sched = ref Time.zero in
            for _ = 1 to c.requests_per_client do
              sched := Time.( + ) !sched (gap ());
              let now = Engine.now eng in
              if Time.to_ps !sched > Time.to_ps now then
                Engine.delay (Time.( - ) !sched now);
              let key = Rng.int rng keyspace in
              let op = if Rng.int rng 100 < c.put_pct then Put else Get in
              let bytes = match op with Put -> c.value_bytes | Get -> header_bytes in
              Mp.send ep ~dst:(key mod c.servers) ~tag:req_tag ~bytes
                (Request { op; key; gen_ps = Time.to_ps !sched })
            done);
        for _ = 1 to c.requests_per_client do
          let e = Mp.recv ep ~tag:resp_tag () in
          match e.Mp.value with
          | Response { op; gen_ps } ->
              let lat_ps = Time.to_ps (Engine.now eng) - gen_ps in
              Hist.observe hist (lat_ps / 1000);
              incr responses;
              (match op with Get -> incr gets | Put -> incr puts)
          | Request _ | Stop -> ()
        done;
        for s = 0 to c.servers - 1 do
          Mp.send ep ~dst:s ~tag:req_tag Stop
        done
      end);
  let elapsed = Cluster.elapsed cluster in
  let f = Fabric.stats (Cluster.fabric cluster) in
  let sum_nic field =
    let acc = ref 0 in
    for n = 0 to nodes - 1 do
      acc := !acc + field (Nic.stats (Node.nic (Cluster.node cluster n)))
    done;
    !acc
  in
  let q p = float_of_int (Hist.quantile hist p) /. 1e3 in
  {
    requests = c.clients * c.requests_per_client;
    responses = !responses;
    gets = !gets;
    puts = !puts;
    elapsed_us = Time.to_us_float elapsed;
    throughput_rps =
      (if Time.to_ps elapsed = 0 then 0.
       else float_of_int !responses /. Time.to_s_float elapsed);
    mean_us = Hist.mean hist /. 1e3;
    p50_us = q 0.5;
    p99_us = q 0.99;
    p999_us = q 0.999;
    max_us = float_of_int (Hist.max_value hist) /. 1e3;
    retransmits = Cluster.retransmits cluster;
    fault_drops =
      (let fab = Cluster.fabric cluster in
       let acc = ref 0 in
       for n = 0 to nodes - 1 do
         acc := !acc + Fabric.fault_drops fab ~node:n
       done;
       !acc);
    hop_waits = f.Fabric.hop_waits;
    host_interrupts = sum_nic (fun s -> s.Nic.interrupts);
    polls = sum_nic (fun s -> s.Nic.polls);
    wasted_polls = sum_nic (fun s -> s.Nic.wasted_polls);
    hist;
  }
