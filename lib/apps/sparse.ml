type t = { n : int; colptr : int array; rowidx : int array; values : float array }

let nnz t = t.colptr.(t.n)

let validate t =
  if Array.length t.colptr <> t.n + 1 then invalid_arg "Sparse: colptr length";
  if t.colptr.(0) <> 0 then invalid_arg "Sparse: colptr.(0)";
  for j = 0 to t.n - 1 do
    if t.colptr.(j + 1) < t.colptr.(j) then invalid_arg "Sparse: colptr not monotone";
    if t.colptr.(j + 1) = t.colptr.(j) then invalid_arg "Sparse: empty column";
    if t.rowidx.(t.colptr.(j)) <> j then invalid_arg "Sparse: diagonal not first";
    for p = t.colptr.(j) + 1 to t.colptr.(j + 1) - 1 do
      if t.rowidx.(p) <= t.rowidx.(p - 1) then invalid_arg "Sparse: rows not increasing";
      if t.rowidx.(p) >= t.n then invalid_arg "Sparse: row out of range"
    done
  done;
  if Array.length t.rowidx < nnz t || Array.length t.values < nnz t then
    invalid_arg "Sparse: short arrays"

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let stiffness_like ~n ~dofs ~seed =
  if n < 1 || dofs < 1 then invalid_arg "Sparse.stiffness_like";
  let nodes = (n + dofs - 1) / dofs in
  let g = int_of_float (ceil (sqrt (float_of_int nodes))) in
  let node_of u = u / dofs in
  let coords nd = (nd / g, nd mod g) in
  (* deterministic small hash for values *)
  let h i j = float_of_int (1 + (((i * 2654435761) + (j * 40503) + seed) land 7)) *. -0.05 in
  let rowsum = Array.make n 0.0 in
  (* collect strictly-lower entries per column *)
  let cols = Array.make n [] in
  let add_entry i j =
    (* i > j *)
    let v = h i j in
    cols.(j) <- (i, v) :: cols.(j);
    rowsum.(i) <- rowsum.(i) +. abs_float v;
    rowsum.(j) <- rowsum.(j) +. abs_float v
  in
  for j = 0 to n - 1 do
    let nj = node_of j in
    let r, c = coords nj in
    (* couple to the same node's later dofs and the 8 neighbour nodes *)
    for dr = 0 to 1 do
      for dc = -1 to 1 do
        if not (dr = 0 && dc < 0) then begin
          let r' = r + dr and c' = c + dc in
          if r' >= 0 && r' < g && c' >= 0 && c' < g then begin
            let nd' = (r' * g) + c' in
            if nd' >= nj then
              for d = 0 to dofs - 1 do
                let i = (nd' * dofs) + d in
                if i > j && i < n then add_entry i j
              done
          end
        end
      done
    done
  done;
  let counts = Array.map List.length cols in
  let colptr = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    colptr.(j + 1) <- colptr.(j) + 1 + counts.(j)
  done;
  let total = colptr.(n) in
  let rowidx = Array.make total 0 in
  let values = Array.make total 0.0 in
  for j = 0 to n - 1 do
    let p = colptr.(j) in
    rowidx.(p) <- j;
    values.(p) <- rowsum.(j) +. 1.0;
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) cols.(j) in
    List.iteri
      (fun k (i, v) ->
        rowidx.(p + 1 + k) <- i;
        values.(p + 1 + k) <- v)
      sorted
  done;
  let t = { n; colptr; rowidx; values } in
  validate t;
  t

(* ------------------------------------------------------------------ *)
(* Elimination tree (Liu's algorithm with path compression)            *)
(* ------------------------------------------------------------------ *)

let etree t =
  let n = t.n in
  let parent = Array.make n (-1) in
  let ancestor = Array.make n (-1) in
  (* entries (i, k) with k < i are exactly the strictly-lower entries of
     column k; walk them grouped by row i in increasing i *)
  let rows = Array.make n [] in
  for k = 0 to n - 1 do
    for p = t.colptr.(k) + 1 to t.colptr.(k + 1) - 1 do
      let i = t.rowidx.(p) in
      rows.(i) <- k :: rows.(i)
    done
  done;
  for i = 0 to n - 1 do
    List.iter
      (fun k ->
        let r = ref k in
        let continue = ref true in
        while !continue do
          if ancestor.(!r) = -1 || ancestor.(!r) = i then continue := false
          else begin
            let next = ancestor.(!r) in
            ancestor.(!r) <- i;
            r := next
          end
        done;
        if ancestor.(!r) = -1 then begin
          ancestor.(!r) <- i;
          parent.(!r) <- i
        end)
      rows.(i)
  done;
  parent

(* ------------------------------------------------------------------ *)
(* Symbolic factorization                                              *)
(* ------------------------------------------------------------------ *)

let symbolic t =
  let n = t.n in
  let parent = etree t in
  let children = Array.make n [] in
  for j = n - 1 downto 0 do
    if parent.(j) >= 0 then children.(parent.(j)) <- j :: children.(parent.(j))
  done;
  let marker = Array.make n (-1) in
  let patterns = Array.make n [||] in
  for j = 0 to n - 1 do
    (* Struct(L_j) = Struct(A_j) U (union over children c of Struct(L_c) \ {c}) *)
    marker.(j) <- j;
    let acc = ref [ j ] in
    let count = ref 1 in
    let visit i =
      if i > j && marker.(i) <> j then begin
        marker.(i) <- j;
        acc := i :: !acc;
        incr count
      end
    in
    for p = t.colptr.(j) + 1 to t.colptr.(j + 1) - 1 do
      visit t.rowidx.(p)
    done;
    List.iter (fun c -> Array.iter visit patterns.(c)) children.(j);
    let arr = Array.of_list !acc in
    Array.sort compare arr;
    patterns.(j) <- arr
  done;
  let colptr = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    colptr.(j + 1) <- colptr.(j) + Array.length patterns.(j)
  done;
  let total = colptr.(n) in
  let rowidx = Array.make total 0 in
  let values = Array.make total 0.0 in
  for j = 0 to n - 1 do
    Array.blit patterns.(j) 0 rowidx colptr.(j) (Array.length patterns.(j))
  done;
  let l = { n; colptr; rowidx; values } in
  validate l;
  l

(* ------------------------------------------------------------------ *)
(* Supernodes                                                          *)
(* ------------------------------------------------------------------ *)

let supernodes l =
  let n = l.n in
  let parent = etree l in
  let nchildren = Array.make n 0 in
  Array.iter (fun p -> if p >= 0 then nchildren.(p) <- nchildren.(p) + 1) parent;
  let col_len j = l.colptr.(j + 1) - l.colptr.(j) in
  let starts = ref [ 0 ] in
  for j = 1 to n - 1 do
    let fused =
      parent.(j - 1) = j && nchildren.(j) = 1 && col_len (j - 1) = col_len j + 1
    in
    if not fused then starts := j :: !starts
  done;
  Array.of_list (List.rev !starts)

(* ------------------------------------------------------------------ *)
(* Dense views (tests)                                                 *)
(* ------------------------------------------------------------------ *)

let to_dense t =
  let d = Array.make_matrix t.n t.n 0.0 in
  for j = 0 to t.n - 1 do
    for p = t.colptr.(j) to t.colptr.(j + 1) - 1 do
      d.(t.rowidx.(p)).(j) <- t.values.(p)
    done
  done;
  d

let to_dense_symmetric t =
  let d = to_dense t in
  for i = 0 to t.n - 1 do
    for j = 0 to i - 1 do
      d.(j).(i) <- d.(i).(j)
    done
  done;
  d

(* ------------------------------------------------------------------ *)
(* Orderings                                                           *)
(* ------------------------------------------------------------------ *)

let bandwidth t =
  let bw = ref 0 in
  for j = 0 to t.n - 1 do
    for p = t.colptr.(j) to t.colptr.(j + 1) - 1 do
      if t.rowidx.(p) - j > !bw then bw := t.rowidx.(p) - j
    done
  done;
  !bw

(* adjacency lists of the symmetric pattern, diagonal excluded *)
let adjacency t =
  let adj = Array.make t.n [] in
  for j = 0 to t.n - 1 do
    for p = t.colptr.(j) + 1 to t.colptr.(j + 1) - 1 do
      let i = t.rowidx.(p) in
      adj.(i) <- j :: adj.(i);
      adj.(j) <- i :: adj.(j)
    done
  done;
  adj

let permute t ~perm =
  if Array.length perm <> t.n then invalid_arg "Sparse.permute: wrong length";
  let inv = Array.make t.n (-1) in
  Array.iteri
    (fun new_i old_i ->
      if old_i < 0 || old_i >= t.n || inv.(old_i) <> -1 then
        invalid_arg "Sparse.permute: not a permutation";
      inv.(old_i) <- new_i)
    perm;
  (* collect entries under the new labels, kept in the lower triangle *)
  let cols = Array.make t.n [] in
  let diag = Array.make t.n 0.0 in
  for j = 0 to t.n - 1 do
    for p = t.colptr.(j) to t.colptr.(j + 1) - 1 do
      let i = t.rowidx.(p) and v = t.values.(p) in
      let ni = inv.(i) and nj = inv.(j) in
      if ni = nj then diag.(ni) <- v
      else begin
        let r = Stdlib.max ni nj and c = Stdlib.min ni nj in
        cols.(c) <- (r, v) :: cols.(c)
      end
    done
  done;
  let colptr = Array.make (t.n + 1) 0 in
  for j = 0 to t.n - 1 do
    colptr.(j + 1) <- colptr.(j) + 1 + List.length cols.(j)
  done;
  let rowidx = Array.make colptr.(t.n) 0 in
  let values = Array.make colptr.(t.n) 0.0 in
  for j = 0 to t.n - 1 do
    let p = colptr.(j) in
    rowidx.(p) <- j;
    values.(p) <- diag.(j);
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) cols.(j) in
    List.iteri
      (fun k (i, v) ->
        rowidx.(p + 1 + k) <- i;
        values.(p + 1 + k) <- v)
      sorted
  done;
  let t' = { n = t.n; colptr; rowidx; values } in
  validate t';
  t'

let rcm t =
  let adj = adjacency t in
  let adj = Array.map (List.sort_uniq compare) adj in
  let degree = Array.map List.length adj in
  let visited = Array.make t.n false in
  let order = ref [] in
  let count = ref 0 in
  (* BFS from [root] in increasing-degree neighbour order; optionally record
     the visitation; returns the distance labelling *)
  let bfs ~record root =
    let dist = Array.make t.n (-1) in
    let q = Queue.create () in
    dist.(root) <- 0;
    Queue.add root q;
    while not (Queue.is_empty q) do
      let v = Queue.take q in
      if record then begin
        order := v :: !order;
        visited.(v) <- true;
        incr count
      end;
      let neighbours = List.sort (fun a b -> compare degree.(a) degree.(b)) adj.(v) in
      List.iter
        (fun u ->
          if dist.(u) = -1 && not visited.(u) then begin
            dist.(u) <- dist.(v) + 1;
            Queue.add u q
          end)
        neighbours
    done;
    dist
  in
  (* pseudo-peripheral vertex: the minimum-degree vertex of the farthest BFS
     level, iterated twice (the George-Liu heuristic) *)
  let farthest dist =
    let maxd = Array.fold_left Stdlib.max 0 dist in
    let best = ref (-1) in
    Array.iteri
      (fun v d ->
        if d = maxd && (!best = -1 || degree.(v) < degree.(!best)) then best := v)
      dist;
    !best
  in
  let peripheral root =
    let r1 = farthest (bfs ~record:false root) in
    farthest (bfs ~record:false r1)
  in
  (* cover all components *)
  let start = ref 0 in
  while !count < t.n do
    while !start < t.n && visited.(!start) do
      incr start
    done;
    if !start < t.n then ignore (bfs ~record:true (peripheral !start))
  done;
  (* Cuthill-McKee order was collected newest-first in [order]; reading the
     list front-to-back therefore yields the REVERSE Cuthill-McKee order *)
  Array.of_list !order
