(** Named scenario profiles: one value that pins everything a serving run
    depends on — cluster shape, interconnect topology, NIC kind and receive
    policy, workload (arrival process, mix, sizes), and fault model — with
    a text form you can version, diff and hand to [cni_sim scenario].

    A profile is deliberately {e complete}: two invocations of {!run} on
    equal profiles produce byte-identical metrics, because every random
    stream in the stack (arrival gaps, key/op draws, fault coin-flips) is
    seeded from the profile's fields. docs/SCENARIOS.md is the cookbook:
    the grammar, every built-in, and how to read the tail-latency report. *)

(** Which network interface the cluster's nodes carry. *)
type nic = Cni | Osiris | Standard

(** Receive-side policy for the CNI board ({!Cni_nic.Nic.rx_policy};
    [Adaptive] uses {!Cni_nic.Nic.default_rx_adaptive}). Ignored by the
    [Osiris] and [Standard] interfaces, which have fixed receive paths. *)
type rx = Interrupt | Poll | Hybrid | Adaptive

(** The complete recipe for one serving run. *)
type profile = {
  name : string;  (** lowercase-kebab identifier ([baseline-16], ...) *)
  summary : string;  (** one line: what this profile stresses *)
  clients : int;  (** client nodes *)
  servers : int;  (** server nodes (total cluster = clients + servers) *)
  requests_per_client : int;  (** open-loop requests per client *)
  arrival : Arrival.kind;  (** per-client inter-arrival process *)
  value_bytes : int;  (** put-request / get-response payload *)
  put_pct : int;  (** percentage of puts, 0..100 *)
  service_cycles : int;  (** host cycles a server burns per request *)
  seed : int;  (** master seed; every stream derives from it *)
  nic : nic;
  aih : bool;
      (** CNI only: run the message-passing handler as AIH code on the
          board. With it on, delivery never touches the host and the
          receive policy is moot; turn it {e off} to route delivery
          through the host path and expose [rx_policy] in the tail. *)
  rx_policy : rx;
  rx_batch : int;  (** ADC delivery batching ({!Cni_nic.Nic.cni_options}) *)
  topology : Cni_atm.Topology.kind;
  faults : Cni_atm.Faults.config;
}

(** A sane starting point for composing custom profiles: 12 clients and 4
    servers on a single switch, Poisson 20k req/s per client, 256-byte
    values with 20% puts, CNI board with the hybrid receive policy, no
    faults. [name] and [summary] are empty — fill them in. *)
val default : profile

(** The shipped profiles, in the order [list] prints them. Each one passes
    {!validate} and {!preflight} (CI runs the doctor over all of them). *)
val builtins : profile list

(** Look a built-in up by name. *)
val find : string -> profile option

(** [validate p] collects {e every} inconsistency — field ranges, arrival
    parameters, name format, topology vs node count, fault model vs node
    count, and crash events without a matching restart (which would strand
    the workload's blocking receives) — rather than stopping at the first. *)
val validate : profile -> (unit, string list) result

(** Parse the profile text format (see docs/SCENARIOS.md): one
    [key value] pair per line, ['#'] comments, unknown keys rejected.
    Fields not mentioned keep their {!default} value; [name] is
    mandatory. The error names the offending line. Parsing does not
    {!validate} — call it separately so all semantic problems are
    reported together. *)
val of_string : string -> (profile, string) result

(** Render a profile in the text format. The round-trip
    [of_string (to_string p) = Ok p] is exact: floats are printed with
    full precision and fault times at microsecond granularity (which is
    how they are declared). *)
val to_string : profile -> string

(** Preflight checks for the doctor, cheap enough to run before every long
    run: each entry is a labelled verdict, [Ok detail] or [Error problem].
    Covers field validation, topology admission (with the resolved shape),
    the fault model, crash/restart pairing, a service-capacity check
    that flags offered load at or beyond the servers' aggregate service
    rate (where the queue — and the tail — grows without bound), and a
    firmware line-rate admission check: the streaming reliable-delivery
    handlers a cluster of this size would install must fit the per-cell
    WCET budget at the default link rate. *)
val preflight : profile -> (string * (string, string) result) list

(** Offered load of the whole profile, requests per second of simulated
    time ([clients * mean arrival rate]). *)
val offered_rps : profile -> float

(** Run the profile to completion. [watchdog] defaults to 2 simulated
    seconds, matching {!Cni_apps.Kv_serve.run}.
    @raise Invalid_argument when {!validate} rejects the profile. *)
val run : ?watchdog:Cni_engine.Time.t -> profile -> Cni_apps.Kv_serve.result
