module Time = Cni_engine.Time
module Params = Cni_machine.Params
module Fabric = Cni_atm.Fabric
module Nic = Cni_nic.Nic
module Cluster = Cni_cluster.Cluster
module Space = Cni_dsm.Space
module Lrc = Cni_dsm.Lrc

type app = Cni_dsm.Protocol.msg Cluster.t -> Lrc.t array -> unit

type result = {
  elapsed : Time.t;
  elapsed_cycles : float;
  hit_ratio : float;
  computation : Time.t;
  synch_overhead : Time.t;
  synch_delay : Time.t;
  packets : int;
  wire_bytes : int;
  offered_packets : int;  (* every send attempt, incl. source-side drops *)
  delivered_packets : int;  (* frames that reached their destination node *)
  hop_waits : int;  (* multi-switch hops where contention delayed a frame *)
  banyan_conflicts : int;  (* internal switch wire overlaps *)
  message_mix : (string * int) list;  (* protocol messages by kind, summed *)
  retransmits : int;  (* NIC-level re-sends, summed (0 with reliability off) *)
  fault_drops : int;  (* frames the fault model destroyed, summed over nodes *)
  host_interrupts : int;  (* host interrupts taken, summed over nodes *)
  polls : int;  (* receive wakeups taken by a host poll, summed over nodes *)
  wasted_polls : int;  (* empty ring checks while in poll mode, summed *)
  metrics : Cni_engine.Stats.Registry.snapshot;
}

let cni ?mc_bytes ?mc_mode ?aih ?rx_policy ?rx_batch () =
  let d = Nic.default_cni_options in
  `Cni
    {
      Nic.mc_bytes = Option.value mc_bytes ~default:d.Nic.mc_bytes;
      mc_mode = Option.value mc_mode ~default:d.Nic.mc_mode;
      aih = Option.value aih ~default:d.Nic.aih;
      rx_policy = Option.value rx_policy ~default:d.Nic.rx_policy;
      rx_batch = Option.value rx_batch ~default:d.Nic.rx_batch;
      rx_poll_period = d.Nic.rx_poll_period;
      mc_phys_to_vpage = d.Nic.mc_phys_to_vpage;
    }

let standard = `Standard
let osiris = `Osiris Nic.default_osiris_options

let run ?(params = Params.default) ?faults ?reliability ?topology ?barrier_impl ~kind ~procs
    app =
  let cluster =
    Cluster.create ~params ?faults ?reliability ?topology ~nic_kind:kind ~nodes:procs ()
  in
  let space = Space.create ~nprocs:procs ~page_bytes:params.Params.page_bytes in
  let lrcs = Lrc.install cluster space ?barrier_impl () in
  app cluster lrcs;
  let o = Cluster.overheads cluster in
  let f = Fabric.stats (Cluster.fabric cluster) in
  let elapsed = Cluster.elapsed cluster in
  let mix = Hashtbl.create 12 in
  Array.iter
    (fun l ->
      List.iter
        (fun (k, n) ->
          Hashtbl.replace mix k (n + Option.value (Hashtbl.find_opt mix k) ~default:0))
        (Lrc.received_messages l))
    lrcs;
  {
    elapsed;
    elapsed_cycles = Time.to_s_float elapsed *. float_of_int params.Params.cpu_hz;
    hit_ratio = Cluster.network_cache_hit_ratio cluster;
    computation = o.Cluster.computation;
    synch_overhead = o.Cluster.synch_overhead;
    synch_delay = o.Cluster.synch_delay;
    packets = f.Fabric.packets;
    wire_bytes = f.Fabric.wire_bytes;
    offered_packets = f.Fabric.offered_packets;
    delivered_packets = f.Fabric.delivered_packets;
    hop_waits = f.Fabric.hop_waits;
    banyan_conflicts = f.Fabric.banyan_conflicts;
    message_mix = List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) mix []);
    retransmits = Cluster.retransmits cluster;
    fault_drops =
      (let fab = Cluster.fabric cluster in
       let acc = ref 0 in
       for n = 0 to procs - 1 do
         acc := !acc + Fabric.fault_drops fab ~node:n
       done;
       !acc);
    host_interrupts =
      (let acc = ref 0 in
       for n = 0 to procs - 1 do
         acc :=
           !acc + (Nic.stats (Cni_cluster.Node.nic (Cluster.node cluster n))).Nic.interrupts
       done;
       !acc);
    polls =
      (let acc = ref 0 in
       for n = 0 to procs - 1 do
         acc := !acc + (Nic.stats (Cni_cluster.Node.nic (Cluster.node cluster n))).Nic.polls
       done;
       !acc);
    wasted_polls =
      (let acc = ref 0 in
       for n = 0 to procs - 1 do
         acc :=
           !acc
           + (Nic.stats (Cni_cluster.Node.nic (Cluster.node cluster n))).Nic.wasted_polls
       done;
       !acc);
    metrics = Cluster.metrics_snapshot cluster;
  }

let speedup ~t1 r = Time.to_s_float t1 /. Time.to_s_float r.elapsed
