(** Figure 14: node-to-node latency microbenchmark.

    One-way latency of a message between two nodes, as seen by the receiving
    application, assuming a 100% network cache hit ratio for CNI (the buffer
    is sent once to warm the Message Cache; the second, measured send elides
    the host-memory DMA). *)

type point = {
  bytes : int;
  cni_us : float;
  standard_us : float;
  reduction_pct : float;
}

(** [latency ~kind ~bytes] — one-way latency of the second send of the same
    buffer. *)
val latency :
  ?params:Cni_machine.Params.t ->
  kind:Cni_cluster.Cluster.nic_kind ->
  bytes:int ->
  unit ->
  Cni_engine.Time.t

val sweep : ?params:Cni_machine.Params.t -> sizes:int list -> unit -> point list

(** {2 Collective-operation latency} *)

type collective_point = {
  barrier_us : float;  (** average per-barrier latency *)
  allreduce_us : float;  (** average per-allreduce latency (0 when skipped) *)
  interrupts : int;  (** host interrupts taken, summed over nodes *)
}

(** [collective_latency ~kind ~nodes ~nic ()] — average latency of [reps]
    (default 8) barriers and, unless [allreduce:false], [reps] integer
    allreduces over a fresh [nodes]-node cluster. [nic] selects the
    NIC-resident combining tree ({!Cni_mp.Collectives}) versus the
    host-driven {!Cni_mp.Mp} collectives. [topology] selects the fabric
    shape (see {!Cni_atm.Topology}); [fanout] the combining-tree arity
    (NIC-resident collectives only). *)
val collective_latency :
  ?params:Cni_machine.Params.t ->
  ?reps:int ->
  ?allreduce:bool ->
  ?topology:Cni_atm.Topology.kind ->
  ?fanout:int ->
  kind:Cni_cluster.Cluster.nic_kind ->
  nodes:int ->
  nic:bool ->
  unit ->
  collective_point

(** {2 Receive-policy behaviour at a controlled arrival rate} *)

type rx_point = {
  rx_interrupts : int;  (** host interrupts the receiving board took *)
  rx_polls : int;  (** wakeups delivered to a host ring check *)
  rx_wasted : int;  (** ring checks that found nothing (poll mode) *)
  rx_coalesced : int;  (** frames that rode along on another frame's wakeup *)
  rx_mode_switches : int;  (** adaptive-policy mode transitions *)
  rx_latency_us : float;  (** mean send-to-handler latency *)
}

(** [rx_policy_sweep ~policy ~gap ()] — node 0 paces [count] (default 200)
    empty frames [gap] apart at a 2-node cluster whose receiving application
    computes throughout, with AIH off so delivery crosses the ADC host path
    governed by [policy]. [rx_batch] (default 1) enables receive coalescing.
    Returns the receiving board's wakeup counters and the mean delivery
    latency. *)
val rx_policy_sweep :
  ?params:Cni_machine.Params.t ->
  ?count:int ->
  ?rx_batch:int ->
  policy:Cni_nic.Nic.rx_policy ->
  gap:Cni_engine.Time.t ->
  unit ->
  rx_point

(** {2 Classifier dispatch cost (wall-clock)} *)

type classifier_point = {
  cls_patterns : int;  (** live patterns installed (one per channel) *)
  indexed_ns : float;  (** ns per {!Cni_pathfinder.Classifier.classify} *)
  linear_ns : float;
      (** ns per {!Cni_pathfinder.Classifier.classify_linear} (the
          O(patterns) reference scan) *)
  cls_speedup : float;  (** [linear_ns / indexed_ns] *)
}

(** [classifier_ops ~patterns ()] times the simulator's own classification
    step (real host time, not simulated time) with [patterns] channel
    patterns installed, probing headers spread across the installed
    channels. *)
val classifier_ops : patterns:int -> unit -> classifier_point

(** {2 AIH static-verifier throughput (wall-clock)} *)

type verifier_point = {
  vp_programs : int;  (** distinct programs in the measured mix *)
  vp_verifies_per_sec : float;
  vp_us_per_program : float;
}

(** [verifier_throughput ()] times {!Cni_aih.Aih_verify.verify} (real host
    time) over the shipped corpus — accepted and rejected programs — plus
    generated collectives firmware: what the install-time admission check
    itself costs per program. *)
val verifier_throughput : unit -> verifier_point

(** {2 Verified-firmware vs closure activation cost (simulated clock)} *)

type activation_point = {
  act_nodes : int;
  act_closure_barrier_us : float;  (** per-barrier, {!Cni_mp.Collectives} *)
  act_ir_barrier_us : float;  (** per-barrier, {!Cni_mp.Collectives_ir} *)
  act_closure_allreduce_us : float;
  act_ir_allreduce_us : float;
  act_wcet_nic_cycles : int;  (** certificate bound, rank 0's firmware *)
  act_code_bytes : int;  (** certified object size, rank 0's firmware *)
}

(** [aih_activation ~nodes ()] — the same [reps] (default 8) barriers and
    integer-sum allreduces through the closure combining tree (flat
    per-dispatch charge) and the verified-firmware one (per-instruction
    charge under {!Cni_aih.Aih_exec}), on separate CNI clusters, with the
    rank-0 certificate alongside. *)
val aih_activation :
  ?params:Cni_machine.Params.t -> ?reps:int -> nodes:int -> unit -> activation_point

(** {2 Reliable delivery: closure layer vs streaming firmware (simulated
    clock)} *)

type reliable_point = {
  rel_nodes : int;
  rel_messages : int;  (** per node *)
  rel_closure_us : float;  (** per delivered message, closure layer *)
  rel_firmware_us : float;  (** per delivered message, firmware endpoints *)
  rel_wcet_nic_cycles : int;  (** streaming rx certificate, per activation *)
  rel_wcet_per_byte_milli : int;  (** streaming rx certificate, per byte *)
}

(** [reliable_firmware_activation ()] — the {!Reliable_flow} lockstep ring
    through the closure reliability layer and the firmware-compiled
    {!Cni_nic.Reliable_ir} endpoints on a clean fabric, per delivered
    message, with the streaming rx certificate that admitted the firmware
    alongside. *)
val reliable_firmware_activation :
  ?nodes:int -> ?messages:int -> ?body_bytes:int -> unit -> reliable_point
