(** Figure 14: node-to-node latency microbenchmark.

    One-way latency of a message between two nodes, as seen by the receiving
    application, assuming a 100% network cache hit ratio for CNI (the buffer
    is sent once to warm the Message Cache; the second, measured send elides
    the host-memory DMA). *)

type point = {
  bytes : int;
  cni_us : float;
  standard_us : float;
  reduction_pct : float;
}

(** [latency ~kind ~bytes] — one-way latency of the second send of the same
    buffer. *)
val latency :
  ?params:Cni_machine.Params.t ->
  kind:Cni_cluster.Cluster.nic_kind ->
  bytes:int ->
  unit ->
  Cni_engine.Time.t

val sweep : ?params:Cni_machine.Params.t -> sizes:int list -> unit -> point list
