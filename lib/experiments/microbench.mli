(** Figure 14: node-to-node latency microbenchmark.

    One-way latency of a message between two nodes, as seen by the receiving
    application, assuming a 100% network cache hit ratio for CNI (the buffer
    is sent once to warm the Message Cache; the second, measured send elides
    the host-memory DMA). *)

type point = {
  bytes : int;
  cni_us : float;
  standard_us : float;
  reduction_pct : float;
}

(** [latency ~kind ~bytes] — one-way latency of the second send of the same
    buffer. *)
val latency :
  ?params:Cni_machine.Params.t ->
  kind:Cni_cluster.Cluster.nic_kind ->
  bytes:int ->
  unit ->
  Cni_engine.Time.t

val sweep : ?params:Cni_machine.Params.t -> sizes:int list -> unit -> point list

(** {2 Collective-operation latency} *)

type collective_point = {
  barrier_us : float;  (** average per-barrier latency *)
  allreduce_us : float;  (** average per-allreduce latency (0 when skipped) *)
  interrupts : int;  (** host interrupts taken, summed over nodes *)
}

(** [collective_latency ~kind ~nodes ~nic ()] — average latency of [reps]
    (default 8) barriers and, unless [allreduce:false], [reps] integer
    allreduces over a fresh [nodes]-node cluster. [nic] selects the
    NIC-resident combining tree ({!Cni_mp.Collectives}) versus the
    host-driven {!Cni_mp.Mp} collectives. *)
val collective_latency :
  ?params:Cni_machine.Params.t ->
  ?reps:int ->
  ?allreduce:bool ->
  kind:Cni_cluster.Cluster.nic_kind ->
  nodes:int ->
  nic:bool ->
  unit ->
  collective_point
