module Stats = Cni_engine.Stats

type t = {
  id : string;
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;
  metrics : (string * float) list;
  snapshot : Stats.Registry.snapshot;
}

let make ~id ~title ~columns ?(notes = []) ?(metrics = []) ?(snapshot = []) rows =
  { id; title; columns; rows; notes; metrics; snapshot }

let to_text t =
  let all = t.columns :: t.rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let render_row row =
    String.concat "  "
      (List.mapi (fun i cell -> Printf.sprintf "%*s" widths.(i) cell) row)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "== %s: %s ==\n" t.id t.title);
  Buffer.add_string buf (render_row t.columns);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length (render_row t.columns)) '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    t.rows;
  List.iter (fun n -> Buffer.add_string buf ("  note: " ^ n ^ "\n")) t.notes;
  List.iter
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  metric: %s = %g\n" name v))
    t.metrics;
  Buffer.contents buf

let print t =
  print_string (to_text t);
  print_newline ()

let write_csv ~dir t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out (Filename.concat dir (t.id ^ ".csv")) in
  let escape cell =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
    else cell
  in
  let line row = output_string oc (String.concat "," (List.map escape row) ^ "\n") in
  line t.columns;
  List.iter line t.rows;
  close_out oc

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_metrics_json ~dir t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out (Filename.concat dir (t.id ^ ".metrics.json")) in
  let summary =
    t.metrics
    |> List.map (fun (name, v) -> Printf.sprintf "    \"%s\": %g" (json_escape name) v)
    |> String.concat ",\n"
  in
  output_string oc
    (Printf.sprintf "{\n  \"id\": \"%s\",\n  \"title\": \"%s\",\n  \"summary\": {\n%s\n  },\n  \"registry\": %s\n}\n"
       (json_escape t.id) (json_escape t.title) summary
       (Stats.Registry.snapshot_to_json t.snapshot));
  close_out oc

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x

let gcycles time =
  let cycles =
    Cni_engine.Time.to_s_float time *. float_of_int Cni_machine.Params.default.Cni_machine.Params.cpu_hz
  in
  Printf.sprintf "%.3f" (cycles /. 1e9)
