module Time = Cni_engine.Time
module Nic = Cni_nic.Nic
module Cholesky = Cni_apps.Cholesky
module Water = Cni_apps.Water
module Jacobi = Cni_apps.Jacobi

let bcsstk14 = lazy (Cholesky.bcsstk14_like ())

let cholesky c l = ignore (Cholesky.run c l (Cholesky.default_config (Lazy.force bcsstk14)))
let water c l = ignore (Water.run c l { Water.default_config with Water.molecules = 216 })

let jacobi c l =
  ignore (Jacobi.run c l { Jacobi.default_config with Jacobi.n = 512; iterations = 12 })

(* checksum-capturing variants, for rows that must show numerics unchanged *)
let cholesky_ck ck c l =
  ck := (Cholesky.run c l (Cholesky.default_config (Lazy.force bcsstk14))).Cholesky.checksum

let water_ck ck c l =
  ck := (Water.run c l { Water.default_config with Water.molecules = 216 }).Water.checksum

let jacobi_ck ck c l =
  ck :=
    (Jacobi.run c l { Jacobi.default_config with Jacobi.n = 512; iterations = 12 })
      .Jacobi.checksum

let row name kind app =
  let r = Runner.run ~kind ~procs:8 app in
  [ name; Format.asprintf "%a" Time.pp r.Runner.elapsed; Report.f1 r.Runner.hit_ratio ]

let columns = [ "configuration"; "elapsed"; "cache-hit-%" ]

let message_cache () =
  Report.make ~id:"ablation-mc"
    ~title:"Message Cache contribution (8-processor Cholesky bcsstk14-like)"
    ~columns
    ~notes:[ "ADC+AIH retained; only the Message Cache is removed" ]
    [
      row "CNI" (Runner.cni ()) cholesky;
      row "CNI, no Message Cache" (Runner.cni ~mc_bytes:0 ()) cholesky;
      row "standard" Runner.standard cholesky;
    ]

let aih () =
  Report.make ~id:"ablation-aih"
    ~title:"Application Interrupt Handler contribution (8-processor Water 216)"
    ~columns
    ~notes:[ "without AIH, protocol handlers run on the host behind the polling hybrid" ]
    [
      row "CNI" (Runner.cni ()) water;
      row "CNI, host handlers" (Runner.cni ~aih:false ()) water;
      row "standard" Runner.standard water;
    ]

let hybrid_receive () =
  Report.make ~id:"ablation-hybrid"
    ~title:"Polling/interrupt hybrid contribution (8-processor Water 216, host handlers)"
    ~columns
    ~notes:[ "interrupt-only reception reintroduces the per-message interrupt cost" ]
    [
      row "CNI, host handlers, hybrid" (Runner.cni ~aih:false ()) water;
      row "CNI, host handlers, interrupt-only"
        (Runner.cni ~aih:false ~rx_policy:Nic.Rx_interrupt ())
        water;
    ]

(* The receive wakeup policy, measured two ways: a synthetic arrival-rate
   sweep where a computing host receives paced frames (isolating the wakeup
   cost of each policy at a known rate), then the three applications, whose
   checksums double as proof the policy changes timing only. *)
let rx_policies =
  [
    ("interrupt", Nic.Rx_interrupt);
    ("poll", Nic.Rx_poll);
    ("hybrid", Nic.Rx_hybrid);
    ("adaptive", Nic.Rx_adaptive Nic.default_rx_adaptive);
  ]

let rx_policy () =
  let synth_row name ?(rx_batch = 1) ~gap ~count (pname, policy) =
    let p = Microbench.rx_policy_sweep ~policy ~gap ~count ~rx_batch () in
    [
      name;
      pname;
      string_of_int p.Microbench.rx_interrupts;
      string_of_int p.Microbench.rx_polls;
      string_of_int p.Microbench.rx_wasted;
      string_of_int p.Microbench.rx_coalesced;
      Report.f1 p.Microbench.rx_latency_us;
      "-";
    ]
  in
  let synth_rows =
    List.concat_map
      (fun (rate, gap, count) ->
        List.map
          (synth_row (Printf.sprintf "synthetic, %s arrivals" rate) ~gap ~count)
          rx_policies)
      [
        ("hot (2us)", Time.us 2, 200);
        ("medium (50us)", Time.us 50, 120);
        ("idle (1ms)", Time.ms 1, 40);
      ]
  in
  let batch_rows =
    List.map
      (fun rx_batch ->
        synth_row
          (Printf.sprintf "synthetic, hot arrivals, batch %d" rx_batch)
          ~rx_batch ~gap:(Time.us 2) ~count:200
          ("adaptive", Nic.Rx_adaptive Nic.default_rx_adaptive))
      [ 4; 8 ]
  in
  let app_rows =
    List.concat_map
      (fun (aname, app_ck) ->
        List.map
          (fun (pname, policy) ->
            let ck = ref nan in
            let r =
              Runner.run ~kind:(Runner.cni ~aih:false ~rx_policy:policy ()) ~procs:8
                (app_ck ck)
            in
            [
              aname;
              pname;
              string_of_int r.Runner.host_interrupts;
              string_of_int r.Runner.polls;
              string_of_int r.Runner.wasted_polls;
              "-";
              Format.asprintf "%a" Time.pp r.Runner.elapsed;
              Printf.sprintf "%.10g" !ck;
            ])
          rx_policies)
      [
        ("Jacobi 512 (8 procs)", jacobi_ck);
        ("Water 216 (8 procs)", water_ck);
        ("Cholesky bcsstk14-like (8 procs)", cholesky_ck);
      ]
  in
  Report.make ~id:"ablation-rxpolicy"
    ~title:"Receive wakeup policy: interrupt vs poll vs hybrid vs adaptive (host handlers)"
    ~columns:
      [
        "workload"; "policy"; "interrupts"; "polls"; "wasted-polls"; "coalesced";
        "latency-us/elapsed"; "checksum";
      ]
    ~notes:
      [
        "synthetic rows: node 0 paces 24-byte frames at the given gap; the receiving host \
         computes throughout, so every interrupt steals from it and every poll-mode ring \
         check is visible";
        "adaptive tracks interrupt-only when idle (no wasted polls) and converges to poll \
         mode when hot (host interrupts stop scaling with the arrival rate); hysteresis \
         keeps one outlier gap from flapping the mode";
        "batch rows coalesce frames that arrive during a wakeup's own latency into one \
         drain of the receive queue";
        "application rows (AIH off, so every DSM message crosses the host path): identical \
         checksums across policies — the policy moves time, never data";
      ]
    (synth_rows @ batch_rows @ app_rows)

(* wall-clock cost of the simulator's classification step as patterns grow:
   the indexed DAG should be flat where the linear reference scan is O(n) *)
let classifier_bench () =
  let rows =
    List.map
      (fun n ->
        let p = Microbench.classifier_ops ~patterns:n () in
        [
          string_of_int n;
          Report.f1 p.Microbench.indexed_ns;
          Report.f1 p.Microbench.linear_ns;
          Report.f2 p.Microbench.cls_speedup;
        ])
      [ 1; 16; 256 ]
  in
  Report.make ~id:"microbench-classifier"
    ~title:"PATHFINDER classification dispatch (wall-clock, one pattern per channel)"
    ~columns:[ "patterns"; "indexed-ns/op"; "linear-ns/op"; "speedup" ]
    ~notes:
      [
        "indexed: per-node hashtable keyed by field spec (offset/len/mask), then by masked \
         value — O(pattern depth); linear: priority-ordered scan of every live pattern, \
         the reference semantics the property tests hold the DAG to";
      ]
    rows

let snoop_mode () =
  Report.make ~id:"ablation-snoop"
    ~title:"Write-update vs invalidate snooping (8-processor Jacobi 512)"
    ~columns
    ~notes:
      [
        "invalidate snooping drops a board buffer on every host write-back, so rewritten pages \
         always miss";
      ]
    [
      row "CNI, write-update snoop" (Runner.cni ()) jacobi;
      row "CNI, invalidate snoop" (Runner.cni ~mc_mode:Cni_nic.Message_cache.Invalidate ()) jacobi;
    ]

(* how much of the standard interface's deficit is the interrupt cost?
   (Table 1's garbled row motivates checking the sensitivity) *)
let interrupt_sensitivity () =
  let module Params = Cni_machine.Params in
  let rows =
    List.map
      (fun us ->
        let params = { Params.default with Params.interrupt_latency = Time.us us } in
        let rc = Runner.run ~params ~kind:(Runner.cni ()) ~procs:8 cholesky in
        let rs = Runner.run ~params ~kind:Runner.standard ~procs:8 cholesky in
        [
          string_of_int us;
          Format.asprintf "%a" Time.pp rc.Runner.elapsed;
          Format.asprintf "%a" Time.pp rs.Runner.elapsed;
          Report.f2 (Time.to_s_float rs.Runner.elapsed /. Time.to_s_float rc.Runner.elapsed);
        ])
      [ 10; 20; 40; 80 ]
  in
  Report.make ~id:"ablation-interrupt"
    ~title:"Interrupt-latency sensitivity (8-processor Cholesky bcsstk14-like)"
    ~columns:[ "interrupt-us"; "cni"; "standard"; "std/cni" ]
    ~notes:
      [
        "the CNI barely notices (its handlers run on the board); the standard interface \
         degrades with every microsecond of interrupt cost";
      ]
    rows

(* write-back vs write-through host caches: the paper evaluates write-back
   (the hard case, needing pre-transfer flushes) and notes write-through
   keeps the board trivially consistent -- at the cost of putting every
   store on the bus *)
let cache_policy () =
  let module Params = Cni_machine.Params in
  let row name policy kind =
    let params = { Params.default with Params.cache_policy = policy } in
    let r = Runner.run ~params ~kind ~procs:8 jacobi in
    [ name; Format.asprintf "%a" Time.pp r.Runner.elapsed; Report.f1 r.Runner.hit_ratio ]
  in
  Report.make ~id:"ablation-writepolicy"
    ~title:"Host cache policy (8-processor Jacobi 512)"
    ~columns
    ~notes:
      [
        "write-through keeps the Message Cache consistent without flushes but floods the \
         memory bus with store traffic";
      ]
    [
      row "CNI, write-back" Params.Write_back (Runner.cni ());
      row "CNI, write-through" Params.Write_through (Runner.cni ());
      row "standard, write-back" Params.Write_back Runner.standard;
      row "standard, write-through" Params.Write_through Runner.standard;
    ]

(* the three generations in one table: standard -> OSIRIS (user-level ADC,
   software demux, interrupt-only) -> CNI (PATHFINDER + MC + AIH) *)
let interface_evolution () =
  let interfaces =
    [ ("standard", Runner.standard); ("OSIRIS", Runner.osiris); ("CNI", Runner.cni ()) ]
  in
  let latency_rows =
    List.map
      (fun (iface, kind) ->
        (* messaging uses host-side delivery on every interface *)
        let kind = match kind with `Cni o -> `Cni { o with Cni_nic.Nic.aih = false } | k -> k in
        let t = Microbench.latency ~kind ~bytes:2048 () in
        [ "2KB one-way latency"; iface; Format.asprintf "%a" Cni_engine.Time.pp t; "-" ])
      interfaces
  in
  let app_rows =
    List.concat_map
      (fun (name, app) ->
        List.map
          (fun (iface, kind) ->
            let r = Runner.run ~kind ~procs:8 app in
            [
              name;
              iface;
              Format.asprintf "%a" Time.pp r.Runner.elapsed;
              Report.f1 r.Runner.hit_ratio;
            ])
          interfaces)
      [ ("Water 216 (8 procs)", water); ("Cholesky bcsstk14-like (8 procs)", cholesky) ]
  in
  Report.make ~id:"ablation-evolution"
    ~title:"Interface evolution: standard -> OSIRIS -> CNI"
    ~columns:[ "workload"; "interface"; "elapsed"; "cache-hit-%" ]
    ~notes:
      [
        "OSIRIS (the board the CNI extends) removes the kernel from the messaging path but \
         still interrupts per packet, so its DSM runs stay near the standard board — the \
         classifier, Message Cache and on-board handlers are what move the applications";
      ]
    (latency_rows @ app_rows)

(* ordering matters: fill-in drives both the flop count and the page
   traffic; RCM recovers most of what a bad ordering loses *)
let ordering () =
  let module Sparse = Cni_apps.Sparse in
  let a = Sparse.stiffness_like ~n:600 ~dofs:3 ~seed:21 in
  let scrambled = Sparse.permute a ~perm:(Array.init 600 (fun i -> (i * 389) mod 600)) in
  let rcm = Sparse.permute scrambled ~perm:(Sparse.rcm scrambled) in
  let row name m =
    let r =
      Runner.run ~kind:(Runner.cni ()) ~procs:8 (fun c l ->
          ignore (Cholesky.run c l (Cholesky.default_config m)))
    in
    [
      name;
      string_of_int (Sparse.nnz (Sparse.symbolic m));
      string_of_int (Sparse.bandwidth m);
      Format.asprintf "%a" Time.pp r.Runner.elapsed;
    ]
  in
  Report.make ~id:"ablation-ordering"
    ~title:"Elimination ordering (8-processor CNI Cholesky, n=600 stiffness-like)"
    ~columns:[ "ordering"; "nnz(L)"; "bandwidth"; "elapsed" ]
    ~notes:[ "fill-in controls both the flop count and the migrating pages" ]
    [ row "natural (banded)" a; row "scrambled" scrambled; row "RCM of scrambled" rcm ]

(* graceful degradation on a lossy fabric: sweep the per-cell loss rate with
   the reliability protocol on (also at zero loss, so the ack traffic is in
   the baseline and the slowdown column isolates loss recovery). The standard
   interface degrades faster: every retransmission, ack and duplicate costs
   it a host interrupt + kernel path, while the CNI boards recover in
   firmware. *)
let faults () =
  let module Faults = Cni_atm.Faults in
  let module Reliable = Cni_nic.Reliable in
  let losses = [ 0.; 1e-6; 1e-5; 1e-4; 1e-3 ] in
  let fmt_loss l = if l = 0. then "0" else Printf.sprintf "%.0e" l in
  let rows =
    List.concat_map
      (fun (aname, app) ->
        List.concat_map
          (fun (kname, kind) ->
            let base = ref None in
            List.map
              (fun loss ->
                let faults =
                  if loss > 0. then Some { Faults.none with Faults.cell_loss = loss } else None
                in
                match Runner.run ?faults ~reliability:Reliable.default ~kind ~procs:8 app with
                | r ->
                    if loss = 0. then base := Some r.Runner.elapsed;
                    let slowdown =
                      match !base with
                      | Some b ->
                          Report.f2 (Time.to_s_float r.Runner.elapsed /. Time.to_s_float b)
                      | None -> "-"
                    in
                    [
                      aname;
                      kname;
                      fmt_loss loss;
                      "ok";
                      Format.asprintf "%a" Time.pp r.Runner.elapsed;
                      string_of_int r.Runner.retransmits;
                      slowdown;
                    ]
                | exception Cni_engine.Engine.Fiber_failure (_, Reliable.Delivery_failed _) ->
                    [ aname; kname; fmt_loss loss; "failed"; "-"; "-"; "-" ])
              losses)
          [ ("cni", Runner.cni ()); ("standard", Runner.standard) ])
      [
        ("Jacobi 512", jacobi);
        ("Water 216", water);
        ("Cholesky bcsstk14-like", cholesky);
      ]
  in
  Report.make ~id:"ablation-faults"
    ~title:"Graceful degradation under cell loss (8 processors, reliable delivery)"
    ~columns:[ "workload"; "interface"; "cell-loss"; "run"; "elapsed"; "retransmits"; "slowdown" ]
    ~notes:
      [
        "slowdown is relative to the same interface at zero loss with the reliability \
         protocol enabled, so it isolates loss recovery from ack overhead";
        "each retransmission, ack and duplicate costs the standard interface a host \
         interrupt + kernel path, where the CNI recovers in board firmware; at high loss \
         the retransmit timeout stalling the critical path dominates both";
      ]
    rows

(* Node crash/restart chaos: seeded fault schedules against a closed-loop
   DSM application (expected to recover and finish with the fault-free
   checksum) and an open-loop message ring (expected to degrade by timing
   out rounds, never to hang). Every row is deterministic in the seed, so
   the CI smoke can diff two invocations. *)
let chaos () =
  let fmt_ck ck = if Float.is_nan ck then "-" else Report.f2 ck in
  let row name m =
    [
      name;
      string_of_int m.Chaos.crashes;
      m.Chaos.outcome;
      Report.f1 m.Chaos.elapsed_us;
      string_of_int m.Chaos.retransmits;
      string_of_int m.Chaos.crash_drops;
      string_of_int m.Chaos.recoveries;
      Report.f1 m.Chaos.mean_recovery_us;
      string_of_int m.Chaos.rx_timeouts;
      fmt_ck m.Chaos.checksum;
    ]
  in
  let sweep = [ (0, Time.us 0, "-"); (1, Time.us 150, "150us"); (2, Time.us 400, "400us") ] in
  let dsm_rows =
    List.map
      (fun (crashes, down, dname) ->
        let down = if crashes = 0 then Time.us 150 else down in
        row
          (Printf.sprintf "Jacobi 128 DSM, %d crash(es), down %s" crashes dname)
          (Chaos.run_dsm ~crashes ~down ()))
      sweep
  in
  let scrub_row =
    row "Jacobi 128 DSM, 2 scrub crashes, down 400us"
      (Chaos.run_dsm ~scrub:true ~crashes:2 ~down:(Time.us 400) ())
  in
  let ring_rows =
    List.map
      (fun (crashes, down, dname) ->
        let down = if crashes = 0 then Time.us 150 else down in
        row
          (Printf.sprintf "Mp ring 8x24, %d crash(es), down %s" crashes dname)
          (Chaos.run_ring ~crashes ~down ()))
      sweep
  in
  Report.make ~id:"ablation-chaos"
    ~title:"Crash/restart chaos: recovery (closed loop) and degradation (open loop)"
    ~columns:
      [
        "workload"; "crashes"; "run"; "elapsed-us"; "retransmits"; "crash-drops";
        "recoveries"; "mean-recovery-us"; "rx-timeouts"; "checksum";
      ]
    ~notes:
      [
        "closed loop: crashed hosts freeze and thaw, reliable delivery retries across \
         the dead window, so the checksum must match the zero-crash row";
        "scrub crashes additionally wipe board memory; handlers are re-verified and \
         re-installed from the install log at restart";
        "open loop: every ring receive is a recv_timeout, so a dead predecessor costs \
         timed-out rounds (degradation), never a hang; the watchdog converts any \
         residual hang into a structured failure row";
      ]
    (dsm_rows @ [ scrub_row ] @ ring_rows)

(* NIC-resident collectives (the combining tree as AIH code) against the
   host-driven implementations: raw barrier / allreduce latency as the node
   count grows, then the three applications with the DSM barrier switched
   between the centralised node-0 manager and the tree. *)
let collectives () =
  let latency_rows =
    List.concat_map
      (fun nodes ->
        List.map
          (fun (name, kind, nic) ->
            let p = Microbench.collective_latency ~kind ~nodes ~nic () in
            [
              Printf.sprintf "barrier+allreduce (%d nodes)" nodes;
              name;
              Report.f1 p.Microbench.barrier_us;
              Report.f1 p.Microbench.allreduce_us;
              "-";
              string_of_int p.Microbench.interrupts;
            ])
          [
            ("CNI, host-driven", Runner.cni (), false);
            ("CNI, NIC tree", Runner.cni (), true);
            ("standard, host-driven", Runner.standard, false);
            ("standard, NIC tree", Runner.standard, true);
          ])
      [ 2; 4; 8; 16 ]
  in
  let app_rows =
    List.concat_map
      (fun (aname, app) ->
        List.map
          (fun (bname, barrier_impl) ->
            let r = Runner.run ~barrier_impl ~kind:(Runner.cni ()) ~procs:8 app in
            [
              aname;
              bname;
              "-";
              "-";
              Format.asprintf "%a" Time.pp r.Runner.elapsed;
              string_of_int r.Runner.host_interrupts;
            ])
          [ ("CNI, centralised barrier", `Centralised); ("CNI, NIC-tree barrier", `Nic_collective) ])
      [
        ("Jacobi 512 (8 procs)", jacobi);
        ("Water 216 (8 procs)", water);
        ("Cholesky bcsstk14-like (8 procs)", cholesky);
      ]
  in
  Report.make ~id:"ablation-collectives"
    ~title:"NIC-resident collectives: combining tree vs host-driven"
    ~columns:
      [ "workload"; "configuration"; "barrier-us"; "allreduce-us"; "elapsed"; "interrupts" ]
    ~notes:
      [
        "the NIC tree combines contributions on the boards (AIH code): a CNI episode takes \
         zero host interrupts; the standard interface interrupts per tree packet either way";
        "application rows switch the DSM barrier between the centralised node-0 manager and \
         the tree allreduce of (vector clock, write notices)";
      ]
    (latency_rows @ app_rows)

(* Fabric topology x combining-tree fanout: the collectives' tree latency
   under each fabric shape at 64 nodes, then Jacobi at 256 processors per
   topology.  The checksum column is the seed-equivalence witness: routing
   frames through a fat-tree or torus reshuffles timing (hop-waits,
   conflicts) but must not change any numeric result. *)
let topology () =
  let module Topology = Cni_atm.Topology in
  let topologies =
    [
      ("single switch", Topology.Single);
      ("fat-tree", Topology.Fat_tree { leaf_radix = 16 });
      ("3d-torus", Topology.Torus { dims = None });
    ]
  in
  let fanout_rows =
    List.concat_map
      (fun (tname, topology) ->
        List.map
          (fun fanout ->
            let p =
              Microbench.collective_latency ~kind:(Runner.cni ()) ~topology ~fanout
                ~nodes:64 ~nic:true ()
            in
            [
              "barrier+allreduce (64 nodes, NIC tree)";
              Printf.sprintf "%s, fanout %d" tname fanout;
              Report.f1 p.Microbench.barrier_us;
              Report.f1 p.Microbench.allreduce_us;
              "-";
              "-";
              "-";
              "-";
            ])
          [ 2; 4; 8 ])
      topologies
  in
  let app_runs =
    List.map
      (fun (tname, topology) ->
        let ck = ref nan in
        let r = Runner.run ~topology ~kind:(Runner.cni ()) ~procs:256 (jacobi_ck ck) in
        (tname, topology, r, !ck))
      topologies
  in
  let app_rows =
    List.map
      (fun (tname, _, r, ck) ->
        [
          "Jacobi 512 (256 procs)";
          tname;
          "-";
          "-";
          Format.asprintf "%a" Time.pp r.Runner.elapsed;
          string_of_int r.Runner.hop_waits;
          string_of_int r.Runner.banyan_conflicts;
          Printf.sprintf "%.10g" ck;
        ])
      app_runs
  in
  (* all deterministic, so the BENCH compare gate pins them exactly: the
     checksums must stay equal across topologies (routing moves time, never
     data) and the single-switch hop-wait count must stay zero (conflicts
     counted, not charged — the seed-equivalence contract) *)
  let metrics =
    List.concat_map
      (fun (_, topology, r, ck) ->
        let slug =
          match topology with
          | Cni_atm.Topology.Single -> "single"
          | Cni_atm.Topology.Fat_tree _ -> "fat-tree"
          | Cni_atm.Topology.Torus _ -> "torus"
        in
        [
          ("jacobi256-" ^ slug ^ "-checksum", ck);
          ("jacobi256-" ^ slug ^ "-hop-waits", float_of_int r.Runner.hop_waits);
          ("jacobi256-" ^ slug ^ "-conflicts", float_of_int r.Runner.banyan_conflicts);
        ])
      app_runs
  in
  Report.make ~id:"ablation-topology"
    ~title:"Fabric topology x combining-tree fanout (per-hop contention model)"
    ~metrics
    ~columns:
      [
        "workload";
        "configuration";
        "barrier-us";
        "allreduce-us";
        "elapsed";
        "hop-waits";
        "conflicts";
        "checksum";
      ]
    ~notes:
      [
        "single-switch rows reproduce the seed timing bit-for-bit: banyan conflicts are \
         counted but not charged because the paper's 500ns switch latency already includes \
         average blocking; multi-switch rows charge output-port and internal-wire contention \
         per hop";
        "identical Jacobi checksums across topologies show routing changes timing only; \
         hop-waits counts hops serialised behind a busy output port, conflicts the internal \
         banyan-stage collisions";
      ]
    (fanout_rows @ app_rows)

(* Open-loop serving tails: offered load x receive policy x topology, on a
   lossy fabric (the PR 2 fault model, so the reliability layer is live).
   Message delivery runs on the host (aih off) — with the handler on the
   board the receive policy never fires and every row would tie. The whole
   sweep is deterministic, so every quantile is pinned as a metric. *)
let serving () =
  let module Topology = Cni_atm.Topology in
  let module Faults = Cni_atm.Faults in
  let requests = if !Figures.quick then 30 else 80 in
  let loads = [ ("moderate", 20_000.); ("high", 60_000.) ] in
  let topologies = [ ("single", Topology.Single); ("torus", Topology.Torus { dims = None }) ] in
  let policies =
    [
      ("interrupt", Scenario.Interrupt);
      ("poll", Scenario.Poll);
      ("hybrid", Scenario.Hybrid);
      ("adaptive", Scenario.Adaptive);
    ]
  in
  let runs =
    List.concat_map
      (fun (tname, topology) ->
        List.concat_map
          (fun (lname, rate) ->
            List.map
              (fun (pname, rx_policy) ->
                let profile =
                  {
                    Scenario.default with
                    Scenario.name = "ablation-serving";
                    requests_per_client = requests;
                    arrival = Arrival.Poisson { rate_per_s = rate };
                    aih = false;
                    rx_policy;
                    topology;
                    faults = Faults.with_loss ~seed:11 1e-4;
                  }
                in
                (tname, lname, pname, Scenario.run profile))
              policies)
          loads)
      topologies
  in
  let rows =
    List.map
      (fun (tname, lname, pname, r) ->
        [
          tname;
          lname;
          pname;
          Printf.sprintf "%.3f" r.Cni_apps.Kv_serve.p50_us;
          Printf.sprintf "%.3f" r.Cni_apps.Kv_serve.p99_us;
          Printf.sprintf "%.3f" r.Cni_apps.Kv_serve.p999_us;
          Printf.sprintf "%.3f" r.Cni_apps.Kv_serve.max_us;
          string_of_int r.Cni_apps.Kv_serve.retransmits;
        ])
      runs
  in
  let metrics =
    List.concat_map
      (fun (tname, lname, pname, r) ->
        let key q = Printf.sprintf "serving-%s-%s-%s-%s" tname lname pname q in
        [
          (key "p50us", r.Cni_apps.Kv_serve.p50_us);
          (key "p99us", r.Cni_apps.Kv_serve.p99_us);
          (key "p999us", r.Cni_apps.Kv_serve.p999_us);
        ])
      runs
  in
  Report.make ~id:"ablation-serving"
    ~title:"Open-loop serving tails: offered load x rx policy x topology (lossy fabric)"
    ~metrics
    ~columns:[ "topology"; "load"; "rx-policy"; "p50-us"; "p99-us"; "p999-us"; "max-us"; "retx" ]
    ~notes:
      [
        "12 clients + 4 servers, Poisson arrivals, handlers on the host (aih off) so the \
         receive policy is on the delivery path; cell loss 1e-4 keeps the reliability \
         layer live";
        "latency is measured from each request's scheduled generation time, so queueing \
         delay (including coordinated-omission stalls) is charged to the tail";
      ]
    rows

(* Reliable delivery compiled onto the NIC: the closure reliability layer
   against the streaming-firmware endpoints (Reliable_ir), on both
   interfaces, clean and lossy. Each row pair runs the same lockstep parity
   ring, so the fault model hands both implementations identical per-frame
   verdicts; the parity column shows behavioural equality, and the
   deterministic firmware checksums are pinned as metrics. *)
let reliable_firmware () =
  let module Faults = Cni_atm.Faults in
  let module Flow = Reliable_flow in
  let cases =
    [
      ("cni", Runner.cni (), "clean", None);
      ( "cni",
        Runner.cni (),
        "loss 3e-2",
        Some { Faults.none with Faults.seed = 2; Faults.cell_loss = 3e-2 } );
      ("standard", Runner.standard, "clean", None);
      ( "standard",
        Runner.standard,
        "loss 3e-2",
        Some { Faults.none with Faults.seed = 2; Faults.cell_loss = 3e-2 } );
    ]
  in
  let runs =
    List.map
      (fun (iname, nic, lname, faults) ->
        let cfg = { Flow.default with Flow.nic; messages = 10; faults } in
        (iname, lname, Flow.run Flow.Closure cfg, Flow.run Flow.Firmware cfg))
      cases
  in
  let totals (o : Flow.outcome) =
    Array.fold_left
      (fun (r, d) c -> (r + c.Flow.retransmits, d + c.Flow.rx_duplicates))
      (0, 0) o.Flow.per_node
  in
  let flow_rows =
    List.concat_map
      (fun (iname, lname, a, b) ->
        let impl_row impl (o : Flow.outcome) parity =
          let retx, dups = totals o in
          [
            iname;
            lname;
            impl;
            Report.f1 (float_of_int o.Flow.elapsed_ps /. 1e6);
            string_of_int retx;
            string_of_int dups;
            string_of_int o.Flow.checksum;
            parity;
          ]
        in
        [
          impl_row "closure" a "-";
          impl_row "firmware" b (if a.Flow.checksum = b.Flow.checksum then "ok" else "MISMATCH");
        ])
      runs
  in
  let p = Microbench.reliable_firmware_activation () in
  let bench_row =
    [
      "cni";
      "per-message cost";
      "closure vs firmware";
      Printf.sprintf "%s vs %s"
        (Report.f1 p.Microbench.rel_closure_us)
        (Report.f1 p.Microbench.rel_firmware_us);
      "-";
      "-";
      Printf.sprintf "wcet %d cyc, %d mcyc/B" p.Microbench.rel_wcet_nic_cycles
        p.Microbench.rel_wcet_per_byte_milli;
      "-";
    ]
  in
  let metrics =
    List.concat_map
      (fun (iname, lname, a, b) ->
        let slug = iname ^ "-" ^ (if lname = "clean" then "clean" else "lossy") in
        [
          ("reliable-fw-" ^ slug ^ "-checksum", float_of_int b.Flow.checksum);
          ( "reliable-fw-" ^ slug ^ "-parity",
            if a.Flow.checksum = b.Flow.checksum then 1. else 0. );
        ])
      runs
    @ [
        ("reliable-fw-rx-wcet-cycles", float_of_int p.Microbench.rel_wcet_nic_cycles);
        ("reliable-fw-rx-wcet-perbyte-milli", float_of_int p.Microbench.rel_wcet_per_byte_milli);
      ]
  in
  Report.make ~id:"ablation-reliable-fw"
    ~title:"Reliable delivery: closure layer vs streaming firmware (lockstep parity ring)"
    ~metrics
    ~columns:
      [ "interface"; "fabric"; "impl"; "elapsed-us"; "retx"; "dups"; "checksum"; "parity" ]
    ~notes:
      [
        "each pair runs the identical lockstep ring (2 nodes x 10 messages), so seeded \
         faults hand both implementations the same per-frame verdicts; parity = the \
         firmware checksum equals the closure checksum (delivery outcomes + counters)";
        "on the standard interface the firmware runs host-interpreted behind the wakeup \
         path — parity must still hold, only the clock moves";
        "the per-message row is the reliable_firmware_activation microbench: clean-fabric \
         cost per delivered message, with the streaming rx certificate that admitted the \
         firmware (per-activation and per-byte WCET)";
      ]
    (flow_rows @ [ bench_row ])

let aih_bench () =
  let v = Microbench.verifier_throughput () in
  let verifier_row =
    [
      "verifier throughput";
      Printf.sprintf "%d-program corpus" v.Microbench.vp_programs;
      Report.f2 v.Microbench.vp_us_per_program;
      Printf.sprintf "%.0f" v.Microbench.vp_verifies_per_sec;
      "-";
      "-";
    ]
  in
  let activation_rows =
    List.concat_map
      (fun nodes ->
        let p = Microbench.aih_activation ~nodes () in
        [
          [
            Printf.sprintf "barrier (%d nodes)" nodes;
            "closure vs verified IR";
            Report.f1 p.Microbench.act_closure_barrier_us;
            Report.f1 p.Microbench.act_ir_barrier_us;
            string_of_int p.Microbench.act_wcet_nic_cycles;
            string_of_int p.Microbench.act_code_bytes;
          ];
          [
            Printf.sprintf "allreduce (%d nodes)" nodes;
            "closure vs verified IR";
            Report.f1 p.Microbench.act_closure_allreduce_us;
            Report.f1 p.Microbench.act_ir_allreduce_us;
            string_of_int p.Microbench.act_wcet_nic_cycles;
            string_of_int p.Microbench.act_code_bytes;
          ];
        ])
      [ 2; 8; 16 ]
  in
  Report.make ~id:"microbench-aih"
    ~title:"AIH admission: verifier throughput and verified-firmware activation cost"
    ~columns:[ "benchmark"; "configuration"; "us-a"; "us-b"; "wcet-cycles"; "code-bytes" ]
    ~notes:
      [
        "verifier row: us-a = wall-clock microseconds to verify one program, us-b = programs \
         verified per second of host time (the install-time admission check, real code)";
        "activation rows: us-a = per-op latency with the closure handler (flat dispatch \
         charge), us-b = with verified IR firmware charged per executed instruction; the \
         certificate columns are rank 0's";
      ]
    (verifier_row :: activation_rows)

let all =
  [
    ("ablation-mc", message_cache);
    ("ablation-aih", aih);
    ("ablation-hybrid", hybrid_receive);
    ("ablation-rxpolicy", rx_policy);
    ("microbench-classifier", classifier_bench);
    ("ablation-snoop", snoop_mode);
    ("ablation-interrupt", interrupt_sensitivity);
    ("ablation-writepolicy", cache_policy);
    ("ablation-evolution", interface_evolution);
    ("ablation-ordering", ordering);
    ("ablation-faults", faults);
    ("ablation-chaos", chaos);
    ("ablation-collectives", collectives);
    ("ablation-topology", topology);
    ("ablation-serving", serving);
    ("microbench-aih", aih_bench);
    ("ablation-reliable-fw", reliable_firmware);
  ]
