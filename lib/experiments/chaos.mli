(** Crash/restart chaos harness.

    Builds a deterministic node-fault schedule from a seed (disjoint
    crash->restart windows over random victims — node 0, the DSM manager, is
    spared) and injects it into a real application run, reporting recovery
    metrics. Two invocations with the same arguments produce identical
    metrics; the [ablation-chaos] report and the CI chaos smoke both rely on
    that. *)

type metrics = {
  outcome : string;  (** "ok" or the structured failure that ended the run *)
  completed : bool;
  elapsed_us : float;
  crashes : int;  (** crash events in the schedule *)
  restarts : int;
  retransmits : int;
  crash_drops : int;  (** frames the fabric dropped at a dead board *)
  recoveries : int;  (** restarted boards that saw traffic again *)
  mean_recovery_us : float;
      (** mean restart-to-first-frame latency over [recoveries] *)
  rx_timeouts : int;  (** open-loop receives that gave up (ring runs only) *)
  checksum : float;  (** application checksum; [nan] when the run failed *)
}

(** [schedule ~seed ~nodes ~crashes ~start ~slot ~down ~scrub] — the raw
    schedule builder: crash [k] lands in time slot [start + k*slot] (plus
    seeded jitter) and restarts [down] later. Always passes
    {!Cni_atm.Faults.validate}.
    @raise Invalid_argument when [slot] does not exceed [down] plus the
    jitter bound, or on [crashes > 0] with fewer than 2 nodes. *)
val schedule :
  seed:int ->
  nodes:int ->
  crashes:int ->
  start:Cni_engine.Time.t ->
  slot:Cni_engine.Time.t ->
  down:Cni_engine.Time.t ->
  scrub:bool ->
  Cni_atm.Faults.event list

(** Closed-loop chaos: Jacobi over the DSM under a crash schedule. Crashed
    hosts freeze and thaw; reliable delivery retries across the dead window,
    so the run is expected to complete with the fault-free checksum, the
    crashes paid for as elapsed time. The [watchdog] (default 1 s simulated)
    turns an unrecovered run into a structured failure row. *)
val run_dsm :
  ?seed:int ->
  ?procs:int ->
  ?n:int ->
  ?iterations:int ->
  ?scrub:bool ->
  ?watchdog:Cni_engine.Time.t ->
  ?kind:
    [ `Cni of Cni_nic.Nic.cni_options
    | `Osiris of Cni_nic.Nic.osiris_options
    | `Standard ] ->
  crashes:int ->
  down:Cni_engine.Time.t ->
  unit ->
  metrics

(** Open-loop chaos: a token ring over {!Cni_mp.Mp} where every receive is a
    [recv_timeout] — a round whose predecessor is crashed gives up after
    [rx_timeout] and moves on, so the ring degrades (counted in
    [rx_timeouts]) instead of stalling. *)
val run_ring :
  ?seed:int ->
  ?nodes:int ->
  ?rounds:int ->
  ?scrub:bool ->
  ?rx_timeout:Cni_engine.Time.t ->
  ?watchdog:Cni_engine.Time.t ->
  ?kind:
    [ `Cni of Cni_nic.Nic.cni_options
    | `Osiris of Cni_nic.Nic.osiris_options
    | `Standard ] ->
  crashes:int ->
  down:Cni_engine.Time.t ->
  unit ->
  metrics
