(** Persisted performance baselines (the repo's BENCH_<pr>.json files).

    A baseline records one full run of the bench harness in machine-readable
    form: for every Bechamel substrate microbenchmark its wall time and
    minor-heap allocation per run, and for every experiment its wall-clock
    and headline scalar metrics. Baselines are committed to the repository
    so the performance trajectory is falsifiable, and {!compare} turns two
    of them into a pass/fail verdict that CI uses as a regression gate.

    The JSON is read back with a small self-contained parser — the repo
    deliberately takes no JSON library dependency. *)

type substrate_result = {
  ns_per_run : float;  (** Bechamel OLS estimate, monotonic clock *)
  minor_words_per_run : float;  (** Bechamel OLS estimate, minor allocator *)
}

type experiment_result = {
  wall_s : float;  (** wall-clock of the whole experiment driver *)
  metrics : (string * float) list;  (** the report's headline scalars *)
}

type t = {
  schema : int;  (** format version, currently 1 *)
  label : string;  (** e.g. "BENCH_6" *)
  quick : bool;  (** whether the run used [--quick] scaling *)
  zero_alloc : string list;
      (** names of substrate benchmarks under the zero-alloc contract: these
          must stay allocation-free in every later run, regardless of any
          time threshold (the trace hot path lives here) *)
  substrate : (string * substrate_result) list;
  experiments : (string * experiment_result) list;
}

val schema_version : int

(** Name of the substrate benchmark used as the machine-speed anchor: a
    fixed-instruction-count integer spin loop. When both baselines carry it,
    {!compare} rescales the baseline's times by the two anchors' ratio, so a
    committed baseline from one machine gates runs on another without
    flagging the machines' raw speed difference. *)
val calibration_name : string

val make :
  label:string ->
  quick:bool ->
  ?zero_alloc:string list ->
  substrate:(string * substrate_result) list ->
  experiments:(string * experiment_result) list ->
  unit ->
  t

(** {2 Serialisation} *)

val to_json : t -> string

(** [of_json s] parses a baseline written by {!to_json}.
    Returns [Error msg] on malformed input or an unsupported schema. *)
val of_json : string -> (t, string) result

val save : file:string -> t -> unit
val load : file:string -> (t, string) result

(** {2 Comparison} *)

type verdict = {
  regressions : string list;
      (** hard failures: time regressions beyond the threshold, broken
          zero-alloc contracts, deterministic metrics that drifted *)
  improvements : string list;  (** speedups beyond the threshold, FYI *)
  notes : string list;  (** skipped or missing entries, mode mismatches *)
}

val ok : verdict -> bool

(** [compare ~baseline ~current ()] flags, per substrate benchmark present
    in both runs:
    - a time regression when [ns_per_run] grew by more than [threshold]
      (default 0.15, i.e. 15%) over the calibration-rescaled baseline and by
      more than [min_ns] (default 1000 ns, an absolute noise floor);
    - a zero-alloc contract break when the benchmark is named in the
      baseline's [zero_alloc] list and the current run allocates — this is
      machine-independent and is never excused by the threshold;
    - an allocation regression when [minor_words_per_run] grew past an
      allocation-specific factor (words/run estimates wobble more than time
      under Bechamel's OLS, so the gate fires on large multiplicative
      growth — the signature of a new per-operation allocation — not on
      estimator noise).

    Experiments are compared only when both runs used the same [quick] mode:
    wall-clock against the baseline with its own, much looser
    [wall_threshold] (default 1.0, i.e. a 2x backstop against catastrophic
    blowups — experiment wall-clocks are single-shot measurements of
    multi-second runs, which ambient machine load moves far beyond what the
    one-point calibration anchor can correct; the calibration rescale is
    applied only upward, for slower machines, and there is an absolute
    floor [min_wall_s], default 0.25 s), and every shared metric for exact
    agreement (the simulator is bit-deterministic, so any drift means the
    numerics changed and the baseline must be regenerated deliberately). *)
val compare :
  baseline:t ->
  current:t ->
  ?threshold:float ->
  ?wall_threshold:float ->
  ?min_ns:float ->
  ?min_wall_s:float ->
  unit ->
  verdict

(** Render a verdict for humans, one finding per line. *)
val pp_verdict : Format.formatter -> verdict -> unit
