(** Open-loop arrival processes: deterministic seeded inter-arrival
    generators for the serving workload ({!Cni_apps.Kv_serve}).

    A closed-loop client issues its next request only after the previous
    one completes, so a slow server quietly throttles its own load. An
    open-loop client draws request times from an {e arrival process} fixed
    in advance — the offered load never bends to the server's speed, which
    is what exposes queueing delay in the latency tail (DESIGN.md §3c).

    Two processes, both driven by one explicit {!Cni_engine.Rng} stream so
    every gap sequence is reproducible from its seed:

    - {e Poisson}: independent exponentially-distributed gaps at a constant
      rate — the memoryless baseline (inter-arrival coefficient of
      variation 1);
    - {e bursty ON/OFF}: a two-state modulated Poisson process. The source
      alternates between an ON period (arrivals at [on_rate_per_s]) and an
      OFF period (arrivals at [off_rate_per_s], possibly zero);
      period lengths are exponential with the given means. With
      [off_rate < on_rate] the same average load arrives in clumps, so the
      gap distribution is over-dispersed (coefficient of variation > 1)
      and the latency tail stretches even at moderate mean utilisation. *)

(** The process shape. Rates are requests per second of simulated time;
    period means are in simulated microseconds. *)
type kind =
  | Poisson of { rate_per_s : float }
  | Bursty of {
      on_rate_per_s : float;  (** arrival rate inside an ON period *)
      off_rate_per_s : float;  (** arrival rate inside an OFF period (>= 0) *)
      mean_on_us : float;  (** mean ON-period length, microseconds *)
      mean_off_us : float;  (** mean OFF-period length, microseconds *)
    }

(** A generator: one seeded stream of inter-arrival gaps. *)
type t

(** [validate_kind k] explains every parameter problem (non-positive rate
    or period mean, negative OFF rate) rather than raising; the scenario
    validator aggregates these. *)
val validate_kind : kind -> (unit, string list) result

(** [create ~seed k] builds a generator. Two generators with the same seed
    and kind produce identical gap sequences.
    @raise Invalid_argument when {!validate_kind} rejects [k]. *)
val create : seed:int -> kind -> t

val kind : t -> kind

(** The next inter-arrival gap. Always at least 1 ps (so arrival times are
    strictly increasing). A bursty generator advances its ON/OFF state
    machine as simulated time is consumed, crossing as many period
    boundaries as the draw requires. *)
val next_gap : t -> Cni_engine.Time.t

(** Long-run mean arrival rate of the process, requests per second: the
    Poisson rate, or the period-length-weighted average of the two bursty
    rates. Used for offered-load reporting and the doctor's utilisation
    check. *)
val mean_rate_per_s : kind -> float

(** Parse the profile-text form: [poisson RATE] or
    [bursty ON_RATE OFF_RATE MEAN_ON_US MEAN_OFF_US] (see
    docs/SCENARIOS.md). Accepts anything {!validate_kind} accepts. *)
val kind_of_string : string -> (kind, string) result

(** Print a kind in the form {!kind_of_string} parses; the round-trip is
    exact (rates and means are printed with full float precision). *)
val kind_to_string : kind -> string
