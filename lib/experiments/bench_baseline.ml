type substrate_result = { ns_per_run : float; minor_words_per_run : float }
type experiment_result = { wall_s : float; metrics : (string * float) list }

type t = {
  schema : int;
  label : string;
  quick : bool;
  zero_alloc : string list;
  substrate : (string * substrate_result) list;
  experiments : (string * experiment_result) list;
}

let schema_version = 1
let calibration_name = "calibration: 1M integer hash"

let make ~label ~quick ?(zero_alloc = []) ~substrate ~experiments () =
  { schema = schema_version; label; quick; zero_alloc; substrate; experiments }

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* %.17g round-trips every finite double; non-finite values are not valid
   JSON numbers, so they are written as null and read back as nan *)
let float_lit v =
  if Float.is_nan v || v = Float.infinity || v = Float.neg_infinity then "null"
  else Printf.sprintf "%.17g" v

let to_json t =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{\n";
  add (Printf.sprintf "  \"schema\": %d,\n" t.schema);
  add (Printf.sprintf "  \"label\": \"%s\",\n" (escape t.label));
  add (Printf.sprintf "  \"quick\": %b,\n" t.quick);
  add "  \"zero_alloc\": [";
  add (String.concat ", " (List.map (fun n -> Printf.sprintf "\"%s\"" (escape n)) t.zero_alloc));
  add "],\n";
  add "  \"substrate\": {\n";
  let n_sub = List.length t.substrate in
  List.iteri
    (fun i (name, r) ->
      add
        (Printf.sprintf "    \"%s\": { \"ns_per_run\": %s, \"minor_words_per_run\": %s }%s\n"
           (escape name) (float_lit r.ns_per_run)
           (float_lit r.minor_words_per_run)
           (if i < n_sub - 1 then "," else "")))
    t.substrate;
  add "  },\n";
  add "  \"experiments\": {\n";
  let n_exp = List.length t.experiments in
  List.iteri
    (fun i (name, r) ->
      add (Printf.sprintf "    \"%s\": {\n" (escape name));
      add (Printf.sprintf "      \"wall_s\": %s,\n" (float_lit r.wall_s));
      add "      \"metrics\": {";
      let n_m = List.length r.metrics in
      if n_m > 0 then begin
        add "\n";
        List.iteri
          (fun j (m, v) ->
            add
              (Printf.sprintf "        \"%s\": %s%s\n" (escape m) (float_lit v)
                 (if j < n_m - 1 then "," else "")))
          r.metrics;
        add "      "
      end;
      add "}\n";
      add (Printf.sprintf "    }%s\n" (if i < n_exp - 1 then "," else "")))
    t.experiments;
  add "  }\n";
  add "}\n";
  Buffer.contents buf

let save ~file t =
  let oc = open_out file in
  output_string oc (to_json t);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Parser: the subset of JSON the writer above produces (plus arrays,   *)
(* so the format can grow without breaking old readers)                 *)
(* ------------------------------------------------------------------ *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jlist of json list
  | Jobj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              pos := !pos + 4;
              (* names here are ASCII; anything else degrades visibly *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_char buf '?'
          | c -> fail (Printf.sprintf "bad escape \\%c" c));
          incr pos;
          go ()
      | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      incr pos
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Jobj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Jobj (members [])
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Jlist []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elems (v :: acc)
            | Some ']' ->
                incr pos;
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Jlist (elems [])
        end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member name = function Jobj kvs -> List.assoc_opt name kvs | _ -> None

let as_num = function Jnum f -> Some f | Jnull -> Some Float.nan | _ -> None

let of_json s =
  match parse_json s with
  | exception Parse_error msg -> Error msg
  | j -> (
      let num ctx v =
        match as_num v with
        | Some f -> f
        | None -> raise (Parse_error (ctx ^ ": expected a number"))
      in
      try
        let schema =
          match member "schema" j with
          | Some (Jnum f) -> int_of_float f
          | _ -> raise (Parse_error "missing \"schema\"")
        in
        if schema <> schema_version then
          Error (Printf.sprintf "unsupported schema version %d (want %d)" schema schema_version)
        else
          let label = match member "label" j with Some (Jstr l) -> l | _ -> "" in
          let quick = match member "quick" j with Some (Jbool b) -> b | _ -> false in
          let zero_alloc =
            match member "zero_alloc" j with
            | Some (Jlist l) ->
                List.filter_map (function Jstr s -> Some s | _ -> None) l
            | _ -> []
          in
          let substrate =
            match member "substrate" j with
            | Some (Jobj kvs) ->
                List.map
                  (fun (name, v) ->
                    let get k =
                      match member k v with
                      | Some x -> num (name ^ "." ^ k) x
                      | None -> raise (Parse_error (name ^ ": missing " ^ k))
                    in
                    ( name,
                      {
                        ns_per_run = get "ns_per_run";
                        minor_words_per_run = get "minor_words_per_run";
                      } ))
                  kvs
            | _ -> raise (Parse_error "missing \"substrate\" object")
          in
          let experiments =
            match member "experiments" j with
            | Some (Jobj kvs) ->
                List.map
                  (fun (name, v) ->
                    let wall_s =
                      match member "wall_s" v with
                      | Some x -> num (name ^ ".wall_s") x
                      | None -> raise (Parse_error (name ^ ": missing wall_s"))
                    in
                    let metrics =
                      match member "metrics" v with
                      | Some (Jobj ms) -> List.map (fun (m, x) -> (m, num m x)) ms
                      | _ -> []
                    in
                    (name, { wall_s; metrics }))
                  kvs
            | _ -> raise (Parse_error "missing \"experiments\" object")
          in
          Ok { schema; label; quick; zero_alloc; substrate; experiments }
      with Parse_error msg -> Error msg)

let load ~file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | s -> of_json s

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

type verdict = {
  regressions : string list;
  improvements : string list;
  notes : string list;
}

let ok v = v.regressions = []

(* below this many minor words/run a benchmark counts as allocation-free:
   OLS estimates wobble by a few words; a per-iteration allocation in a
   10k-op benchmark shows up as tens of thousands *)
let zero_alloc_eps = 64.0

(* words/run estimates are noisier than time under Bechamel's OLS (runs are
   discrete and GC-phase dependent), so the allocation gate fires only on
   multiplicative growth of this factor — the signature of a new
   per-operation allocation, far above estimator noise *)
let alloc_growth_factor = 1.75

(* experiment wall-clocks are single-shot measurements of multi-second runs
   on a possibly-shared machine, where ambient load routinely moves them by
   tens of percent — far beyond what the calibration anchor (measured once,
   at substrate time) can correct. They get their own, much looser gate — a
   backstop against catastrophic blowups (an accidental O(n^2), a debug
   loop left in) — while the tight [threshold] applies only to the
   OLS-estimated substrate times *)
let default_wall_threshold = 1.0

let compare ~baseline ~current ?(threshold = 0.15) ?(wall_threshold = default_wall_threshold)
    ?(min_ns = 1000.) ?(min_wall_s = 0.25) () =
  let regressions = ref [] and improvements = ref [] and notes = ref [] in
  let reg fmt = Printf.ksprintf (fun s -> regressions := s :: !regressions) fmt in
  let imp fmt = Printf.ksprintf (fun s -> improvements := s :: !improvements) fmt in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  (* machine-speed normalisation: when both runs measured the calibration
     spin loop, the ratio of the two estimates is the relative speed of the
     two machines, and baseline times are rescaled by it *)
  let scale =
    match
      ( List.assoc_opt calibration_name baseline.substrate,
        List.assoc_opt calibration_name current.substrate )
    with
    | Some b, Some c when b.ns_per_run > 0. && c.ns_per_run > 0. ->
        let s = c.ns_per_run /. b.ns_per_run in
        let s = Float.min 4.0 (Float.max 0.25 s) in
        if Float.abs (s -. 1.0) > 0.02 then
          note "machine-speed calibration: baseline times rescaled by %.2fx" s;
        s
    | _ -> 1.0
  in
  List.iter
    (fun (name, (b : substrate_result)) ->
      match List.assoc_opt name current.substrate with
      | None -> note "substrate %S: in baseline but not in this run" name
      | Some c when name = calibration_name -> ignore c (* the anchor is never gated *)
      | Some c ->
          let b_ns = b.ns_per_run *. scale in
          if c.ns_per_run > b_ns *. (1. +. threshold) && c.ns_per_run -. b_ns > min_ns then
            reg "substrate %S: time regressed %.1f -> %.1f ns/run (+%.0f%%, threshold %.0f%%)" name
              b_ns c.ns_per_run
              ((c.ns_per_run /. b_ns -. 1.) *. 100.)
              (threshold *. 100.)
          else if b_ns > min_ns && c.ns_per_run < b_ns *. (1. -. threshold) then
            imp "substrate %S: time improved %.1f -> %.1f ns/run (-%.0f%%)" name b_ns c.ns_per_run
              ((1. -. (c.ns_per_run /. b_ns)) *. 100.);
          if List.mem name baseline.zero_alloc && c.minor_words_per_run > zero_alloc_eps then
            reg
              "substrate %S: zero-alloc contract broken, %.1f -> %.1f minor words/run (must stay \
               ~0)"
              name b.minor_words_per_run c.minor_words_per_run
          else if
            b.minor_words_per_run > zero_alloc_eps
            && c.minor_words_per_run > b.minor_words_per_run *. alloc_growth_factor
          then
            reg "substrate %S: allocation regressed %.1f -> %.1f minor words/run (+%.0f%%)" name
              b.minor_words_per_run c.minor_words_per_run
              ((c.minor_words_per_run /. b.minor_words_per_run -. 1.) *. 100.)
          else if b.minor_words_per_run > zero_alloc_eps && c.minor_words_per_run <= zero_alloc_eps
          then
            imp "substrate %S: now allocation-free (was %.1f minor words/run)" name
              b.minor_words_per_run)
    baseline.substrate;
  if baseline.quick <> current.quick then
    note
      "baseline was recorded %s --quick but this run is %s: experiment wall-clock and metrics not \
       compared"
      (if baseline.quick then "with" else "without")
      (if current.quick then "with" else "without")
  else
    List.iter
      (fun (name, (b : experiment_result)) ->
        match List.assoc_opt name current.experiments with
        | None -> note "experiment %S: in baseline but not in this run" name
        | Some c ->
            (* a "faster machine" calibration reading must never tighten
               the loosest gate: rescale the wall baseline only upward (for
               genuinely slower machines), not downward *)
            let b_wall = b.wall_s *. Float.max scale 1.0 in
            if c.wall_s > b_wall *. (1. +. wall_threshold) && c.wall_s -. b_wall > min_wall_s then
              reg "experiment %S: wall-clock regressed %.2f -> %.2f s (+%.0f%%, threshold %.0f%%)"
                name b_wall c.wall_s
                ((c.wall_s /. b_wall -. 1.) *. 100.)
                (wall_threshold *. 100.)
            else if b_wall > min_wall_s && c.wall_s < b_wall *. (1. -. wall_threshold) then
              imp "experiment %S: wall-clock improved %.2f -> %.2f s (-%.0f%%)" name b_wall c.wall_s
                ((1. -. (c.wall_s /. b_wall)) *. 100.);
            List.iter
              (fun (m, bv) ->
                match List.assoc_opt m c.metrics with
                | None -> note "experiment %S: metric %S gone from this run" name m
                | Some cv ->
                    let both_nan = Float.is_nan bv && Float.is_nan cv in
                    let agree =
                      both_nan || bv = cv
                      || Float.abs (bv -. cv) <= 1e-9 *. Float.max (Float.abs bv) (Float.abs cv)
                    in
                    (* the simulator is bit-deterministic: metric drift means
                       the numerics changed and the baseline must be
                       regenerated deliberately *)
                    if not agree then
                      reg "experiment %S: deterministic metric %S drifted %.17g -> %.17g" name m bv
                        cv)
              b.metrics)
      baseline.experiments;
  {
    regressions = List.rev !regressions;
    improvements = List.rev !improvements;
    notes = List.rev !notes;
  }

let pp_verdict ppf v =
  List.iter (fun s -> Format.fprintf ppf "REGRESSION  %s@." s) v.regressions;
  List.iter (fun s -> Format.fprintf ppf "improved    %s@." s) v.improvements;
  List.iter (fun s -> Format.fprintf ppf "note        %s@." s) v.notes;
  if ok v then
    Format.fprintf ppf "bench-compare: OK (%d improvement(s), %d note(s))@."
      (List.length v.improvements) (List.length v.notes)
  else Format.fprintf ppf "bench-compare: FAIL (%d regression(s))@." (List.length v.regressions)
