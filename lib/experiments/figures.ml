module Time = Cni_engine.Time
module Params = Cni_machine.Params
module Jacobi = Cni_apps.Jacobi
module Water = Cni_apps.Water
module Cholesky = Cni_apps.Cholesky

let quick = ref false
let proc_counts = [ 1; 2; 4; 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* Applications as runner closures                                     *)
(* ------------------------------------------------------------------ *)

let jacobi_iters full = if !quick then max 4 (full / 2) else full

let jacobi ~n ~iterations cluster lrcs =
  ignore (Jacobi.run cluster lrcs { Jacobi.default_config with Jacobi.n; iterations })

let water ~molecules cluster lrcs =
  ignore (Water.run cluster lrcs { Water.default_config with Water.molecules })

let cholesky matrix cluster lrcs =
  ignore (Cholesky.run cluster lrcs (Cholesky.default_config matrix))

let bcsstk14 = lazy (Cholesky.bcsstk14_like ())

let bcsstk15 =
  lazy
    (if !quick then Cni_apps.Sparse.stiffness_like ~n:2400 ~dofs:3 ~seed:15
     else Cholesky.bcsstk15_like ())

(* ------------------------------------------------------------------ *)
(* Generic sweeps                                                      *)
(* ------------------------------------------------------------------ *)

(* speedup + hit ratio vs processor count, both interfaces; each
   configuration's speedup is measured against its own 1-processor run *)
let speedup_sweep ~id ~title ?(notes = []) app =
  let t1_cni = ref Time.zero and t1_std = ref Time.zero in
  let last_cni = ref None in
  let rows =
    List.map
      (fun procs ->
        let rc = Runner.run ~kind:(Runner.cni ()) ~procs app in
        let rs = Runner.run ~kind:Runner.standard ~procs app in
        if procs = 1 then begin
          t1_cni := rc.Runner.elapsed;
          t1_std := rs.Runner.elapsed
        end;
        last_cni := Some rc;
        [
          string_of_int procs;
          Report.f2 (Runner.speedup ~t1:!t1_cni rc);
          Report.f2 (Runner.speedup ~t1:!t1_std rs);
          Report.f1 rc.Runner.hit_ratio;
        ])
      proc_counts
  in
  (* headline metrics and the registry snapshot come from the CNI run at the
     highest processor count — the configuration the paper's plots end on *)
  let metrics, snapshot =
    match !last_cni with
    | Some rc ->
        ( [
            ("cni-hit-ratio-pct", rc.Runner.hit_ratio);
            ("cni-packets", float_of_int rc.Runner.packets);
            ("cni-wire-bytes", float_of_int rc.Runner.wire_bytes);
          ],
          rc.Runner.metrics )
    | None -> ([], [])
  in
  Report.make ~id ~title
    ~columns:[ "procs"; "cni-speedup"; "standard-speedup"; "cache-hit-%" ]
    ~notes ~metrics ~snapshot rows

(* speedup at 8 processors vs shared page size, both interfaces *)
let page_sweep ~id ~title ~pages ?(notes = []) app =
  let rows =
    List.map
      (fun page_bytes ->
        let params = { Params.default with Params.page_bytes } in
        let t1c = (Runner.run ~params ~kind:(Runner.cni ()) ~procs:1 app).Runner.elapsed in
        let t1s = (Runner.run ~params ~kind:Runner.standard ~procs:1 app).Runner.elapsed in
        let rc = Runner.run ~params ~kind:(Runner.cni ()) ~procs:8 app in
        let rs = Runner.run ~params ~kind:Runner.standard ~procs:8 app in
        [
          string_of_int page_bytes;
          Report.f2 (Runner.speedup ~t1:t1c rc);
          Report.f2 (Runner.speedup ~t1:t1s rs);
        ])
      pages
  in
  Report.make ~id ~title ~columns:[ "page-bytes"; "cni-speedup"; "standard-speedup" ] ~notes rows

(* the paper's Tables 2-4: per-category time at 8 processors, 10^9 cycles *)
let overhead_table ~id ~title ?(notes = []) app =
  let rc = Runner.run ~kind:(Runner.cni ()) ~procs:8 app in
  let rs = Runner.run ~kind:Runner.standard ~procs:8 app in
  let total r = Time.(r.Runner.computation + r.Runner.synch_overhead + r.Runner.synch_delay) in
  let rows =
    [
      [ "Synch overhead"; Report.gcycles rc.Runner.synch_overhead; Report.gcycles rs.Runner.synch_overhead ];
      [ "Synch delay"; Report.gcycles rc.Runner.synch_delay; Report.gcycles rs.Runner.synch_delay ];
      [ "Computation"; Report.gcycles rc.Runner.computation; Report.gcycles rs.Runner.computation ];
      [ "Total"; Report.gcycles (total rc); Report.gcycles (total rs) ];
    ]
  in
  Report.make ~id ~title
    ~columns:[ "Category"; "Time-CNI (10^9 cycles)"; "Time-standard (10^9 cycles)" ]
    ~notes
    ~metrics:
      [
        ("cni-elapsed-gcycles", rc.Runner.elapsed_cycles /. 1e9);
        ("standard-elapsed-gcycles", rs.Runner.elapsed_cycles /. 1e9);
        ("cni-hit-ratio-pct", rc.Runner.hit_ratio);
      ]
    ~snapshot:rc.Runner.metrics rows

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  let p = Params.default in
  let t fmt = Format.asprintf "%a" Time.pp fmt in
  let rows =
    [
      [ "CPU Frequency"; Printf.sprintf "%d MHz" (p.Params.cpu_hz / 1_000_000) ];
      [ "Primary Cache Access Time"; "1 cycle" ];
      [ "Primary Cache Size"; Printf.sprintf "%dK unified" (p.Params.l1_bytes / 1024) ];
      [ "Secondary Cache Access Time"; Printf.sprintf "%d cycles" p.Params.l2_access_cycles ];
      [ "Secondary Cache Size"; Printf.sprintf "%d MB unified" (p.Params.l2_bytes / 1048576) ];
      [ "Cache Organization"; "Direct-mapped" ];
      [ "Cache Policy"; "Write-back" ];
      [ "Memory Latency"; Printf.sprintf "%d cycles" p.Params.memory_latency_cycles ];
      [ "Bus Acquisition Time"; Printf.sprintf "%d cycles" p.Params.bus_acquire_cycles ];
      [ "Bus Transfer Rate"; Printf.sprintf "%d cycles per word" p.Params.bus_cycles_per_word ];
      [ "Bus Frequency"; Printf.sprintf "%d MHz" (p.Params.bus_hz / 1_000_000) ];
      [ "Switch Latency"; t p.Params.switch_latency ];
      [ "Network Processor Frequency"; Printf.sprintf "%d MHz" (p.Params.nic_hz / 1_000_000) ];
      [ "Network Latency"; t p.Params.link_latency ];
      [ "Interrupt Latency"; t p.Params.interrupt_latency ];
      [ "Message Cache Size"; Printf.sprintf "%d KB" (p.Params.message_cache_bytes / 1024) ];
    ]
  in
  Report.make ~id:"table1" ~title:"Simulation Parameters" ~columns:[ "Parameter"; "Value" ]
    ~notes:
      [
        "network latency read as 150 ns and interrupt latency as 40 us (OCR-garbled rows; \
         DESIGN.md section 4)";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Jacobi: figures 2-5, table 2                                        *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  speedup_sweep ~id:"fig2" ~title:"Jacobi 128x128: speedup & network cache hit ratio"
    ~notes:[ "paper: both configurations mediocre at 32 procs; CNI degrades less" ]
    (jacobi ~n:128 ~iterations:(jacobi_iters 30))

let fig3 () =
  speedup_sweep ~id:"fig3" ~title:"Jacobi 256x256: speedup & network cache hit ratio"
    (jacobi ~n:256 ~iterations:(jacobi_iters 24))

let fig4 () =
  speedup_sweep ~id:"fig4" ~title:"Jacobi 1024x1024: speedup & network cache hit ratio"
    ~notes:[ "paper: high hit ratio (96-99.5%); CNI modestly above standard" ]
    (jacobi ~n:1024 ~iterations:(jacobi_iters 16))

let fig5 () =
  page_sweep ~id:"fig5" ~title:"Page-size sensitivity: 8-processor Jacobi 1024x1024"
    ~pages:[ 1024; 2048; 4096; 8192; 16384 ]
    ~notes:[ "paper: CNI less sensitive to page size (lower page-transfer cost)" ]
    (jacobi ~n:1024 ~iterations:(jacobi_iters 12))

let table2 () =
  overhead_table ~id:"table2" ~title:"Overhead for 8-processor Jacobi 1024x1024"
    ~notes:[ "paper: CNI lowers synch overhead and delay; computation unchanged" ]
    (jacobi ~n:1024 ~iterations:(jacobi_iters 16))

(* ------------------------------------------------------------------ *)
(* Water: figures 6-9, table 3                                         *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  speedup_sweep ~id:"fig6" ~title:"Water 64 molecules: speedup & network cache hit ratio"
    (water ~molecules:64)

let fig7 () =
  speedup_sweep ~id:"fig7" ~title:"Water 216 molecules: speedup & network cache hit ratio"
    ~notes:[ "paper: hit ratio sensitive to processor count; improved scalability for CNI" ]
    (water ~molecules:216)

let fig8 () =
  speedup_sweep ~id:"fig8" ~title:"Water 343 molecules: speedup & network cache hit ratio"
    (water ~molecules:343)

let fig9 () =
  page_sweep ~id:"fig9" ~title:"Page-size sensitivity: 8-processor Water 216 molecules"
    ~pages:[ 1024; 2048; 4096; 8192 ]
    ~notes:[ "paper: CNI less sensitive despite some false sharing at larger pages" ]
    (water ~molecules:216)

let table3 () =
  overhead_table ~id:"table3" ~title:"Overhead for 8-processor Water 216 molecules"
    (water ~molecules:216)

(* ------------------------------------------------------------------ *)
(* Cholesky: figures 10-12, table 4                                    *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  speedup_sweep ~id:"fig10" ~title:"Cholesky bcsstk14-like: speedup & network cache hit ratio"
    ~notes:[ "paper: receive caching helps migratory pages; largest CNI gain of the three" ]
    (fun c l -> cholesky (Lazy.force bcsstk14) c l)

let fig11 () =
  speedup_sweep ~id:"fig11" ~title:"Cholesky bcsstk15-like: speedup & network cache hit ratio"
    ~notes:[ "paper: better speedup than bcsstk14 because of the larger matrix" ]
    (fun c l -> cholesky (Lazy.force bcsstk15) c l)

let fig12 () =
  page_sweep ~id:"fig12" ~title:"Page-size sensitivity: 8-processor Cholesky bcsstk14-like"
    ~pages:[ 1024; 2048; 4096; 8192 ]
    ~notes:[ "paper: very page-size sensitive; transmit/receive caching reduce the sensitivity" ]
    (fun c l -> cholesky (Lazy.force bcsstk14) c l)

let table4 () =
  overhead_table ~id:"table4" ~title:"Overhead for 8-processor Cholesky bcsstk14-like"
    ~notes:[ "paper: synchronization delay dominates this application" ]
    (fun c l -> cholesky (Lazy.force bcsstk14) c l)

(* ------------------------------------------------------------------ *)
(* Figure 13: Message Cache size sensitivity                           *)
(* ------------------------------------------------------------------ *)

let fig13 () =
  let sizes_kb = [ 8; 16; 32; 64; 128; 256; 512; 1024 ] in
  let last = ref None in
  let hit ~mc_kb app =
    (* grow the board so cache + handler segments always fit: the sweep asks
       for message caches up to the whole 1 MB OSIRIS memory *)
    let params =
      { Params.default with
        Params.nic_memory_bytes = (mc_kb * 1024) + (256 * 1024)
      }
    in
    let r = Runner.run ~params ~kind:(Runner.cni ~mc_bytes:(mc_kb * 1024) ()) ~procs:8 app in
    last := Some r;
    r.Runner.hit_ratio
  in
  let rows =
    List.map
      (fun kb ->
        [
          string_of_int kb;
          Report.f1 (hit ~mc_kb:kb (jacobi ~n:1024 ~iterations:(jacobi_iters 12)));
          Report.f1 (hit ~mc_kb:kb (water ~molecules:216));
          Report.f1 (hit ~mc_kb:kb (fun c l -> cholesky (Lazy.force bcsstk14) c l));
        ])
      sizes_kb
  in
  let metrics, snapshot =
    match !last with
    | Some r -> ([ ("final-hit-ratio-pct", r.Runner.hit_ratio) ], r.Runner.metrics)
    | None -> ([], [])
  in
  Report.make ~id:"fig13"
    ~title:"Network cache hit ratio vs Message Cache size (8 processors)"
    ~columns:[ "mc-KB"; "jacobi-hit-%"; "water-hit-%"; "cholesky-hit-%" ]
    ~notes:
      [
        "paper: Jacobi/Water saturate just beyond 32 KB; Cholesky needs ~512 KB to reach ~90%";
      ]
    ~metrics ~snapshot rows

(* ------------------------------------------------------------------ *)
(* Figure 14: node-to-node latency                                     *)
(* ------------------------------------------------------------------ *)

let fig14 () =
  let sizes = [ 0; 64; 128; 256; 512; 1024; 2048; 4096 ] in
  let points = Microbench.sweep ~sizes () in
  let rows =
    List.map
      (fun { Microbench.bytes; cni_us; standard_us; reduction_pct } ->
        [ string_of_int bytes; Report.f1 cni_us; Report.f1 standard_us; Report.f1 reduction_pct ])
      points
  in
  Report.make ~id:"fig14" ~title:"Node-to-node latency, CNI (100% cache hit) vs standard"
    ~columns:[ "message-bytes"; "cni-us"; "standard-us"; "reduction-%" ]
    ~notes:
      [
        "paper: ~33% lower latency for a 4 KB page-sized transfer";
        "the waiting receiver polls a CNI board but is interrupted by the standard one, \
         so small messages gain proportionally more here";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Table 5: unrestricted ATM cell size                                 *)
(* ------------------------------------------------------------------ *)

let table5 () =
  let unrestricted = { Params.default with Params.cell_payload_bytes = 1 lsl 26 } in
  let improvement app =
    let t = (Runner.run ~kind:(Runner.cni ()) ~procs:8 app).Runner.elapsed in
    let t' = (Runner.run ~params:unrestricted ~kind:(Runner.cni ()) ~procs:8 app).Runner.elapsed in
    100. *. (Time.to_s_float t -. Time.to_s_float t') /. Time.to_s_float t
  in
  let rows =
    [
      [ "Jacobi 1024x1024"; Report.f2 (improvement (jacobi ~n:1024 ~iterations:(jacobi_iters 16))) ];
      [ "Water 343 molecules"; Report.f2 (improvement (water ~molecules:343)) ];
      [ "Cholesky bcsstk14-like"; Report.f2 (improvement (fun c l -> cholesky (Lazy.force bcsstk14) c l)) ];
    ]
  in
  Report.make ~id:"table5"
    ~title:"Performance improvement with ATM of unrestricted cell size (8 processors)"
    ~columns:[ "Application"; "% improvement" ]
    ~notes:[ "paper: 5.69 / 13.31 / 25.29 — fragmentation overhead is a major detriment" ]
    rows

let all =
  [
    ("table1", table1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("table2", table2);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("table3", table3);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("table4", table4);
    ("fig13", fig13);
    ("fig14", fig14);
    ("table5", table5);
  ]
