(* Crash/restart chaos harness: deterministic fault schedules injected into
   real application runs, with the recovery metrics the ablation reports.
   Everything downstream of the seed is deterministic — two invocations with
   the same arguments produce identical metrics. *)

module Time = Cni_engine.Time
module Rng = Cni_engine.Rng
module Engine = Cni_engine.Engine
module Faults = Cni_atm.Faults
module Fabric = Cni_atm.Fabric
module Reliable = Cni_nic.Reliable
module Nic = Cni_nic.Nic
module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node
module Mp = Cni_mp.Mp
module Space = Cni_dsm.Space
module Lrc = Cni_dsm.Lrc
module Jacobi = Cni_apps.Jacobi

type metrics = {
  outcome : string;
  completed : bool;
  elapsed_us : float;
  crashes : int;
  restarts : int;
  retransmits : int;
  crash_drops : int;
  recoveries : int;
  mean_recovery_us : float;
  rx_timeouts : int;
  checksum : float;
}

(* [crashes] crash->restart windows in disjoint time slots (so the schedule
   always validates: a node is never crashed twice concurrently), nodes and
   in-slot jitter drawn from the seed. Node 0 is spared — it is the DSM
   manager and every harness's root/validator. *)
let schedule ~seed ~nodes ~crashes ~start ~slot ~down ~scrub =
  if crashes > 0 && nodes < 2 then invalid_arg "Chaos.schedule: need at least 2 nodes";
  let jitter = 40 in
  if slot <= Time.(down + Time.us jitter) then
    invalid_arg "Chaos.schedule: slot must exceed down time plus jitter";
  let rng = Rng.create ~seed in
  let evs = ref [] in
  for k = 0 to crashes - 1 do
    let node = 1 + Rng.int rng (nodes - 1) in
    let at = Time.(start + (slot * k) + Time.us (Rng.int rng jitter)) in
    evs :=
      { Faults.e_at = Time.(at + down); e_node = node; e_fault = Faults.Restart }
      :: { Faults.e_at = at; e_node = node; e_fault = Faults.Crash { scrub } }
      :: !evs
  done;
  List.rev !evs

let outcome_of_exn = function
  | Engine.Quiescence_timeout _ -> "watchdog"
  | Cluster.Deadlock _ -> "deadlock"
  | Engine.Fiber_failure (_, Reliable.Peer_dead _) -> "peer-dead"
  | Engine.Fiber_failure (_, Reliable.Delivery_failed _) -> "delivery-failed"
  | Lrc.Barrier_timeout _ | Engine.Fiber_failure (_, Lrc.Barrier_timeout _) ->
      "barrier-timeout"
  | e -> Printexc.to_string e

let collect ?(rx_timeouts = 0) ~outcome ~completed ~checksum ~sched cluster =
  let n = Cluster.size cluster in
  let fab = Cluster.fabric cluster in
  let crash_drops = ref 0 in
  for i = 0 to n - 1 do
    crash_drops := !crash_drops + Fabric.crash_drops fab ~node:i
  done;
  let recs = ref [] in
  for i = 0 to n - 1 do
    recs :=
      List.rev_append (Nic.recovery_latencies (Node.nic (Cluster.node cluster i))) !recs
  done;
  let recoveries = List.length !recs in
  let mean_recovery_us =
    if recoveries = 0 then 0.
    else
      List.fold_left (fun a t -> a +. Time.to_us_float t) 0. !recs
      /. float_of_int recoveries
  in
  let crashes =
    List.length
      (List.filter
         (fun e -> match e.Faults.e_fault with Faults.Crash _ -> true | Faults.Restart -> false)
         sched)
  in
  {
    outcome;
    completed;
    elapsed_us = Time.to_us_float (Cluster.elapsed cluster);
    crashes;
    restarts = List.length sched - crashes;
    retransmits = Cluster.retransmits cluster;
    crash_drops = !crash_drops;
    recoveries;
    mean_recovery_us;
    rx_timeouts;
    checksum;
  }

(* Closed-loop run: Jacobi over the DSM. A crashed node's host freezes and
   its peers' reliable delivery retries into the dead window; after the
   restart the frozen fiber thaws and the barriers drain, so the application
   is expected to complete — with the crash paid for as elapsed time — and
   produce the fault-free checksum. The watchdog turns any unrecovered run
   into a structured failure. *)
let run_dsm ?(seed = 7) ?(procs = 8) ?(n = 128) ?(iterations = 8) ?(scrub = false)
    ?(watchdog = Time.s 1) ?(kind = Runner.cni ()) ~crashes ~down () =
  let sched =
    schedule ~seed ~nodes:procs ~crashes ~start:(Time.us 200) ~slot:(Time.us 600) ~down
      ~scrub
  in
  let faults = { Faults.none with Faults.schedule = sched } in
  let params = Cni_machine.Params.default in
  let cluster = Cluster.create ~params ~faults ~nic_kind:kind ~nodes:procs () in
  let space = Space.create ~nprocs:procs ~page_bytes:params.Cni_machine.Params.page_bytes in
  let lrcs = Lrc.install cluster space () in
  match
    Jacobi.run ~watchdog cluster lrcs
      { Jacobi.default_config with Jacobi.n; iterations }
  with
  | r ->
      collect ~outcome:"ok" ~completed:true ~checksum:r.Jacobi.checksum ~sched cluster
  | exception e ->
      collect ~outcome:(outcome_of_exn e) ~completed:false ~checksum:nan ~sched cluster

(* Open-loop run: a message ring that never blocks indefinitely. Each round
   every rank sends its token to its successor and collects its
   predecessor's with [Mp.recv_timeout]; a round whose predecessor is
   crashed times out and moves on (counted), so the ring degrades instead of
   stalling. The checksum folds every token actually received. *)
let run_ring ?(seed = 7) ?(nodes = 8) ?(rounds = 24) ?(scrub = false)
    ?(rx_timeout = Time.us 400) ?(watchdog = Time.s 1) ?(kind = Runner.cni ())
    ~crashes ~down () =
  let sched =
    schedule ~seed ~nodes ~crashes ~start:(Time.us 100) ~slot:(Time.us 600) ~down ~scrub
  in
  let faults = { Faults.none with Faults.schedule = sched } in
  let cluster = Cluster.create ~faults ~nic_kind:kind ~nodes () in
  let eps = Mp.install cluster in
  let rx_timeouts = ref 0 in
  let checksum = ref 0. in
  match
    Cluster.run_app ~watchdog cluster (fun node ->
        let ep = eps.(Node.id node) in
        let me = Mp.rank ep in
        let next = (me + 1) mod Mp.size ep in
        for r = 0 to rounds - 1 do
          Mp.send ep ~dst:next ~tag:r ((me * rounds) + r);
          match Mp.recv_timeout ep ~tag:r ~timeout:rx_timeout () with
          | Some e -> checksum := !checksum +. float_of_int e.Mp.value
          | None -> incr rx_timeouts
        done)
  with
  | () ->
      collect ~rx_timeouts:!rx_timeouts ~outcome:"ok" ~completed:true ~checksum:!checksum
        ~sched cluster
  | exception e ->
      collect ~rx_timeouts:!rx_timeouts ~outcome:(outcome_of_exn e) ~completed:false
        ~checksum:nan ~sched cluster
