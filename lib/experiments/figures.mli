(** One driver per table/figure of the paper's evaluation (section 3), plus
    Table 1. Each returns a {!Report.t} with the same rows/series the paper
    plots; EXPERIMENTS.md records the paper-vs-measured comparison. *)

(** Scale runs down (~2x fewer Jacobi iterations, smaller Cholesky stand-in
    for bcsstk15) for faster turnaround; shapes are preserved. *)
val quick : bool ref

val proc_counts : int list

val table1 : unit -> Report.t
val fig2 : unit -> Report.t
val fig3 : unit -> Report.t
val fig4 : unit -> Report.t
val fig5 : unit -> Report.t
val table2 : unit -> Report.t
val fig6 : unit -> Report.t
val fig7 : unit -> Report.t
val fig8 : unit -> Report.t
val fig9 : unit -> Report.t
val table3 : unit -> Report.t
val fig10 : unit -> Report.t
val fig11 : unit -> Report.t
val fig12 : unit -> Report.t
val table4 : unit -> Report.t
val fig13 : unit -> Report.t
val fig14 : unit -> Report.t
val table5 : unit -> Report.t

(** All experiments in paper order: [(id, run)]. *)
val all : (string * (unit -> Report.t)) list
