(** One-stop execution of an application on a freshly built cluster. *)

type app =
  Cni_dsm.Protocol.msg Cni_cluster.Cluster.t -> Cni_dsm.Lrc.t array -> unit

type result = {
  elapsed : Cni_engine.Time.t;
  elapsed_cycles : float;  (** in CPU cycles (the paper's unit) *)
  hit_ratio : float;  (** network cache hit ratio, percent *)
  computation : Cni_engine.Time.t;
  synch_overhead : Cni_engine.Time.t;
  synch_delay : Cni_engine.Time.t;
  packets : int;
  wire_bytes : int;
  offered_packets : int;
      (** every send attempt, including frames a crashed/link-down source
          never transmitted *)
  delivered_packets : int;  (** frames that reached their destination node *)
  hop_waits : int;
      (** multi-switch hops where port or wire contention delayed a frame *)
  banyan_conflicts : int;
      (** internal switch wire overlaps (counted on every topology, charged
          only on multi-switch ones) *)
  message_mix : (string * int) list;
      (** protocol messages received, by kind, summed over nodes *)
  retransmits : int;
      (** NIC-level retransmissions summed over nodes (0 with reliability
          disabled) *)
  fault_drops : int;
      (** frames destroyed by the injected fault model, summed over nodes *)
  host_interrupts : int;
      (** host interrupts taken, summed over nodes — zero on a CNI board when
          everything runs as AIHs; the standard board's cost of existence *)
  polls : int;
      (** receive wakeups delivered to a host poll, summed over nodes (see
          {!Cni_nic.Nic.rx_policy}) *)
  wasted_polls : int;
      (** empty receive-ring checks while in poll mode, summed over nodes *)
  metrics : Cni_engine.Stats.Registry.snapshot;
      (** full registry snapshot: every node's NIC, ring, Message Cache, DSM
          and time-accounting metrics *)
}

(** Convenience NIC kinds. [rx_policy] and [rx_batch] configure the receive
    wakeup policy and coalescing depth of the CNI board (see
    {!Cni_nic.Nic.cni_options}). *)
val cni :
  ?mc_bytes:int ->
  ?mc_mode:Cni_nic.Message_cache.mode ->
  ?aih:bool ->
  ?rx_policy:Cni_nic.Nic.rx_policy ->
  ?rx_batch:int ->
  unit ->
  Cni_cluster.Cluster.nic_kind

val standard : Cni_cluster.Cluster.nic_kind

(** The OSIRIS base board: the intermediate design point. *)
val osiris : Cni_cluster.Cluster.nic_kind

(** [run ~kind ~procs app] builds a cluster + DSM and runs [app] to
    completion. [params] defaults to Table 1. [faults] makes the fabric
    lossy (implying NIC reliable delivery, see {!Cni_cluster.Cluster.create});
    [reliability] tunes or force-enables the delivery protocol;
    [topology] selects the fabric shape (see {!Cni_atm.Topology});
    [barrier_impl] selects the DSM barrier implementation (see
    {!Cni_dsm.Lrc.install}). *)
val run :
  ?params:Cni_machine.Params.t ->
  ?faults:Cni_atm.Faults.config ->
  ?reliability:Cni_nic.Reliable.config ->
  ?topology:Cni_atm.Topology.kind ->
  ?barrier_impl:[ `Centralised | `Nic_collective ] ->
  kind:Cni_cluster.Cluster.nic_kind ->
  procs:int ->
  app ->
  result

(** [speedup ~t1 r] = t1 / elapsed. *)
val speedup : t1:Cni_engine.Time.t -> result -> float
