(** Ablation benchmarks isolating the contribution of each CNI mechanism
    (DESIGN.md section 7): Message Cache, Application Interrupt Handlers,
    the polling/interrupt hybrid, and write-update vs invalidate snooping. *)

val message_cache : unit -> Report.t
val aih : unit -> Report.t
val hybrid_receive : unit -> Report.t
val snoop_mode : unit -> Report.t

(** Receive wakeup policy (interrupt / poll / hybrid / adaptive): a
    synthetic arrival-rate sweep against a computing host, coalescing rows,
    and the three applications with host handlers — whose checksums double
    as proof the policy changes timing only. *)
val rx_policy : unit -> Report.t

(** Wall-clock cost of the simulator's classification step (indexed DAG vs
    the linear reference scan) at 1/16/256 installed patterns. *)
val classifier_bench : unit -> Report.t

val all : (string * (unit -> Report.t)) list

(** Sensitivity of both interfaces to the host interrupt cost. *)
val interrupt_sensitivity : unit -> Report.t

(** Write-back vs write-through host caches (section 2.2's discussion). *)
val cache_policy : unit -> Report.t

(** standard vs OSIRIS vs CNI on the three applications. *)
val interface_evolution : unit -> Report.t

(** Elimination-ordering sensitivity of the Cholesky benchmark. *)
val ordering : unit -> Report.t

(** Graceful degradation: cell-loss sweep (0 .. 1e-3) for the three
    applications on both interfaces, with the reliable-delivery protocol
    recovering lost frames. Reports completion, retransmissions and slowdown
    relative to the zero-loss run. *)
val faults : unit -> Report.t

(** Node crash/restart chaos ({!Chaos}): seeded fault schedules against a
    closed-loop DSM run (expected to recover and reproduce the fault-free
    checksum) and an open-loop message ring (expected to degrade by timing
    out rounds, never to hang). Deterministic in the seed. *)
val chaos : unit -> Report.t

(** NIC-resident collectives: barrier/allreduce latency of the boards'
    combining tree ({!Cni_mp.Collectives}) against the host-driven paths as
    the node count grows, and the three applications with the DSM barrier
    switched between the centralised manager and the tree. *)
val collectives : unit -> Report.t

(** Fabric topology x combining-tree fanout ({!Cni_atm.Topology}): NIC-tree
    barrier/allreduce latency at 64 nodes under single-switch, fat-tree and
    3D-torus fabrics for fanouts 2/4/8, then Jacobi at 256 processors per
    topology. Identical checksums across topologies witness that the per-hop
    contention model changes timing only. *)
val topology : unit -> Report.t

(** Open-loop serving tails ({!Scenario} over {!Cni_apps.Kv_serve}):
    offered load x receive policy x topology at 16 nodes on a lossy
    fabric, with host-resident delivery so the receive policy is on the
    hot path. Reports p50/p99/p999/max response latency; every quantile is
    deterministic and pinned as a metric. *)
val serving : unit -> Report.t

(** Reliable delivery as closure handlers vs streaming firmware
    ({!Cni_nic.Reliable_ir}) over both interfaces, clean and lossy: the
    {!Reliable_flow} lockstep parity ring, with the firmware checksums and
    the streaming rx certificate pinned as metrics, plus the
    [reliable_firmware_activation] per-message cost microbench. *)
val reliable_firmware : unit -> Report.t
