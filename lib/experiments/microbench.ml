module Time = Cni_engine.Time
module Engine = Cni_engine.Engine
module Sync = Cni_engine.Sync
module Params = Cni_machine.Params
module Nic = Cni_nic.Nic
module Wire = Cni_nic.Wire
module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node

let channel = 7
let buffer_vaddr = 1 lsl 20

let header ~src =
  Wire.encode
    {
      Wire.kind = 1;
      cacheable = true;
      has_data = true;
      src;
      channel;
      obj = 0;
      aux = 0;
    }

(* One cluster per measurement. The receiving application is blocked waiting
   for the message — the realistic latency-test posture: a waiting host polls
   a CNI board (section 2.1's hybrid) while the standard board interrupts it
   regardless. The sender transmits the same buffer twice; the second
   (measured) send finds it in the Message Cache. *)
let latency ?(params = Params.default) ~kind ~bytes () =
  let cluster : Time.t Cluster.t = Cluster.create ~params ~nic_kind:kind ~nodes:2 () in
  let received = ref [] in
  let wake : (unit -> unit) option ref = ref None in
  let sender_go : (unit -> unit) option ref = ref None in
  let receiver_nic = Node.nic (Cluster.node cluster 1) in
  ignore
    (Nic.install_handler receiver_nic ~pattern:(Wire.pattern_channel ~channel) ~code_bytes:256
       (fun ctx pkt ->
         if bytes > 0 then ctx.Nic.deliver_page ~vaddr:buffer_vaddr ~bytes ~cacheable:false;
         received := (Engine.now (Cluster.engine cluster), pkt.Cni_atm.Fabric.payload) :: !received;
         match !wake with
         | Some f ->
             wake := None;
             f ()
         | None -> ()));
  Cluster.run_app cluster (fun node ->
      if Node.id node = 0 then begin
        let nic = Node.nic node in
        let send_one () =
          let t0 = Engine.now (Cluster.engine cluster) in
          let data =
            if bytes > 0 then Nic.Page { vaddr = buffer_vaddr; bytes; cacheable = true }
            else Nic.No_data
          in
          Nic.send nic ~dst:1 ~header:(header ~src:0) ~body_bytes:0 ~data ~payload:t0;
          Node.blocking node (fun () ->
              Engine.suspend (fun resume -> sender_go := Some (fun () -> resume ())))
        in
        send_one () (* warm the Message Cache *);
        send_one ()
      end
      else
        (* the receiver blocks on the channel for both messages: while it
           waits, the board sees the host as polling *)
        for _ = 1 to 2 do
          Node.blocking node (fun () ->
              Engine.suspend (fun resume -> wake := Some (fun () -> resume ())));
          match !sender_go with
          | Some f ->
              sender_go := None;
              f ()
          | None -> ()
        done);
  match !received with
  | (arrival, t0) :: _ -> Time.(arrival - t0)
  | [] -> failwith "Microbench: no delivery"

(* Collective-operation latency: [reps] barriers (plus [reps] integer
   allreduces when [allreduce]) over a fresh cluster, through either the
   NIC-resident combining tree (Collectives directly) or the host-driven Mp
   paths — the same episode count either way, so the per-op averages and the
   interrupt totals are comparable across interfaces and implementations. *)
type collective_point = {
  barrier_us : float;  (* average per-barrier latency *)
  allreduce_us : float;  (* average per-allreduce latency (0 when skipped) *)
  interrupts : int;  (* host interrupts taken, summed over nodes *)
}

let collective_latency ?(params = Params.default) ?(reps = 8) ?(allreduce = true) ~kind ~nodes
    ~nic () =
  let module Mp = Cni_mp.Mp in
  let cluster : int Mp.envelope Cluster.t =
    Cluster.create ~params ~nic_kind:kind ~nodes ()
  in
  let eps = Mp.install ~nic_collectives:nic cluster in
  let barrier_t = ref Time.zero and allreduce_t = ref Time.zero in
  Cluster.run_app cluster (fun node ->
      let ep = eps.(Node.id node) in
      let eng = Cluster.engine cluster in
      for _ = 1 to reps do
        let t0 = Engine.now eng in
        Mp.barrier ep;
        if Node.id node = 0 then barrier_t := Time.( + ) !barrier_t Time.(Engine.now eng - t0)
      done;
      if allreduce then
        for _ = 1 to reps do
          let t0 = Engine.now eng in
          ignore (Mp.allreduce ep ~op:( + ) ~bytes:8 (Node.id node));
          if Node.id node = 0 then
            allreduce_t := Time.( + ) !allreduce_t Time.(Engine.now eng - t0)
        done);
  let interrupts = ref 0 in
  for n = 0 to nodes - 1 do
    interrupts := !interrupts + (Nic.stats (Node.nic (Cluster.node cluster n))).Nic.interrupts
  done;
  let per t = Time.to_us_float t /. float_of_int reps in
  { barrier_us = per !barrier_t; allreduce_us = per !allreduce_t; interrupts = !interrupts }

type point = { bytes : int; cni_us : float; standard_us : float; reduction_pct : float }

let sweep ?(params = Params.default) ~sizes () =
  List.map
    (fun bytes ->
      (* app-level delivery on CNI goes through the ADC + polling hybrid,
         not an AIH (there is no protocol code to run, just data arrival) *)
      let cni_kind = Runner.cni ~aih:false () in
      let c = Time.to_us_float (latency ~params ~kind:cni_kind ~bytes ()) in
      let s = Time.to_us_float (latency ~params ~kind:`Standard ~bytes ()) in
      { bytes; cni_us = c; standard_us = s; reduction_pct = 100. *. (s -. c) /. s })
    sizes
