module Time = Cni_engine.Time
module Engine = Cni_engine.Engine
module Sync = Cni_engine.Sync
module Params = Cni_machine.Params
module Nic = Cni_nic.Nic
module Wire = Cni_nic.Wire
module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node

let channel = 7
let buffer_vaddr = 1 lsl 20

let header ~src =
  Wire.encode
    {
      Wire.kind = 1;
      cacheable = true;
      has_data = true;
      src;
      channel;
      obj = 0;
      aux = 0;
    }

(* One cluster per measurement. The receiving application is blocked waiting
   for the message — the realistic latency-test posture: a waiting host polls
   a CNI board (section 2.1's hybrid) while the standard board interrupts it
   regardless. The sender transmits the same buffer twice; the second
   (measured) send finds it in the Message Cache. *)
let latency ?(params = Params.default) ~kind ~bytes () =
  let cluster : Time.t Cluster.t = Cluster.create ~params ~nic_kind:kind ~nodes:2 () in
  let received = ref [] in
  let wake : (unit -> unit) option ref = ref None in
  let sender_go : (unit -> unit) option ref = ref None in
  let receiver_nic = Node.nic (Cluster.node cluster 1) in
  ignore
    (Nic.install_handler receiver_nic ~pattern:(Wire.pattern_channel ~channel) ~code_bytes:256
       (fun ctx pkt ->
         if bytes > 0 then ctx.Nic.deliver_page ~vaddr:buffer_vaddr ~bytes ~cacheable:false;
         received := (Engine.now (Cluster.engine cluster), pkt.Cni_atm.Fabric.payload) :: !received;
         match !wake with
         | Some f ->
             wake := None;
             f ()
         | None -> ()));
  Cluster.run_app cluster (fun node ->
      if Node.id node = 0 then begin
        let nic = Node.nic node in
        let send_one () =
          let t0 = Engine.now (Cluster.engine cluster) in
          let data =
            if bytes > 0 then Nic.Page { vaddr = buffer_vaddr; bytes; cacheable = true }
            else Nic.No_data
          in
          Nic.send nic ~dst:1 ~header:(header ~src:0) ~body_bytes:0 ~data ~payload:t0;
          Node.blocking node (fun () ->
              Engine.suspend (fun resume -> sender_go := Some (fun () -> resume ())))
        in
        send_one () (* warm the Message Cache *);
        send_one ()
      end
      else
        (* the receiver blocks on the channel for both messages: while it
           waits, the board sees the host as polling *)
        for _ = 1 to 2 do
          Node.blocking node (fun () ->
              Engine.suspend (fun resume -> wake := Some (fun () -> resume ())));
          match !sender_go with
          | Some f ->
              sender_go := None;
              f ()
          | None -> ()
        done);
  match !received with
  | (arrival, t0) :: _ -> Time.(arrival - t0)
  | [] -> failwith "Microbench: no delivery"

(* Collective-operation latency: [reps] barriers (plus [reps] integer
   allreduces when [allreduce]) over a fresh cluster, through either the
   NIC-resident combining tree (Collectives directly) or the host-driven Mp
   paths — the same episode count either way, so the per-op averages and the
   interrupt totals are comparable across interfaces and implementations. *)
type collective_point = {
  barrier_us : float;  (* average per-barrier latency *)
  allreduce_us : float;  (* average per-allreduce latency (0 when skipped) *)
  interrupts : int;  (* host interrupts taken, summed over nodes *)
}

let collective_latency ?(params = Params.default) ?(reps = 8) ?(allreduce = true) ?topology
    ?fanout ~kind ~nodes ~nic () =
  let module Mp = Cni_mp.Mp in
  let cluster : int Mp.envelope Cluster.t =
    Cluster.create ~params ?topology ~nic_kind:kind ~nodes ()
  in
  let eps = Mp.install ~nic_collectives:nic ?fanout cluster in
  let barrier_t = ref Time.zero and allreduce_t = ref Time.zero in
  Cluster.run_app cluster (fun node ->
      let ep = eps.(Node.id node) in
      let eng = Cluster.engine cluster in
      for _ = 1 to reps do
        let t0 = Engine.now eng in
        Mp.barrier ep;
        if Node.id node = 0 then barrier_t := Time.( + ) !barrier_t Time.(Engine.now eng - t0)
      done;
      if allreduce then
        for _ = 1 to reps do
          let t0 = Engine.now eng in
          ignore (Mp.allreduce ep ~op:( + ) ~bytes:8 (Node.id node));
          if Node.id node = 0 then
            allreduce_t := Time.( + ) !allreduce_t Time.(Engine.now eng - t0)
        done);
  let interrupts = ref 0 in
  for n = 0 to nodes - 1 do
    interrupts := !interrupts + (Nic.stats (Node.nic (Cluster.node cluster n))).Nic.interrupts
  done;
  let per t = Time.to_us_float t /. float_of_int reps in
  { barrier_us = per !barrier_t; allreduce_us = per !allreduce_t; interrupts = !interrupts }

(* Receive-policy behaviour at a controlled arrival rate. Node 0 paces
   [count] frames [gap] apart; node 1's application computes throughout (it
   is never blocked on the network), so the wakeup policy alone decides how
   each frame reaches the host: an interrupt stolen from the computation, a
   ring check, or — for the adaptive policy — whatever mode the measured
   rate selects. AIH is off: this exercises the ADC host-delivery path the
   policies govern. *)
type rx_point = {
  rx_interrupts : int;
  rx_polls : int;
  rx_wasted : int;
  rx_coalesced : int;
  rx_mode_switches : int;
  rx_latency_us : float;  (* mean send-to-handler latency *)
}

let rx_policy_sweep ?(params = Params.default) ?(count = 200) ?(rx_batch = 1) ~policy ~gap () =
  let kind =
    `Cni { Nic.default_cni_options with Nic.aih = false; rx_policy = policy; rx_batch }
  in
  let cluster : Time.t Cluster.t = Cluster.create ~params ~nic_kind:kind ~nodes:2 () in
  let eng = Cluster.engine cluster in
  let got = ref 0 and lat_sum = ref Time.zero in
  let receiver_nic = Node.nic (Cluster.node cluster 1) in
  ignore
    (Nic.install_handler receiver_nic ~pattern:(Wire.pattern_channel ~channel) ~code_bytes:64
       (fun _ pkt ->
         incr got;
         lat_sum := Time.(!lat_sum + (Engine.now eng - pkt.Cni_atm.Fabric.payload))));
  Cluster.run_app cluster (fun node ->
      if Node.id node = 0 then
        for _ = 1 to count do
          Nic.send (Node.nic node) ~dst:1 ~header:(header ~src:0) ~body_bytes:0
            ~data:Nic.No_data ~payload:(Engine.now eng);
          Engine.delay gap
        done
      else
        while !got < count do
          Node.work node 2_000;
          Node.overhead_time node Time.zero (* flush, so simulated time advances *)
        done);
  let s = Nic.stats receiver_nic in
  {
    rx_interrupts = s.Nic.interrupts;
    rx_polls = s.Nic.polls;
    rx_wasted = s.Nic.wasted_polls;
    rx_coalesced = s.Nic.coalesced;
    rx_mode_switches = s.Nic.mode_switches;
    rx_latency_us = Time.to_us_float !lat_sum /. float_of_int count;
  }

(* Wall-clock cost of the simulator's own classification step — the one data
   structure on the per-packet hot path — comparing the indexed DAG walk
   against the O(patterns) reference scan, at a growing pattern count (one
   pattern per channel, the AIH/collectives layout). This measures real
   host time, not simulated time. *)
type classifier_point = {
  cls_patterns : int;
  indexed_ns : float;
  linear_ns : float;
  cls_speedup : float;
}

let classifier_ops ~patterns () =
  let module Classifier = Cni_pathfinder.Classifier in
  let cls = Classifier.create () in
  for ch = 0 to patterns - 1 do
    ignore (Classifier.add cls (Wire.pattern_channel ~channel:ch) ch)
  done;
  let headers =
    Array.init 64 (fun i ->
        let channel = i * patterns / 64 in
        Wire.encode
          { Wire.kind = 1; cacheable = false; has_data = false; src = 0; channel;
            obj = 0; aux = 0 })
  in
  let measure f =
    (* grow the batch until it spans enough CPU time for Sys.time's
       resolution, then report per-op cost *)
    let rec run n =
      let t0 = Sys.time () in
      for i = 0 to n - 1 do
        f (Array.unsafe_get headers (i land 63))
      done;
      let dt = Sys.time () -. t0 in
      if dt < 0.05 then run (n * 4) else dt /. float_of_int n *. 1e9
    in
    run 1024
  in
  let indexed_ns = measure (fun h -> ignore (Classifier.classify cls h)) in
  let linear_ns = measure (fun h -> ignore (Classifier.classify_linear cls h)) in
  { cls_patterns = patterns; indexed_ns; linear_ns; cls_speedup = linear_ns /. indexed_ns }

(* Static-verifier throughput over the shipped corpus plus generated
   collectives firmware: how much wall-clock the install-time admission
   check itself costs. This is simulator CPU time (the verifier is real
   code), measured like [classifier_ops]. *)
type verifier_point = {
  vp_programs : int;  (* distinct programs in the measured mix *)
  vp_verifies_per_sec : float;
  vp_us_per_program : float;
}

let verifier_throughput () =
  let module Verify = Cni_aih.Aih_verify in
  let module Cir = Cni_mp.Collectives_ir in
  let module Rir = Cni_nic.Reliable_ir in
  let programs =
    List.map snd Cni_aih.Aih_corpus.good
    @ List.map (fun (_, _, p) -> p) Cni_aih.Aih_corpus.bad
    @ List.concat_map
        (fun op ->
          List.map
            (fun (rank, size, fanout) -> Cir.program ~op ~rank ~size ~fanout)
            [ (0, 8, 2); (3, 8, 2); (7, 64, 4) ])
        [ Cir.Sum; Cir.Max; Cir.Min ]
    (* streaming firmware: the per-byte/line-rate analysis is the costly
       verifier path, so the mix must exercise it *)
    @ List.concat_map
        (fun size -> [ Rir.rx_program ~size; Rir.tx_program ~size ])
        [ 2; 8; 64 ]
  in
  let programs = Array.of_list programs in
  let n = Array.length programs in
  let rec run batch =
    let t0 = Sys.time () in
    for i = 0 to batch - 1 do
      ignore (Verify.verify programs.(i mod n))
    done;
    let dt = Sys.time () -. t0 in
    if dt < 0.05 then run (batch * 4)
    else
      let per = dt /. float_of_int batch in
      { vp_programs = n; vp_verifies_per_sec = 1. /. per; vp_us_per_program = per *. 1e6 }
  in
  run 256

(* Verified-firmware vs closure handler activation cost, on the simulated
   clock: the same barrier/allreduce episodes through [Collectives] (flat
   per-dispatch charge) and [Collectives_ir] (per-instruction charge under
   the interpreter), with the certificate's worst case alongside what an
   episode actually costs. *)
type activation_point = {
  act_nodes : int;
  act_closure_barrier_us : float;
  act_ir_barrier_us : float;
  act_closure_allreduce_us : float;
  act_ir_allreduce_us : float;
  act_wcet_nic_cycles : int;  (* certificate bound, rank 0's firmware *)
  act_code_bytes : int;  (* certified object size, rank 0's firmware *)
}

let aih_activation ?(params = Params.default) ?(reps = 8) ~nodes () =
  let module Collectives = Cni_mp.Collectives in
  let module Cir = Cni_mp.Collectives_ir in
  let kind = Runner.cni () in
  let run_closure () =
    let cluster : int Cluster.t = Cluster.create ~params ~nic_kind:kind ~nodes () in
    let eps = Collectives.install ~inject:Fun.id ~project:Fun.id cluster in
    let barrier_t = ref Time.zero and allreduce_t = ref Time.zero in
    Cluster.run_app cluster (fun node ->
        let ep = eps.(Node.id node) in
        let eng = Cluster.engine cluster in
        for _ = 1 to reps do
          let t0 = Engine.now eng in
          Collectives.barrier ep;
          if Node.id node = 0 then barrier_t := Time.( + ) !barrier_t Time.(Engine.now eng - t0)
        done;
        for _ = 1 to reps do
          let t0 = Engine.now eng in
          ignore (Collectives.allreduce ep ~op:( + ) (Node.id node));
          if Node.id node = 0 then
            allreduce_t := Time.( + ) !allreduce_t Time.(Engine.now eng - t0)
        done);
    let per t = Time.to_us_float t /. float_of_int reps in
    (per !barrier_t, per !allreduce_t)
  in
  let run_ir () =
    let cluster : int Cluster.t = Cluster.create ~params ~nic_kind:kind ~nodes () in
    let eps = Cir.install ~op:Cir.Sum ~inject:Fun.id ~project:Fun.id cluster in
    let barrier_t = ref Time.zero and allreduce_t = ref Time.zero in
    Cluster.run_app cluster (fun node ->
        let ep = eps.(Node.id node) in
        let eng = Cluster.engine cluster in
        for _ = 1 to reps do
          let t0 = Engine.now eng in
          Cir.barrier ep;
          if Node.id node = 0 then barrier_t := Time.( + ) !barrier_t Time.(Engine.now eng - t0)
        done;
        for _ = 1 to reps do
          let t0 = Engine.now eng in
          ignore (Cir.allreduce ep (Node.id node));
          if Node.id node = 0 then
            allreduce_t := Time.( + ) !allreduce_t Time.(Engine.now eng - t0)
        done);
    let per t = Time.to_us_float t /. float_of_int reps in
    let cert = Cir.cert eps.(0) in
    (per !barrier_t, per !allreduce_t, cert)
  in
  let closure_barrier, closure_allreduce = run_closure () in
  let ir_barrier, ir_allreduce, cert = run_ir () in
  let wcet, bytes =
    match cert with
    | Some c -> Cni_aih.Aih_verify.(c.wcet_nic_cycles, c.code_bytes)
    | None -> (0, 0)
  in
  {
    act_nodes = nodes;
    act_closure_barrier_us = closure_barrier;
    act_ir_barrier_us = ir_barrier;
    act_closure_allreduce_us = closure_allreduce;
    act_ir_allreduce_us = ir_allreduce;
    act_wcet_nic_cycles = wcet;
    act_code_bytes = bytes;
  }

(* Closure reliability layer vs firmware-compiled reliable endpoints, on the
   simulated clock: the same lockstep ring through both, reported per
   delivered message, with the streaming rx certificate alongside — the
   admission evidence for the firmware that produced the firmware column. *)
type reliable_point = {
  rel_nodes : int;
  rel_messages : int;  (* per node *)
  rel_closure_us : float;  (* per delivered message, closure layer *)
  rel_firmware_us : float;  (* per delivered message, firmware endpoints *)
  rel_wcet_nic_cycles : int;  (* streaming rx certificate, per activation *)
  rel_wcet_per_byte_milli : int;  (* streaming rx certificate, per byte *)
}

let reliable_firmware_activation ?(nodes = 2) ?(messages = 8) ?(body_bytes = 96) () =
  let per impl =
    let o =
      Reliable_flow.run impl
        { Reliable_flow.default with Reliable_flow.nodes; messages; body_bytes }
    in
    float_of_int o.Reliable_flow.elapsed_ps
    /. 1e6
    /. float_of_int (List.length o.Reliable_flow.delivered)
  in
  let cert =
    match Cni_aih.Aih_verify.verify (Cni_nic.Reliable_ir.rx_program ~size:nodes) with
    | Ok c -> c
    | Error rjs ->
        failwith ("Microbench: reliable rx rejected: " ^ Cni_aih.Aih_verify.explain_all rjs)
  in
  {
    rel_nodes = nodes;
    rel_messages = messages;
    rel_closure_us = per Reliable_flow.Closure;
    rel_firmware_us = per Reliable_flow.Firmware;
    rel_wcet_nic_cycles = cert.Cni_aih.Aih_verify.wcet_nic_cycles;
    rel_wcet_per_byte_milli = cert.Cni_aih.Aih_verify.wcet_per_byte_milli;
  }

type point = { bytes : int; cni_us : float; standard_us : float; reduction_pct : float }

let sweep ?(params = Params.default) ~sizes () =
  List.map
    (fun bytes ->
      (* app-level delivery on CNI goes through the ADC + polling hybrid,
         not an AIH (there is no protocol code to run, just data arrival) *)
      let cni_kind = Runner.cni ~aih:false () in
      let c = Time.to_us_float (latency ~params ~kind:cni_kind ~bytes ()) in
      let s = Time.to_us_float (latency ~params ~kind:`Standard ~bytes ()) in
      { bytes; cni_us = c; standard_us = s; reduction_pct = 100. *. (s -. c) /. s })
    sizes
