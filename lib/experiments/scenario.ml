(* Scenario profiles: the (topology × workload × faults × rx policy × node
   count) product flattened into one record with a line-oriented text form.
   Parsing is strict about shape (first bad line wins, with its number);
   semantics are checked by [validate], which collects every problem. *)

module Time = Cni_engine.Time
module Params = Cni_machine.Params
module Topology = Cni_atm.Topology
module Faults = Cni_atm.Faults
module Nic = Cni_nic.Nic
module Kv_serve = Cni_apps.Kv_serve

type nic = Cni | Osiris | Standard
type rx = Interrupt | Poll | Hybrid | Adaptive

type profile = {
  name : string;
  summary : string;
  clients : int;
  servers : int;
  requests_per_client : int;
  arrival : Arrival.kind;
  value_bytes : int;
  put_pct : int;
  service_cycles : int;
  seed : int;
  nic : nic;
  aih : bool;
  rx_policy : rx;
  rx_batch : int;
  topology : Topology.kind;
  faults : Faults.config;
}

let default =
  {
    name = "";
    summary = "";
    clients = 12;
    servers = 4;
    requests_per_client = 40;
    arrival = Arrival.Poisson { rate_per_s = 20_000. };
    value_bytes = 256;
    put_pct = 20;
    service_cycles = 400;
    seed = 42;
    nic = Cni;
    aih = true;
    rx_policy = Hybrid;
    rx_batch = 1;
    topology = Topology.Single;
    faults = Faults.none;
  }

let nic_to_string = function Cni -> "cni" | Osiris -> "osiris" | Standard -> "standard"

let rx_to_string = function
  | Interrupt -> "interrupt"
  | Poll -> "poll"
  | Hybrid -> "hybrid"
  | Adaptive -> "adaptive"

let offered_rps p = float_of_int p.clients *. Arrival.mean_rate_per_s p.arrival

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let name_ok n =
  n <> ""
  && String.for_all (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-') n
  && n.[0] <> '-'

(* every crash must be matched by a later restart — a server that stays
   down strands its clients' blocking receives and the watchdog fires *)
let unpaired_crashes sched =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let c, r = Option.value (Hashtbl.find_opt tbl e.Faults.e_node) ~default:(0, 0) in
      match e.Faults.e_fault with
      | Faults.Crash _ -> Hashtbl.replace tbl e.Faults.e_node (c + 1, r)
      | Faults.Restart -> Hashtbl.replace tbl e.Faults.e_node (c, r + 1))
    sched;
  Hashtbl.fold (fun node (c, r) acc -> if c <> r then node :: acc else acc) tbl []
  |> List.sort compare

let validate p =
  let errs = ref [] in
  let bad fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  if not (name_ok p.name) then
    bad "name must be non-empty lowercase-kebab ([a-z0-9-], not starting with '-'): %S"
      p.name;
  (match
     Kv_serve.validate
       {
         Kv_serve.clients = p.clients;
         servers = p.servers;
         requests_per_client = p.requests_per_client;
         arrival = (fun _ () -> Time.ps 1);
         value_bytes = p.value_bytes;
         put_pct = p.put_pct;
         seed = p.seed;
         service_cycles = p.service_cycles;
       }
   with
  | Ok () -> ()
  | Error es -> errs := List.rev_append es !errs);
  (match Arrival.validate_kind p.arrival with
  | Ok () -> ()
  | Error es -> errs := List.rev_append es !errs);
  if p.rx_batch < 1 then bad "rx-batch must be >= 1 (got %d)" p.rx_batch;
  let nodes = p.clients + p.servers in
  (match Topology.validate p.topology ~nodes with
  | Ok () -> ()
  | Error e -> bad "topology: %s" e);
  (match Faults.validate ~nodes p.faults with
  | Ok () -> ()
  | Error es -> errs := List.rev_append es !errs);
  (match unpaired_crashes p.faults.Faults.schedule with
  | [] -> ()
  | ns ->
      bad "crash without matching restart on node%s %s (the workload could never drain)"
        (if List.length ns > 1 then "s" else "")
        (String.concat ", " (List.map string_of_int ns)));
  if !errs = [] then Ok () else Error (List.rev !errs)

(* ------------------------------------------------------------------ *)
(* Text format                                                         *)
(* ------------------------------------------------------------------ *)

let us_of_time t = Time.to_ps t / 1_000_000

let to_string p =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "name %s" p.name;
  if p.summary <> "" then line "summary %s" p.summary;
  line "clients %d" p.clients;
  line "servers %d" p.servers;
  line "requests %d" p.requests_per_client;
  line "arrival %s" (Arrival.kind_to_string p.arrival);
  line "value-bytes %d" p.value_bytes;
  line "put-pct %d" p.put_pct;
  line "service-cycles %d" p.service_cycles;
  line "seed %d" p.seed;
  line "nic %s" (nic_to_string p.nic);
  line "aih %s" (if p.aih then "on" else "off");
  line "rx-policy %s" (rx_to_string p.rx_policy);
  line "rx-batch %d" p.rx_batch;
  line "topology %s" (Topology.kind_to_string p.topology);
  if p.faults <> Faults.none then begin
    let f = p.faults in
    line "fault-seed %d" f.Faults.seed;
    line "loss %.17g" f.Faults.cell_loss;
    line "corrupt %.17g" f.Faults.cell_corrupt;
    line "drop %.17g" f.Faults.frame_drop;
    List.iter
      (fun w ->
        line "down %d %d %d" w.Faults.w_node (us_of_time w.Faults.w_from)
          (us_of_time w.Faults.w_upto))
      f.Faults.link_down;
    List.iter
      (fun e ->
        match e.Faults.e_fault with
        | Faults.Crash { scrub } ->
            line "crash %d %d%s" e.Faults.e_node (us_of_time e.Faults.e_at)
              (if scrub then " scrub" else "")
        | Faults.Restart -> line "restart %d %d" e.Faults.e_node (us_of_time e.Faults.e_at))
      f.Faults.schedule
  end;
  Buffer.contents b

let of_string text =
  let p = ref default in
  let got_name = ref false in
  let err = ref None in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i raw ->
      let ln = i + 1 in
      let fail fmt =
        Printf.ksprintf
          (fun m -> if !err = None then err := Some (Printf.sprintf "line %d: %s" ln m))
          fmt
      in
      let line =
        match String.index_opt raw '#' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      let line = String.trim line in
      if line <> "" && !err = None then begin
        let key, rest =
          match String.index_opt line ' ' with
          | Some j ->
              ( String.sub line 0 j,
                String.trim (String.sub line j (String.length line - j)) )
          | None -> (line, "")
        in
        let fields = List.filter (fun f -> f <> "") (String.split_on_char ' ' rest) in
        let intv what k =
          match int_of_string_opt rest with
          | Some v -> k v
          | None -> fail "%s: expected an integer, got %S" what rest
        in
        let floatv what k =
          match float_of_string_opt rest with
          | Some v -> k v
          | None -> fail "%s: expected a number, got %S" what rest
        in
        let int_field what s k =
          match int_of_string_opt s with
          | Some v -> k v
          | None -> fail "%s: expected an integer, got %S" what s
        in
        let set f = p := f !p in
        match key with
        | "name" ->
            if rest = "" then fail "name needs a value"
            else begin
              got_name := true;
              set (fun p -> { p with name = rest })
            end
        | "summary" -> set (fun p -> { p with summary = rest })
        | "clients" -> intv "clients" (fun v -> set (fun p -> { p with clients = v }))
        | "servers" -> intv "servers" (fun v -> set (fun p -> { p with servers = v }))
        | "requests" ->
            intv "requests" (fun v -> set (fun p -> { p with requests_per_client = v }))
        | "arrival" -> (
            match Arrival.kind_of_string rest with
            | Ok k -> set (fun p -> { p with arrival = k })
            | Error e -> fail "arrival: %s" e)
        | "value-bytes" ->
            intv "value-bytes" (fun v -> set (fun p -> { p with value_bytes = v }))
        | "put-pct" -> intv "put-pct" (fun v -> set (fun p -> { p with put_pct = v }))
        | "service-cycles" ->
            intv "service-cycles" (fun v -> set (fun p -> { p with service_cycles = v }))
        | "seed" -> intv "seed" (fun v -> set (fun p -> { p with seed = v }))
        | "nic" -> (
            match rest with
            | "cni" -> set (fun p -> { p with nic = Cni })
            | "osiris" -> set (fun p -> { p with nic = Osiris })
            | "standard" -> set (fun p -> { p with nic = Standard })
            | s -> fail "nic: expected cni, osiris or standard, got %S" s)
        | "aih" -> (
            match rest with
            | "on" -> set (fun p -> { p with aih = true })
            | "off" -> set (fun p -> { p with aih = false })
            | s -> fail "aih: expected on or off, got %S" s)
        | "rx-policy" -> (
            match rest with
            | "interrupt" -> set (fun p -> { p with rx_policy = Interrupt })
            | "poll" -> set (fun p -> { p with rx_policy = Poll })
            | "hybrid" -> set (fun p -> { p with rx_policy = Hybrid })
            | "adaptive" -> set (fun p -> { p with rx_policy = Adaptive })
            | s -> fail "rx-policy: expected interrupt, poll, hybrid or adaptive, got %S" s)
        | "rx-batch" -> intv "rx-batch" (fun v -> set (fun p -> { p with rx_batch = v }))
        | "topology" -> (
            match Topology.kind_of_string rest with
            | Ok k -> set (fun p -> { p with topology = k })
            | Error e -> fail "topology: %s" e)
        | "fault-seed" ->
            intv "fault-seed"
              (fun v -> set (fun p -> { p with faults = { p.faults with Faults.seed = v } }))
        | "loss" ->
            floatv "loss"
              (fun v ->
                set (fun p -> { p with faults = { p.faults with Faults.cell_loss = v } }))
        | "corrupt" ->
            floatv "corrupt"
              (fun v ->
                set (fun p -> { p with faults = { p.faults with Faults.cell_corrupt = v } }))
        | "drop" ->
            floatv "drop"
              (fun v ->
                set (fun p -> { p with faults = { p.faults with Faults.frame_drop = v } }))
        | "down" -> (
            match fields with
            | [ n; f; u ] ->
                int_field "down node" n (fun n ->
                    int_field "down start" f (fun f ->
                        int_field "down end" u (fun u ->
                            let w =
                              {
                                Faults.w_node = n;
                                w_from = Time.us f;
                                w_upto = Time.us u;
                              }
                            in
                            set (fun p ->
                                {
                                  p with
                                  faults =
                                    {
                                      p.faults with
                                      Faults.link_down =
                                        p.faults.Faults.link_down @ [ w ];
                                    };
                                }))))
            | _ -> fail "down takes exactly three fields: NODE FROM_US UPTO_US")
        | "crash" -> (
            let add n at scrub =
              int_field "crash node" n (fun n ->
                  int_field "crash time" at (fun at ->
                      let e =
                        {
                          Faults.e_at = Time.us at;
                          e_node = n;
                          e_fault = Faults.Crash { scrub };
                        }
                      in
                      set (fun p ->
                          {
                            p with
                            faults =
                              {
                                p.faults with
                                Faults.schedule = p.faults.Faults.schedule @ [ e ];
                              };
                          })))
            in
            match fields with
            | [ n; at ] -> add n at false
            | [ n; at; "scrub" ] -> add n at true
            | _ -> fail "crash takes NODE AT_US [scrub]")
        | "restart" -> (
            match fields with
            | [ n; at ] ->
                int_field "restart node" n (fun n ->
                    int_field "restart time" at (fun at ->
                        let e =
                          { Faults.e_at = Time.us at; e_node = n; e_fault = Faults.Restart }
                        in
                        set (fun p ->
                            {
                              p with
                              faults =
                                {
                                  p.faults with
                                  Faults.schedule = p.faults.Faults.schedule @ [ e ];
                                };
                            })))
            | _ -> fail "restart takes exactly two fields: NODE AT_US")
        | k -> fail "unknown key %S" k
      end)
    lines;
  match !err with
  | Some e -> Error e
  | None -> if not !got_name then Error "profile has no name line" else Ok !p

(* ------------------------------------------------------------------ *)
(* Preflight                                                           *)
(* ------------------------------------------------------------------ *)

let utilisation p =
  if p.service_cycles = 0 then 0.
  else
    offered_rps p *. float_of_int p.service_cycles
    /. (float_of_int p.servers *. float_of_int Params.default.Params.cpu_hz)

let preflight p =
  let nodes = p.clients + p.servers in
  let fields =
    let errs = ref [] in
    if not (name_ok p.name) then errs := [ Printf.sprintf "bad name %S" p.name ];
    (match
       Kv_serve.validate
         {
           Kv_serve.clients = p.clients;
           servers = p.servers;
           requests_per_client = p.requests_per_client;
           arrival = (fun _ () -> Time.ps 1);
           value_bytes = p.value_bytes;
           put_pct = p.put_pct;
           seed = p.seed;
           service_cycles = p.service_cycles;
         }
     with
    | Ok () -> ()
    | Error es -> errs := !errs @ es);
    if p.rx_batch < 1 then
      errs := !errs @ [ Printf.sprintf "rx-batch must be >= 1 (got %d)" p.rx_batch ];
    match !errs with
    | [] ->
        Ok
          (Printf.sprintf "%d clients x %d requests against %d servers" p.clients
             p.requests_per_client p.servers)
    | es -> Error (String.concat "; " es)
  in
  let arrival =
    match Arrival.validate_kind p.arrival with
    | Ok () ->
        Ok
          (Printf.sprintf "%s (%.0f req/s offered)" (Arrival.kind_to_string p.arrival)
             (offered_rps p))
    | Error es -> Error (String.concat "; " es)
  in
  let topology =
    match Topology.validate p.topology ~nodes with
    | Ok () -> Ok (Topology.describe (Topology.of_kind p.topology ~nodes))
    | Error e -> Error e
  in
  let faults =
    match Faults.validate ~nodes p.faults with
    | Error es -> Error (String.concat "; " es)
    | Ok () -> (
        match unpaired_crashes p.faults.Faults.schedule with
        | [] ->
            if Faults.is_none p.faults then Ok "fault-free"
            else
              Ok
                (Printf.sprintf "loss %g, corrupt %g, drop %g, %d windows, %d events"
                   p.faults.Faults.cell_loss p.faults.Faults.cell_corrupt
                   p.faults.Faults.frame_drop
                   (List.length p.faults.Faults.link_down)
                   (List.length p.faults.Faults.schedule))
        | ns ->
            Error
              (Printf.sprintf "crash without matching restart on node %s"
                 (String.concat ", " (List.map string_of_int ns))))
  in
  let capacity =
    let u = utilisation p in
    if u >= 1. then
      Error
        (Printf.sprintf
           "offered load is %.0f%% of aggregate service capacity — the queue (and the \
            tail) grows without bound"
           (u *. 100.))
    else Ok (Printf.sprintf "service utilisation %.1f%%" (u *. 100.))
  in
  let firmware =
    (* every firmware handler a profile of this size could install must fit
       the cell inter-arrival budget at the default link rate — the same
       admission Nic.install_handler_verified enforces at install time, so
       a FAIL here is a run that would die on its first install *)
    let module Verify = Cni_aih.Aih_verify in
    let budget = Params.line_rate_budget Params.default in
    let size = max 2 nodes in
    let handlers =
      [
        ("reliable-rx", Cni_nic.Reliable_ir.rx_program ~size);
        ("reliable-tx-stamp", Cni_nic.Reliable_ir.tx_program ~size);
      ]
    in
    let bad =
      List.filter_map
        (fun (name, prog) ->
          match Verify.verify ~cell_budget:budget prog with
          | Ok _ -> None
          | Error rjs -> Some (Printf.sprintf "%s: %s" name (Verify.explain_all rjs)))
        handlers
    in
    match bad with
    | [] ->
        Ok
          (Printf.sprintf "%d handlers fit the %d-cycle/cell budget" (List.length handlers)
             budget)
    | es -> Error (String.concat "; " es)
  in
  [
    ("profile fields", fields);
    ("arrival process", arrival);
    ("topology", topology);
    ("fault model", faults);
    ("service capacity", capacity);
    ("firmware line-rate admission", firmware);
  ]

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

let to_nic_kind p =
  match p.nic with
  | Cni ->
      let rx_policy =
        match p.rx_policy with
        | Interrupt -> Nic.Rx_interrupt
        | Poll -> Nic.Rx_poll
        | Hybrid -> Nic.Rx_hybrid
        | Adaptive -> Nic.Rx_adaptive Nic.default_rx_adaptive
      in
      Runner.cni ~aih:p.aih ~rx_policy ~rx_batch:p.rx_batch ()
  | Osiris -> Runner.osiris
  | Standard -> Runner.standard

let run ?watchdog p =
  (match validate p with
  | Ok () -> ()
  | Error errs -> invalid_arg ("Scenario.run: " ^ String.concat "; " errs));
  let cfg =
    {
      Kv_serve.clients = p.clients;
      servers = p.servers;
      requests_per_client = p.requests_per_client;
      arrival =
        (fun client ->
          let g = Arrival.create ~seed:(p.seed + (104729 * (client + 1))) p.arrival in
          fun () -> Arrival.next_gap g);
      value_bytes = p.value_bytes;
      put_pct = p.put_pct;
      seed = p.seed;
      service_cycles = p.service_cycles;
    }
  in
  Kv_serve.run ?watchdog ~faults:p.faults ~topology:p.topology ~nic_kind:(to_nic_kind p)
    cfg

(* ------------------------------------------------------------------ *)
(* Built-ins                                                           *)
(* ------------------------------------------------------------------ *)

let builtins =
  [
    {
      default with
      name = "baseline-16";
      summary = "single-switch CNI hybrid at moderate Poisson load: the reference tail";
    };
    {
      default with
      name = "baseline-64";
      summary = "the reference workload scaled to 64 nodes on one switch";
      clients = 48;
      servers = 16;
    };
    {
      default with
      name = "hot-poll-16";
      summary = "high offered load through the host receive path, pure polling";
      arrival = Arrival.Poisson { rate_per_s = 100_000. };
      requests_per_client = 60;
      aih = false;
      rx_policy = Poll;
    };
    {
      default with
      name = "hot-interrupt-16";
      summary = "high offered load through the host receive path, an interrupt per packet";
      arrival = Arrival.Poisson { rate_per_s = 100_000. };
      requests_per_client = 60;
      aih = false;
      rx_policy = Interrupt;
    };
    {
      default with
      name = "burst-faulty-torus";
      summary = "bursty clients on a lossy 3D torus with a server crash mid-run";
      arrival =
        Arrival.Bursty
          {
            on_rate_per_s = 100_000.;
            off_rate_per_s = 0.;
            mean_on_us = 200.;
            mean_off_us = 600.;
          };
      topology = Topology.Torus { dims = None };
      faults =
        {
          Faults.none with
          Faults.seed = 7;
          cell_loss = 1e-4;
          schedule =
            [
              { Faults.e_at = Time.us 400; e_node = 1; e_fault = Faults.Crash { scrub = false } };
              { Faults.e_at = Time.us 700; e_node = 1; e_fault = Faults.Restart };
            ];
        };
    };
    {
      default with
      name = "standard-nic-16";
      summary = "the conventional interface under the reference load: every packet interrupts";
      nic = Standard;
    };
  ]

let find name = List.find_opt (fun p -> p.name = name) builtins
