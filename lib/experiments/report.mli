(** Rendering of experiment results as aligned text tables (one per paper
    figure/table) and optional CSV files. *)

type t = {
  id : string;  (** e.g. "fig4" *)
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;  (** shape expectations, caveats *)
  metrics : (string * float) list;
      (** headline scalar metrics, printed under the table and exported *)
  snapshot : Cni_engine.Stats.Registry.snapshot;
      (** full registry snapshot backing the headline numbers *)
}

val make : id:string -> title:string -> columns:string list -> ?notes:string list ->
  ?metrics:(string * float) list -> ?snapshot:Cni_engine.Stats.Registry.snapshot ->
  string list list -> t

(** Render as an aligned text block. *)
val to_text : t -> string

val print : t -> unit

(** Write rows as CSV to [dir]/[id].csv. *)
val write_csv : dir:string -> t -> unit

(** Write the headline metrics and the registry snapshot as JSON to
    [dir]/[id].metrics.json. *)
val write_metrics_json : dir:string -> t -> unit

(** Formatting helpers. *)
val f1 : float -> string

val f2 : float -> string
val gcycles : Cni_engine.Time.t -> string
(** time in 10^9 CPU cycles at the default 166 MHz, 3 decimals — the unit of
    the paper's Tables 2-4 *)
