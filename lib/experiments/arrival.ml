(* Open-loop arrival processes. All randomness comes from one explicit
   SplitMix64 stream per generator, so a gap sequence is a pure function of
   (seed, kind) — the scenario layer and the qcheck distribution tests both
   depend on that. *)

module Time = Cni_engine.Time
module Rng = Cni_engine.Rng

type kind =
  | Poisson of { rate_per_s : float }
  | Bursty of {
      on_rate_per_s : float;
      off_rate_per_s : float;
      mean_on_us : float;
      mean_off_us : float;
    }

type t = {
  kind : kind;
  rng : Rng.t;
  (* bursty state machine: which period we are in and how much of it is
     left (picoseconds). Unused for Poisson. *)
  mutable in_on : bool;
  mutable left_ps : int;
}

let validate_kind = function
  | Poisson { rate_per_s } ->
      if rate_per_s > 0. && Float.is_finite rate_per_s then Ok ()
      else Error [ Printf.sprintf "poisson rate must be positive (got %g)" rate_per_s ]
  | Bursty { on_rate_per_s; off_rate_per_s; mean_on_us; mean_off_us } ->
      let errs = ref [] in
      let bad fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
      if not (on_rate_per_s > 0. && Float.is_finite on_rate_per_s) then
        bad "bursty ON rate must be positive (got %g)" on_rate_per_s;
      if not (off_rate_per_s >= 0. && Float.is_finite off_rate_per_s) then
        bad "bursty OFF rate must be >= 0 (got %g)" off_rate_per_s;
      if not (mean_on_us > 0. && Float.is_finite mean_on_us) then
        bad "bursty mean ON period must be positive (got %g us)" mean_on_us;
      if not (mean_off_us > 0. && Float.is_finite mean_off_us) then
        bad "bursty mean OFF period must be positive (got %g us)" mean_off_us;
      if !errs = [] then Ok () else Error (List.rev !errs)

(* Inverse-CDF exponential sample, in picoseconds of simulated time.
   [Rng.float] is uniform in [0,1), so [1 - u] is in (0,1] and the log is
   finite; the result is clamped to >= 1 ps so arrival times strictly
   increase. *)
let exp_ps rng ~rate_per_s =
  let u = Rng.float rng in
  let gap_s = -.log (1. -. u) /. rate_per_s in
  Stdlib.max 1 (int_of_float (gap_s *. 1e12))

(* Exponential period length with the given mean (mean_us > 0). *)
let period_ps rng ~mean_us =
  let u = Rng.float rng in
  Stdlib.max 1 (int_of_float (-.log (1. -. u) *. mean_us *. 1e6))

let create ~seed kind =
  (match validate_kind kind with
  | Ok () -> ()
  | Error errs -> invalid_arg ("Arrival.create: " ^ String.concat "; " errs));
  let rng = Rng.create ~seed in
  let t = { kind; rng; in_on = true; left_ps = 0 } in
  (match kind with
  | Poisson _ -> ()
  | Bursty { mean_on_us; _ } -> t.left_ps <- period_ps rng ~mean_us:mean_on_us);
  t

let kind t = t.kind

let next_gap t =
  match t.kind with
  | Poisson { rate_per_s } -> Time.ps (exp_ps t.rng ~rate_per_s)
  | Bursty { on_rate_per_s; off_rate_per_s; mean_on_us; mean_off_us } ->
      (* accumulate simulated time across period boundaries until a draw at
         the current period's rate lands inside it *)
      let switch () =
        if t.in_on then begin
          t.in_on <- false;
          t.left_ps <- period_ps t.rng ~mean_us:mean_off_us
        end
        else begin
          t.in_on <- true;
          t.left_ps <- period_ps t.rng ~mean_us:mean_on_us
        end
      in
      let acc = ref 0 in
      let gap = ref 0 in
      while !gap = 0 do
        let rate = if t.in_on then on_rate_per_s else off_rate_per_s in
        if rate <= 0. then begin
          (* silent period: skip it whole (an OFF period with rate 0 can
             never produce an arrival) *)
          acc := !acc + t.left_ps;
          switch ()
        end
        else begin
          let g = exp_ps t.rng ~rate_per_s:rate in
          if g <= t.left_ps then begin
            t.left_ps <- t.left_ps - g;
            gap := !acc + g
          end
          else begin
            acc := !acc + t.left_ps;
            switch ()
          end
        end
      done;
      Time.ps !gap

let mean_rate_per_s = function
  | Poisson { rate_per_s } -> rate_per_s
  | Bursty { on_rate_per_s; off_rate_per_s; mean_on_us; mean_off_us } ->
      ((on_rate_per_s *. mean_on_us) +. (off_rate_per_s *. mean_off_us))
      /. (mean_on_us +. mean_off_us)

let kind_to_string = function
  | Poisson { rate_per_s } -> Printf.sprintf "poisson %.17g" rate_per_s
  | Bursty { on_rate_per_s; off_rate_per_s; mean_on_us; mean_off_us } ->
      Printf.sprintf "bursty %.17g %.17g %.17g %.17g" on_rate_per_s off_rate_per_s
        mean_on_us mean_off_us

let kind_of_string s =
  let fields =
    String.split_on_char ' ' (String.trim s) |> List.filter (fun f -> f <> "")
  in
  let float_field name f =
    match float_of_string_opt f with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "%s: expected a number, got %S" name f)
  in
  let check kind = match validate_kind kind with
    | Ok () -> Ok kind
    | Error errs -> Error (String.concat "; " errs)
  in
  match fields with
  | [ "poisson"; rate ] ->
      Result.bind (float_field "poisson rate" rate) (fun rate_per_s ->
          check (Poisson { rate_per_s }))
  | [ "bursty"; on_r; off_r; on_us; off_us ] ->
      Result.bind (float_field "bursty ON rate" on_r) (fun on_rate_per_s ->
          Result.bind (float_field "bursty OFF rate" off_r) (fun off_rate_per_s ->
              Result.bind (float_field "bursty mean ON period" on_us)
                (fun mean_on_us ->
                  Result.bind (float_field "bursty mean OFF period" off_us)
                    (fun mean_off_us ->
                      check
                        (Bursty
                           { on_rate_per_s; off_rate_per_s; mean_on_us; mean_off_us })))))
  | "poisson" :: _ -> Error "poisson takes exactly one field: RATE_PER_S"
  | "bursty" :: _ ->
      Error "bursty takes exactly four fields: ON_RATE OFF_RATE MEAN_ON_US MEAN_OFF_US"
  | kind :: _ -> Error (Printf.sprintf "unknown arrival process %S (expected poisson or bursty)" kind)
  | [] -> Error "empty arrival specification"
