(** Lockstep reliable-delivery flow: parity harness between the closure
    reliability layer inside {!Cni_nic.Nic} and the firmware-compiled
    {!Cni_nic.Reliable_ir} endpoints.

    A token ring serializes the traffic — node [r] sends its [messages]
    frames to [r+1] only after receiving all of [r-1]'s, and waits for
    each frame's acknowledgment before posting the next — so exactly one
    frame is on the fabric at a time. Because {!Cni_atm.Faults} draws its
    random stream per frame in injection order, both implementations then
    face the {e same} loss/corruption/drop verdicts on the {e same} frame
    sequence, and a faithful firmware compilation must reproduce the
    closure layer's delivery outcomes and counters exactly. *)

type impl = Closure | Firmware

val impl_name : impl -> string

type config = {
  nic : Cni_cluster.Cluster.nic_kind;
  nodes : int;
  messages : int;  (** frames each node sends to its ring successor *)
  body_bytes : int;
  faults : Cni_atm.Faults.config option;
  pace : Cni_engine.Time.t option;
      (** post message [i] of node [r]'s flow no earlier than absolute
          slot [pace * (r * messages + i - 1)]. Required for parity under
          {e timed} fault schedules: the grid absorbs the speed difference
          between the two implementations so the same frame is in flight
          when a crash or link-down window opens. *)
}

(** 2-node CNI ring, 8 messages of 96 bytes, clean fabric, unpaced. *)
val default : config

type counters = { retransmits : int; acks_tx : int; acks_rx : int; rx_duplicates : int }

type outcome = {
  delivered : (int * int * int) list;
      (** [(receiver, src, payload)] in per-receiver arrival order,
          receivers ascending *)
  per_node : counters array;
  elapsed_ps : int;  (** wall-clock; implementation-dependent, not hashed *)
  checksum : int;
      (** over [delivered] and [per_node] — equal checksums mean equal
          protocol behaviour *)
}

(** @raise Invalid_argument on fewer than 2 nodes or 1 message. *)
val run : impl -> config -> outcome
