(* Lockstep reliable-delivery flow: the parity harness between the closure
   reliability layer ({!Cni_nic.Reliable} driven inside [Nic]) and the
   firmware-compiled endpoints ({!Cni_nic.Reliable_ir}).

   The traffic pattern is a token ring: node 0 sends [messages] frames to
   node 1, which forwards the token by sending its own [messages] frames to
   node 2 once it has received all of node 0's, and so on around the ring.
   Each sender also waits for every frame to be acknowledged before posting
   the next, so exactly one frame (data or its ack) is on the fabric at any
   instant, cluster-wide. That discipline is what makes the comparison
   exact: the fault model draws its random stream per frame in injection
   order, so two runs that put the same frame sequence on the wire suffer
   identical loss, corruption and drop verdicts — and must then produce
   identical delivery outcomes and protocol counters, whichever
   implementation recovered from them. *)

module Engine = Cni_engine.Engine
module Time = Cni_engine.Time
module Sync = Cni_engine.Sync
module Faults = Cni_atm.Faults
module Nic = Cni_nic.Nic
module Wire = Cni_nic.Wire
module Reliable = Cni_nic.Reliable
module Reliable_ir = Cni_nic.Reliable_ir
module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node

type impl = Closure | Firmware

let impl_name = function Closure -> "closure" | Firmware -> "firmware"

type config = {
  nic : Cluster.nic_kind;
  nodes : int;
  messages : int;
  body_bytes : int;
  faults : Faults.config option;
  pace : Time.t option;
}

let default =
  {
    nic = `Cni Nic.default_cni_options;
    nodes = 2;
    messages = 8;
    body_bytes = 96;
    faults = None;
    pace = None;
  }

type counters = { retransmits : int; acks_tx : int; acks_rx : int; rx_duplicates : int }

type outcome = {
  delivered : (int * int * int) list;
  per_node : counters array;
  elapsed_ps : int;
  checksum : int;
}

(* the wire channel the closure run's application frames ride on (the
   firmware run uses Reliable_ir's own channels instead) *)
let closure_channel = 11

(* payload value of message [i] (1-based) from [src]: distinct across the
   whole run so a misdelivered or duplicated frame shifts the checksum *)
let value_of ~src ~i = (src lsl 16) lor i

let checksum_of ~delivered ~(per_node : counters array) =
  let h = ref 0x9e37 in
  let mix x = h := ((!h * 31) + x + 1) land 0x3FFFFFFF in
  List.iter
    (fun (r, s, v) ->
      mix r;
      mix s;
      mix v)
    delivered;
  Array.iter
    (fun c ->
      mix c.retransmits;
      mix c.acks_tx;
      mix c.acks_rx;
      mix c.rx_duplicates)
    per_node;
  !h

let finish cluster ~received ~per_node =
  let delivered =
    List.concat (Array.to_list (Array.map (fun q -> List.rev !q) received))
  in
  {
    delivered;
    per_node;
    elapsed_ps = Time.to_ps (Cluster.elapsed cluster);
    checksum = checksum_of ~delivered ~per_node;
  }

let watchdog = Time.s 30

(* With [pace] set, message [i] of node [r]'s flow is posted no earlier
   than absolute slot [pace * (r * messages + i - 1)]. The two
   implementations run the protocol at slightly different speeds (AIH
   cycles vs closure cost model); free-running, that skew accumulates
   until a timed fault window catches one of them mid-frame and not the
   other. An absolute grid much coarser than the skew realigns every send,
   which is what makes {e timed} fault schedules (crash/restart, link-down
   windows) comparable — probabilistic faults are order-based and do not
   need it. *)
let wait_slot cfg eng node ~rank ~i =
  match cfg.pace with
  | None -> ()
  | Some p ->
      let slot = Time.(p * ((rank * cfg.messages) + i - 1)) in
      let lag = Time.(slot - Engine.now eng) in
      if Time.to_ps lag > 0 then Node.blocking node (fun () -> Engine.delay lag)

(* The delivery-token plumbing both implementations share: per-node arrival
   logs and the ivar node [r]'s sender fiber blocks on until every frame
   from its ring predecessor has arrived. *)
let make_tokens n ~messages =
  let received = Array.init n (fun _ -> ref []) in
  let go = Array.init n (fun _ -> Sync.Ivar.create ()) in
  let record ~node ~src ~value =
    received.(node) := (node, src, value) :: !(received.(node));
    if List.length !(received.(node)) = messages && node > 0 then
      Sync.Ivar.fill go.(node) ()
  in
  (received, go, record)

let run_closure cfg =
  let n = cfg.nodes in
  let cluster =
    Cluster.create ?faults:cfg.faults ~reliability:Reliable.default ~nic_kind:cfg.nic
      ~nodes:n ()
  in
  let received, go, record = make_tokens n ~messages:cfg.messages in
  Array.iter
    (fun node ->
      let id = Node.id node in
      ignore
        (Nic.install_handler (Node.nic node)
           ~pattern:(Wire.pattern_channel ~channel:closure_channel)
           (fun _ctx pkt ->
             match Wire.decode_opt pkt.Cni_atm.Fabric.header with
             | Some h -> record ~node:id ~src:h.Wire.src ~value:pkt.Cni_atm.Fabric.payload
             | None -> ())))
    (Cluster.nodes cluster);
  Cluster.run_app ~watchdog cluster (fun node ->
      let r = Node.id node in
      let nic = Node.nic node in
      if r > 0 then Node.blocking node (fun () -> Sync.Ivar.read go.(r));
      let dst = (r + 1) mod n in
      for i = 1 to cfg.messages do
        wait_slot cfg (Cluster.engine cluster) node ~rank:r ~i;
        let header =
          Wire.encode
            {
              Wire.kind = 1;
              cacheable = false;
              has_data = false;
              src = r;
              channel = closure_channel;
              obj = i;
              aux = 0;
            }
        in
        Nic.send nic ~dst ~header ~body_bytes:cfg.body_bytes ~data:Nic.No_data
          ~payload:(value_of ~src:r ~i);
        (* serialize on the ack, as the firmware sender does on its ivar:
           at most one frame of ours is ever outstanding *)
        Node.blocking node (fun () ->
            while Nic.rel_pending_count nic > 0 do
              Engine.delay (Time.us 2)
            done)
      done);
  let per_node =
    Array.map
      (fun node ->
        match Nic.rel_stats (Node.nic node) with
        | Some rs ->
            {
              retransmits = rs.Nic.retransmits;
              acks_tx = rs.Nic.acks_tx;
              acks_rx = rs.Nic.acks_rx;
              rx_duplicates = rs.Nic.rx_duplicates;
            }
        | None -> { retransmits = 0; acks_tx = 0; acks_rx = 0; rx_duplicates = 0 })
      (Cluster.nodes cluster)
  in
  finish cluster ~received ~per_node

let run_firmware cfg =
  let n = cfg.nodes in
  let cluster =
    Cluster.create ?faults:cfg.faults ~reliability_off:true ~nic_kind:cfg.nic ~nodes:n ()
  in
  let received, go, record = make_tokens n ~messages:cfg.messages in
  let endpoints =
    Array.map
      (fun node ->
        let id = Node.id node in
        Reliable_ir.install
          ~engine:(Cluster.engine cluster)
          ~size:n
          ~deliver:(fun ~src ~seq:_ ~body_bytes:_ ~payload ->
            record ~node:id ~src ~value:payload)
          (Node.nic node))
      (Cluster.nodes cluster)
  in
  Cluster.run_app ~watchdog cluster (fun node ->
      let r = Node.id node in
      if r > 0 then Node.blocking node (fun () -> Sync.Ivar.read go.(r));
      let dst = (r + 1) mod n in
      for i = 1 to cfg.messages do
        wait_slot cfg (Cluster.engine cluster) node ~rank:r ~i;
        let acked =
          Reliable_ir.send endpoints.(r) ~dst ~body_bytes:cfg.body_bytes
            ~payload:(value_of ~src:r ~i)
        in
        Node.blocking node (fun () -> Sync.Ivar.read acked)
      done);
  let per_node =
    Array.map
      (fun ep ->
        let s = Reliable_ir.stats ep in
        {
          retransmits = s.Reliable_ir.retransmits;
          acks_tx = s.Reliable_ir.acks_tx;
          acks_rx = s.Reliable_ir.acks_rx;
          rx_duplicates = s.Reliable_ir.rx_duplicates;
        })
      endpoints
  in
  finish cluster ~received ~per_node

let run impl cfg =
  if cfg.nodes < 2 then invalid_arg "Reliable_flow.run: need at least two nodes";
  if cfg.messages < 1 then invalid_arg "Reliable_flow.run: need at least one message";
  match impl with Closure -> run_closure cfg | Firmware -> run_firmware cfg
