module Time = Cni_engine.Time

type cache_policy = Write_back | Write_through

type t = {
  cpu_hz : int;
  l1_access_cycles : int;
  l1_bytes : int;
  l2_access_cycles : int;
  l2_bytes : int;
  line_bytes : int;
  cache_policy : cache_policy;
  memory_latency_cycles : int;
  tlb_entries : int;
  tlb_miss_cycles : int;
  bus_hz : int;
  bus_acquire_cycles : int;
  bus_cycles_per_word : int;
  word_bytes : int;
  switch_latency : Time.t;
  link_latency : Time.t;
  link_bandwidth_bps : int;
  cell_payload_bytes : int;
  cell_header_bytes : int;
  switch_ports : int;
  nic_hz : int;
  message_cache_bytes : int;
  nic_memory_bytes : int;
  interrupt_latency : Time.t;
  kernel_send_cycles : int;
  kernel_recv_cycles : int;
  adc_enqueue_cycles : int;
  poll_check_cycles : int;
  pathfinder_cell_ns : int;
  sar_cell_nic_cycles : int;
  handler_dispatch_nic_cycles : int;
  nic_hpus : int;
  page_bytes : int;
}

let default =
  {
    cpu_hz = 166_000_000;
    l1_access_cycles = 1;
    l1_bytes = 32 * 1024;
    l2_access_cycles = 10;
    l2_bytes = 1024 * 1024;
    line_bytes = 32;
    cache_policy = Write_back;
    memory_latency_cycles = 20;
    tlb_entries = 64;
    tlb_miss_cycles = 30;
    bus_hz = 25_000_000;
    bus_acquire_cycles = 4;
    bus_cycles_per_word = 2;
    word_bytes = 8;
    switch_latency = Time.ns 500;
    link_latency = Time.ns 150;
    link_bandwidth_bps = 622_000_000;
    cell_payload_bytes = 48;
    cell_header_bytes = 5;
    switch_ports = 32;
    nic_hz = 33_000_000;
    message_cache_bytes = 32 * 1024;
    nic_memory_bytes = 1024 * 1024;
    interrupt_latency = Time.us 40;
    (* Software path costs are not in Table 1; these are mid-90s figures in
       line with the OSIRIS/ADC literature the paper builds on: a kernel
       send/receive costs a few hundred instructions plus protection checks,
       an ADC operation is a handful of loads/stores. *)
    kernel_send_cycles = 900;
    kernel_recv_cycles = 900;
    adc_enqueue_cycles = 30;
    poll_check_cycles = 10;
    pathfinder_cell_ns = 300;
    sar_cell_nic_cycles = 16;
    handler_dispatch_nic_cycles = 20;
    nic_hpus = 8;
    page_bytes = 2048;
  }

let cpu_cycles p n = Time.cycles ~hz:p.cpu_hz n
let bus_cycles p n = Time.cycles ~hz:p.bus_hz n
let nic_cycles p n = Time.cycles ~hz:p.nic_hz n

let bus_transfer p ~bytes =
  let words = (bytes + p.word_bytes - 1) / p.word_bytes in
  bus_cycles p (p.bus_acquire_cycles + (p.bus_cycles_per_word * words))

let wire_time p ~bytes =
  (* bytes * 8 bits at link_bandwidth bits/s, in picoseconds *)
  let bits = bytes * 8 in
  Time.ps (int_of_float (float_of_int bits *. 1e12 /. float_of_int p.link_bandwidth_bps))

let cells_for p ~bytes =
  if bytes <= 0 then 1 else (bytes + p.cell_payload_bytes - 1) / p.cell_payload_bytes

let unrestricted_cells p = p.cell_payload_bytes >= 1_000_000

let cell_slot_nic_cycles ?link_bps p =
  let bps = match link_bps with Some b -> b | None -> p.link_bandwidth_bps in
  let cell_bits = (p.cell_payload_bytes + p.cell_header_bytes) * 8 in
  (* NIC cycles that elapse while one cell serialises on the wire: the time a
     streaming handler has before the next cell arrives at line rate. *)
  max 1 (cell_bits * (p.nic_hz / 1_000) / (bps / 1_000))

let line_rate_budget ?link_bps p = p.nic_hpus * cell_slot_nic_cycles ?link_bps p

let pp fmt p =
  let f name value = Format.fprintf fmt "  %-28s %s@." name value in
  Format.fprintf fmt "Simulation parameters (Table 1):@.";
  f "CPU Frequency" (Printf.sprintf "%d MHz" (p.cpu_hz / 1_000_000));
  f "Primary Cache Access Time" (Printf.sprintf "%d cycle(s)" p.l1_access_cycles);
  f "Primary Cache Size" (Printf.sprintf "%dK unified" (p.l1_bytes / 1024));
  f "Secondary Cache Access Time" (Printf.sprintf "%d cycles" p.l2_access_cycles);
  f "Secondary Cache Size" (Printf.sprintf "%d MB unified" (p.l2_bytes / 1024 / 1024));
  f "Cache Organization" "Direct-mapped";
  f "Cache Policy"
    (match p.cache_policy with Write_back -> "Write-back" | Write_through -> "Write-through");
  f "Memory Latency" (Printf.sprintf "%d cycles" p.memory_latency_cycles);
  f "Bus Acquisition Time" (Printf.sprintf "%d cycles" p.bus_acquire_cycles);
  f "Bus Transfer Rate" (Printf.sprintf "%d cycles per word" p.bus_cycles_per_word);
  f "Bus Frequency" (Printf.sprintf "%d MHz" (p.bus_hz / 1_000_000));
  f "Switch Latency" (Format.asprintf "%a" Time.pp p.switch_latency);
  f "Network Processor Frequency" (Printf.sprintf "%d MHz" (p.nic_hz / 1_000_000));
  f "Network Latency" (Format.asprintf "%a" Time.pp p.link_latency);
  f "Interrupt Latency" (Format.asprintf "%a" Time.pp p.interrupt_latency);
  f "Message Cache Size" (Printf.sprintf "%d KB" (p.message_cache_bytes / 1024));
  f "Link Bandwidth" (Printf.sprintf "%d Mbps (STS-12)" (p.link_bandwidth_bps / 1_000_000));
  f "ATM Cell Payload"
    (if unrestricted_cells p then "unrestricted (Table 5 variant)"
     else Printf.sprintf "%d bytes" p.cell_payload_bytes);
  f "Handler Processing Units" (Printf.sprintf "%d (streaming AIH)" p.nic_hpus);
  f "Shared Page Size" (Printf.sprintf "%d bytes" p.page_bytes)
