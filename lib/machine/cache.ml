type level = L1 | L2 | Memory

type access_result = {
  level : level;
  cycles : int;
  writeback_lines : int list;
  fill_from_memory : bool;
}

type level_state = {
  sets : int;
  tags : int array; (* -1 = invalid; otherwise the line-aligned address *)
  dirty : bool array;
}

type stats = {
  accesses : int;
  l1_hits : int;
  l2_hits : int;
  memory_fills : int;
  writebacks : int;
}

type t = {
  p : Params.t;
  line : int;
  l1 : level_state;
  l2 : level_state;
  mutable s_accesses : int;
  mutable s_l1_hits : int;
  mutable s_l2_hits : int;
  mutable s_memory_fills : int;
  mutable s_writebacks : int;
}

let make_level ~bytes ~line =
  let sets = bytes / line in
  { sets; tags = Array.make sets (-1); dirty = Array.make sets false }

let create (p : Params.t) =
  let line = p.line_bytes in
  {
    p;
    line;
    l1 = make_level ~bytes:p.l1_bytes ~line;
    l2 = make_level ~bytes:p.l2_bytes ~line;
    s_accesses = 0;
    s_l1_hits = 0;
    s_l2_hits = 0;
    s_memory_fills = 0;
    s_writebacks = 0;
  }

let line_addr t addr = addr - (addr mod t.line)
let set_of lv t la = la / t.line mod lv.sets

(* Install [la] in [lv]; if a different dirty line is displaced, return it. *)
let install lv t la ~dirty =
  let s = set_of lv t la in
  let victim =
    if lv.tags.(s) >= 0 && lv.tags.(s) <> la && lv.dirty.(s) then Some lv.tags.(s)
    else None
  in
  lv.tags.(s) <- la;
  lv.dirty.(s) <- dirty;
  victim

let present lv t la = lv.tags.(set_of lv t la) = la

let write_through t = t.p.Params.cache_policy = Params.Write_through

let access_addr t la ~write =
  t.s_accesses <- t.s_accesses + 1;
  let p = t.p in
  (* under write-through, a store goes straight to memory as well: it is
     reported like a write-back so the bus charges it and the Message Cache
     snoops it (this is what makes board consistency "trivial") *)
  let through = if write && write_through t then [ la ] else [] in
  if write && write_through t then t.s_writebacks <- t.s_writebacks + 1;
  if present t.l1 t la then begin
    t.s_l1_hits <- t.s_l1_hits + 1;
    if write && not (write_through t) then t.l1.dirty.(set_of t.l1 t la) <- true;
    { level = L1; cycles = p.l1_access_cycles; writeback_lines = through; fill_from_memory = false }
  end
  else begin
    (* L1 miss: we will install [la] in L1; a dirty L1 victim moves to L2. *)
    let writebacks = ref [] in
    let spill_to_l2 victim_la =
      match install t.l2 t victim_la ~dirty:true with
      | Some l2_victim ->
          t.s_writebacks <- t.s_writebacks + 1;
          writebacks := l2_victim :: !writebacks
      | None -> ()
    in
    if present t.l2 t la then begin
      t.s_l2_hits <- t.s_l2_hits + 1;
      let l2_dirty = t.l2.dirty.(set_of t.l2 t la) in
      (* move the line up into L1, carrying its dirty state *)
      (match
         install t.l1 t la ~dirty:(l2_dirty || (write && not (write_through t)))
       with
      | Some l1_victim -> spill_to_l2 l1_victim
      | None -> ());
      (* the L2 copy is superseded by the L1 copy *)
      t.l2.tags.(set_of t.l2 t la) <- -1;
      t.l2.dirty.(set_of t.l2 t la) <- false;
      {
        level = L2;
        cycles = t.p.l1_access_cycles + t.p.l2_access_cycles;
        writeback_lines = through @ !writebacks;
        fill_from_memory = false;
      }
    end
    else begin
      t.s_memory_fills <- t.s_memory_fills + 1;
      (match install t.l1 t la ~dirty:(write && not (write_through t)) with
      | Some l1_victim -> spill_to_l2 l1_victim
      | None -> ());
      {
        level = Memory;
        cycles = t.p.l1_access_cycles + t.p.l2_access_cycles + t.p.memory_latency_cycles;
        writeback_lines = through @ !writebacks;
        fill_from_memory = true;
      }
    end
  end

let access t ~addr ~write = access_addr t (line_addr t addr) ~write
let access_line t ~addr ~write = access_addr t (line_addr t addr) ~write

let iter_lines t ~addr ~bytes f =
  if bytes > 0 then begin
    let first = line_addr t addr in
    let last = line_addr t (addr + bytes - 1) in
    let la = ref first in
    while !la <= last do
      f !la;
      la := !la + t.line
    done
  end

let flush_range t ~addr ~bytes =
  let writebacks = ref [] in
  let lines_walked = ref 0 in
  let drop lv la =
    let s = set_of lv t la in
    if lv.tags.(s) = la then begin
      if lv.dirty.(s) then begin
        t.s_writebacks <- t.s_writebacks + 1;
        writebacks := la :: !writebacks
      end;
      lv.tags.(s) <- -1;
      lv.dirty.(s) <- false
    end
  in
  iter_lines t ~addr ~bytes (fun la ->
      incr lines_walked;
      drop t.l1 la;
      drop t.l2 la);
  (* Walking the range costs roughly one L1 access per line; write-back bus
     occupancy is charged by the caller from the returned line list. *)
  (List.rev !writebacks, !lines_walked * t.p.l1_access_cycles)

let dirty_lines_in t ~addr ~bytes =
  let n = ref 0 in
  let check lv la =
    let s = set_of lv t la in
    if lv.tags.(s) = la && lv.dirty.(s) then incr n
  in
  iter_lines t ~addr ~bytes (fun la ->
      check t.l1 la;
      check t.l2 la);
  !n

let invalidate_range t ~addr ~bytes =
  let dropped = ref 0 in
  let drop lv la =
    let s = set_of lv t la in
    if lv.tags.(s) = la then begin
      lv.tags.(s) <- -1;
      lv.dirty.(s) <- false;
      incr dropped
    end
  in
  iter_lines t ~addr ~bytes (fun la ->
      drop t.l1 la;
      drop t.l2 la);
  !dropped

let stats t =
  {
    accesses = t.s_accesses;
    l1_hits = t.s_l1_hits;
    l2_hits = t.s_l2_hits;
    memory_fills = t.s_memory_fills;
    writebacks = t.s_writebacks;
  }

let reset_stats t =
  t.s_accesses <- 0;
  t.s_l1_hits <- 0;
  t.s_l2_hits <- 0;
  t.s_memory_fills <- 0;
  t.s_writebacks <- 0
