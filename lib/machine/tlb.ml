type t = {
  entries : int;
  miss_cycles : int;
  page_bytes : int;
  tags : int array;
  mutable s_lookups : int;
  mutable s_misses : int;
}

type stats = { lookups : int; misses : int }

let create ~entries ~miss_cycles ~page_bytes =
  { entries; miss_cycles; page_bytes; tags = Array.make entries (-1); s_lookups = 0; s_misses = 0 }

let lookup t ~addr =
  t.s_lookups <- t.s_lookups + 1;
  let vpn = addr / t.page_bytes in
  let slot = vpn mod t.entries in
  if t.tags.(slot) = vpn then 0
  else begin
    t.s_misses <- t.s_misses + 1;
    t.tags.(slot) <- vpn;
    t.miss_cycles
  end

let flush t = Array.fill t.tags 0 t.entries (-1)
let stats t = { lookups = t.s_lookups; misses = t.s_misses }
