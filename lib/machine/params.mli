(** Simulation parameters (paper Table 1, plus derived software costs).

    The two OCR-garbled Table 1 rows are read as link latency = 150 ns and
    interrupt latency = 40 us; see DESIGN.md section 4 for the justification
    (a 40 ns interrupt would contradict the paper's motivation, and these
    values reconstruct Figure 14's 33% microbenchmark result). *)

(** Host cache write policy. The paper evaluates write-back (the harder case
    for the Message Cache: consistency needs pre-transfer flushes); with a
    write-through cache every store crosses the bus and the snoopy interface
    sees it immediately, "trivially" keeping the board consistent
    (section 2.2). *)
type cache_policy = Write_back | Write_through

type t = {
  (* host workstation (Alpha-class) *)
  cpu_hz : int;  (** 166 MHz *)
  l1_access_cycles : int;  (** 1 cycle *)
  l1_bytes : int;  (** 32 KB unified *)
  l2_access_cycles : int;  (** 10 cycles *)
  l2_bytes : int;  (** 1 MB unified *)
  line_bytes : int;  (** cache line size (both levels) *)
  cache_policy : cache_policy;
  memory_latency_cycles : int;  (** 20 CPU cycles *)
  tlb_entries : int;
  tlb_miss_cycles : int;
  (* memory bus *)
  bus_hz : int;  (** 25 MHz *)
  bus_acquire_cycles : int;  (** 4 bus cycles *)
  bus_cycles_per_word : int;  (** 2 bus cycles per word *)
  word_bytes : int;  (** 8 (64-bit Alpha word) *)
  (* interconnect *)
  switch_latency : Cni_engine.Time.t;  (** 500 ns *)
  link_latency : Cni_engine.Time.t;  (** 150 ns *)
  link_bandwidth_bps : int;  (** 622 Mb/s (STS-12) *)
  cell_payload_bytes : int;  (** 48 (ATM); large value = Table 5's mythical
                                 unrestricted-cell-size network *)
  cell_header_bytes : int;  (** 5 *)
  switch_ports : int;  (** 32-port banyan *)
  (* network interface *)
  nic_hz : int;  (** 33 MHz *)
  message_cache_bytes : int;  (** 32 KB default *)
  nic_memory_bytes : int;  (** 1 MB on-board dual-ported memory (OSIRIS) *)
  (* OS / software costs *)
  interrupt_latency : Cni_engine.Time.t;  (** 40 us: dispatch + handler entry/exit *)
  kernel_send_cycles : int;  (** syscall + driver work per send, standard NIC *)
  kernel_recv_cycles : int;  (** per-receive kernel path, standard NIC *)
  adc_enqueue_cycles : int;  (** CNI: lock-free queue manipulation per op *)
  poll_check_cycles : int;  (** CNI: one poll of the receive queue *)
  pathfinder_cell_ns : int;  (** PATHFINDER per-cell classification time *)
  sar_cell_nic_cycles : int;  (** NIC-processor cycles per cell (SAR work) *)
  handler_dispatch_nic_cycles : int;  (** AIH activation cost on the NIC *)
  nic_hpus : int;  (** handler processing units: streaming AIH activations the
                       board can sustain concurrently (sPIN-style), so the
                       per-cell cycle budget is [nic_hpus] x one cell slot *)
  (* DSM *)
  page_bytes : int;  (** shared page size; 2 KB in Table 2 *)
}

val default : t

(** {2 Derived durations} *)

val cpu_cycles : t -> int -> Cni_engine.Time.t
val bus_cycles : t -> int -> Cni_engine.Time.t
val nic_cycles : t -> int -> Cni_engine.Time.t

(** Bus occupancy for moving [bytes] across the memory bus
    (acquisition + 2 bus cycles per word, rounded up to whole words). *)
val bus_transfer : t -> bytes:int -> Cni_engine.Time.t

(** Wire serialisation time for [bytes] at the link bandwidth. *)
val wire_time : t -> bytes:int -> Cni_engine.Time.t

(** Number of ATM cells needed for a [bytes]-sized payload. *)
val cells_for : t -> bytes:int -> int

(** The Table 5 "mythical" unlimited-cell-size variant: a payload capacity so
    large every frame fits in one cell, so wire charging degrades to
    payload + one header instead of fixed-size cells. *)
val unrestricted_cells : t -> bool

(** NIC-processor cycles that elapse while one ATM cell (header + payload)
    serialises at the link rate — the inter-arrival budget a streaming
    handler activation must fit inside. [?link_bps] overrides the configured
    link bandwidth (e.g. to model a slower downlink). *)
val cell_slot_nic_cycles : ?link_bps:int -> t -> int

(** Per-cell admission budget for streaming firmware:
    [nic_hpus * cell_slot_nic_cycles]. A handler whose per-activation WCET
    exceeds this cannot sustain line rate and must be rejected. *)
val line_rate_budget : ?link_bps:int -> t -> int

val pp : Format.formatter -> t -> unit
