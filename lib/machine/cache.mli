(** Two-level unified direct-mapped write-back cache model.

    Addresses are byte addresses in a flat (per-node) physical address space.
    The model is exact at cache-line granularity: tag and dirty state per set
    for both levels. An L1 victim that is dirty is written into L2 (possibly
    displacing a dirty L2 line to memory); a dirty L2 victim goes to memory
    over the bus. All memory-bound write-backs are reported to the caller so
    the bus model can account for them and the Message Cache can snoop them. *)

type t

(** Where an access was satisfied. *)
type level = L1 | L2 | Memory

type access_result = {
  level : level;
  cycles : int;  (** CPU cycles for the access itself (lookup chain + memory
                     latency), excluding bus occupancy of line movements *)
  writeback_lines : int list;  (** line-aligned physical addresses written back
                                   to memory as a consequence of this access *)
  fill_from_memory : bool;  (** a line was fetched from memory *)
}

val create : Params.t -> t

(** [access t ~addr ~write] simulates one load or store of (up to) a word at
    [addr]. *)
val access : t -> addr:int -> write:bool -> access_result

(** [access_line t ~addr ~write] behaves as {!access} but represents touching
    a whole cache line starting at the line containing [addr]; used by the
    bulk shared-array operations. *)
val access_line : t -> addr:int -> write:bool -> access_result

(** [flush_range t ~addr ~bytes] writes back and invalidates every line
    intersecting [\[addr, addr+bytes)] in both levels (the pre-DMA flush a
    write-back system needs before a message transfer, section 2.2). Returns
    the memory-bound write-backs and the CPU cycles spent walking the range. *)
val flush_range : t -> addr:int -> bytes:int -> int list * int

(** [dirty_lines_in t ~addr ~bytes] counts dirty resident lines in the range
    without modifying any state. *)
val dirty_lines_in : t -> addr:int -> bytes:int -> int

(** [invalidate_range t ~addr ~bytes] drops lines without write-back (used
    when a DMA write from the NIC overwrites host memory: the stale cached
    copies must not survive). Returns the number of lines dropped. *)
val invalidate_range : t -> addr:int -> bytes:int -> int

type stats = {
  accesses : int;
  l1_hits : int;
  l2_hits : int;
  memory_fills : int;
  writebacks : int;
}

val stats : t -> stats
val reset_stats : t -> unit
