(** Direct-mapped TLB model.

    The same structure serves three roles in the system: the host CPU TLB,
    and the CNI board's TLB / RTLB pair that translate between host virtual
    and physical addresses for virtually-addressed DMA (section 2.2). Only
    timing and hit/miss behaviour are modelled; the actual translation is an
    identity in our flat per-node address space, so the interesting output is
    the cycle cost. *)

type t

val create : entries:int -> miss_cycles:int -> page_bytes:int -> t

(** [lookup t ~addr] returns the cycle cost of translating [addr]
    (0 on a hit, [miss_cycles] on a miss, which also installs the entry). *)
val lookup : t -> addr:int -> int

val flush : t -> unit

type stats = { lookups : int; misses : int }

val stats : t -> stats
