module Engine = Cni_engine.Engine
module Sync = Cni_engine.Sync
module Time = Cni_engine.Time

type dir = Cpu_writeback | Dma_to_memory | Dma_from_memory

type stats = { dma_transfers : int; dma_bytes : int; writeback_lines : int }

type t = {
  eng : Engine.t;
  p : Params.t;
  sem : Sync.Semaphore.t;
  mutable snoopers : (dir:dir -> addr:int -> bytes:int -> unit) list;
  mutable s_dma_transfers : int;
  mutable s_dma_bytes : int;
  mutable s_writeback_lines : int;
}

let create eng p =
  {
    eng;
    p;
    sem = Sync.Semaphore.create 1;
    snoopers = [];
    s_dma_transfers = 0;
    s_dma_bytes = 0;
    s_writeback_lines = 0;
  }

let params t = t.p
let register_snooper t f = t.snoopers <- f :: t.snoopers
let notify t ~dir ~addr ~bytes = List.iter (fun f -> f ~dir ~addr ~bytes) t.snoopers

let writeback_lines t lines =
  let line = t.p.Params.line_bytes in
  let total = ref Time.zero in
  List.iter
    (fun la ->
      t.s_writeback_lines <- t.s_writeback_lines + 1;
      notify t ~dir:Cpu_writeback ~addr:la ~bytes:line;
      total := Time.( + ) !total (Params.bus_transfer t.p ~bytes:line))
    lines;
  !total

let dma_time t ~bytes = Params.bus_transfer t.p ~bytes

let dma t ~dir ~addr ~bytes =
  (match dir with
  | Dma_to_memory | Dma_from_memory -> ()
  | Cpu_writeback -> invalid_arg "Bus.dma: Cpu_writeback is not a DMA direction");
  Sync.Semaphore.acquire t.sem;
  Engine.delay (dma_time t ~bytes);
  t.s_dma_transfers <- t.s_dma_transfers + 1;
  t.s_dma_bytes <- t.s_dma_bytes + bytes;
  notify t ~dir ~addr ~bytes;
  Sync.Semaphore.release t.sem

let stats t =
  {
    dma_transfers = t.s_dma_transfers;
    dma_bytes = t.s_dma_bytes;
    writeback_lines = t.s_writeback_lines;
  }
