(** Memory-bus model with snooping.

    The bus is a shared resource: DMA transfers (long occupancies) serialise
    through a FIFO semaphore; individual CPU-side line write-backs are charged
    as additive occupancy without queueing (their durations are small and the
    paper's results do not hinge on CPU/DMA contention).

    Every write of host memory that crosses the bus — CPU write-backs,
    flushes, and DMA writes from the NIC — is announced to registered
    snoopers. The CNI Message Cache's snoopy interface (section 2.2) is such
    a snooper: it observes the physical address, reverse-translates it, and
    updates any cached buffer covering it. *)

type t

(** Direction of a snooped transfer, from the point of view of host memory. *)
type dir =
  | Cpu_writeback  (** dirty line leaving the cache hierarchy *)
  | Dma_to_memory  (** device writing host memory *)
  | Dma_from_memory  (** device reading host memory *)

val create : Cni_engine.Engine.t -> Params.t -> t
val params : t -> Params.t

(** [register_snooper t f] adds [f]; it is invoked synchronously for every
    bus transfer as [f ~dir ~addr ~bytes]. *)
val register_snooper : t -> (dir:dir -> addr:int -> bytes:int -> unit) -> unit

(** [writeback_lines t lines] accounts for CPU-side line write-backs:
    notifies snoopers and returns the total bus occupancy to charge to the
    CPU's clock. *)
val writeback_lines : t -> int list -> Cni_engine.Time.t

(** [dma t ~dir ~addr ~bytes] performs a DMA transfer from inside a fiber:
    acquires the bus, holds it for the transfer time, releases it, and
    notifies snoopers. [dir] must be [Dma_to_memory] or [Dma_from_memory]. *)
val dma : t -> dir:dir -> addr:int -> bytes:int -> unit

(** Pure transfer-time of a DMA of [bytes] (no queueing). *)
val dma_time : t -> bytes:int -> Cni_engine.Time.t

type stats = { dma_transfers : int; dma_bytes : int; writeback_lines : int }

val stats : t -> stats
