module Engine = Cni_engine.Engine
module Time = Cni_engine.Time
module Params = Cni_machine.Params
module Fabric = Cni_atm.Fabric
module Nic = Cni_nic.Nic

type nic_kind = [ `Cni of Nic.cni_options | `Osiris of Nic.osiris_options | `Standard ]

type 'a t = {
  eng : Engine.t;
  p : Params.t;
  fabric : 'a Fabric.t;
  nodes : 'a Node.t array;
  kind : nic_kind;
  mutable ran : bool;
}

let create ?(params = Params.default) ~nic_kind ~nodes () =
  if nodes < 1 then invalid_arg "Cluster.create: need at least one node";
  let eng = Engine.create () in
  let fabric = Fabric.create eng params ~nodes in
  let node_arr =
    Array.init nodes (fun id -> Node.create eng params fabric ~id ~nic_kind)
  in
  { eng; p = params; fabric; nodes = node_arr; kind = nic_kind; ran = false }

let engine t = t.eng
let params t = t.p
let fabric t = t.fabric
let size t = Array.length t.nodes
let node t i = t.nodes.(i)
let nodes t = t.nodes
let is_cni t = match t.kind with `Cni _ -> true | `Osiris _ | `Standard -> false

let run_app t f =
  Array.iter
    (fun n ->
      Engine.spawn t.eng ~name:(Printf.sprintf "app-%d" (Node.id n)) (fun () ->
          f n;
          Node.finish n))
    t.nodes;
  Engine.run t.eng;
  t.ran <- true;
  let stuck =
    Array.fold_left
      (fun acc n -> if Node.finished n then acc else Node.id n :: acc)
      [] t.nodes
  in
  if stuck <> [] then
    failwith
      (Printf.sprintf "Cluster.run_app: deadlock — application fibers of node(s) %s never finished"
         (String.concat ", " (List.rev_map string_of_int stuck)))

let elapsed t =
  Array.fold_left (fun acc n -> Time.max acc (Node.report n).Node.finish_time) Time.zero t.nodes

let network_cache_hit_ratio t =
  let sum =
    Array.fold_left (fun acc n -> acc +. Nic.network_cache_hit_ratio (Node.nic n)) 0. t.nodes
  in
  sum /. float_of_int (Array.length t.nodes)

type overheads = {
  computation : Time.t;
  synch_overhead : Time.t;
  synch_delay : Time.t;
  total : Time.t;
}

let overheads t =
  let acc =
    Array.fold_left
      (fun (c, o, d) n ->
        let r = Node.report n in
        (Time.(c + r.Node.computation), Time.(o + r.Node.synch_overhead), Time.(d + r.Node.synch_delay)))
      (Time.zero, Time.zero, Time.zero) t.nodes
  in
  let c, o, d = acc in
  { computation = c; synch_overhead = o; synch_delay = d; total = elapsed t }
