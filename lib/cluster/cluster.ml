module Engine = Cni_engine.Engine
module Time = Cni_engine.Time
module Stats = Cni_engine.Stats
module Trace = Cni_engine.Trace
module Params = Cni_machine.Params
module Fabric = Cni_atm.Fabric
module Nic = Cni_nic.Nic

type nic_kind = [ `Cni of Nic.cni_options | `Osiris of Nic.osiris_options | `Standard ]

type 'a t = {
  eng : Engine.t;
  p : Params.t;
  fabric : 'a Fabric.t;
  nodes : 'a Node.t array;
  kind : nic_kind;
  registry : Stats.Registry.t;
  mutable ran : bool;
}

(* Crash a node: freeze its application fiber, kill the board (scrubbing
   its memory if asked) and sever it from the fabric. The order matters —
   the fiber must be frozen before the board dies so no send slips into the
   dead window at the same instant. *)
let crash_node ?(scrub = false) t i =
  let n = t.nodes.(i) in
  Node.freeze n;
  Nic.crash (Node.nic n) ~scrub;
  Fabric.set_node_down t.fabric ~node:i true

(* Restart in the reverse order: board first (new epoch, install replay),
   then the fabric link, then the thawed application fiber. *)
let restart_node t i =
  let n = t.nodes.(i) in
  Nic.restart (Node.nic n);
  Fabric.set_node_down t.fabric ~node:i false;
  Node.unfreeze n

let node_alive t i = not (Fabric.node_down t.fabric ~node:i)

let crashed_nodes t =
  let acc = ref [] in
  for i = Array.length t.nodes - 1 downto 0 do
    if Fabric.node_down t.fabric ~node:i then acc := i :: !acc
  done;
  !acc

let create ?(params = Params.default) ?faults ?reliability ?(reliability_off = false) ?topology
    ~nic_kind ~nodes () =
  if nodes < 1 then invalid_arg "Cluster.create: need at least one node";
  let eng = Engine.create () in
  let registry = Stats.Registry.create () in
  let faulty =
    match faults with Some f when not (Cni_atm.Faults.is_none f) -> Some f | _ -> None
  in
  (match faulty with
  | Some f when f.Cni_atm.Faults.schedule <> [] -> (
      match Cni_atm.Faults.validate ~nodes f with
      | Ok () -> ()
      | Error errs ->
          invalid_arg
            ("Cluster.create: inconsistent fault schedule: " ^ String.concat "; " errs))
  | _ -> ());
  let fabric = Fabric.create ~registry ?faults:faulty ?topology eng params ~nodes in
  (* an injected-fault fabric without reliable delivery would just lose
     protocol messages and deadlock; default the protocol on when faults are
     requested, while still letting callers pass an explicit config —
     [reliability_off] opts out entirely, for workloads that bring their own
     recovery protocol (e.g. Reliable_ir firmware endpoints) *)
  let reliability =
    if reliability_off then None
    else
      match (reliability, faulty) with
      | (Some _ as r), _ -> r
      | None, Some _ -> Some Cni_nic.Reliable.default
      | None, None -> None
  in
  let node_arr =
    Array.init nodes (fun id ->
        Node.create ~registry ?reliability eng params fabric ~id ~nic_kind)
  in
  let t = { eng; p = params; fabric; nodes = node_arr; kind = nic_kind; registry; ran = false } in
  (* drive the node-fault schedule off engine time *)
  Option.iter
    (fun f ->
      List.iter
        (fun e ->
          let open Cni_atm.Faults in
          Engine.at eng e.e_at (fun () ->
              match e.e_fault with
              | Crash { scrub } -> crash_node ~scrub t e.e_node
              | Restart -> restart_node t e.e_node))
        (Cni_atm.Faults.sorted_schedule f))
    faulty;
  t

let engine t = t.eng
let params t = t.p
let fabric t = t.fabric
let size t = Array.length t.nodes
let node t i = t.nodes.(i)
let nodes t = t.nodes
let is_cni t = match t.kind with `Cni _ -> true | `Osiris _ | `Standard -> false

let retransmits t =
  Array.fold_left
    (fun acc n ->
      match Nic.rel_stats (Node.nic n) with
      | Some rs -> acc + rs.Nic.retransmits
      | None -> acc)
    0 t.nodes

exception Deadlock of { unfinished : int list; crashed : int list }

let () =
  Printexc.register_printer (function
    | Deadlock { unfinished; crashed } ->
        let list l = String.concat ", " (List.map string_of_int l) in
        Some
          (Printf.sprintf
             "Cluster.Deadlock: application fibers of node(s) %s never finished%s"
             (list unfinished)
             (if crashed = [] then ""
              else Printf.sprintf " (node(s) %s crashed without restarting)" (list crashed)))
    | _ -> None)

let run_app ?watchdog t f =
  Array.iter
    (fun n ->
      Engine.spawn t.eng ~name:(Printf.sprintf "app-%d" (Node.id n)) (fun () ->
          f n;
          Node.finish n;
          if Trace.enabled_cat Trace.App then
            Trace.emit ~t_ps:(Time.to_ps (Engine.now t.eng)) ~node:(Node.id n)
              Trace.App ~label:"finish" ~payload:0))
    t.nodes;
  (match watchdog with
  | None -> Engine.run t.eng
  | Some limit -> Engine.run_watched t.eng ~limit);
  t.ran <- true;
  let stuck =
    Array.fold_left
      (fun acc n -> if Node.finished n then acc else Node.id n :: acc)
      [] t.nodes
  in
  if stuck <> [] then begin
    let crashed, hung =
      List.partition (fun i -> Fabric.node_down t.fabric ~node:i) (List.rev stuck)
    in
    (* nodes that crashed and never restarted are expected casualties: the
       run completes and {!crashed_nodes} reports them. Anything else still
       unfinished with the event queue drained is a real deadlock. *)
    if hung <> [] then raise (Deadlock { unfinished = hung; crashed })
  end

let elapsed t =
  Array.fold_left (fun acc n -> Time.max acc (Node.report n).Node.finish_time) Time.zero t.nodes

(* Average over nodes whose Message Cache actually saw lookups: a node that
   never transmitted bulk data has no meaningful ratio, and counting it
   (either as 0 or as 100) would skew the cluster-wide figure. *)
let network_cache_hit_ratio t =
  let sum = ref 0. and active = ref 0 in
  Array.iter
    (fun n ->
      match Nic.network_cache_hit_ratio_opt (Node.nic n) with
      | Some r ->
          sum := !sum +. r;
          incr active
      | None -> ())
    t.nodes;
  if !active = 0 then 0. else !sum /. float_of_int !active

type overheads = {
  computation : Time.t;
  synch_overhead : Time.t;
  synch_delay : Time.t;
  total : Time.t;
}

let overheads t =
  let acc =
    Array.fold_left
      (fun (c, o, d) n ->
        let r = Node.report n in
        (Time.(c + r.Node.computation), Time.(o + r.Node.synch_overhead), Time.(d + r.Node.synch_delay)))
      (Time.zero, Time.zero, Time.zero) t.nodes
  in
  let c, o, d = acc in
  { computation = c; synch_overhead = o; synch_delay = d; total = elapsed t }

let metrics t = t.registry

(* Refresh the time-accounting gauges (counters set, not incremented — the
   snapshot is idempotent) before freezing the registry. *)
let metrics_snapshot t =
  Array.iter
    (fun n ->
      let id = Node.id n in
      let r = Node.report n in
      let gauge name v =
        Stats.Counter.set
          (Stats.Registry.counter t.registry ~node:id ~subsystem:"node" name)
          (Time.to_ps v)
      in
      gauge "computation_ps" r.Node.computation;
      gauge "synch_overhead_ps" r.Node.synch_overhead;
      gauge "synch_delay_ps" r.Node.synch_delay;
      gauge "service_ps" r.Node.service_time;
      gauge "finish_ps" r.Node.finish_time)
    t.nodes;
  Stats.Counter.set
    (Stats.Registry.counter t.registry ~subsystem:"cluster" "elapsed_ps")
    (Time.to_ps (elapsed t));
  Stats.Registry.snapshot t.registry
