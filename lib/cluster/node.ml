module Engine = Cni_engine.Engine
module Time = Cni_engine.Time
module Params = Cni_machine.Params
module Cache = Cni_machine.Cache
module Tlb = Cni_machine.Tlb
module Bus = Cni_machine.Bus
module Nic = Cni_nic.Nic

type 'a t = {
  id : int;
  eng : Engine.t;
  p : Params.t;
  cache : Cache.t;
  tlb : Tlb.t;
  bus : Bus.t;
  mutable nic : 'a Nic.t option;
  mutable waiting : bool;
  mutable stolen : Time.t;
  (* crash freeze: while set, the application fiber parks at its next
     interaction point until the node restarts *)
  mutable frozen : bool;
  mutable thaw : (unit -> unit) list;
  mutable t_frozen : Time.t;
  (* batched application cost *)
  mutable pending_cycles : int;
  mutable pending_extra : Time.t;
  (* category accounting *)
  mutable t_compute : Time.t;
  mutable t_overhead : Time.t;
  mutable t_delay : Time.t;
  mutable t_service : Time.t;
  mutable finish_time : Time.t;
  mutable finished : bool;
}

type report = {
  computation : Time.t;
  synch_overhead : Time.t;
  synch_delay : Time.t;
  finish_time : Time.t;
  service_time : Time.t;
  frozen_time : Time.t;
}

let create ?registry ?reliability eng p fabric ~id ~nic_kind =
  let bus = Bus.create eng p in
  let t =
    {
      id;
      eng;
      p;
      cache = Cache.create p;
      tlb = Tlb.create ~entries:p.Params.tlb_entries ~miss_cycles:p.Params.tlb_miss_cycles
          ~page_bytes:p.Params.page_bytes;
      bus;
      nic = None;
      waiting = false;
      stolen = Time.zero;
      frozen = false;
      thaw = [];
      t_frozen = Time.zero;
      pending_cycles = 0;
      pending_extra = Time.zero;
      t_compute = Time.zero;
      t_overhead = Time.zero;
      t_delay = Time.zero;
      t_service = Time.zero;
      finish_time = Time.zero;
      finished = false;
    }
  in
  let host =
    {
      Nic.host_waiting = (fun () -> t.waiting);
      steal = (fun d -> t.stolen <- Time.(t.stolen + d));
      invalidate_range =
        (fun ~addr ~bytes -> ignore (Cache.invalidate_range t.cache ~addr ~bytes));
      overhead = (fun d -> t.t_service <- Time.(t.t_service + d));
    }
  in
  let nic =
    match nic_kind with
    | `Cni options ->
        Nic.create_cni ?registry ?reliability eng bus fabric ~node:id ~host ~options ()
    | `Osiris options ->
        Nic.create_osiris ?registry ?reliability eng bus fabric ~node:id ~host ~options ()
    | `Standard -> Nic.create_standard ?registry ?reliability eng bus fabric ~node:id ~host ()
  in
  t.nic <- Some nic;
  t

let id t = t.id
let params t = t.p
let engine t = t.eng
let nic t = match t.nic with Some n -> n | None -> assert false
let cache t = t.cache
let bus t = t.bus

(* Park the calling application fiber while its node is crashed. Checked at
   every interaction point (anything that flushes batched work); the fiber's
   program state — host memory — survives the crash, it just stops making
   progress until the restart thaws it. The loop re-parks if the node
   crashes again at the very instant it was thawed. *)
let freeze_point t =
  while t.frozen do
    let t0 = Engine.now t.eng in
    Engine.suspend (fun resume -> t.thaw <- resume :: t.thaw);
    t.t_frozen <- Time.(t.t_frozen + (Engine.now t.eng - t0))
  done

let freeze t = t.frozen <- true

let unfreeze t =
  if t.frozen then begin
    t.frozen <- false;
    let resumes = t.thaw in
    t.thaw <- [];
    List.iter (fun resume -> resume ()) resumes
  end

let frozen t = t.frozen

let flush_pending t =
  freeze_point t;
  let cpu = Params.cpu_cycles t.p t.pending_cycles in
  let compute = Time.(cpu + t.pending_extra) in
  let stolen = t.stolen in
  t.pending_cycles <- 0;
  t.pending_extra <- Time.zero;
  t.stolen <- Time.zero;
  t.t_compute <- Time.(t.t_compute + compute);
  t.t_overhead <- Time.(t.t_overhead + stolen);
  let total = Time.(compute + stolen) in
  if total > Time.zero then Engine.delay total

let work t cycles = t.pending_cycles <- t.pending_cycles + cycles

let touch t ~addr ~bytes ~write =
  if bytes > 0 then begin
    let line = t.p.Params.line_bytes in
    let first = addr - (addr mod line) in
    let last = addr + bytes - 1 in
    let la = ref first in
    while !la <= last do
      t.pending_cycles <- t.pending_cycles + Tlb.lookup t.tlb ~addr:!la;
      let r = Cache.access_line t.cache ~addr:!la ~write in
      t.pending_cycles <- t.pending_cycles + r.Cache.cycles;
      if r.Cache.writeback_lines <> [] then
        t.pending_extra <- Time.(t.pending_extra + Bus.writeback_lines t.bus r.Cache.writeback_lines);
      la := !la + line
    done
  end

let overhead_time t d =
  flush_pending t;
  t.t_overhead <- Time.(t.t_overhead + d);
  if d > Time.zero then Engine.delay d

let overhead_cycles t cycles = overhead_time t (Params.cpu_cycles t.p cycles)

let blocking t f =
  flush_pending t;
  t.waiting <- true;
  let t0 = Engine.now t.eng in
  let finally () =
    t.waiting <- false;
    t.t_delay <- Time.(t.t_delay + (Engine.now t.eng - t0))
  in
  match f () with
  | v ->
      finally ();
      v
  | exception e ->
      finally ();
      raise e

let flush_range t ~addr ~bytes =
  let writebacks, cycles = Cache.flush_range t.cache ~addr ~bytes in
  let bus_time = Bus.writeback_lines t.bus writebacks in
  let cpu_time = Params.cpu_cycles t.p cycles in
  overhead_time t Time.(cpu_time + bus_time)

let finish t =
  flush_pending t;
  (* protocol service can steal host time while the final work batch plays
     out; keep flushing until no more arrives during the drain *)
  while t.stolen > Time.zero do
    flush_pending t
  done;
  t.finish_time <- Engine.now t.eng;
  t.finished <- true

let finished t = t.finished

let report t =
  {
    computation = t.t_compute;
    synch_overhead = t.t_overhead;
    synch_delay = t.t_delay;
    finish_time = t.finish_time;
    service_time = t.t_service;
    frozen_time = t.t_frozen;
  }
