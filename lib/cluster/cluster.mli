(** A workstation cluster: N nodes on one ATM switch.

    Polymorphic in the protocol-message payload type ['a] (the DSM layer
    instantiates it with its message type; examples use their own). *)

type nic_kind =
  [ `Cni of Cni_nic.Nic.cni_options | `Osiris of Cni_nic.Nic.osiris_options | `Standard ]

type 'a t

val create :
  ?params:Cni_machine.Params.t -> nic_kind:nic_kind -> nodes:int -> unit -> 'a t

val engine : 'a t -> Cni_engine.Engine.t
val params : 'a t -> Cni_machine.Params.t
val fabric : 'a t -> 'a Cni_atm.Fabric.t
val size : 'a t -> int
val node : 'a t -> int -> 'a Node.t
val nodes : 'a t -> 'a Node.t array
val is_cni : 'a t -> bool

(** [run_app t f] spawns one application fiber per node running [f node],
    drives the simulation until every event drains, and returns. Application
    exceptions propagate (annotated by the engine). *)
val run_app : 'a t -> ('a Node.t -> unit) -> unit

(** Wall-clock of the slowest application fiber (valid after {!run_app}). *)
val elapsed : 'a t -> Cni_engine.Time.t

(** Mean network cache hit ratio across nodes (CNI; 100. with no traffic). *)
val network_cache_hit_ratio : 'a t -> float

(** Per-category totals summed over nodes (paper Tables 2-4 report sums over
    the run; we report the same). *)
type overheads = {
  computation : Cni_engine.Time.t;
  synch_overhead : Cni_engine.Time.t;
  synch_delay : Cni_engine.Time.t;
  total : Cni_engine.Time.t;  (** elapsed wall-clock of the slowest node *)
}

val overheads : 'a t -> overheads
