(** A workstation cluster: N nodes on an ATM fabric (a single central
    switch by default; see {!Cni_atm.Topology} for scale-out shapes).

    Polymorphic in the protocol-message payload type ['a] (the DSM layer
    instantiates it with its message type; examples use their own). *)

type nic_kind =
  [ `Cni of Cni_nic.Nic.cni_options | `Osiris of Cni_nic.Nic.osiris_options | `Standard ]

type 'a t

(** [faults] attaches a {!Cni_atm.Faults} model to the fabric (ignored when
    it is {!Cni_atm.Faults.is_none}); a faulty fabric implies NIC-level
    reliable delivery — [reliability] defaults to
    {!Cni_nic.Reliable.default} whenever faults are active, and can be
    passed explicitly to tune it (or to enable reliability on a clean
    fabric). [reliability_off] forces NIC reliability off even under
    faults, for workloads that bring their own recovery protocol — the
    firmware-compiled {!Cni_nic.Reliable_ir} endpoints, notably — and
    accept raw loss everywhere else. A non-empty [faults.schedule] is
    validated against the node
    count and wired onto engine timers: each event calls {!crash_node} /
    {!restart_node} at its time.

    [topology] selects the fabric's interconnect shape (default
    {!Cni_atm.Topology.Single}, the seed central switch).

    @raise Invalid_argument on an inconsistent fault schedule (see
    {!Cni_atm.Faults.validate}) or a topology that rejects the node count
    (see {!Cni_atm.Topology.validate}). *)
val create :
  ?params:Cni_machine.Params.t ->
  ?faults:Cni_atm.Faults.config ->
  ?reliability:Cni_nic.Reliable.config ->
  ?reliability_off:bool ->
  ?topology:Cni_atm.Topology.kind ->
  nic_kind:nic_kind ->
  nodes:int ->
  unit ->
  'a t

(** Sum of NIC retransmissions over all nodes (0 when reliability is off). *)
val retransmits : 'a t -> int

val engine : 'a t -> Cni_engine.Engine.t
val params : 'a t -> Cni_machine.Params.t
val fabric : 'a t -> 'a Cni_atm.Fabric.t
val size : 'a t -> int
val node : 'a t -> int -> 'a Node.t
val nodes : 'a t -> 'a Node.t array
val is_cni : 'a t -> bool

(** Raised by {!run_app} when the event queue drained but some
    {e non-crashed} node's application fiber never finished — a protocol
    deadlock. [crashed] lists nodes that crashed without restarting (those
    alone do {e not} raise: they are expected casualties of the fault
    schedule, reported by {!crashed_nodes}). A printer is registered. *)
exception Deadlock of { unfinished : int list; crashed : int list }

(** [run_app t f] spawns one application fiber per node running [f node],
    drives the simulation until every event drains, and returns. Application
    exceptions propagate (annotated by the engine). [watchdog] bounds the
    run with {!Cni_engine.Engine.run_watched}: events still pending past the
    limit raise [Engine.Quiescence_timeout] instead of spinning forever.
    @raise Deadlock when a live node's fiber never finished. *)
val run_app : ?watchdog:Cni_engine.Time.t -> 'a t -> ('a Node.t -> unit) -> unit

(** {2 Node faults}

    Normally driven by the fault schedule given to {!create}; exposed for
    tests and custom harnesses. *)

(** Freeze the node's application fiber, crash its board ([scrub] wipes
    board memory — default [false]) and sever it from the fabric. No-op on
    an already-crashed node's board. *)
val crash_node : ?scrub:bool -> 'a t -> int -> unit

(** Revive the board under a new delivery epoch (replaying scrubbed
    installations), reattach the fabric link and thaw the application
    fiber. *)
val restart_node : 'a t -> int -> unit

(** [false] between {!crash_node} and {!restart_node}. *)
val node_alive : 'a t -> int -> bool

(** Currently-crashed nodes, ascending. *)
val crashed_nodes : 'a t -> int list

(** Wall-clock of the slowest application fiber (valid after {!run_app}). *)
val elapsed : 'a t -> Cni_engine.Time.t

(** Mean network cache hit ratio over nodes whose Message Cache saw lookups
    (idle nodes are excluded from the average); 0. when no node saw any. *)
val network_cache_hit_ratio : 'a t -> float

(** The cluster's metrics registry. Every node's NIC, transmit-descriptor
    ring, Message Cache (and, when the DSM layer is attached, its protocol
    counters) register here as [node<N>/<subsystem>/<metric>]. *)
val metrics : 'a t -> Cni_engine.Stats.Registry.t

(** Refresh the per-node time-accounting gauges
    ([node<N>/node/{computation_ps,synch_overhead_ps,synch_delay_ps,
    service_ps,finish_ps}] and [cluster/elapsed_ps]) and return a snapshot of
    the whole registry. Valid after {!run_app}; idempotent. *)
val metrics_snapshot : 'a t -> Cni_engine.Stats.Registry.snapshot

(** Per-category totals summed over nodes (paper Tables 2-4 report sums over
    the run; we report the same). *)
type overheads = {
  computation : Cni_engine.Time.t;
  synch_overhead : Cni_engine.Time.t;
  synch_delay : Cni_engine.Time.t;
  total : Cni_engine.Time.t;  (** elapsed wall-clock of the slowest node *)
}

val overheads : 'a t -> overheads
