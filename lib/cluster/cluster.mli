(** A workstation cluster: N nodes on one ATM switch.

    Polymorphic in the protocol-message payload type ['a] (the DSM layer
    instantiates it with its message type; examples use their own). *)

type nic_kind =
  [ `Cni of Cni_nic.Nic.cni_options | `Osiris of Cni_nic.Nic.osiris_options | `Standard ]

type 'a t

(** [faults] attaches a {!Cni_atm.Faults} model to the fabric (ignored when
    it is {!Cni_atm.Faults.is_none}); a faulty fabric implies NIC-level
    reliable delivery — [reliability] defaults to
    {!Cni_nic.Reliable.default} whenever faults are active, and can be
    passed explicitly to tune it (or to enable reliability on a clean
    fabric). *)
val create :
  ?params:Cni_machine.Params.t ->
  ?faults:Cni_atm.Faults.config ->
  ?reliability:Cni_nic.Reliable.config ->
  nic_kind:nic_kind ->
  nodes:int ->
  unit ->
  'a t

(** Sum of NIC retransmissions over all nodes (0 when reliability is off). *)
val retransmits : 'a t -> int

val engine : 'a t -> Cni_engine.Engine.t
val params : 'a t -> Cni_machine.Params.t
val fabric : 'a t -> 'a Cni_atm.Fabric.t
val size : 'a t -> int
val node : 'a t -> int -> 'a Node.t
val nodes : 'a t -> 'a Node.t array
val is_cni : 'a t -> bool

(** [run_app t f] spawns one application fiber per node running [f node],
    drives the simulation until every event drains, and returns. Application
    exceptions propagate (annotated by the engine). *)
val run_app : 'a t -> ('a Node.t -> unit) -> unit

(** Wall-clock of the slowest application fiber (valid after {!run_app}). *)
val elapsed : 'a t -> Cni_engine.Time.t

(** Mean network cache hit ratio over nodes whose Message Cache saw lookups
    (idle nodes are excluded from the average); 0. when no node saw any. *)
val network_cache_hit_ratio : 'a t -> float

(** The cluster's metrics registry. Every node's NIC, transmit-descriptor
    ring, Message Cache (and, when the DSM layer is attached, its protocol
    counters) register here as [node<N>/<subsystem>/<metric>]. *)
val metrics : 'a t -> Cni_engine.Stats.Registry.t

(** Refresh the per-node time-accounting gauges
    ([node<N>/node/{computation_ps,synch_overhead_ps,synch_delay_ps,
    service_ps,finish_ps}] and [cluster/elapsed_ps]) and return a snapshot of
    the whole registry. Valid after {!run_app}; idempotent. *)
val metrics_snapshot : 'a t -> Cni_engine.Stats.Registry.snapshot

(** Per-category totals summed over nodes (paper Tables 2-4 report sums over
    the run; we report the same). *)
type overheads = {
  computation : Cni_engine.Time.t;
  synch_overhead : Cni_engine.Time.t;
  synch_delay : Cni_engine.Time.t;
  total : Cni_engine.Time.t;  (** elapsed wall-clock of the slowest node *)
}

val overheads : 'a t -> overheads
