(** A workstation node: CPU + two-level cache + TLB + memory bus + NIC,
    plus the time accounting the paper reports (Tables 2-4).

    Each node runs its application on one fiber. Time charged to that fiber
    is split into the paper's three categories:

    - {e computation}: application work and its memory traffic;
    - {e synch overhead}: CPU cycles spent executing protocol actions —
      client-side costs charged by the DSM layer, kernel/ADC send paths, and
      host CPU time stolen by interrupt-driven protocol service while the
      application was computing;
    - {e synch delay}: time the application spends blocked (lock and barrier
      waits, remote-request round trips).

    Application work is batched: {!work} and {!touch} accumulate cost that is
    flushed into the simulation clock at the next interaction point, keeping
    event counts low without changing any ordering that matters (all
    synchronisation goes through flushing entry points). *)

type 'a t

(** [registry], when given, is forwarded to the NIC so its counters land in
    the cluster's metrics registry under [node<id>/...]; [reliability]
    enables the NIC-level reliable-delivery protocol (see
    {!Cni_nic.Reliable}). *)
val create :
  ?registry:Cni_engine.Stats.Registry.t ->
  ?reliability:Cni_nic.Reliable.config ->
  Cni_engine.Engine.t ->
  Cni_machine.Params.t ->
  'a Cni_atm.Fabric.t ->
  id:int ->
  nic_kind:
    [ `Cni of Cni_nic.Nic.cni_options | `Osiris of Cni_nic.Nic.osiris_options | `Standard ] ->
  'a t

val id : 'a t -> int
val params : 'a t -> Cni_machine.Params.t
val engine : 'a t -> Cni_engine.Engine.t
val nic : 'a t -> 'a Cni_nic.Nic.t
val cache : 'a t -> Cni_machine.Cache.t
val bus : 'a t -> Cni_machine.Bus.t

(** {2 Application-fiber operations} *)

(** [work t cycles] — application computation, in CPU cycles (batched). *)
val work : 'a t -> int -> unit

(** [touch t ~addr ~bytes ~write] — application memory traffic: walks the
    range a cache line at a time through the cache model; write-backs cross
    the bus (and are snooped by the Message Cache). Batched. *)
val touch : 'a t -> addr:int -> bytes:int -> write:bool -> unit

(** Charge client-side protocol work immediately (flushes batched work). *)
val overhead_cycles : 'a t -> int -> unit

val overhead_time : 'a t -> Cni_engine.Time.t -> unit

(** [blocking t f] runs blocking operation [f], accounting the elapsed time
    as synch delay; while inside, the NIC sees the host as waiting/polling. *)
val blocking : 'a t -> (unit -> 'b) -> 'b

(** Write back and drop all cache lines of a range; the write-backs cross
    the bus (snooped). Cost is charged as synch overhead (this is the
    pre-transfer flush of section 2.2, performed by protocol code). *)
val flush_range : 'a t -> addr:int -> bytes:int -> unit

(** Flush batched work into the simulated clock. *)
val flush_pending : 'a t -> unit

(** Mark the application fiber finished (records the completion time). *)
val finish : 'a t -> unit

(** Whether {!finish} has run (used to detect deadlocked runs). *)
val finished : 'a t -> bool

(** {2 Crash freeze}

    While a node is crashed its host makes no progress: {!freeze} parks the
    application fiber at its next interaction point (any operation that
    flushes batched work), and {!unfreeze} resumes it. Program state — host
    memory — survives; only time passes. Driven by [Cluster.crash_node] /
    [Cluster.restart_node] together with the NIC-level crash. *)

val freeze : 'a t -> unit

(** Resume every fiber parked by {!freeze}; no-op if not frozen. *)
val unfreeze : 'a t -> unit

val frozen : 'a t -> bool

(** {2 Reporting} *)

type report = {
  computation : Cni_engine.Time.t;
  synch_overhead : Cni_engine.Time.t;
  synch_delay : Cni_engine.Time.t;
  finish_time : Cni_engine.Time.t;
  service_time : Cni_engine.Time.t;
      (** host CPU time spent serving remote protocol requests (subset
          already folded into overhead when it preempted computation) *)
  frozen_time : Cni_engine.Time.t;
      (** time the application fiber spent parked while its node was
          crashed (zero on a fault-free run) *)
}

val report : 'a t -> report
