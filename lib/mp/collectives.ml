module Sync = Cni_engine.Sync
module Stats = Cni_engine.Stats
module Params = Cni_machine.Params
module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node
module Nic = Cni_nic.Nic
module Wire = Cni_nic.Wire
module Fabric = Cni_atm.Fabric

let default_channel = 3

(* Wire kinds on the collectives channel. Value-free barrier traffic gets its
   own kinds so the combining machinery (inject/project/bytes_of/op) is never
   consulted for it. *)
let k_up = 1
let k_down = 2
let k_barrier_up = 3
let k_barrier_down = 4

(* up/down control frames carry an 8-byte descriptor besides the header *)
let barrier_body_bytes = 8

(* One in-flight episode's combining-tree state, as it lives in the board's
   memory. Ups from the subtree may arrive before the local contribution is
   posted (the op is unknown until then), so early contributions queue in
   [i_pending]. *)
type 'v inst = {
  i_root : int;
  mutable i_barrier : bool;  (* value-free episode *)
  mutable i_op : ('v -> 'v -> 'v) option;
  mutable i_acc : 'v option;  (* fold of the contributions seen so far *)
  mutable i_pending : 'v list;  (* queued until the combining op is known *)
  mutable i_got : int;  (* child contributions received *)
  mutable i_arrived : bool;  (* local contribution posted *)
  mutable i_up_sent : bool;
  mutable i_want_down : bool;  (* completion requires the release/result *)
  mutable i_result : 'v option;
  mutable i_done : bool;
  i_waiter : unit Sync.Ivar.t;  (* the host fiber; woken exactly once *)
}

type ('v, 'a) t = {
  node : 'a Node.t;
  rank : int;
  size : int;
  fanout : int;
  channel : int;
  combine_cycles : int;  (* per combine/forward step, protocol clock *)
  live : int -> bool;  (* routing oracle: dead ranks are bypassed in the tree *)
  inject : 'v -> 'a;
  project : 'a -> 'v;
  bytes_of : 'v -> int;
  insts : (int, 'v inst) Hashtbl.t;  (* seq -> episode state *)
  mutable next_seq : int;
  s_episodes : Stats.Counter.t;
  s_combines : Stats.Counter.t;
  s_forwards : Stats.Counter.t;
}

let rank t = t.rank
let size t = t.size
let episodes t = Stats.Counter.value t.s_episodes

(* ------------------------------------------------------------------ *)
(* The combining tree                                                  *)
(* ------------------------------------------------------------------ *)

(* A [fanout]-ary tree rooted at [root], laid out over virtual ranks so any
   node can serve as the root without reprogramming the boards.

   Dead ranks (per the [live] oracle) are routed around rather than waited
   on: a node's parent is its first {e live} ancestor, and its children are
   the live ranks whose first live ancestor it is — dead subtree roots are
   transparently replaced by their live descendants. Both sides recompute
   the routing from the same oracle, so the adopted edges agree. The oracle
   is consulted afresh each episode; a crash {e during} an episode can still
   strand it (the quiescence watchdog's job), but episodes that start after
   the crash reconfigure cleanly. *)
let vrank t ~root = (t.rank - root + t.size) mod t.size
let unvrank t ~root v = (v + root) mod t.size
let vparent t v = (v - 1) / t.fanout

let parent t ~root =
  let v = vrank t ~root in
  if v = 0 then None
  else
    let rec first_live v =
      let r = unvrank t ~root v in
      if v = 0 || t.live r then r else first_live (vparent t v)
    in
    Some (first_live (vparent t v))

let children t ~root =
  let v = vrank t ~root in
  (* a live virtual rank is a child; a dead one is expanded into its own
     children, recursively — its live descendants report here instead *)
  let rec expand c acc =
    if c >= t.size then acc
    else
      let r = unvrank t ~root c in
      if t.live r then r :: acc
      else
        let rec kids i acc =
          if i > t.fanout then acc else kids (i + 1) (expand ((t.fanout * c) + i) acc)
        in
        kids 1 acc
  in
  let rec go i acc =
    if i > t.fanout then List.rev acc else go (i + 1) (expand ((t.fanout * v) + i) acc)
  in
  go 1 []

let nchildren t ~root = List.length (children t ~root)

(* episode id and tree root travel in the header's obj field *)
let obj_of ~seq ~root = (seq lsl 8) lor root

let header t ~kind ~seq ~root =
  Wire.encode
    {
      Wire.kind;
      cacheable = false;
      has_data = false;
      src = t.rank;
      channel = t.channel;
      obj = obj_of ~seq ~root;
      aux = 0;
    }

(* ------------------------------------------------------------------ *)
(* Episode state machine (runs in protocol context)                    *)
(* ------------------------------------------------------------------ *)

let inst t ~seq ~root =
  match Hashtbl.find_opt t.insts seq with
  | Some i -> i
  | None ->
      let i =
        {
          i_root = root;
          i_barrier = false;
          i_op = None;
          i_acc = None;
          i_pending = [];
          i_got = 0;
          i_arrived = false;
          i_up_sent = false;
          i_want_down = false;
          i_result = None;
          i_done = false;
          i_waiter = Sync.Ivar.create ();
        }
      in
      Hashtbl.replace t.insts seq i;
      i

let fold t i v =
  match i.i_op with
  | None -> i.i_pending <- v :: i.i_pending
  | Some op -> (
      match i.i_acc with
      | None -> i.i_acc <- Some v
      | Some a ->
          Stats.Counter.incr t.s_combines;
          i.i_acc <- Some (op a v))

let complete i =
  i.i_done <- true;
  Sync.Ivar.fill i.i_waiter ()

let send_up t (ctx : 'a Nic.ctx) i ~seq =
  i.i_up_sent <- true;
  match parent t ~root:i.i_root with
  | None -> assert false (* the root has no parent *)
  | Some dst ->
      if i.i_barrier then
        ctx.Nic.reply ~dst
          ~header:(header t ~kind:k_barrier_up ~seq ~root:i.i_root)
          ~body_bytes:barrier_body_bytes ~data:Nic.No_data ~payload:(Obj.magic 0)
      else
        let v = Option.get i.i_acc in
        ctx.Nic.reply ~dst
          ~header:(header t ~kind:k_up ~seq ~root:i.i_root)
          ~body_bytes:(t.bytes_of v) ~data:Nic.No_data ~payload:(t.inject v)

let send_down t (ctx : 'a Nic.ctx) i ~seq =
  List.iter
    (fun dst ->
      Stats.Counter.incr t.s_forwards;
      if i.i_barrier then
        ctx.Nic.reply ~dst
          ~header:(header t ~kind:k_barrier_down ~seq ~root:i.i_root)
          ~body_bytes:barrier_body_bytes ~data:Nic.No_data ~payload:(Obj.magic 0)
      else
        let v = Option.get i.i_result in
        ctx.Nic.reply ~dst
          ~header:(header t ~kind:k_down ~seq ~root:i.i_root)
          ~body_bytes:(t.bytes_of v) ~data:Nic.No_data ~payload:(t.inject v))
    (children t ~root:i.i_root)

(* Combine phase step: once the local contribution is in and every child has
   reported, the subtree's partial moves up (or, at the root, the episode's
   result is final and the release phase starts). State transitions complete
   before any message leaves: sends may yield the protocol processor. *)
let try_finish_up t ctx i ~seq =
  if i.i_arrived && (not i.i_up_sent) && (not i.i_done) && i.i_got = nchildren t ~root:i.i_root
  then
    if vrank t ~root:i.i_root = 0 then begin
      i.i_result <- i.i_acc;
      let down = i.i_want_down in
      complete i;
      if down then send_down t ctx i ~seq
    end
    else if i.i_want_down then send_up t ctx i ~seq
    else begin
      (* up-only (reduce): this node is finished the moment its partial
         leaves; the result is meaningful only at the root *)
      i.i_result <- i.i_acc;
      complete i;
      send_up t ctx i ~seq
    end

let on_up t ctx ~seq ~root ~barrier ~value =
  let i = inst t ~seq ~root in
  i.i_barrier <- barrier;
  ctx.Nic.charge t.combine_cycles;
  i.i_got <- i.i_got + 1;
  Option.iter (fun v -> fold t i v) value;
  try_finish_up t ctx i ~seq

let on_down t ctx ~seq ~root ~barrier ~value =
  let i = inst t ~seq ~root in
  if not i.i_done then begin
    i.i_barrier <- barrier;
    ctx.Nic.charge t.combine_cycles;
    i.i_result <- value;
    complete i;
    (* releases fan out board-to-board: a subtree node forwards without any
       involvement from its (possibly still computing) host *)
    send_down t ctx i ~seq
  end

(* ------------------------------------------------------------------ *)
(* Host entry points                                                   *)
(* ------------------------------------------------------------------ *)

(* Every node calls the collectives in the same order, so the per-endpoint
   sequence number identifies the episode cluster-wide (cf. Mp's collective
   tags). The host's only protocol work is posting the local contribution —
   [Nic.local_dispatch] — and blocking on the episode ivar; combining and
   forwarding happen in protocol context as the tree traffic arrives. *)
let run t ~root ~barrier ~has_up ~want_down ~op v =
  if t.size = 1 then v
  else begin
    if root < 0 || root >= t.size then invalid_arg "Collectives: bad root";
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let i = inst t ~seq ~root in
    i.i_barrier <- barrier;
    i.i_op <- op;
    i.i_want_down <- want_down;
    Nic.local_dispatch (Node.nic t.node) (fun ctx ->
        let queued = List.length i.i_pending in
        ctx.Nic.charge (t.combine_cycles * (1 + queued));
        i.i_arrived <- true;
        if has_up then begin
          if not barrier then begin
            fold t i v;
            let pending = List.rev i.i_pending in
            i.i_pending <- [];
            List.iter (fun q -> fold t i q) pending
          end;
          try_finish_up t ctx i ~seq
        end
        else if vrank t ~root = 0 then begin
          (* down-only (broadcast): the root's arrival is the release *)
          i.i_result <- Some v;
          complete i;
          send_down t ctx i ~seq
        end);
    Node.blocking t.node (fun () -> Sync.Ivar.read i.i_waiter);
    Hashtbl.remove t.insts seq;
    Stats.Counter.incr t.s_episodes;
    match i.i_result with Some r -> r | None -> v
  end

let barrier t =
  if t.size > 1 then
    ignore
      (run t ~root:0 ~barrier:true ~has_up:true ~want_down:true ~op:None
         (* never folded, injected or sized: barrier frames are value-free *)
         (Obj.magic 0))

let broadcast t ~root v = run t ~root ~barrier:false ~has_up:false ~want_down:true ~op:None v

let reduce t ~root ~op v =
  run t ~root ~barrier:false ~has_up:true ~want_down:false ~op:(Some op) v

let allreduce t ~op v =
  run t ~root:0 ~barrier:false ~has_up:true ~want_down:true ~op:(Some op) v

(* ------------------------------------------------------------------ *)
(* Installation                                                        *)
(* ------------------------------------------------------------------ *)

let install ?(channel = default_channel) ?(fanout = 2) ?(code_bytes = 2048)
    ?(bytes_of = fun _ -> 64) ?live ~inject ~project cluster =
  let live =
    match live with Some f -> f | None -> fun r -> Cluster.node_alive cluster r
  in
  let n = Cluster.size cluster in
  if n > 256 then
    invalid_arg "Collectives.install: at most 256 nodes (the root rides in the header)";
  if fanout < 1 then invalid_arg "Collectives.install: fanout must be >= 1";
  let registry = Cluster.metrics cluster in
  let endpoints =
    Array.init n (fun rank ->
        let node = Cluster.node cluster rank in
        let p = Nic.params (Node.nic node) in
        let counter name =
          Stats.Registry.counter registry ~node:rank ~subsystem:"collectives" name
        in
        {
          node;
          rank;
          size = n;
          fanout;
          channel;
          combine_cycles = p.Params.handler_dispatch_nic_cycles;
          live;
          inject;
          project;
          bytes_of;
          insts = Hashtbl.create 16;
          next_seq = 0;
          s_episodes = counter "episodes";
          s_combines = counter "combines";
          s_forwards = counter "forwards";
        })
  in
  Array.iter
    (fun t ->
      (* one AIH per board: [code_bytes] covers the handler's object code
         plus the combining-tree state it keeps in board memory *)
      ignore
        (Nic.install_handler (Node.nic t.node)
           ~pattern:(Wire.pattern_channel ~channel)
           ~code_bytes
           (fun ctx pkt ->
             let hdr = Wire.decode pkt.Fabric.header in
             let seq = hdr.Wire.obj lsr 8 and root = hdr.Wire.obj land 0xff in
             let k = hdr.Wire.kind in
             if k = k_up then
               on_up t ctx ~seq ~root ~barrier:false
                 ~value:(Some (t.project pkt.Fabric.payload))
             else if k = k_barrier_up then on_up t ctx ~seq ~root ~barrier:true ~value:None
             else if k = k_down then
               on_down t ctx ~seq ~root ~barrier:false
                 ~value:(Some (t.project pkt.Fabric.payload))
             else if k = k_barrier_down then on_down t ctx ~seq ~root ~barrier:true ~value:None
             else failwith (Printf.sprintf "Collectives: unknown kind %d on channel %d" k t.channel))))
    endpoints;
  endpoints
