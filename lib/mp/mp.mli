(** Message passing over Application Device Channels.

    The paper's third design goal is to support {e both} the message-passing
    and distributed-shared-memory paradigms (section 1). This library is the
    message-passing side: tagged point-to-point sends and receives plus
    binomial-tree collectives, running entirely at user level over the ADC
    machinery — a PATHFINDER pattern steers the endpoint's packets into its
    mailbox, large payloads ride as bulk data through the Message Cache, and
    no kernel or host interrupt sits on the critical path of a CNI cluster.

    Typical use:
    {[
      let cluster = Cluster.create ~nic_kind ~nodes () in
      let eps = Mp.install cluster in
      Cluster.run_app cluster (fun node ->
          let ep = eps.(Node.id node) in
          if Mp.rank ep = 0 then Mp.send ep ~dst:1 ~tag:7 "hello"
          else ignore (Mp.recv ep ~tag:7 ()))
    ]} *)

(** A received message. *)
type 'a envelope = { src : int; tag : int; bytes : int; value : 'a }

type 'a t

(** The ADC channel the library claims on every board. *)
val channel : int

(** Tags at or above this value are reserved for the collectives. *)
val reserved_tag_base : int

(** The wire channel the NIC-resident collectives claim (see {!install}). *)
val collectives_channel : int

(** [install cluster] creates one endpoint per node and programs every
    board's classifier. Call once, before [run_app].

    [nic_collectives] (default [false]) additionally installs a
    {!Collectives} endpoint set on {!collectives_channel} and reroutes
    {!barrier}, {!broadcast}, {!reduce} and {!allreduce} through it: the
    combining tree runs as AIH code on the boards and the host is woken once
    per collective, instead of driving every round from host send/recv. The
    default keeps the host-driven paths (the ablation baseline). [fanout]
    is the combining-tree arity (default 2; only meaningful with
    [nic_collectives]). *)
val install :
  ?nic_collectives:bool -> ?fanout:int -> 'a envelope Cni_cluster.Cluster.t -> 'a t array

(** Whether this endpoint's collectives are NIC-resident. *)
val nic_collective : 'a t -> bool

val rank : 'a t -> int
val size : 'a t -> int

(** [send t ~dst ~tag ?bytes ?buffer v] — asynchronous tagged send.
    [bytes] (default 64) is the payload size on the wire; payloads of a page
    or more ride as bulk data from [buffer] (a host virtual address, default
    a per-endpoint scratch buffer) and so exercise the DMA / Message Cache
    path. Sending to yourself delivers locally.
    @raise Invalid_argument on a reserved tag or bad destination. *)
val send : 'a t -> dst:int -> tag:int -> ?bytes:int -> ?buffer:int -> 'a -> unit

(** [recv t ?src ~tag ()] — blocking receive matching [tag] and, when given,
    [src]. Messages that do not match are left for other receives
    (tag matching, not FIFO across tags). Fiber context. *)
val recv : 'a t -> ?src:int -> tag:int -> unit -> 'a envelope

(** [recv_timeout t ?src ~tag ~timeout ()] — like {!recv} but gives up after
    [timeout] of simulated time, returning [None]. On timeout the pending
    receive is withdrawn: a message arriving later parks in the mailbox for a
    future receive rather than being lost. Use against a peer that may have
    crashed (see [Cluster.crash_node]) to degrade cleanly instead of hanging.
    @raise Invalid_argument on a non-positive timeout or reserved tag. *)
val recv_timeout :
  'a t -> ?src:int -> tag:int -> timeout:Cni_engine.Time.t -> unit -> 'a envelope option

(** Non-blocking probe-and-take. *)
val try_recv : 'a t -> ?src:int -> tag:int -> unit -> 'a envelope option

(** Unmatched messages held by the endpoint. *)
val pending : 'a t -> int

(** {2 Collectives}

    Every node must call the same collectives in the same order. By default
    all are built from {!send}/{!recv} (dissemination barrier, binomial
    broadcast and reduction), so their cost is real message traffic; with
    [~nic_collectives:true] they run on the boards' combining tree instead
    (see {!Collectives}), and [op] must be associative and commutative. *)

(** Barrier: host-driven dissemination (O(log n) rounds), or the NIC
    combining tree. *)
val barrier : 'a t -> unit

(** [broadcast t ~root ?bytes v] — [v] is consulted only at the root; every
    node returns the root's value. *)
val broadcast : 'a t -> root:int -> ?bytes:int -> 'a -> 'a

(** [reduce t ~root ~op ?bytes v] — binomial-tree reduction; the result is
    meaningful only at the root (other ranks get their partial). *)
val reduce : 'a t -> root:int -> op:('a -> 'a -> 'a) -> ?bytes:int -> 'a -> 'a

(** Reduction whose result every node receives. *)
val allreduce : 'a t -> op:('a -> 'a -> 'a) -> ?bytes:int -> 'a -> 'a

(** One-line summary of outstanding receives and parked messages. *)
val debug_state : 'a t -> string
