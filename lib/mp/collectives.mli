(** NIC-resident collective operations.

    Barrier, broadcast, reduce and allreduce over a combining tree whose
    per-episode state lives in board memory and whose combine/forward steps
    run as Application Interrupt Handler code — the design of Yu et al.'s
    NIC-based collective protocol over Quadrics/Myrinet, mapped onto the
    CNI's AIH machinery.

    On a CNI board with AIH enabled an episode costs the host exactly two
    actions: posting its local contribution (an ADC descriptor) and blocking
    until the board fills the episode's ivar — {e zero host interrupts}, no
    matter how many tree messages the board combines and forwards meanwhile.
    With AIH disabled (host-handler ablation) the same steps run on the host
    CPU behind the polling/interrupt hybrid; on the standard interface every
    tree packet costs an interrupt plus the kernel receive path, and the
    contribution is posted through the kernel. The host fiber is woken
    exactly once per episode in every configuration.

    An endpoint set is generic in the episode value type ['v] and the
    cluster's wire payload type ['a]: [inject]/[project] convert between the
    two (the identity when the cluster's payload {e is} the value type), and
    [bytes_of] gives a value's wire size. Barrier episodes never touch the
    value machinery.

    Like {!Mp}'s collectives: every node must call the same collectives in
    the same order, and combining operators must be associative and
    commutative (the tree folds contributions in arrival order). *)

type ('v, 'a) t

(** The wire channel claimed by default (Mp uses 2, the DSM protocol 1). *)
val default_channel : int

(** [install ~inject ~project cluster] builds one endpoint per node and
    installs one handler (pattern = the channel) per board, charging
    [code_bytes] (default 2048: object code + tree state) of board memory
    each. [fanout] (default 2) is the combining-tree arity; [bytes_of]
    (default [fun _ -> 64]) sizes a value on the wire.

    [live] (default: the cluster's [Cluster.node_alive]) is the routing
    oracle for the combining tree: a rank it reports dead is bypassed — its
    parent adopts its live descendants — so collectives started {e after} a
    crash reconfigure around the casualty instead of waiting on it forever.
    A crash in the middle of an episode can still strand that episode; bound
    the run with [Cluster.run_app ~watchdog] to turn such hangs into a
    structured failure.
    @raise Invalid_argument on more than 256 nodes or [fanout < 1].
    @raise Failure if a board cannot hold [code_bytes]. *)
val install :
  ?channel:int ->
  ?fanout:int ->
  ?code_bytes:int ->
  ?bytes_of:('v -> int) ->
  ?live:(int -> bool) ->
  inject:('v -> 'a) ->
  project:('a -> 'v) ->
  'a Cni_cluster.Cluster.t ->
  ('v, 'a) t array

val rank : ('v, 'a) t -> int
val size : ('v, 'a) t -> int

(** Combining-tree barrier: value-free up phase to rank 0, release fan-out
    back down. *)
val barrier : ('v, 'a) t -> unit

(** [broadcast t ~root v] — [v] is consulted only at the root; every node
    returns the root's value. Down phase only. *)
val broadcast : ('v, 'a) t -> root:int -> 'v -> 'v

(** [reduce t ~root ~op v] — up phase only; the result is meaningful at the
    root (other ranks return their subtree's partial). *)
val reduce : ('v, 'a) t -> root:int -> op:('v -> 'v -> 'v) -> 'v -> 'v

(** Reduction whose result every node receives (up to rank 0, result fans
    back down). *)
val allreduce : ('v, 'a) t -> op:('v -> 'v -> 'v) -> 'v -> 'v

(** Completed episodes at this endpoint (barrier and value episodes both). *)
val episodes : ('v, 'a) t -> int
