module Engine = Cni_engine.Engine
module Sync = Cni_engine.Sync
module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node
module Nic = Cni_nic.Nic
module Wire = Cni_nic.Wire

type 'a envelope = { src : int; tag : int; bytes : int; value : 'a }

type 'a waiter = { w_src : int option; w_tag : int; resume : 'a envelope -> unit }

type 'a t = {
  node : 'a envelope Node.t;
  rank : int;
  size : int;
  mutable mailbox : 'a envelope list; (* unmatched, arrival order (reversed) *)
  mutable waiters : 'a waiter list; (* registration order (reversed) *)
  mutable collective_seq : int;
  scratch_buffer : int;
  coll : ('a envelope, 'a envelope) Collectives.t option;
      (* NIC-resident collectives endpoint; None = host-driven collectives *)
}

let channel = 2
let reserved_tag_base = 1 lsl 20

let rank t = t.rank
let size t = t.size

let matches ~src ~tag (e : 'a envelope) =
  e.tag = tag && match src with None -> true | Some s -> e.src = s

(* deliver an envelope: wake the first matching waiter or park it *)
let deliver t e =
  let rec split acc = function
    | [] -> None
    | w :: rest when matches ~src:w.w_src ~tag:w.w_tag e ->
        Some (w, List.rev_append acc rest)
    | w :: rest -> split (w :: acc) rest
  in
  (* waiters is reversed (newest first); match in registration order *)
  match split [] (List.rev t.waiters) with
  | Some (w, remaining_in_order) ->
      t.waiters <- List.rev remaining_in_order;
      w.resume e
  | None -> t.mailbox <- e :: t.mailbox

let collectives_channel = 3

let install ?(nic_collectives = false) ?fanout cluster =
  let n = Cluster.size cluster in
  let coll =
    if nic_collectives then
      (* the endpoint's value type IS the wire payload type (an envelope), so
         inject/project are the identity; a value's wire size is the
         envelope's [bytes] field *)
      Some
        (Collectives.install ~channel:collectives_channel ?fanout
           ~bytes_of:(fun (e : 'a envelope) -> e.bytes)
           ~inject:(fun e -> e)
           ~project:(fun e -> e)
           cluster)
    else None
  in
  let endpoints =
    Array.init n (fun rank ->
        {
          node = Cluster.node cluster rank;
          rank;
          size = n;
          mailbox = [];
          waiters = [];
          collective_seq = 0;
          scratch_buffer = (1 lsl 24) + (rank lsl 20);
          coll = Option.map (fun c -> c.(rank)) coll;
        })
  in
  Array.iter
    (fun t ->
      ignore
        (Nic.install_handler (Node.nic t.node)
           ~pattern:(Wire.pattern_channel ~channel)
           ~code_bytes:512
           (fun ctx pkt ->
             ctx.Cni_nic.Nic.charge 30;
             let hdr = Wire.decode pkt.Cni_atm.Fabric.header in
             (* bulk payloads land in the posted receive buffer *)
             if hdr.Wire.has_data then
               ctx.Cni_nic.Nic.deliver_page ~vaddr:t.scratch_buffer
                 ~bytes:pkt.Cni_atm.Fabric.body_bytes ~cacheable:false;
             deliver t pkt.Cni_atm.Fabric.payload)))
    endpoints;
  endpoints

let check_tag tag =
  if tag < 0 || tag >= reserved_tag_base then
    invalid_arg "Mp.send: tag out of range (reserved for collectives)"

let send_internal t ~dst ~tag ~bytes ~buffer value =
  if dst < 0 || dst >= t.size then invalid_arg "Mp.send: bad destination";
  let e = { src = t.rank; tag; bytes; value } in
  if dst = t.rank then begin
    (* local delivery: a couple of queue operations, no wire *)
    Node.overhead_cycles t.node 40;
    deliver t e
  end
  else begin
    let bulk = bytes >= 1024 in
    let header =
      Wire.encode
        {
          Wire.kind = 1;
          cacheable = bulk;
          has_data = bulk;
          src = t.rank;
          channel;
          obj = tag;
          aux = 0;
        }
    in
    let data =
      if bulk then Cni_nic.Nic.Page { vaddr = buffer; bytes; cacheable = true }
      else Cni_nic.Nic.No_data
    in
    Nic.send (Node.nic t.node) ~dst ~header
      ~body_bytes:(if bulk then 0 else bytes)
      ~data ~payload:e
  end

let send t ~dst ~tag ?(bytes = 64) ?buffer value =
  check_tag tag;
  let buffer = Option.value buffer ~default:t.scratch_buffer in
  send_internal t ~dst ~tag ~bytes ~buffer value

let take_from_mailbox t ~src ~tag =
  let rec split acc = function
    | [] -> None
    | e :: rest when matches ~src ~tag e -> Some (e, List.rev_append acc rest)
    | e :: rest -> split (e :: acc) rest
  in
  (* mailbox is reversed (newest first); match in arrival order *)
  match split [] (List.rev t.mailbox) with
  | Some (e, remaining_in_order) ->
      t.mailbox <- List.rev remaining_in_order;
      Some e
  | None -> None

let recv_internal t ?src ~tag () =
  match take_from_mailbox t ~src ~tag with
  | Some e -> e
  | None ->
      (* register the waiter BEFORE blocking: [Node.blocking] flushes batched
         work (a yield), and a message landing in that window must find the
         waiter rather than park unmatched — an ivar tolerates being filled
         before it is read *)
      let iv = Sync.Ivar.create () in
      t.waiters <-
        { w_src = src; w_tag = tag; resume = (fun e -> Sync.Ivar.fill iv e) } :: t.waiters;
      Node.blocking t.node (fun () -> Sync.Ivar.read iv)

let recv t ?src ~tag () =
  check_tag tag;
  recv_internal t ?src ~tag ()

(* A receive that gives up: races the waiter against an engine timer. The
   waiter is removed on timeout so a late-arriving message parks in the
   mailbox (observable by a later receive) instead of resuming a dead
   continuation; the fill-once flag arbitrates the race when message and
   timer land on the same instant. *)
let recv_timeout t ?src ~tag ~timeout () =
  check_tag tag;
  if timeout <= Cni_engine.Time.zero then invalid_arg "Mp.recv_timeout: timeout must be positive";
  match take_from_mailbox t ~src ~tag with
  | Some e -> Some e
  | None ->
      let iv = Sync.Ivar.create () in
      let settled = ref false in
      let w =
        { w_src = src; w_tag = tag;
          resume =
            (fun e ->
              settled := true;
              Sync.Ivar.fill iv (Some e)) }
      in
      t.waiters <- w :: t.waiters;
      let eng = Node.engine t.node in
      Engine.after eng timeout (fun () ->
          if not !settled then begin
            settled := true;
            t.waiters <- List.filter (fun w' -> w' != w) t.waiters;
            Sync.Ivar.fill iv None
          end);
      Node.blocking t.node (fun () -> Sync.Ivar.read iv)

let try_recv t ?src ~tag () =
  check_tag tag;
  take_from_mailbox t ~src ~tag

let pending t = List.length t.mailbox

(* ------------------------------------------------------------------ *)
(* Collectives                                                         *)
(* ------------------------------------------------------------------ *)

(* Every node calls collectives in the same order, so a per-endpoint
   sequence number gives collision-free internal tags. *)
let next_tags t =
  let seq = t.collective_seq in
  t.collective_seq <- seq + 1;
  fun round -> reserved_tag_base + (seq * 64) + round

(* Barrier messages carry no meaningful payload, but the envelope type wants
   an ['a]; an immediate placeholder is stored and — because reserved tags
   are rejected by the public [recv] — can never be read by user code. *)
let barrier_placeholder : 'a. unit -> 'a = fun () -> Obj.magic 0

let host_barrier t =
  if t.size > 1 then begin
    let tag = next_tags t in
    let round = ref 0 in
    let dist = ref 1 in
    (* dissemination barrier: in round k, signal rank+2^k and await the
       signal from rank-2^k; after ceil(log2 n) rounds everyone has
       (transitively) heard from everyone *)
    while !dist < t.size do
      let to_ = (t.rank + !dist) mod t.size in
      let from = (t.rank - !dist + t.size) mod t.size in
      send_internal t ~dst:to_ ~tag:(tag !round) ~bytes:16 ~buffer:t.scratch_buffer
        (barrier_placeholder ());
      ignore (recv_internal t ~src:from ~tag:(tag !round) ());
      incr round;
      dist := !dist * 2
    done
  end

let vrank t ~root = (t.rank - root + t.size) mod t.size
let unvrank t ~root v = (v + root) mod t.size

let host_broadcast t ~root ~bytes value =
  if t.size = 1 then value
  else begin
    let tag = next_tags t in
    let vr = vrank t ~root in
    let result = ref value in
    let mask = ref 1 in
    let round = ref 0 in
    while !mask < t.size do
      if vr >= !mask && vr < 2 * !mask then begin
        let from = unvrank t ~root (vr - !mask) in
        result := (recv_internal t ~src:from ~tag:(tag !round) ()).value
      end
      else if vr < !mask && vr + !mask < t.size then begin
        let to_ = unvrank t ~root (vr + !mask) in
        send_internal t ~dst:to_ ~tag:(tag !round) ~bytes ~buffer:t.scratch_buffer !result
      end;
      incr round;
      mask := !mask * 2
    done;
    !result
  end

let host_reduce t ~root ~op ~bytes value =
  if t.size = 1 then value
  else begin
    let tag = next_tags t in
    let vr = vrank t ~root in
    let acc = ref value in
    let mask = ref 1 in
    let round = ref 0 in
    let continue = ref true in
    while !continue && !mask < t.size do
      if vr land !mask <> 0 then begin
        (* pass the partial down the tree and leave *)
        let to_ = unvrank t ~root (vr - !mask) in
        send_internal t ~dst:to_ ~tag:(tag !round) ~bytes ~buffer:t.scratch_buffer !acc;
        continue := false
      end
      else if vr + !mask < t.size then begin
        let from = unvrank t ~root (vr + !mask) in
        let e = recv_internal t ~src:from ~tag:(tag !round) () in
        acc := op !acc e.value
      end;
      incr round;
      mask := !mask * 2
    done;
    (* ranks that sent early must still burn the remaining tag sequence; the
       per-collective tag block makes that a no-op (tags are unique) *)
    !acc
  end

(* The NIC-resident path lifts values into envelopes (the wire payload type)
   so one Collectives installation serves any user value type; [op] is
   applied to the carried values. *)
let envelope t ~bytes value = { src = t.rank; tag = reserved_tag_base; bytes; value }

let lift op e1 e2 = { e1 with value = op e1.value e2.value }

let barrier t =
  match t.coll with Some c -> Collectives.barrier c | None -> host_barrier t

let broadcast t ~root ?(bytes = 64) value =
  match t.coll with
  | Some c -> (Collectives.broadcast c ~root (envelope t ~bytes value)).value
  | None -> host_broadcast t ~root ~bytes value

let reduce t ~root ~op ?(bytes = 64) value =
  match t.coll with
  | Some c -> (Collectives.reduce c ~root ~op:(lift op) (envelope t ~bytes value)).value
  | None -> host_reduce t ~root ~op ~bytes value

let allreduce t ~op ?(bytes = 64) value =
  match t.coll with
  | Some c -> (Collectives.allreduce c ~op:(lift op) (envelope t ~bytes value)).value
  | None ->
      let partial = host_reduce t ~root:0 ~op ~bytes value in
      host_broadcast t ~root:0 ~bytes partial

let nic_collective t = Option.is_some t.coll

(* Debug: outstanding waits and parked messages (deadlock triage). *)
let debug_state t =
  let w =
    List.map
      (fun w ->
        Printf.sprintf "(src=%s,tag=%d)"
          (match w.w_src with Some s -> string_of_int s | None -> "*")
          w.w_tag)
      t.waiters
  in
  let m = List.map (fun e -> Printf.sprintf "(src=%d,tag=%d)" e.src e.tag) t.mailbox in
  Printf.sprintf "rank %d: waiters=[%s] mailbox=[%s]" t.rank (String.concat ";" w)
    (String.concat ";" m)
