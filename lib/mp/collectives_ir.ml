module Sync = Cni_engine.Sync
module Stats = Cni_engine.Stats
module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node
module Nic = Cni_nic.Nic
module Wire = Cni_nic.Wire
module Fabric = Cni_atm.Fabric
module Ir = Cni_aih.Aih_ir
module Verify = Cni_aih.Aih_verify

(* Same channel and wire protocol as the closure implementation: the two are
   interchangeable on the wire, which is what the parity property tests. *)
let default_channel = Collectives.default_channel
let k_up = 1
let k_down = 2
let k_barrier_up = 3
let k_barrier_down = 4
let barrier_body_bytes = 8

type op = Sum | Max | Min

(* ------------------------------------------------------------------ *)
(* The firmware                                                        *)
(* ------------------------------------------------------------------ *)

(* The combining-tree step as verifiable object code. Episode state lives
   in the handler's board segment as a table of [nslots] slots of
   [slot_words] words each; an episode claims the first free slot on its
   first event and frees it when it is both posted and done. The closure
   implementation's [i_pending] queue disappears: the combining op is baked
   into the code at install time, so early child contributions fold
   immediately (safe — ops are associative and commutative). *)

let nslots = 16
let slot_words = 10
let f_tag = 0 (* seq + 1; 0 = slot free *)
let f_root = 1
let f_barrier = 2
let f_posted = 3 (* local contribution arrived *)
let f_wantd = 4 (* completion requires the release/result *)
let f_hasup = 5
let f_done = 6
let f_got = 7 (* child contributions received *)
let f_acc = 8
let f_haveacc = 9

(* Activation ABI. Every event carries:
     r0 = event (0 post, 1 up, 2 down)   r1 = seq       r2 = tree root
     r3 = value                          r4 = barrier?
   and a post additionally:
     r5 = has_up?                        r6 = want_down?
   Scratch: r7 tag/destination, r8 found-slot base+1, r9 free-slot base+1
   then wire kind, r10 loop counter, r11 slot base, r12 outgoing value,
   r13 virtual rank, r14/r15 temporaries. *)
let ev_post = 0
let ev_up = 1
let ev_down = 2

let program ~op ~rank ~size ~fanout =
  if size < 2 || size > 256 then invalid_arg "Collectives_ir.program: size must be in 2 .. 256";
  if rank < 0 || rank >= size then invalid_arg "Collectives_ir.program: rank out of range";
  if fanout < 1 || fanout > 255 then invalid_arg "Collectives_ir.program: fanout must be in 1 .. 255";
  let a = Ir.Asm.create () in
  let l_scan = Ir.Asm.fresh a and l_next = Ir.Asm.fresh a in
  let l_found = Ir.Asm.fresh a and l_scanned = Ir.Asm.fresh a in
  let l_have = Ir.Asm.fresh a in
  let l_up = Ir.Asm.fresh a and l_down = Ir.Asm.fresh a in
  let l_bcast = Ir.Asm.fresh a in
  let l_tryfin = Ir.Asm.fresh a and l_fin_nonroot = Ir.Asm.fresh a in
  let l_fin_up = Ir.Asm.fresh a in
  let l_tail = Ir.Asm.fresh a and l_halt = Ir.Asm.fresh a in
  (* r13 <- (rank - root + size) mod size, via one conditional subtract *)
  let emit_vrank () =
    let skip = Ir.Asm.fresh a in
    Ir.Asm.const a 14 (rank + size);
    Ir.Asm.bin a Ir.Sub 13 14 2;
    Ir.Asm.bri a Ir.Lt 13 size skip;
    Ir.Asm.bini a Ir.Sub 13 13 size;
    Ir.Asm.place a skip
  in
  (* fold r3 into the slot accumulator with the install-time op *)
  let emit_fold () =
    let init = Ir.Asm.fresh a and store_ = Ir.Asm.fresh a and done_ = Ir.Asm.fresh a in
    Ir.Asm.load a 14 ~base:11 f_haveacc;
    Ir.Asm.bri a Ir.Eq 14 0 init;
    Ir.Asm.load a 15 ~base:11 f_acc;
    (match op with
    | Sum -> Ir.Asm.bin a Ir.Add 15 15 3
    | Max ->
        Ir.Asm.br a Ir.Ge 15 3 store_;
        Ir.Asm.mov a 15 3
    | Min ->
        Ir.Asm.br a Ir.Le 15 3 store_;
        Ir.Asm.mov a 15 3);
    Ir.Asm.place a store_;
    Ir.Asm.store a 15 ~base:11 f_acc;
    Ir.Asm.jmp a done_;
    Ir.Asm.place a init;
    Ir.Asm.store a 3 ~base:11 f_acc;
    Ir.Asm.const a 14 1;
    Ir.Asm.store a 14 ~base:11 f_haveacc;
    Ir.Asm.place a done_
  in
  (* r15 <- (seq << 8) | root; r9 <- up kind for this episode *)
  let emit_obj_kind ~plain ~barrier =
    let skip = Ir.Asm.fresh a in
    Ir.Asm.bini a Ir.Shl 15 1 8;
    Ir.Asm.bin a Ir.Or 15 15 2;
    Ir.Asm.load a 14 ~base:11 f_barrier;
    Ir.Asm.const a 9 plain;
    Ir.Asm.bri a Ir.Eq 14 0 skip;
    Ir.Asm.const a 9 barrier;
    Ir.Asm.place a skip
  in
  (* send r12 up to the parent of virtual rank r13 *)
  let emit_send_up () =
    let skip = Ir.Asm.fresh a in
    emit_obj_kind ~plain:k_up ~barrier:k_barrier_up;
    Ir.Asm.bini a Ir.Sub 14 13 1;
    Ir.Asm.bini a Ir.Div 14 14 fanout;
    Ir.Asm.bin a Ir.Add 7 14 2; (* back to a real rank: (parent + root) mod size *)
    Ir.Asm.bri a Ir.Lt 7 size skip;
    Ir.Asm.bini a Ir.Sub 7 7 size;
    Ir.Asm.place a skip;
    Ir.Asm.send a ~dst:7 ~kind:9 ~obj:15 ~value:12
  in
  (* fan r12 out to the children of virtual rank r13 *)
  let emit_send_down () =
    let head = Ir.Asm.fresh a and done_ = Ir.Asm.fresh a and skip = Ir.Asm.fresh a in
    emit_obj_kind ~plain:k_down ~barrier:k_barrier_down;
    Ir.Asm.const a 10 0;
    Ir.Asm.place a head;
    Ir.Asm.loop a ~counter:10 ~limit:fanout ~exit:done_;
    Ir.Asm.bini a Ir.Mul 14 13 fanout;
    Ir.Asm.bin a Ir.Add 14 14 10; (* child vrank = fanout * v + i, i in 1 .. fanout *)
    Ir.Asm.bri a Ir.Ge 14 size done_; (* children are contiguous: first overflow ends it *)
    Ir.Asm.bin a Ir.Add 7 14 2;
    Ir.Asm.bri a Ir.Lt 7 size skip;
    Ir.Asm.bini a Ir.Sub 7 7 size;
    Ir.Asm.place a skip;
    Ir.Asm.send a ~dst:7 ~kind:9 ~obj:15 ~value:12;
    Ir.Asm.jmp a head;
    Ir.Asm.place a done_
  in
  let store_one field =
    Ir.Asm.const a 14 1;
    Ir.Asm.store a 14 ~base:11 field
  in

  (* --- find the episode's slot (tag = seq + 1), else claim a free one --- *)
  Ir.Asm.bini a Ir.Add 7 1 1;
  Ir.Asm.const a 8 0;
  Ir.Asm.const a 9 0;
  Ir.Asm.const a 10 0;
  Ir.Asm.place a l_scan;
  Ir.Asm.loop a ~counter:10 ~limit:nslots ~exit:l_scanned;
  Ir.Asm.bini a Ir.Sub 11 10 1;
  Ir.Asm.bini a Ir.Mul 11 11 slot_words;
  Ir.Asm.load a 14 ~base:11 f_tag;
  Ir.Asm.br a Ir.Eq 14 7 l_found;
  Ir.Asm.bri a Ir.Ne 14 0 l_next; (* occupied by another episode *)
  Ir.Asm.bri a Ir.Ne 9 0 l_next; (* already have a free candidate *)
  Ir.Asm.bini a Ir.Add 9 11 1;
  Ir.Asm.place a l_next;
  Ir.Asm.jmp a l_scan;
  Ir.Asm.place a l_found;
  Ir.Asm.bini a Ir.Add 8 11 1;
  Ir.Asm.place a l_scanned;
  Ir.Asm.bri a Ir.Ne 8 0 l_have;
  Ir.Asm.bri a Ir.Eq 9 0 l_halt; (* table full: drop (bounds in-flight episodes) *)
  Ir.Asm.mov a 8 9;
  Ir.Asm.bini a Ir.Sub 11 8 1;
  Ir.Asm.const a 14 0;
  for field = f_root to f_haveacc do
    Ir.Asm.store a 14 ~base:11 field
  done;
  Ir.Asm.store a 7 ~base:11 f_tag;
  Ir.Asm.place a l_have;
  Ir.Asm.bini a Ir.Sub 11 8 1;
  Ir.Asm.store a 2 ~base:11 f_root;
  Ir.Asm.store a 4 ~base:11 f_barrier;
  Ir.Asm.bri a Ir.Eq 0 ev_up l_up;
  Ir.Asm.bri a Ir.Eq 0 ev_down l_down;

  (* --- post: the local contribution (ev 0) --- *)
  store_one f_posted;
  Ir.Asm.store a 6 ~base:11 f_wantd;
  Ir.Asm.store a 5 ~base:11 f_hasup;
  Ir.Asm.bri a Ir.Eq 5 0 l_bcast;
  Ir.Asm.bri a Ir.Ne 4 0 l_tryfin; (* barrier: value-free *)
  emit_fold ();
  Ir.Asm.jmp a l_tryfin;
  Ir.Asm.place a l_bcast;
  (* down-only (broadcast): the root's arrival is the release *)
  emit_vrank ();
  Ir.Asm.bri a Ir.Ne 13 0 l_tail;
  store_one f_done;
  Ir.Asm.wake a ~seq:1 ~value:3;
  Ir.Asm.mov a 12 3;
  emit_send_down ();
  Ir.Asm.jmp a l_tail;

  (* --- up: a child subtree's partial --- *)
  Ir.Asm.place a l_up;
  Ir.Asm.load a 14 ~base:11 f_got;
  Ir.Asm.bini a Ir.Add 14 14 1;
  Ir.Asm.store a 14 ~base:11 f_got;
  Ir.Asm.bri a Ir.Ne 4 0 l_tryfin;
  emit_fold ();
  Ir.Asm.jmp a l_tryfin;

  (* --- down: the release / result fans through us --- *)
  Ir.Asm.place a l_down;
  Ir.Asm.load a 14 ~base:11 f_done;
  Ir.Asm.bri a Ir.Ne 14 0 l_tail;
  store_one f_done;
  Ir.Asm.wake a ~seq:1 ~value:3;
  Ir.Asm.mov a 12 3;
  emit_vrank ();
  emit_send_down ();
  Ir.Asm.jmp a l_tail;

  (* --- combine phase step: posted, not done, all children in? --- *)
  Ir.Asm.place a l_tryfin;
  Ir.Asm.load a 14 ~base:11 f_posted;
  Ir.Asm.bri a Ir.Eq 14 0 l_tail;
  Ir.Asm.load a 14 ~base:11 f_done;
  Ir.Asm.bri a Ir.Ne 14 0 l_tail;
  emit_vrank ();
  (* expected children of vrank v: clamp ((size - 1) - fanout * v) to [0, fanout] *)
  let c1 = Ir.Asm.fresh a and c2 = Ir.Asm.fresh a in
  Ir.Asm.bini a Ir.Mul 14 13 fanout;
  Ir.Asm.const a 15 (size - 1);
  Ir.Asm.bin a Ir.Sub 14 15 14;
  Ir.Asm.bri a Ir.Ge 14 0 c1;
  Ir.Asm.const a 14 0;
  Ir.Asm.place a c1;
  Ir.Asm.bri a Ir.Le 14 fanout c2;
  Ir.Asm.const a 14 fanout;
  Ir.Asm.place a c2;
  Ir.Asm.load a 15 ~base:11 f_got;
  Ir.Asm.br a Ir.Ne 15 14 l_tail;
  Ir.Asm.load a 12 ~base:11 f_acc;
  Ir.Asm.bri a Ir.Ne 13 0 l_fin_nonroot;
  (* root: the fold is the episode result; release if wanted *)
  store_one f_done;
  Ir.Asm.wake a ~seq:1 ~value:12;
  Ir.Asm.load a 14 ~base:11 f_wantd;
  Ir.Asm.bri a Ir.Eq 14 0 l_tail;
  emit_send_down ();
  Ir.Asm.jmp a l_tail;
  Ir.Asm.place a l_fin_nonroot;
  Ir.Asm.load a 14 ~base:11 f_wantd;
  Ir.Asm.bri a Ir.Ne 14 0 l_fin_up; (* the release will complete us *)
  (* up-only (reduce): finished the moment the partial leaves *)
  store_one f_done;
  Ir.Asm.wake a ~seq:1 ~value:12;
  Ir.Asm.place a l_fin_up;
  emit_send_up ();
  Ir.Asm.jmp a l_tail;

  (* --- epilogue: free the slot once posted and done --- *)
  Ir.Asm.place a l_tail;
  Ir.Asm.load a 14 ~base:11 f_posted;
  Ir.Asm.bri a Ir.Eq 14 0 l_halt;
  Ir.Asm.load a 14 ~base:11 f_done;
  Ir.Asm.bri a Ir.Eq 14 0 l_halt;
  Ir.Asm.const a 14 0;
  Ir.Asm.store a 14 ~base:11 f_tag;
  Ir.Asm.place a l_halt;
  Ir.Asm.halt a;
  Ir.Asm.assemble a
    ~name:(Printf.sprintf "collectives-%s-r%d-n%d-f%d"
             (match op with Sum -> "sum" | Max -> "max" | Min -> "min")
             rank size fanout)
    ~seg_words:(nslots * slot_words) ~inputs:7

(* ------------------------------------------------------------------ *)
(* Host endpoints                                                      *)
(* ------------------------------------------------------------------ *)

type 'a t = {
  node : 'a Node.t;
  rank : int;
  size : int;
  channel : int;
  inject : int -> 'a;
  project : 'a -> int;
  bytes_of : int -> int;
  mutable vh : 'a Nic.verified_handler option; (* None when size = 1 *)
  waiters : (int, int Sync.Ivar.t) Hashtbl.t; (* seq -> episode result *)
  mutable next_seq : int;
  s_episodes : Stats.Counter.t;
  s_forwards : Stats.Counter.t;
}

let rank t = t.rank
let size t = t.size
let episodes t = Stats.Counter.value t.s_episodes
let cert t = Option.map (fun vh -> vh.Nic.vh_cert) t.vh

(* the release can arrive (and wake seq) before the local post creates the
   episode, so both sides find-or-create the waiter *)
let waiter t seq =
  match Hashtbl.find_opt t.waiters seq with
  | Some iv -> iv
  | None ->
      let iv = Sync.Ivar.create () in
      Hashtbl.replace t.waiters seq iv;
      iv

let entry t pkt =
  let hdr = Wire.decode pkt.Fabric.header in
  let seq = hdr.Wire.obj lsr 8 and root = hdr.Wire.obj land 0xff in
  let k = hdr.Wire.kind in
  if k = k_up then [| ev_up; seq; root; t.project pkt.Fabric.payload; 0; 0; 0 |]
  else if k = k_barrier_up then [| ev_up; seq; root; 0; 1; 0; 0 |]
  else if k = k_down then [| ev_down; seq; root; t.project pkt.Fabric.payload; 0; 0; 0 |]
  else if k = k_barrier_down then [| ev_down; seq; root; 0; 1; 0; 0 |]
  else failwith (Printf.sprintf "Collectives_ir: unknown kind %d on channel %d" k t.channel)

let on_send t (ctx : 'a Nic.ctx) ~dst ~kind ~obj ~value =
  if kind = k_down || kind = k_barrier_down then Stats.Counter.incr t.s_forwards;
  let header =
    Wire.encode
      {
        Wire.kind;
        cacheable = false;
        has_data = false;
        src = t.rank;
        channel = t.channel;
        obj;
        aux = 0;
      }
  in
  if kind = k_barrier_up || kind = k_barrier_down then
    ctx.Nic.reply ~dst ~header ~body_bytes:barrier_body_bytes ~data:Nic.No_data
      ~payload:(Obj.magic 0)
  else
    ctx.Nic.reply ~dst ~header ~body_bytes:(t.bytes_of value) ~data:Nic.No_data
      ~payload:(t.inject value)

let on_wake t ~seq ~value = Sync.Ivar.fill (waiter t seq) value

let b2i b = if b then 1 else 0

let run t ~root ~barrier ~has_up ~want_down v =
  if t.size = 1 then v
  else begin
    if root < 0 || root >= t.size then invalid_arg "Collectives_ir: bad root";
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let iv = waiter t seq in
    let vh = Option.get t.vh in
    Nic.local_dispatch (Node.nic t.node) (fun ctx ->
        vh.Nic.vh_activate ctx
          [| ev_post; seq; root; (if barrier then 0 else v); b2i barrier; b2i has_up;
             b2i want_down |]);
    let r = Node.blocking t.node (fun () -> Sync.Ivar.read iv) in
    Hashtbl.remove t.waiters seq;
    Stats.Counter.incr t.s_episodes;
    r
  end

let barrier t = if t.size > 1 then ignore (run t ~root:0 ~barrier:true ~has_up:true ~want_down:true 0)
let broadcast t ~root v = run t ~root ~barrier:false ~has_up:false ~want_down:true v
let reduce t ~root v = run t ~root ~barrier:false ~has_up:true ~want_down:false v
let allreduce t v = run t ~root:0 ~barrier:false ~has_up:true ~want_down:true v

(* ------------------------------------------------------------------ *)
(* Installation                                                        *)
(* ------------------------------------------------------------------ *)

let install ?(channel = default_channel) ?(fanout = 2) ?(bytes_of = fun _ -> 64) ~op ~inject
    ~project cluster =
  let n = Cluster.size cluster in
  if n > 256 then
    invalid_arg "Collectives_ir.install: at most 256 nodes (the root rides in the header)";
  if fanout < 1 || fanout > 255 then
    invalid_arg "Collectives_ir.install: fanout must be in 1 .. 255";
  let registry = Cluster.metrics cluster in
  Array.init n (fun rank ->
      let node = Cluster.node cluster rank in
      let counter name =
        Stats.Registry.counter registry ~node:rank ~subsystem:"collectives-ir" name
      in
      let t =
        {
          node;
          rank;
          size = n;
          channel;
          inject;
          project;
          bytes_of;
          vh = None;
          waiters = Hashtbl.create 16;
          next_seq = 0;
          s_episodes = counter "episodes";
          s_forwards = counter "forwards";
        }
      in
      if n > 1 then begin
        let prog = program ~op ~rank ~size:n ~fanout in
        match
          Nic.install_handler_verified (Node.nic node)
            ~pattern:(Wire.pattern_channel ~channel)
            ~program:prog ~entry:(entry t) ~on_send:(on_send t) ~on_wake:(on_wake t)
        with
        | Ok vh -> t.vh <- Some vh
        | Error rjs ->
            failwith
              (Printf.sprintf "Collectives_ir.install: shipped firmware rejected: %s"
                 (Verify.explain_all rjs))
      end;
      t)
