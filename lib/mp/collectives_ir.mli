(** NIC-resident collectives as {e verified firmware}.

    The same combining-tree protocol as {!Collectives} — identical channel,
    wire kinds, header layout and message pattern — but the per-board
    combine/forward step is an {!Cni_aih.Aih_ir.program} admitted through
    {!Cni_nic.Nic.install_handler_verified} instead of an OCaml closure:
    the board debits the firmware's {e certified} object size, every
    activation is charged the NIC cycles it actually executes, and the
    install fails up front if the step could dereference outside its board
    segment or run unbounded. This is the first handler in the tree to go
    through the paper's full "pointer-safe, relocatable object code"
    admission path.

    Differences from the closure implementation, by construction:
    - The episode value type is [int] (a firmware register);
      [inject]/[project] convert to and from the cluster payload type.
    - The combining op is baked into the generated code at install time
      ([op]), so early child contributions fold on arrival — no pending
      queue. Ops are associative and commutative, so results are identical
      (the qcheck parity property in [test/test_aih.ml] checks results
      {e and} per-node message counts against {!Collectives}).
    - Episode state lives in a fixed table of 16 board-segment slots, so at
      most 16 episodes may be in flight per endpoint; callers that issue
      collectives in order (every node, same order — already required)
      never approach this.

    The closure path remains the default throughout the tree; this module
    is opt-in. *)

type 'a t

type op = Sum | Max | Min

(** Same channel as {!Collectives.default_channel}: the two implementations
    are interchangeable on the wire (install only one per cluster). *)
val default_channel : int

(** [program ~op ~rank ~size ~fanout] is the combining-tree firmware one
    endpoint installs — exposed for the verifier corpus, the [aih-verify]
    smoke test and the microbenchmarks.
    @raise Invalid_argument unless [size] is in [2 .. 256], [rank] in
    [0 .. size - 1] and [fanout] in [1 .. 255]. *)
val program : op:op -> rank:int -> size:int -> fanout:int -> Cni_aih.Aih_ir.program

(** [install ~op ~inject ~project cluster] generates, verifies and installs
    one firmware image per board and returns the per-node endpoints.
    [fanout] (default 2) is the combining-tree arity; [bytes_of] (default
    [fun _ -> 64]) sizes a value on the wire, as in {!Collectives.install}.
    @raise Invalid_argument on more than 256 nodes or [fanout] outside
    [1 .. 255].
    @raise Failure if a generated program fails verification (a bug — the
    shipped firmware must verify) or a board cannot hold its certified
    size. *)
val install :
  ?channel:int ->
  ?fanout:int ->
  ?bytes_of:(int -> int) ->
  op:op ->
  inject:(int -> 'a) ->
  project:('a -> int) ->
  'a Cni_cluster.Cluster.t ->
  'a t array

val rank : 'a t -> int
val size : 'a t -> int

(** The admission certificate this endpoint's board holds ([None] on a
    single-node cluster, where nothing is installed). *)
val cert : 'a t -> Cni_aih.Aih_verify.cert option

(** Combining-tree barrier: value-free up phase to rank 0, release fan-out
    back down. *)
val barrier : 'a t -> unit

(** [broadcast t ~root v] — [v] is consulted only at the root; every node
    returns the root's value. Down phase only. *)
val broadcast : 'a t -> root:int -> int -> int

(** [reduce t ~root v] — up phase only; the result is meaningful at the
    root (other ranks return their subtree's partial). *)
val reduce : 'a t -> root:int -> int -> int

(** Reduction whose result every node receives (up to rank 0, result fans
    back down). *)
val allreduce : 'a t -> int -> int

(** Completed episodes at this endpoint. *)
val episodes : 'a t -> int
