module Node = Cni_cluster.Node

module Block = struct
  type t = { base : int; bytes : int; space : Space.t }

  let create space ~bytes = { base = Space.alloc space ~bytes; bytes; space }
  let base t = t.base
  let bytes t = t.bytes

  let check t ~off ~bytes =
    if off < 0 || bytes < 0 || off + bytes > t.bytes then
      invalid_arg "Shmem.Block: range out of bounds"

  let iter_pages t ~off ~bytes f =
    (* f page ~page_off ~len, with [page_off] the byte offset inside the page *)
    if bytes > 0 then begin
      let pb = Space.page_bytes t.space in
      let start = t.base + off in
      let stop = start + bytes in
      let addr = ref start in
      while !addr < stop do
        let page = Space.page_of_addr t.space !addr in
        let page_base = Space.addr_of_page t.space page in
        let page_off = !addr - page_base in
        let len = min (stop - !addr) (pb - page_off) in
        f page ~page_off ~len;
        addr := !addr + len
      done
    end

  let read_range lrc t ~off ~bytes =
    check t ~off ~bytes;
    iter_pages t ~off ~bytes (fun page ~page_off:_ ~len:_ -> Lrc.ensure_read lrc ~page);
    Node.touch (Lrc.node lrc) ~addr:(t.base + off) ~bytes ~write:false

  let write_range lrc t ~off ~bytes =
    check t ~off ~bytes;
    iter_pages t ~off ~bytes (fun page ~page_off ~len ->
        Lrc.ensure_write lrc ~page;
        (* word-granular dirty tracking; partial words count as dirty *)
        let word_lo = page_off / 8 in
        let word_hi = (page_off + len - 1) / 8 in
        Lrc.mark_dirty_words lrc ~page ~word_lo ~words:(word_hi - word_lo + 1));
    Node.touch (Lrc.node lrc) ~addr:(t.base + off) ~bytes ~write:true

  let validate_local lrc t ~off ~bytes =
    check t ~off ~bytes;
    iter_pages t ~off ~bytes (fun page ~page_off:_ ~len:_ -> Lrc.validate_local lrc ~page)
end

module Farray = struct
  type t = { block : Block.t; data : float array }

  let create space ~len =
    { block = Block.create space ~bytes:(len * 8); data = Array.make len 0.0 }

  let len t = Array.length t.data
  let block t = t.block
  let get t i = t.data.(i)
  let set t i v = t.data.(i) <- v
  let read_range lrc t ~lo ~len = Block.read_range lrc t.block ~off:(lo * 8) ~bytes:(len * 8)
  let write_range lrc t ~lo ~len = Block.write_range lrc t.block ~off:(lo * 8) ~bytes:(len * 8)

  let read1 lrc t i =
    read_range lrc t ~lo:i ~len:1;
    get t i

  let write1 lrc t i v =
    write_range lrc t ~lo:i ~len:1;
    set t i v

  let init_local lrc t ~lo ~len f =
    Block.validate_local lrc t.block ~off:(lo * 8) ~bytes:(len * 8);
    for i = lo to lo + len - 1 do
      t.data.(i) <- f i
    done
end

module Iarray = struct
  type t = { block : Block.t; data : int array }

  let create space ~len =
    { block = Block.create space ~bytes:(len * 8); data = Array.make len 0 }

  let len t = Array.length t.data
  let block t = t.block
  let get t i = t.data.(i)
  let set t i v = t.data.(i) <- v
  let read_range lrc t ~lo ~len = Block.read_range lrc t.block ~off:(lo * 8) ~bytes:(len * 8)
  let write_range lrc t ~lo ~len = Block.write_range lrc t.block ~off:(lo * 8) ~bytes:(len * 8)

  let read1 lrc t i =
    read_range lrc t ~lo:i ~len:1;
    get t i

  let write1 lrc t i v =
    write_range lrc t ~lo:i ~len:1;
    set t i v

  let init_local lrc t ~lo ~len f =
    Block.validate_local lrc t.block ~off:(lo * 8) ~bytes:(len * 8);
    for i = lo to lo + len - 1 do
      t.data.(i) <- f i
    done
end
