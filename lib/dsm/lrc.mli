(** The lazy invalidate release-consistency protocol engine (section 3.1).

    One [Lrc.t] per node. Client operations ({!acquire}, {!release},
    {!barrier}, page faults) run on the node's application fiber and charge
    client-side costs there; the server side (lock routing, page and diff
    service, barrier management) is installed on each node's NIC as one
    Application Interrupt Handler per protocol kind — on a CNI board the
    handlers execute on the 33 MHz NIC processor behind PATHFINDER, on the
    standard board they run on the host CPU behind an interrupt.

    Protocol outline (TreadMarks-style LRC):
    - static lock managers forward acquires to the last owner, which grants
      directly to the requester, piggybacking the write notices of every
      interval the requester has not seen;
    - applying a write notice invalidates the page; the fault that follows
      fetches either the missing diffs from their writers or — when the
      accumulated diffs approach the page size, or the node has no base copy
      — the whole page from its last writer (a migratory transfer, flagged
      cacheable so the Message Cache binds it on both sides);
    - at a release the dirtied pages are compared against their twins; diff
      descriptors are logged, the pages flushed from the write-back cache
      (which is also what keeps the Message Cache consistent), and on a CNI
      board the diff data is deposited in AIH memory so the board can serve
      diff requests without touching the host;
    - barriers are centralised at node 0 and redistribute the merged
      interval knowledge. *)

type t

(** Protocol instruction costs (counts; charged at the NIC or host clock
    depending on where the code runs). *)
type costs = {
  acquire_local : int;
  acquire_remote : int;
  release : int;
  barrier_client : int;
  fault : int;
  twin_per_word : int;
  diff_create_per_word : int;
  diff_apply_per_word : int;
  notice_apply : int;
  notice_make : int;
  server_lock : int;
  server_page : int;
  server_diff : int;
  server_barrier : int;
  server_barrier_per_node : int;
  pio_per_word : int;
}

val default_costs : costs

(** [install cluster space] creates one protocol engine per node and installs
    the server handlers on every NIC. [max_resident_pages] bounds the shared
    mappings a node keeps (approximate-LRU replacement of clean pages, the
    paper's address-space recycling); default unbounded.

    [barrier_impl] selects how {!barrier} synchronises (default
    [`Centralised], the original node-0 manager that collects arrivals and
    broadcasts releases). [`Nic_collective] instead installs a
    {!Cni_mp.Collectives} combining tree on channel 4 and runs each barrier
    as an allreduce of (vector clock, own write notices) executed by the
    boards' AIHs: on a CNI or OSIRIS interface the host is woken exactly
    once per barrier with the merged result and takes no interrupt.

    [barrier_timeout] (default: none — wait forever) bounds each
    {e centralised}-barrier wait in simulated time; a node still waiting
    when it expires raises {!Barrier_timeout} instead of hanging, e.g.
    because a peer crashed before arriving. The [`Nic_collective] barrier
    blocks inside the combining tree and is not covered — bound such runs
    with [Cluster.run_app ~watchdog]. *)
val install :
  Protocol.msg Cni_cluster.Cluster.t ->
  Space.t ->
  ?costs:costs ->
  ?max_resident_pages:int ->
  ?barrier_impl:[ `Centralised | `Nic_collective ] ->
  ?barrier_timeout:Cni_engine.Time.t ->
  unit ->
  t array

(** The wire channel the [`Nic_collective] barrier's combining tree claims
    ({!Protocol.channel} carries the point-to-point DSM traffic). *)
val collectives_channel : int

val me : t -> int
val node : t -> Protocol.msg Cni_cluster.Node.t
val space : t -> Space.t

(** {2 Page access (used by {!Shmem})} *)

(** Fault the page in for reading (no-op when valid). *)
val ensure_read : t -> page:int -> unit

(** Fault in for writing: read fault plus twin creation on the first write of
    the interval. *)
val ensure_write : t -> page:int -> unit

(** Record modified words (word index range within the page). *)
val mark_dirty_words : t -> page:int -> word_lo:int -> words:int -> unit

(** First-touch initialisation: validate the page locally with no traffic
    (the node becomes its last writer). Only sensible before any sharing. *)
val validate_local : t -> page:int -> unit

(** {2 Synchronisation} *)

(** @raise Invalid_argument on re-acquiring a held lock. *)
val acquire : t -> lock:int -> unit

(** @raise Invalid_argument if not held. *)
val release : t -> lock:int -> unit

(** Raised by {!barrier} on a node whose centralised-barrier wait exceeded
    the [barrier_timeout] given to {!install}. [waited] is the time spent
    blocked. A printer is registered. *)
exception Barrier_timeout of { node : int; barrier : int; waited : Cni_engine.Time.t }

(** All nodes must call [barrier] with the same id per episode.
    @raise Barrier_timeout when a [barrier_timeout] is configured and
    expires (centralised implementation only). *)
val barrier : t -> id:int -> unit

type stats = {
  faults : int;
  page_fetches : int;
  diff_fetches : int;
  twins : int;
  intervals : int;
  notices_applied : int;
  local_acquires : int;
  remote_acquires : int;
  barriers : int;
  evictions : int;
}

val stats : t -> stats

(** One-line summary of outstanding waits and held locks (deadlock triage). *)
val debug_waits : t -> string

(** Debug: trace protocol events of one lock id to stderr (-1 = off). *)
val debug_lock : int ref

(** Protocol messages this node has received, by kind (non-zero only) — the
    traffic mix behind the timing results. *)
val received_messages : t -> (string * int) list
