let word_bytes = 8

type run = { offset : int (* byte offset, word aligned *); data : Bytes.t }
type t = run list (* ascending, non-adjacent *)

let make_twin = Bytes.copy

let create ~twin ~current =
  let len = Bytes.length twin in
  if Bytes.length current <> len then invalid_arg "Diff.create: length mismatch";
  if len mod word_bytes <> 0 then invalid_arg "Diff.create: not a word multiple";
  let words = len / word_bytes in
  let runs = ref [] in
  let run_start = ref (-1) in
  let close_run stop_word =
    if !run_start >= 0 then begin
      let off = !run_start * word_bytes in
      let nbytes = (stop_word - !run_start) * word_bytes in
      runs := { offset = off; data = Bytes.sub current off nbytes } :: !runs;
      run_start := -1
    end
  in
  for w = 0 to words - 1 do
    let off = w * word_bytes in
    let same = Bytes.get_int64_ne twin off = Bytes.get_int64_ne current off in
    if same then close_run w else if !run_start < 0 then run_start := w
  done;
  close_run words;
  List.rev !runs

let apply t page =
  List.iter
    (fun { offset; data } ->
      if offset < 0 || offset + Bytes.length data > Bytes.length page then
        invalid_arg "Diff.apply: run outside page";
      Bytes.blit data 0 page offset (Bytes.length data))
    t

let changed_words t =
  List.fold_left (fun acc r -> acc + (Bytes.length r.data / word_bytes)) 0 t

let runs = List.length
let is_empty t = t = []
let wire_bytes t = List.fold_left (fun acc r -> acc + 8 + Bytes.length r.data) 0 t

let encode t =
  let total = wire_bytes t in
  let b = Bytes.create (4 + total) in
  Bytes.set_int32_be b 0 (Int32.of_int (List.length t));
  let pos = ref 4 in
  List.iter
    (fun r ->
      Bytes.set_int32_be b !pos (Int32.of_int r.offset);
      Bytes.set_int32_be b (!pos + 4) (Int32.of_int (Bytes.length r.data));
      Bytes.blit r.data 0 b (!pos + 8) (Bytes.length r.data);
      pos := !pos + 8 + Bytes.length r.data)
    t;
  b

let decode b =
  let n = Int32.to_int (Bytes.get_int32_be b 0) in
  let pos = ref 4 in
  List.init n (fun _ ->
      let offset = Int32.to_int (Bytes.get_int32_be b !pos) in
      let len = Int32.to_int (Bytes.get_int32_be b (!pos + 4)) in
      let data = Bytes.sub b (!pos + 8) len in
      pos := !pos + 8 + len;
      { offset; data })

(* Compose by materialising onto a scratch page covering both extents. *)
let merge older newer =
  match (older, newer) with
  | [], t | t, [] -> t
  | _ ->
      let extent t =
        List.fold_left (fun acc r -> max acc (r.offset + Bytes.length r.data)) 0 t
      in
      let len = max (extent older) (extent newer) in
      let base = Bytes.make len '\000' in
      apply older base;
      apply newer base;
      (* a twin equal to base everywhere except touched words, which are
         complemented so every touched word survives into the composite *)
      let twin = Bytes.copy base in
      let mark t =
        List.iter
          (fun r ->
            for w = r.offset / word_bytes to ((r.offset + Bytes.length r.data) / word_bytes) - 1 do
              let off = w * word_bytes in
              Bytes.set_int64_ne twin off (Int64.lognot (Bytes.get_int64_ne base off))
            done)
          t
      in
      mark older;
      mark newer;
      create ~twin ~current:base
