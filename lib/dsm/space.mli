(** Shared-address-space metadata: page allocation, the interval/write-notice
    log, and the routing state of lock and barrier managers.

    One [Space.t] is shared by all nodes of a run. In the real system every
    piece of this state lives on some node (the interval log is distributed,
    lock and barrier managers are statically assigned); the simulator keeps
    it in one structure for efficiency while the protocol layer still sends
    every message, sized from this metadata, that the distributed version
    would send (see DESIGN.md section 3). *)

type t

(** A fixed portion of the processor address space is allocated to
    distributed shared memory (section 3.1); this is its base. *)
val shared_base : int

val create : nprocs:int -> page_bytes:int -> t

val nprocs : t -> int
val page_bytes : t -> int

(** Page-aligned bump allocation, identical on every node (SPMD layout). *)
val alloc : t -> bytes:int -> int

val npages : t -> int
val page_of_addr : t -> int -> int
val addr_of_page : t -> int -> int

(** {2 Interval log} *)

(** Record a closed interval. [seq] must be the node's next sequence number
    (1, 2, ...).
    @raise Invalid_argument on out-of-order recording. *)
val record_interval : t -> node:int -> seq:int -> notices:Protocol.notice list -> unit

(** Write notices of all intervals [from < seq <= upto], per node — what a
    releaser piggybacks on a grant or the barrier manager on a release. *)
val notices_between : t -> from_vc:Vclock.t -> upto_vc:Vclock.t -> Protocol.notice list

(** Total diff bytes node [owner] logged for [page] in intervals
    [since < seq <= upto]. *)
val diff_bytes_between : t -> owner:int -> page:int -> since:int -> upto:int -> int

(** {2 Page directory} *)

(** Node holding the most recent version (its home, [page mod nprocs], before
    any write). *)
val last_writer : t -> page:int -> int

val set_last_writer : t -> page:int -> node:int -> unit
val home : t -> page:int -> int

(** {2 Lock routing (state of the static lock manager)} *)

val lock_manager : t -> lock:int -> int
val lock_last_owner : t -> lock:int -> int
val set_lock_last_owner : t -> lock:int -> node:int -> unit

(** {2 Barrier manager} *)

val barrier_manager : t -> barrier:int -> int
