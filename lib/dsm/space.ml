module Vec = Cni_engine.Vec

type interval = { notices : Protocol.notice list }

type t = {
  nprocs : int;
  page_bytes : int;
  mutable next_alloc : int;
  intervals : interval Vec.t array; (* per node, index = seq - 1 *)
  diff_log : (int * int, (int * int) Vec.t) Hashtbl.t;
      (* (owner, page) -> (seq, diff_bytes) in seq order *)
  last_writer : (int, int) Hashtbl.t;
  lock_owner : (int, int) Hashtbl.t;
}

let shared_base = 1 lsl 40

let create ~nprocs ~page_bytes =
  {
    nprocs;
    page_bytes;
    next_alloc = shared_base;
    intervals = Array.init nprocs (fun _ -> Vec.create ());
    diff_log = Hashtbl.create 1024;
    last_writer = Hashtbl.create 1024;
    lock_owner = Hashtbl.create 64;
  }

let nprocs t = t.nprocs
let page_bytes t = t.page_bytes

let alloc t ~bytes =
  let base = t.next_alloc in
  let pages = (bytes + t.page_bytes - 1) / t.page_bytes in
  t.next_alloc <- t.next_alloc + (pages * t.page_bytes);
  base

let npages t = (t.next_alloc - shared_base) / t.page_bytes
let page_of_addr t addr = (addr - shared_base) / t.page_bytes
let addr_of_page t page = shared_base + (page * t.page_bytes)

let record_interval t ~node ~seq ~notices =
  if seq <> Vec.length t.intervals.(node) + 1 then
    invalid_arg "Space.record_interval: out-of-order interval";
  Vec.push t.intervals.(node) { notices };
  List.iter
    (fun (n : Protocol.notice) ->
      let key = (node, n.Protocol.page) in
      let vec =
        match Hashtbl.find_opt t.diff_log key with
        | Some v -> v
        | None ->
            let v = Vec.create () in
            Hashtbl.replace t.diff_log key v;
            v
      in
      Vec.push vec (seq, n.Protocol.diff_bytes))
    notices

let notices_between t ~from_vc ~upto_vc =
  let acc = ref [] in
  for node = t.nprocs - 1 downto 0 do
    let upto = min (Vclock.get upto_vc node) (Vec.length t.intervals.(node)) in
    for seq = upto downto Vclock.get from_vc node + 1 do
      let iv = Vec.get t.intervals.(node) (seq - 1) in
      acc := List.rev_append iv.notices !acc
    done
  done;
  !acc

let diff_bytes_between t ~owner ~page ~since ~upto =
  match Hashtbl.find_opt t.diff_log (owner, page) with
  | None -> 0
  | Some vec ->
      Vec.fold_left
        (fun acc (seq, bytes) -> if seq > since && seq <= upto then acc + bytes else acc)
        0 vec

let home t ~page = page mod t.nprocs

let last_writer t ~page =
  match Hashtbl.find_opt t.last_writer page with Some n -> n | None -> home t ~page

let set_last_writer t ~page ~node = Hashtbl.replace t.last_writer page node

let lock_manager t ~lock = lock mod t.nprocs

let lock_last_owner t ~lock =
  match Hashtbl.find_opt t.lock_owner lock with Some n -> n | None -> lock_manager t ~lock

let set_lock_last_owner t ~lock ~node = Hashtbl.replace t.lock_owner lock node

let barrier_manager _t ~barrier:_ = 0
