module Wire = Cni_nic.Wire

type notice = { page : int; owner : int; seq : int; diff_bytes : int }

type msg =
  | Lock_acquire of { lock : int; requester : int; vc : Vclock.t }
  | Lock_forward of { lock : int; requester : int; vc : Vclock.t }
  | Lock_grant of { lock : int; vc : Vclock.t; notices : notice list }
  | Page_req of { page : int; requester : int; write_intent : bool }
  | Page_reply of { page : int; migratory : bool }
  | Diff_req of { page : int; requester : int; since : int; upto : int }
  | Diff_reply of { page : int; owner : int; bytes : int; upto : int }
  | Barrier_arrive of { barrier : int; node : int; vc : Vclock.t; notices : notice list }
  | Barrier_release of { barrier : int; vc : Vclock.t; notices : notice list }
  | Coll of { vc : Vclock.t; notices : notice list }
      (* combining-tree payload of the NIC-resident barrier: travels on the
         collectives channel (not [channel]), so it has no AIH of its own
         here and never reaches [Lrc.handle] *)

let channel = 1
let notice_wire_bytes = 12

let kind_of = function
  | Lock_acquire _ -> 1
  | Lock_forward _ -> 2
  | Lock_grant _ -> 3
  | Page_req _ -> 4
  | Page_reply _ -> 5
  | Diff_req _ -> 6
  | Diff_reply _ -> 7
  | Barrier_arrive _ -> 8
  | Barrier_release _ -> 9
  | Coll _ -> 10

let kind_name = function
  | 1 -> "lock-acquire"
  | 2 -> "lock-forward"
  | 3 -> "lock-grant"
  | 4 -> "page-req"
  | 5 -> "page-reply"
  | 6 -> "diff-req"
  | 7 -> "diff-reply"
  | 8 -> "barrier-arrive"
  | 9 -> "barrier-release"
  | 10 -> "collective"
  | k -> Printf.sprintf "unknown-%d" k

(* kind 10 (Coll) is deliberately absent: it is classified by the
   collectives channel's own handler, not a per-kind AIH on [channel] *)
let all_kinds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]

let notices_bytes notices = notice_wire_bytes * List.length notices

let body_bytes = function
  | Lock_acquire { vc; _ } | Lock_forward { vc; _ } -> 8 + Vclock.wire_bytes vc
  | Lock_grant { vc; notices; _ } -> 8 + Vclock.wire_bytes vc + notices_bytes notices
  | Page_req _ -> 8
  | Page_reply _ -> 0 (* the page itself rides as bulk data *)
  | Diff_req _ -> 16
  | Diff_reply _ -> 8 (* the diff data rides as bulk data *)
  | Barrier_arrive { vc; notices; _ } | Barrier_release { vc; notices; _ } ->
      8 + Vclock.wire_bytes vc + notices_bytes notices
  | Coll { vc; notices } -> 8 + Vclock.wire_bytes vc + notices_bytes notices

let obj_of = function
  | Lock_acquire { lock; _ } | Lock_forward { lock; _ } | Lock_grant { lock; _ } -> lock
  | Page_req { page; _ } | Page_reply { page; _ } -> page
  | Diff_req { page; _ } | Diff_reply { page; _ } -> page
  | Barrier_arrive { barrier; _ } | Barrier_release { barrier; _ } -> barrier
  | Coll _ -> 0

let has_data = function Page_reply _ -> true | _ -> false

(* Pages fetched with write intent are migration candidates: the header bit
   asks the receive path to bind them into the Message Cache (receive
   caching, section 2.2). Read-only fetches (e.g. Jacobi boundary rows) are
   not worth a buffer at the receiver. *)
let cacheable = function Page_reply { migratory; _ } -> migratory | _ -> false

let header ~src msg =
  Wire.encode
    {
      Wire.kind = kind_of msg;
      cacheable = cacheable msg;
      has_data = has_data msg;
      src;
      channel;
      obj = obj_of msg;
      (* requester/since/node travel in the typed payload; the header's aux
         field is owned by the reliability layer (sequence numbers) *)
      aux = 0;
    }

let pp fmt msg =
  match msg with
  | Lock_acquire { lock; requester; _ } ->
      Format.fprintf fmt "lock-acquire(l=%d from %d)" lock requester
  | Lock_forward { lock; requester; _ } ->
      Format.fprintf fmt "lock-forward(l=%d for %d)" lock requester
  | Lock_grant { lock; notices; _ } ->
      Format.fprintf fmt "lock-grant(l=%d, %d notices)" lock (List.length notices)
  | Page_req { page; requester; _ } -> Format.fprintf fmt "page-req(p=%d from %d)" page requester
  | Page_reply { page; _ } -> Format.fprintf fmt "page-reply(p=%d)" page
  | Diff_req { page; requester; since; upto } ->
      Format.fprintf fmt "diff-req(p=%d from %d, %d..%d)" page requester since upto
  | Diff_reply { page; owner; bytes; _ } ->
      Format.fprintf fmt "diff-reply(p=%d from %d, %dB)" page owner bytes
  | Barrier_arrive { barrier; node; notices; _ } ->
      Format.fprintf fmt "barrier-arrive(b=%d from %d, %d notices)" barrier node
        (List.length notices)
  | Barrier_release { barrier; notices; _ } ->
      Format.fprintf fmt "barrier-release(b=%d, %d notices)" barrier (List.length notices)
  | Coll { notices; _ } -> Format.fprintf fmt "collective(%d notices)" (List.length notices)
