(** Vector clocks for lazy release consistency.

    Component [k] counts the intervals of node [k] that the owner has seen
    (applied the write notices of). *)

type t

val create : int -> t
val size : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit
val incr : t -> int -> int
(** increments component and returns the new value *)

val copy : t -> t

(** [merge t other] — pointwise maximum, into [t]. *)
val merge : t -> t -> unit

(** [leq a b] — every component of [a] <= the one of [b]. *)
val leq : t -> t -> bool

val equal : t -> t -> bool

(** Encoded size in bytes when piggybacked on a message (4 bytes/entry). *)
val wire_bytes : t -> int

val pp : Format.formatter -> t -> unit
