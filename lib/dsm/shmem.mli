(** Application-facing shared memory.

    Shared objects are allocated once (identically on every node, SPMD
    style); each node accesses them through its {!Lrc} engine. Access is
    split into a {e declaration} of the range touched — which drives the
    page-fault/twin/dirty-word machinery and the cache-timing model — and
    raw value access used inside compute kernels. Declaring a range once and
    then reading element values is the simulator's bulk fast path: page
    checks happen per page, cache traffic per line, while the kernel computes
    on real data.

    The paper's applications are data-race-free under their locks and
    barriers, so values are kept in one authoritative copy (see DESIGN.md
    section 3); the protocol metadata, message sizes and timings are
    simulated in full. *)

module Block : sig
  (** An untyped range of shared pages. *)
  type t

  val create : Space.t -> bytes:int -> t
  val base : t -> int
  val bytes : t -> int

  (** Declare a read of [bytes] at byte offset [off] (faults pages in). *)
  val read_range : Lrc.t -> t -> off:int -> bytes:int -> unit

  (** Declare a write (read fault + twin + dirty words + cache traffic). *)
  val write_range : Lrc.t -> t -> off:int -> bytes:int -> unit

  (** First-touch initialisation: validate the pages locally, no traffic. *)
  val validate_local : Lrc.t -> t -> off:int -> bytes:int -> unit
end

module Farray : sig
  (** Shared array of 64-bit floats. *)
  type t

  val create : Space.t -> len:int -> t
  val len : t -> int
  val block : t -> Block.t

  (** Untimed value access (use inside kernels after declaring the range). *)
  val get : t -> int -> float

  val set : t -> int -> float -> unit

  (** Timed range declarations (element index / count). *)
  val read_range : Lrc.t -> t -> lo:int -> len:int -> unit

  val write_range : Lrc.t -> t -> lo:int -> len:int -> unit

  (** Timed single-element convenience accessors. *)
  val read1 : Lrc.t -> t -> int -> float

  val write1 : Lrc.t -> t -> int -> float -> unit

  (** First-touch initialisation of a slice with a generator. *)
  val init_local : Lrc.t -> t -> lo:int -> len:int -> (int -> float) -> unit
end

module Iarray : sig
  (** Shared array of 63-bit integers (8 bytes each on the wire). *)
  type t

  val create : Space.t -> len:int -> t
  val len : t -> int
  val block : t -> Block.t
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val read_range : Lrc.t -> t -> lo:int -> len:int -> unit
  val write_range : Lrc.t -> t -> lo:int -> len:int -> unit
  val read1 : Lrc.t -> t -> int -> int
  val write1 : Lrc.t -> t -> int -> int -> unit
  val init_local : Lrc.t -> t -> lo:int -> len:int -> (int -> int) -> unit
end
