type t = int array

let create n = Array.make n 0
let size = Array.length
let get t k = t.(k)
let set t k v = t.(k) <- v

let incr t k =
  t.(k) <- t.(k) + 1;
  t.(k)

let copy = Array.copy

let merge t other =
  for k = 0 to Array.length t - 1 do
    if other.(k) > t.(k) then t.(k) <- other.(k)
  done

let leq a b =
  let n = Array.length a in
  let rec go k = k >= n || (a.(k) <= b.(k) && go (k + 1)) in
  go 0

let equal = ( = )
let wire_bytes t = 4 * Array.length t

let pp fmt t =
  Format.fprintf fmt "<%s>" (String.concat "," (Array.to_list (Array.map string_of_int t)))
