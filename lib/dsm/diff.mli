(** Twin/diff machinery (word-granular), the data plane of lazy release
    consistency.

    On the first write to a page in an interval the protocol copies it (the
    {e twin}); at release time the twin is compared word-by-word against the
    current contents to produce a {e diff} — a run-length list of changed
    words — which is what crosses the network instead of the whole page.

    This byte-accurate implementation backs the unit/property tests and the
    small DSM examples; the application-scale runs track dirty-word masks of
    identical sizes without materialising per-node page replicas (see
    DESIGN.md section 3). *)

type t

val word_bytes : int (** 8 *)

(** [make_twin page] is a private copy. *)
val make_twin : Bytes.t -> Bytes.t

(** [create ~twin ~current] — runs of words that differ.
    @raise Invalid_argument if lengths differ or are not word multiples. *)
val create : twin:Bytes.t -> current:Bytes.t -> t

(** [apply t page] patches the changed runs into [page].
    @raise Invalid_argument if a run falls outside the page. *)
val apply : t -> Bytes.t -> unit

(** Number of changed words. *)
val changed_words : t -> int

(** Number of contiguous runs. *)
val runs : t -> int

val is_empty : t -> bool

(** Encoded size: 8 bytes of (offset, length) header per run plus the run
    data — the size charged on the wire. *)
val wire_bytes : t -> int

(** Wire encoding and decoding (for the round-trip property tests). *)
val encode : t -> Bytes.t

val decode : Bytes.t -> t

(** [merge older newer] — the composite diff equivalent to applying [older]
    then [newer]. *)
val merge : t -> t -> t
