(** DSM protocol messages.

    Every message travels with a real {!Cni_nic.Wire} header (classified by
    PATHFINDER on the receiving board) and a typed payload. Control payload
    sizes (vector clocks, write notices) are accounted exactly; bulk page and
    diff data travel as NIC [data] so the Message Cache and DMA paths see
    them. *)

type notice = { page : int; owner : int; seq : int; diff_bytes : int }

type msg =
  | Lock_acquire of { lock : int; requester : int; vc : Vclock.t }
      (** requester -> lock manager *)
  | Lock_forward of { lock : int; requester : int; vc : Vclock.t }
      (** manager -> last owner *)
  | Lock_grant of { lock : int; vc : Vclock.t; notices : notice list }
      (** previous owner -> requester, with the consistency information the
          requester lacks *)
  | Page_req of { page : int; requester : int; write_intent : bool }
  | Page_reply of { page : int; migratory : bool }
      (** carries the full page as bulk data; [migratory] sets the header's
          to-be-cached bit so the receiver binds it (receive caching) *)
  | Diff_req of { page : int; requester : int; since : int; upto : int }
  | Diff_reply of { page : int; owner : int; bytes : int; upto : int }
  | Barrier_arrive of { barrier : int; node : int; vc : Vclock.t; notices : notice list }
  | Barrier_release of { barrier : int; vc : Vclock.t; notices : notice list }
  | Coll of { vc : Vclock.t; notices : notice list }
      (** combining-tree payload of the NIC-resident barrier (see
          {!Lrc.install}): travels on the collectives channel, so it is not
          in {!all_kinds} and never reaches the per-kind AIHs of [channel] *)

(** The application device channel used by the DSM protocol. *)
val channel : int

(** Wire size of one write notice. *)
val notice_wire_bytes : int

(** Wire size of a notice list. *)
val notices_bytes : notice list -> int

val kind_of : msg -> int
val kind_name : int -> string

(** The object (page / lock / barrier id) a message is about; used as the
    trace payload. *)
val obj_of : msg -> int

(** Control-payload bytes beyond the 16-byte wire header. *)
val body_bytes : msg -> int

(** Build the classifiable wire header for a message. *)
val header : src:int -> msg -> Bytes.t

(** All protocol kinds, for installing one AIH per kind. *)
val all_kinds : int list

val pp : Format.formatter -> msg -> unit
