module Engine = Cni_engine.Engine
module Sync = Cni_engine.Sync
module Vec = Cni_engine.Vec
module Stats = Cni_engine.Stats
module Trace = Cni_engine.Trace
module Time = Cni_engine.Time
module Node = Cni_cluster.Node
module Cluster = Cni_cluster.Cluster
module Nic = Cni_nic.Nic
module Wire = Cni_nic.Wire
module Collectives = Cni_mp.Collectives

type costs = {
  acquire_local : int;
  acquire_remote : int;
  release : int;
  barrier_client : int;
  fault : int;
  twin_per_word : int;
  diff_create_per_word : int;
  diff_apply_per_word : int;
  notice_apply : int;
  notice_make : int;
  server_lock : int;
  server_page : int;
  server_diff : int;
  server_barrier : int;
  server_barrier_per_node : int;
  pio_per_word : int;
}

let default_costs =
  {
    acquire_local = 60;
    acquire_remote = 150;
    release = 120;
    barrier_client = 120;
    fault = 150;
    twin_per_word = 2;
    diff_create_per_word = 3;
    diff_apply_per_word = 2;
    notice_apply = 4;
    notice_make = 2;
    server_lock = 150;
    server_page = 200;
    server_diff = 150;
    server_barrier = 100;
    server_barrier_per_node = 10;
    pio_per_word = 2;
  }

type page_state = {
  mutable valid : bool;
  mutable has_copy : bool;  (* some (possibly stale) base copy is resident *)
  mutable twinned : bool;
  mutable dirty_words : int;
  mutable mask : Bytes.t;  (* one bit per word; empty until first write *)
  pending : (int, int) Hashtbl.t;  (* owner -> highest unapplied seq *)
  applied : (int, int) Hashtbl.t;  (* owner -> highest applied seq *)
}

type lock_state = {
  mutable am_last : bool;
  mutable holding : bool;
  mutable pending_forward : (int * Vclock.t) option;
}

type barrier_acc = { mutable arrived : int; mutable vcs : (int * Vclock.t) list }

type stats = {
  faults : int;
  page_fetches : int;
  diff_fetches : int;
  twins : int;
  intervals : int;
  notices_applied : int;
  local_acquires : int;
  remote_acquires : int;
  barriers : int;
  evictions : int;
}

type t = {
  me : int;
  node : Protocol.msg Node.t;
  space : Space.t;
  costs : costs;
  max_resident : int;
  vc : Vclock.t;
  last_barrier_vc : Vclock.t;
  pages : (int, page_state) Hashtbl.t;
  locks : (int, lock_state) Hashtbl.t;
  dirty_set : int Vec.t;
  (* outstanding requests *)
  lock_waits : (int, unit Sync.Ivar.t) Hashtbl.t;
  page_waits : (int, unit Sync.Ivar.t) Hashtbl.t;
  diff_waits : (int * int, unit Sync.Ivar.t) Hashtbl.t;
  barrier_waits : (int, unit Sync.Ivar.t) Hashtbl.t;
  barrier_accs : (int, barrier_acc) Hashtbl.t;  (* used on the manager node *)
  mutable peers : t array;
  mutable coll : (Vclock.t * Protocol.notice list, Protocol.msg) Collectives.t option;
      (* NIC-resident combining tree for barriers; None = centralised node-0 *)
  mutable barrier_timeout : Time.t option;
      (* bound on a centralised-barrier wait; None = wait forever *)
  resident : int Vec.t;  (* pages with has_copy, for the mapping-cap clock *)
  mutable resident_hand : int;
  mutable locks_held : int;
  s_faults : Stats.Counter.t;
  s_page_fetches : Stats.Counter.t;
  s_diff_fetches : Stats.Counter.t;
  s_twins : Stats.Counter.t;
  s_intervals : Stats.Counter.t;
  s_notices_applied : Stats.Counter.t;
  s_local_acquires : Stats.Counter.t;
  s_remote_acquires : Stats.Counter.t;
  s_barriers : Stats.Counter.t;
  s_evictions : Stats.Counter.t;
  received_by_kind : Stats.Counter.t array;  (* indexed by Protocol.kind_of *)
}

let me t = t.me
let node t = t.node
let space t = t.space
let nprocs t = Space.nprocs t.space
let page_bytes t = Space.page_bytes t.space
let page_words t = page_bytes t / 8
let nic t = Node.nic t.node

(* ------------------------------------------------------------------ *)
(* Page state                                                          *)
(* ------------------------------------------------------------------ *)

let get_page t page =
  match Hashtbl.find_opt t.pages page with
  | Some st -> st
  | None ->
      let local = Space.home t.space ~page = t.me in
      let st =
        {
          valid = local;
          has_copy = local;
          twinned = false;
          dirty_words = 0;
          mask = Bytes.empty;
          pending = Hashtbl.create 4;
          applied = Hashtbl.create 4;
        }
      in
      Hashtbl.replace t.pages page st;
      if local then Vec.push t.resident page;
      st

let applied_seq st owner = match Hashtbl.find_opt st.applied owner with Some s -> s | None -> 0

(* Mapping cap: evict a clean resident page (approximate LRU via a clock over
   the resident list). Dirty/in-flight pages are skipped. Re-fetched pages
   are pushed again, so the list is compacted when stale entries dominate. *)
let compact_resident t =
  if Vec.length t.resident > 4 * t.max_resident then begin
    let live = Vec.fold_left (fun acc p -> if (get_page t p).has_copy then p :: acc else acc) [] t.resident in
    Vec.clear t.resident;
    List.iter (fun p -> Vec.push t.resident p) (List.sort_uniq compare live);
    t.resident_hand <- 0
  end

let maybe_evict t =
  if t.max_resident < max_int && Vec.length t.resident > t.max_resident then begin
    compact_resident t;
    let n = Vec.length t.resident in
    let rec go attempts =
      if attempts > 0 then begin
        t.resident_hand <- (t.resident_hand + 1) mod n;
        let page = Vec.get t.resident t.resident_hand in
        let st = get_page t page in
        if
          st.has_copy
          && (not st.twinned)
          && (not (Hashtbl.mem t.page_waits page))
          (* never drop the only base copy in the cluster *)
          && Space.last_writer t.space ~page <> t.me
        then begin
          st.valid <- false;
          st.has_copy <- false;
          Stats.Counter.incr t.s_evictions
        end
        else go (attempts - 1)
      end
    in
    go n
  end

let note_resident t page =
  let st = get_page t page in
  if not st.has_copy then begin
    st.has_copy <- true;
    Vec.push t.resident page;
    maybe_evict t
  end

(* ------------------------------------------------------------------ *)
(* Execution contexts                                                  *)
(* ------------------------------------------------------------------ *)

(* The same protocol code runs as a client (application fiber: overhead
   charged to the node, waits accounted as synch delay) and as a server
   (handler context: charged at the NIC or host clock by the NIC layer). *)
type exec = {
  charge : int -> unit;
  send : dst:int -> Protocol.msg -> Nic.data -> unit;
  wait : unit Sync.Ivar.t -> unit;
}

let client_exec t =
  {
    charge = (fun n -> Node.overhead_cycles t.node n);
    send =
      (fun ~dst msg data ->
        Nic.send (nic t) ~dst
          ~header:(Protocol.header ~src:t.me msg)
          ~body_bytes:(Protocol.body_bytes msg) ~data ~payload:msg);
    wait = (fun iv -> Node.blocking t.node (fun () -> Sync.Ivar.read iv));
  }

let server_exec t (ctx : Protocol.msg Nic.ctx) =
  {
    charge = ctx.Nic.charge;
    send =
      (fun ~dst msg data ->
        ctx.Nic.reply ~dst
          ~header:(Protocol.header ~src:t.me msg)
          ~body_bytes:(Protocol.body_bytes msg) ~data ~payload:msg);
    wait = Sync.Ivar.read;
  }

let find_or_create_wait tbl key =
  match Hashtbl.find_opt tbl key with
  | Some iv -> (iv, false)
  | None ->
      let iv = Sync.Ivar.create () in
      Hashtbl.replace tbl key iv;
      (iv, true)

let take_wait tbl key =
  match Hashtbl.find_opt tbl key with
  | Some iv ->
      Hashtbl.remove tbl key;
      Some iv
  | None -> None

(* ------------------------------------------------------------------ *)
(* Dirty masks and diff sizes                                          *)
(* ------------------------------------------------------------------ *)

let popcount_byte =
  lazy
    (Array.init 256 (fun b ->
         let rec go n b = if b = 0 then n else go (n + (b land 1)) (b lsr 1) in
         go 0 b))

(* diff wire size: the changed words plus an 8-byte (offset,len) header per
   contiguous run, mirroring Diff.wire_bytes *)
let diff_bytes_of_mask mask dirty_words =
  let runs = ref 0 in
  let prev = ref false in
  let nbits = Bytes.length mask * 8 in
  for w = 0 to nbits - 1 do
    let set = Char.code (Bytes.get mask (w lsr 3)) land (1 lsl (w land 7)) <> 0 in
    if set && not !prev then incr runs;
    prev := set
  done;
  (dirty_words * 8) + (!runs * 8)

let _ = popcount_byte

(* ------------------------------------------------------------------ *)
(* Interval closing (a release point)                                  *)
(* ------------------------------------------------------------------ *)

let close_interval t =
  if Vec.length t.dirty_set > 0 then begin
    let c = t.costs in
    let seq = Vclock.incr t.vc t.me in
    let pb = page_bytes t in
    let total_dirty = ref 0 in
    let notices =
      Vec.fold_left
        (fun acc page ->
          let st = get_page t page in
          let diff_bytes = diff_bytes_of_mask st.mask st.dirty_words in
          total_dirty := !total_dirty + st.dirty_words;
          (* diff creation scans the page (cache traffic) ... *)
          Node.touch t.node ~addr:(Space.addr_of_page t.space page) ~bytes:pb ~write:false;
          { Protocol.page; owner = t.me; seq; diff_bytes } :: acc)
        [] t.dirty_set
    in
    (* ... and its cost is protocol overhead *)
    Node.overhead_cycles t.node
      ((c.diff_create_per_word * !total_dirty) + (c.notice_make * List.length notices));
    (* write-back consistency: flush the dirtied pages so host memory (and,
       through snooping, the Message Cache) holds the released data *)
    Vec.iter
      (fun page -> Node.flush_range t.node ~addr:(Space.addr_of_page t.space page) ~bytes:pb)
      t.dirty_set;
    (* on a CNI board the write-notice metadata (offsets and run lists) is
       deposited into AIH memory by programmed I/O; diff DATA is extracted
       lazily at request time from the Message Cache copy (or DMAed then) *)
    if Nic.aih_enabled (nic t) then
      Node.overhead_cycles t.node (c.pio_per_word * 2 * List.length notices);
    Space.record_interval t.space ~node:t.me ~seq ~notices;
    Vec.iter
      (fun page ->
        let st = get_page t page in
        st.twinned <- false;
        st.dirty_words <- 0;
        if Bytes.length st.mask > 0 then Bytes.fill st.mask 0 (Bytes.length st.mask) '\000';
        Hashtbl.replace st.applied t.me seq;
        Space.set_last_writer t.space ~page ~node:t.me)
      t.dirty_set;
    Vec.clear t.dirty_set;
    Stats.Counter.incr t.s_intervals
  end

(* ------------------------------------------------------------------ *)
(* Write notices                                                       *)
(* ------------------------------------------------------------------ *)

let apply_notices t ex notices =
  let n = List.length notices in
  if n > 0 then ex.charge (t.costs.notice_apply * n);
  List.iter
    (fun { Protocol.page; owner; seq; _ } ->
      if owner <> t.me then begin
        let st = get_page t page in
        if seq > applied_seq st owner then begin
          st.valid <- false;
          (match Hashtbl.find_opt st.pending owner with
          | Some upto when upto >= seq -> ()
          | _ -> Hashtbl.replace st.pending owner seq);
          Stats.Counter.incr t.s_notices_applied
        end
      end)
    notices

(* ------------------------------------------------------------------ *)
(* Fault handling                                                      *)
(* ------------------------------------------------------------------ *)

let addr_of t page = Space.addr_of_page t.space page

(* Full-page fetch from [owner]; the reply's handler merges version metadata
   and fills the wait. *)
let fetch_page t ex ~page ~owner ~write_intent =
  Stats.Counter.incr t.s_page_fetches;
  let iv, fresh = find_or_create_wait t.page_waits page in
  if fresh then
    ex.send ~dst:owner (Protocol.Page_req { page; requester = t.me; write_intent }) Nic.No_data;
  ex.wait iv

let fetch_diffs t ex ~page ~owners =
  List.iter
    (fun (owner, upto) ->
      let since = applied_seq (get_page t page) owner in
      if upto > since then begin
        Stats.Counter.incr t.s_diff_fetches;
        let iv, fresh = find_or_create_wait t.diff_waits (page, owner) in
        if fresh then
          ex.send ~dst:owner
            (Protocol.Diff_req { page; requester = t.me; since; upto })
            Nic.No_data;
        ignore iv
      end)
    owners;
  List.iter
    (fun (owner, _) ->
      match Hashtbl.find_opt t.diff_waits (page, owner) with
      | Some iv -> ex.wait iv
      | None -> ())
    owners

let pending_owners st =
  Hashtbl.fold
    (fun owner upto acc -> if upto > applied_seq st owner then (owner, upto) :: acc else acc)
    st.pending []

(* Deadlock freedom: a diff request is always served immediately from the
   owner's diff log, but a page request may force the server to fault its
   own copy in first. To keep those server-side faults from forming request
   cycles, a full page is only ever requested from a node whose copy is
   currently valid (or from the last writer when we have no base copy at
   all — the last writer always retains a base). A faulting server therefore
   resolves through diffs alone and terminates. The validity peek stands in
   for the directory state a real implementation would consult. *)
let peer_copy_valid t ~page ~owner =
  match Hashtbl.find_opt t.peers.(owner).pages page with
  | Some st -> st.valid
  | None -> false

let rec fault_in t ex ~page ~write_intent =
  let st = get_page t page in
  if not st.valid then begin
    Stats.Counter.incr t.s_faults;
    ex.charge t.costs.fault;
    (if not st.has_copy then begin
       (* no base copy: must take the whole page from its last writer *)
       let owner = Space.last_writer t.space ~page in
       if owner = t.me then begin
         st.valid <- true;
         note_resident t page
       end
       else fetch_page t ex ~page ~owner ~write_intent
     end
     else
       let owners = pending_owners st in
       match owners with
       | [] -> st.valid <- true
       | [ (owner, upto) ]
         when Space.diff_bytes_between t.space ~owner ~page ~since:(applied_seq st owner)
                ~upto
              * 2
              >= page_bytes t
              && peer_copy_valid t ~page ~owner ->
           (* the diff approaches the page size: migrate the whole page *)
           fetch_page t ex ~page ~owner ~write_intent
       | owners -> fetch_diffs t ex ~page ~owners);
    (* a concurrent fault may have completed the work while we waited *)
    let st = get_page t page in
    if pending_owners st = [] then begin
      st.valid <- true;
      note_resident t page
    end
    else fault_in t ex ~page ~write_intent
  end

(* The migratory hint that sets the to-be-cached bit on the page request:
   lock-protected data moves from releaser to acquirer (and will likely be
   forwarded again), as will pages we are about to rewrite; barrier-phase
   read-only fetches are not worth a buffer at the receiver. *)
let migratory_hint t ~write = write || t.locks_held > 0

let ensure_read t ~page =
  let st = get_page t page in
  if not st.valid then
    fault_in t (client_exec t) ~page ~write_intent:(migratory_hint t ~write:false)

let ensure_write t ~page =
  let st0 = get_page t page in
  if not st0.valid then fault_in t (client_exec t) ~page ~write_intent:true;
  let st = get_page t page in
  if not st.twinned then begin
    let c = t.costs in
    let words = page_words t in
    (* twin: copy the page into a shadow buffer (real cache traffic) *)
    let twin_addr = addr_of t page + (1 lsl 50) in
    Node.touch t.node ~addr:(addr_of t page) ~bytes:(page_bytes t) ~write:false;
    Node.touch t.node ~addr:twin_addr ~bytes:(page_bytes t) ~write:true;
    Node.overhead_cycles t.node (c.twin_per_word * words);
    st.twinned <- true;
    if Bytes.length st.mask = 0 then st.mask <- Bytes.make ((words + 7) / 8) '\000';
    Vec.push t.dirty_set page;
    Stats.Counter.incr t.s_twins
  end

let mark_dirty_words t ~page ~word_lo ~words =
  let st = get_page t page in
  assert st.twinned;
  let mask = st.mask in
  for w = word_lo to word_lo + words - 1 do
    let b = Char.code (Bytes.get mask (w lsr 3)) in
    let bit = 1 lsl (w land 7) in
    if b land bit = 0 then begin
      Bytes.set mask (w lsr 3) (Char.chr (b lor bit));
      st.dirty_words <- st.dirty_words + 1
    end
  done

let validate_local t ~page =
  let st = get_page t page in
  st.valid <- true;
  note_resident t page;
  Space.set_last_writer t.space ~page ~node:t.me

(* ------------------------------------------------------------------ *)
(* Locks                                                               *)
(* ------------------------------------------------------------------ *)

let get_lock t lock =
  match Hashtbl.find_opt t.locks lock with
  | Some st -> st
  | None ->
      let st =
        {
          am_last = Space.lock_manager t.space ~lock = t.me;
          holding = false;
          pending_forward = None;
        }
      in
      Hashtbl.replace t.locks lock st;
      st

(* Grant the lock to [requester]: piggyback every interval it has not seen. *)
let send_grant t ex ~lock ~requester ~req_vc =
  let notices = Space.notices_between t.space ~from_vc:req_vc ~upto_vc:t.vc in
  ex.charge (t.costs.notice_make * List.length notices);
  ex.send ~dst:requester
    (Protocol.Lock_grant { lock; vc = Vclock.copy t.vc; notices })
    Nic.No_data

(* The token must stay with us for now when we hold the lock, or when our own
   acquire is still in flight (the manager made us last owner before our
   grant arrived; granting now would give the lock away while we are about
   to receive it). *)
let must_defer_grant t lock =
  let st = get_lock t lock in
  st.holding || Hashtbl.mem t.lock_waits lock

(* Server side: an acquire arrived at the manager (or was routed locally). *)
let handle_lock_acquire t ex ~lock ~requester ~req_vc =
  ex.charge t.costs.server_lock;
  let prev = Space.lock_last_owner t.space ~lock in
  Space.set_lock_last_owner t.space ~lock ~node:requester;
  if prev = requester then
    (* defensive: the requester already owns the token *)
    send_grant t ex ~lock ~requester ~req_vc
  else if prev = t.me then begin
    (* the manager itself is the last owner: grant or queue locally *)
    let st = get_lock t lock in
    st.am_last <- false;
    if must_defer_grant t lock then st.pending_forward <- Some (requester, req_vc)
    else send_grant t ex ~lock ~requester ~req_vc
  end
  else ex.send ~dst:prev (Protocol.Lock_forward { lock; requester; vc = req_vc }) Nic.No_data

let debug_lock = ref (-1)

let dbg t lock fmt =
  if lock = !debug_lock then
    Printf.eprintf ("LOCKDBG n%d " ^^ fmt ^^ "\n") t.me
  else Printf.ifprintf stderr fmt

let acquire t ~lock =
  let st = get_lock t lock in
  if st.holding then invalid_arg "Lrc.acquire: lock already held";
  if st.am_last then begin
    (* we were the last owner and nobody asked for the lock since: reacquire
       locally with no traffic. Claim the lock BEFORE charging the cost: the
       charge advances simulated time, and a forward arriving in that window
       must see the lock as held and queue behind us. *)
    dbg t lock "acquire-local";
    st.holding <- true;
    t.locks_held <- t.locks_held + 1;
    Stats.Counter.incr t.s_local_acquires;
    Node.overhead_cycles t.node t.costs.acquire_local
  end
  else begin
    let ex = client_exec t in
    ex.charge t.costs.acquire_remote;
    let iv, fresh = find_or_create_wait t.lock_waits lock in
    assert fresh;
    let manager = Space.lock_manager t.space ~lock in
    if manager = t.me then
      (* we are the manager: route locally, no message *)
      handle_lock_acquire t ex ~lock ~requester:t.me ~req_vc:(Vclock.copy t.vc)
    else
      ex.send ~dst:manager
        (Protocol.Lock_acquire { lock; requester = t.me; vc = Vclock.copy t.vc })
        Nic.No_data;
    dbg t lock "acquire-remote-sent";
    ex.wait iv;
    dbg t lock "acquire-remote-granted";
    (* am_last was set by the grant handler (and possibly cleared again by a
       forward that overtook our wakeup) — do not overwrite it here *)
    st.holding <- true;
    t.locks_held <- t.locks_held + 1;
    Stats.Counter.incr t.s_remote_acquires
  end

let release t ~lock =
  let st = get_lock t lock in
  if not st.holding then invalid_arg "Lrc.release: lock not held";
  dbg t lock "release (pending=%b)" (st.pending_forward <> None);
  close_interval t;
  Node.overhead_cycles t.node t.costs.release;
  st.holding <- false;
  t.locks_held <- t.locks_held - 1;
  match st.pending_forward with
  | Some (requester, req_vc) ->
      st.pending_forward <- None;
      st.am_last <- false;
      send_grant t (client_exec t) ~lock ~requester ~req_vc
  | None -> ()

let handle_lock_forward t ex ~lock ~requester ~req_vc =
  ex.charge t.costs.server_lock;
  let st = get_lock t lock in
  st.am_last <- false;
  dbg t lock "forward for n%d (defer=%b holding=%b)" requester (must_defer_grant t lock) st.holding;
  if must_defer_grant t lock then st.pending_forward <- Some (requester, req_vc)
  else send_grant t ex ~lock ~requester ~req_vc

let handle_lock_grant t ex ~lock ~vc ~notices =
  apply_notices t ex notices;
  Vclock.merge t.vc vc;
  let st = get_lock t lock in
  (* we are the last owner unless a forward already queued behind us *)
  st.am_last <- st.pending_forward = None;
  (* the lock is ours from this instant: a forward processed between this
     handler and the application fiber's wakeup must queue behind us *)
  st.holding <- true;
  match take_wait t.lock_waits lock with
  | Some iv -> Sync.Ivar.fill iv ()
  | None -> failwith "Lrc: unexpected lock grant"

(* ------------------------------------------------------------------ *)
(* Pages and diffs (server side)                                       *)
(* ------------------------------------------------------------------ *)

let handle_page_req t ex ~page ~requester ~write_intent =
  ex.charge t.costs.server_page;
  (* our copy may itself be invalid (we applied notices since we wrote it);
     bring it up to date before serving *)
  let st = get_page t page in
  if not st.valid then fault_in t ex ~page ~write_intent:false;
  (* transmit caching: the board binds the served page regardless (we are
     its last writer and may serve it again); receive caching at the other
     end is keyed by the migratory bit *)
  ex.send ~dst:requester
    (Protocol.Page_reply { page; migratory = write_intent })
    (Nic.Page { vaddr = addr_of t page; bytes = page_bytes t; cacheable = true })

let handle_page_reply t (ctx : Protocol.msg Nic.ctx) ex ~page ~server ~migratory =
  ex.charge t.costs.server_page;
  ctx.Nic.deliver_page ~vaddr:(addr_of t page) ~bytes:(page_bytes t) ~cacheable:migratory;
  let st = get_page t page in
  (* the server's copy carries everything the server had applied: merge its
     version vector (metadata; the data arrived as the full page) *)
  let peer = t.peers.(server) in
  (match Hashtbl.find_opt peer.pages page with
  | Some pst ->
      Hashtbl.iter
        (fun owner seq -> if seq > applied_seq st owner then Hashtbl.replace st.applied owner seq)
        pst.applied
  | None -> ());
  (* drop the pending entries the fetched copy satisfies *)
  Hashtbl.iter
    (fun owner upto -> if upto <= applied_seq st owner then Hashtbl.remove st.pending owner)
    (Hashtbl.copy st.pending);
  (* note_resident both records the copy and runs the mapping-cap clock *)
  note_resident t page;
  match take_wait t.page_waits page with
  | Some iv -> Sync.Ivar.fill iv ()
  | None -> failwith "Lrc: unexpected page reply" 

let handle_diff_req t ex ~page ~requester ~since ~upto =
  ex.charge t.costs.server_diff;
  let bytes = Space.diff_bytes_between t.space ~owner:t.me ~page ~since ~upto in
  (* the diff data comes out of the page's buffer: on a CNI board a Message
     Cache hit serves it without touching the host; a miss DMAs the words
     and binds the page so later requests (diff or full page) are served
     from the board *)
  let data = Nic.Page { vaddr = addr_of t page; bytes = max bytes 8; cacheable = true } in
  ex.send ~dst:requester (Protocol.Diff_reply { page; owner = t.me; bytes; upto }) data

let handle_diff_reply t (ctx : Protocol.msg Nic.ctx) ex ~page ~owner ~bytes ~upto =
  let words = (bytes + 7) / 8 in
  ex.charge (t.costs.diff_apply_per_word * words);
  (* the changed words are written into the host page *)
  if bytes > 0 then
    ctx.Nic.deliver_page ~vaddr:(addr_of t page)
      ~bytes:(min bytes (page_bytes t))
      ~cacheable:false;
  let st = get_page t page in
  if upto > applied_seq st owner then Hashtbl.replace st.applied owner upto;
  (match Hashtbl.find_opt st.pending owner with
  | Some p when p <= upto -> Hashtbl.remove st.pending owner
  | Some _ | None -> ());
  match take_wait t.diff_waits (page, owner) with
  | Some iv -> Sync.Ivar.fill iv ()
  | None -> failwith "Lrc: unexpected diff reply"

(* ------------------------------------------------------------------ *)
(* Barriers                                                            *)
(* ------------------------------------------------------------------ *)

let own_notices_since_last_barrier t =
  let from = Vclock.copy t.vc in
  Vclock.set from t.me (Vclock.get t.last_barrier_vc t.me);
  Space.notices_between t.space ~from_vc:from ~upto_vc:t.vc

let get_barrier_acc t id =
  match Hashtbl.find_opt t.barrier_accs id with
  | Some acc -> acc
  | None ->
      let acc = { arrived = 0; vcs = [] } in
      Hashtbl.replace t.barrier_accs id acc;
      acc

(* Runs on the manager (node 0) for every arrival, including its own. *)
let barrier_arrival t ex ~id ~from ~vc =
  ex.charge t.costs.server_barrier;
  let acc = get_barrier_acc t id in
  acc.arrived <- acc.arrived + 1;
  acc.vcs <- (from, vc) :: acc.vcs;
  if acc.arrived = nprocs t then begin
    let merged = Vclock.create (nprocs t) in
    List.iter (fun (_, v) -> Vclock.merge merged v) acc.vcs;
    ex.charge (t.costs.server_barrier_per_node * nprocs t);
    (* construct the union of unseen intervals ONCE (from the pointwise
       minimum of the arrival clocks) and broadcast the same notice list to
       every node — TreadMarks-style interval distribution; per-destination
       filtering would cost O(P * notices) on the protocol processor *)
    let min_vc = Vclock.copy merged in
    List.iter
      (fun (_, v) ->
        for k = 0 to nprocs t - 1 do
          if Vclock.get v k < Vclock.get min_vc k then Vclock.set min_vc k (Vclock.get v k)
        done)
      acc.vcs;
    let notices = Space.notices_between t.space ~from_vc:min_vc ~upto_vc:merged in
    ex.charge (t.costs.notice_make * List.length notices);
    List.iter
      (fun (n, _) ->
        if n <> t.me then
          ex.send ~dst:n
            (Protocol.Barrier_release { barrier = id; vc = Vclock.copy merged; notices })
            Nic.No_data)
      acc.vcs;
    (* the manager's own release is local *)
    let my_notices = Space.notices_between t.space ~from_vc:t.vc ~upto_vc:merged in
    apply_notices t ex my_notices;
    Vclock.merge t.vc merged;
    Vclock.merge t.last_barrier_vc t.vc;
    acc.arrived <- 0;
    acc.vcs <- [];
    match take_wait t.barrier_waits id with
    | Some iv -> Sync.Ivar.fill iv ()
    | None -> failwith "Lrc: barrier completed with no local waiter"
  end

let handle_barrier_release t ex ~id ~vc ~notices =
  apply_notices t ex notices;
  Vclock.merge t.vc vc;
  Vclock.merge t.last_barrier_vc t.vc;
  match take_wait t.barrier_waits id with
  | Some iv -> Sync.Ivar.fill iv ()
  | None -> failwith "Lrc: unexpected barrier release"

let now_ps t = Time.to_ps (Engine.now (Node.engine t.node))

exception Barrier_timeout of { node : int; barrier : int; waited : Time.t }

let () =
  Printexc.register_printer (function
    | Barrier_timeout { node; barrier; waited } ->
        Some
          (Printf.sprintf
             "Lrc.Barrier_timeout: node %d gave up on barrier %d after %.3f us"
             node barrier (Time.to_us_float waited))
    | _ -> None)

(* Race the barrier's release ivar against an engine timer. A release that
   arrives after the timeout still fills the ivar (the reader fiber drains
   it silently); only the decision of which side won is guarded. *)
let wait_barrier t ~id iv =
  match t.barrier_timeout with
  | None -> Node.blocking t.node (fun () -> Sync.Ivar.read iv)
  | Some limit ->
      let eng = Node.engine t.node in
      let start = Engine.now eng in
      let race = Sync.Ivar.create () in
      let settled = ref false in
      Engine.spawn eng ~name:(Printf.sprintf "lrc-barrier-wait-%d" t.me) (fun () ->
          Sync.Ivar.read iv;
          if not !settled then begin
            settled := true;
            Sync.Ivar.fill race true
          end);
      Engine.after eng limit (fun () ->
          if not !settled then begin
            settled := true;
            Sync.Ivar.fill race false
          end);
      if not (Node.blocking t.node (fun () -> Sync.Ivar.read race)) then
        raise
          (Barrier_timeout
             { node = t.me; barrier = id; waited = Time.(Engine.now eng - start) })

(* Centralised barrier (the original path, kept as an ablation): every node
   sends its arrival to the manager, which merges and broadcasts releases. *)
let centralised_barrier t ~id =
  let manager = Space.barrier_manager t.space ~barrier:id in
  let ex = client_exec t in
  let iv, fresh = find_or_create_wait t.barrier_waits id in
  assert fresh;
  if t.me = manager then barrier_arrival t ex ~id ~from:t.me ~vc:(Vclock.copy t.vc)
  else begin
    let notices = own_notices_since_last_barrier t in
    ex.send ~dst:manager
      (Protocol.Barrier_arrive { barrier = id; node = t.me; vc = Vclock.copy t.vc; notices })
      Nic.No_data
  end;
  wait_barrier t ~id iv

(* NIC-resident barrier: an allreduce over the boards' combining tree. Each
   node contributes its vector clock and the intervals it created since its
   own last barrier; the tree merges clocks and unions notice lists in
   protocol context. That union covers everything any node can be missing —
   the previous barrier's release brought everyone up to its merged clock,
   so only since-then intervals (each present in exactly one contribution)
   are outstanding — and [apply_notices] deduplicates anything a lock grant
   already delivered. The host is woken once, with the episode's result. *)
let collective_barrier t coll =
  let contribution = (Vclock.copy t.vc, own_notices_since_last_barrier t) in
  let vc, notices =
    Collectives.allreduce coll
      ~op:(fun (vc1, n1) (vc2, n2) ->
        let vc = Vclock.copy vc1 in
        Vclock.merge vc vc2;
        (vc, List.rev_append n1 n2))
      contribution
  in
  apply_notices t (client_exec t) notices;
  Vclock.merge t.vc vc;
  Vclock.merge t.last_barrier_vc t.vc

let barrier t ~id =
  close_interval t;
  Node.overhead_cycles t.node t.costs.barrier_client;
  Stats.Counter.incr t.s_barriers;
  if Trace.enabled_cat Trace.Dsm then
    Trace.span_begin ~t_ps:(now_ps t) ~node:t.me Trace.Dsm ~label:"barrier" ~payload:id;
  if nprocs t > 1 then
    (match t.coll with
    | Some coll -> collective_barrier t coll
    | None -> centralised_barrier t ~id);
  if Trace.enabled_cat Trace.Dsm then
    Trace.span_end ~t_ps:(now_ps t) ~node:t.me Trace.Dsm ~label:"barrier" ~payload:id

(* ------------------------------------------------------------------ *)
(* Server dispatch and installation                                    *)
(* ------------------------------------------------------------------ *)

let handle t (ctx : Protocol.msg Nic.ctx) (pkt : Protocol.msg Cni_atm.Fabric.packet) =
  let ex = server_exec t ctx in
  let kind = Protocol.kind_of pkt.Cni_atm.Fabric.payload in
  Stats.Counter.incr t.received_by_kind.(kind);
  if Trace.enabled_cat Trace.Dsm then
    Trace.emit ~t_ps:(now_ps t) ~node:t.me Trace.Dsm
      ~label:(Protocol.kind_name kind)
      ~payload:(Protocol.obj_of pkt.Cni_atm.Fabric.payload);
  match pkt.Cni_atm.Fabric.payload with
  | Protocol.Lock_acquire { lock; requester; vc } ->
      handle_lock_acquire t ex ~lock ~requester ~req_vc:vc
  | Protocol.Lock_forward { lock; requester; vc } ->
      handle_lock_forward t ex ~lock ~requester ~req_vc:vc
  | Protocol.Lock_grant { lock; vc; notices } -> handle_lock_grant t ex ~lock ~vc ~notices
  | Protocol.Page_req { page; requester; write_intent } ->
      handle_page_req t ex ~page ~requester ~write_intent
  | Protocol.Page_reply { page; migratory } ->
      handle_page_reply t ctx ex ~page ~server:pkt.Cni_atm.Fabric.src ~migratory
  | Protocol.Diff_req { page; requester; since; upto } ->
      handle_diff_req t ex ~page ~requester ~since ~upto
  | Protocol.Diff_reply { page; owner; bytes; upto } ->
      handle_diff_reply t ctx ex ~page ~owner ~bytes ~upto
  | Protocol.Barrier_arrive { barrier; node; vc; notices } ->
      ignore notices;
      barrier_arrival t ex ~id:barrier ~from:node ~vc
  | Protocol.Barrier_release { barrier; vc; notices } ->
      handle_barrier_release t ex ~id:barrier ~vc ~notices
  | Protocol.Coll _ ->
      (* routed on the collectives channel, classified by its own handler *)
      failwith "Lrc: collective payload arrived on the DSM channel"

let create cluster space_ costs max_resident ~id =
  let n = Cluster.node cluster id in
  let registry = Cluster.metrics cluster in
  let counter name = Stats.Registry.counter registry ~node:id ~subsystem:"dsm" name in
  (* per-kind receive counters live under dsm/rx; unused kind indices get
     standalone counters so the registry only lists real protocol kinds *)
  let rx_counter kind =
    if List.mem kind Protocol.all_kinds then
      Stats.Registry.counter registry ~node:id ~subsystem:"dsm/rx"
        (Protocol.kind_name kind)
    else Stats.Counter.create (Printf.sprintf "rx_kind_%d" kind)
  in
  {
    me = id;
    node = n;
    space = space_;
    costs;
    max_resident;
    vc = Vclock.create (Space.nprocs space_);
    last_barrier_vc = Vclock.create (Space.nprocs space_);
    pages = Hashtbl.create 1024;
    locks = Hashtbl.create 64;
    dirty_set = Vec.create ();
    lock_waits = Hashtbl.create 16;
    page_waits = Hashtbl.create 64;
    diff_waits = Hashtbl.create 64;
    barrier_waits = Hashtbl.create 8;
    barrier_accs = Hashtbl.create 8;
    peers = [||];
    coll = None;
    barrier_timeout = None;
    resident = Vec.create ();
    resident_hand = 0;
    locks_held = 0;
    s_faults = counter "faults";
    s_page_fetches = counter "page_fetches";
    s_diff_fetches = counter "diff_fetches";
    s_twins = counter "twins";
    s_intervals = counter "intervals";
    s_notices_applied = counter "notices_applied";
    s_local_acquires = counter "local_acquires";
    s_remote_acquires = counter "remote_acquires";
    s_barriers = counter "barriers";
    s_evictions = counter "evictions";
    received_by_kind = Array.init 16 rx_counter;
  }

(* The wire channel the NIC-resident barrier's combining tree claims
   (Protocol.channel = 1 carries the point-to-point DSM traffic). *)
let collectives_channel = 4

let install cluster space_ ?(costs = default_costs) ?(max_resident_pages = max_int)
    ?(barrier_impl = `Centralised) ?barrier_timeout () =
  let n = Cluster.size cluster in
  let engines = Array.init n (fun id -> create cluster space_ costs max_resident_pages ~id) in
  let coll =
    match barrier_impl with
    | `Centralised -> None
    | `Nic_collective ->
        Some
          (Collectives.install ~channel:collectives_channel
             ~bytes_of:(fun (vc, notices) ->
               8 + Vclock.wire_bytes vc + Protocol.notices_bytes notices)
             ~inject:(fun (vc, notices) -> Protocol.Coll { vc; notices })
             ~project:(function
               | Protocol.Coll { vc; notices } -> (vc, notices)
               | _ -> assert false)
             cluster)
  in
  Array.iter
    (fun t ->
      t.peers <- engines;
      t.coll <- Option.map (fun c -> c.(t.me)) coll;
      t.barrier_timeout <- barrier_timeout;
      let board = nic t in
      (* one Application Interrupt Handler per protocol kind: each gets its
         own PATHFINDER pattern (sharing the channel-match prefix in the DAG)
         and a segment of board memory for its object code *)
      List.iter
        (fun kind ->
          let pattern = Wire.pattern_channel_kind ~channel:Protocol.channel ~kind in
          ignore (Nic.install_handler board ~pattern ~code_bytes:1024 (handle t)))
        Protocol.all_kinds;
      Nic.set_default_handler board (fun _ctx pkt ->
          failwith
            (Format.asprintf "Lrc: unclassified packet %a" Protocol.pp pkt.Cni_atm.Fabric.payload)))
    engines;
  engines

let stats t =
  {
    faults = Stats.Counter.value t.s_faults;
    page_fetches = Stats.Counter.value t.s_page_fetches;
    diff_fetches = Stats.Counter.value t.s_diff_fetches;
    twins = Stats.Counter.value t.s_twins;
    intervals = Stats.Counter.value t.s_intervals;
    notices_applied = Stats.Counter.value t.s_notices_applied;
    local_acquires = Stats.Counter.value t.s_local_acquires;
    remote_acquires = Stats.Counter.value t.s_remote_acquires;
    barriers = Stats.Counter.value t.s_barriers;
    evictions = Stats.Counter.value t.s_evictions;
  }

(* Debug: a one-line summary of outstanding waits (deadlock triage). *)
let debug_waits t =
  let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  let locks = keys t.lock_waits and pages = keys t.page_waits in
  let diffs = Hashtbl.fold (fun (p, o) _ acc -> Printf.sprintf "%d@%d" p o :: acc) t.diff_waits [] in
  let barriers = keys t.barrier_waits in
  let holding =
    Hashtbl.fold (fun l st acc -> if st.holding then l :: acc else acc) t.locks []
  in
  Printf.sprintf "node %d: holds=[%s] lock_waits=[%s] page_waits=[%s] diff_waits=[%s] barrier_waits=[%s]"
    t.me
    (String.concat "," (List.map string_of_int holding))
    (String.concat "," (List.map string_of_int locks))
    (String.concat "," (List.map string_of_int pages))
    (String.concat "," diffs)
    (String.concat "," (List.map string_of_int barriers))

(* Messages this node's protocol engine has received, by kind — the traffic
   mix behind the timing results. *)
let received_messages t =
  List.filter_map
    (fun kind ->
      let n = Stats.Counter.value t.received_by_kind.(kind) in
      if n > 0 then Some (Protocol.kind_name kind, n) else None)
    Protocol.all_kinds
