module Counter = struct
  type t = { name : string; mutable v : int }

  let create name = { name; v = 0 }
  let name t = t.name
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let value t = t.v
  let reset t = t.v <- 0
end

module Summary = struct
  type t = {
    name : string;
    mutable count : int;
    mutable sum : int;
    mutable min : int;
    mutable max : int;
  }

  let create name = { name; count = 0; sum = 0; min = 0; max = 0 }
  let name t = t.name

  let observe t s =
    if t.count = 0 then begin
      t.min <- s;
      t.max <- s
    end
    else begin
      if s < t.min then t.min <- s;
      if s > t.max then t.max <- s
    end;
    t.count <- t.count + 1;
    t.sum <- t.sum + s

  let count t = t.count
  let sum t = t.sum
  let min t = t.min
  let max t = t.max
  let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count

  let reset t =
    t.count <- 0;
    t.sum <- 0;
    t.min <- 0;
    t.max <- 0
end

module Histogram = struct
  let nbuckets = 63

  type t = { name : string; buckets : int array; mutable count : int }

  let create name = { name; buckets = Array.make nbuckets 0; count = 0 }
  let name t = t.name

  let bucket_of s =
    if s <= 0 then 0
    else
      (* index of highest set bit, plus one *)
      let rec go i v = if v = 0 then i else go (i + 1) (v lsr 1) in
      go 0 s

  let observe t s =
    let b = bucket_of s in
    t.buckets.(b) <- t.buckets.(b) + 1;
    t.count <- t.count + 1

  let count t = t.count

  let upper_bound i = if i = 0 then 1 else 1 lsl i

  let buckets t =
    let acc = ref [] in
    for i = nbuckets - 1 downto 0 do
      if t.buckets.(i) > 0 then acc := (upper_bound i, t.buckets.(i)) :: !acc
    done;
    !acc

  let percentile t p =
    if t.count = 0 then 0
    else begin
      let target = int_of_float (ceil (p /. 100. *. float_of_int t.count)) in
      let target = Stdlib.max 1 (Stdlib.min t.count target) in
      let seen = ref 0 in
      let result = ref 0 in
      (try
         for i = 0 to nbuckets - 1 do
           seen := !seen + t.buckets.(i);
           if !seen >= target then begin
             result := upper_bound i;
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end

  let reset t =
    Array.fill t.buckets 0 nbuckets 0;
    t.count <- 0
end
