module Counter = struct
  type t = { name : string; mutable v : int }

  let create name = { name; v = 0 }
  let name t = t.name
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let set t n = t.v <- n
  let value t = t.v
  let reset t = t.v <- 0
end

module Summary = struct
  type t = {
    name : string;
    mutable count : int;
    mutable sum : int;
    mutable min_v : int;
    mutable max_v : int;
  }

  let create name = { name; count = 0; sum = 0; min_v = 0; max_v = 0 }
  let name t = t.name

  let observe t s =
    if t.count = 0 then begin
      t.min_v <- s;
      t.max_v <- s
    end
    else begin
      if s < t.min_v then t.min_v <- s;
      if s > t.max_v then t.max_v <- s
    end;
    t.count <- t.count + 1;
    t.sum <- t.sum + s

  let count t = t.count
  let sum t = t.sum
  let min t = if t.count = 0 then None else Some t.min_v
  let max t = if t.count = 0 then None else Some t.max_v
  let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count

  let reset t =
    t.count <- 0;
    t.sum <- 0;
    t.min_v <- 0;
    t.max_v <- 0
end

module Histogram = struct
  let nbuckets = 63

  type t = { name : string; buckets : int array; mutable count : int }

  let create name = { name; buckets = Array.make nbuckets 0; count = 0 }
  let name t = t.name

  let bucket_of s =
    if s <= 0 then 0
    else
      (* index of highest set bit, plus one *)
      let rec go i v = if v = 0 then i else go (i + 1) (v lsr 1) in
      go 0 s

  let observe t s =
    let b = bucket_of s in
    t.buckets.(b) <- t.buckets.(b) + 1;
    t.count <- t.count + 1

  let count t = t.count

  let upper_bound i = if i = 0 then 1 else 1 lsl i

  let buckets t =
    let acc = ref [] in
    for i = nbuckets - 1 downto 0 do
      if t.buckets.(i) > 0 then acc := (upper_bound i, t.buckets.(i)) :: !acc
    done;
    !acc

  let percentile t p =
    if t.count = 0 then 0
    else begin
      let target = int_of_float (ceil (p /. 100. *. float_of_int t.count)) in
      let target = Stdlib.max 1 (Stdlib.min t.count target) in
      let seen = ref 0 in
      let result = ref 0 in
      (try
         for i = 0 to nbuckets - 1 do
           seen := !seen + t.buckets.(i);
           if !seen >= target then begin
             result := upper_bound i;
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end

  let reset t =
    Array.fill t.buckets 0 nbuckets 0;
    t.count <- 0
end

module Registry = struct
  type metric = C of Counter.t | S of Summary.t | H of Histogram.t

  type t = { tbl : (string, metric) Hashtbl.t }

  let create () = { tbl = Hashtbl.create 64 }

  let full_name ?node ~subsystem name =
    match node with
    | Some n -> Printf.sprintf "node%d/%s/%s" n subsystem name
    | None -> subsystem ^ "/" ^ name

  let mismatch key = invalid_arg (Printf.sprintf "Stats.Registry: %S registered with another type" key)

  let counter t ?node ~subsystem name =
    let key = full_name ?node ~subsystem name in
    match Hashtbl.find_opt t.tbl key with
    | Some (C c) -> c
    | Some _ -> mismatch key
    | None ->
        let c = Counter.create key in
        Hashtbl.replace t.tbl key (C c);
        c

  let summary t ?node ~subsystem name =
    let key = full_name ?node ~subsystem name in
    match Hashtbl.find_opt t.tbl key with
    | Some (S s) -> s
    | Some _ -> mismatch key
    | None ->
        let s = Summary.create key in
        Hashtbl.replace t.tbl key (S s);
        s

  let histogram t ?node ~subsystem name =
    let key = full_name ?node ~subsystem name in
    match Hashtbl.find_opt t.tbl key with
    | Some (H h) -> h
    | Some _ -> mismatch key
    | None ->
        let h = Histogram.create key in
        Hashtbl.replace t.tbl key (H h);
        h

  let size t = Hashtbl.length t.tbl

  let reset t =
    Hashtbl.iter
      (fun _ m ->
        match m with
        | C c -> Counter.reset c
        | S s -> Summary.reset s
        | H h -> Histogram.reset h)
      t.tbl

  (* ---------------- snapshots ---------------- *)

  type value =
    | Counter_v of int
    | Summary_v of { count : int; sum : int; min : int option; max : int option; mean : float }
    | Histogram_v of { count : int; buckets : (int * int) list }

  type snapshot = (string * value) list

  let snapshot t =
    Hashtbl.fold
      (fun key m acc ->
        let v =
          match m with
          | C c -> Counter_v (Counter.value c)
          | S s ->
              Summary_v
                {
                  count = Summary.count s;
                  sum = Summary.sum s;
                  min = Summary.min s;
                  max = Summary.max s;
                  mean = Summary.mean s;
                }
          | H h -> Histogram_v { count = Histogram.count h; buckets = Histogram.buckets h }
        in
        (key, v) :: acc)
      t.tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  (* [diff ~before ~after]: the metric movement between two snapshots.
     Counters and counts subtract; a summary's min/max and a histogram's
     buckets are taken from [after] (buckets subtract per upper bound).
     Metrics absent from [before] diff against zero. *)
  let diff ~before ~after =
    let prior = Hashtbl.create (List.length before) in
    List.iter (fun (k, v) -> Hashtbl.replace prior k v) before;
    List.map
      (fun (k, v) ->
        match (v, Hashtbl.find_opt prior k) with
        | Counter_v n, Some (Counter_v n0) -> (k, Counter_v (n - n0))
        | Summary_v s, Some (Summary_v s0) ->
            let count = s.count - s0.count and sum = s.sum - s0.sum in
            let mean = if count = 0 then 0. else float_of_int sum /. float_of_int count in
            (k, Summary_v { count; sum; min = s.min; max = s.max; mean })
        | Histogram_v h, Some (Histogram_v h0) ->
            let prior_buckets = h0.buckets in
            let buckets =
              List.filter_map
                (fun (ub, n) ->
                  let n0 = Option.value (List.assoc_opt ub prior_buckets) ~default:0 in
                  if n - n0 <> 0 then Some (ub, n - n0) else None)
                h.buckets
            in
            (k, Histogram_v { count = h.count - h0.count; buckets })
        | v, _ -> (k, v))
      after

  (* ---------------- JSON export ---------------- *)

  let json_escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let value_to_json = function
    | Counter_v n -> string_of_int n
    | Summary_v { count; sum; min; max; mean } ->
        let opt = function None -> "null" | Some n -> string_of_int n in
        Printf.sprintf "{\"count\":%d,\"sum\":%d,\"min\":%s,\"max\":%s,\"mean\":%.6g}" count sum
          (opt min) (opt max) mean
    | Histogram_v { count; buckets } ->
        Printf.sprintf "{\"count\":%d,\"buckets\":[%s]}" count
          (String.concat "," (List.map (fun (ub, n) -> Printf.sprintf "[%d,%d]" ub n) buckets))

  let snapshot_to_json snap =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (Printf.sprintf "  \"%s\": %s" (json_escape k) (value_to_json v)))
      snap;
    Buffer.add_string buf "\n}\n";
    Buffer.contents buf
end
