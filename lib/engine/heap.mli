(** Structure-of-arrays binary min-heap, specialised to integer-pair keys.

    Elements are ordered by [(key, seq)] lexicographically; [seq] is supplied
    by the caller to break ties deterministically (FIFO among equal keys).

    The ordering pair lives in unboxed [int array]s and the payloads in a
    parallel array, so {!add} and {!pop_min_value} allocate nothing — the
    engine's per-event hot path stays off the minor heap entirely. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val add : 'a t -> key:int -> seq:int -> 'a -> unit

(** [pop_min h] removes and returns the minimum element as [(key, seq, v)].
    Allocates the result tuple; hot paths that only need the payload should
    use {!min_key} + {!pop_min_value} instead.
    @raise Not_found if the heap is empty. *)
val pop_min : 'a t -> int * int * 'a

(** [pop_min_value h] removes the minimum element and returns its payload
    only, without allocating.
    @raise Not_found if the heap is empty. *)
val pop_min_value : 'a t -> 'a

(** [min_key h] is the key of the minimum element without removing it.
    @raise Not_found if the heap is empty. *)
val min_key : 'a t -> int

val clear : 'a t -> unit
