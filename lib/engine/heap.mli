(** Array-based binary min-heap, specialised to integer-pair keys.

    Elements are ordered by [(key, seq)] lexicographically; [seq] is supplied
    by the caller to break ties deterministically (FIFO among equal keys). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val add : 'a t -> key:int -> seq:int -> 'a -> unit

(** [pop_min h] removes and returns the minimum element.
    @raise Not_found if the heap is empty. *)
val pop_min : 'a t -> int * int * 'a

(** [min_key h] is the key of the minimum element without removing it.
    @raise Not_found if the heap is empty. *)
val min_key : 'a t -> int

val clear : 'a t -> unit
