(** Growable array (OCaml 5.1 predates [Dynarray]). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit

(** @raise Invalid_argument on out-of-bounds. *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit
val iter : ('a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val clear : 'a t -> unit
