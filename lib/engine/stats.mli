(** Statistics collection: counters, running summaries, log2 histograms. *)

module Counter : sig
  type t

  val create : string -> t
  val name : t -> string
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

module Summary : sig
  (** Running count / sum / min / max / mean of integer samples. *)
  type t

  val create : string -> t
  val name : t -> string
  val observe : t -> int -> unit
  val count : t -> int
  val sum : t -> int
  val min : t -> int (** 0 when empty *)

  val max : t -> int (** 0 when empty *)

  val mean : t -> float (** 0. when empty *)

  val reset : t -> unit
end

module Histogram : sig
  (** Power-of-two bucketed histogram of non-negative integer samples.
      Bucket [i] counts samples [s] with [2^(i-1) <= s < 2^i] (bucket 0
      counts zeros). *)
  type t

  val create : string -> t
  val name : t -> string
  val observe : t -> int -> unit
  val count : t -> int
  val buckets : t -> (int * int) list
  (** [(upper_bound_exclusive, count)] for non-empty buckets, ascending. *)

  val percentile : t -> float -> int
  (** Upper bound of the bucket holding the given percentile (in [0,100]). *)

  val reset : t -> unit
end
