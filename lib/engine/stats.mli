(** Statistics collection: counters, running summaries, log2 histograms, and
    a registry that names metrics per node/subsystem and exports machine-
    readable snapshots. *)

module Counter : sig
  type t

  val create : string -> t
  val name : t -> string
  val incr : t -> unit
  val add : t -> int -> unit

  val set : t -> int -> unit
  (** Overwrite the value (gauge semantics, e.g. a time total copied into the
      registry at snapshot time). *)

  val value : t -> int
  val reset : t -> unit
end

module Summary : sig
  (** Running count / sum / min / max / mean of integer samples. *)
  type t

  val create : string -> t
  val name : t -> string
  val observe : t -> int -> unit
  val count : t -> int
  val sum : t -> int

  val min : t -> int option
  (** [None] until a sample has been observed — a real observed 0 is
      distinguishable from "no samples". *)

  val max : t -> int option
  (** [None] until a sample has been observed. *)

  val mean : t -> float (** 0. when empty *)

  val reset : t -> unit
end

module Histogram : sig
  (** Power-of-two bucketed histogram of non-negative integer samples.
      Bucket [i] counts samples [s] with [2^(i-1) <= s < 2^i] (bucket 0
      counts zeros). *)
  type t

  val create : string -> t
  val name : t -> string
  val observe : t -> int -> unit
  val count : t -> int
  val buckets : t -> (int * int) list
  (** [(upper_bound_exclusive, count)] for non-empty buckets, ascending. *)

  val percentile : t -> float -> int
  (** Upper bound of the bucket holding the given percentile (in [0,100]). *)

  val reset : t -> unit
end

module Registry : sig
  (** A named collection of metrics. Names follow
      [node<N>/<subsystem>/<metric>] (or [<subsystem>/<metric>] without a
      node); [counter]/[summary]/[histogram] find-or-create, so subsystems
      can share a metric by name.

      Typically one registry per simulated cluster: independent runs do not
      share metric state. *)

  type t

  val create : unit -> t

  val counter : t -> ?node:int -> subsystem:string -> string -> Counter.t
  val summary : t -> ?node:int -> subsystem:string -> string -> Summary.t
  val histogram : t -> ?node:int -> subsystem:string -> string -> Histogram.t
  (** @raise Invalid_argument if the name is registered with another type. *)

  val size : t -> int
  (** Number of registered metrics. *)

  val reset : t -> unit
  (** Reset every registered metric. *)

  type value =
    | Counter_v of int
    | Summary_v of { count : int; sum : int; min : int option; max : int option; mean : float }
    | Histogram_v of { count : int; buckets : (int * int) list }

  type snapshot = (string * value) list
  (** Sorted by metric name. *)

  val snapshot : t -> snapshot

  val diff : before:snapshot -> after:snapshot -> snapshot
  (** Metric movement between two snapshots: counters and counts subtract;
      a summary's min/max and histogram buckets are taken from [after]
      (buckets subtract per upper bound). Metrics absent from [before] diff
      against zero. *)

  val value_to_json : value -> string

  val snapshot_to_json : snapshot -> string
  (** One JSON object: metric name -> value (counters as numbers, summaries
      and histograms as objects; empty min/max as [null]). *)
end
