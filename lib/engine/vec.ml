type 'a t = { mutable arr : 'a array; mutable len : int }

let create () = { arr = [||]; len = 0 }
let length t = t.len

let push t v =
  let cap = Array.length t.arr in
  if t.len = cap then begin
    let narr = Array.make (if cap = 0 then 8 else cap * 2) v in
    Array.blit t.arr 0 narr 0 t.len;
    t.arr <- narr
  end;
  t.arr.(t.len) <- v;
  t.len <- t.len + 1

let check t i = if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.arr.(i)

let set t i v =
  check t i;
  t.arr.(i) <- v

let iter f t =
  for i = 0 to t.len - 1 do
    f t.arr.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.arr.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.arr.(i))
let clear t = t.len <- 0
