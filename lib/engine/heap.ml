(* Structure-of-arrays binary min-heap: the (key, seq) ordering pair lives in
   two plain [int array]s and the payloads in a third array. Compared to the
   previous array-of-records layout this allocates nothing per element —
   [add] writes three immediate/pointer stores and the int-array stores skip
   the write barrier entirely — which matters because every simulated event
   passes through here exactly once. *)

type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable len : int;
}

(* Vacated and spare payload slots must not pin popped payloads against the
   GC: they are overwritten with this immediate dummy. The magic is safe
   because the dummy is never returned — only [vals.(i)] with [i < len] is
   ever read — and because [vals] is created with an immediate initial value
   it is always a uniform (non-flat-float) block, accessed through the
   generic polymorphic array primitives. *)
let dummy () : 'a = Obj.magic 0

let create () = { keys = [||]; seqs = [||]; vals = [||]; len = 0 }
let length h = h.len
let is_empty h = h.len = 0

let grow h =
  let cap = Array.length h.keys in
  if h.len = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let nkeys = Array.make ncap 0 in
    let nseqs = Array.make ncap 0 in
    let nvals = Array.make ncap (dummy ()) in
    Array.blit h.keys 0 nkeys 0 h.len;
    Array.blit h.seqs 0 nseqs 0 h.len;
    Array.blit h.vals 0 nvals 0 h.len;
    h.keys <- nkeys;
    h.seqs <- nseqs;
    h.vals <- nvals
  end

let add h ~key ~seq v =
  grow h;
  let keys = h.keys and seqs = h.seqs and vals = h.vals in
  h.len <- h.len + 1;
  (* sift up, moving a hole: parents slide down and the new element is
     written exactly once, at its final slot *)
  let i = ref (h.len - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if key < keys.(parent) || (key = keys.(parent) && seq < seqs.(parent)) then begin
      keys.(!i) <- keys.(parent);
      seqs.(!i) <- seqs.(parent);
      vals.(!i) <- vals.(parent);
      i := parent
    end
    else continue := false
  done;
  keys.(!i) <- key;
  seqs.(!i) <- seq;
  vals.(!i) <- v

let pop_min_value h =
  if h.len = 0 then raise Not_found;
  let keys = h.keys and seqs = h.seqs and vals = h.vals in
  let min_v = vals.(0) in
  let n = h.len - 1 in
  h.len <- n;
  if n = 0 then vals.(0) <- dummy ()
  else begin
    (* the last element becomes a hole-filling candidate: smaller children
       slide up and the candidate is written exactly once, where it lands *)
    let k = keys.(n) and s = seqs.(n) and v = vals.(n) in
    vals.(n) <- dummy ();
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < n && (keys.(r) < keys.(l) || (keys.(r) = keys.(l) && seqs.(r) < seqs.(l)))
          then r
          else l
        in
        if keys.(c) < k || (keys.(c) = k && seqs.(c) < s) then begin
          keys.(!i) <- keys.(c);
          seqs.(!i) <- seqs.(c);
          vals.(!i) <- vals.(c);
          i := c
        end
        else continue := false
      end
    done;
    keys.(!i) <- k;
    seqs.(!i) <- s;
    vals.(!i) <- v
  end;
  min_v

let pop_min h =
  if h.len = 0 then raise Not_found;
  let key = h.keys.(0) and seq = h.seqs.(0) in
  let v = pop_min_value h in
  (key, seq, v)

let min_key h = if h.len = 0 then raise Not_found else h.keys.(0)

(* Large heaps drop their backing stores outright; small ones just null the
   live payload prefix (spare slots already hold the dummy). *)
let clear h =
  if Array.length h.keys > 64 then begin
    h.keys <- [||];
    h.seqs <- [||];
    h.vals <- [||]
  end
  else Array.fill h.vals 0 h.len (dummy ());
  h.len <- 0
