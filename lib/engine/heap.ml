type 'a entry = { key : int; seq : int; v : 'a }

type 'a t = { mutable arr : 'a entry array; mutable len : int }

(* Vacated and spare slots must not pin popped payloads against the GC: they
   are overwritten with this shared sentinel. The magic is safe because the
   sentinel is never returned — only [arr.(i)] with [i < len] is ever read —
   and ['a entry] is a uniform (non-float) block for every ['a]. *)
let sentinel_entry : unit entry = { key = min_int; seq = min_int; v = () }
let sentinel () : 'a entry = Obj.magic sentinel_entry

let create () = { arr = [||]; len = 0 }
let length h = h.len
let is_empty h = h.len = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow h =
  let cap = Array.length h.arr in
  if h.len = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let narr = Array.make ncap (sentinel ()) in
    Array.blit h.arr 0 narr 0 h.len;
    h.arr <- narr
  end

let add h ~key ~seq v =
  let e = { key; seq; v } in
  grow h;
  let arr = h.arr in
  let i = ref h.len in
  h.len <- h.len + 1;
  arr.(!i) <- e;
  (* sift up *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less e arr.(parent) then begin
      arr.(!i) <- arr.(parent);
      arr.(parent) <- e;
      i := parent
    end
    else continue := false
  done

let pop_min h =
  if h.len = 0 then raise Not_found;
  let arr = h.arr in
  let min = arr.(0) in
  h.len <- h.len - 1;
  let last = arr.(h.len) in
  arr.(h.len) <- sentinel ();
  if h.len > 0 then begin
    arr.(0) <- last;
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && less arr.(l) arr.(!smallest) then smallest := l;
      if r < h.len && less arr.(r) arr.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = arr.(!i) in
        arr.(!i) <- arr.(!smallest);
        arr.(!smallest) <- tmp;
        i := !smallest
      end
      else continue := false
    done
  end;
  (min.key, min.seq, min.v)

let min_key h = if h.len = 0 then raise Not_found else h.arr.(0).key

(* Large heaps drop their backing store outright; small ones just null the
   live prefix (spare slots already hold the sentinel). *)
let clear h =
  if Array.length h.arr > 64 then h.arr <- [||] else Array.fill h.arr 0 h.len (sentinel ());
  h.len <- 0
