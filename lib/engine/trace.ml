let enabled = ref false

let printf eng fmt =
  if !enabled then begin
    Format.eprintf "[%a] " Time.pp (Engine.now eng);
    Format.kfprintf (fun f -> Format.pp_print_newline f ()) Format.err_formatter fmt
  end
  else Format.ifprintf Format.err_formatter fmt
