(* Structured tracing: a fixed-capacity ring buffer of typed records with
   per-category gating and human/JSONL/CSV sinks.

   The hot-path contract is that a disabled emit performs no allocation: all
   arguments are immediates or pre-existing strings, and the record is only
   constructed after the category check passes. *)

type category = Engine | Nic | Dsm | Atm | App

let categories = [ Engine; Nic; Dsm; Atm; App ]
let cat_index = function Engine -> 0 | Nic -> 1 | Dsm -> 2 | Atm -> 3 | App -> 4

let category_name = function
  | Engine -> "engine"
  | Nic -> "nic"
  | Dsm -> "dsm"
  | Atm -> "atm"
  | App -> "app"

let category_of_name = function
  | "engine" -> Some Engine
  | "nic" -> Some Nic
  | "dsm" -> Some Dsm
  | "atm" -> Some Atm
  | "app" -> Some App
  | _ -> None

type event = Point | Span_begin | Span_end

let event_name = function Point -> "point" | Span_begin -> "begin" | Span_end -> "end"

type record = {
  t_ps : int;
  node : int;
  category : category;
  event : event;
  label : string;
  payload : int;
}

(* ------------------------------------------------------------------ *)
(* Gating                                                              *)
(* ------------------------------------------------------------------ *)

let enabled = ref false
let all_mask = 0b11111
let mask = ref all_mask
let enabled_cat c = !enabled && !mask land (1 lsl cat_index c) <> 0

let enable ?(cats = categories) () =
  mask := List.fold_left (fun m c -> m lor (1 lsl cat_index c)) 0 cats;
  enabled := true

let disable () =
  enabled := false;
  mask := all_mask

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)
(* ------------------------------------------------------------------ *)

let default_capacity = 65536

let dummy =
  { t_ps = 0; node = -1; category = Engine; event = Point; label = ""; payload = 0 }

let cap = ref default_capacity
let buf : record array ref = ref [||]
let head = ref 0 (* next write index *)
let emitted_total = ref 0

let capacity () = !cap

let clear () =
  buf := [||];
  head := 0;
  emitted_total := 0

let set_capacity n =
  if n < 1 then invalid_arg "Trace.set_capacity: need a positive capacity";
  cap := n;
  clear ()

let length () = Stdlib.min !emitted_total !cap
let emitted () = !emitted_total
let dropped () = !emitted_total - length ()

let push r =
  if Array.length !buf = 0 then buf := Array.make !cap dummy;
  let b = !buf in
  b.(!head) <- r;
  head := (!head + 1) mod Array.length b;
  incr emitted_total

let record ~t_ps ~node cat ev ~label ~payload =
  if enabled_cat cat then
    push { t_ps; node; category = cat; event = ev; label; payload }

let emit ~t_ps ~node cat ~label ~payload = record ~t_ps ~node cat Point ~label ~payload
let span_begin ~t_ps ~node cat ~label ~payload = record ~t_ps ~node cat Span_begin ~label ~payload
let span_end ~t_ps ~node cat ~label ~payload = record ~t_ps ~node cat Span_end ~label ~payload

let iter f =
  let n = length () in
  if n > 0 then begin
    let b = !buf in
    let start = if !emitted_total <= !cap then 0 else !head in
    for i = 0 to n - 1 do
      f b.((start + i) mod Array.length b)
    done
  end

let records () =
  let acc = ref [] in
  iter (fun r -> acc := r :: !acc);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Span pairing                                                        *)
(* ------------------------------------------------------------------ *)

type span = {
  span_node : int;
  span_category : category;
  span_label : string;
  t_start_ps : int;
  duration_ps : int;
}

(* Pair each [Span_end] with the most recent unmatched [Span_begin] sharing
   (node, category, label); unmatched begins (still open when the buffer was
   read, or whose begin was overwritten) are ignored. *)
let spans () =
  let open_spans : (int * int * string, int list) Hashtbl.t = Hashtbl.create 64 in
  let acc = ref [] in
  iter (fun r ->
      let key = (r.node, cat_index r.category, r.label) in
      match r.event with
      | Point -> ()
      | Span_begin ->
          let stack = Option.value (Hashtbl.find_opt open_spans key) ~default:[] in
          Hashtbl.replace open_spans key (r.t_ps :: stack)
      | Span_end -> (
          match Hashtbl.find_opt open_spans key with
          | Some (t0 :: rest) ->
              Hashtbl.replace open_spans key rest;
              acc :=
                {
                  span_node = r.node;
                  span_category = r.category;
                  span_label = r.label;
                  t_start_ps = t0;
                  duration_ps = r.t_ps - t0;
                }
                :: !acc
          | Some [] | None -> ()));
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let pp_record fmt r =
  Format.fprintf fmt "[%a] n%d %s %s%s payload=%d" Time.pp (Time.ps r.t_ps) r.node
    (category_name r.category) r.label
    (match r.event with Point -> "" | Span_begin -> " begin" | Span_end -> " end")
    r.payload

let write_human oc =
  let fmt = Format.formatter_of_out_channel oc in
  iter (fun r -> Format.fprintf fmt "%a@." pp_record r)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_jsonl oc =
  iter (fun r ->
      Printf.fprintf oc
        "{\"t_ps\":%d,\"node\":%d,\"category\":\"%s\",\"event\":\"%s\",\"label\":\"%s\",\"payload\":%d}\n"
        r.t_ps r.node (category_name r.category) (event_name r.event) (json_escape r.label)
        r.payload)

let write_csv oc =
  output_string oc "t_ps,node,category,event,label,payload\n";
  iter (fun r ->
      Printf.fprintf oc "%d,%d,%s,%s,%s,%d\n" r.t_ps r.node (category_name r.category)
        (event_name r.event) r.label r.payload)

(* ------------------------------------------------------------------ *)
(* Legacy printf sink                                                  *)
(* ------------------------------------------------------------------ *)

let printf ~t_ps fmt =
  if !enabled then begin
    Format.eprintf "[%a] " Time.pp (Time.ps t_ps);
    Format.kfprintf (fun f -> Format.pp_print_newline f ()) Format.err_formatter fmt
  end
  else Format.ifprintf Format.err_formatter fmt
