(** Lightweight simulation tracing.

    Disabled by default; when enabled, each line is prefixed with the
    simulated time of the engine passed in. *)

val enabled : bool ref

val printf : Engine.t -> ('a, Format.formatter, unit) format -> 'a
(** No-op unless [!enabled]. *)
