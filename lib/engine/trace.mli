(** Structured simulation tracing.

    A fixed-capacity ring buffer of typed records, gated per category. At
    capacity the oldest records are overwritten (newest are always kept).
    Disabled by default; a disabled emit performs no allocation, so call
    sites may sit on simulation hot paths.

    The buffer is global: one simulation traces at a time (the simulator is
    single-threaded and deterministic). *)

type category = Engine | Nic | Dsm | Atm | App

val categories : category list
val category_name : category -> string
val category_of_name : string -> category option

type event = Point | Span_begin | Span_end

type record = {
  t_ps : int;  (** simulated time, picoseconds *)
  node : int;  (** -1 when not node-specific *)
  category : category;
  event : event;
  label : string;
  payload : int;
}

(** {2 Gating} *)

val enabled : bool ref
(** Master switch; also gates {!printf}. Prefer {!enable} / {!disable}. *)

val enable : ?cats:category list -> unit -> unit
(** Enable tracing for the given categories (default: all). *)

val disable : unit -> unit

val enabled_cat : category -> bool
(** True when tracing is on and the category is selected. Call sites that
    would allocate to build a label should test this first. *)

(** {2 Emission} *)

val emit : t_ps:int -> node:int -> category -> label:string -> payload:int -> unit
val span_begin : t_ps:int -> node:int -> category -> label:string -> payload:int -> unit
val span_end : t_ps:int -> node:int -> category -> label:string -> payload:int -> unit

(** {2 Buffer access} *)

val default_capacity : int

val set_capacity : int -> unit
(** Resize the ring buffer; clears it. *)

val capacity : unit -> int

val clear : unit -> unit

val length : unit -> int
(** Records currently held (at most [capacity ()]). *)

val emitted : unit -> int
(** Total records emitted since the last [clear], including overwritten. *)

val dropped : unit -> int
(** [emitted () - length ()]: oldest records lost to overwrite. *)

val iter : (record -> unit) -> unit
(** Oldest first. *)

val records : unit -> record list
(** Oldest first. *)

(** {2 Latency attribution} *)

type span = {
  span_node : int;
  span_category : category;
  span_label : string;
  t_start_ps : int;
  duration_ps : int;
}

val spans : unit -> span list
(** Pair [Span_end] records with the most recent unmatched [Span_begin] of
    the same (node, category, label), in completion order. *)

(** {2 Sinks} *)

val pp_record : Format.formatter -> record -> unit
val write_human : out_channel -> unit
val write_jsonl : out_channel -> unit
val write_csv : out_channel -> unit

(** {2 Legacy printf sink} *)

val printf : t_ps:int -> ('a, Format.formatter, unit) format -> 'a
(** Human-readable line on stderr prefixed with the simulated time; no-op
    unless [!enabled]. *)
