type t = int

let zero = 0
let ps n = n
let ns n = n * 1_000
let us n = n * 1_000_000
let ms n = n * 1_000_000_000
let s n = n * 1_000_000_000_000
let ( + ) = Stdlib.( + )
let ( - ) = Stdlib.( - )
let ( * ) = Stdlib.( * )
let max = Stdlib.max
let min = Stdlib.min
let to_ps t = t
let to_ns_float t = float_of_int t /. 1e3
let to_us_float t = float_of_int t /. 1e6
let to_ms_float t = float_of_int t /. 1e9
let to_s_float t = float_of_int t /. 1e12

let cycle_ps ~hz =
  (* Round to nearest picosecond; at 166 MHz this is 6024 ps (0.0066% off),
     which is far below the fidelity of the cost model. *)
  (1_000_000_000_000 + (hz / 2)) / hz

let cycles ~hz n = Stdlib.( * ) n (cycle_ps ~hz)

let pp fmt t =
  if t >= s 1 then Format.fprintf fmt "%.3fs" (to_s_float t)
  else if t >= ms 1 then Format.fprintf fmt "%.3fms" (to_ms_float t)
  else if t >= us 1 then Format.fprintf fmt "%.3fus" (to_us_float t)
  else if t >= ns 1 then Format.fprintf fmt "%.1fns" (to_ns_float t)
  else Format.fprintf fmt "%dps" t
