type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let s = int64 t in
  { state = mix s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits: OCaml's native int holds 63 including sign, so shifting by
     only one would wrap large values negative *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t =
  let v = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
