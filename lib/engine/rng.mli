(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic choice in the simulator draws from an explicit [Rng.t]
    so that runs are reproducible from a seed, independent of the global
    [Random] state. *)

type t

val create : seed:int -> t

(** [split t] derives an independent stream (e.g. one per simulated node). *)
val split : t -> t

val int64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)
val int : t -> int -> int

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

val bool : t -> bool

(** Fisher-Yates shuffle in place. *)
val shuffle : t -> 'a array -> unit
