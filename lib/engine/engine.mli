(** Deterministic discrete-event simulation engine.

    The engine owns a virtual clock and a priority queue of events; ties are
    broken in FIFO order so runs are fully deterministic. Simulated processes
    ("fibers") are ordinary OCaml functions that perform effects ({!delay},
    {!suspend}, {!yield}) handled by the engine — OCaml 5 effect handlers give
    us cheap one-shot continuations, the same role Proteus' threads played in
    the paper's evaluation. *)

type t

val create : unit -> t

(** Current simulated time. *)
val now : t -> Time.t

(** Counters accumulated over the engine's lifetime (never reset). *)
type run_stats = {
  events_dispatched : int;  (** events popped and executed so far *)
  max_heap_depth : int;  (** high-water mark of the pending-event queue *)
  past_clamps : int;
      (** [at] calls whose requested time lay in the past and was clamped to
          [now] — nonzero values usually indicate a protocol bug in the
          caller (see {!at}) *)
}

val run_stats : t -> run_stats

(** [at t time f] schedules [f] to run at absolute [time] (>= [now t]).
    A [time] earlier than [now t] is clamped to [now t] (time never runs
    backwards); each clamp increments {!run_stats}[.past_clamps] and, when
    the [Engine] trace category is enabled, emits a ["past-clamp"] record
    whose payload is the clamped distance in picoseconds. *)
val at : t -> Time.t -> (unit -> unit) -> unit

(** [after t d f] schedules [f] to run [d] after the current time. *)
val after : t -> Time.t -> (unit -> unit) -> unit

(** Number of pending events (including suspended-fiber wakeups). *)
val pending : t -> int

(** Run until the event queue is empty. *)
val run : t -> unit

(** Run all events with time <= [limit]; afterwards [now t >= limit] if any
    event at or beyond the limit existed, else [now] is the last event time. *)
val run_until : t -> Time.t -> unit

(** Raised by {!run_watched} when events remain past the limit: the
    simulation is still making "progress" (self-rearming timers, a livelocked
    retry loop) but never drains. A printer is registered. *)
exception
  Quiescence_timeout of { limit : Time.t; now : Time.t; pending : int }

(** [run_watched t ~limit] is a quiescence watchdog around {!run_until}:
    it runs every event up to [limit] and raises {!Quiescence_timeout} if
    the queue is still non-empty afterwards, turning a would-be hang into a
    diagnosable failure. (An {e empty} queue with unfinished fibers is the
    caller's deadlock to detect — the engine cannot see suspended fibers.) *)
val run_watched : t -> limit:Time.t -> unit

(** {2 Fibers}

    The functions below must be called from inside a fiber spawned with
    {!spawn} (directly or transitively); calling them elsewhere raises
    [Effect.Unhandled]. *)

(** [spawn t f] creates a simulated process running [f], started at the
    current simulated time. An exception escaping [f] aborts the whole
    simulation (it propagates out of {!run}), annotated with the fiber name. *)
val spawn : t -> ?name:string -> (unit -> unit) -> unit

(** Advance this fiber's virtual time by the given duration. *)
val delay : Time.t -> unit

(** [suspend register] blocks the calling fiber; [register] receives a
    one-shot [resume] function which, when called (from any event context),
    reschedules the fiber at the then-current simulated time with the given
    value. Calling [resume] twice raises [Invalid_argument]. *)
val suspend : (('a -> unit) -> unit) -> 'a

(** Reschedule the calling fiber at the current time, behind already-pending
    events. *)
val yield : unit -> unit

(** Exception escaping a fiber, annotated with the fiber name. *)
exception Fiber_failure of string * exn
