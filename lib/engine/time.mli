(** Simulated time.

    Time is an absolute count of picoseconds since the start of the
    simulation, stored in an OCaml [int] (63-bit on 64-bit platforms, i.e.
    about 106 days of simulated time — far beyond any experiment here).
    Durations use the same representation. *)

type t = int

val zero : t
val ps : int -> t
val ns : int -> t
val us : int -> t
val ms : int -> t
val s : int -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> int -> t

val max : t -> t -> t
val min : t -> t -> t

val to_ps : t -> int
val to_ns_float : t -> float
val to_us_float : t -> float
val to_ms_float : t -> float
val to_s_float : t -> float

(** [cycles ~hz n] is the duration of [n] clock cycles of a component running
    at [hz] hertz, rounded to the nearest picosecond per cycle. *)
val cycles : hz:int -> int -> t

(** [cycle_ps ~hz] is the duration of one cycle at [hz] hertz. *)
val cycle_ps : hz:int -> t

val pp : Format.formatter -> t -> unit
