(** Synchronisation primitives for simulated fibers.

    All blocking operations must run inside a fiber ({!Engine.spawn}).
    Non-blocking operations ([fill], [send], [release], ...) may be called
    from any event context. *)

module Ivar : sig
  (** Write-once cell. *)
  type 'a t

  val create : unit -> 'a t
  val is_filled : 'a t -> bool

  (** Blocks until the ivar is filled; returns immediately if it already is. *)
  val read : 'a t -> 'a

  (** @raise Invalid_argument if already filled. *)
  val fill : 'a t -> 'a -> unit

  (** [peek t] is [Some v] if filled. *)
  val peek : 'a t -> 'a option
end

module Channel : sig
  (** Unbounded FIFO mailbox. *)
  type 'a t

  val create : unit -> 'a t
  val send : 'a t -> 'a -> unit

  (** Blocks until a value is available. *)
  val recv : 'a t -> 'a

  val try_recv : 'a t -> 'a option
  val length : 'a t -> int
end

module Semaphore : sig
  (** Counting semaphore with FIFO wakeup order. *)
  type t

  val create : int -> t

  (** Blocks while the count is zero; decrements. *)
  val acquire : t -> unit

  val try_acquire : t -> bool
  val release : t -> unit
  val available : t -> int
  val waiting : t -> int
end

module Mutex : sig
  type t

  val create : unit -> t
  val lock : t -> unit
  val unlock : t -> unit

  (** [with_lock t f] runs [f] holding the lock, releasing it on return. *)
  val with_lock : t -> (unit -> 'a) -> 'a
end

module Condition : sig
  (** Broadcast-style condition: [await] blocks until the next [signal_all]. *)
  type t

  val create : unit -> t
  val await : t -> unit
  val signal_all : t -> unit
  val waiting : t -> int
end
