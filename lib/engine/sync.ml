module Ivar = struct
  type 'a state = Empty of ('a -> unit) Queue.t | Full of 'a
  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty (Queue.create ()) }

  let is_filled t = match t.state with Full _ -> true | Empty _ -> false

  let read t =
    match t.state with
    | Full v -> v
    | Empty waiters -> Engine.suspend (fun resume -> Queue.add resume waiters)

  let fill t v =
    match t.state with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty waiters ->
        t.state <- Full v;
        Queue.iter (fun resume -> resume v) waiters

  let peek t = match t.state with Full v -> Some v | Empty _ -> None
end

module Channel = struct
  type 'a t = { values : 'a Queue.t; waiters : ('a -> unit) Queue.t }

  let create () = { values = Queue.create (); waiters = Queue.create () }

  let send t v =
    match Queue.take_opt t.waiters with
    | Some resume -> resume v
    | None -> Queue.add v t.values

  let recv t =
    match Queue.take_opt t.values with
    | Some v -> v
    | None -> Engine.suspend (fun resume -> Queue.add resume t.waiters)

  let try_recv t = Queue.take_opt t.values
  let length t = Queue.length t.values
end

module Semaphore = struct
  type t = { mutable count : int; waiters : (unit -> unit) Queue.t }

  let create count =
    if count < 0 then invalid_arg "Semaphore.create: negative count";
    { count; waiters = Queue.create () }

  let acquire t =
    if t.count > 0 then t.count <- t.count - 1
    else Engine.suspend (fun resume -> Queue.add resume t.waiters)

  let try_acquire t =
    if t.count > 0 then begin
      t.count <- t.count - 1;
      true
    end
    else false

  let release t =
    match Queue.take_opt t.waiters with
    | Some resume -> resume ()
    | None -> t.count <- t.count + 1

  let available t = t.count
  let waiting t = Queue.length t.waiters
end

module Mutex = struct
  type t = Semaphore.t

  let create () = Semaphore.create 1
  let lock = Semaphore.acquire
  let unlock = Semaphore.release

  let with_lock t f =
    lock t;
    match f () with
    | v ->
        unlock t;
        v
    | exception e ->
        unlock t;
        raise e
end

module Condition = struct
  type t = { mutable waiters : (unit -> unit) Queue.t }

  let create () = { waiters = Queue.create () }

  let await t = Engine.suspend (fun resume -> Queue.add resume t.waiters)

  let signal_all t =
    let q = t.waiters in
    t.waiters <- Queue.create ();
    Queue.iter (fun resume -> resume ()) q

  let waiting t = Queue.length t.waiters
end
