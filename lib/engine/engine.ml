type run_stats = {
  events_dispatched : int;
  max_heap_depth : int;
  past_clamps : int;
}

type t = {
  mutable now : Time.t;
  q : (unit -> unit) Heap.t;
  mutable seq : int;
  mutable dispatched : int;
  mutable max_depth : int;
  mutable clamped : int;
}

exception Fiber_failure of string * exn

let create () =
  { now = Time.zero; q = Heap.create (); seq = 0; dispatched = 0; max_depth = 0; clamped = 0 }

let now t = t.now

let run_stats t =
  { events_dispatched = t.dispatched; max_heap_depth = t.max_depth; past_clamps = t.clamped }

let at t time f =
  (* Scheduling into the past is clamped to [now] so time never runs
     backwards, but silently losing the requested time hides protocol bugs:
     count every clamp and leave a trace record of how far back the caller
     aimed. *)
  let time =
    if time < t.now then begin
      t.clamped <- t.clamped + 1;
      if Trace.enabled_cat Trace.Engine then
        Trace.emit ~t_ps:(Time.to_ps t.now) ~node:(-1) Trace.Engine ~label:"past-clamp"
          ~payload:(Time.to_ps t.now - Time.to_ps time);
      t.now
    end
    else time
  in
  let seq = t.seq in
  t.seq <- seq + 1;
  Heap.add t.q ~key:(Time.to_ps time) ~seq f;
  let depth = Heap.length t.q in
  if depth > t.max_depth then t.max_depth <- depth

let after t d f = at t Time.(t.now + d) f
let pending t = Heap.length t.q

let step t =
  let key = Heap.min_key t.q in
  let f = Heap.pop_min_value t.q in
  t.now <- Time.ps key;
  t.dispatched <- t.dispatched + 1;
  if Trace.enabled_cat Trace.Engine then
    Trace.emit ~t_ps:key ~node:(-1) Trace.Engine ~label:"event" ~payload:(Heap.length t.q);
  f ()

let run t =
  while not (Heap.is_empty t.q) do
    step t
  done

let run_until t limit =
  while (not (Heap.is_empty t.q)) && Heap.min_key t.q <= Time.to_ps limit do
    step t
  done

exception
  Quiescence_timeout of { limit : Time.t; now : Time.t; pending : int }

let () =
  Printexc.register_printer (function
    | Quiescence_timeout { limit; now; pending } ->
        Some
          (Printf.sprintf
             "Engine.Quiescence_timeout: %d event(s) still pending past the \
              %.3f us watchdog limit (last dispatched event at %.3f us)"
             pending (Time.to_us_float limit) (Time.to_us_float now))
    | _ -> None)

let run_watched t ~limit =
  run_until t limit;
  if not (Heap.is_empty t.q) then
    raise (Quiescence_timeout { limit; now = t.now; pending = Heap.length t.q })

(* ------------------------------------------------------------------ *)
(* Fibers                                                             *)
(* ------------------------------------------------------------------ *)

type _ Effect.t +=
  | Delay : Time.t -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Yield : unit Effect.t

let delay d = Effect.perform (Delay d)
let suspend register = Effect.perform (Suspend register)
let yield () = Effect.perform Yield

let spawn t ?(name = "fiber") f =
  let open Effect.Deep in
  let handler =
    {
      retc = (fun () -> ());
      exnc =
        (fun e ->
          match e with
          | Fiber_failure _ -> raise e
          | _ -> raise (Fiber_failure (name ^ ": " ^ Printexc.to_string e, e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay d ->
              Some
                (fun (k : (a, unit) continuation) ->
                  after t d (fun () -> continue k ()))
          | Yield ->
              Some (fun (k : (a, unit) continuation) -> at t t.now (fun () -> continue k ()))
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let resumed = ref false in
                  let resume v =
                    if !resumed then
                      invalid_arg (Printf.sprintf "Engine: fiber %S resumed twice" name);
                    resumed := true;
                    at t t.now (fun () -> continue k v)
                  in
                  register resume)
          | _ -> None);
    }
  in
  at t t.now (fun () -> match_with f () handler)
