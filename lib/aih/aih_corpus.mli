(** The shipped verifier corpus: small firmware programs the
    [cni_sim aih-verify] smoke test (and CI) runs {!Aih_verify.verify}
    over. [good] programs exercise the proofs the verifier must be able to
    complete — bounded loops, mask- and branch-established address bounds,
    relocated segment addressing, nesting, and the streaming header/payload
    handler kinds (view loads, per-activation scratch, chunk loops bounded
    by the declared payload); [bad] programs each violate one admission
    rule and carry the {!Aih_verify.reason_name} tag the verifier must
    reject them with. The streaming entries assume verification runs with
    [cell_budget] set to the default-link line-rate budget: [line-rate-bomb]
    is safety-clean but must be refused admission at 622 Mb/s. *)

(** Programs the verifier must accept, with a short description. *)
val good : (string * Aih_ir.program) list

(** Programs the verifier must reject: name, expected
    {!Aih_verify.reason_name}, program. *)
val bad : (string * string * Aih_ir.program) list
