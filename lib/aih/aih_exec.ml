open Aih_ir

type services = {
  sv_send : dst:int -> kind:int -> obj:int -> value:int -> unit;
  sv_wake : seq:int -> value:int -> unit;
  sv_charge : int -> unit;
}

exception Fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

let eval_cmp c a b =
  match c with Eq -> a = b | Ne -> a <> b | Lt -> a < b | Le -> a <= b | Gt -> a > b | Ge -> a >= b

let eval_bin pc op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then fault "pc=%d: division by zero" pc else a / b
  | Rem -> if b = 0 then fault "pc=%d: division by zero" pc else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> if b < 0 || b > 62 then fault "pc=%d: shift count %d" pc b else a lsl b
  | Shr -> if b < 0 || b > 62 then fault "pc=%d: shift count %d" pc b else a asr b

let run ?(fuel = 1_000_000) ?(view = [||]) p ~mem ~inputs services =
  if Array.length mem < p.seg_words then
    fault "segment of %d words is smaller than the program's %d" (Array.length mem) p.seg_words;
  let n = Array.length p.code in
  let regs = Array.make nregs 0 in
  Array.blit inputs 0 regs 0 (min (Array.length inputs) nregs);
  (* per-activation scratch: fresh zeroed SRAM every run, nothing persists *)
  let scratch = Array.make p.scratch_words 0 in
  let pending = ref 0 and total = ref 0 in
  let flush () =
    if !pending > 0 then begin
      services.sv_charge !pending;
      total := !total + !pending;
      pending := 0
    end
  in
  let addr pc base off =
    let a = regs.(base) + off in
    if a < 0 || a >= p.seg_words then fault "pc=%d: address %d outside segment of %d words" pc a p.seg_words;
    a
  in
  let pc = ref 0 and steps = ref 0 and running = ref true in
  while !running do
    if !pc < 0 || !pc >= n then fault "pc=%d: outside the program" !pc;
    if !steps >= fuel then fault "fuel of %d instructions exhausted" fuel;
    incr steps;
    let at = !pc in
    let i = p.code.(at) in
    pending := !pending + instr_cycles i;
    match i with
    | Const (rd, v) ->
        regs.(rd) <- v;
        incr pc
    | Mov (rd, rs) ->
        regs.(rd) <- regs.(rs);
        incr pc
    | Bin (op, rd, rs, rt) ->
        regs.(rd) <- eval_bin at op regs.(rs) regs.(rt);
        incr pc
    | Bini (op, rd, rs, imm) ->
        regs.(rd) <- eval_bin at op regs.(rs) imm;
        incr pc
    | Load (rd, rs, off) ->
        regs.(rd) <- mem.(addr at rs off);
        incr pc
    | Store (rsrc, rbase, off) ->
        mem.(addr at rbase off) <- regs.(rsrc);
        incr pc
    | Ldv (rd, rs, off) ->
        let a = regs.(rs) + off in
        if a < 0 || a >= Array.length view then
          fault "pc=%d: view address %d outside %d words" at a (Array.length view);
        regs.(rd) <- view.(a);
        incr pc
    | Lds (rd, rs, off) ->
        let a = regs.(rs) + off in
        if a < 0 || a >= p.scratch_words then
          fault "pc=%d: scratch address %d outside %d words" at a p.scratch_words;
        regs.(rd) <- scratch.(a);
        incr pc
    | Sts (rsrc, rbase, off) ->
        let a = regs.(rbase) + off in
        if a < 0 || a >= p.scratch_words then
          fault "pc=%d: scratch address %d outside %d words" at a p.scratch_words;
        scratch.(a) <- regs.(rsrc);
        incr pc
    | Br (c, rs, rt, tgt) -> if eval_cmp c regs.(rs) regs.(rt) then pc := tgt else incr pc
    | Bri (c, rs, imm, tgt) -> if eval_cmp c regs.(rs) imm then pc := tgt else incr pc
    | Jmp tgt -> pc := tgt
    | Loop { counter; limit; exit } ->
        if regs.(counter) >= limit then pc := exit
        else begin
          regs.(counter) <- regs.(counter) + 1;
          incr pc
        end
    | Send { dst; kind; obj; value } ->
        flush ();
        services.sv_send ~dst:regs.(dst) ~kind:regs.(kind) ~obj:regs.(obj) ~value:regs.(value);
        incr pc
    | Wake { seq; value } ->
        flush ();
        services.sv_wake ~seq:regs.(seq) ~value:regs.(value);
        incr pc
    | Halt ->
        flush ();
        running := false
  done;
  !total
