(** Install-time static verification of AIH firmware.

    [verify] decides whether an {!Aih_ir.program} may be admitted onto the
    board, without running it. The proof obligations mirror the paper's
    admission contract for handlers ("pointer-safe, relocatable object
    code", section 2.3) plus the bound a shared protocol processor needs:

    - {b Pointer safety} — abstract interpretation over an interval domain
      proves every [Load]/[Store] address lies inside the handler's own
      board segment, whatever values the (untrusted) activation inputs
      take. A handler that could dereference a host address or write
      another handler's segment is rejected, not sandboxed.
    - {b Relocatability} — the relocation table must name in-range [Const]
      instructions whose immediates are in-segment word addresses; nothing
      else may be rebased.
    - {b Definite initialization} — no instruction may read a register
      that some path leaves unwritten.
    - {b Termination and cycle bound} — back edges are admitted only when
      they target an {!Aih_ir.instr} [Loop] header, loop regions must nest
      properly, may not be jumped into, and may not write their own
      counter, so every activation executes at most [wcet_nic_cycles]
      cycles — the certificate the NIC can schedule against.

    Division and shift get the same treatment: a possibly-zero divisor or
    an out-of-range shift count is an install-time rejection, never a board
    fault. *)

(** A closed integer interval (the abstract value of an initialized
    register). *)
type interval = { lo : int; hi : int }

(** Why a program was rejected. Constructors carry the offending register,
    target or address range. *)
type reason =
  | Program_empty
  | Program_too_long of int
  | Bad_segment of int  (** [seg_words] outside [0 .. 65536] *)
  | Bad_inputs of int  (** declared input count outside [0 .. nregs] *)
  | Bad_register of Aih_ir.reg
  | Bad_branch_target of int
  | Falls_off_end
  | Bad_relocation of int  (** the relocation entry (a pc) that is invalid *)
  | Immediate_too_wide of int
  | Unbounded_back_edge of int  (** back edge to a non-[Loop] target *)
  | Improper_loop_nesting of int  (** header of the region that overlaps another *)
  | Jump_into_loop of int  (** target inside a loop region entered sideways *)
  | Loop_bound_invalid of int  (** static limit outside [1 .. 65535] *)
  | Loop_counter_clobbered of Aih_ir.reg  (** body writes the loop counter *)
  | Loop_counter_negative of Aih_ir.reg  (** counter may enter below zero *)
  | Uninitialized_register of Aih_ir.reg
  | Load_out_of_segment of interval  (** possible address range of the load *)
  | Store_out_of_segment of interval  (** possible address range of the store *)
  | Division_by_zero  (** divisor interval contains zero *)
  | Shift_out_of_range  (** shift count may leave [0 .. 62] *)
  | Wcet_exceeded of int  (** the computed bound, above [max_wcet] *)
  | Bad_stream_decl of int
      (** a streaming declaration is out of range: view/chunk words outside
          [1 .. 16], max chunks outside [1 .. 65535], scratch outside
          [0 .. 65536], or a payload handler with fewer than 2 inputs *)
  | View_out_of_bounds of interval  (** [Ldv] may read past the declared view *)
  | Scratch_out_of_bounds of interval  (** [Lds]/[Sts] may leave the scratch segment *)
  | Line_rate_exceeded of { budget : int; wcet : int }
      (** the streaming activation bound misses the per-cell cycle budget at
          the configured link rate; the margin is [wcet - budget] *)

(** The structured diagnostic: where verification failed, why, and the
    abstract register state at that pc ([rj_regs] renders each register as
    an interval, [T] for unconstrained, [?] for possibly-uninitialized). *)
type reject = { rj_pc : int; rj_reason : reason; rj_regs : string }

(** The certificate an accepted program installs under: its honest object
    size ({!Aih_ir.code_bytes}), the worst-case NIC cycles any single
    activation can cost, and — for streaming handlers — the worst-case cost
    per wire byte in milli-cycles ([ceil (1000 * wcet / bytes)] over
    {!Aih_ir.bytes_per_activation}; 0 for episode handlers, which have no
    per-packet obligation). The per-byte bound is what line-rate admission
    compares against the link. *)
type cert = { code_bytes : int; wcet_nic_cycles : int; wcet_per_byte_milli : int }

(** Stable kebab-case tag for a rejection class (corpus tests match on
    it), e.g. ["out-of-segment-store"]. *)
val reason_name : reason -> string

val pp_reason : Format.formatter -> reason -> unit

(** One-line rendering of a {!reject} (pc, reason, abstract state). *)
val explain : reject -> string

(** All rejections on one line, ["; "]-separated. *)
val explain_all : reject list -> string

(** [verify ?max_wcet ?cell_budget p] returns the certificate or every
    independent rejection found (program order; structural violations are
    all collected before the loop/interpretation phases run, which need a
    well-formed program). [max_wcet] (default 200_000 NIC cycles, ~6 ms of
    33 MHz board time) caps how long one activation may monopolize the
    protocol processor. [cell_budget] — NIC cycles available per streaming
    activation at line rate, typically [Params.line_rate_budget] — enables
    admission control: a header/payload handler whose WCET exceeds it is
    rejected with {!Line_rate_exceeded}. Episode handlers ignore
    [cell_budget]. *)
val verify : ?max_wcet:int -> ?cell_budget:int -> Aih_ir.program -> (cert, reject list) result
