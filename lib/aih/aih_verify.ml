open Aih_ir

type interval = { lo : int; hi : int }

type reason =
  | Program_empty
  | Program_too_long of int
  | Bad_segment of int
  | Bad_inputs of int
  | Bad_register of reg
  | Bad_branch_target of int
  | Falls_off_end
  | Bad_relocation of int
  | Immediate_too_wide of int
  | Unbounded_back_edge of int
  | Improper_loop_nesting of int
  | Jump_into_loop of int
  | Loop_bound_invalid of int
  | Loop_counter_clobbered of reg
  | Loop_counter_negative of reg
  | Uninitialized_register of reg
  | Load_out_of_segment of interval
  | Store_out_of_segment of interval
  | Division_by_zero
  | Shift_out_of_range
  | Wcet_exceeded of int
  | Bad_stream_decl of int
  | View_out_of_bounds of interval
  | Scratch_out_of_bounds of interval
  | Line_rate_exceeded of { budget : int; wcet : int }

type reject = { rj_pc : int; rj_reason : reason; rj_regs : string }
type cert = { code_bytes : int; wcet_nic_cycles : int; wcet_per_byte_milli : int }

let reason_name = function
  | Program_empty -> "program-empty"
  | Program_too_long _ -> "program-too-long"
  | Bad_segment _ -> "bad-segment"
  | Bad_inputs _ -> "bad-inputs"
  | Bad_register _ -> "bad-register"
  | Bad_branch_target _ -> "bad-branch-target"
  | Falls_off_end -> "falls-off-end"
  | Bad_relocation _ -> "bad-relocation"
  | Immediate_too_wide _ -> "immediate-too-wide"
  | Unbounded_back_edge _ -> "unbounded-back-edge"
  | Improper_loop_nesting _ -> "improper-loop-nesting"
  | Jump_into_loop _ -> "jump-into-loop"
  | Loop_bound_invalid _ -> "loop-bound-invalid"
  | Loop_counter_clobbered _ -> "loop-counter-clobbered"
  | Loop_counter_negative _ -> "loop-counter-negative"
  | Uninitialized_register _ -> "uninitialized-register"
  | Load_out_of_segment _ -> "out-of-segment-load"
  | Store_out_of_segment _ -> "out-of-segment-store"
  | Division_by_zero -> "division-by-zero"
  | Shift_out_of_range -> "shift-out-of-range"
  | Wcet_exceeded _ -> "wcet-exceeded"
  | Bad_stream_decl _ -> "bad-stream-decl"
  | View_out_of_bounds _ -> "out-of-view-load"
  | Scratch_out_of_bounds _ -> "out-of-scratch"
  | Line_rate_exceeded _ -> "line-rate-exceeded"

let pp_reason fmt r =
  match r with
  | Program_empty -> Format.fprintf fmt "program has no instructions"
  | Program_too_long n -> Format.fprintf fmt "program of %d instructions exceeds the 4096 cap" n
  | Bad_segment w -> Format.fprintf fmt "segment of %d words outside 0..65536" w
  | Bad_inputs n -> Format.fprintf fmt "declared input count %d outside 0..%d" n nregs
  | Bad_register r -> Format.fprintf fmt "register r%d does not exist" r
  | Bad_branch_target t -> Format.fprintf fmt "branch target %d outside the program" t
  | Falls_off_end -> Format.fprintf fmt "control can fall off the end of the program"
  | Bad_relocation pc -> Format.fprintf fmt "relocation entry %d is not an in-segment Const" pc
  | Immediate_too_wide v -> Format.fprintf fmt "immediate %d does not fit a 32-bit field" v
  | Unbounded_back_edge t -> Format.fprintf fmt "back edge to %d, which is not a Loop header" t
  | Improper_loop_nesting h -> Format.fprintf fmt "loop region at %d overlaps another region" h
  | Jump_into_loop t -> Format.fprintf fmt "jump into the middle of the loop body at %d" t
  | Loop_bound_invalid l -> Format.fprintf fmt "loop limit %d outside 1..65535" l
  | Loop_counter_clobbered r -> Format.fprintf fmt "loop body writes its own counter r%d" r
  | Loop_counter_negative r -> Format.fprintf fmt "loop counter r%d may enter below zero" r
  | Uninitialized_register r -> Format.fprintf fmt "reads r%d, which may be uninitialized" r
  | Load_out_of_segment i -> Format.fprintf fmt "load address may reach [%d,%d]" i.lo i.hi
  | Store_out_of_segment i -> Format.fprintf fmt "store address may reach [%d,%d]" i.lo i.hi
  | Division_by_zero -> Format.fprintf fmt "divisor may be zero"
  | Shift_out_of_range -> Format.fprintf fmt "shift count may leave 0..62"
  | Wcet_exceeded w -> Format.fprintf fmt "worst case of %d NIC cycles exceeds the budget" w
  | Bad_stream_decl v -> Format.fprintf fmt "streaming declaration value %d is out of range" v
  | View_out_of_bounds i -> Format.fprintf fmt "view load may reach [%d,%d]" i.lo i.hi
  | Scratch_out_of_bounds i -> Format.fprintf fmt "scratch access may reach [%d,%d]" i.lo i.hi
  | Line_rate_exceeded { budget; wcet } ->
      Format.fprintf fmt
        "activation worst case of %d NIC cycles misses the line-rate budget of %d by %d" wcet
        budget (wcet - budget)

let explain rj =
  Format.asprintf "pc=%d (%s): %a; regs: %s" rj.rj_pc (reason_name rj.rj_reason) pp_reason
    rj.rj_reason rj.rj_regs

let explain_all rjs = String.concat "; " (List.map explain rjs)

(* ------------------------------------------------------------------ *)
(* Interval domain                                                     *)
(* ------------------------------------------------------------------ *)

(* Bot = possibly-uninitialized (join-absorbing: a register only counts as
   written when every path wrote it). *)
type aval = Bot | Iv of interval

(* Saturation bounds well clear of both 32-bit immediates and segment
   sizes; arithmetic clamps here so widened states stay finite. *)
let wmin = -(1 lsl 40)
let wmax = 1 lsl 40
let sat v = if v < wmin then wmin else if v > wmax then wmax else v
let iv lo hi = Iv { lo; hi }
let top = { lo = wmin; hi = wmax }

let mul_sat a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a then if a > 0 = (b > 0) then wmax else wmin else sat p

let of4 a b c d = iv (min (min a b) (min c d)) (max (max a b) (max c d))

(* smallest 2^k - 1 >= v (v >= 0): the bit-mask upper bound for or/xor *)
let ceil_mask v =
  let rec go m = if m >= v then m else go ((m * 2) + 1) in
  go 0

let shl_one x s = mul_sat x (1 lsl s)

exception Rej of int * reason (* pc, reason *)

let binop_iv pc op x y =
  match op with
  | Add -> iv (sat (x.lo + y.lo)) (sat (x.hi + y.hi))
  | Sub -> iv (sat (x.lo - y.hi)) (sat (x.hi - y.lo))
  | Mul -> of4 (mul_sat x.lo y.lo) (mul_sat x.lo y.hi) (mul_sat x.hi y.lo) (mul_sat x.hi y.hi)
  | Div ->
      if y.lo <= 0 && y.hi >= 0 then raise (Rej (pc, Division_by_zero));
      of4 (x.lo / y.lo) (x.lo / y.hi) (x.hi / y.lo) (x.hi / y.hi)
  | Rem ->
      if y.lo <= 0 && y.hi >= 0 then raise (Rej (pc, Division_by_zero));
      (* |x rem y| <= min (|y| - 1) |x|; sign follows the dividend *)
      let m = max (abs y.lo) (abs y.hi) - 1 in
      let mag = min m (max (abs x.lo) (abs x.hi)) in
      iv (if x.lo >= 0 then 0 else -mag) (if x.hi <= 0 then 0 else mag)
  | And ->
      (* x land m with m >= 0 clears bits: result in [0, m] *)
      if x.lo >= 0 && y.lo >= 0 then iv 0 (min x.hi y.hi)
      else if x.lo >= 0 then iv 0 x.hi
      else if y.lo >= 0 then iv 0 y.hi
      else Iv top
  | Or | Xor ->
      if x.lo >= 0 && y.lo >= 0 then iv 0 (sat (ceil_mask (max x.hi y.hi))) else Iv top
  | Shl ->
      if y.lo < 0 || y.hi > 62 then raise (Rej (pc, Shift_out_of_range));
      of4 (shl_one x.lo y.lo) (shl_one x.lo y.hi) (shl_one x.hi y.lo) (shl_one x.hi y.hi)
  | Shr ->
      if y.lo < 0 || y.hi > 62 then raise (Rej (pc, Shift_out_of_range));
      of4 (x.lo asr y.lo) (x.lo asr y.hi) (x.hi asr y.lo) (x.hi asr y.hi)

let meet x y =
  let lo = max x.lo y.lo and hi = min x.hi y.hi in
  if lo > hi then None else Some { lo; hi }

let swap_cmp = function Eq -> Eq | Ne -> Ne | Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le
let negate_cmp = function Eq -> Ne | Ne -> Eq | Lt -> Ge | Le -> Gt | Gt -> Le | Ge -> Lt

(* the interval of x under the assumption "x c y" *)
let refine_x c x y =
  match c with
  | Eq -> meet x y
  | Ne ->
      if y.lo = y.hi then
        let k = y.lo in
        if x.lo = k && x.hi = k then None
        else if x.lo = k then Some { lo = x.lo + 1; hi = x.hi }
        else if x.hi = k then Some { lo = x.lo; hi = x.hi - 1 }
        else Some x
      else Some x
  | Lt -> meet x { lo = wmin; hi = y.hi - 1 }
  | Le -> meet x { lo = wmin; hi = y.hi }
  | Gt -> meet x { lo = y.lo + 1; hi = wmax }
  | Ge -> meet x { lo = y.lo; hi = wmax }

let refine_y c x y = refine_x (swap_cmp c) y x

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render_val = function
  | Bot -> "?"
  | Iv i -> if i.lo <= wmin && i.hi >= wmax then "T" else Printf.sprintf "[%d,%d]" i.lo i.hi

let render_state = function
  | None -> "(unreached)"
  | Some st ->
      String.concat " "
        (List.mapi (fun i v -> Printf.sprintf "r%d=%s" i (render_val v)) (Array.to_list st))

(* ------------------------------------------------------------------ *)
(* Structure: registers, targets, relocations, loops, WCET             *)
(* ------------------------------------------------------------------ *)

let max_code = 4096
let max_seg = 65536
let max_limit = 65535
let fits32 v = v >= -0x8000_0000 && v <= 0x7FFF_FFFF

let regs_of = function
  | Const _ -> []
  | Mov (rd, rs) -> [ rd; rs ]
  | Bin (_, rd, rs, rt) -> [ rd; rs; rt ]
  | Bini (_, rd, rs, _) -> [ rd; rs ]
  | Load (rd, rs, _) | Ldv (rd, rs, _) | Lds (rd, rs, _) -> [ rd; rs ]
  | Store (rsrc, rbase, _) | Sts (rsrc, rbase, _) -> [ rsrc; rbase ]
  | Br (_, rs, rt, _) -> [ rs; rt ]
  | Bri (_, rs, _, _) -> [ rs ]
  | Jmp _ -> []
  | Loop { counter; _ } -> [ counter ]
  | Send { dst; kind; obj; value } -> [ dst; kind; obj; value ]
  | Wake { seq; value } -> [ seq; value ]
  | Halt -> []

let imms_of = function
  | Const (_, v) -> [ v ]
  | Bini (_, _, _, imm) -> [ imm ]
  | Load (_, _, off) | Store (_, _, off) | Ldv (_, _, off) | Lds (_, _, off) | Sts (_, _, off) ->
      [ off ]
  | _ -> []

(* targets an instruction can transfer control to, besides fall-through *)
let jump_targets = function
  | Br (_, _, _, tgt) | Bri (_, _, _, tgt) | Jmp tgt -> [ tgt ]
  | Loop { exit; _ } -> [ exit ]
  | _ -> []

let falls_through = function Jmp _ | Halt -> false | _ -> true

(* the register an instruction writes, if any *)
let writes = function
  | Const (rd, _)
  | Mov (rd, _)
  | Bin (_, rd, _, _)
  | Bini (_, rd, _, _)
  | Load (rd, _, _)
  | Ldv (rd, _, _)
  | Lds (rd, _, _) ->
      Some rd
  | Loop { counter; _ } -> Some counter
  | _ -> None

(* all successor pcs (fall-through included) *)
let successors pc ins =
  let t = jump_targets ins in
  if falls_through ins then (pc + 1) :: t else t

(* Structural checks collect every independent violation (the Faults /
   Scenario validate convention) instead of stopping at the first: each
   entry is (pc, reason), later sorted into program order. *)
let max_view = 16

let collect_structure p =
  let errs = ref [] in
  let bad pc reason = errs := (pc, reason) :: !errs in
  let n = Array.length p.code in
  if n = 0 then bad 0 Program_empty;
  if n > max_code then bad 0 (Program_too_long n);
  if p.seg_words < 0 || p.seg_words > max_seg then bad 0 (Bad_segment p.seg_words);
  if p.inputs < 0 || p.inputs > nregs then bad 0 (Bad_inputs p.inputs);
  if p.scratch_words < 0 || p.scratch_words > max_seg then bad 0 (Bad_stream_decl p.scratch_words);
  (match p.hkind with
  | Episode -> ()
  | Header { view_words } ->
      if view_words < 1 || view_words > max_view then bad 0 (Bad_stream_decl view_words)
  | Payload { chunk_words; max_chunks } ->
      if chunk_words < 1 || chunk_words > max_view then bad 0 (Bad_stream_decl chunk_words);
      if max_chunks < 1 || max_chunks > max_limit then bad 0 (Bad_stream_decl max_chunks);
      (* streaming dispatch always seeds r0 = chunk index, r1 = valid words *)
      if p.inputs < 2 then bad 0 (Bad_stream_decl p.inputs));
  Array.iteri
    (fun pc ins ->
      List.iter (fun r -> if r < 0 || r >= nregs then bad pc (Bad_register r)) (regs_of ins);
      List.iter (fun v -> if not (fits32 v) then bad pc (Immediate_too_wide v)) (imms_of ins);
      List.iter (fun t -> if t < 0 || t >= n then bad pc (Bad_branch_target t)) (jump_targets ins);
      (match ins with
      | Loop { limit; _ } ->
          if limit < 1 || limit > max_limit then bad pc (Loop_bound_invalid limit)
      | _ -> ());
      if falls_through ins && pc + 1 >= n then bad pc Falls_off_end)
    p.code;
  List.rev !errs

let collect_relocs p =
  let errs = ref [] in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun pc ->
      if pc < 0 || pc >= Array.length p.code then errs := (0, Bad_relocation pc) :: !errs
      else if Hashtbl.mem seen pc then errs := (pc, Bad_relocation pc) :: !errs
      else begin
        Hashtbl.replace seen pc ();
        match p.code.(pc) with
        | Const (_, v) when v >= 0 && v < p.seg_words -> ()
        | _ -> errs := (pc, Bad_relocation pc) :: !errs
      end)
    p.relocs;
  List.rev !errs

(* Back edges must target Loop headers; each header owns at most one back
   edge; regions nest; nothing jumps into a region from outside; bodies
   leave their counter alone. Returns the region list (header, back-edge
   pc, limit). *)
let check_loops p =
  let n = Array.length p.code in
  let regions = ref [] in
  for pc = 0 to n - 1 do
    List.iter
      (fun t ->
        if t <= pc then
          match p.code.(t) with
          | Loop { limit; _ } ->
              if List.exists (fun (h, _, _) -> h = t) !regions then
                raise (Rej (pc, Unbounded_back_edge t));
              regions := (t, pc, limit) :: !regions
          | _ -> raise (Rej (pc, Unbounded_back_edge t)))
      (successors pc p.code.(pc))
  done;
  let regions = List.sort compare !regions in
  (* proper nesting: for h1 < h2, either disjoint or (h2, b2) inside *)
  List.iter
    (fun (h1, b1, _) ->
      List.iter
        (fun (h2, b2, _) ->
          if h1 < h2 && h2 <= b1 && b2 > b1 then raise (Rej (h2, Improper_loop_nesting h2)))
        regions)
    regions;
  (* sideways entry: an edge from outside [h, b] into (h, b] *)
  for pc = 0 to n - 1 do
    List.iter
      (fun t ->
        List.iter
          (fun (h, b, _) ->
            if t > h && t <= b && (pc < h || pc > b) then raise (Rej (pc, Jump_into_loop t)))
          regions)
      (successors pc p.code.(pc))
  done;
  (* counter stability inside the body *)
  List.iter
    (fun (h, b, _) ->
      let counter = match p.code.(h) with Loop { counter; _ } -> counter | _ -> assert false in
      for pc = h + 1 to b do
        match writes p.code.(pc) with
        | Some r when r = counter -> raise (Rej (pc, Loop_counter_clobbered counter))
        | _ -> ()
      done)
    regions;
  regions

(* Sum of instruction cycles, each weighted by the product of the enclosing
   loop limits (the header itself runs limit + 1 times per entry: limit
   iterations plus the final exit test). *)
let compute_wcet p regions =
  let n = Array.length p.code in
  let cap = 1 lsl 50 in
  let total = ref 0 in
  for pc = 0 to n - 1 do
    let m = ref 1 in
    List.iter
      (fun (h, b, limit) ->
        if pc = h then m := min cap (!m * (limit + 1))
        else if pc > h && pc <= b then m := min cap (!m * limit))
      regions;
    total := min cap (!total + (instr_cycles p.code.(pc) * !m))
  done;
  !total

(* ------------------------------------------------------------------ *)
(* Abstract interpretation                                             *)
(* ------------------------------------------------------------------ *)

(* joins at one pc before unstable bounds are widened to the saturation
   limits (keeps the fixpoint small even for limit-65535 loops). Widening
   applies only at Loop headers: every cycle goes through one (check_loops
   already rejected any other back edge), so the fixpoint still terminates,
   and the header's own transfer immediately re-narrows the fall-through to
   [1 .. limit] — body states never see the widened bound. The threshold
   must cover a register that ratchets by a constant per iteration of a
   small loop (the slot-scan idiom advances a candidate pointer each pass,
   several changed joins per iteration over a 16-slot table): below it such
   registers widen to the saturation bound and in-segment proofs relying on
   them fail. *)
let widen_threshold = 64

let interpret p states =
  let n = Array.length p.code in
  let widen_count = Array.make n 0 in
  let work = Queue.create () in
  let schedule pc st =
    match states.(pc) with
    | None ->
        states.(pc) <- Some (Array.copy st);
        Queue.add pc work
    | Some old ->
        let changed = ref false in
        let is_header = match p.code.(pc) with Aih_ir.Loop _ -> true | _ -> false in
        let widen = is_header && widen_count.(pc) >= widen_threshold in
        let joined =
          Array.mapi
            (fun i ov ->
              match (ov, st.(i)) with
              | Bot, _ | _, Bot -> if ov = Bot then ov else (changed := true; Bot)
              | Iv a, Iv b ->
                  let lo = min a.lo b.lo and hi = max a.hi b.hi in
                  if lo = a.lo && hi = a.hi then ov
                  else begin
                    changed := true;
                    let lo = if widen && lo < a.lo then wmin else lo in
                    let hi = if widen && hi > a.hi then wmax else hi in
                    iv lo hi
                  end)
            old
        in
        if !changed then begin
          widen_count.(pc) <- widen_count.(pc) + 1;
          states.(pc) <- Some joined;
          Queue.add pc work
        end
  in
  let entry = Array.init nregs (fun i -> if i < p.inputs then Iv top else Bot) in
  (* Streaming dispatch seeds the first two registers with trusted values —
     the payload-handler loop bound comes from the declared max payload, not
     the widening threshold: r0 = chunk index in [0, max_chunks), r1 = valid
     view words in [1, chunk_words]. *)
  (match p.hkind with
  | Payload { chunk_words; max_chunks } ->
      entry.(0) <- iv 0 (max_chunks - 1);
      entry.(1) <- iv 1 chunk_words
  | Episode | Header _ -> ());
  schedule 0 entry;
  let rej pc reason = raise (Rej (pc, reason)) in
  while not (Queue.is_empty work) do
    let pc = Queue.pop work in
    let st = match states.(pc) with Some s -> s | None -> assert false in
    let out = Array.copy st in
    let get r = match st.(r) with Bot -> rej pc (Uninitialized_register r) | Iv i -> i in
    let set r v = out.(r) <- v in
    let check_bounds r off bound mk =
      let a = get r in
      let lo = a.lo + off and hi = a.hi + off in
      if lo < 0 || hi >= bound then rej pc (mk { lo; hi })
    in
    let check_addr r off mk = check_bounds r off p.seg_words mk in
    let goto t st = schedule t st in
    let fall st = goto (pc + 1) st in
    (match p.code.(pc) with
    | Const (rd, v) ->
        set rd (iv v v);
        fall out
    | Mov (rd, rs) ->
        set rd (Iv (get rs));
        fall out
    | Bin (op, rd, rs, rt) ->
        set rd (binop_iv pc op (get rs) (get rt));
        fall out
    | Bini (op, rd, rs, imm) ->
        set rd (binop_iv pc op (get rs) { lo = imm; hi = imm });
        fall out
    | Load (rd, rs, off) ->
        check_addr rs off (fun i -> Load_out_of_segment i);
        (* segment contents are untracked: a load yields any value *)
        set rd (Iv top);
        fall out
    | Store (rsrc, rbase, off) ->
        ignore (get rsrc);
        check_addr rbase off (fun i -> Store_out_of_segment i);
        fall out
    | Ldv (rd, rs, off) ->
        (* the view is untrusted wire data, but its extent is declared *)
        check_bounds rs off (Aih_ir.view_words p) (fun i -> View_out_of_bounds i);
        set rd (Iv top);
        fall out
    | Lds (rd, rs, off) ->
        check_bounds rs off p.scratch_words (fun i -> Scratch_out_of_bounds i);
        (* scratch is zeroed per activation, but stores to it are untracked *)
        set rd (Iv top);
        fall out
    | Sts (rsrc, rbase, off) ->
        ignore (get rsrc);
        check_bounds rbase off p.scratch_words (fun i -> Scratch_out_of_bounds i);
        fall out
    | Br (c, rs, rt, tgt) ->
        let x = get rs and y = get rt in
        (match (refine_x c x y, refine_y c x y) with
        | Some x', Some y' ->
            let taken = Array.copy out in
            taken.(rs) <- Iv x';
            taken.(rt) <- Iv y';
            goto tgt taken
        | _ -> ());
        let nc = negate_cmp c in
        (match (refine_x nc x y, refine_y nc x y) with
        | Some x', Some y' ->
            out.(rs) <- Iv x';
            out.(rt) <- Iv y';
            fall out
        | _ -> ())
    | Bri (c, rs, imm, tgt) ->
        let x = get rs and y = { lo = imm; hi = imm } in
        (match refine_x c x y with
        | Some x' ->
            let taken = Array.copy out in
            taken.(rs) <- Iv x';
            goto tgt taken
        | None -> ());
        (match refine_x (negate_cmp c) x y with
        | Some x' ->
            out.(rs) <- Iv x';
            fall out
        | None -> ())
    | Jmp tgt -> goto tgt out
    | Loop { counter; limit; exit } ->
        let x = get counter in
        if x.lo < 0 then rej pc (Loop_counter_negative counter);
        (match meet x { lo = limit; hi = wmax } with
        | Some e ->
            let ex = Array.copy out in
            ex.(counter) <- Iv e;
            goto exit ex
        | None -> ());
        (match meet x { lo = wmin; hi = limit - 1 } with
        | Some b ->
            out.(counter) <- iv (b.lo + 1) (b.hi + 1);
            fall out
        | None -> ())
    | Send { dst; kind; obj; value } ->
        ignore (get dst);
        ignore (get kind);
        ignore (get obj);
        ignore (get value);
        fall out
    | Wake { seq; value } ->
        ignore (get seq);
        ignore (get value);
        fall out
    | Halt -> ())
  done

let default_max_wcet = 200_000

let per_byte_milli ~wcet p =
  let bytes = Aih_ir.bytes_per_activation p in
  if bytes = 0 then 0 else ((1000 * wcet) + bytes - 1) / bytes

let verify ?(max_wcet = default_max_wcet) ?cell_budget p =
  (* states computed so far, for rendering the diagnostic *)
  let states = ref [||] in
  let state_at pc = if pc < Array.length !states then !states.(pc) else None in
  let mk (pc, reason) = { rj_pc = pc; rj_reason = reason; rj_regs = render_state (state_at pc) } in
  let structural = collect_structure p @ collect_relocs p in
  if structural <> [] then Error (List.map mk (List.sort compare structural))
  else
    match check_loops p with
    | exception Rej (pc, reason) -> Error [ mk (pc, reason) ]
    | regions -> (
        let wcet = compute_wcet p regions in
        let errs = ref [] in
        if wcet > max_wcet then errs := (0, Wcet_exceeded wcet) :: !errs;
        (* Line-rate admission: a streaming activation must finish inside the
           cycle budget the caller derives from the link rate. Independent of
           the absolute WCET cap, so both can reject the same program. *)
        (match cell_budget with
        | Some budget when Aih_ir.bytes_per_activation p > 0 && wcet > budget ->
            errs := (0, Line_rate_exceeded { budget; wcet }) :: !errs
        | _ -> ());
        let sts = Array.make (Array.length p.code) None in
        states := sts;
        (try interpret p sts with Rej (pc, reason) -> errs := (pc, reason) :: !errs);
        match List.sort compare !errs with
        | [] ->
            Ok
              {
                code_bytes = Aih_ir.code_bytes p;
                wcet_nic_cycles = wcet;
                wcet_per_byte_milli = per_byte_milli ~wcet p;
              }
        | errs -> Error (List.map mk errs))
