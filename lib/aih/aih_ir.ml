type reg = int

let nregs = 16

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
type cmp = Eq | Ne | Lt | Le | Gt | Ge

type instr =
  | Const of reg * int
  | Mov of reg * reg
  | Bin of binop * reg * reg * reg
  | Bini of binop * reg * reg * int
  | Load of reg * reg * int
  | Store of reg * reg * int
  | Ldv of reg * reg * int
  | Lds of reg * reg * int
  | Sts of reg * reg * int
  | Br of cmp * reg * reg * int
  | Bri of cmp * reg * int * int
  | Jmp of int
  | Loop of { counter : reg; limit : int; exit : int }
  | Send of { dst : reg; kind : reg; obj : reg; value : reg }
  | Wake of { seq : reg; value : reg }
  | Halt

type hkind =
  | Episode
  | Header of { view_words : int }
  | Payload of { chunk_words : int; max_chunks : int }

type program = {
  name : string;
  hkind : hkind;
  seg_words : int;
  scratch_words : int;
  inputs : int;
  code : instr array;
  relocs : int list;
}

(* 33 MHz board clock: ALU and control are single-cycle, board SRAM (segment
   and per-activation scratch) is two, the cursor view reads straight out of
   the reassembly buffer latches (1), a host wakeup raises the bridge (4), a
   send posts a transmit descriptor and hands the frame to the segmenter
   (8). *)
let instr_cycles = function
  | Const _ | Mov _ | Bin _ | Bini _ | Br _ | Bri _ | Jmp _ | Loop _ | Halt | Ldv _ -> 1
  | Load _ | Store _ | Lds _ | Sts _ -> 2
  | Wake _ -> 4
  | Send _ -> 8


(* ------------------------------------------------------------------ *)
(* Object-code image                                                   *)
(* ------------------------------------------------------------------ *)

let magic = 0x41494832 (* "AIH2": streaming header/payload handler kinds *)
let header_bytes = 36
let instr_bytes = 12
let reloc_bytes = 4
let word_bytes = 8

let view_words p =
  match p.hkind with
  | Episode -> 0
  | Header { view_words } -> view_words
  | Payload { chunk_words; _ } -> chunk_words

(* Wire bytes one activation is responsible for: the certificate's per-byte
   bound divides the WCET by this. Episode handlers are not per-packet, so
   0 (no per-byte obligation). *)
let bytes_per_activation p = word_bytes * view_words p

let binop_code = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Div -> 3
  | Rem -> 4
  | And -> 5
  | Or -> 6
  | Xor -> 7
  | Shl -> 8
  | Shr -> 9

let cmp_code = function Eq -> 0 | Ne -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5

let opcode = function
  | Const _ -> 1
  | Mov _ -> 2
  | Bin _ -> 3
  | Bini _ -> 4
  | Load _ -> 5
  | Store _ -> 6
  | Br _ -> 7
  | Bri _ -> 8
  | Jmp _ -> 9
  | Loop _ -> 10
  | Send _ -> 11
  | Wake _ -> 12
  | Halt -> 13
  | Ldv _ -> 14
  | Lds _ -> 15
  | Sts _ -> 16

(* every word field of the image is a little-endian i32 *)
let put32 b off v =
  if v < -0x8000_0000 || v > 0x7FFF_FFFF then
    invalid_arg (Printf.sprintf "Aih_ir.encode: %d does not fit a 32-bit field" v);
  Bytes.set_int32_le b off (Int32.of_int v)

(* one instruction = opcode byte, three register/selector bytes, two i32
   immediates *)
let fields = function
  | Const (rd, v) -> (rd, 0, 0, v, 0)
  | Mov (rd, rs) -> (rd, rs, 0, 0, 0)
  | Bin (op, rd, rs, rt) -> (rd, rs, rt, binop_code op, 0)
  | Bini (op, rd, rs, imm) -> (rd, rs, binop_code op, imm, 0)
  | Load (rd, rs, off) -> (rd, rs, 0, off, 0)
  | Store (rsrc, rbase, off) -> (rsrc, rbase, 0, off, 0)
  | Ldv (rd, rs, off) -> (rd, rs, 0, off, 0)
  | Lds (rd, rs, off) -> (rd, rs, 0, off, 0)
  | Sts (rsrc, rbase, off) -> (rsrc, rbase, 0, off, 0)
  | Br (c, rs, rt, tgt) -> (rs, rt, cmp_code c, tgt, 0)
  | Bri (c, rs, imm, tgt) -> (rs, 0, cmp_code c, imm, tgt)
  | Jmp tgt -> (0, 0, 0, tgt, 0)
  | Loop { counter; limit; exit } -> (counter, 0, 0, limit, exit)
  | Send { dst; kind; obj; value } -> (dst, kind, obj, value, 0)
  | Wake { seq; value } -> (seq, value, 0, 0, 0)
  | Halt -> (0, 0, 0, 0, 0)

let hkind_fields = function
  | Episode -> (0, 0, 0)
  | Header { view_words } -> (1, view_words, 0)
  | Payload { chunk_words; max_chunks } -> (2, chunk_words, max_chunks)

let encode p =
  let n = Array.length p.code in
  let r = List.length p.relocs in
  let b = Bytes.make (header_bytes + (instr_bytes * n) + (reloc_bytes * r)) '\000' in
  put32 b 0 magic;
  put32 b 4 n;
  put32 b 8 r;
  put32 b 12 p.seg_words;
  put32 b 16 p.inputs;
  let hk_tag, hk_a, hk_b = hkind_fields p.hkind in
  put32 b 20 hk_tag;
  put32 b 24 hk_a;
  put32 b 28 hk_b;
  put32 b 32 p.scratch_words;
  Array.iteri
    (fun i ins ->
      let off = header_bytes + (instr_bytes * i) in
      let a, b', c, imm1, imm2 = fields ins in
      Bytes.set_uint8 b off (opcode ins);
      Bytes.set_uint8 b (off + 1) (a land 0xff);
      Bytes.set_uint8 b (off + 2) (b' land 0xff);
      Bytes.set_uint8 b (off + 3) (c land 0xff);
      put32 b (off + 4) imm1;
      put32 b (off + 8) imm2)
    p.code;
  List.iteri (fun i pc -> put32 b (header_bytes + (instr_bytes * n) + (reloc_bytes * i)) pc) p.relocs;
  b

let code_bytes p = Bytes.length (encode p) + (word_bytes * (p.seg_words + p.scratch_words))

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let cmp_name = function Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let pp_instr fmt = function
  | Const (rd, v) -> Format.fprintf fmt "const r%d, %d" rd v
  | Mov (rd, rs) -> Format.fprintf fmt "mov r%d, r%d" rd rs
  | Bin (op, rd, rs, rt) -> Format.fprintf fmt "%s r%d, r%d, r%d" (binop_name op) rd rs rt
  | Bini (op, rd, rs, imm) -> Format.fprintf fmt "%si r%d, r%d, %d" (binop_name op) rd rs imm
  | Load (rd, rs, off) -> Format.fprintf fmt "load r%d, [r%d+%d]" rd rs off
  | Store (rsrc, rbase, off) -> Format.fprintf fmt "store [r%d+%d], r%d" rbase off rsrc
  | Ldv (rd, rs, off) -> Format.fprintf fmt "ldv r%d, view[r%d+%d]" rd rs off
  | Lds (rd, rs, off) -> Format.fprintf fmt "lds r%d, scratch[r%d+%d]" rd rs off
  | Sts (rsrc, rbase, off) -> Format.fprintf fmt "sts scratch[r%d+%d], r%d" rbase off rsrc
  | Br (c, rs, rt, tgt) -> Format.fprintf fmt "br.%s r%d, r%d, %d" (cmp_name c) rs rt tgt
  | Bri (c, rs, imm, tgt) -> Format.fprintf fmt "br.%s r%d, %d, %d" (cmp_name c) rs imm tgt
  | Jmp tgt -> Format.fprintf fmt "jmp %d" tgt
  | Loop { counter; limit; exit } -> Format.fprintf fmt "loop r%d, %d, exit=%d" counter limit exit
  | Send { dst; kind; obj; value } ->
      Format.fprintf fmt "send dst=r%d kind=r%d obj=r%d value=r%d" dst kind obj value
  | Wake { seq; value } -> Format.fprintf fmt "wake seq=r%d value=r%d" seq value
  | Halt -> Format.fprintf fmt "halt"

(* ------------------------------------------------------------------ *)
(* Assembler                                                           *)
(* ------------------------------------------------------------------ *)

module Asm = struct
  type patch = { at : int; lbl : int; mk : int -> instr }

  type t = {
    mutable code : instr list; (* reversed *)
    mutable len : int;
    mutable relocs : int list;
    mutable labels : int array; (* label id -> pc; -1 = unplaced *)
    mutable nlabels : int;
    mutable patches : patch list;
  }

  type label = int

  let create () =
    { code = []; len = 0; relocs = []; labels = Array.make 16 (-1); nlabels = 0; patches = [] }

  let fresh t =
    if t.nlabels = Array.length t.labels then begin
      let a = Array.make (2 * t.nlabels) (-1) in
      Array.blit t.labels 0 a 0 t.nlabels;
      t.labels <- a
    end;
    let l = t.nlabels in
    t.nlabels <- l + 1;
    l

  let place t l =
    if t.labels.(l) >= 0 then invalid_arg "Aih_ir.Asm.place: label already placed";
    t.labels.(l) <- t.len

  let emit t i =
    t.code <- i :: t.code;
    t.len <- t.len + 1

  let emitp t l mk =
    t.patches <- { at = t.len; lbl = l; mk } :: t.patches;
    emit t (mk (-1))

  let const t rd v = emit t (Const (rd, v))

  let const_addr t rd off =
    t.relocs <- t.len :: t.relocs;
    emit t (Const (rd, off))

  let mov t rd rs = emit t (Mov (rd, rs))
  let bin t op rd rs rt = emit t (Bin (op, rd, rs, rt))
  let bini t op rd rs imm = emit t (Bini (op, rd, rs, imm))
  let load t rd ~base off = emit t (Load (rd, base, off))
  let store t rsrc ~base off = emit t (Store (rsrc, base, off))
  let ldv t rd ~base off = emit t (Ldv (rd, base, off))
  let lds t rd ~base off = emit t (Lds (rd, base, off))
  let sts t rsrc ~base off = emit t (Sts (rsrc, base, off))
  let br t c rs rt l = emitp t l (fun pc -> Br (c, rs, rt, pc))
  let bri t c rs imm l = emitp t l (fun pc -> Bri (c, rs, imm, pc))
  let jmp t l = emitp t l (fun pc -> Jmp pc)
  let loop t ~counter ~limit ~exit:l = emitp t l (fun pc -> Loop { counter; limit; exit = pc })
  let send t ~dst ~kind ~obj ~value = emit t (Send { dst; kind; obj; value })
  let wake t ~seq ~value = emit t (Wake { seq; value })
  let halt t = emit t Halt

  let assemble ?(hkind = Episode) ?(scratch_words = 0) t ~name ~seg_words ~inputs =
    let code = Array.of_list (List.rev t.code) in
    List.iter
      (fun { at; lbl; mk } ->
        let pc = t.labels.(lbl) in
        if pc < 0 then invalid_arg "Aih_ir.Asm.assemble: branch to an unplaced label";
        code.(at) <- mk pc)
      t.patches;
    { name; hkind; seg_words; scratch_words; inputs; code; relocs = List.sort compare t.relocs }
end
