open Aih_ir

(* ------------------------------------------------------------------ *)
(* Programs the verifier must accept                                   *)
(* ------------------------------------------------------------------ *)

(* zero a 64-word segment with one bounded loop *)
let memset =
  let a = Asm.create () in
  let head = Asm.fresh a and done_ = Asm.fresh a in
  Asm.const a 0 0; (* counter *)
  Asm.const a 1 0; (* the value stored *)
  Asm.place a head;
  Asm.loop a ~counter:0 ~limit:64 ~exit:done_;
  Asm.bini a Sub 2 0 1; (* addr = counter - 1 in 0..63 *)
  Asm.store a 1 ~base:2 0;
  Asm.jmp a head;
  Asm.place a done_;
  Asm.halt a;
  Asm.assemble a ~name:"memset-bounded-loop" ~seg_words:64 ~inputs:0

(* the BPF idiom: an untrusted input masked into range before the load *)
let masked_load =
  let a = Asm.create () in
  Asm.bini a And 1 0 63; (* r1 = r0 land 63 *)
  Asm.load a 2 ~base:1 0;
  Asm.wake a ~seq:0 ~value:2;
  Asm.halt a;
  Asm.assemble a ~name:"masked-untrusted-index" ~seg_words:64 ~inputs:1

(* bounds established by branches instead of a mask: the verifier's branch
   refinement has to carry [0 <= r0 < 64] into the load *)
let bounds_checked =
  let a = Asm.create () in
  let reject = Asm.fresh a in
  Asm.bri a Lt 0 0 reject;
  Asm.bri a Ge 0 64 reject;
  Asm.load a 1 ~base:0 0;
  Asm.wake a ~seq:0 ~value:1;
  Asm.place a reject;
  Asm.halt a;
  Asm.assemble a ~name:"branch-bounds-check" ~seg_words:64 ~inputs:1

(* nested bounded loops writing a 4x4 tile *)
let nested_loops =
  let a = Asm.create () in
  let outer = Asm.fresh a and outer_done = Asm.fresh a in
  let inner = Asm.fresh a and inner_done = Asm.fresh a in
  Asm.const a 0 0; (* outer counter *)
  Asm.place a outer;
  Asm.loop a ~counter:0 ~limit:4 ~exit:outer_done;
  Asm.bini a Sub 2 0 1;
  Asm.bini a Mul 2 2 4; (* row base = (o-1)*4 *)
  Asm.const a 1 0; (* inner counter, reset each row *)
  Asm.place a inner;
  Asm.loop a ~counter:1 ~limit:4 ~exit:inner_done;
  Asm.bini a Sub 3 1 1;
  Asm.bin a Add 3 3 2; (* addr = row + (i-1) in 0..15 *)
  Asm.store a 0 ~base:3 0;
  Asm.jmp a inner;
  Asm.place a inner_done;
  Asm.jmp a outer;
  Asm.place a outer_done;
  Asm.halt a;
  Asm.assemble a ~name:"nested-loops-tile" ~seg_words:16 ~inputs:0

(* relocated addressing: the table base arrives via the relocation table *)
let relocated_table =
  let a = Asm.create () in
  let head = Asm.fresh a and done_ = Asm.fresh a in
  Asm.const_addr a 1 8; (* table base: segment word 8, relocated *)
  Asm.const a 0 0;
  Asm.place a head;
  Asm.loop a ~counter:0 ~limit:8 ~exit:done_;
  Asm.bini a Sub 2 0 1;
  Asm.bin a Add 2 2 1; (* addr = base + (c-1) in 8..15 *)
  Asm.store a 0 ~base:2 0;
  Asm.jmp a head;
  Asm.place a done_;
  Asm.halt a;
  Asm.assemble a ~name:"relocated-table-walk" ~seg_words:16 ~inputs:0

(* pure compute-and-send: no segment at all *)
let compute_send =
  let a = Asm.create () in
  Asm.bini a Mul 2 1 2;
  Asm.bin a Add 2 2 1; (* r2 = 3 * r1 *)
  Asm.const a 3 1; (* wire kind *)
  Asm.const a 4 7; (* obj *)
  Asm.send a ~dst:0 ~kind:3 ~obj:4 ~value:2;
  Asm.halt a;
  Asm.assemble a ~name:"compute-and-send" ~seg_words:0 ~inputs:2

(* the slot-scan idiom the collectives handler uses: a found-or-free pointer
   kept as index + 1, with 0 meaning none, narrowed by a Ne test *)
let slot_scan =
  let a = Asm.create () in
  let head = Asm.fresh a and scan_done = Asm.fresh a in
  let found = Asm.fresh a and cont = Asm.fresh a and miss = Asm.fresh a in
  Asm.const a 1 0; (* found pointer + 1 *)
  Asm.const a 2 0; (* counter *)
  Asm.place a head;
  Asm.loop a ~counter:2 ~limit:8 ~exit:scan_done;
  Asm.bini a Sub 3 2 1;
  Asm.load a 4 ~base:3 0;
  Asm.bri a Eq 4 0 found;
  Asm.place a cont;
  Asm.jmp a head;
  Asm.place a found;
  Asm.bini a Add 1 3 1;
  Asm.place a scan_done;
  Asm.bri a Eq 1 0 miss;
  Asm.bini a Sub 3 1 1; (* narrow r1 in 1..8, so r3 in 0..7 *)
  Asm.store a 2 ~base:3 0;
  Asm.place a miss;
  Asm.halt a;
  Asm.assemble a ~name:"slot-scan-nonzero-narrowing" ~seg_words:8 ~inputs:0

(* ------------------------------------------------------------------ *)
(* Streaming handlers (header / payload kinds)                         *)
(* ------------------------------------------------------------------ *)

(* header handler: route on two header words through per-activation
   scratch — nothing may persist between packets *)
let header_route =
  let a = Asm.create () in
  Asm.const a 0 0;
  Asm.ldv a 1 ~base:0 1; (* src *)
  Asm.ldv a 2 ~base:0 3; (* obj *)
  Asm.sts a 1 ~base:0 0;
  Asm.sts a 2 ~base:0 1;
  Asm.lds a 3 ~base:0 0;
  Asm.wake a ~seq:3 ~value:2;
  Asm.halt a;
  Asm.assemble ~hkind:(Header { view_words = 6 }) ~scratch_words:2 a
    ~name:"header-route-scratch" ~seg_words:0 ~inputs:0

(* payload handler: per-chunk checksum folded into a persistent segment
   accumulator; the loop is bounded by the chunk size and exits early at
   the valid-word count streaming dispatch passes in r1 *)
let payload_checksum =
  let a = Asm.create () in
  let head = Asm.fresh a and done_ = Asm.fresh a in
  Asm.const a 2 0; (* word counter *)
  Asm.const a 3 0; (* chunk sum *)
  Asm.place a head;
  Asm.loop a ~counter:2 ~limit:6 ~exit:done_;
  Asm.bini a Sub 4 2 1; (* word index in 0..5 *)
  Asm.br a Ge 4 1 done_; (* index >= valid words: stop *)
  Asm.ldv a 5 ~base:4 0;
  Asm.bin a Add 3 3 5;
  Asm.jmp a head;
  Asm.place a done_;
  Asm.const a 6 0;
  Asm.load a 7 ~base:6 0;
  Asm.bin a Add 7 7 3;
  Asm.store a 7 ~base:6 0;
  Asm.halt a;
  Asm.assemble ~hkind:(Payload { chunk_words = 6; max_chunks = 128 }) a ~name:"payload-checksum"
    ~seg_words:1 ~inputs:2

let good =
  [
    ("memset", memset);
    ("masked-load", masked_load);
    ("branch-bounds-check", bounds_checked);
    ("nested-loops", nested_loops);
    ("relocated-table", relocated_table);
    ("compute-and-send", compute_send);
    ("slot-scan", slot_scan);
    ("header-route", header_route);
    ("payload-checksum", payload_checksum);
  ]

(* ------------------------------------------------------------------ *)
(* Programs the verifier must reject                                   *)
(* ------------------------------------------------------------------ *)

let mk ?(hkind = Episode) ?(scratch_words = 0) name ~seg_words ~inputs code relocs =
  { name; hkind; seg_words; scratch_words; inputs; code; relocs }

(* a store one word past the declared segment *)
let store_oob =
  mk "store-past-segment" ~seg_words:8 ~inputs:0
    [| Const (0, 8); Const (1, 1); Store (1, 0, 0); Halt |]
    []

(* a classic host-pointer dereference: the handler computes a host physical
   address and reads through it *)
let host_deref =
  mk "host-pointer-deref" ~seg_words:8 ~inputs:0 [| Const (0, 0xDEAD00); Load (1, 0, 0); Halt |] []

(* an untrusted input used as an index with no mask or bounds check *)
let unchecked_index =
  mk "unchecked-untrusted-index" ~seg_words:64 ~inputs:1 [| Load (1, 0, 0); Halt |] []

(* a back edge that does not go through a Loop header: never terminates *)
let unbounded =
  mk "unbounded-back-edge" ~seg_words:0 ~inputs:0 [| Const (0, 0); Bini (Add, 0, 0, 1); Jmp 1 |] []

(* reads a register no path wrote *)
let uninit = mk "uninitialized-register" ~seg_words:0 ~inputs:1 [| Mov (2, 5); Halt |] []

(* the relocation table rebases an immediate that is not an in-segment
   address *)
let bad_reloc =
  mk "relocation-out-of-segment" ~seg_words:8 ~inputs:0 [| Const (0, 99); Halt |] [ 0 ]

(* the relocation table names an instruction that is not a Const *)
let bad_reloc_instr =
  mk "relocation-of-non-const" ~seg_words:8 ~inputs:1 [| Mov (1, 0); Halt |] [ 0 ]

(* the loop body rewrites its own counter: the static limit proves nothing *)
let counter_clobber =
  mk "loop-counter-clobbered" ~seg_words:0 ~inputs:0
    [| Const (0, 0); Loop { counter = 0; limit = 4; exit = 4 }; Const (0, 0); Jmp 1; Halt |]
    []

(* the counter enters negative: limit - counter iterations exceed the limit *)
let counter_negative =
  mk "loop-counter-negative" ~seg_words:0 ~inputs:0
    [| Const (0, -5); Loop { counter = 0; limit = 4; exit = 4 }; Mov (1, 0); Jmp 1; Halt |]
    []

(* nested 65535-iteration loops: terminates, but blows the cycle budget *)
let wcet_bomb =
  mk "wcet-bomb" ~seg_words:0 ~inputs:0
    [|
      Const (0, 0);
      Loop { counter = 0; limit = 65535; exit = 7 };
      Const (1, 0);
      Loop { counter = 1; limit = 65535; exit = 6 };
      Mov (2, 1);
      Jmp 3;
      Jmp 1;
      Halt;
    |]
    []

(* divisor interval contains zero *)
let div_zero = mk "divide-by-untrusted" ~seg_words:0 ~inputs:1 [| Bini (Div, 1, 0, 0); Halt |] []

(* control can run off the end *)
let falls_off = mk "falls-off-end" ~seg_words:0 ~inputs:0 [| Const (0, 1) |] []

(* branch outside the program *)
let bad_target = mk "branch-out-of-program" ~seg_words:0 ~inputs:1 [| Bri (Eq, 0, 0, 99); Halt |] []

(* a jump into a loop body from outside the region *)
let loop_sideways =
  mk "jump-into-loop-body" ~seg_words:0 ~inputs:0
    [|
      Const (0, 0);
      Jmp 4;
      Loop { counter = 0; limit = 4; exit = 6 };
      Mov (1, 0);
      Mov (2, 0);
      Jmp 2;
      Halt;
    |]
    []

(* a header handler reading one word past its declared view *)
let view_overrun =
  mk "view-overrun"
    ~hkind:(Header { view_words = 6 })
    ~seg_words:0 ~inputs:0
    [| Const (0, 6); Ldv (1, 0, 0); Halt |]
    []

(* a scratch store past the declared per-activation segment *)
let scratch_overrun =
  mk "scratch-overrun"
    ~hkind:(Header { view_words = 6 })
    ~scratch_words:2 ~seg_words:0 ~inputs:0
    [| Const (0, 0); Sts (0, 0, 2); Halt |]
    []

(* passes every safety proof, but one activation costs ~300 cycles: at the
   default 622 Mb/s the per-cell budget is 88, so admission must refuse it
   (and admit it again on a slower link) *)
let line_rate_bomb =
  let a = Asm.create () in
  let outer = Asm.fresh a and outer_done = Asm.fresh a in
  let inner = Asm.fresh a and inner_done = Asm.fresh a in
  Asm.const a 2 0;
  Asm.const a 3 0; (* digest *)
  Asm.place a outer;
  Asm.loop a ~counter:2 ~limit:6 ~exit:outer_done;
  Asm.bini a Sub 4 2 1;
  Asm.ldv a 5 ~base:4 0;
  Asm.const a 6 0; (* inner counter: 16 mixing rounds per word *)
  Asm.place a inner;
  Asm.loop a ~counter:6 ~limit:16 ~exit:inner_done;
  Asm.bin a Add 3 3 5;
  Asm.jmp a inner;
  Asm.place a inner_done;
  Asm.jmp a outer;
  Asm.place a outer_done;
  Asm.halt a;
  Asm.assemble ~hkind:(Payload { chunk_words = 6; max_chunks = 128 }) a ~name:"line-rate-bomb"
    ~seg_words:0 ~inputs:2

let bad =
  [
    ("store-out-of-segment", "out-of-segment-store", store_oob);
    ("host-pointer-deref", "out-of-segment-load", host_deref);
    ("unchecked-untrusted-index", "out-of-segment-load", unchecked_index);
    ("unbounded-back-edge", "unbounded-back-edge", unbounded);
    ("uninitialized-register", "uninitialized-register", uninit);
    ("bad-relocation-immediate", "bad-relocation", bad_reloc);
    ("bad-relocation-target", "bad-relocation", bad_reloc_instr);
    ("loop-counter-clobbered", "loop-counter-clobbered", counter_clobber);
    ("loop-counter-negative", "loop-counter-negative", counter_negative);
    ("wcet-bomb", "wcet-exceeded", wcet_bomb);
    ("division-by-zero", "division-by-zero", div_zero);
    ("falls-off-end", "falls-off-end", falls_off);
    ("bad-branch-target", "bad-branch-target", bad_target);
    ("jump-into-loop", "jump-into-loop", loop_sideways);
    ("view-overrun", "out-of-view-load", view_overrun);
    ("scratch-overrun", "out-of-scratch", scratch_overrun);
    ("line-rate-bomb", "line-rate-exceeded", line_rate_bomb);
  ]
