(** The AIH firmware instruction set.

    The paper admits Application Interrupt Handlers onto the board only as
    "pointer-safe, relocatable object code" (section 2.3). This module is
    that object code's shape for our simulated board: a small register
    machine whose only memory is the handler's private segment of board
    memory, whose only effects are [send] (emit a frame from protocol
    context), [wake] (fill the host's episode ivar) and segment stores, and
    whose loops must go through an explicitly bounded header.

    A {!program} is what {!Aih_verify.verify} certifies and
    {!Aih_exec.run} executes; {!encode} is the relocatable object-code
    image whose length — plus the declared data segment — is the program's
    honest [code_bytes], the number board-memory accounting charges at
    install time. *)

(** Register index, [0 .. nregs - 1]. *)
type reg = int

(** The machine has 16 integer registers. At activation registers
    [0 .. inputs - 1] carry the event's arguments (untrusted: the verifier
    assumes nothing about their values); the rest start uninitialized. *)
val nregs : int

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
type cmp = Eq | Ne | Lt | Le | Gt | Ge

(** Word addresses are {e segment-relative}: [Load (rd, rs, off)] reads
    word [rs + off] of the handler's own board segment. There is no
    instruction that can name host memory or another handler's segment —
    pointer safety is then the verifier's proof that [rs + off] stays
    inside [0 .. seg_words - 1].

    [Loop { counter; limit; exit }] is the only legal back-edge target: it
    tests [counter >= limit] (exit to [exit]) and otherwise increments
    [counter] and falls through, so a loop whose counter provably enters
    non-negative executes its body at most [limit] times per entry. *)
type instr =
  | Const of reg * int  (** load immediate (relocatable when listed in [relocs]) *)
  | Mov of reg * reg
  | Bin of binop * reg * reg * reg  (** [rd <- rs op rt] *)
  | Bini of binop * reg * reg * int  (** [rd <- rs op imm] *)
  | Load of reg * reg * int  (** [rd <- seg.(rs + off)] *)
  | Store of reg * reg * int  (** [seg.(rs + off) <- rsrc] *)
  | Ldv of reg * reg * int
      (** cursor-relative load: [rd <- view.(rs + off)], where the view is
          the read-only window streaming dispatch exposes — the first-cell
          header words for a {!Header} handler, the current payload chunk
          for a {!Payload} handler. Episode handlers have no view. *)
  | Lds of reg * reg * int  (** [rd <- scratch.(rs + off)] *)
  | Sts of reg * reg * int
      (** [scratch.(rsrc_base + off) <- rsrc]: the scratch segment is
          per-activation board SRAM, zeroed at every activation — registers
          spill space that cannot leak state between packets. *)
  | Br of cmp * reg * reg * int  (** branch to target if [rs cmp rt] *)
  | Bri of cmp * reg * int * int  (** branch to target if [rs cmp imm] *)
  | Jmp of int
  | Loop of { counter : reg; limit : int; exit : int }  (** bounded-loop header *)
  | Send of { dst : reg; kind : reg; obj : reg; value : reg }
      (** emit a frame from protocol context (all operands are registers) *)
  | Wake of { seq : reg; value : reg }  (** wake the host episode [seq] with [value] *)
  | Halt

(** What event activates the handler — the streaming discriminator (sPIN's
    handler taxonomy). [Episode] is the original whole-message handler,
    activated once per matched frame. [Header] runs once per packet with a
    bounded read-only view of the first cell's words. [Payload] runs once
    per cell chunk of the reassembled body: the view holds [chunk_words]
    words and the handler is activated at most [max_chunks] times per
    packet — the declared maximum payload, which is also what the verifier
    uses to bound its per-packet cost. *)
type hkind =
  | Episode
  | Header of { view_words : int }
  | Payload of { chunk_words : int; max_chunks : int }

type program = {
  name : string;
  hkind : hkind;
  seg_words : int;  (** private board-memory segment, in 8-byte words *)
  scratch_words : int;  (** per-activation scratch segment, zeroed at entry *)
  inputs : int;  (** registers initialized (with untrusted values) at entry *)
  code : instr array;
  relocs : int list;
      (** relocation table: pcs of [Const] instructions whose immediate is a
          segment-relative word address the board loader rebases; sorted *)
}

(** Words visible through [Ldv] for this handler kind (0 for [Episode]). *)
val view_words : program -> int

(** Wire bytes one activation is responsible for — [8 * view_words]. The
    certificate's per-byte bound is WCET divided by this; 0 for [Episode]
    handlers, which carry no per-packet obligation. *)
val bytes_per_activation : program -> int

(** NIC cycles one executed instruction costs (33 MHz board clock): 1 for
    register/branch work, 2 for a segment access, 4 for a host wakeup, 8
    for a send. {!Aih_exec.run} charges these; {!Aih_verify} sums them into
    the certificate's worst case. *)
val instr_cycles : instr -> int

(** The relocatable object-code image: a 36-byte header (magic "AIH2",
    instruction and relocation counts, segment size, input count, handler
    kind + its two parameters, scratch size), 12 bytes per instruction,
    4 bytes per relocation entry.

    @raise Invalid_argument if an immediate, limit or target does not fit
    its 32-bit field. *)
val encode : program -> bytes

(** What installing this program costs the board: the {!encode} image plus
    8 bytes for every declared segment and scratch word. This is the
    [code_bytes] the verifier certifies and [Nic.install_handler] debits. *)
val code_bytes : program -> int

(** Pretty-print one instruction (diagnostics, corpus listings). *)
val pp_instr : Format.formatter -> instr -> unit

(** A small assembler for building programs with labels: emit instructions
    in order, [fresh]/[place] labels, and {!Asm.assemble} patches every
    branch target. [const_addr] emits a relocated [Const] (a segment word
    address) and records it in the relocation table. *)
module Asm : sig
  type t
  type label

  val create : unit -> t
  val fresh : t -> label

  (** Bind the label to the next instruction's pc.
      @raise Invalid_argument if the label was already placed. *)
  val place : t -> label -> unit

  val const : t -> reg -> int -> unit
  val const_addr : t -> reg -> int -> unit
  val mov : t -> reg -> reg -> unit
  val bin : t -> binop -> reg -> reg -> reg -> unit
  val bini : t -> binop -> reg -> reg -> int -> unit
  val load : t -> reg -> base:reg -> int -> unit
  val store : t -> reg -> base:reg -> int -> unit
  val ldv : t -> reg -> base:reg -> int -> unit
  val lds : t -> reg -> base:reg -> int -> unit
  val sts : t -> reg -> base:reg -> int -> unit
  val br : t -> cmp -> reg -> reg -> label -> unit
  val bri : t -> cmp -> reg -> int -> label -> unit
  val jmp : t -> label -> unit
  val loop : t -> counter:reg -> limit:int -> exit:label -> unit
  val send : t -> dst:reg -> kind:reg -> obj:reg -> value:reg -> unit
  val wake : t -> seq:reg -> value:reg -> unit
  val halt : t -> unit

  (** @raise Invalid_argument if any referenced label was never placed.
      [?hkind] defaults to [Episode], [?scratch_words] to 0, so episode
      call sites read exactly as before. *)
  val assemble :
    ?hkind:hkind -> ?scratch_words:int -> t -> name:string -> seg_words:int -> inputs:int -> program
end
