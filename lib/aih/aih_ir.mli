(** The AIH firmware instruction set.

    The paper admits Application Interrupt Handlers onto the board only as
    "pointer-safe, relocatable object code" (section 2.3). This module is
    that object code's shape for our simulated board: a small register
    machine whose only memory is the handler's private segment of board
    memory, whose only effects are [send] (emit a frame from protocol
    context), [wake] (fill the host's episode ivar) and segment stores, and
    whose loops must go through an explicitly bounded header.

    A {!program} is what {!Aih_verify.verify} certifies and
    {!Aih_exec.run} executes; {!encode} is the relocatable object-code
    image whose length — plus the declared data segment — is the program's
    honest [code_bytes], the number board-memory accounting charges at
    install time. *)

(** Register index, [0 .. nregs - 1]. *)
type reg = int

(** The machine has 16 integer registers. At activation registers
    [0 .. inputs - 1] carry the event's arguments (untrusted: the verifier
    assumes nothing about their values); the rest start uninitialized. *)
val nregs : int

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
type cmp = Eq | Ne | Lt | Le | Gt | Ge

(** Word addresses are {e segment-relative}: [Load (rd, rs, off)] reads
    word [rs + off] of the handler's own board segment. There is no
    instruction that can name host memory or another handler's segment —
    pointer safety is then the verifier's proof that [rs + off] stays
    inside [0 .. seg_words - 1].

    [Loop { counter; limit; exit }] is the only legal back-edge target: it
    tests [counter >= limit] (exit to [exit]) and otherwise increments
    [counter] and falls through, so a loop whose counter provably enters
    non-negative executes its body at most [limit] times per entry. *)
type instr =
  | Const of reg * int  (** load immediate (relocatable when listed in [relocs]) *)
  | Mov of reg * reg
  | Bin of binop * reg * reg * reg  (** [rd <- rs op rt] *)
  | Bini of binop * reg * reg * int  (** [rd <- rs op imm] *)
  | Load of reg * reg * int  (** [rd <- seg.(rs + off)] *)
  | Store of reg * reg * int  (** [seg.(rs + off) <- rsrc] *)
  | Br of cmp * reg * reg * int  (** branch to target if [rs cmp rt] *)
  | Bri of cmp * reg * int * int  (** branch to target if [rs cmp imm] *)
  | Jmp of int
  | Loop of { counter : reg; limit : int; exit : int }  (** bounded-loop header *)
  | Send of { dst : reg; kind : reg; obj : reg; value : reg }
      (** emit a frame from protocol context (all operands are registers) *)
  | Wake of { seq : reg; value : reg }  (** wake the host episode [seq] with [value] *)
  | Halt

type program = {
  name : string;
  seg_words : int;  (** private board-memory segment, in 8-byte words *)
  inputs : int;  (** registers initialized (with untrusted values) at entry *)
  code : instr array;
  relocs : int list;
      (** relocation table: pcs of [Const] instructions whose immediate is a
          segment-relative word address the board loader rebases; sorted *)
}

(** NIC cycles one executed instruction costs (33 MHz board clock): 1 for
    register/branch work, 2 for a segment access, 4 for a host wakeup, 8
    for a send. {!Aih_exec.run} charges these; {!Aih_verify} sums them into
    the certificate's worst case. *)
val instr_cycles : instr -> int

(** The relocatable object-code image: a 20-byte header (magic, instruction
    and relocation counts, segment size, input count), 12 bytes per
    instruction, 4 bytes per relocation entry.

    @raise Invalid_argument if an immediate, limit or target does not fit
    its 32-bit field. *)
val encode : program -> bytes

(** What installing this program costs the board: the {!encode} image plus
    8 bytes for every declared segment word. This is the [code_bytes] the
    verifier certifies and [Nic.install_handler] debits. *)
val code_bytes : program -> int

(** Pretty-print one instruction (diagnostics, corpus listings). *)
val pp_instr : Format.formatter -> instr -> unit

(** A small assembler for building programs with labels: emit instructions
    in order, [fresh]/[place] labels, and {!Asm.assemble} patches every
    branch target. [const_addr] emits a relocated [Const] (a segment word
    address) and records it in the relocation table. *)
module Asm : sig
  type t
  type label

  val create : unit -> t
  val fresh : t -> label

  (** Bind the label to the next instruction's pc.
      @raise Invalid_argument if the label was already placed. *)
  val place : t -> label -> unit

  val const : t -> reg -> int -> unit
  val const_addr : t -> reg -> int -> unit
  val mov : t -> reg -> reg -> unit
  val bin : t -> binop -> reg -> reg -> reg -> unit
  val bini : t -> binop -> reg -> reg -> int -> unit
  val load : t -> reg -> base:reg -> int -> unit
  val store : t -> reg -> base:reg -> int -> unit
  val br : t -> cmp -> reg -> reg -> label -> unit
  val bri : t -> cmp -> reg -> int -> label -> unit
  val jmp : t -> label -> unit
  val loop : t -> counter:reg -> limit:int -> exit:label -> unit
  val send : t -> dst:reg -> kind:reg -> obj:reg -> value:reg -> unit
  val wake : t -> seq:reg -> value:reg -> unit
  val halt : t -> unit

  (** @raise Invalid_argument if any referenced label was never placed. *)
  val assemble : t -> name:string -> seg_words:int -> inputs:int -> program
end
