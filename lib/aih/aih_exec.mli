(** The AIH firmware interpreter.

    Executes a (verified) {!Aih_ir.program} against the handler's board
    segment, charging NIC cycles per executed instruction through the
    {!services} record's [sv_charge] — so a verified handler's protocol cost is a
    function of the code actually installed, not the flat dispatch guess.
    Charges accrued so far are flushed {e before} every [send] and [wake]
    and at [halt]: state transitions complete (and are paid for) before any
    message leaves, matching the closure handlers' discipline. *)

(** What the firmware may do to the world. The NIC supplies these when it
    activates a verified handler: [sv_send] becomes a protocol-context
    reply, [sv_wake] fills the host episode ivar, [sv_charge] burns NIC
    cycles (or host cycles, on a board without AIH). *)
type services = {
  sv_send : dst:int -> kind:int -> obj:int -> value:int -> unit;
  sv_wake : seq:int -> value:int -> unit;
  sv_charge : int -> unit;
}

(** Raised on a runtime violation — out-of-segment access, division by
    zero, bad shift, runaway pc, or fuel exhaustion. Verified programs
    cannot fault (the checks are defense in depth); an unverified program
    run directly can. *)
exception Fault of string

(** [run p ~mem ~inputs services] activates the program: registers
    [0 .. inputs-1] are loaded from [inputs] (the rest start zero), [mem]
    is the handler's persistent board segment (at least [p.seg_words]
    long), and the return value is the total cycles charged. [view] is the
    read-only window [Ldv] reads — the header words or payload chunk
    streaming dispatch latched for this activation (empty for episode
    handlers). A fresh zeroed scratch segment of [p.scratch_words] words
    backs [Lds]/[Sts] for the duration of the run. [fuel] (default
    1_000_000 instructions) is a hard stop far above any verifiable worst
    case. *)
val run :
  ?fuel:int -> ?view:int array -> Aih_ir.program -> mem:int array -> inputs:int array -> services -> int
