(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 3), the ablations from DESIGN.md section 7, and a set
   of Bechamel microbenchmarks of the simulator substrate.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- --quick      -- scaled-down runs
     dune exec bench/main.exe -- --only fig4,table5
     dune exec bench/main.exe -- --csv out    -- also write CSV files
     dune exec bench/main.exe -- --list
     dune exec bench/main.exe -- --no-substrate
     dune exec bench/main.exe -- --json BENCH_7.json   -- persist a baseline
     dune exec bench/main.exe -- --quick --compare BENCH_6.json  -- CI gate *)

module Figures = Cni_experiments.Figures
module Ablations = Cni_experiments.Ablations
module Report = Cni_experiments.Report
module Baseline = Cni_experiments.Bench_baseline

let experiments = Figures.all @ Ablations.all

(* ------------------------------------------------------------------ *)
(* Substrate microbenchmarks (Bechamel)                                *)
(* ------------------------------------------------------------------ *)

(* substrate benchmarks under the zero-alloc contract: --compare fails if any
   of these ever allocates per run again, on any machine *)
let zero_alloc_contract = [ "trace: 10k emit (disabled)" ]

let substrate_tests () =
  let open Bechamel in
  (* fixed-instruction-count integer spin: pure ALU work whose time depends
     only on the machine's speed, used by --compare to rescale a baseline
     recorded on a different machine (Bench_baseline.calibration_name) *)
  let calibration =
    Test.make ~name:Baseline.calibration_name
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 1 to 1_000_000 do
             acc := (!acc + i) * 0x9E3779B1 land max_int
           done;
           ignore (Sys.opaque_identity !acc)))
  in
  let engine_events =
    Test.make ~name:"engine: 10k timer events"
      (Staged.stage (fun () ->
           let eng = Cni_engine.Engine.create () in
           for i = 1 to 10_000 do
             Cni_engine.Engine.at eng (Cni_engine.Time.ns i) (fun () -> ())
           done;
           Cni_engine.Engine.run eng))
  in
  let heap_ops =
    Test.make ~name:"heap: 10k push+pop"
      (Staged.stage (fun () ->
           let h = Cni_engine.Heap.create () in
           for i = 1 to 10_000 do
             Cni_engine.Heap.add h ~key:(i * 7 mod 1000) ~seq:i i
           done;
           while not (Cni_engine.Heap.is_empty h) do
             ignore (Cni_engine.Heap.pop_min h)
           done))
  in
  (* mutable state (the cache's line array, the classifier's dispatch index)
     is created INSIDE the staged thunk: a structure built once outside would
     warm across Bechamel iterations, so every run after the first would
     measure pre-warmed state instead of the advertised workload *)
  let cache_access =
    Test.make ~name:"cache: 10k line accesses"
      (Staged.stage (fun () ->
           let cache = Cni_machine.Cache.create Cni_machine.Params.default in
           for i = 0 to 9_999 do
             ignore (Cni_machine.Cache.access_line cache ~addr:(i * 32 * 7) ~write:(i land 1 = 0))
           done))
  in
  let classifier =
    (* the encoded header is immutable input data, so it may stay outside *)
    let hdr =
      Cni_nic.Wire.encode
        {
          Cni_nic.Wire.kind = 1;
          cacheable = false;
          has_data = false;
          src = 0;
          channel = 42;
          obj = 0;
          aux = 0;
        }
    in
    Test.make ~name:"pathfinder: 1k classifications vs 64 patterns"
      (Staged.stage (fun () ->
           let cls = Cni_pathfinder.Classifier.create () in
           for chan = 0 to 63 do
             ignore
               (Cni_pathfinder.Classifier.add cls (Cni_nic.Wire.pattern_channel ~channel:chan) chan)
           done;
           for _ = 1 to 1000 do
             ignore (Cni_pathfinder.Classifier.classify cls hdr)
           done))
  in
  let aal5 =
    let frame = Bytes.make 2048 'x' in
    Test.make ~name:"aal5: segment+reassemble 2KB"
      (Staged.stage (fun () ->
           let cells = Cni_atm.Aal5.segment ~vpi:0 ~vci:7 frame in
           let r = Cni_atm.Aal5.Reassembler.create () in
           List.iter (fun c -> ignore (Cni_atm.Aal5.Reassembler.push r c)) cells))
  in
  let diff =
    let twin = Bytes.make 2048 '\000' in
    let current = Bytes.copy twin in
    for w = 0 to 255 do
      if w mod 3 = 0 then Bytes.set_int64_ne current (w * 8) (Int64.of_int w)
    done;
    Test.make ~name:"dsm: diff create+apply 2KB page"
      (Staged.stage (fun () ->
           let d = Cni_dsm.Diff.create ~twin ~current in
           let target = Bytes.copy twin in
           Cni_dsm.Diff.apply d target))
  in
  (* the zero-allocation contract of the disabled trace hot path: emit takes
     only immediates and unboxed labels, and builds no record unless the
     category check passes — minor words/run must stay at 0 *)
  let trace_disabled =
    Test.make ~name:"trace: 10k emit (disabled)"
      (Staged.stage (fun () ->
           Cni_engine.Trace.disable ();
           for i = 1 to 10_000 do
             Cni_engine.Trace.emit ~t_ps:i ~node:0 Cni_engine.Trace.Nic ~label:"bench"
               ~payload:i
           done))
  in
  let trace_enabled =
    Test.make ~name:"trace: 10k emit (enabled)"
      (Staged.stage (fun () ->
           Cni_engine.Trace.enable ();
           for i = 1 to 10_000 do
             Cni_engine.Trace.emit ~t_ps:i ~node:0 Cni_engine.Trace.Nic ~label:"bench"
               ~payload:i
           done;
           Cni_engine.Trace.disable ()))
  in
  [
    calibration;
    engine_events;
    heap_ops;
    cache_access;
    classifier;
    aal5;
    diff;
    trace_disabled;
    trace_enabled;
  ]

(* Runs the Bechamel suite, prints the human table, and returns the per-test
   OLS estimates for the persisted baseline. *)
let run_substrate () =
  let open Bechamel in
  print_endline "== substrate microbenchmarks (Bechamel, wall-clock of the simulator itself) ==";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let clock = Toolkit.Instance.monotonic_clock in
  let alloc = Toolkit.Instance.minor_allocated in
  let instances = [ clock; alloc ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let collected = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let times = Analyze.all ols clock results in
      let allocs = Analyze.all ols alloc results in
      Hashtbl.iter
        (fun name result ->
          let words =
            match Option.map Analyze.OLS.estimates (Hashtbl.find_opt allocs name) with
            | Some (Some [ w ]) -> Some w
            | _ -> None
          in
          let words_str =
            match words with
            | Some w -> Printf.sprintf "%14.1f mnr words/run" w
            | None -> "(no alloc estimate)"
          in
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "  %-48s %14.1f ns/run  %s\n%!" name est words_str;
              collected :=
                ( name,
                  {
                    Baseline.ns_per_run = est;
                    minor_words_per_run = Option.value words ~default:Float.nan;
                  } )
                :: !collected
          | _ -> Printf.printf "  %-48s (no estimate)\n%!" name)
        times)
    (substrate_tests ());
  print_newline ();
  List.rev !collected

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let only = ref [] in
  let csv_dir = ref None in
  let list_only = ref false in
  let substrate = ref true in
  let json_out = ref None in
  let compare_against = ref None in
  let threshold_pct = ref 15.0 in
  let args =
    [
      ("--quick", Arg.Set Figures.quick, "scale runs down (shapes preserved)");
      ( "--only",
        Arg.String (fun s -> only := String.split_on_char ',' s),
        "comma-separated experiment ids" );
      ("--csv", Arg.String (fun d -> csv_dir := Some d), "also write CSV files to this directory");
      ("--list", Arg.Set list_only, "list experiment ids and exit");
      ("--no-substrate", Arg.Clear substrate, "skip the Bechamel substrate microbenchmarks");
      ( "--json",
        Arg.String (fun f -> json_out := Some f),
        "write this run's results as a machine-readable baseline (BENCH_<pr>.json)" );
      ( "--compare",
        Arg.String (fun f -> compare_against := Some f),
        "compare this run against a committed baseline JSON; exit 1 on regression" );
      ( "--compare-threshold",
        Arg.Set_float threshold_pct,
        "relative time-regression threshold for --compare, in percent (default 15)" );
    ]
  in
  Arg.parse args (fun a -> raise (Arg.Bad ("unknown argument " ^ a))) "bench/main.exe [options]";
  if !list_only then begin
    List.iter (fun (id, _) -> print_endline id) experiments;
    (* the substrate suite is addressable with --only like any experiment *)
    print_endline "substrate";
    exit 0
  end;
  let selected =
    match !only with
    | [] -> experiments
    | ids ->
        List.iter
          (fun id ->
            if id <> "substrate" && not (List.mem_assoc id experiments) then begin
              Printf.eprintf "unknown experiment id %S (use --list)\n" id;
              exit 2
            end)
          ids;
        List.filter (fun (id, _) -> List.mem id ids) experiments
  in
  let substrate_selected = !substrate && (!only = [] || List.mem "substrate" !only) in
  Printf.printf "CNI reproduction bench harness (%d experiment(s)%s%s)\n\n"
    (List.length selected + if substrate_selected then 1 else 0)
    (if substrate_selected then ", incl. substrate" else "")
    (if !Figures.quick then ", quick mode" else "");
  let t_start = Unix.gettimeofday () in
  let experiment_results =
    List.map
      (fun (id, f) ->
        let t0 = Unix.gettimeofday () in
        let report = f () in
        Report.print report;
        Option.iter
          (fun dir ->
            Report.write_csv ~dir report;
            Report.write_metrics_json ~dir report)
          !csv_dir;
        let wall_s = Unix.gettimeofday () -. t0 in
        Printf.printf "  [%s finished in %.1fs]\n\n%!" id wall_s;
        (id, { Baseline.wall_s; metrics = report.Report.metrics }))
      selected
  in
  let substrate_results = if substrate_selected then run_substrate () else [] in
  Printf.printf "total bench time: %.1fs\n" (Unix.gettimeofday () -. t_start);
  let label =
    match !json_out with
    | Some f -> Filename.remove_extension (Filename.basename f)
    | None -> "bench"
  in
  let current =
    Baseline.make ~label ~quick:!Figures.quick ~zero_alloc:zero_alloc_contract
      ~substrate:substrate_results ~experiments:experiment_results ()
  in
  Option.iter
    (fun file ->
      Baseline.save ~file current;
      Printf.printf "baseline written to %s\n" file)
    !json_out;
  match !compare_against with
  | None -> ()
  | Some file -> (
      match Baseline.load ~file with
      | Error msg ->
          Printf.eprintf "cannot load baseline %s: %s\n" file msg;
          exit 2
      | Ok baseline ->
          Printf.printf "\n== compare against %s (label %S) ==\n" file baseline.Baseline.label;
          let verdict =
            Baseline.compare ~baseline ~current ~threshold:(!threshold_pct /. 100.) ()
          in
          Format.printf "%a" Baseline.pp_verdict verdict;
          if not (Baseline.ok verdict) then exit 1)
