(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 3), the ablations from DESIGN.md section 7, and a set
   of Bechamel microbenchmarks of the simulator substrate.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- --quick      -- scaled-down runs
     dune exec bench/main.exe -- --only fig4,table5
     dune exec bench/main.exe -- --csv out    -- also write CSV files
     dune exec bench/main.exe -- --list
     dune exec bench/main.exe -- --no-substrate *)

module Figures = Cni_experiments.Figures
module Ablations = Cni_experiments.Ablations
module Report = Cni_experiments.Report

let experiments = Figures.all @ Ablations.all

(* ------------------------------------------------------------------ *)
(* Substrate microbenchmarks (Bechamel)                                *)
(* ------------------------------------------------------------------ *)

let substrate_tests () =
  let open Bechamel in
  let engine_events =
    Test.make ~name:"engine: 10k timer events"
      (Staged.stage (fun () ->
           let eng = Cni_engine.Engine.create () in
           for i = 1 to 10_000 do
             Cni_engine.Engine.at eng (Cni_engine.Time.ns i) (fun () -> ())
           done;
           Cni_engine.Engine.run eng))
  in
  let heap_ops =
    Test.make ~name:"heap: 10k push+pop"
      (Staged.stage (fun () ->
           let h = Cni_engine.Heap.create () in
           for i = 1 to 10_000 do
             Cni_engine.Heap.add h ~key:(i * 7 mod 1000) ~seq:i i
           done;
           while not (Cni_engine.Heap.is_empty h) do
             ignore (Cni_engine.Heap.pop_min h)
           done))
  in
  let cache_access =
    let cache = Cni_machine.Cache.create Cni_machine.Params.default in
    Test.make ~name:"cache: 10k line accesses"
      (Staged.stage (fun () ->
           for i = 0 to 9_999 do
             ignore (Cni_machine.Cache.access_line cache ~addr:(i * 32 * 7) ~write:(i land 1 = 0))
           done))
  in
  let classifier =
    let cls = Cni_pathfinder.Classifier.create () in
    for chan = 0 to 63 do
      ignore (Cni_pathfinder.Classifier.add cls (Cni_nic.Wire.pattern_channel ~channel:chan) chan)
    done;
    let hdr =
      Cni_nic.Wire.encode
        {
          Cni_nic.Wire.kind = 1;
          cacheable = false;
          has_data = false;
          src = 0;
          channel = 42;
          obj = 0;
          aux = 0;
        }
    in
    Test.make ~name:"pathfinder: 1k classifications vs 64 patterns"
      (Staged.stage (fun () ->
           for _ = 1 to 1000 do
             ignore (Cni_pathfinder.Classifier.classify cls hdr)
           done))
  in
  let aal5 =
    let frame = Bytes.make 2048 'x' in
    Test.make ~name:"aal5: segment+reassemble 2KB"
      (Staged.stage (fun () ->
           let cells = Cni_atm.Aal5.segment ~vpi:0 ~vci:7 frame in
           let r = Cni_atm.Aal5.Reassembler.create () in
           List.iter (fun c -> ignore (Cni_atm.Aal5.Reassembler.push r c)) cells))
  in
  let diff =
    let twin = Bytes.make 2048 '\000' in
    let current = Bytes.copy twin in
    for w = 0 to 255 do
      if w mod 3 = 0 then Bytes.set_int64_ne current (w * 8) (Int64.of_int w)
    done;
    Test.make ~name:"dsm: diff create+apply 2KB page"
      (Staged.stage (fun () ->
           let d = Cni_dsm.Diff.create ~twin ~current in
           let target = Bytes.copy twin in
           Cni_dsm.Diff.apply d target))
  in
  (* the zero-allocation contract of the disabled trace hot path: emit takes
     only immediates and unboxed labels, and builds no record unless the
     category check passes — minor words/run must stay at 0 *)
  let trace_disabled =
    Test.make ~name:"trace: 10k emit (disabled)"
      (Staged.stage (fun () ->
           Cni_engine.Trace.disable ();
           for i = 1 to 10_000 do
             Cni_engine.Trace.emit ~t_ps:i ~node:0 Cni_engine.Trace.Nic ~label:"bench"
               ~payload:i
           done))
  in
  let trace_enabled =
    Test.make ~name:"trace: 10k emit (enabled)"
      (Staged.stage (fun () ->
           Cni_engine.Trace.enable ();
           for i = 1 to 10_000 do
             Cni_engine.Trace.emit ~t_ps:i ~node:0 Cni_engine.Trace.Nic ~label:"bench"
               ~payload:i
           done;
           Cni_engine.Trace.disable ()))
  in
  [ engine_events; heap_ops; cache_access; classifier; aal5; diff; trace_disabled; trace_enabled ]

let run_substrate () =
  let open Bechamel in
  print_endline "== substrate microbenchmarks (Bechamel, wall-clock of the simulator itself) ==";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let clock = Toolkit.Instance.monotonic_clock in
  let alloc = Toolkit.Instance.minor_allocated in
  let instances = [ clock; alloc ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let times = Analyze.all ols clock results in
      let allocs = Analyze.all ols alloc results in
      Hashtbl.iter
        (fun name result ->
          let words =
            match Option.map Analyze.OLS.estimates (Hashtbl.find_opt allocs name) with
            | Some (Some [ w ]) -> Printf.sprintf "%14.1f mnr words/run" w
            | _ -> "(no alloc estimate)"
          in
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-48s %14.1f ns/run  %s\n%!" name est words
          | _ -> Printf.printf "  %-48s (no estimate)\n%!" name)
        times)
    (substrate_tests ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let only = ref [] in
  let csv_dir = ref None in
  let list_only = ref false in
  let substrate = ref true in
  let args =
    [
      ("--quick", Arg.Set Figures.quick, "scale runs down (shapes preserved)");
      ( "--only",
        Arg.String (fun s -> only := String.split_on_char ',' s),
        "comma-separated experiment ids" );
      ("--csv", Arg.String (fun d -> csv_dir := Some d), "also write CSV files to this directory");
      ("--list", Arg.Set list_only, "list experiment ids and exit");
      ("--no-substrate", Arg.Clear substrate, "skip the Bechamel substrate microbenchmarks");
    ]
  in
  Arg.parse args (fun a -> raise (Arg.Bad ("unknown argument " ^ a))) "bench/main.exe [options]";
  if !list_only then begin
    List.iter (fun (id, _) -> print_endline id) experiments;
    exit 0
  end;
  let selected =
    match !only with
    | [] -> experiments
    | ids ->
        List.iter
          (fun id ->
            if id <> "substrate" && not (List.mem_assoc id experiments) then begin
              Printf.eprintf "unknown experiment id %S (use --list)\n" id;
              exit 2
            end)
          ids;
        List.filter (fun (id, _) -> List.mem id ids) experiments
  in
  Printf.printf "CNI reproduction bench harness (%d experiment(s)%s)\n\n" (List.length selected)
    (if !Figures.quick then ", quick mode" else "");
  let t_start = Unix.gettimeofday () in
  List.iter
    (fun (id, f) ->
      let t0 = Unix.gettimeofday () in
      let report = f () in
      Report.print report;
      Option.iter
        (fun dir ->
          Report.write_csv ~dir report;
          Report.write_metrics_json ~dir report)
        !csv_dir;
      Printf.printf "  [%s finished in %.1fs]\n\n%!" id (Unix.gettimeofday () -. t0))
    selected;
  if !substrate && (!only = [] || List.mem "substrate" !only) then run_substrate ();
  Printf.printf "total bench time: %.1fs\n" (Unix.gettimeofday () -. t_start)
