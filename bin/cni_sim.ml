(* cni_sim: command-line front end to the simulator.

   Examples:
     cni_sim params
     cni_sim run --app jacobi --n 256 --procs 8
     cni_sim run --app cholesky --matrix bcsstk14 --procs 8 --nic standard
     cni_sim run --app water --molecules 216 --procs 16 --mc-kb 64
     cni_sim latency --bytes 4096 *)

module Time = Cni_engine.Time
module Trace = Cni_engine.Trace
module Stats = Cni_engine.Stats
module Params = Cni_machine.Params
module Jacobi = Cni_apps.Jacobi
module Water = Cni_apps.Water
module Cholesky = Cni_apps.Cholesky
module Sparse = Cni_apps.Sparse
module Runner = Cni_experiments.Runner
module Microbench = Cni_experiments.Microbench
module Report = Cni_experiments.Report
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Common options                                                      *)
(* ------------------------------------------------------------------ *)

let nic_kind =
  let conv_nic = Arg.enum [ ("cni", `Cni_k); ("osiris", `Osiris_k); ("standard", `Standard_k) ] in
  Arg.(value & opt conv_nic `Cni_k & info [ "nic" ] ~doc:"Network interface: $(b,cni), $(b,osiris) or $(b,standard).")

let procs = Arg.(value & opt int 8 & info [ "p"; "procs" ] ~doc:"Number of workstation nodes.")
let page_bytes = Arg.(value & opt int 2048 & info [ "page-bytes" ] ~doc:"Shared page size.")
let mc_kb = Arg.(value & opt int 32 & info [ "mc-kb" ] ~doc:"Message Cache size in KB (0 disables).")
let no_aih = Arg.(value & flag & info [ "no-aih" ] ~doc:"Run protocol handlers on the host.")

let unrestricted =
  Arg.(value & flag & info [ "unrestricted-cells" ] ~doc:"Mythical ATM with unlimited cell size (Table 5).")

let rx_policy_arg =
  let rx_policy_conv =
    Arg.enum
      [ ("interrupt", `Interrupt); ("poll", `Poll); ("hybrid", `Hybrid); ("adaptive", `Adaptive) ]
  in
  Arg.(
    value & opt rx_policy_conv `Hybrid
    & info [ "rx-policy" ]
        ~doc:
          "CNI receive wakeup policy for host-resident handlers: $(b,interrupt), $(b,poll), \
           $(b,hybrid) (poll only while waiting on the network; the paper's design) or \
           $(b,adaptive) (EWMA arrival-rate estimator picks the mode, with hysteresis).")

let rx_batch_arg =
  Arg.(
    value & opt int 1
    & info [ "rx-batch" ]
        ~doc:
          "Receive coalescing depth: one host wakeup drains up to this many queued frames \
           (1 = one wakeup per frame).")

let to_rx_policy = function
  | `Interrupt -> Cni_nic.Nic.Rx_interrupt
  | `Poll -> Cni_nic.Nic.Rx_poll
  | `Hybrid -> Cni_nic.Nic.Rx_hybrid
  | `Adaptive -> Cni_nic.Nic.Rx_adaptive Cni_nic.Nic.default_rx_adaptive

let make_params ~page ~cells =
  let p = { Params.default with Params.page_bytes = page } in
  if cells then { p with Params.cell_payload_bytes = 1 lsl 26 } else p

let make_kind ?(rx_policy = `Hybrid) ?(rx_batch = 1) nic ~mc_kb ~no_aih =
  match nic with
  | `Standard_k -> Runner.standard
  | `Osiris_k -> Runner.osiris
  | `Cni_k ->
      Runner.cni ~mc_bytes:(mc_kb * 1024) ~aih:(not no_aih)
        ~rx_policy:(to_rx_policy rx_policy) ~rx_batch ()

(* ------------------------------------------------------------------ *)
(* Observability options                                               *)
(* ------------------------------------------------------------------ *)

let parse_trace_cats spec =
  if String.lowercase_ascii spec = "all" then Ok Trace.categories
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest -> (
          match Trace.category_of_name (String.trim name) with
          | Some c -> go (c :: acc) rest
          | None ->
              Error
                (`Msg
                   (Printf.sprintf "unknown category %S (expected all, engine, nic, dsm, atm, app)"
                      name)))
    in
    go [] (String.split_on_char ',' spec)

let cats_conv =
  Arg.conv
    ( parse_trace_cats,
      fun ppf cats ->
        Format.pp_print_string ppf (String.concat "," (List.map Trace.category_name cats)) )

let trace_arg =
  Arg.(
    value
    & opt ~vopt:(Some Trace.categories) (some cats_conv) None
    & info [ "trace" ] ~docv:"CATS"
        ~doc:
          "Enable structured tracing. $(docv) is $(b,all) or a comma-separated subset of \
           $(b,engine), $(b,nic), $(b,dsm), $(b,atm), $(b,app).")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the trace to $(docv) after the run: CSV when the name ends in $(b,.csv), \
           JSON lines otherwise. Without this, $(b,--trace) prints to stderr.")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the full metrics-registry snapshot as JSON to $(docv).")

let setup_trace spec = Option.iter (fun cats -> Trace.enable ~cats ()) spec

let finish_trace ~spec ~out =
  if spec <> None then begin
    (match out with
    | Some file ->
        let oc = open_out file in
        if Filename.check_suffix file ".csv" then Trace.write_csv oc else Trace.write_jsonl oc;
        close_out oc;
        Printf.eprintf "trace: %d records written to %s (%d emitted, %d overwritten)\n%!"
          (Trace.length ()) file (Trace.emitted ()) (Trace.dropped ())
    | None -> Trace.write_human stderr);
    Trace.disable ()
  end

let write_metrics ~out snapshot =
  Option.iter
    (fun file ->
      let oc = open_out file in
      output_string oc (Stats.Registry.snapshot_to_json snapshot);
      output_char oc '\n';
      close_out oc)
    out

(* ------------------------------------------------------------------ *)
(* Fault injection options                                             *)
(* ------------------------------------------------------------------ *)

module Faults = Cni_atm.Faults

let loss_arg =
  Arg.(
    value & opt float 0.
    & info [ "loss" ] ~docv:"P"
        ~doc:
          "Per-cell loss probability injected into the fabric. Any nonzero fault rate \
           enables the NIC reliable-delivery protocol (acks, retransmission with backoff, \
           duplicate suppression).")

let corrupt_arg =
  Arg.(
    value & opt float 0.
    & info [ "corrupt" ] ~docv:"P"
        ~doc:
          "Per-cell corruption probability: affected frames arrive but fail the AAL5 CRC \
           and are dropped at the receiving board, then recovered by retransmission.")

let fault_seed_arg =
  Arg.(
    value & opt int 42
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:"Seed of the fault model's random stream (runs are reproducible per seed).")

let window_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ n; a; b ] -> (
        try
          let node = int_of_string (String.trim n)
          and from_us = int_of_string (String.trim a)
          and upto_us = int_of_string (String.trim b) in
          Ok { Faults.w_node = node; w_from = Time.us from_us; w_upto = Time.us upto_us }
        with Failure _ -> Error (`Msg "expected NODE:FROM_US:UPTO_US (integers)"))
    | _ -> Error (`Msg "expected NODE:FROM_US:UPTO_US")
  in
  let print ppf (w : Faults.window) =
    Format.fprintf ppf "%d:%.0f:%.0f" w.Faults.w_node
      (Time.to_us_float w.Faults.w_from)
      (Time.to_us_float w.Faults.w_upto)
  in
  Arg.conv (parse, print)

let link_down_arg =
  Arg.(
    value & opt_all window_conv []
    & info [ "link-down" ] ~docv:"NODE:FROM_US:UPTO_US"
        ~doc:
          "Sever $(b,NODE)'s link between the two times (microseconds, end exclusive); \
           every frame entering or leaving it is discarded. Repeatable.")

let make_faults ~seed ~loss ~corrupt ~link_down =
  let cfg =
    { Faults.none with Faults.seed; cell_loss = loss; cell_corrupt = corrupt; link_down }
  in
  if Faults.is_none cfg then None else Some cfg

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let app_conv = Arg.enum [ ("jacobi", `Jacobi); ("water", `Water); ("cholesky", `Cholesky) ]
let app_arg = Arg.(value & opt app_conv `Jacobi & info [ "app" ] ~doc:"jacobi, water or cholesky.")
let n = Arg.(value & opt int 256 & info [ "size" ] ~doc:"Jacobi matrix dimension (n).")
let iterations = Arg.(value & opt int 16 & info [ "iterations" ] ~doc:"Jacobi iterations.")
let molecules = Arg.(value & opt int 216 & info [ "molecules" ] ~doc:"Water molecules.")

let matrix_conv =
  Arg.enum [ ("bcsstk14", `B14); ("bcsstk15", `B15); ("small", `Small) ]

let matrix =
  Arg.(value & opt matrix_conv `B14 & info [ "matrix" ] ~doc:"Cholesky input (bcsstk14-like, bcsstk15-like or small).")

let nic_collectives_arg =
  Arg.(
    value & flag
    & info [ "nic-collectives" ]
        ~doc:
          "Run DSM barriers on the boards' combining tree (NIC-resident collectives) \
           instead of the centralised node-0 manager.")

let run_cmd =
  let doc = "Run a benchmark application on a simulated cluster." in
  let run app nic procs page mc_kb no_aih rx_policy rx_batch cells n iterations molecules
      matrix loss corrupt link_down fault_seed nic_collectives trace trace_out metrics_out =
    let params = make_params ~page ~cells in
    let kind = make_kind ~rx_policy ~rx_batch nic ~mc_kb ~no_aih in
    let barrier_impl = if nic_collectives then `Nic_collective else `Centralised in
    let faults = make_faults ~seed:fault_seed ~loss ~corrupt ~link_down in
    setup_trace trace;
    let checksum = ref nan in
    let application cluster lrcs =
      match app with
      | `Jacobi ->
          checksum :=
            (Jacobi.run cluster lrcs { Jacobi.default_config with Jacobi.n; iterations })
              .Jacobi.checksum
      | `Water ->
          checksum :=
            (Water.run cluster lrcs { Water.default_config with Water.molecules })
              .Water.checksum
      | `Cholesky ->
          let a =
            match matrix with
            | `B14 -> Cholesky.bcsstk14_like ()
            | `B15 -> Cholesky.bcsstk15_like ()
            | `Small -> Sparse.stiffness_like ~n:300 ~dofs:3 ~seed:1
          in
          checksum := (Cholesky.run cluster lrcs (Cholesky.default_config a)).Cholesky.checksum
    in
    let r = Runner.run ~params ?faults ~barrier_impl ~kind ~procs application in
    finish_trace ~spec:trace ~out:trace_out;
    write_metrics ~out:metrics_out r.Runner.metrics;
    Printf.printf "elapsed            %s  (%.3f x 10^9 CPU cycles)\n"
      (Format.asprintf "%a" Time.pp r.Runner.elapsed)
      (r.Runner.elapsed_cycles /. 1e9);
    Printf.printf "computation        %s\n" (Format.asprintf "%a" Time.pp r.Runner.computation);
    Printf.printf "synch overhead     %s\n" (Format.asprintf "%a" Time.pp r.Runner.synch_overhead);
    Printf.printf "synch delay        %s\n" (Format.asprintf "%a" Time.pp r.Runner.synch_delay);
    Printf.printf "network packets    %d (%d wire bytes)\n" r.Runner.packets r.Runner.wire_bytes;
    Printf.printf "cache hit ratio    %.1f%%\n" r.Runner.hit_ratio;
    Printf.printf "host interrupts    %d\n" r.Runner.host_interrupts;
    Printf.printf "host polls         %d (%d wasted)\n" r.Runner.polls r.Runner.wasted_polls;
    Printf.printf "checksum           %.17g\n" !checksum;
    if faults <> None then
      Printf.printf "faults             %d frames destroyed, %d retransmits\n"
        r.Runner.fault_drops r.Runner.retransmits;
    if r.Runner.message_mix <> [] then begin
      Printf.printf "protocol traffic  ";
      List.iter (fun (k, n) -> Printf.printf " %s=%d" k n) r.Runner.message_mix;
      print_newline ()
    end
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ app_arg $ nic_kind $ procs $ page_bytes $ mc_kb $ no_aih $ rx_policy_arg
      $ rx_batch_arg $ unrestricted $ n $ iterations $ molecules $ matrix $ loss_arg
      $ corrupt_arg $ link_down_arg $ fault_seed_arg $ nic_collectives_arg $ trace_arg
      $ trace_out $ metrics_out)

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)
(* ------------------------------------------------------------------ *)

let sweep_cmd =
  let doc = "Sweep processor counts for one application, both interfaces." in
  let run app page mc_kb no_aih cells n iterations molecules matrix =
    let params = make_params ~page ~cells in
    let application cluster lrcs =
      match app with
      | `Jacobi ->
          ignore (Jacobi.run cluster lrcs { Jacobi.default_config with Jacobi.n; iterations })
      | `Water -> ignore (Water.run cluster lrcs { Water.default_config with Water.molecules })
      | `Cholesky ->
          let a =
            match matrix with
            | `B14 -> Cholesky.bcsstk14_like ()
            | `B15 -> Cholesky.bcsstk15_like ()
            | `Small -> Sparse.stiffness_like ~n:300 ~dofs:3 ~seed:1
          in
          ignore (Cholesky.run cluster lrcs (Cholesky.default_config a))
    in
    Printf.printf "%5s  %12s  %12s  %8s  %8s  %6s\n" "procs" "cni" "standard" "sp-cni"
      "sp-std" "hit-%";
    let t1c = ref 1.0 and t1s = ref 1.0 in
    List.iter
      (fun procs ->
        let kc = make_kind `Cni_k ~mc_kb ~no_aih in
        let rc = Runner.run ~params ~kind:kc ~procs application in
        let rs = Runner.run ~params ~kind:Runner.standard ~procs application in
        let tc = Time.to_s_float rc.Runner.elapsed and ts = Time.to_s_float rs.Runner.elapsed in
        if procs = 1 then begin
          t1c := tc;
          t1s := ts
        end;
        Printf.printf "%5d  %12s  %12s  %8.2f  %8.2f  %6.1f\n%!" procs
          (Format.asprintf "%a" Time.pp rc.Runner.elapsed)
          (Format.asprintf "%a" Time.pp rs.Runner.elapsed)
          (!t1c /. tc) (!t1s /. ts) rc.Runner.hit_ratio)
      [ 1; 2; 4; 8; 16; 32 ]
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const run $ app_arg $ page_bytes $ mc_kb $ no_aih $ unrestricted $ n $ iterations
      $ molecules $ matrix)

(* ------------------------------------------------------------------ *)
(* latency                                                             *)
(* ------------------------------------------------------------------ *)

let latency_cmd =
  let doc = "One-way node-to-node latency (Figure 14 microbenchmark)." in
  let bytes = Arg.(value & opt int 4096 & info [ "bytes" ] ~doc:"Message size.") in
  let run nic bytes page mc_kb cells =
    let params = make_params ~page ~cells in
    let kind =
      match nic with
      | `Standard_k -> Runner.standard
      | `Osiris_k -> Runner.osiris
      | `Cni_k -> Runner.cni ~mc_bytes:(mc_kb * 1024) ~aih:false ()
    in
    let t = Microbench.latency ~params ~kind ~bytes () in
    Printf.printf "%d bytes: %s one-way (second send of a warm buffer)\n" bytes
      (Format.asprintf "%a" Time.pp t)
  in
  Cmd.v (Cmd.info "latency" ~doc)
    Term.(const run $ nic_kind $ bytes $ page_bytes $ mc_kb $ unrestricted)

(* ------------------------------------------------------------------ *)
(* collectives                                                         *)
(* ------------------------------------------------------------------ *)

let collectives_cmd =
  let doc = "Collective-operation latency: NIC combining tree vs host-driven." in
  let nodes_arg =
    Arg.(value & opt int 8 & info [ "nodes" ] ~doc:"Number of workstation nodes.")
  in
  let reps_arg = Arg.(value & opt int 8 & info [ "reps" ] ~doc:"Episodes per measurement.") in
  let host_arg =
    Arg.(
      value & flag
      & info [ "host" ]
          ~doc:"Use the host-driven collectives (dissemination/binomial) instead of the \
                NIC combining tree.")
  in
  let run nic nodes reps host mc_kb no_aih =
    let kind = make_kind nic ~mc_kb ~no_aih in
    let p = Microbench.collective_latency ~reps ~kind ~nodes ~nic:(not host) () in
    Printf.printf "impl               %s\n" (if host then "host-driven" else "nic-tree");
    Printf.printf "nodes              %d\n" nodes;
    Printf.printf "barrier latency    %.1f us\n" p.Microbench.barrier_us;
    Printf.printf "allreduce latency  %.1f us\n" p.Microbench.allreduce_us;
    Printf.printf "host interrupts    %d\n" p.Microbench.interrupts
  in
  Cmd.v (Cmd.info "collectives" ~doc)
    Term.(const run $ nic_kind $ nodes_arg $ reps_arg $ host_arg $ mc_kb $ no_aih)

(* ------------------------------------------------------------------ *)
(* aih-verify                                                          *)
(* ------------------------------------------------------------------ *)

let aih_verify_cmd =
  let doc =
    "Run the AIH static verifier over the shipped corpus and the generated collectives \
     firmware; exit non-zero on any unexpected accept or reject."
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Print every program, not just mismatches.")
  in
  let run verbose =
    let module Verify = Cni_aih.Aih_verify in
    let module Cir = Cni_mp.Collectives_ir in
    let total = ref 0 and mismatches = ref 0 in
    let expect_ok name p =
      incr total;
      match Verify.verify p with
      | Ok c ->
          if verbose then
            Printf.printf "accept  %-40s wcet=%d cycles, code=%d bytes\n" name
              c.Verify.wcet_nic_cycles c.Verify.code_bytes
      | Error rj ->
          incr mismatches;
          Printf.printf "MISMATCH %-40s expected accept, got: %s\n" name (Verify.explain rj)
    in
    List.iter (fun (name, p) -> expect_ok name p) Cni_aih.Aih_corpus.good;
    List.iter
      (fun op ->
        List.iter
          (fun (size, fanout) ->
            List.iter
              (fun rank ->
                let p = Cir.program ~op ~rank ~size ~fanout in
                expect_ok p.Cni_aih.Aih_ir.name p)
              [ 0; 1; size - 1 ])
          [ (2, 2); (8, 2); (16, 4); (256, 8) ])
      [ Cir.Sum; Cir.Max; Cir.Min ];
    List.iter
      (fun (name, expected, p) ->
        incr total;
        match Verify.verify p with
        | Ok _ ->
            incr mismatches;
            Printf.printf "MISMATCH %-40s accepted, expected %s\n" name expected
        | Error rj ->
            let got = Verify.reason_name rj.Verify.rj_reason in
            if got <> expected then begin
              incr mismatches;
              Printf.printf "MISMATCH %-40s expected %s, got %s\n" name expected got
            end
            else if verbose then
              Printf.printf "reject  %-40s %s\n" name (Verify.explain rj))
      Cni_aih.Aih_corpus.bad;
    Printf.printf "aih-verify: %d programs, %d mismatches\n" !total !mismatches;
    if !mismatches > 0 then exit 1
  in
  Cmd.v (Cmd.info "aih-verify" ~doc) Term.(const run $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* params                                                              *)
(* ------------------------------------------------------------------ *)

let params_cmd =
  let doc = "Print the simulation parameters (paper Table 1)." in
  let run () = Report.print (Cni_experiments.Figures.table1 ()) in
  Cmd.v (Cmd.info "params" ~doc) Term.(const run $ const ())

let () =
  let doc = "CNI cluster network interface simulator (HPDC'96 reproduction)" in
  let info = Cmd.info "cni_sim" ~doc ~version:"1.0.0" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; sweep_cmd; latency_cmd; collectives_cmd; aih_verify_cmd; params_cmd ]))
