(* cni_sim: command-line front end to the simulator.

   Examples:
     cni_sim params
     cni_sim run --app jacobi --n 256 --procs 8
     cni_sim run --app cholesky --matrix bcsstk14 --procs 8 --nic standard
     cni_sim run --app water --molecules 216 --procs 16 --mc-kb 64
     cni_sim latency --bytes 4096 *)

module Time = Cni_engine.Time
module Trace = Cni_engine.Trace
module Stats = Cni_engine.Stats
module Params = Cni_machine.Params
module Jacobi = Cni_apps.Jacobi
module Water = Cni_apps.Water
module Cholesky = Cni_apps.Cholesky
module Sparse = Cni_apps.Sparse
module Runner = Cni_experiments.Runner
module Microbench = Cni_experiments.Microbench
module Report = Cni_experiments.Report
module Topology = Cni_atm.Topology
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Common options                                                      *)
(* ------------------------------------------------------------------ *)

let nic_kind =
  let conv_nic = Arg.enum [ ("cni", `Cni_k); ("osiris", `Osiris_k); ("standard", `Standard_k) ] in
  Arg.(value & opt conv_nic `Cni_k & info [ "nic" ] ~doc:"Network interface: $(b,cni), $(b,osiris) or $(b,standard).")

let procs = Arg.(value & opt int 8 & info [ "p"; "procs" ] ~doc:"Number of workstation nodes.")
let page_bytes = Arg.(value & opt int 2048 & info [ "page-bytes" ] ~doc:"Shared page size.")
let mc_kb = Arg.(value & opt int 32 & info [ "mc-kb" ] ~doc:"Message Cache size in KB (0 disables).")
let no_aih = Arg.(value & flag & info [ "no-aih" ] ~doc:"Run protocol handlers on the host.")

let unrestricted =
  Arg.(value & flag & info [ "unrestricted-cells" ] ~doc:"Mythical ATM with unlimited cell size (Table 5).")

let topology_arg =
  let topo_conv =
    Arg.conv
      ( (fun s -> Topology.kind_of_string s |> Result.map_error (fun m -> `Msg m)),
        fun fmt k -> Format.pp_print_string fmt (Topology.kind_to_string k) )
  in
  Arg.(
    value & opt topo_conv Topology.Single
    & info [ "topology" ]
        ~doc:
          "Fabric shape: $(b,single) (the paper's central switch), $(b,fat-tree) or \
           $(b,fat-tree:RADIX) (two-level folded Clos), $(b,torus) or $(b,torus:XxYxZ) \
           (3D torus, dimension-order routed).")

let rx_policy_arg =
  let rx_policy_conv =
    Arg.enum
      [ ("interrupt", `Interrupt); ("poll", `Poll); ("hybrid", `Hybrid); ("adaptive", `Adaptive) ]
  in
  Arg.(
    value & opt rx_policy_conv `Hybrid
    & info [ "rx-policy" ]
        ~doc:
          "CNI receive wakeup policy for host-resident handlers: $(b,interrupt), $(b,poll), \
           $(b,hybrid) (poll only while waiting on the network; the paper's design) or \
           $(b,adaptive) (EWMA arrival-rate estimator picks the mode, with hysteresis).")

let rx_batch_arg =
  Arg.(
    value & opt int 1
    & info [ "rx-batch" ]
        ~doc:
          "Receive coalescing depth: one host wakeup drains up to this many queued frames \
           (1 = one wakeup per frame).")

let to_rx_policy = function
  | `Interrupt -> Cni_nic.Nic.Rx_interrupt
  | `Poll -> Cni_nic.Nic.Rx_poll
  | `Hybrid -> Cni_nic.Nic.Rx_hybrid
  | `Adaptive -> Cni_nic.Nic.Rx_adaptive Cni_nic.Nic.default_rx_adaptive

let make_params ~page ~cells =
  let p = { Params.default with Params.page_bytes = page } in
  if cells then { p with Params.cell_payload_bytes = 1 lsl 26 } else p

let make_kind ?(rx_policy = `Hybrid) ?(rx_batch = 1) nic ~mc_kb ~no_aih =
  match nic with
  | `Standard_k -> Runner.standard
  | `Osiris_k -> Runner.osiris
  | `Cni_k ->
      Runner.cni ~mc_bytes:(mc_kb * 1024) ~aih:(not no_aih)
        ~rx_policy:(to_rx_policy rx_policy) ~rx_batch ()

(* ------------------------------------------------------------------ *)
(* Observability options                                               *)
(* ------------------------------------------------------------------ *)

let parse_trace_cats spec =
  if String.lowercase_ascii spec = "all" then Ok Trace.categories
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest -> (
          match Trace.category_of_name (String.trim name) with
          | Some c -> go (c :: acc) rest
          | None ->
              Error
                (`Msg
                   (Printf.sprintf "unknown category %S (expected all, engine, nic, dsm, atm, app)"
                      name)))
    in
    go [] (String.split_on_char ',' spec)

let cats_conv =
  Arg.conv
    ( parse_trace_cats,
      fun ppf cats ->
        Format.pp_print_string ppf (String.concat "," (List.map Trace.category_name cats)) )

let trace_arg =
  Arg.(
    value
    & opt ~vopt:(Some Trace.categories) (some cats_conv) None
    & info [ "trace" ] ~docv:"CATS"
        ~doc:
          "Enable structured tracing. $(docv) is $(b,all) or a comma-separated subset of \
           $(b,engine), $(b,nic), $(b,dsm), $(b,atm), $(b,app).")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the trace to $(docv) after the run: CSV when the name ends in $(b,.csv), \
           JSON lines otherwise. Without this, $(b,--trace) prints to stderr.")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the full metrics-registry snapshot as JSON to $(docv).")

let setup_trace spec = Option.iter (fun cats -> Trace.enable ~cats ()) spec

let finish_trace ~spec ~out =
  if spec <> None then begin
    (match out with
    | Some file ->
        let oc = open_out file in
        if Filename.check_suffix file ".csv" then Trace.write_csv oc else Trace.write_jsonl oc;
        close_out oc;
        Printf.eprintf "trace: %d records written to %s (%d emitted, %d overwritten)\n%!"
          (Trace.length ()) file (Trace.emitted ()) (Trace.dropped ())
    | None -> Trace.write_human stderr);
    Trace.disable ()
  end

let write_metrics ~out snapshot =
  Option.iter
    (fun file ->
      let oc = open_out file in
      output_string oc (Stats.Registry.snapshot_to_json snapshot);
      output_char oc '\n';
      close_out oc)
    out

(* ------------------------------------------------------------------ *)
(* Fault injection options                                             *)
(* ------------------------------------------------------------------ *)

module Faults = Cni_atm.Faults

let loss_arg =
  Arg.(
    value & opt float 0.
    & info [ "loss" ] ~docv:"P"
        ~doc:
          "Per-cell loss probability injected into the fabric. Any nonzero fault rate \
           enables the NIC reliable-delivery protocol (acks, retransmission with backoff, \
           duplicate suppression).")

let corrupt_arg =
  Arg.(
    value & opt float 0.
    & info [ "corrupt" ] ~docv:"P"
        ~doc:
          "Per-cell corruption probability: affected frames arrive but fail the AAL5 CRC \
           and are dropped at the receiving board, then recovered by retransmission.")

let fault_seed_arg =
  Arg.(
    value & opt int 42
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:"Seed of the fault model's random stream (runs are reproducible per seed).")

let window_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ n; a; b ] -> (
        try
          let node = int_of_string (String.trim n)
          and from_us = int_of_string (String.trim a)
          and upto_us = int_of_string (String.trim b) in
          Ok { Faults.w_node = node; w_from = Time.us from_us; w_upto = Time.us upto_us }
        with Failure _ -> Error (`Msg "expected NODE:FROM_US:UPTO_US (integers)"))
    | _ -> Error (`Msg "expected NODE:FROM_US:UPTO_US")
  in
  let print ppf (w : Faults.window) =
    Format.fprintf ppf "%d:%.0f:%.0f" w.Faults.w_node
      (Time.to_us_float w.Faults.w_from)
      (Time.to_us_float w.Faults.w_upto)
  in
  Arg.conv (parse, print)

let link_down_arg =
  Arg.(
    value & opt_all window_conv []
    & info [ "link-down" ] ~docv:"NODE:FROM_US:UPTO_US"
        ~doc:
          "Sever $(b,NODE)'s link between the two times (microseconds, end exclusive); \
           every frame entering or leaving it is discarded. Repeatable.")

let schedule_conv =
  let parse file =
    match In_channel.with_open_text file In_channel.input_all with
    | s -> (
        match Faults.config_of_string s with
        | Ok c -> Ok c
        | Error msg -> Error (`Msg (Printf.sprintf "%s: %s" file msg)))
    | exception Sys_error e -> Error (`Msg e)
  in
  Arg.conv
    (parse, fun ppf (c : Faults.config) -> Format.pp_print_string ppf (Faults.config_to_string c))

let schedule_arg =
  Arg.(
    value
    & opt (some schedule_conv) None
    & info [ "schedule" ] ~docv:"FILE"
        ~doc:
          "Load a declarative fault schedule (seed, probabilities, link-down windows and \
           timed node crash/restart events) from $(docv); see DESIGN.md for the format. \
           Other fault flags add on top of it.")

let crash_conv =
  let parse s =
    let fields = String.split_on_char ':' s in
    let scrub, fields =
      match List.rev fields with
      | "scrub" :: rest -> (true, List.rev rest)
      | _ -> (false, fields)
    in
    match fields with
    | [ n; a; d ] -> (
        try
          let node = int_of_string (String.trim n)
          and at_us = int_of_string (String.trim a)
          and down_us = int_of_string (String.trim d) in
          Ok (node, Time.us at_us, Time.us down_us, scrub)
        with Failure _ -> Error (`Msg "expected NODE:AT_US:DOWN_US[:scrub] (integers)"))
    | _ -> Error (`Msg "expected NODE:AT_US:DOWN_US[:scrub]")
  in
  let print ppf (node, at, down, scrub) =
    Format.fprintf ppf "%d:%.0f:%.0f%s" node (Time.to_us_float at) (Time.to_us_float down)
      (if scrub then ":scrub" else "")
  in
  Arg.conv (parse, print)

let crash_arg =
  Arg.(
    value & opt_all crash_conv []
    & info [ "crash" ] ~docv:"NODE:AT_US:DOWN_US[:scrub]"
        ~doc:
          "Crash $(b,NODE)'s board at $(b,AT_US) and restart it $(b,DOWN_US) later; the \
           host freezes meanwhile and the board comes back under a new delivery epoch. \
           With $(b,:scrub) the board memory is wiped and handlers are re-verified and \
           re-installed at restart. Repeatable.")

let crash_events crash =
  List.concat_map
    (fun (node, at, down, scrub) ->
      [
        { Faults.e_at = at; e_node = node; e_fault = Faults.Crash { scrub } };
        { Faults.e_at = Time.(at + down); e_node = node; e_fault = Faults.Restart };
      ])
    crash

let make_faults ~seed ~loss ~corrupt ~link_down ~schedule ~crash =
  let base = Option.value schedule ~default:Faults.none in
  let cfg =
    {
      base with
      Faults.seed = (if seed <> 42 then seed else base.Faults.seed);
      cell_loss = (if loss > 0. then loss else base.Faults.cell_loss);
      cell_corrupt = (if corrupt > 0. then corrupt else base.Faults.cell_corrupt);
      link_down = base.Faults.link_down @ link_down;
      schedule = base.Faults.schedule @ crash_events crash;
    }
  in
  if Faults.is_none cfg then None else Some cfg

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let app_conv = Arg.enum [ ("jacobi", `Jacobi); ("water", `Water); ("cholesky", `Cholesky) ]
let app_arg = Arg.(value & opt app_conv `Jacobi & info [ "app" ] ~doc:"jacobi, water or cholesky.")
let n = Arg.(value & opt int 256 & info [ "size" ] ~doc:"Jacobi matrix dimension (n).")
let iterations = Arg.(value & opt int 16 & info [ "iterations" ] ~doc:"Jacobi iterations.")
let molecules = Arg.(value & opt int 216 & info [ "molecules" ] ~doc:"Water molecules.")

let matrix_conv =
  Arg.enum [ ("bcsstk14", `B14); ("bcsstk15", `B15); ("small", `Small) ]

let matrix =
  Arg.(value & opt matrix_conv `B14 & info [ "matrix" ] ~doc:"Cholesky input (bcsstk14-like, bcsstk15-like or small).")

let nic_collectives_arg =
  Arg.(
    value & flag
    & info [ "nic-collectives" ]
        ~doc:
          "Run DSM barriers on the boards' combining tree (NIC-resident collectives) \
           instead of the centralised node-0 manager.")

let run_cmd =
  let doc = "Run a benchmark application on a simulated cluster." in
  let run app nic procs topology page mc_kb no_aih rx_policy rx_batch cells n iterations
      molecules matrix loss corrupt link_down fault_seed schedule crash nic_collectives trace
      trace_out metrics_out =
    let params = make_params ~page ~cells in
    let kind = make_kind ~rx_policy ~rx_batch nic ~mc_kb ~no_aih in
    let barrier_impl = if nic_collectives then `Nic_collective else `Centralised in
    let faults =
      make_faults ~seed:fault_seed ~loss ~corrupt ~link_down ~schedule ~crash
    in
    setup_trace trace;
    let checksum = ref nan in
    let application cluster lrcs =
      match app with
      | `Jacobi ->
          checksum :=
            (Jacobi.run cluster lrcs { Jacobi.default_config with Jacobi.n; iterations })
              .Jacobi.checksum
      | `Water ->
          checksum :=
            (Water.run cluster lrcs { Water.default_config with Water.molecules })
              .Water.checksum
      | `Cholesky ->
          let a =
            match matrix with
            | `B14 -> Cholesky.bcsstk14_like ()
            | `B15 -> Cholesky.bcsstk15_like ()
            | `Small -> Sparse.stiffness_like ~n:300 ~dofs:3 ~seed:1
          in
          checksum := (Cholesky.run cluster lrcs (Cholesky.default_config a)).Cholesky.checksum
    in
    let r = Runner.run ~params ?faults ~topology ~barrier_impl ~kind ~procs application in
    finish_trace ~spec:trace ~out:trace_out;
    write_metrics ~out:metrics_out r.Runner.metrics;
    Printf.printf "elapsed            %s  (%.3f x 10^9 CPU cycles)\n"
      (Format.asprintf "%a" Time.pp r.Runner.elapsed)
      (r.Runner.elapsed_cycles /. 1e9);
    Printf.printf "computation        %s\n" (Format.asprintf "%a" Time.pp r.Runner.computation);
    Printf.printf "synch overhead     %s\n" (Format.asprintf "%a" Time.pp r.Runner.synch_overhead);
    Printf.printf "synch delay        %s\n" (Format.asprintf "%a" Time.pp r.Runner.synch_delay);
    Printf.printf "network packets    %d (%d wire bytes)\n" r.Runner.packets r.Runner.wire_bytes;
    if topology <> Topology.Single then begin
      Printf.printf "topology           %s\n" (Topology.kind_to_string topology);
      Printf.printf "fabric contention  hop-waits=%d banyan-conflicts=%d delivered=%d/%d\n"
        r.Runner.hop_waits r.Runner.banyan_conflicts r.Runner.delivered_packets
        r.Runner.offered_packets
    end;
    Printf.printf "cache hit ratio    %.1f%%\n" r.Runner.hit_ratio;
    Printf.printf "host interrupts    %d\n" r.Runner.host_interrupts;
    Printf.printf "host polls         %d (%d wasted)\n" r.Runner.polls r.Runner.wasted_polls;
    Printf.printf "checksum           %.17g\n" !checksum;
    if faults <> None then
      Printf.printf "faults             %d frames destroyed, %d retransmits\n"
        r.Runner.fault_drops r.Runner.retransmits;
    if r.Runner.message_mix <> [] then begin
      Printf.printf "protocol traffic  ";
      List.iter (fun (k, n) -> Printf.printf " %s=%d" k n) r.Runner.message_mix;
      print_newline ()
    end
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ app_arg $ nic_kind $ procs $ topology_arg $ page_bytes $ mc_kb $ no_aih
      $ rx_policy_arg $ rx_batch_arg $ unrestricted $ n $ iterations $ molecules $ matrix
      $ loss_arg $ corrupt_arg $ link_down_arg $ fault_seed_arg $ schedule_arg $ crash_arg
      $ nic_collectives_arg $ trace_arg $ trace_out $ metrics_out)

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)
(* ------------------------------------------------------------------ *)

let sweep_cmd =
  let doc = "Sweep processor counts for one application, both interfaces." in
  let run app page mc_kb no_aih cells n iterations molecules matrix =
    let params = make_params ~page ~cells in
    let application cluster lrcs =
      match app with
      | `Jacobi ->
          ignore (Jacobi.run cluster lrcs { Jacobi.default_config with Jacobi.n; iterations })
      | `Water -> ignore (Water.run cluster lrcs { Water.default_config with Water.molecules })
      | `Cholesky ->
          let a =
            match matrix with
            | `B14 -> Cholesky.bcsstk14_like ()
            | `B15 -> Cholesky.bcsstk15_like ()
            | `Small -> Sparse.stiffness_like ~n:300 ~dofs:3 ~seed:1
          in
          ignore (Cholesky.run cluster lrcs (Cholesky.default_config a))
    in
    Printf.printf "%5s  %12s  %12s  %8s  %8s  %6s\n" "procs" "cni" "standard" "sp-cni"
      "sp-std" "hit-%";
    let t1c = ref 1.0 and t1s = ref 1.0 in
    List.iter
      (fun procs ->
        let kc = make_kind `Cni_k ~mc_kb ~no_aih in
        let rc = Runner.run ~params ~kind:kc ~procs application in
        let rs = Runner.run ~params ~kind:Runner.standard ~procs application in
        let tc = Time.to_s_float rc.Runner.elapsed and ts = Time.to_s_float rs.Runner.elapsed in
        if procs = 1 then begin
          t1c := tc;
          t1s := ts
        end;
        Printf.printf "%5d  %12s  %12s  %8.2f  %8.2f  %6.1f\n%!" procs
          (Format.asprintf "%a" Time.pp rc.Runner.elapsed)
          (Format.asprintf "%a" Time.pp rs.Runner.elapsed)
          (!t1c /. tc) (!t1s /. ts) rc.Runner.hit_ratio)
      [ 1; 2; 4; 8; 16; 32 ]
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const run $ app_arg $ page_bytes $ mc_kb $ no_aih $ unrestricted $ n $ iterations
      $ molecules $ matrix)

(* ------------------------------------------------------------------ *)
(* latency                                                             *)
(* ------------------------------------------------------------------ *)

let latency_cmd =
  let doc = "One-way node-to-node latency (Figure 14 microbenchmark)." in
  let bytes = Arg.(value & opt int 4096 & info [ "bytes" ] ~doc:"Message size.") in
  let run nic bytes page mc_kb cells =
    let params = make_params ~page ~cells in
    let kind =
      match nic with
      | `Standard_k -> Runner.standard
      | `Osiris_k -> Runner.osiris
      | `Cni_k -> Runner.cni ~mc_bytes:(mc_kb * 1024) ~aih:false ()
    in
    let t = Microbench.latency ~params ~kind ~bytes () in
    Printf.printf "%d bytes: %s one-way (second send of a warm buffer)\n" bytes
      (Format.asprintf "%a" Time.pp t)
  in
  Cmd.v (Cmd.info "latency" ~doc)
    Term.(const run $ nic_kind $ bytes $ page_bytes $ mc_kb $ unrestricted)

(* ------------------------------------------------------------------ *)
(* collectives                                                         *)
(* ------------------------------------------------------------------ *)

let collectives_cmd =
  let doc = "Collective-operation latency: NIC combining tree vs host-driven." in
  let nodes_arg =
    Arg.(value & opt int 8 & info [ "nodes" ] ~doc:"Number of workstation nodes.")
  in
  let reps_arg = Arg.(value & opt int 8 & info [ "reps" ] ~doc:"Episodes per measurement.") in
  let host_arg =
    Arg.(
      value & flag
      & info [ "host" ]
          ~doc:"Use the host-driven collectives (dissemination/binomial) instead of the \
                NIC combining tree.")
  in
  let fanout_arg =
    Arg.(value & opt int 2 & info [ "fanout" ] ~doc:"Combining-tree arity (NIC tree only).")
  in
  let run nic nodes reps host topology fanout mc_kb no_aih =
    let kind = make_kind nic ~mc_kb ~no_aih in
    let p =
      Microbench.collective_latency ~reps ~topology ~fanout ~kind ~nodes ~nic:(not host) ()
    in
    Printf.printf "impl               %s\n" (if host then "host-driven" else "nic-tree");
    Printf.printf "nodes              %d\n" nodes;
    if topology <> Topology.Single then
      Printf.printf "topology           %s\n" (Topology.kind_to_string topology);
    Printf.printf "barrier latency    %.1f us\n" p.Microbench.barrier_us;
    Printf.printf "allreduce latency  %.1f us\n" p.Microbench.allreduce_us;
    Printf.printf "host interrupts    %d\n" p.Microbench.interrupts
  in
  Cmd.v (Cmd.info "collectives" ~doc)
    Term.(
      const run $ nic_kind $ nodes_arg $ reps_arg $ host_arg $ topology_arg $ fanout_arg
      $ mc_kb $ no_aih)

(* ------------------------------------------------------------------ *)
(* aih-verify                                                          *)
(* ------------------------------------------------------------------ *)

let aih_verify_cmd =
  let doc =
    "Run the AIH static verifier over the shipped corpus and the generated collectives \
     firmware; exit non-zero on any unexpected accept or reject."
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Print every program, not just mismatches.")
  in
  let run verbose =
    let module Verify = Cni_aih.Aih_verify in
    let module Cir = Cni_mp.Collectives_ir in
    (* the shipped corpus is held to the default link rate's per-cell
       budget, exactly as Nic.install_handler_verified would *)
    let cell_budget = Params.line_rate_budget Params.default in
    let total = ref 0 and mismatches = ref 0 and rejections = ref 0 in
    let expect_ok name p =
      incr total;
      match Verify.verify ~cell_budget p with
      | Ok c ->
          if verbose then
            Printf.printf "accept  %-40s wcet=%d cycles, per-byte=%d mcyc, code=%d bytes\n"
              name c.Verify.wcet_nic_cycles c.Verify.wcet_per_byte_milli
              c.Verify.code_bytes
      | Error rjs ->
          incr mismatches;
          Printf.printf "MISMATCH %-40s expected accept, got: %s\n" name
            (Verify.explain_all rjs)
    in
    List.iter (fun (name, p) -> expect_ok name p) Cni_aih.Aih_corpus.good;
    List.iter
      (fun op ->
        List.iter
          (fun (size, fanout) ->
            List.iter
              (fun rank ->
                let p = Cir.program ~op ~rank ~size ~fanout in
                expect_ok p.Cni_aih.Aih_ir.name p)
              [ 0; 1; size - 1 ])
          [ (2, 2); (8, 2); (16, 4); (256, 8) ])
      [ Cir.Sum; Cir.Max; Cir.Min ];
    List.iter
      (fun size ->
        expect_ok
          (Printf.sprintf "reliable-rx/%d" size)
          (Cni_nic.Reliable_ir.rx_program ~size);
        expect_ok
          (Printf.sprintf "reliable-tx-stamp/%d" size)
          (Cni_nic.Reliable_ir.tx_program ~size))
      [ 2; 8; 256 ];
    List.iter
      (fun (name, expected, p) ->
        incr total;
        match Verify.verify ~cell_budget p with
        | Ok _ ->
            incr mismatches;
            Printf.printf "MISMATCH %-40s accepted, expected %s\n" name expected
        | Error rjs ->
            rejections := !rejections + List.length rjs;
            let names =
              List.map (fun rj -> Verify.reason_name rj.Verify.rj_reason) rjs
            in
            if not (List.mem expected names) then begin
              incr mismatches;
              Printf.printf "MISMATCH %-40s expected %s, got %s\n" name expected
                (String.concat "," names)
            end
            else if verbose then
              Printf.printf "reject  %-40s (%d rejection%s) %s\n" name
                (List.length rjs)
                (if List.length rjs = 1 then "" else "s")
                (Verify.explain_all rjs))
      Cni_aih.Aih_corpus.bad;
    Printf.printf "aih-verify: %d programs, %d rejections, %d mismatches\n" !total
      !rejections !mismatches;
    if !mismatches > 0 then exit 1
  in
  Cmd.v (Cmd.info "aih-verify" ~doc) Term.(const run $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* doctor                                                              *)
(* ------------------------------------------------------------------ *)

(* Preflight: validate a configuration without running it. Each check prints
   one ok/FAIL line; any FAIL exits non-zero. The checks mirror what the
   simulator would reject (or silently mis-serve) at run time: fault-model
   sanity, the fault schedule's consistency, ADC channel admission across
   the protocol stacks, the boards' handler-memory budget, and the WCET
   certificates of the generated collectives firmware. *)
let doctor_cmd =
  let doc = "Preflight checks: config sanity, channel admission, firmware certificates." in
  let run procs topology page mc_kb cells loss corrupt link_down fault_seed schedule crash
      nic_collectives =
    let params = make_params ~page ~cells in
    let failures = ref 0 in
    let check name = function
      | Ok () -> Printf.printf "ok    %s\n" name
      | Error msg ->
          incr failures;
          Printf.printf "FAIL  %s: %s\n" name msg
    in
    let topo_check = Topology.validate topology ~nodes:procs in
    check
      (Printf.sprintf "topology %s fits %d node(s)" (Topology.kind_to_string topology) procs)
      topo_check;
    if topo_check = Ok () then
      Printf.printf "      %s\n" (Topology.describe (Topology.of_kind topology ~nodes:procs));
    let faults = make_faults ~seed:fault_seed ~loss ~corrupt ~link_down ~schedule ~crash in
    check "fault model (probabilities, windows, schedule)"
      (match faults with
      | None -> Ok ()
      | Some cfg -> (
          match Faults.validate ~nodes:procs cfg with
          | Ok () -> Ok ()
          | Error errs -> Error (String.concat "; " errs)));
    check "fault schedule spares node 0 (DSM manager)"
      (match faults with
      | Some cfg
        when List.exists (fun (e : Faults.event) -> e.Faults.e_node = 0) cfg.Faults.schedule
        ->
          Error "node 0 manages locks and barriers; crashing it deadlocks the DSM"
      | Some _ | None -> Ok ());
    let channels =
      [
        ("dsm", Cni_dsm.Protocol.channel);
        ("mp", Cni_mp.Mp.channel);
        ("mp-collectives", Cni_mp.Mp.collectives_channel);
        ("dsm-collectives", Cni_dsm.Lrc.collectives_channel);
      ]
    in
    check "ADC channel admission (distinct, ack channel reserved)"
      (let dup =
         List.find_opt
           (fun (_, c) ->
             List.length (List.filter (fun (_, c') -> c' = c) channels) > 1
             || c = Cni_nic.Reliable.ack_channel)
           channels
       in
       match dup with
       | None -> Ok ()
       | Some (name, c) -> Error (Printf.sprintf "channel %d (%s) collides" c name));
    check "board memory budget (handler code + Message Cache)"
      (let mc_bytes = mc_kb * 1024 in
       let dsm_code = 1024 * List.length Cni_dsm.Protocol.all_kinds in
       let mp_code = 512 in
       let coll_code = if nic_collectives then 2048 else 0 in
       let need = dsm_code + mp_code + coll_code in
       let have = params.Params.nic_memory_bytes - mc_bytes in
       if need <= have then Ok ()
       else
         Error
           (Printf.sprintf "handlers need %d bytes, board has %d after %d KB Message Cache"
              need have mc_kb));
    check "collectives firmware WCET certificates"
      (let module Verify = Cni_aih.Aih_verify in
       let module Cir = Cni_mp.Collectives_ir in
       let bad = ref None in
       List.iter
         (fun op ->
           List.iter
             (fun rank ->
               if !bad = None && rank < procs then
                 let p = Cir.program ~op ~rank ~size:procs ~fanout:2 in
                 match Verify.verify p with
                 | Ok _ -> ()
                 | Error rjs ->
                     bad :=
                       Some
                         (Printf.sprintf "%s: %s" p.Cni_aih.Aih_ir.name
                            (Verify.explain_all rjs)))
             [ 0; 1; procs - 1 ])
         [ Cir.Sum; Cir.Max; Cir.Min ];
       match !bad with None -> Ok () | Some msg -> Error msg);
    (* every firmware handler this configuration would install must hold a
       certificate whose per-activation WCET fits the per-cell budget at the
       configured link rate — otherwise the board falls behind the wire *)
    check
      (Printf.sprintf "firmware line-rate admission (budget %d cycles/cell)"
         (Params.line_rate_budget params))
      (let module Verify = Cni_aih.Aih_verify in
       let module Cir = Cni_mp.Collectives_ir in
       let budget = Params.line_rate_budget params in
       let programs =
         List.concat_map
           (fun op ->
             List.filter_map
               (fun rank ->
                 if rank < procs then Some (Cir.program ~op ~rank ~size:procs ~fanout:2)
                 else None)
               [ 0; procs - 1 ])
           [ Cir.Sum; Cir.Max; Cir.Min ]
         @ [
             Cni_nic.Reliable_ir.rx_program ~size:procs;
             Cni_nic.Reliable_ir.tx_program ~size:procs;
           ]
       in
       let bad = ref None in
       List.iter
         (fun (p : Cni_aih.Aih_ir.program) ->
           if !bad = None then
             match Verify.verify ~cell_budget:budget p with
             | Ok _ -> ()
             | Error rjs ->
                 let line_rate =
                   List.exists
                     (fun rj ->
                       match rj.Verify.rj_reason with
                       | Verify.Line_rate_exceeded _ -> true
                       | _ -> false)
                     rjs
                 in
                 bad :=
                   Some
                     (Printf.sprintf "%s %s" p.Cni_aih.Aih_ir.name
                        (if line_rate then Verify.explain_all rjs
                         else "rejected: " ^ Verify.explain_all rjs)))
         programs;
       match !bad with None -> Ok () | Some msg -> Error msg);
    Printf.printf "doctor: %d check(s) failed\n" !failures;
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "doctor" ~doc)
    Term.(
      const run $ procs $ topology_arg $ page_bytes $ mc_kb $ unrestricted $ loss_arg
      $ corrupt_arg $ link_down_arg $ fault_seed_arg $ schedule_arg $ crash_arg
      $ nic_collectives_arg)

(* ------------------------------------------------------------------ *)
(* chaos                                                               *)
(* ------------------------------------------------------------------ *)

let chaos_cmd =
  let module Chaos = Cni_experiments.Chaos in
  let doc = "Seeded crash/restart chaos run with recovery metrics (deterministic per seed)." in
  let seed_arg = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Chaos schedule seed.") in
  let crashes_arg = Arg.(value & opt int 2 & info [ "crashes" ] ~doc:"Crash/restart episodes.") in
  let down_arg =
    Arg.(value & opt int 200 & info [ "down-us" ] ~doc:"Time a crashed node stays down.")
  in
  let scrub_arg =
    Arg.(value & flag & info [ "scrub" ] ~doc:"Crashes also wipe board memory.")
  in
  let chaos_app_arg =
    Arg.(
      value
      & opt (Arg.enum [ ("jacobi", `Dsm); ("ring", `Ring) ]) `Dsm
      & info [ "app" ]
          ~doc:
            "$(b,jacobi): closed-loop DSM run, expected to recover and reproduce the \
             fault-free checksum. $(b,ring): open-loop message ring over recv_timeout, \
             expected to degrade (timed-out rounds) but never hang.")
  in
  let run app nic procs seed crashes down_us scrub mc_kb no_aih =
    let kind = make_kind nic ~mc_kb ~no_aih in
    let down = Time.us down_us in
    let m =
      match app with
      | `Dsm -> Chaos.run_dsm ~seed ~procs ~scrub ~kind ~crashes ~down ()
      | `Ring -> Chaos.run_ring ~seed ~nodes:procs ~scrub ~kind ~crashes ~down ()
    in
    Printf.printf "outcome            %s\n" m.Chaos.outcome;
    Printf.printf "elapsed            %.1f us\n" m.Chaos.elapsed_us;
    Printf.printf "crashes/restarts   %d/%d\n" m.Chaos.crashes m.Chaos.restarts;
    Printf.printf "retransmits        %d\n" m.Chaos.retransmits;
    Printf.printf "crash drops        %d\n" m.Chaos.crash_drops;
    Printf.printf "recoveries         %d (mean %.1f us restart-to-first-frame)\n"
      m.Chaos.recoveries m.Chaos.mean_recovery_us;
    Printf.printf "rx timeouts        %d\n" m.Chaos.rx_timeouts;
    Printf.printf "checksum           %.17g\n" m.Chaos.checksum;
    if not m.Chaos.completed then exit 2
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run $ chaos_app_arg $ nic_kind $ procs $ seed_arg $ crashes_arg $ down_arg
      $ scrub_arg $ mc_kb $ no_aih)

(* ------------------------------------------------------------------ *)
(* scenario                                                            *)
(* ------------------------------------------------------------------ *)

(* Named serving scenarios (see docs/SCENARIOS.md). The run subcommand's
   report is entirely simulated metrics — no wall-clock — so two runs of
   the same profile are byte-identical, which CI checks. *)
let scenario_cmd =
  let module Scenario = Cni_experiments.Scenario in
  let module Kv = Cni_apps.Kv_serve in
  let name_arg =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Built-in profile name (see $(b,scenario list)).")
  in
  let file_arg =
    Arg.(
      value & opt (some file) None
      & info [ "file" ]
          ~doc:"Load the profile from a text file (docs/SCENARIOS.md has the grammar).")
  in
  let fail e =
    Printf.eprintf "cni_sim scenario: %s\n" e;
    exit 1
  in
  let load name file =
    match (name, file) with
    | None, Some f -> (
        let ic = open_in_bin f in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        match Scenario.of_string s with
        | Ok p -> p
        | Error e -> fail (Printf.sprintf "%s: %s" f e))
    | Some n, None -> (
        match Scenario.find n with
        | Some p -> p
        | None -> fail (Printf.sprintf "unknown profile %S (try: cni_sim scenario list)" n))
    | Some _, Some _ -> fail "give either NAME or --file, not both"
    | None, None -> fail "give a profile NAME or --file FILE"
  in
  let preflight p =
    let failures = ref 0 in
    List.iter
      (fun (label, verdict) ->
        match verdict with
        | Ok detail -> Printf.printf "ok    %s: %s\n" label detail
        | Error msg ->
            incr failures;
            Printf.printf "FAIL  %s: %s\n" label msg)
      (Scenario.preflight p);
    !failures
  in
  let list_cmd =
    let doc = "List the built-in scenario profiles." in
    let run () =
      List.iter
        (fun p -> Printf.printf "%-20s %s\n" p.Scenario.name p.Scenario.summary)
        Scenario.builtins
    in
    Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())
  in
  let describe_cmd =
    let doc = "Print a profile's full text form plus derived figures." in
    let run name file =
      let p = load name file in
      print_string (Scenario.to_string p);
      Printf.printf "# derived: %d nodes, %.0f req/s offered, %d requests in total\n"
        (p.Scenario.clients + p.Scenario.servers)
        (Scenario.offered_rps p)
        (p.Scenario.clients * p.Scenario.requests_per_client)
    in
    Cmd.v (Cmd.info "describe" ~doc) Term.(const run $ name_arg $ file_arg)
  in
  let doctor_cmd =
    let doc = "Preflight a profile without running it (exit 1 on any failed check)." in
    let run name file =
      let p = load name file in
      let failures = preflight p in
      Printf.printf "doctor: %d check(s) failed\n" failures;
      if failures > 0 then exit 1
    in
    Cmd.v (Cmd.info "doctor" ~doc) Term.(const run $ name_arg $ file_arg)
  in
  let run_cmd =
    let doc = "Preflight, then run a profile and report its latency tail." in
    let run name file =
      let p = load name file in
      let failures = preflight p in
      if failures > 0 then fail "preflight failed; not running";
      let r = Scenario.run p in
      Printf.printf "profile            %s\n" p.Scenario.name;
      Printf.printf "requests           %d issued, %d answered (gets %d, puts %d)\n"
        r.Kv.requests r.Kv.responses r.Kv.gets r.Kv.puts;
      Printf.printf "elapsed            %.1f us (%.0f req/s served)\n" r.Kv.elapsed_us
        r.Kv.throughput_rps;
      Printf.printf "latency mean       %.3f us\n" r.Kv.mean_us;
      Printf.printf "latency p50        %.3f us\n" r.Kv.p50_us;
      Printf.printf "latency p99        %.3f us\n" r.Kv.p99_us;
      Printf.printf "latency p999       %.3f us\n" r.Kv.p999_us;
      Printf.printf "latency max        %.3f us\n" r.Kv.max_us;
      Printf.printf "retransmits        %d\n" r.Kv.retransmits;
      Printf.printf "fault drops        %d\n" r.Kv.fault_drops;
      Printf.printf "fabric hop waits   %d\n" r.Kv.hop_waits;
      Printf.printf "host interrupts    %d\n" r.Kv.host_interrupts;
      Printf.printf "host polls         %d (%d wasted)\n" r.Kv.polls r.Kv.wasted_polls
    in
    Cmd.v (Cmd.info "run" ~doc) Term.(const run $ name_arg $ file_arg)
  in
  let doc = "Named serving scenarios: list, describe, preflight and run profiles." in
  Cmd.group (Cmd.info "scenario" ~doc) [ list_cmd; describe_cmd; doctor_cmd; run_cmd ]

(* ------------------------------------------------------------------ *)
(* params                                                              *)
(* ------------------------------------------------------------------ *)

let params_cmd =
  let doc = "Print the simulation parameters (paper Table 1)." in
  let run () = Report.print (Cni_experiments.Figures.table1 ()) in
  Cmd.v (Cmd.info "params" ~doc) Term.(const run $ const ())

let () =
  let doc = "CNI cluster network interface simulator (HPDC'96 reproduction)" in
  let info = Cmd.info "cni_sim" ~doc ~version:"1.0.0" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; sweep_cmd; latency_cmd; collectives_cmd; aih_verify_cmd; doctor_cmd;
            chaos_cmd; scenario_cmd; params_cmd;
          ]))
