(* Tests for the AIH firmware subsystem: the IR encoder, the install-time
   static verifier (pointer safety, termination, cycle bounds), the charging
   interpreter, verified installation on a live board, and the qcheck
   parity property between the verified-IR collectives and the closure
   implementation. *)

module Ir = Cni_aih.Aih_ir
module Verify = Cni_aih.Aih_verify
module Exec = Cni_aih.Aih_exec
module Corpus = Cni_aih.Aih_corpus
module Nic = Cni_nic.Nic
module Wire = Cni_nic.Wire
module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node
module Collectives = Cni_mp.Collectives
module Collectives_ir = Cni_mp.Collectives_ir

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let cni = `Cni Nic.default_cni_options

(* ------------------------------------------------------------------ *)
(* Verifier over the corpus                                            *)
(* ------------------------------------------------------------------ *)

let cell_budget = Cni_machine.Params.(line_rate_budget default)

let test_good_corpus () =
  List.iter
    (fun (name, p) ->
      match Verify.verify ~cell_budget p with
      | Ok cert ->
          checkb (name ^ " wcet positive") true (cert.Verify.wcet_nic_cycles > 0);
          checki (name ^ " code bytes honest") (Ir.code_bytes p) cert.Verify.code_bytes;
          if Ir.bytes_per_activation p > 0 then
            checkb (name ^ " streaming cert has a per-byte bound") true
              (cert.Verify.wcet_per_byte_milli > 0)
          else checki (name ^ " episode per-byte bound") 0 cert.Verify.wcet_per_byte_milli
      | Error rjs -> Alcotest.failf "%s rejected: %s" name (Verify.explain_all rjs))
    Corpus.good

let test_bad_corpus () =
  List.iter
    (fun (name, expected, p) ->
      match Verify.verify ~cell_budget p with
      | Ok _ -> Alcotest.failf "%s accepted (expected %s)" name expected
      | Error rjs ->
          checkb (name ^ " rejections non-empty") true (rjs <> []);
          checkb
            (name ^ " expects " ^ expected)
            true
            (List.exists
               (fun rj -> Verify.reason_name rj.Verify.rj_reason = expected)
               rjs);
          List.iter
            (fun rj ->
              checkb (name ^ " pc in range") true
                (rj.Verify.rj_pc >= 0 && rj.Verify.rj_pc <= Array.length p.Ir.code);
              checkb (name ^ " has state render") true (String.length rj.Verify.rj_regs > 0))
            rjs)
    Corpus.bad

(* collect-all: a program with several independent violations reports each
   of them in one pass, sorted by pc *)
let test_rejects_collected () =
  let p =
    {
      Ir.name = "multi-bad";
      hkind = Ir.Episode;
      seg_words = 2;
      scratch_words = 0;
      inputs = 0;
      code = [| Ir.Jmp 99; Ir.Const (20, 5); Ir.Bin (Ir.Add, 3, 17, 0); Ir.Halt |];
      relocs = [];
    }
  in
  match Verify.verify p with
  | Ok _ -> Alcotest.fail "multi-bad accepted"
  | Error rjs ->
      checkb "more than one rejection" true (List.length rjs > 1);
      let pcs = List.map (fun rj -> rj.Verify.rj_pc) rjs in
      checkb "sorted by pc" true (pcs = List.sort compare pcs)

let test_collectives_programs_verify () =
  List.iter
    (fun op ->
      List.iter
        (fun (size, fanout) ->
          List.iter
            (fun rank ->
              if rank < size then
                let p = Collectives_ir.program ~op ~rank ~size ~fanout in
                match Verify.verify p with
                | Ok cert -> checkb "wcet positive" true (cert.Verify.wcet_nic_cycles > 0)
                | Error rjs ->
                    Alcotest.failf "collectives rank %d/%d fanout %d rejected: %s" rank size
                      fanout (Verify.explain_all rjs))
            [ 0; 1; size / 2; size - 1 ])
        [ (2, 2); (3, 1); (8, 2); (8, 4); (256, 8) ])
    [ Collectives_ir.Sum; Collectives_ir.Max; Collectives_ir.Min ]

(* ------------------------------------------------------------------ *)
(* Encoder                                                             *)
(* ------------------------------------------------------------------ *)

let test_encode_size_law () =
  List.iter
    (fun (_, p) ->
      let n = Array.length p.Ir.code and r = List.length p.Ir.relocs in
      checki (p.Ir.name ^ " image size") (36 + (12 * n) + (4 * r)) (Bytes.length (Ir.encode p));
      checki
        (p.Ir.name ^ " code_bytes = image + segments")
        (36 + (12 * n) + (4 * r) + (8 * (p.Ir.seg_words + p.Ir.scratch_words)))
        (Ir.code_bytes p))
    Corpus.good

let test_encode_deterministic () =
  let _, p = List.hd Corpus.good in
  checkb "stable image" true (Bytes.equal (Ir.encode p) (Ir.encode p))

let test_encode_rejects_wide_immediate () =
  let p =
    { Ir.name = "wide"; hkind = Ir.Episode; seg_words = 0; scratch_words = 0; inputs = 0;
      code = [| Ir.Const (0, 1 lsl 40); Ir.Halt |]; relocs = [] }
  in
  (match Verify.verify p with
  | Ok _ -> Alcotest.fail "wide immediate accepted"
  | Error rjs ->
      check
        (Alcotest.list Alcotest.string)
        "reason" [ "immediate-too-wide" ]
        (List.map (fun rj -> Verify.reason_name rj.Verify.rj_reason) rjs));
  Alcotest.check_raises "encode raises"
    (Invalid_argument (Printf.sprintf "Aih_ir.encode: %d does not fit a 32-bit field" (1 lsl 40)))
    (fun () -> ignore (Ir.encode p))

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)
(* ------------------------------------------------------------------ *)

(* store 1..8 into the segment with one loop, sum them with another, wake
   the host with the total *)
let sum_prog =
  let a = Ir.Asm.create () in
  let h1 = Ir.Asm.fresh a and d1 = Ir.Asm.fresh a in
  let h2 = Ir.Asm.fresh a and d2 = Ir.Asm.fresh a in
  Ir.Asm.const a 0 0;
  Ir.Asm.place a h1;
  Ir.Asm.loop a ~counter:0 ~limit:8 ~exit:d1;
  Ir.Asm.bini a Ir.Sub 1 0 1;
  Ir.Asm.store a 0 ~base:1 0;
  Ir.Asm.jmp a h1;
  Ir.Asm.place a d1;
  Ir.Asm.const a 0 0;
  Ir.Asm.const a 2 0;
  Ir.Asm.place a h2;
  Ir.Asm.loop a ~counter:0 ~limit:8 ~exit:d2;
  Ir.Asm.bini a Ir.Sub 1 0 1;
  Ir.Asm.load a 3 ~base:1 0;
  Ir.Asm.bin a Ir.Add 2 2 3;
  Ir.Asm.jmp a h2;
  Ir.Asm.place a d2;
  Ir.Asm.const a 4 0;
  Ir.Asm.wake a ~seq:4 ~value:2;
  Ir.Asm.halt a;
  Ir.Asm.assemble a ~name:"sum-1-to-8" ~seg_words:8 ~inputs:0

let null_services charge =
  {
    Exec.sv_send = (fun ~dst:_ ~kind:_ ~obj:_ ~value:_ -> ());
    sv_wake = (fun ~seq:_ ~value:_ -> ());
    sv_charge = charge;
  }

let test_exec_sum () =
  let cert =
    match Verify.verify sum_prog with
    | Ok c -> c
    | Error rjs -> Alcotest.failf "sum_prog rejected: %s" (Verify.explain_all rjs)
  in
  let woken = ref (-1) and charged = ref 0 in
  let services =
    {
      (null_services (fun n -> charged := !charged + n)) with
      Exec.sv_wake = (fun ~seq ~value -> checki "seq" 0 seq; woken := value);
    }
  in
  let mem = Array.make 8 0 in
  let cycles = Exec.run sum_prog ~mem ~inputs:[||] services in
  checki "sum 1..8" 36 !woken;
  checki "charge flushed" cycles !charged;
  checkb "cycles positive" true (cycles > 0);
  checkb "cycles within certificate" true (cycles <= cert.Verify.wcet_nic_cycles)

let test_exec_faults_unverified () =
  let p =
    { Ir.name = "oob"; hkind = Ir.Episode; seg_words = 4; scratch_words = 0; inputs = 0;
      code = [| Ir.Const (0, 9); Ir.Load (1, 0, 0); Ir.Halt |]; relocs = [] }
  in
  checkb "would be rejected" true (Result.is_error (Verify.verify p));
  let mem = Array.make 4 0 in
  match Exec.run p ~mem ~inputs:[||] (null_services ignore) with
  | _ -> Alcotest.fail "out-of-segment load did not fault"
  | exception Exec.Fault _ -> ()

(* ------------------------------------------------------------------ *)
(* Streaming handlers                                                  *)
(* ------------------------------------------------------------------ *)

(* a tiny pseudo-random stream, seeded per qcheck case: deterministic and
   cheap, with no global Random state *)
let lcg seed =
  let st = ref (seed land 0x3FFFFFFF) in
  fun bound ->
    st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
    !st mod bound

let test_exec_streaming_view () =
  (* header-route: copies view words 1 and 3 through scratch, wakes with
     seq = view.(1), value = view.(3) *)
  let p = List.assoc "header-route" Corpus.good in
  let woken = ref None in
  let services =
    {
      (null_services ignore) with
      Exec.sv_wake = (fun ~seq ~value -> woken := Some (seq, value));
    }
  in
  let view = [| 7; 42; 9; 1234; 0; 96 |] in
  let mem = Array.make p.Ir.seg_words 0 in
  let cycles = Exec.run p ~view ~mem ~inputs:[||] services in
  checkb "ran" true (cycles > 0);
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int)) "routed header words"
    (Some (42, 1234)) !woken

let test_exec_view_fault () =
  let p = List.assoc "header-route" Corpus.good in
  (* the program was verified against a 6-word view; hand it a shorter one
     and the interpreter must fault rather than read junk *)
  match
    Exec.run p ~view:[| 1; 2 |] ~mem:(Array.make p.Ir.seg_words 0) ~inputs:[||]
      (null_services ignore)
  with
  | _ -> Alcotest.fail "short view did not fault"
  | exception Exec.Fault _ -> ()

(* the acceptance property for the WCET analysis: on every good program and
   any activation input, measured cycles never exceed the certificate *)
let wcet_qcheck =
  QCheck.Test.make ~count:100 ~name:"measured cycles <= certified WCET (good corpus)"
    QCheck.(pair (int_bound 1000) (int_bound 10_000))
    (fun (pick, seed) ->
      let name, p = List.nth Corpus.good (pick mod List.length Corpus.good) in
      let cert =
        match Verify.verify ~cell_budget p with
        | Ok c -> c
        | Error rjs -> QCheck.Test.fail_reportf "%s rejected: %s" name (Verify.explain_all rjs)
      in
      let rnd = lcg seed in
      let inputs = Array.init p.Ir.inputs (fun _ -> rnd 1_000_000 - 500_000) in
      (* payload activations are dispatched with r0 = chunk index and
         r1 = valid words, within the declared bounds — the verifier
         assumed exactly that, so the generator must too *)
      (match p.Ir.hkind with
      | Ir.Payload { chunk_words; max_chunks } ->
          inputs.(0) <- rnd max_chunks;
          inputs.(1) <- 1 + rnd chunk_words
      | Ir.Episode | Ir.Header _ -> ());
      let view = Array.init (Ir.view_words p) (fun _ -> rnd 1_000_000) in
      let mem = Array.init p.Ir.seg_words (fun _ -> rnd 1_000_000) in
      let cycles = Exec.run p ~view ~mem ~inputs (null_services ignore) in
      cycles <= cert.Verify.wcet_nic_cycles)

(* ------------------------------------------------------------------ *)
(* Verified installation on a live board                               *)
(* ------------------------------------------------------------------ *)

let test_install_verified () =
  let cluster : int Cluster.t = Cluster.create ~nic_kind:cni ~nodes:2 () in
  let nic = Node.nic (Cluster.node cluster 0) in
  let before = Nic.handler_code_bytes nic in
  let _, good = List.hd Corpus.good in
  let vh =
    match
      Nic.install_handler_verified nic
        ~pattern:(Wire.pattern_channel ~channel:17)
        ~program:good
        ~entry:(fun _ -> [||])
        ~on_send:(fun _ ~dst:_ ~kind:_ ~obj:_ ~value:_ -> ())
        ~on_wake:(fun ~seq:_ ~value:_ -> ())
    with
    | Ok vh -> vh
    | Error rjs -> Alcotest.failf "good program rejected at install: %s" (Verify.explain_all rjs)
  in
  checki "board debited the certified bytes" (before + Ir.code_bytes good)
    (Nic.handler_code_bytes nic);
  checki "certificate size" (Ir.code_bytes good) vh.Nic.vh_cert.Verify.code_bytes;
  checki "no rejects counted" 0 (Nic.aih_verify_rejects nic);
  Nic.uninstall_handler nic vh.Nic.vh_handle;
  checki "uninstall reclaims" before (Nic.handler_code_bytes nic)

let test_install_verified_rejects () =
  let cluster : int Cluster.t = Cluster.create ~nic_kind:cni ~nodes:2 () in
  let nic = Node.nic (Cluster.node cluster 0) in
  let before = Nic.handler_code_bytes nic in
  let _, _, bad = List.hd Corpus.bad in
  (match
     Nic.install_handler_verified nic
       ~pattern:(Wire.pattern_channel ~channel:18)
       ~program:bad
       ~entry:(fun _ -> [||])
       ~on_send:(fun _ ~dst:_ ~kind:_ ~obj:_ ~value:_ -> ())
       ~on_wake:(fun ~seq:_ ~value:_ -> ())
   with
  | Ok _ -> Alcotest.fail "known-bad program installed"
  | Error _ -> ());
  checki "reject counted" 1 (Nic.aih_verify_rejects nic);
  checki "no board memory debited" before (Nic.handler_code_bytes nic)

(* line-rate admission: a safe-but-slow streaming handler is refused at the
   default 622 Mb/s link and admitted when the board hangs off a slower
   155 Mb/s downlink, where cells arrive four times further apart *)
let test_install_line_rate_admission () =
  let cluster : int Cluster.t = Cluster.create ~nic_kind:cni ~nodes:2 () in
  let nic = Node.nic (Cluster.node cluster 0) in
  let bomb =
    let _, _, p =
      List.find (fun (name, _, _) -> name = "line-rate-bomb") Corpus.bad
    in
    p
  in
  let install ?link_bps channel =
    Nic.install_handler_verified ?link_bps nic
      ~pattern:(Wire.pattern_channel ~channel)
      ~program:bomb
      ~entry:(fun _ -> [||])
      ~on_send:(fun _ ~dst:_ ~kind:_ ~obj:_ ~value:_ -> ())
      ~on_wake:(fun ~seq:_ ~value:_ -> ())
  in
  (match install 19 with
  | Ok _ -> Alcotest.fail "line-rate-bomb admitted at the default link rate"
  | Error rjs ->
      checkb "rejected for line rate" true
        (List.exists
           (fun rj ->
             match rj.Verify.rj_reason with
             | Verify.Line_rate_exceeded { budget; wcet } ->
                 checkb "reported margin is real" true (wcet > budget);
                 true
             | _ -> false)
           rjs));
  match install ~link_bps:155_000_000 19 with
  | Ok vh ->
      checkb "admitted against the slower link's larger budget" true
        (vh.Nic.vh_budget > vh.Nic.vh_cert.Verify.wcet_nic_cycles);
      Nic.uninstall_handler nic vh.Nic.vh_handle
  | Error rjs ->
      Alcotest.failf "rejected at 155 Mb/s: %s" (Verify.explain_all rjs)

(* ------------------------------------------------------------------ *)
(* IR / closure collectives parity                                     *)
(* ------------------------------------------------------------------ *)

type parity_obs = {
  o_allreduce : int array;
  o_broadcast : int array;
  o_reduce : int array;
  o_tx : int array;
}

let closure_op = function
  | Collectives_ir.Sum -> ( + )
  | Collectives_ir.Max -> max
  | Collectives_ir.Min -> min

let contribs_of ~seed ~size = Array.init size (fun r -> ((seed * 31) + (r * 7)) mod 1000 - 500)

let run_parity impl ~size ~fanout ~op ~root ~seed =
  let contribs = contribs_of ~seed ~size in
  let o =
    {
      o_allreduce = Array.make size 0;
      o_broadcast = Array.make size 0;
      o_reduce = Array.make size 0;
      o_tx = Array.make size 0;
    }
  in
  let cluster : int Cluster.t = Cluster.create ~nic_kind:cni ~nodes:size () in
  (match impl with
  | `Closure ->
      let eps = Collectives.install ~fanout ~inject:Fun.id ~project:Fun.id cluster in
      Cluster.run_app cluster (fun node ->
          let r = Node.id node in
          let ep = eps.(r) in
          let c = contribs.(r) in
          Collectives.barrier ep;
          o.o_allreduce.(r) <- Collectives.allreduce ep ~op:(closure_op op) c;
          o.o_broadcast.(r) <- Collectives.broadcast ep ~root (c * 3);
          o.o_reduce.(r) <- Collectives.reduce ep ~root ~op:(closure_op op) (c + 1);
          Collectives.barrier ep)
  | `Ir ->
      let eps = Collectives_ir.install ~fanout ~op ~inject:Fun.id ~project:Fun.id cluster in
      Cluster.run_app cluster (fun node ->
          let r = Node.id node in
          let ep = eps.(r) in
          let c = contribs.(r) in
          Collectives_ir.barrier ep;
          o.o_allreduce.(r) <- Collectives_ir.allreduce ep c;
          o.o_broadcast.(r) <- Collectives_ir.broadcast ep ~root (c * 3);
          o.o_reduce.(r) <- Collectives_ir.reduce ep ~root (c + 1);
          Collectives_ir.barrier ep));
  for r = 0 to size - 1 do
    o.o_tx.(r) <- (Nic.stats (Node.nic (Cluster.node cluster r))).Nic.tx_packets
  done;
  o

let check_parity ~size ~fanout ~op ~root ~seed =
  let a = run_parity `Closure ~size ~fanout ~op ~root ~seed in
  let b = run_parity `Ir ~size ~fanout ~op ~root ~seed in
  (* reduce results are only meaningful at the root; both implementations
     expose the same subtree partial elsewhere, so compare all ranks *)
  a.o_allreduce = b.o_allreduce && a.o_broadcast = b.o_broadcast && a.o_reduce = b.o_reduce
  && a.o_tx = b.o_tx

let test_parity_fixed () =
  List.iter
    (fun (size, fanout, op, root, seed) ->
      checkb
        (Printf.sprintf "parity n=%d f=%d root=%d" size fanout root)
        true
        (check_parity ~size ~fanout ~op ~root ~seed))
    [
      (2, 2, Collectives_ir.Sum, 0, 1);
      (4, 2, Collectives_ir.Sum, 3, 2);
      (5, 1, Collectives_ir.Max, 2, 3);
      (8, 3, Collectives_ir.Min, 5, 4);
      (1, 2, Collectives_ir.Sum, 0, 5);
    ]

let parity_qcheck =
  QCheck.Test.make ~count:25 ~name:"verified-IR collectives == closure collectives"
    QCheck.(
      make
        ~print:(fun (size, fanout, opi, rootraw, seed) ->
          Printf.sprintf "size=%d fanout=%d op=%d root=%d seed=%d" size fanout opi rootraw seed)
        Gen.(tup5 (int_range 1 9) (int_range 1 4) (int_range 0 2) (int_range 0 100) (int_range 0 1000)))
    (fun (size, fanout, opi, rootraw, seed) ->
      let op =
        match opi with 0 -> Collectives_ir.Sum | 1 -> Collectives_ir.Max | _ -> Collectives_ir.Min
      in
      check_parity ~size ~fanout ~op ~root:(rootraw mod size) ~seed)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "aih"
    [
      ( "verify",
        [
          Alcotest.test_case "good corpus accepted" `Quick test_good_corpus;
          Alcotest.test_case "bad corpus rejected with expected reasons" `Quick test_bad_corpus;
          Alcotest.test_case "independent rejections all collected" `Quick
            test_rejects_collected;
          Alcotest.test_case "shipped collectives programs verify" `Quick
            test_collectives_programs_verify;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "header view execution" `Quick test_exec_streaming_view;
          Alcotest.test_case "short view faults" `Quick test_exec_view_fault;
          QCheck_alcotest.to_alcotest wcet_qcheck;
        ] );
      ( "encode",
        [
          Alcotest.test_case "size law" `Quick test_encode_size_law;
          Alcotest.test_case "deterministic" `Quick test_encode_deterministic;
          Alcotest.test_case "wide immediate rejected" `Quick test_encode_rejects_wide_immediate;
        ] );
      ( "exec",
        [
          Alcotest.test_case "charging interpreter" `Quick test_exec_sum;
          Alcotest.test_case "runtime fault on unverified code" `Quick test_exec_faults_unverified;
        ] );
      ( "install",
        [
          Alcotest.test_case "verified install debits certified bytes" `Quick test_install_verified;
          Alcotest.test_case "rejection counted, nothing installed" `Quick
            test_install_verified_rejects;
          Alcotest.test_case "line-rate admission tracks the link rate" `Quick
            test_install_line_rate_admission;
        ] );
      ( "parity",
        [
          Alcotest.test_case "fixed configurations" `Quick test_parity_fixed;
          QCheck_alcotest.to_alcotest parity_qcheck;
        ] );
    ]
