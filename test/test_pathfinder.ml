(* Tests for the PATHFINDER packet classifier: patterns, the classification
   DAG (priorities, sharing, removal, backtracking), and fragment-aware
   dispatch over AAL5 cell streams. *)

module Pattern = Cni_pathfinder.Pattern
module Classifier = Cni_pathfinder.Classifier
module Dispatcher = Cni_pathfinder.Dispatcher
module Cell = Cni_atm.Cell
module Aal5 = Cni_atm.Aal5

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let header_of_string s =
  let b = Bytes.make 32 '\000' in
  Bytes.blit_string s 0 b 0 (min (String.length s) 32);
  b

(* ------------------------------------------------------------------ *)
(* Pattern                                                             *)
(* ------------------------------------------------------------------ *)

let test_field_validation () =
  Alcotest.check_raises "len 0" (Invalid_argument "Pattern.field: len must be within 1..8")
    (fun () -> ignore (Pattern.field ~offset:0 ~len:0 1));
  Alcotest.check_raises "len 9" (Invalid_argument "Pattern.field: len must be within 1..8")
    (fun () -> ignore (Pattern.field ~offset:0 ~len:9 1));
  Alcotest.check_raises "negative offset" (Invalid_argument "Pattern.field: negative offset")
    (fun () -> ignore (Pattern.field ~offset:(-1) ~len:1 1))

let test_field_matching () =
  let h = header_of_string "\x12\x34\x56\x78" in
  checkb "2-byte value" true (Pattern.matches [ Pattern.field ~offset:0 ~len:2 0x1234 ] h);
  checkb "wrong value" false (Pattern.matches [ Pattern.field ~offset:0 ~len:2 0x1235 ] h);
  checkb "masked match" true
    (Pattern.matches [ Pattern.field ~offset:0 ~len:2 ~mask:0xFF00 0x1200 ] h);
  checkb "mask applied to value too" true
    (Pattern.matches [ Pattern.field ~offset:0 ~len:2 ~mask:0xFF00 0x12FF ] h);
  checkb "multi-field conjunction" true
    (Pattern.matches
       [ Pattern.field ~offset:0 ~len:1 0x12; Pattern.field ~offset:3 ~len:1 0x78 ]
       h);
  checkb "one field failing fails all" false
    (Pattern.matches
       [ Pattern.field ~offset:0 ~len:1 0x12; Pattern.field ~offset:3 ~len:1 0x79 ]
       h)

let test_field_out_of_range () =
  let h = Bytes.make 4 'x' in
  checkb "read past end" true (Pattern.read_field h (Pattern.field ~offset:3 ~len:2 0) = None);
  checkb "pattern past end fails" false
    (Pattern.matches [ Pattern.field ~offset:3 ~len:2 0 ] h);
  checkb "empty pattern matches anything" true (Pattern.matches [] h)

(* ------------------------------------------------------------------ *)
(* Classifier                                                          *)
(* ------------------------------------------------------------------ *)

let fld ~off ~len v = Pattern.field ~offset:off ~len v

let test_classifier_basic () =
  let c = Classifier.create () in
  ignore (Classifier.add c [ fld ~off:0 ~len:1 1 ] "one");
  ignore (Classifier.add c [ fld ~off:0 ~len:1 2 ] "two");
  checkb "routes to one" true (Classifier.classify c (header_of_string "\x01") = Some "one");
  checkb "routes to two" true (Classifier.classify c (header_of_string "\x02") = Some "two");
  checkb "no match" true (Classifier.classify c (header_of_string "\x03") = None);
  let s = Classifier.stats c in
  checki "classifications" 3 s.Classifier.classifications;
  checki "matches" 2 s.Classifier.matches

let test_classifier_priority () =
  let c = Classifier.create () in
  (* overlapping patterns: first installed wins *)
  ignore (Classifier.add c [ fld ~off:0 ~len:1 7 ] "general");
  ignore (Classifier.add c [ fld ~off:0 ~len:1 7; fld ~off:1 ~len:1 9 ] "specific");
  checkb "earlier pattern has priority" true
    (Classifier.classify c (header_of_string "\x07\x09") = Some "general")

let test_classifier_priority_other_order () =
  let c = Classifier.create () in
  ignore (Classifier.add c [ fld ~off:0 ~len:1 7; fld ~off:1 ~len:1 9 ] "specific");
  ignore (Classifier.add c [ fld ~off:0 ~len:1 7 ] "general");
  checkb "specific wins when installed first" true
    (Classifier.classify c (header_of_string "\x07\x09") = Some "specific");
  checkb "general still catches others" true
    (Classifier.classify c (header_of_string "\x07\x01") = Some "general")

let test_classifier_prefix_sharing () =
  let c = Classifier.create () in
  let prefix = [ fld ~off:0 ~len:2 0xC1A0; fld ~off:2 ~len:1 1 ] in
  for k = 0 to 9 do
    ignore (Classifier.add c (prefix @ [ fld ~off:4 ~len:1 k ]) k)
  done;
  (* shared prefix: 2 edges + 10 leaf edges, not 10 * 3 *)
  checki "edges shared" 12 (Classifier.edges c);
  checki "patterns live" 10 (Classifier.patterns c)

let test_classifier_remove () =
  let c = Classifier.create () in
  let h = Classifier.add c [ fld ~off:0 ~len:1 5 ] "x" in
  ignore (Classifier.add c [ fld ~off:0 ~len:1 5; fld ~off:1 ~len:1 6 ] "y");
  checkb "x active" true (Classifier.classify c (header_of_string "\x05\x06") = Some "x");
  Classifier.remove c h;
  checkb "falls through to y" true (Classifier.classify c (header_of_string "\x05\x06") = Some "y");
  checki "one live pattern" 1 (Classifier.patterns c);
  Classifier.remove c h (* idempotent *);
  checki "still one" 1 (Classifier.patterns c)

let test_classifier_empty_pattern () =
  let c = Classifier.create () in
  ignore (Classifier.add c [] "default");
  ignore (Classifier.add c [ fld ~off:0 ~len:1 1 ] "specific");
  checkb "empty matches everything" true
    (Classifier.classify c (header_of_string "\x09") = Some "default");
  checkb "empty wins by priority" true
    (Classifier.classify c (header_of_string "\x01") = Some "default")

let test_classifier_backtracking () =
  let c = Classifier.create () in
  (* two patterns sharing the first field value but stored as separate
     branches because the field specs differ in length *)
  ignore (Classifier.add c [ fld ~off:0 ~len:2 0x0101; fld ~off:2 ~len:1 0xAA ] "long");
  ignore (Classifier.add c [ fld ~off:0 ~len:1 0x01; fld ~off:2 ~len:1 0xBB ] "short");
  checkb "second branch reachable" true
    (Classifier.classify c (header_of_string "\x01\x01\xBB") = Some "short")

let test_classifier_masked_fields () =
  let c = Classifier.create () in
  (* match any header whose first byte has the high bit set *)
  ignore (Classifier.add c [ Pattern.field ~offset:0 ~len:1 ~mask:0x80 0x80 ] "high");
  checkb "0xFF matches" true (Classifier.classify c (header_of_string "\xFF") = Some "high");
  checkb "0x80 matches" true (Classifier.classify c (header_of_string "\x80") = Some "high");
  checkb "0x7F does not" true (Classifier.classify c (header_of_string "\x7F") = None)

let test_classifier_remove_keeps_siblings () =
  let c = Classifier.create () in
  let prefix = fld ~off:0 ~len:1 9 in
  let h1 = Classifier.add c [ prefix; fld ~off:1 ~len:1 1 ] "one" in
  ignore (Classifier.add c [ prefix; fld ~off:1 ~len:1 2 ] "two");
  Classifier.remove c h1;
  checkb "sibling survives shared prefix" true
    (Classifier.classify c (header_of_string "\x09\x02") = Some "two");
  checkb "removed gone" true (Classifier.classify c (header_of_string "\x09\x01") = None)

let test_classifier_tombstone_sweep () =
  let c = Classifier.create () in
  let prefix = fld ~off:0 ~len:1 4 in
  let h1 = Classifier.add c [ prefix; fld ~off:1 ~len:1 1 ] "one" in
  let h2 = Classifier.add c [ prefix; fld ~off:1 ~len:1 1 ] "one-shadow" in
  let h3 = Classifier.add c [ prefix; fld ~off:1 ~len:1 2 ] "two" in
  checki "accepts = live patterns" 3 (Classifier.accept_entries c);
  Classifier.remove c h1;
  Classifier.remove c h3;
  (* removal sweeps the accept entries out of the DAG — no tombstones *)
  checki "dead accepts pruned" 1 (Classifier.accept_entries c);
  checki "one live" 1 (Classifier.patterns c);
  checkb "shadow now wins" true
    (Classifier.classify c (header_of_string "\x04\x01") = Some "one-shadow");
  Classifier.remove c h1 (* idempotent: must not disturb h2's entry *);
  checki "re-removal no-op" 1 (Classifier.accept_entries c);
  Classifier.remove c h2;
  checki "empty" 0 (Classifier.accept_entries c);
  (* install/uninstall churn leaves no residue *)
  for i = 0 to 99 do
    let h = Classifier.add c [ prefix; fld ~off:1 ~len:1 (i mod 7) ] "churn" in
    Classifier.remove c h
  done;
  checki "churn leaves nothing" 0 (Classifier.accept_entries c)

let test_classifier_indexed_probes () =
  (* 256 sibling patterns on one field spec: classification must probe the
     header once per spec (O(depth)), not once per pattern *)
  let c = Classifier.create () in
  for v = 0 to 255 do
    ignore (Classifier.add c [ fld ~off:0 ~len:2 v; fld ~off:2 ~len:1 1 ] v)
  done;
  let before = (Classifier.stats c).Classifier.probes in
  checkb "classifies" true (Classifier.classify c (header_of_string "\x00\xC8\x01") = Some 0xC8);
  let probes = (Classifier.stats c).Classifier.probes - before in
  checkb (Printf.sprintf "probes bounded by depth (%d <= 4)" probes) true (probes <= 4)

(* property: the DAG classifier agrees with the naive linear matcher *)
let classifier_vs_naive =
  let gen_field =
    QCheck.Gen.(
      map3
        (fun off len v -> Pattern.field ~offset:off ~len:(1 + (len mod 2)) v)
        (int_bound 6) (int_bound 1) (int_bound 255))
  in
  let gen_pattern = QCheck.Gen.(list_size (int_range 0 3) gen_field) in
  let gen_setup =
    QCheck.Gen.(
      pair (list_size (int_range 1 8) gen_pattern) (list_size (int_range 1 20) (int_bound 255)))
  in
  QCheck.Test.make ~name:"DAG classifier = naive first-match" ~count:300
    (QCheck.make gen_setup)
    (fun (patterns, header_bytes) ->
      let header = Bytes.of_string (String.init (List.length header_bytes) (fun i ->
          Char.chr (List.nth header_bytes i))) in
      let c = Classifier.create () in
      List.iteri (fun i p -> ignore (Classifier.add c p i)) patterns;
      let naive =
        let rec go i = function
          | [] -> None
          | p :: rest -> if Pattern.matches p header then Some i else go (i + 1) rest
        in
        go 0 patterns
      in
      Classifier.classify c header = naive)

(* property: under random add/remove/classify sequences, the indexed DAG,
   the linear reference scan and an independent model (first alive pattern
   in insertion order) all agree — same match, same priority order *)
let classifier_vs_linear_ops =
  let gen_field =
    QCheck.Gen.(
      map3
        (fun off len v -> Pattern.field ~offset:off ~len:(1 + (len mod 2)) v)
        (int_bound 6) (int_bound 1) (int_bound 255))
  in
  let gen_pattern = QCheck.Gen.(list_size (int_range 0 3) gen_field) in
  let gen_op =
    QCheck.Gen.(
      frequency
        [
          (3, map (fun p -> `Add p) gen_pattern);
          (2, map (fun j -> `Remove j) (int_bound 1000));
          (3, map (fun bs -> `Classify bs) (list_size (int_range 1 12) (int_bound 255)));
        ])
  in
  let gen_ops = QCheck.Gen.(list_size (int_range 1 40) gen_op) in
  QCheck.Test.make ~name:"indexed = linear under add/remove/classify" ~count:300
    (QCheck.make gen_ops)
    (fun ops ->
      let c = Classifier.create () in
      (* model: patterns in insertion order with an alive flag *)
      let model = ref [] (* (handle, pattern, action, alive ref), newest first *) in
      let next_action = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | `Add p ->
              let action = !next_action in
              incr next_action;
              let h = Classifier.add c p action in
              model := (h, p, action, ref true) :: !model;
              true
          | `Remove j ->
              (match !model with
              | [] -> ()
              | l ->
                  let h, _, _, alive = List.nth l (j mod List.length l) in
                  Classifier.remove c h;
                  alive := false);
              true
          | `Classify bs ->
              let header =
                Bytes.of_string
                  (String.init (List.length bs) (fun i -> Char.chr (List.nth bs i)))
              in
              let expected =
                List.fold_left
                  (fun acc (_, p, action, alive) ->
                    if !alive && Pattern.matches p header then Some action else acc)
                  None !model
                (* fold over newest-first: the last (oldest matching) wins,
                   which is exactly priority = insertion order *)
              in
              Classifier.classify c header = expected
              && Classifier.classify_linear c header = expected)
        ops
      && Classifier.accept_entries c = Classifier.patterns c)

(* ------------------------------------------------------------------ *)
(* Dispatcher                                                          *)
(* ------------------------------------------------------------------ *)

let frame_cells ~vci ~tag bytes =
  let payload = Bytes.make bytes '\000' in
  Bytes.set payload 0 (Char.chr tag);
  Aal5.segment ~vpi:0 ~vci payload

let mk_dispatcher () =
  let c = Classifier.create () in
  ignore (Classifier.add c [ fld ~off:0 ~len:1 1 ] "app-1");
  ignore (Classifier.add c [ fld ~off:0 ~len:1 2 ] "app-2");
  Dispatcher.create c

let test_dispatcher_single_frame () =
  let d = mk_dispatcher () in
  let cells = frame_cells ~vci:10 ~tag:1 500 in
  let results = List.map (Dispatcher.on_cell d) cells in
  checkb "all cells to app-1" true (List.for_all (fun r -> r = Some "app-1") results);
  checki "binding released at last cell" 0 (Dispatcher.active_bindings d);
  let s = Dispatcher.stats d in
  checki "one first cell" 1 s.Dispatcher.first_cells;
  checki "continuations" (List.length cells - 1) s.Dispatcher.continuation_cells

let test_dispatcher_interleaved_vcs () =
  let d = mk_dispatcher () in
  let a = frame_cells ~vci:10 ~tag:1 300 in
  let b = frame_cells ~vci:11 ~tag:2 300 in
  (* interleave the two cell streams *)
  let rec weave xs ys =
    match (xs, ys) with
    | [], r | r, [] -> r
    | x :: xs, y :: ys -> x :: y :: weave xs ys
  in
  let results = List.map (Dispatcher.on_cell d) (weave a b) in
  let to_a = List.filter (fun r -> r = Some "app-1") results in
  let to_b = List.filter (fun r -> r = Some "app-2") results in
  checki "stream a complete" (List.length a) (List.length to_a);
  checki "stream b complete" (List.length b) (List.length to_b)

let test_dispatcher_poisoned_frame () =
  let d = mk_dispatcher () in
  let cells = frame_cells ~vci:10 ~tag:9 (* no pattern *) 300 in
  let results = List.map (Dispatcher.on_cell d) cells in
  checkb "whole frame unmatched" true (List.for_all (fun r -> r = None) results);
  checki "one unmatched frame" 1 (Dispatcher.stats d).Dispatcher.unmatched_frames;
  (* the next frame on the same VC classifies afresh *)
  let next = frame_cells ~vci:10 ~tag:1 100 in
  checkb "vc recovers" true (Dispatcher.on_cell d (List.hd next) = Some "app-1")

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "pathfinder"
    [
      ( "pattern",
        [
          Alcotest.test_case "field validation" `Quick test_field_validation;
          Alcotest.test_case "matching semantics" `Quick test_field_matching;
          Alcotest.test_case "out-of-range reads" `Quick test_field_out_of_range;
        ] );
      ( "classifier",
        [
          Alcotest.test_case "basic routing" `Quick test_classifier_basic;
          Alcotest.test_case "priority = insertion order" `Quick test_classifier_priority;
          Alcotest.test_case "priority other order" `Quick test_classifier_priority_other_order;
          Alcotest.test_case "prefix sharing" `Quick test_classifier_prefix_sharing;
          Alcotest.test_case "pattern removal" `Quick test_classifier_remove;
          Alcotest.test_case "empty pattern" `Quick test_classifier_empty_pattern;
          Alcotest.test_case "backtracking" `Quick test_classifier_backtracking;
          Alcotest.test_case "masked fields" `Quick test_classifier_masked_fields;
          Alcotest.test_case "remove keeps siblings" `Quick test_classifier_remove_keeps_siblings;
          Alcotest.test_case "tombstone sweep" `Quick test_classifier_tombstone_sweep;
          Alcotest.test_case "indexed probe count" `Quick test_classifier_indexed_probes;
          qc classifier_vs_naive;
          qc classifier_vs_linear_ops;
        ] );
      ( "dispatcher",
        [
          Alcotest.test_case "single frame" `Quick test_dispatcher_single_frame;
          Alcotest.test_case "interleaved VCs" `Quick test_dispatcher_interleaved_vcs;
          Alcotest.test_case "poisoned frame" `Quick test_dispatcher_poisoned_frame;
        ] );
    ]
