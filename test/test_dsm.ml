(* Tests for the DSM layer: vector clocks, diffs, and end-to-end LRC runs on
   small clusters. *)

module Time = Cni_engine.Time
module Cluster = Cni_cluster.Cluster
module Node = Cni_cluster.Node
module Nic = Cni_nic.Nic
module Vclock = Cni_dsm.Vclock
module Diff = Cni_dsm.Diff
module Space = Cni_dsm.Space
module Lrc = Cni_dsm.Lrc
module Shmem = Cni_dsm.Shmem

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Vclock                                                              *)
(* ------------------------------------------------------------------ *)

let test_vclock_basic () =
  let a = Vclock.create 3 in
  checki "fresh component" 0 (Vclock.get a 1);
  checki "incr returns new" 1 (Vclock.incr a 1);
  checki "incr again" 2 (Vclock.incr a 1);
  let b = Vclock.copy a in
  ignore (Vclock.incr b 2);
  checkb "a <= b" true (Vclock.leq a b);
  checkb "b </= a" false (Vclock.leq b a);
  Vclock.merge a b;
  checkb "after merge equal" true (Vclock.equal a b);
  checki "wire bytes" 12 (Vclock.wire_bytes a)

let test_vclock_merge_pointwise () =
  let a = Vclock.create 2 and b = Vclock.create 2 in
  Vclock.set a 0 5;
  Vclock.set b 1 7;
  Vclock.merge a b;
  checki "kept own max" 5 (Vclock.get a 0);
  checki "took other max" 7 (Vclock.get a 1)

(* qcheck lattice laws for vector clocks *)
let gen_vc =
  QCheck.make
    QCheck.Gen.(
      map
        (fun l ->
          let v = Vclock.create 4 in
          List.iteri (fun i x -> if i < 4 then Vclock.set v i x) l;
          v)
        (list_size (return 4) (int_bound 100)))

let vclock_merge_is_lub =
  QCheck.Test.make ~name:"merge is the least upper bound" ~count:300 (QCheck.pair gen_vc gen_vc)
    (fun (a, b) ->
      let m = Vclock.copy a in
      Vclock.merge m b;
      Vclock.leq a m && Vclock.leq b m
      &&
      (* minimality: m agrees with a or b pointwise *)
      List.for_all
        (fun k -> Vclock.get m k = max (Vclock.get a k) (Vclock.get b k))
        [ 0; 1; 2; 3 ])

let vclock_merge_commutes =
  QCheck.Test.make ~name:"merge commutes" ~count:300 (QCheck.pair gen_vc gen_vc) (fun (a, b) ->
      let m1 = Vclock.copy a in
      Vclock.merge m1 b;
      let m2 = Vclock.copy b in
      Vclock.merge m2 a;
      Vclock.equal m1 m2)

let vclock_merge_idempotent =
  QCheck.Test.make ~name:"merge idempotent" ~count:300 gen_vc (fun a ->
      let m = Vclock.copy a in
      Vclock.merge m a;
      Vclock.equal m a)

let vclock_leq_partial_order =
  QCheck.Test.make ~name:"leq is a partial order" ~count:300 (QCheck.pair gen_vc gen_vc)
    (fun (a, b) ->
      Vclock.leq a a && ((not (Vclock.leq a b && Vclock.leq b a)) || Vclock.equal a b))

(* ------------------------------------------------------------------ *)
(* Diff                                                                *)
(* ------------------------------------------------------------------ *)

let page_of_string s =
  let b = Bytes.make 128 '\000' in
  Bytes.blit_string s 0 b 0 (min (String.length s) 128);
  b

let test_diff_roundtrip () =
  let twin = page_of_string "hello world, this is the original page content" in
  let current = Bytes.copy twin in
  Bytes.blit_string "HELLO" 0 current 0 5;
  Bytes.blit_string "PATCH" 0 current 64 5;
  let d = Diff.create ~twin ~current in
  checkb "diff not empty" false (Diff.is_empty d);
  checki "two runs" 2 (Diff.runs d);
  let target = Bytes.copy twin in
  Diff.apply d target;
  checkb "apply reconstructs" true (Bytes.equal target current)

let test_diff_empty () =
  let twin = page_of_string "same" in
  let d = Diff.create ~twin ~current:(Bytes.copy twin) in
  checkb "empty" true (Diff.is_empty d);
  checki "no words" 0 (Diff.changed_words d);
  checki "no wire bytes" 0 (Diff.wire_bytes d)

let test_diff_encode_decode () =
  let twin = page_of_string "abcdefgh12345678" in
  let current = Bytes.copy twin in
  Bytes.set current 3 'X';
  Bytes.set current 100 'Y';
  let d = Diff.create ~twin ~current in
  let d' = Diff.decode (Diff.encode d) in
  let t1 = Bytes.copy twin and t2 = Bytes.copy twin in
  Diff.apply d t1;
  Diff.apply d' t2;
  checkb "decode(encode) applies equally" true (Bytes.equal t1 t2)

let test_diff_merge () =
  let twin = Bytes.make 64 '\000' in
  let mid = Bytes.copy twin in
  Bytes.set_int64_ne mid 8 42L;
  let d1 = Diff.create ~twin ~current:mid in
  let final = Bytes.copy mid in
  Bytes.set_int64_ne final 8 0L (* overwritten back to zero! *);
  Bytes.set_int64_ne final 24 7L;
  let d2 = Diff.create ~twin:mid ~current:final in
  let m = Diff.merge d1 d2 in
  let target = Bytes.copy twin in
  Diff.apply m target;
  checkb "merge = sequential application" true (Bytes.equal target final)

(* qcheck: diff apply reconstructs arbitrary mutations *)
let diff_reconstruction =
  QCheck.Test.make ~name:"diff reconstructs arbitrary word mutations" ~count:200
    QCheck.(pair (list (pair (int_bound 31) int64)) (int_bound 1000))
    (fun (mutations, seed) ->
      let twin = Bytes.create 256 in
      for i = 0 to 255 do
        Bytes.set twin i (Char.chr ((i * 7 + seed) land 0xff))
      done;
      let current = Bytes.copy twin in
      List.iter (fun (w, v) -> Bytes.set_int64_ne current (w * 8) v) mutations;
      let d = Diff.create ~twin ~current in
      let target = Bytes.copy twin in
      Diff.apply d target;
      Bytes.equal target current)

let diff_size_bounded =
  QCheck.Test.make ~name:"diff wire size bounded by page + headers" ~count:200
    QCheck.(list (pair (int_bound 31) int64))
    (fun mutations ->
      let twin = Bytes.make 256 '\xAB' in
      let current = Bytes.copy twin in
      List.iter (fun (w, v) -> Bytes.set_int64_ne current (w * 8) v) mutations;
      let d = Diff.create ~twin ~current in
      Diff.wire_bytes d <= 256 + (Diff.runs d * 8)
      && Diff.changed_words d * 8 <= Diff.wire_bytes d)

(* ------------------------------------------------------------------ *)
(* End-to-end LRC                                                      *)
(* ------------------------------------------------------------------ *)

let make_cluster ?barrier_impl ~kind ~nodes () =
  let cluster = Cluster.create ~nic_kind:kind ~nodes () in
  let space = Space.create ~nprocs:nodes ~page_bytes:(Cluster.params cluster).page_bytes in
  let lrcs = Lrc.install cluster space ?barrier_impl () in
  (cluster, space, lrcs)

let cni_kind = `Cni Nic.default_cni_options

(* Two nodes fill halves of an array, synchronise on a barrier, then each
   reads the whole array: values must flow and time must advance. *)
let run_barrier_sharing ?barrier_impl kind =
  let nodes = 2 in
  let cluster, space, lrcs = make_cluster ?barrier_impl ~kind ~nodes () in
  let arr = Shmem.Farray.create space ~len:1024 in
  let half = 512 in
  let sums = Array.make nodes 0.0 in
  Cluster.run_app cluster (fun node ->
      let me = Node.id node in
      let lrc = lrcs.(me) in
      let lo = me * half in
      Shmem.Farray.init_local lrc arr ~lo ~len:half (fun i -> float_of_int i);
      Lrc.barrier lrc ~id:0;
      Shmem.Farray.write_range lrc arr ~lo ~len:half;
      for i = lo to lo + half - 1 do
        Shmem.Farray.set arr i (float_of_int (i * 2))
      done;
      Node.work node 10_000;
      Lrc.barrier lrc ~id:0;
      Shmem.Farray.read_range lrc arr ~lo:0 ~len:1024;
      let s = ref 0.0 in
      for i = 0 to 1023 do
        s := !s +. Shmem.Farray.get arr i
      done;
      sums.(me) <- !s;
      Lrc.barrier lrc ~id:0);
  (cluster, lrcs, sums)

let expected_sum = float_of_int (1023 * 1024) (* sum of 2i for i in 0..1023 *)

let test_barrier_sharing_cni () =
  let cluster, lrcs, sums = run_barrier_sharing cni_kind in
  check (Alcotest.float 0.001) "node0 sees all data" expected_sum sums.(0);
  check (Alcotest.float 0.001) "node1 sees all data" expected_sum sums.(1);
  checkb "time advanced" true (Cluster.elapsed cluster > Time.zero);
  let st = Lrc.stats lrcs.(0) in
  checkb "node0 faulted" true (st.Lrc.faults > 0);
  checkb "intervals closed" true (st.Lrc.intervals > 0)

let test_barrier_sharing_standard () =
  let cluster, _lrcs, sums = run_barrier_sharing `Standard in
  check (Alcotest.float 0.001) "node0 sees all data" expected_sum sums.(0);
  check (Alcotest.float 0.001) "node1 sees all data" expected_sum sums.(1);
  checkb "time advanced" true (Cluster.elapsed cluster > Time.zero)

let test_cni_faster_than_standard () =
  let c1, _, _ = run_barrier_sharing cni_kind in
  let c2, _, _ = run_barrier_sharing `Standard in
  checkb "CNI no slower than standard" true (Cluster.elapsed c1 <= Cluster.elapsed c2)

let total_interrupts cluster ~nodes =
  let acc = ref 0 in
  for n = 0 to nodes - 1 do
    acc := !acc + (Nic.stats (Node.nic (Cluster.node cluster n))).Nic.interrupts
  done;
  !acc

(* The NIC-tree barrier must deliver the same memory semantics as the
   centralised manager: write notices reach every node, so both nodes read
   the same (complete) data — and on CNI the whole run takes zero host
   interrupts because the tree combines on the boards. *)
let test_nic_collective_barrier_parity () =
  let cluster, lrcs, sums = run_barrier_sharing ~barrier_impl:`Nic_collective cni_kind in
  check (Alcotest.float 0.001) "node0 sees all data" expected_sum sums.(0);
  check (Alcotest.float 0.001) "node1 sees all data" expected_sum sums.(1);
  let st = Lrc.stats lrcs.(0) in
  checkb "barriers counted" true (st.Lrc.barriers = 3);
  checki "zero host interrupts on CNI" 0 (total_interrupts cluster ~nodes:2)

let test_nic_collective_barrier_standard () =
  (* same semantics on the standard interface (handlers behind interrupts) *)
  let cluster, _lrcs, sums = run_barrier_sharing ~barrier_impl:`Nic_collective `Standard in
  check (Alcotest.float 0.001) "node0 sees all data" expected_sum sums.(0);
  check (Alcotest.float 0.001) "node1 sees all data" expected_sum sums.(1);
  checkb "standard interface interrupts per tree packet" true
    (total_interrupts cluster ~nodes:2 > 0)

(* Lock-protected counter: mutual exclusion must give an exact total. *)
let test_lock_counter () =
  let nodes = 4 in
  let cluster, space, lrcs = make_cluster ~kind:cni_kind ~nodes () in
  let counter = Shmem.Iarray.create space ~len:1 in
  let iters = 20 in
  Cluster.run_app cluster (fun node ->
      let me = Node.id node in
      let lrc = lrcs.(me) in
      if me = 0 then Shmem.Iarray.init_local lrc counter ~lo:0 ~len:1 (fun _ -> 0);
      Lrc.barrier lrc ~id:9;
      for _ = 1 to iters do
        Lrc.acquire lrc ~lock:0;
        let v = Shmem.Iarray.read1 lrc counter 0 in
        Node.work node 200;
        Shmem.Iarray.write1 lrc counter 0 (v + 1);
        Lrc.release lrc ~lock:0
      done;
      Lrc.barrier lrc ~id:9);
  checki "counter total" (nodes * iters) (Shmem.Iarray.get counter 0);
  let remote = Array.fold_left (fun a l -> a + (Lrc.stats l).Lrc.remote_acquires) 0 lrcs in
  checkb "some remote acquires" true (remote > 0)

(* A single-node run must not send any packets. *)
let test_single_node_no_traffic () =
  let cluster, space, lrcs = make_cluster ~kind:cni_kind ~nodes:1 () in
  let arr = Shmem.Farray.create space ~len:256 in
  Cluster.run_app cluster (fun node ->
      let lrc = lrcs.(Node.id node) in
      Shmem.Farray.init_local lrc arr ~lo:0 ~len:256 (fun _ -> 1.0);
      Lrc.acquire lrc ~lock:3;
      Shmem.Farray.write_range lrc arr ~lo:0 ~len:256;
      Lrc.release lrc ~lock:3;
      Lrc.barrier lrc ~id:1;
      Shmem.Farray.read_range lrc arr ~lo:0 ~len:256;
      Node.work node 1000);
  let fstats = Cni_atm.Fabric.stats (Cluster.fabric cluster) in
  checki "no packets" 0 fstats.Cni_atm.Fabric.packets;
  checkb "time advanced" true (Cluster.elapsed cluster > Time.zero)

(* Page migration under locks: receive caching and transmit hits. *)
let test_page_migration_hits () =
  let nodes = 2 in
  let cluster, space, lrcs = make_cluster ~kind:cni_kind ~nodes () in
  let arr = Shmem.Farray.create space ~len:512 (* 2 pages at 2 KB *) in
  Cluster.run_app cluster (fun node ->
      let me = Node.id node in
      let lrc = lrcs.(me) in
      if me = 0 then Shmem.Farray.init_local lrc arr ~lo:0 ~len:512 (fun _ -> 0.0);
      Lrc.barrier lrc ~id:0;
      (* ping-pong the pages between the nodes under a lock *)
      for _round = 1 to 6 do
        Lrc.acquire lrc ~lock:1;
        Shmem.Farray.write_range lrc arr ~lo:0 ~len:512;
        for i = 0 to 511 do
          Shmem.Farray.set arr i (Shmem.Farray.get arr i +. 1.0)
        done;
        Lrc.release lrc ~lock:1;
        Node.work node 5_000
      done;
      Lrc.barrier lrc ~id:0);
  check (Alcotest.float 0.001) "12 rounds of +1" 12.0 (Shmem.Farray.get arr 0);
  let hit_ratio = Cluster.network_cache_hit_ratio cluster in
  checkb "hit ratio sane" true (hit_ratio >= 0.0 && hit_ratio <= 100.0);
  let pf = Array.fold_left (fun a l -> a + (Lrc.stats l).Lrc.page_fetches) 0 lrcs in
  checkb "pages migrated" true (pf > 0)


(* ------------------------------------------------------------------ *)
(* Space and Protocol units                                            *)
(* ------------------------------------------------------------------ *)

module Protocol = Cni_dsm.Protocol

let test_space_alloc () =
  let sp = Space.create ~nprocs:4 ~page_bytes:2048 in
  let a = Space.alloc sp ~bytes:100 in
  let b = Space.alloc sp ~bytes:5000 in
  checki "page aligned" 0 ((a - Space.shared_base) mod 2048);
  checki "next allocation past rounded size" (a + 2048) b;
  checki "npages" 4 (Space.npages sp);
  checki "page_of_addr" 1 (Space.page_of_addr sp b);
  checki "addr_of_page roundtrip" b (Space.addr_of_page sp 1)

let test_space_intervals () =
  let sp = Space.create ~nprocs:2 ~page_bytes:2048 in
  let notice page seq bytes = { Protocol.page; owner = 0; seq; diff_bytes = bytes } in
  Space.record_interval sp ~node:0 ~seq:1 ~notices:[ notice 3 1 100 ];
  Space.record_interval sp ~node:0 ~seq:2 ~notices:[ notice 3 2 50; notice 4 2 10 ];
  (* out-of-order recording is rejected *)
  Alcotest.check_raises "seq gap" (Invalid_argument "Space.record_interval: out-of-order interval")
    (fun () -> Space.record_interval sp ~node:0 ~seq:5 ~notices:[]);
  let from_vc = Vclock.create 2 and upto = Vclock.create 2 in
  Vclock.set upto 0 2;
  checki "both intervals reported" 3 (List.length (Space.notices_between sp ~from_vc ~upto_vc:upto));
  Vclock.set from_vc 0 1;
  checki "only the second" 2 (List.length (Space.notices_between sp ~from_vc ~upto_vc:upto));
  checki "diff bytes summed" 150 (Space.diff_bytes_between sp ~owner:0 ~page:3 ~since:0 ~upto:2);
  checki "diff bytes since" 50 (Space.diff_bytes_between sp ~owner:0 ~page:3 ~since:1 ~upto:2);
  checki "absent page" 0 (Space.diff_bytes_between sp ~owner:1 ~page:3 ~since:0 ~upto:9)

let test_space_routing_defaults () =
  let sp = Space.create ~nprocs:4 ~page_bytes:2048 in
  checki "home round-robin" 3 (Space.home sp ~page:7);
  checki "last writer defaults to home" 3 (Space.last_writer sp ~page:7);
  Space.set_last_writer sp ~page:7 ~node:1;
  checki "last writer updated" 1 (Space.last_writer sp ~page:7);
  checki "lock manager" 2 (Space.lock_manager sp ~lock:6);
  checki "lock last owner defaults to manager" 2 (Space.lock_last_owner sp ~lock:6)

let test_protocol_sizes () =
  let vc = Vclock.create 4 in
  let notices =
    [ { Protocol.page = 1; owner = 0; seq = 1; diff_bytes = 64 };
      { Protocol.page = 2; owner = 1; seq = 1; diff_bytes = 64 } ]
  in
  checki "acquire carries vc" (8 + 16) (Protocol.body_bytes (Protocol.Lock_acquire { lock = 0; requester = 1; vc }));
  checki "grant carries vc + notices" (8 + 16 + 24)
    (Protocol.body_bytes (Protocol.Lock_grant { lock = 0; vc; notices }));
  checki "page reply data rides separately" 0
    (Protocol.body_bytes (Protocol.Page_reply { page = 3; migratory = true }));
  checki "diff reply body is metadata only (data rides as bulk)" 8
    (Protocol.body_bytes (Protocol.Diff_reply { page = 3; owner = 0; bytes = 100; upto = 2 }))

let test_protocol_headers_classify () =
  (* every protocol kind's header matches its installed PATHFINDER pattern *)
  let vc = Vclock.create 2 in
  let msgs =
    [ Protocol.Lock_acquire { lock = 1; requester = 0; vc };
      Protocol.Lock_forward { lock = 1; requester = 0; vc };
      Protocol.Lock_grant { lock = 1; vc; notices = [] };
      Protocol.Page_req { page = 2; requester = 0; write_intent = true };
      Protocol.Page_reply { page = 2; migratory = true };
      Protocol.Diff_req { page = 2; requester = 0; since = 0; upto = 1 };
      Protocol.Diff_reply { page = 2; owner = 1; bytes = 8; upto = 1 };
      Protocol.Barrier_arrive { barrier = 0; node = 1; vc; notices = [] };
      Protocol.Barrier_release { barrier = 0; vc; notices = [] } ]
  in
  List.iter
    (fun msg ->
      let header = Protocol.header ~src:1 msg in
      let kind = Protocol.kind_of msg in
      let pattern = Cni_nic.Wire.pattern_channel_kind ~channel:Protocol.channel ~kind in
      if not (Cni_pathfinder.Pattern.matches pattern header) then
        Alcotest.failf "header of %s does not match its pattern" (Protocol.kind_name kind))
    msgs

(* ------------------------------------------------------------------ *)
(* More end-to-end LRC behaviour                                       *)
(* ------------------------------------------------------------------ *)

(* concurrent write sharing: two nodes write disjoint halves of ONE page
   under different locks between barriers; both sets of writes must be seen
   by everyone (diffs fetched from both writers) *)
let test_concurrent_write_sharing () =
  let nodes = 2 in
  let cluster, space, lrcs = make_cluster ~kind:cni_kind ~nodes () in
  let arr = Shmem.Farray.create space ~len:256 (* one 2 KB page *) in
  Cluster.run_app cluster (fun node ->
      let me = Node.id node in
      let lrc = lrcs.(me) in
      if me = 0 then Shmem.Farray.init_local lrc arr ~lo:0 ~len:256 (fun _ -> 0.0);
      Lrc.barrier lrc ~id:0;
      for round = 1 to 3 do
        (* each node writes its own half under its own lock *)
        Lrc.acquire lrc ~lock:(10 + me);
        let lo = me * 128 in
        Shmem.Farray.write_range lrc arr ~lo ~len:128;
        for i = lo to lo + 127 do
          Shmem.Farray.set arr i (float_of_int ((round * 1000) + i))
        done;
        Lrc.release lrc ~lock:(10 + me);
        Lrc.barrier lrc ~id:1;
        (* everyone reads the whole page: must see both halves *)
        Shmem.Farray.read_range lrc arr ~lo:0 ~len:256;
        let ok = ref true in
        for i = 0 to 255 do
          if Shmem.Farray.get arr i <> float_of_int ((round * 1000) + i) then ok := false
        done;
        if not !ok then Alcotest.failf "node %d saw stale data in round %d" me round;
        Lrc.barrier lrc ~id:2
      done);
  let df = Array.fold_left (fun a l -> a + (Lrc.stats l).Lrc.diff_fetches) 0 lrcs in
  checkb "diffs flowed between concurrent writers" true (df > 0)

(* the mapping cap (approximate-LRU address-space recycling of section 3.1):
   with a tiny cap, pages get evicted and refetched, and the run still
   computes the right values *)
let test_resident_cap_evicts () =
  let nodes = 2 in
  let cluster = Cluster.create ~nic_kind:cni_kind ~nodes () in
  let space = Space.create ~nprocs:nodes ~page_bytes:(Cluster.params cluster).page_bytes in
  let lrcs = Lrc.install cluster space ~max_resident_pages:4 () in
  let arr = Shmem.Farray.create space ~len:4096 (* 16 pages *) in
  let sum = ref 0.0 in
  Cluster.run_app cluster (fun node ->
      let me = Node.id node in
      let lrc = lrcs.(me) in
      if me = 0 then Shmem.Farray.init_local lrc arr ~lo:0 ~len:4096 (fun i -> float_of_int i);
      Lrc.barrier lrc ~id:0;
      if me = 1 then begin
        (* stream through all 16 pages twice with only 4 mapping slots *)
        for _pass = 1 to 2 do
          Shmem.Farray.read_range lrc arr ~lo:0 ~len:4096
        done;
        let s = ref 0.0 in
        for i = 0 to 4095 do
          s := !s +. Shmem.Farray.get arr i
        done;
        sum := !s
      end;
      Lrc.barrier lrc ~id:0);
  check (Alcotest.float 0.1) "values correct despite evictions"
    (float_of_int (4095 * 4096 / 2))
    !sum;
  checkb "evictions happened" true ((Lrc.stats lrcs.(1)).Lrc.evictions > 0)

(* barrier ids can be reused across epochs *)
let test_barrier_epochs () =
  let nodes = 3 in
  let cluster, _space, lrcs = make_cluster ~kind:cni_kind ~nodes () in
  let order = ref [] in
  Cluster.run_app cluster (fun node ->
      let me = Node.id node in
      let lrc = lrcs.(me) in
      for epoch = 1 to 5 do
        Node.work node ((me + 1) * 1000);
        Lrc.barrier lrc ~id:0;
        if me = 0 then order := epoch :: !order
      done);
  check (Alcotest.list Alcotest.int) "five epochs in order" [ 1; 2; 3; 4; 5 ] (List.rev !order)

(* lock fairness-ish: a contended lock is granted to every requester *)
let test_lock_no_starvation () =
  let nodes = 4 in
  let cluster, space, lrcs = make_cluster ~kind:cni_kind ~nodes () in
  let acquisitions = Array.make nodes 0 in
  let counter = Shmem.Iarray.create space ~len:1 in
  Cluster.run_app cluster (fun node ->
      let me = Node.id node in
      let lrc = lrcs.(me) in
      if me = 0 then Shmem.Iarray.init_local lrc counter ~lo:0 ~len:1 (fun _ -> 0);
      Lrc.barrier lrc ~id:0;
      for _ = 1 to 10 do
        Lrc.acquire lrc ~lock:5;
        acquisitions.(me) <- acquisitions.(me) + 1;
        Node.work node 500;
        Lrc.release lrc ~lock:5
      done;
      Lrc.barrier lrc ~id:0);
  Array.iteri (fun i n -> checki (Printf.sprintf "node %d completed" i) 10 n) acquisitions

(* the standard interface must interrupt for protocol service; CNI+AIH not *)
let test_aih_removes_interrupts () =
  let count kind =
    let cluster, space, lrcs = make_cluster ~kind ~nodes:2 () in
    let arr = Shmem.Farray.create space ~len:512 in
    Cluster.run_app cluster (fun node ->
        let me = Node.id node in
        let lrc = lrcs.(me) in
        if me = 0 then Shmem.Farray.init_local lrc arr ~lo:0 ~len:512 (fun _ -> 1.0);
        Lrc.barrier lrc ~id:0;
        if me = 1 then Shmem.Farray.read_range lrc arr ~lo:0 ~len:512;
        Lrc.barrier lrc ~id:0);
    Array.fold_left
      (fun acc nd -> acc + (Cni_nic.Nic.stats (Node.nic nd)).Cni_nic.Nic.interrupts)
      0 (Cluster.nodes cluster)
  in
  checki "AIH: zero interrupts" 0 (count cni_kind);
  checkb "standard: interrupts taken" true (count `Standard > 0)

let test_lock_api_errors () =
  let cluster, _space, lrcs = make_cluster ~kind:cni_kind ~nodes:1 () in
  Cluster.run_app cluster (fun node ->
      let lrc = lrcs.(Node.id node) in
      (try
         Lrc.release lrc ~lock:7;
         Alcotest.fail "release of unheld lock accepted"
       with Invalid_argument _ -> ());
      Lrc.acquire lrc ~lock:7;
      (try
         Lrc.acquire lrc ~lock:7;
         Alcotest.fail "re-acquire accepted"
       with Invalid_argument _ -> ());
      Lrc.release lrc ~lock:7)

let test_shmem_bounds () =
  let cluster, space, lrcs = make_cluster ~kind:cni_kind ~nodes:1 () in
  let arr = Shmem.Farray.create space ~len:16 in
  Cluster.run_app cluster (fun node ->
      let lrc = lrcs.(Node.id node) in
      (try
         Shmem.Farray.read_range lrc arr ~lo:10 ~len:10;
         Alcotest.fail "read past end accepted"
       with Invalid_argument _ -> ());
      try
        Shmem.Farray.write_range lrc arr ~lo:(-1) ~len:1;
        Alcotest.fail "negative offset accepted"
      with Invalid_argument _ -> ())

let test_shmem_layout () =
  let sp = Space.create ~nprocs:2 ~page_bytes:2048 in
  let a = Shmem.Farray.create sp ~len:10 in
  let b = Shmem.Iarray.create sp ~len:10 in
  checki "lengths" 10 (Shmem.Farray.len a);
  checki "lengths" 10 (Shmem.Iarray.len b);
  (* allocations are page-aligned and disjoint *)
  let ba = Shmem.Block.base (Shmem.Farray.block a)
  and bb = Shmem.Block.base (Shmem.Iarray.block b) in
  checkb "disjoint" true (bb >= ba + 2048);
  checki "block bytes" 80 (Shmem.Block.bytes (Shmem.Farray.block a))

(* the traffic mix matches the synchronisation structure of the program *)
let test_message_mix () =
  (* barrier-only sharing: no lock traffic at all *)
  let cluster, space, lrcs = make_cluster ~kind:cni_kind ~nodes:2 () in
  let arr = Shmem.Farray.create space ~len:512 in
  Cluster.run_app cluster (fun node ->
      let me = Node.id node in
      let lrc = lrcs.(me) in
      Shmem.Farray.init_local lrc arr ~lo:(me * 256) ~len:256 (fun _ -> 1.0);
      Lrc.barrier lrc ~id:0;
      Shmem.Farray.write_range lrc arr ~lo:(me * 256) ~len:256;
      Lrc.barrier lrc ~id:0;
      Shmem.Farray.read_range lrc arr ~lo:0 ~len:512;
      Lrc.barrier lrc ~id:0);
  let mix = List.concat_map Lrc.received_messages (Array.to_list lrcs) in
  let count name = List.fold_left (fun a (k, n) -> if k = name then a + n else a) 0 mix in
  checki "no lock traffic" 0 (count "lock-acquire" + count "lock-forward" + count "lock-grant");
  checkb "barrier traffic present" true (count "barrier-arrive" > 0 && count "barrier-release" > 0);
  checkb "data was fetched" true (count "page-reply" + count "diff-reply" > 0);
  (* lock-based sharing: lock traffic appears *)
  let cluster2, space2, lrcs2 = make_cluster ~kind:cni_kind ~nodes:2 () in
  let c2 = Shmem.Iarray.create space2 ~len:1 in
  Cluster.run_app cluster2 (fun node ->
      let me = Node.id node in
      let lrc = lrcs2.(me) in
      if me = 0 then Shmem.Iarray.init_local lrc c2 ~lo:0 ~len:1 (fun _ -> 0);
      Lrc.barrier lrc ~id:0;
      for _ = 1 to 4 do
        Lrc.acquire lrc ~lock:0;
        Shmem.Iarray.write1 lrc c2 0 (Shmem.Iarray.read1 lrc c2 0 + 1);
        Lrc.release lrc ~lock:0
      done;
      Lrc.barrier lrc ~id:0);
  let mix2 = List.concat_map Lrc.received_messages (Array.to_list lrcs2) in
  let count2 name = List.fold_left (fun a (k, n) -> if k = name then a + n else a) 0 mix2 in
  checkb "lock grants flowed" true (count2 "lock-grant" > 0)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "dsm"
    [
      ( "vclock",
        [
          Alcotest.test_case "basic" `Quick test_vclock_basic;
          Alcotest.test_case "merge pointwise" `Quick test_vclock_merge_pointwise;
          qc vclock_merge_is_lub;
          qc vclock_merge_commutes;
          qc vclock_merge_idempotent;
          qc vclock_leq_partial_order;
        ] );
      ( "diff",
        [
          Alcotest.test_case "roundtrip" `Quick test_diff_roundtrip;
          Alcotest.test_case "empty" `Quick test_diff_empty;
          Alcotest.test_case "encode/decode" `Quick test_diff_encode_decode;
          Alcotest.test_case "merge" `Quick test_diff_merge;
          qc diff_reconstruction;
          qc diff_size_bounded;
        ] );
      ( "space",
        [
          Alcotest.test_case "allocation" `Quick test_space_alloc;
          Alcotest.test_case "interval log" `Quick test_space_intervals;
          Alcotest.test_case "routing defaults" `Quick test_space_routing_defaults;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "message sizes" `Quick test_protocol_sizes;
          Alcotest.test_case "headers classify" `Quick test_protocol_headers_classify;
        ] );
      ( "lrc",
        [
          Alcotest.test_case "barrier sharing (CNI)" `Quick test_barrier_sharing_cni;
          Alcotest.test_case "barrier sharing (standard)" `Quick test_barrier_sharing_standard;
          Alcotest.test_case "CNI <= standard" `Quick test_cni_faster_than_standard;
          Alcotest.test_case "NIC-tree barrier parity (CNI)" `Quick
            test_nic_collective_barrier_parity;
          Alcotest.test_case "NIC-tree barrier parity (standard)" `Quick
            test_nic_collective_barrier_standard;
          Alcotest.test_case "lock counter" `Quick test_lock_counter;
          Alcotest.test_case "single node: no traffic" `Quick test_single_node_no_traffic;
          Alcotest.test_case "page migration" `Quick test_page_migration_hits;
          Alcotest.test_case "concurrent write sharing" `Quick test_concurrent_write_sharing;
          Alcotest.test_case "resident cap evicts" `Quick test_resident_cap_evicts;
          Alcotest.test_case "barrier epochs" `Quick test_barrier_epochs;
          Alcotest.test_case "no lock starvation" `Quick test_lock_no_starvation;
          Alcotest.test_case "AIH removes interrupts" `Quick test_aih_removes_interrupts;
          Alcotest.test_case "message mix matches program" `Quick test_message_mix;
          Alcotest.test_case "lock API errors" `Quick test_lock_api_errors;
          Alcotest.test_case "shmem bounds" `Quick test_shmem_bounds;
          Alcotest.test_case "shmem layout" `Quick test_shmem_layout;
        ] );
    ]
