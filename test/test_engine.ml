(* Tests for the simulation substrate: time, heap, RNG, statistics, growable
   arrays, the event engine, fibers and synchronisation primitives. *)

module Time = Cni_engine.Time
module Heap = Cni_engine.Heap
module Rng = Cni_engine.Rng
module Stats = Cni_engine.Stats
module Trace = Cni_engine.Trace
module Vec = Cni_engine.Vec
module Engine = Cni_engine.Engine
module Sync = Cni_engine.Sync

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checks = check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Time                                                                *)
(* ------------------------------------------------------------------ *)

let test_time_units () =
  checki "1 us = 1000 ns" (Time.to_ps (Time.us 1)) (Time.to_ps (Time.ns 1000));
  checki "1 ms" 1_000_000_000 (Time.to_ps (Time.ms 1));
  checki "1 s" 1_000_000_000_000 (Time.to_ps (Time.s 1));
  check (Alcotest.float 1e-9) "to_us of 1500ns" 1.5 (Time.to_us_float (Time.ns 1500))

let test_time_arith () =
  let open Time in
  checki "add" 300 (to_ps (ps 100 + ps 200));
  checki "sub" 50 (to_ps (ps 150 - ps 100));
  checki "scale" 500 (to_ps (ps 100 * 5));
  checki "max" 200 (to_ps (Time.max (ps 100) (ps 200)));
  checki "min" 100 (to_ps (Time.min (ps 100) (ps 200)))

let test_time_cycles () =
  (* 166 MHz -> 6024 ps per cycle (rounded) *)
  checki "cpu cycle" 6024 (Time.to_ps (Time.cycle_ps ~hz:166_000_000));
  (* 25 MHz -> exactly 40 ns *)
  checki "bus cycle" 40_000 (Time.to_ps (Time.cycle_ps ~hz:25_000_000));
  checki "n cycles" (10 * 40_000) (Time.to_ps (Time.cycles ~hz:25_000_000 10))

let test_time_pp () =
  checks "ns formatting" "500.0ns" (Format.asprintf "%a" Time.pp (Time.ns 500));
  checks "us formatting" "40.000us" (Format.asprintf "%a" Time.pp (Time.us 40));
  checks "ps formatting" "77ps" (Format.asprintf "%a" Time.pp (Time.ps 77))

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iteri (fun i k -> Heap.add h ~key:k ~seq:i k) [ 5; 1; 4; 1; 3 ];
  let popped =
    List.init 5 (fun _ ->
        let k, _, _ = Heap.pop_min h in
        k)
  in
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 1; 3; 4; 5 ] popped;
  checkb "empty after" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.add h ~key:7 ~seq:i i
  done;
  let popped =
    List.init 10 (fun _ ->
        let _, _, v = Heap.pop_min h in
        v)
  in
  check (Alcotest.list Alcotest.int) "FIFO among equal keys" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    popped

let test_heap_empty_raises () =
  let h : int Heap.t = Heap.create () in
  Alcotest.check_raises "pop empty" Not_found (fun () -> ignore (Heap.pop_min h));
  Alcotest.check_raises "min_key empty" Not_found (fun () -> ignore (Heap.min_key h))

let test_heap_min_key () =
  let h = Heap.create () in
  Heap.add h ~key:9 ~seq:0 ();
  Heap.add h ~key:2 ~seq:1 ();
  checki "min key" 2 (Heap.min_key h);
  checki "length" 2 (Heap.length h);
  Heap.clear h;
  checki "cleared" 0 (Heap.length h)

(* popped/cleared slots must not pin their payloads: the heap overwrites
   vacated slots with a sentinel, so the GC can reclaim event closures *)
let[@inline never] heap_plant_payload h w =
  let payload = ref 424242 in
  Weak.set w 0 (Some payload);
  Heap.add h ~key:1 ~seq:0 payload

let test_heap_releases_on_pop () =
  let h = Heap.create () in
  let w = Weak.create 1 in
  heap_plant_payload h w;
  ignore (Heap.pop_min h);
  Gc.full_major ();
  checkb "payload reclaimed after pop_min" true (Weak.get w 0 = None)

let test_heap_releases_on_clear () =
  let h = Heap.create () in
  let w = Weak.create 1 in
  heap_plant_payload h w;
  Heap.clear h;
  Gc.full_major ();
  checkb "payload reclaimed after clear" true (Weak.get w 0 = None)

let test_heap_releases_on_pop_min_value () =
  let h = Heap.create () in
  let w = Weak.create 1 in
  heap_plant_payload h w;
  ignore (Heap.pop_min_value h);
  Gc.full_major ();
  checkb "payload reclaimed after pop_min_value" true (Weak.get w 0 = None)

let heap_sorts =
  QCheck.Test.make ~name:"heap pops any multiset in order" ~count:300
    QCheck.(list (int_bound 1000))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.add h ~key:k ~seq:i k) keys;
      let out =
        List.init (List.length keys) (fun _ ->
            let k, _, _ = Heap.pop_min h in
            k)
      in
      out = List.sort compare keys)

(* model test: arbitrary add/pop_min/clear interleavings against a
   sorted-list reference; keys are drawn from a small range so equal-key
   FIFO tie-breaks are exercised constantly *)
let heap_model =
  let open QCheck in
  let op_gen =
    Gen.frequency
      [ (6, Gen.map (fun k -> `Add k) (Gen.int_bound 40)); (3, Gen.return `Pop); (1, Gen.return `Clear) ]
  in
  let print_ops ops =
    String.concat ";"
      (List.map (function `Add k -> Printf.sprintf "Add %d" k | `Pop -> "Pop" | `Clear -> "Clear") ops)
  in
  Test.make ~name:"heap model: add/pop_min/clear vs sorted-list reference" ~count:500
    (make ~print:print_ops (Gen.list_size (Gen.int_bound 200) op_gen))
    (fun ops ->
      let h = Heap.create () in
      (* reference: unsorted (key, seq, value) triples; the expected pop is
         the lexicographic minimum, which encodes FIFO among equal keys *)
      let reference = ref [] in
      let seq = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | `Add k ->
              Heap.add h ~key:k ~seq:!seq !seq;
              reference := (k, !seq, !seq) :: !reference;
              incr seq;
              Heap.length h = List.length !reference
              && Heap.min_key h = (let mk, _, _ = List.hd (List.sort compare !reference) in mk)
          | `Pop -> (
              match Heap.pop_min h with
              | exception Not_found -> !reference = []
              | k, s, v -> (
                  match List.sort compare !reference with
                  | [] -> false
                  | m :: _ ->
                      reference := List.filter (fun e -> e <> m) !reference;
                      m = (k, s, v)))
          | `Clear ->
              Heap.clear h;
              reference := [];
              Heap.is_empty h)
        ops)

(* the engine hot path's allocation contract: once the backing arrays have
   grown, add + pop_min_value touch only unboxed slots and allocate nothing *)
let test_heap_hot_path_no_alloc () =
  let h = Heap.create () in
  for i = 0 to 1023 do
    Heap.add h ~key:(i * 31 mod 257) ~seq:i i
  done;
  while not (Heap.is_empty h) do
    ignore (Heap.pop_min_value h)
  done;
  let before = Gc.minor_words () in
  for i = 0 to 1023 do
    Heap.add h ~key:(i * 31 mod 257) ~seq:i i
  done;
  while not (Heap.is_empty h) do
    ignore (Heap.pop_min_value h)
  done;
  let words = Gc.minor_words () -. before in
  (* a per-element allocation would cost >= 4096 words here; the small
     epsilon absorbs the Gc.minor_words float boxes themselves *)
  if words > 256. then Alcotest.failf "steady-state add/pop allocated %.0f minor words" words

let test_heap_pop_min_value () =
  let h = Heap.create () in
  List.iteri (fun i k -> Heap.add h ~key:k ~seq:i (k * 10)) [ 5; 1; 4 ];
  checki "payload of the minimum" 10 (Heap.pop_min_value h);
  checki "next payload" 40 (Heap.pop_min_value h);
  checki "last payload" 50 (Heap.pop_min_value h);
  Alcotest.check_raises "empty raises" Not_found (fun () -> ignore (Heap.pop_min_value h))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    checkb "same stream" true (Rng.int64 a = Rng.int64 b)
  done;
  let c = Rng.create ~seed:8 in
  let distinct = ref false in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 c then distinct := true
  done;
  checkb "different seeds differ" true !distinct

let test_rng_bounds () =
  let r = Rng.create ~seed:1 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done;
  for _ = 1 to 10_000 do
    let f = Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_rng_split_independent () =
  let r = Rng.create ~seed:3 in
  let s = Rng.split r in
  (* draws from the split stream do not affect the parent's determinism *)
  let r2 = Rng.create ~seed:3 in
  ignore (Rng.split r2);
  ignore (Rng.int64 s);
  checkb "parent streams aligned" true (Rng.int64 r = Rng.int64 r2)

let shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle preserves the multiset" ~count:200
    QCheck.(pair (list int) small_int)
    (fun (l, seed) ->
      let arr = Array.of_list l in
      Rng.shuffle (Rng.create ~seed) arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_counter () =
  let c = Stats.Counter.create "c" in
  Stats.Counter.incr c;
  Stats.Counter.add c 10;
  checki "value" 11 (Stats.Counter.value c);
  checks "name" "c" (Stats.Counter.name c);
  Stats.Counter.reset c;
  checki "reset" 0 (Stats.Counter.value c)

let test_summary () =
  let s = Stats.Summary.create "s" in
  let checkio = check Alcotest.(option int) in
  checkio "empty min" None (Stats.Summary.min s);
  checkio "empty max" None (Stats.Summary.max s);
  check (Alcotest.float 0.0) "empty mean" 0.0 (Stats.Summary.mean s);
  List.iter (Stats.Summary.observe s) [ 5; 1; 9 ];
  checki "count" 3 (Stats.Summary.count s);
  checki "sum" 15 (Stats.Summary.sum s);
  checkio "min" (Some 1) (Stats.Summary.min s);
  checkio "max" (Some 9) (Stats.Summary.max s);
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.Summary.mean s)

let test_histogram () =
  let h = Stats.Histogram.create "h" in
  List.iter (Stats.Histogram.observe h) [ 0; 1; 2; 3; 100; 100 ];
  checki "count" 6 (Stats.Histogram.count h);
  let buckets = Stats.Histogram.buckets h in
  checkb "has buckets" true (List.length buckets >= 3);
  checki "p100 bucket bound" 128 (Stats.Histogram.percentile h 100.);
  checki "p1 bucket bound" 1 (Stats.Histogram.percentile h 1.)

let test_registry () =
  let r = Stats.Registry.create () in
  let c = Stats.Registry.counter r ~node:0 ~subsystem:"nic" "tx_packets" in
  Stats.Counter.add c 5;
  (* find-or-create: the same name yields the same counter *)
  let c' = Stats.Registry.counter r ~node:0 ~subsystem:"nic" "tx_packets" in
  Stats.Counter.incr c';
  checki "shared instance" 6 (Stats.Counter.value c);
  let s = Stats.Registry.summary r ~subsystem:"cluster" "lat" in
  Stats.Summary.observe s 40;
  checki "size" 2 (Stats.Registry.size r);
  let snap = Stats.Registry.snapshot r in
  check
    (Alcotest.list Alcotest.string)
    "sorted full names"
    [ "cluster/lat"; "node0/nic/tx_packets" ]
    (List.map fst snap);
  (match List.assoc "node0/nic/tx_packets" snap with
  | Stats.Registry.Counter_v n -> checki "snapshot value" 6 n
  | _ -> Alcotest.fail "expected a counter value");
  (* diff subtracts counters between snapshots *)
  Stats.Counter.add c 4;
  (match List.assoc "node0/nic/tx_packets" (Stats.Registry.diff ~before:snap ~after:(Stats.Registry.snapshot r)) with
  | Stats.Registry.Counter_v n -> checki "diff movement" 4 n
  | _ -> Alcotest.fail "expected a counter value");
  (* re-registering a name under a different metric type is an error *)
  (match Stats.Registry.summary r ~node:0 ~subsystem:"nic" "tx_packets" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on type mismatch");
  let json = Stats.Registry.snapshot_to_json (Stats.Registry.snapshot r) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  checkb "json names the counter" true (contains json "node0/nic/tx_packets");
  Stats.Registry.reset r;
  checki "reset counters" 0 (Stats.Counter.value c);
  checki "reset summaries" 0 (Stats.Summary.count s)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let with_trace ~capacity f =
  Trace.set_capacity capacity;
  Trace.enable ();
  Fun.protect f ~finally:(fun () ->
      Trace.disable ();
      Trace.set_capacity Trace.default_capacity)

let test_trace_gating () =
  with_trace ~capacity:64 (fun () ->
      Trace.disable ();
      Trace.emit ~t_ps:1 ~node:0 Trace.Nic ~label:"x" ~payload:0;
      checki "disabled emit is dropped" 0 (Trace.length ());
      Trace.enable ~cats:[ Trace.Dsm ] ();
      checkb "selected category" true (Trace.enabled_cat Trace.Dsm);
      checkb "unselected category" false (Trace.enabled_cat Trace.Nic);
      Trace.emit ~t_ps:2 ~node:0 Trace.Nic ~label:"x" ~payload:0;
      Trace.emit ~t_ps:3 ~node:1 Trace.Dsm ~label:"y" ~payload:7;
      checki "only selected recorded" 1 (Trace.length ());
      match Trace.records () with
      | [ r ] ->
          checki "t_ps" 3 r.Trace.t_ps;
          checki "node" 1 r.Trace.node;
          checks "label" "y" r.Trace.label
      | l -> Alcotest.failf "expected 1 record, got %d" (List.length l))

let test_trace_spans () =
  with_trace ~capacity:64 (fun () ->
      (* nested spans on different nodes pair by (node, category, label) *)
      Trace.span_begin ~t_ps:10 ~node:1 Trace.Dsm ~label:"barrier" ~payload:0;
      Trace.span_begin ~t_ps:20 ~node:2 Trace.Dsm ~label:"barrier" ~payload:0;
      Trace.span_end ~t_ps:25 ~node:2 Trace.Dsm ~label:"barrier" ~payload:0;
      Trace.span_end ~t_ps:40 ~node:1 Trace.Dsm ~label:"barrier" ~payload:0;
      match Trace.spans () with
      | [ s2; s1 ] ->
          checki "inner node" 2 s2.Trace.span_node;
          checki "inner duration" 5 s2.Trace.duration_ps;
          checki "outer node" 1 s1.Trace.span_node;
          checki "outer duration" 30 s1.Trace.duration_ps
      | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l))

let trace_keeps_newest =
  QCheck.Test.make ~name:"trace ring keeps the newest records in order" ~count:200
    QCheck.(pair (int_range 1 48) (int_range 0 150))
    (fun (cap, n) ->
      Trace.set_capacity cap;
      Trace.enable ();
      for i = 0 to n - 1 do
        Trace.emit ~t_ps:i ~node:0 Trace.Nic ~label:"qc" ~payload:i
      done;
      let got = List.map (fun r -> r.Trace.payload) (Trace.records ()) in
      let kept = Stdlib.min cap n in
      let counts_ok = Trace.length () = kept && Trace.emitted () = n && Trace.dropped () = n - kept in
      Trace.disable ();
      Trace.set_capacity Trace.default_capacity;
      counts_ok && got = List.init kept (fun i -> n - kept + i))

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_basic () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  checki "length" 100 (Vec.length v);
  checki "get" 49 (Vec.get v 7);
  Vec.set v 7 0;
  checki "set" 0 (Vec.get v 7);
  checki "fold" (List.fold_left ( + ) 0 (Vec.to_list v)) (Vec.fold_left ( + ) 0 v);
  Vec.clear v;
  checki "cleared" 0 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.create () in
  Vec.push v 1;
  Alcotest.check_raises "negative" (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Vec.get v (-1)));
  Alcotest.check_raises "past end" (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Vec.get v 1))

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_event_ordering () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.at eng (Time.ns 30) (fun () -> log := 30 :: !log);
  Engine.at eng (Time.ns 10) (fun () -> log := 10 :: !log);
  Engine.at eng (Time.ns 20) (fun () -> log := 20 :: !log);
  Engine.run eng;
  check (Alcotest.list Alcotest.int) "time order" [ 10; 20; 30 ] (List.rev !log);
  checki "clock at last event" (Time.to_ps (Time.ns 30)) (Time.to_ps (Engine.now eng))

let test_fifo_same_time () =
  let eng = Engine.create () in
  let log = ref [] in
  for i = 0 to 4 do
    Engine.at eng (Time.ns 5) (fun () -> log := i :: !log)
  done;
  Engine.run eng;
  check (Alcotest.list Alcotest.int) "insertion order" [ 0; 1; 2; 3; 4 ] (List.rev !log)

let test_run_until () =
  let eng = Engine.create () in
  let fired = ref 0 in
  List.iter (fun t -> Engine.at eng (Time.ns t) (fun () -> incr fired)) [ 10; 20; 30; 40 ];
  Engine.run_until eng (Time.ns 25);
  checki "two fired" 2 !fired;
  checki "two pending" 2 (Engine.pending eng);
  Engine.run eng;
  checki "all fired" 4 !fired

let test_fiber_delay () =
  let eng = Engine.create () in
  let t_end = ref Time.zero in
  Engine.spawn eng (fun () ->
      Engine.delay (Time.ns 100);
      Engine.delay (Time.ns 50);
      t_end := Engine.now eng);
  Engine.run eng;
  checki "delays accumulate" (Time.to_ps (Time.ns 150)) (Time.to_ps !t_end)

let test_fiber_suspend_resume () =
  let eng = Engine.create () in
  let resumer = ref None in
  let got = ref 0 in
  Engine.spawn eng (fun () -> got := Engine.suspend (fun r -> resumer := Some r));
  Engine.at eng (Time.ns 500) (fun () -> Option.get !resumer 42);
  Engine.run eng;
  checki "resumed with value" 42 !got

let test_double_resume_raises () =
  let eng = Engine.create () in
  let resumer = ref None in
  Engine.spawn eng (fun () -> Engine.suspend (fun r -> resumer := Some r));
  Engine.at eng (Time.ns 1) (fun () -> Option.get !resumer ());
  Engine.run eng;
  Alcotest.check_raises "second resume" (Invalid_argument "Engine: fiber \"fiber\" resumed twice")
    (fun () -> Option.get !resumer ())

let test_fiber_exception_annotated () =
  let eng = Engine.create () in
  Engine.spawn eng ~name:"bad" (fun () -> failwith "boom");
  match Engine.run eng with
  | () -> Alcotest.fail "expected Fiber_failure"
  | exception Engine.Fiber_failure (name, Failure msg) ->
      checks "original exception kept" "boom" msg;
      checkb "name mentions fiber" true (String.length name >= 3 && String.sub name 0 3 = "bad")
  | exception e -> Alcotest.failf "unexpected %s" (Printexc.to_string e)

let test_yield_interleaves () =
  let eng = Engine.create () in
  let log = ref [] in
  let fiber tag =
    Engine.spawn eng (fun () ->
        for i = 1 to 2 do
          log := (tag, i) :: !log;
          Engine.yield ()
        done)
  in
  fiber "a";
  fiber "b";
  Engine.run eng;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "round-robin"
    [ ("a", 1); ("b", 1); ("a", 2); ("b", 2) ]
    (List.rev !log)

let test_at_in_the_past_clamped () =
  let eng = Engine.create () in
  let t = ref Time.zero in
  Engine.at eng (Time.ns 100) (fun () ->
      (* schedule "earlier" than now: must fire at now, not travel back *)
      Engine.at eng (Time.ns 10) (fun () -> t := Engine.now eng));
  Engine.run eng;
  checki "clamped to now" (Time.to_ps (Time.ns 100)) (Time.to_ps !t)

let test_run_stats () =
  let eng = Engine.create () in
  let s0 = Engine.run_stats eng in
  checki "fresh: dispatched" 0 s0.Engine.events_dispatched;
  checki "fresh: max depth" 0 s0.Engine.max_heap_depth;
  checki "fresh: clamps" 0 s0.Engine.past_clamps;
  Engine.at eng (Time.ns 100) (fun () ->
      (* scheduling into the past: clamped AND counted *)
      Engine.at eng (Time.ns 10) (fun () -> ()));
  Engine.at eng (Time.ns 200) (fun () -> ());
  Engine.run eng;
  let s = Engine.run_stats eng in
  checki "dispatched" 3 s.Engine.events_dispatched;
  checki "past clamps counted" 1 s.Engine.past_clamps;
  checki "max heap depth" 2 s.Engine.max_heap_depth;
  (* an on-time schedule does not count as a clamp *)
  Engine.at eng (Time.ns 300) (fun () -> ());
  Engine.run eng;
  checki "no new clamps" 1 (Engine.run_stats eng).Engine.past_clamps

let test_clamp_emits_trace () =
  with_trace ~capacity:64 (fun () ->
      Trace.disable ();
      Trace.enable ~cats:[ Trace.Engine ] ();
      let eng = Engine.create () in
      Engine.at eng (Time.ns 100) (fun () -> Engine.at eng (Time.ns 60) (fun () -> ()));
      Engine.run eng;
      let clamps =
        List.filter (fun r -> r.Trace.label = "past-clamp") (Trace.records ())
      in
      match clamps with
      | [ r ] ->
          checki "emitted at now" (Time.to_ps (Time.ns 100)) r.Trace.t_ps;
          checki "payload is the clamped distance in ps" (Time.to_ps (Time.ns 40)) r.Trace.payload
      | l -> Alcotest.failf "expected 1 past-clamp record, got %d" (List.length l))

let test_run_until_boundary () =
  let eng = Engine.create () in
  let fired = ref [] in
  List.iter (fun t -> Engine.at eng (Time.ns t) (fun () -> fired := t :: !fired)) [ 10; 20; 30 ];
  (* events exactly at the limit are included *)
  Engine.run_until eng (Time.ns 20);
  check (Alcotest.list Alcotest.int) "inclusive boundary" [ 10; 20 ] (List.rev !fired);
  Engine.run eng

let test_spawn_starts_at_now () =
  let eng = Engine.create () in
  let started = ref Time.zero in
  Engine.at eng (Time.us 5) (fun () ->
      Engine.spawn eng (fun () -> started := Engine.now eng));
  Engine.run eng;
  checki "spawn at current time" (Time.to_ps (Time.us 5)) (Time.to_ps !started)

(* determinism: two identical simulations produce identical traces *)
let test_determinism () =
  let run () =
    let eng = Engine.create () in
    let rng = Rng.create ~seed:11 in
    let log = Buffer.create 64 in
    for i = 0 to 50 do
      Engine.at eng (Time.ns (Rng.int rng 1000)) (fun () -> Buffer.add_string log (string_of_int i))
    done;
    Engine.run eng;
    Buffer.contents log
  in
  checks "identical runs" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* Sync                                                                *)
(* ------------------------------------------------------------------ *)

let run_in_engine f =
  let eng = Engine.create () in
  f eng;
  Engine.run eng

let test_ivar () =
  run_in_engine (fun eng ->
      let iv = Sync.Ivar.create () in
      let seen = ref [] in
      for i = 1 to 3 do
        Engine.spawn eng (fun () ->
            (* bind before consing: the read suspends mid-expression, and
               cons evaluates its right operand first *)
            let v = Sync.Ivar.read iv in
            seen := (i, v) :: !seen)
      done;
      Engine.at eng (Time.ns 10) (fun () -> Sync.Ivar.fill iv "v");
      Engine.at eng (Time.ns 20) (fun () ->
          checki "all readers woke" 3 (List.length !seen);
          checkb "filled" true (Sync.Ivar.is_filled iv);
          checkb "peek" true (Sync.Ivar.peek iv = Some "v")));
  let iv = Sync.Ivar.create () in
  Sync.Ivar.fill iv 1;
  Alcotest.check_raises "refill" (Invalid_argument "Ivar.fill: already filled") (fun () ->
      Sync.Ivar.fill iv 2)

let test_ivar_read_after_fill () =
  run_in_engine (fun eng ->
      let iv = Sync.Ivar.create () in
      Sync.Ivar.fill iv 9;
      Engine.spawn eng (fun () -> checki "immediate" 9 (Sync.Ivar.read iv)))

let test_channel_fifo () =
  run_in_engine (fun eng ->
      let ch = Sync.Channel.create () in
      let got = ref [] in
      Engine.spawn eng (fun () ->
          for _ = 1 to 3 do
            let v = Sync.Channel.recv ch in
            got := v :: !got
          done);
      Engine.at eng (Time.ns 1) (fun () ->
          Sync.Channel.send ch 1;
          Sync.Channel.send ch 2;
          Sync.Channel.send ch 3);
      Engine.at eng (Time.ns 2) (fun () ->
          check (Alcotest.list Alcotest.int) "order" [ 1; 2; 3 ] (List.rev !got)))

let test_channel_buffered () =
  let ch = Sync.Channel.create () in
  Sync.Channel.send ch 7;
  checki "length" 1 (Sync.Channel.length ch);
  checkb "try_recv" true (Sync.Channel.try_recv ch = Some 7);
  checkb "drained" true (Sync.Channel.try_recv ch = None)

let test_semaphore () =
  run_in_engine (fun eng ->
      let sem = Sync.Semaphore.create 2 in
      let active = ref 0 and peak = ref 0 in
      for _ = 1 to 5 do
        Engine.spawn eng (fun () ->
            Sync.Semaphore.acquire sem;
            incr active;
            if !active > !peak then peak := !active;
            Engine.delay (Time.ns 100);
            decr active;
            Sync.Semaphore.release sem)
      done;
      Engine.at eng (Time.ns 1000) (fun () -> checki "at most 2 concurrent" 2 !peak))

let test_semaphore_fifo () =
  run_in_engine (fun eng ->
      let sem = Sync.Semaphore.create 0 in
      let woke = ref [] in
      for i = 1 to 4 do
        Engine.spawn eng (fun () ->
            Sync.Semaphore.acquire sem;
            woke := i :: !woke)
      done;
      Engine.at eng (Time.ns 10) (fun () ->
          checki "four waiting" 4 (Sync.Semaphore.waiting sem);
          for _ = 1 to 4 do
            Sync.Semaphore.release sem
          done);
      Engine.at eng (Time.ns 20) (fun () ->
          check (Alcotest.list Alcotest.int) "FIFO wakeups" [ 1; 2; 3; 4 ] (List.rev !woke)))

let test_semaphore_try () =
  let sem = Sync.Semaphore.create 1 in
  checkb "first try" true (Sync.Semaphore.try_acquire sem);
  checkb "second try" false (Sync.Semaphore.try_acquire sem);
  Sync.Semaphore.release sem;
  checki "available" 1 (Sync.Semaphore.available sem)

let test_mutex_exception_safe () =
  run_in_engine (fun eng ->
      let m = Sync.Mutex.create () in
      Engine.spawn eng (fun () ->
          (try Sync.Mutex.with_lock m (fun () -> failwith "inner") with Failure _ -> ());
          (* must be reacquirable *)
          Sync.Mutex.with_lock m (fun () -> ())))

let test_condition () =
  run_in_engine (fun eng ->
      let c = Sync.Condition.create () in
      let woke = ref 0 in
      for _ = 1 to 4 do
        Engine.spawn eng (fun () ->
            Sync.Condition.await c;
            incr woke)
      done;
      Engine.at eng (Time.ns 5) (fun () ->
          checki "four waiting" 4 (Sync.Condition.waiting c);
          Sync.Condition.signal_all c);
      Engine.at eng (Time.ns 6) (fun () -> checki "all woke" 4 !woke))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "engine"
    [
      ( "time",
        [
          Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "arithmetic" `Quick test_time_arith;
          Alcotest.test_case "cycles" `Quick test_time_cycles;
          Alcotest.test_case "pretty-printing" `Quick test_time_pp;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "empty raises" `Quick test_heap_empty_raises;
          Alcotest.test_case "min_key/length/clear" `Quick test_heap_min_key;
          Alcotest.test_case "pop releases payload to the GC" `Quick test_heap_releases_on_pop;
          Alcotest.test_case "clear releases payloads to the GC" `Quick test_heap_releases_on_clear;
          Alcotest.test_case "pop_min_value releases payload to the GC" `Quick
            test_heap_releases_on_pop_min_value;
          Alcotest.test_case "pop_min_value order and emptiness" `Quick test_heap_pop_min_value;
          Alcotest.test_case "steady-state add/pop is allocation-free" `Quick
            test_heap_hot_path_no_alloc;
          qc heap_sorts;
          qc heap_model;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          qc shuffle_is_permutation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ( "trace",
        [
          Alcotest.test_case "gating" `Quick test_trace_gating;
          Alcotest.test_case "span pairing" `Quick test_trace_spans;
          qc trace_keeps_newest;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basic" `Quick test_vec_basic;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
        ] );
      ( "events",
        [
          Alcotest.test_case "time ordering" `Quick test_event_ordering;
          Alcotest.test_case "FIFO at equal time" `Quick test_fifo_same_time;
          Alcotest.test_case "run_until" `Quick test_run_until;
          Alcotest.test_case "run_until inclusive boundary" `Quick test_run_until_boundary;
          Alcotest.test_case "spawn starts at now" `Quick test_spawn_starts_at_now;
          Alcotest.test_case "past events clamp to now" `Quick test_at_in_the_past_clamped;
          Alcotest.test_case "run_stats counters" `Quick test_run_stats;
          Alcotest.test_case "past clamp emits an Engine trace record" `Quick
            test_clamp_emits_trace;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "fibers",
        [
          Alcotest.test_case "delay" `Quick test_fiber_delay;
          Alcotest.test_case "suspend/resume" `Quick test_fiber_suspend_resume;
          Alcotest.test_case "double resume raises" `Quick test_double_resume_raises;
          Alcotest.test_case "exceptions annotated" `Quick test_fiber_exception_annotated;
          Alcotest.test_case "yield interleaves" `Quick test_yield_interleaves;
        ] );
      ( "sync",
        [
          Alcotest.test_case "ivar" `Quick test_ivar;
          Alcotest.test_case "ivar read after fill" `Quick test_ivar_read_after_fill;
          Alcotest.test_case "channel FIFO" `Quick test_channel_fifo;
          Alcotest.test_case "channel buffering" `Quick test_channel_buffered;
          Alcotest.test_case "semaphore limits concurrency" `Quick test_semaphore;
          Alcotest.test_case "semaphore FIFO wakeup" `Quick test_semaphore_fifo;
          Alcotest.test_case "semaphore try/available" `Quick test_semaphore_try;
          Alcotest.test_case "mutex exception safety" `Quick test_mutex_exception_safe;
          Alcotest.test_case "condition broadcast" `Quick test_condition;
        ] );
    ]
